#!/usr/bin/env python3
"""Compares freshly generated BENCH_*.json files against the committed
baselines and flags per-benchmark real_time regressions.

Usage:
    scripts/bench_diff.py [--threshold 0.15] [--baseline-ref HEAD]
                          [--strict] [files...]

With no files, every BENCH_*.json at the repo root is checked. The baseline
for a file is the version committed at --baseline-ref (default HEAD), read
via `git show`, so the script works after bench/run_benches.sh has
overwritten the working-tree copy with fresh numbers. Files without a
committed baseline (first run of a new suite) are reported and skipped.

A benchmark regresses when new_time > (1 + threshold) * old_time. By
default regressions are printed as warnings and the exit code stays 0 so a
noisy laptop run does not fail the whole bench script; pass --strict to
exit 1 when any regression is found (for CI).
"""

import argparse
import json
import pathlib
import subprocess
import sys


def repo_root() -> pathlib.Path:
    out = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True, text=True, check=True)
    return pathlib.Path(out.stdout.strip())


def committed_json(ref: str, relpath: str):
    """The file's content at `ref`, or None when it is not committed."""
    proc = subprocess.run(
        ["git", "show", f"{ref}:{relpath}"], capture_output=True, text=True)
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def benchmark_times(merged: dict) -> dict:
    """Flattens a merged BENCH_*.json into {(suite, name): real_time}.

    When a benchmark ran with repetitions, google-benchmark emits both the
    per-repetition entries and aggregates; the mean aggregate is preferred
    and the raw repetitions are dropped so one stable number represents the
    benchmark.
    """
    times = {}
    preferred = {}  # keys whose value came from a mean aggregate
    for suite, benchmarks in merged.get("suites", {}).items():
        for entry in benchmarks:
            if "real_time" not in entry:
                continue
            name = entry.get("run_name", entry.get("name", ""))
            key = (suite, name)
            if entry.get("aggregate_name") == "mean":
                times[key] = float(entry["real_time"])
                preferred[key] = True
            elif entry.get("aggregate_name"):
                continue  # median/stddev/cv: not a representative time
            elif not preferred.get(key):
                times[key] = float(entry["real_time"])
    return times


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Flag bench regressions vs the committed baselines.")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative slowdown that counts as a regression "
                             "(default 0.15 = +15%%)")
    parser.add_argument("--baseline-ref", default="HEAD",
                        help="git ref holding the baseline JSONs")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any regression is found")
    parser.add_argument("files", nargs="*",
                        help="BENCH_*.json files (default: repo root glob)")
    args = parser.parse_args()

    root = repo_root()
    files = ([pathlib.Path(f) for f in args.files]
             if args.files else sorted(root.glob("BENCH_*.json")))
    if not files:
        print("bench_diff: no BENCH_*.json files found", file=sys.stderr)
        return 0

    regressions = []
    for path in files:
        relpath = path.resolve().relative_to(root).as_posix()
        baseline = committed_json(args.baseline_ref, relpath)
        if baseline is None:
            print(f"{relpath}: no baseline at {args.baseline_ref} "
                  "(new suite?), skipping")
            continue
        fresh = json.loads(path.read_text())
        old_times = benchmark_times(baseline)
        new_times = benchmark_times(fresh)

        for key in sorted(new_times):
            if key not in old_times or old_times[key] <= 0:
                continue
            suite, name = key
            ratio = new_times[key] / old_times[key]
            tag = "ok"
            if ratio > 1 + args.threshold:
                tag = "REGRESSION"
                regressions.append((relpath, suite, name, ratio))
            elif ratio < 1 - args.threshold:
                tag = "improved"
            print(f"{relpath}: {suite}/{name}: "
                  f"{old_times[key]:.3g} -> {new_times[key]:.3g} "
                  f"({(ratio - 1) * 100:+.1f}%) {tag}")

    if regressions:
        print(f"\nbench_diff: {len(regressions)} regression(s) over "
              f"+{args.threshold * 100:.0f}%:", file=sys.stderr)
        for relpath, suite, name, ratio in regressions:
            print(f"  {relpath}: {suite}/{name} ({(ratio - 1) * 100:+.1f}%)",
                  file=sys.stderr)
        return 1 if args.strict else 0
    print("bench_diff: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
