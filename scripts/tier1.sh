#!/usr/bin/env bash
# Tier-1 verification: normal build + full ctest, then sanitizer builds of
# the suites that exercise cross-thread interleavings and error-unwind
# paths — TSan for races, ASan for leaks/overflows on the fault-injection
# unwinds (a mid-build abort that leaks shows up here, not in ctest).
#
# Usage: scripts/tier1.sh
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

# Low-memory-budget sweep: the differential matrix (strategy x spill x
# threads x join impl, all cells asserted row-identical to naive serial)
# re-run at budgets from "barely above the hash join's skew bound" to
# "spills only the big build sides". Each setting moves the trip points —
# which operator spills first, how deep partitions recurse, whether the
# external sort needs one merge pass or several — so one green sweep
# covers many more degrade paths than the single baked-in budget.
for budget in 131072 262144 524288; do
  TMDB_DIFF_BUDGET_BYTES=$budget ./build/tests/differential_exec_test
done

# TSan pass over the parallel + fault-injection + spill paths. The spill
# suites bake in tiny (tens-of-KiB) memory budgets, so every run here
# partitions to disk — races between morsel workers and the spill
# write-out, and leaks on I/O-fault unwinds, surface in these trees and
# not in plain ctest. Sanitizers need their own object files, so each
# gets a dedicated build tree.
cmake -B build-tsan -S . -DTMDB_SANITIZE=thread
cmake --build build-tsan -j --target parallel_exec_test sched_test \
  fault_injection_test \
  spill_codec_test spill_exec_test subplan_cache_test columnar_exec_test \
  differential_exec_test cost_model_test net_service_test \
  executor_reuse_soak_test
./build-tsan/tests/parallel_exec_test
# sched_test is the work-stealing scheduler's own suite: deque discipline,
# per-query caps, the multi-query soak (several tagged queries sharing the
# one pool), and cancellation isolation — the highest-value TSan target in
# the tree, since every interleaving it finds is a real scheduler race.
./build-tsan/tests/sched_test
./build-tsan/tests/fault_injection_test
./build-tsan/tests/spill_codec_test
./build-tsan/tests/spill_exec_test
./build-tsan/tests/subplan_cache_test
./build-tsan/tests/columnar_exec_test
./build-tsan/tests/differential_exec_test
# cost_model_test covers the strategy = auto paths: sampling under the
# guard, the adaptive controller's cross-thread Observe, and the
# mid-query kStrategySwitch restart.
./build-tsan/tests/cost_model_test
# Net suites bind port 0 (ephemeral), so parallel CI jobs never collide;
# on failure they print the TMDB_NET_SEED that reproduces the schedule.
./build-tsan/tests/net_service_test
./build-tsan/tests/executor_reuse_soak_test

# ASan pass over the same suites: every injected fault must unwind without
# leaking operator, pool, or spill-file state.
cmake -B build-asan -S . -DTMDB_SANITIZE=address
cmake --build build-asan -j --target parallel_exec_test sched_test \
  fault_injection_test \
  spill_codec_test spill_exec_test subplan_cache_test columnar_exec_test \
  differential_exec_test cost_model_test net_service_test \
  executor_reuse_soak_test
./build-asan/tests/parallel_exec_test
./build-asan/tests/sched_test
./build-asan/tests/fault_injection_test
./build-asan/tests/spill_codec_test
./build-asan/tests/spill_exec_test
./build-asan/tests/subplan_cache_test
./build-asan/tests/columnar_exec_test
./build-asan/tests/differential_exec_test
./build-asan/tests/cost_model_test
./build-asan/tests/net_service_test
./build-asan/tests/executor_reuse_soak_test

echo "tier1: OK"
