#!/usr/bin/env bash
# Tier-1 verification: normal build + full ctest, then a ThreadSanitizer
# build of the parallel execution test (the only suite that exercises
# cross-thread interleavings).
#
# Usage: scripts/tier1.sh
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

# TSan pass over the parallel paths. TSan needs its own object files, so it
# gets a dedicated build tree.
cmake -B build-tsan -S . -DTMDB_SANITIZE=thread
cmake --build build-tsan -j --target parallel_exec_test
./build-tsan/tests/parallel_exec_test

echo "tier1: OK"
