// Correlated-subplan memoization: the naive (nested-loop) strategy over the
// correlated workload O(a, k, v) ⋈ I(k, v), where o.k takes only
// `correlation_scale` distinct values. With the memo cache each distinct
// value computes its subquery once and the other outer rows hit; with the
// cache off every outer row re-runs the inner plan.
//
// Shape expected: at scale 10 over 10k outer rows (99.9% hit ratio) the
// cached run is well over 5x faster than uncached — it does 10 inner scans
// instead of 10,000. As the scale approaches num_outer the hit ratio falls
// to ~0% and the two variants converge (the cache then only costs a key
// probe per row).

#include <cstdio>
#include <string>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/database.h"
#include "workload/generators.h"

namespace tmdb {
namespace {

using bench::CheckOk;
using bench::GlobalDbCache;

constexpr char kQuery[] =
    "SELECT (a = o.a, n = count(SELECT i.v FROM I i WHERE o.k = i.k)) "
    "FROM O o";

constexpr size_t kNumOuter = 10000;
constexpr size_t kNumInner = 1000;

Database* CorrelatedDb(int64_t scale) {
  return GlobalDbCache().Get("subplan_corr_" + std::to_string(scale),
                             [scale](Database* db) {
                               CorrelatedConfig config;
                               config.num_outer = kNumOuter;
                               config.num_inner = kNumInner;
                               config.correlation_scale = scale;
                               return LoadCorrelatedTables(db, config);
                             });
}

RunOptions NaiveOptions(uint64_t cache_bytes) {
  RunOptions options;
  options.strategy = Strategy::kNaive;  // keeps the subquery correlated
  options.subplan_cache_bytes = cache_bytes;
  return options;
}

void RunCorrelated(benchmark::State& state, int64_t scale,
                   uint64_t cache_bytes) {
  Database* db = CorrelatedDb(scale);
  ExecStats stats;
  size_t rows = 0;
  for (auto _ : state) {
    QueryResult result =
        CheckOk(db->Run(kQuery, NaiveOptions(cache_bytes)), kQuery);
    rows = result.rows.size();
    stats = result.stats;
    benchmark::DoNotOptimize(result.rows);
  }
  if (rows != kNumOuter) {
    std::fprintf(stderr, "bench_subplan: expected %zu rows, got %zu\n",
                 kNumOuter, rows);
    std::abort();
  }
  state.counters["subplan_evals"] = static_cast<double>(stats.subplan_evals);
  state.counters["cache_hits"] =
      static_cast<double>(stats.subplan_cache_hits);
  state.counters["cache_misses"] =
      static_cast<double>(stats.subplan_cache_misses);
}

// The headline pair for the speedup claim: 10 distinct correlation values
// over 10k outer rows, single-threaded, cache on vs off.
void BM_CorrelatedNaiveCached(benchmark::State& state) {
  RunCorrelated(state, /*scale=*/state.range(0),
                /*cache_bytes=*/16ull << 20);
}
BENCHMARK(BM_CorrelatedNaiveCached)
    ->Arg(10)      // ~99.9% hit ratio
    ->Arg(1000)    // ~90% hit ratio
    ->Arg(10000)   // every key distinct: ~0% hits, worst case for the cache
    ->Unit(benchmark::kMillisecond);

void BM_CorrelatedNaiveUncached(benchmark::State& state) {
  RunCorrelated(state, /*scale=*/state.range(0), /*cache_bytes=*/0);
}
BENCHMARK(BM_CorrelatedNaiveUncached)
    ->Arg(10)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// Cache thrashing: a soft cap near one entry while ten keys cycle — every
// acquire misses and the previous entry is evicted. Bounds the overhead of
// an adversarially sized cache against the uncached baseline above.
void BM_CorrelatedNaiveThrashing(benchmark::State& state) {
  Database* db = CorrelatedDb(10);
  ExecStats stats;
  for (auto _ : state) {
    QueryResult result = CheckOk(db->Run(kQuery, NaiveOptions(1)), kQuery);
    stats = result.stats;
    benchmark::DoNotOptimize(result.rows);
  }
  state.counters["evictions"] =
      static_cast<double>(stats.subplan_cache_evictions);
}
BENCHMARK(BM_CorrelatedNaiveThrashing)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tmdb

BENCHMARK_MAIN();
