#ifndef TMDB_BENCH_BENCH_UTIL_H_
#define TMDB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "core/database.h"

namespace tmdb::bench {

/// Aborts the bench with a readable message on any setup error — a bench
/// with broken setup must not report numbers.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench setup failed (%s): %s\n", what,
                 status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T CheckOk(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "bench failed (%s): %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

/// Runs a query under a strategy/join policy, aborting on error.
inline QueryResult MustRun(Database* db, const std::string& query,
                           Strategy strategy,
                           JoinImpl impl = JoinImpl::kAuto,
                           int num_threads = 1) {
  RunOptions options;
  options.strategy = strategy;
  options.join_impl = impl;
  options.num_threads = num_threads;
  return CheckOk(db->Run(query, options), query.c_str());
}

/// Cache of databases keyed by a config string, so google-benchmark's
/// repeated invocations of a benchmark function reuse one loaded database.
/// Key on the *data* configuration only (scale, seed, domains) — never on
/// execution knobs like thread count — so serial and threaded variants of
/// a benchmark run against the same loaded instance.
class DbCache {
 public:
  /// Returns the database for `key`, building it with `loader` on first use.
  template <typename Loader>
  Database* Get(const std::string& key, Loader loader) {
    auto it = dbs_.find(key);
    if (it == dbs_.end()) {
      auto db = std::make_unique<Database>();
      CheckOk(loader(db.get()), key.c_str());
      it = dbs_.emplace(key, std::move(db)).first;
    }
    return it->second.get();
  }

 private:
  std::map<std::string, std::unique_ptr<Database>> dbs_;
};

inline DbCache& GlobalDbCache() {
  static auto& cache = *new DbCache();
  return cache;
}

}  // namespace tmdb::bench

#endif  // TMDB_BENCH_BENCH_UTIL_H_
