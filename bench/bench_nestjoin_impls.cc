// Experiment E6 — "Implementation" (Section 6): the nest join as a simple
// modification of common join implementation methods.
//
// Measures the nest join executed as modified nested-loop, hash, and
// sort-merge joins, against the algebraically equivalent two-operator plan
// outerjoin-then-ν* (Section 6, "Algebraic Properties"), across match
// multiplicities. Shape expected: hash/merge nest join ≈ the corresponding
// plain join cost; the outerjoin+ν* composition pays an extra grouping
// pass and materialises NULL padding.

#include <cstdio>
#include <map>
#include <string>
#include <utility>

#include <benchmark/benchmark.h>

#include "base/random.h"
#include "bench/bench_util.h"
#include "catalog/table.h"
#include "exec/executor.h"
#include "optimizer/planner.h"

namespace tmdb {
namespace {

using bench::CheckOk;

struct Tables {
  std::shared_ptr<Table> x;
  std::shared_ptr<Table> y;
};

/// X(e, d), Y(a, b): |Y| = multiplicity * |X| rows; ~25% of X dangling.
Tables MakeTables(size_t n, size_t multiplicity) {
  Tables t;
  t.x = CheckOk(Table::Create("X", Type::Tuple({{"e", Type::Int()},
                                                {"d", Type::Int()}})),
                "X");
  t.y = CheckOk(Table::Create("Y", Type::Tuple({{"a", Type::Int()},
                                                {"b", Type::Int()}})),
                "Y");
  Random rng(5);
  const int64_t matched = static_cast<int64_t>(n * 3 / 4) + 1;
  for (size_t i = 0; i < n; ++i) {
    CheckOk(t.x->Insert(Value::Tuple(
                {"e", "d"},
                {Value::Int(static_cast<int64_t>(i)),
                 Value::Int(rng.UniformInt(0, static_cast<int64_t>(n)))})),
            "X row");
  }
  for (size_t i = 0; i < n * multiplicity; ++i) {
    CheckOk(t.y->Insert(Value::Tuple(
                {"a", "b"},
                {Value::Int(static_cast<int64_t>(i)),
                 Value::Int(rng.UniformInt(0, matched - 1))})),
            "Y row");
  }
  return t;
}

Tables& CachedTables(size_t n, size_t multiplicity) {
  static auto& cache = *new std::map<std::pair<size_t, size_t>, Tables>();
  auto key = std::make_pair(n, multiplicity);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, MakeTables(n, multiplicity)).first;
  }
  return it->second;
}

/// Zipf-skewed variant: Y keys follow P(k) ∝ 1/(k+1)^s, so a few X rows
/// receive giant groups — the stress case for an operator that must hold a
/// left row's entire match set before emitting (paper, Section 6).
Tables MakeSkewedTables(size_t n, double skew) {
  Tables t;
  t.x = CheckOk(Table::Create("X", Type::Tuple({{"e", Type::Int()},
                                                {"d", Type::Int()}})),
                "X");
  t.y = CheckOk(Table::Create("Y", Type::Tuple({{"a", Type::Int()},
                                                {"b", Type::Int()}})),
                "Y");
  Random rng(6);
  Zipf zipf(n, skew);
  for (size_t i = 0; i < n; ++i) {
    CheckOk(t.x->Insert(Value::Tuple(
                {"e", "d"},
                {Value::Int(static_cast<int64_t>(i)),
                 Value::Int(static_cast<int64_t>(i))})),
            "X row");
  }
  for (size_t i = 0; i < 2 * n; ++i) {
    CheckOk(t.y->Insert(Value::Tuple(
                {"a", "b"},
                {Value::Int(static_cast<int64_t>(i)),
                 Value::Int(static_cast<int64_t>(zipf.Next(&rng)))})),
            "Y row");
  }
  return t;
}

Tables& CachedSkewedTables(size_t n, double skew) {
  static auto& cache = *new std::map<std::pair<size_t, int>, Tables>();
  auto key = std::make_pair(n, static_cast<int>(skew * 100));
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, MakeSkewedTables(n, skew)).first;
  }
  return it->second;
}

/// Logical nest join X ▵ Y on d = b with G = y.
LogicalOpPtr NestJoinPlan(const Tables& t) {
  LogicalOpPtr x = CheckOk(LogicalOp::Scan(t.x), "scan X");
  LogicalOpPtr y = CheckOk(LogicalOp::Scan(t.y), "scan Y");
  Expr xv = Expr::Var("x", t.x->schema());
  Expr yv = Expr::Var("y", t.y->schema());
  Expr pred = Expr::Must(Expr::Binary(BinaryOp::kEq,
                                      Expr::Must(Expr::Field(xv, "d")),
                                      Expr::Must(Expr::Field(yv, "b"))));
  return CheckOk(
      LogicalOp::NestJoin(std::move(x), std::move(y), "x", "y", pred, yv, "s"),
      "nest join");
}

/// The equivalent outerjoin-then-ν* plan (Section 6): X ⟖ Y, then group by
/// X's attributes mapping NULL groups to ∅.
LogicalOpPtr OuterJoinNestPlan(const Tables& t) {
  LogicalOpPtr x = CheckOk(LogicalOp::Scan(t.x), "scan X");
  LogicalOpPtr y = CheckOk(LogicalOp::Scan(t.y), "scan Y");
  Expr xv = Expr::Var("x", t.x->schema());
  Expr yv = Expr::Var("y", t.y->schema());
  Expr pred = Expr::Must(Expr::Binary(BinaryOp::kEq,
                                      Expr::Must(Expr::Field(xv, "d")),
                                      Expr::Must(Expr::Field(yv, "b"))));
  LogicalOpPtr joined = CheckOk(
      LogicalOp::OuterJoin(std::move(x), std::move(y), "x", "y", pred),
      "outerjoin");
  Expr j = Expr::Var("j", joined->output_type());
  Expr elem = Expr::Must(Expr::MakeTuple(
      {"a", "b"}, {Expr::Must(Expr::Field(j, "a")),
                   Expr::Must(Expr::Field(j, "b"))}));
  return CheckOk(LogicalOp::Nest(std::move(joined), {"e", "d"}, "j", elem,
                                 "s", /*null_group_to_empty=*/true),
                 "nest*");
}

void RunPlan(benchmark::State& state, const LogicalOpPtr& plan,
             JoinImpl impl, int threads = 1) {
  PlannerOptions options;
  options.join_impl = impl;
  options.num_threads = threads;
  Planner planner(options);
  PhysicalOpPtr physical = CheckOk(planner.Plan(plan), "plan");
  Executor executor(threads);
  for (auto _ : state) {
    auto rows = CheckOk(executor.RunPhysical(physical.get()), "run");
    benchmark::DoNotOptimize(rows.size());
  }
}

void BM_NestJoinNL(benchmark::State& state) {
  const Tables& t = CachedTables(static_cast<size_t>(state.range(0)),
                                 static_cast<size_t>(state.range(1)));
  RunPlan(state, NestJoinPlan(t), JoinImpl::kNestedLoop);
}
void BM_NestJoinHash(benchmark::State& state) {
  const Tables& t = CachedTables(static_cast<size_t>(state.range(0)),
                                 static_cast<size_t>(state.range(1)));
  RunPlan(state, NestJoinPlan(t), JoinImpl::kHash);
}
void BM_NestJoinMerge(benchmark::State& state) {
  const Tables& t = CachedTables(static_cast<size_t>(state.range(0)),
                                 static_cast<size_t>(state.range(1)));
  RunPlan(state, NestJoinPlan(t), JoinImpl::kMerge);
}
void BM_OuterJoinThenNest(benchmark::State& state) {
  const Tables& t = CachedTables(static_cast<size_t>(state.range(0)),
                                 static_cast<size_t>(state.range(1)));
  RunPlan(state, OuterJoinNestPlan(t), JoinImpl::kHash);
}
// Threaded variants: same cached tables (keyed by data shape only), so the
// serial and threaded runs measure the identical instance.
void BM_NestJoinHashT4(benchmark::State& state) {
  const Tables& t = CachedTables(static_cast<size_t>(state.range(0)),
                                 static_cast<size_t>(state.range(1)));
  RunPlan(state, NestJoinPlan(t), JoinImpl::kHash, /*threads=*/4);
}
void BM_OuterJoinThenNestT4(benchmark::State& state) {
  const Tables& t = CachedTables(static_cast<size_t>(state.range(0)),
                                 static_cast<size_t>(state.range(1)));
  RunPlan(state, OuterJoinNestPlan(t), JoinImpl::kHash, /*threads=*/4);
}

void BM_NestJoinHashSkew(benchmark::State& state) {
  // Arg = Zipf exponent × 100 over |X| = 4000, |Y| = 8000.
  const double skew = static_cast<double>(state.range(0)) / 100.0;
  const Tables& t = CachedSkewedTables(4000, skew);
  RunPlan(state, NestJoinPlan(t), JoinImpl::kHash);
  state.SetLabel("zipf_s=" + std::to_string(skew));
}
void BM_OuterJoinThenNestSkew(benchmark::State& state) {
  const double skew = static_cast<double>(state.range(0)) / 100.0;
  const Tables& t = CachedSkewedTables(4000, skew);
  RunPlan(state, OuterJoinNestPlan(t), JoinImpl::kHash);
  state.SetLabel("zipf_s=" + std::to_string(skew));
}

BENCHMARK(BM_NestJoinHashSkew)->Arg(0)->Arg(80)->Arg(120)->Arg(160)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OuterJoinThenNestSkew)->Arg(0)->Arg(80)->Arg(120)->Arg(160)
    ->Unit(benchmark::kMillisecond);

void Sizes(benchmark::internal::Benchmark* b) {
  // (|X|, multiplicity): sweep size at multiplicity 2, and multiplicity at
  // fixed size — group sizes stress the grouping side of the operator.
  b->Args({500, 2})->Args({2000, 2})->Args({8000, 2});
  b->Args({2000, 1})->Args({2000, 4})->Args({2000, 16});
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_NestJoinHash)->Apply(Sizes);
BENCHMARK(BM_NestJoinHashT4)->Apply(Sizes);
BENCHMARK(BM_NestJoinMerge)->Apply(Sizes);
BENCHMARK(BM_OuterJoinThenNest)->Apply(Sizes);
BENCHMARK(BM_OuterJoinThenNestT4)->Args({8000, 2})->Args({2000, 16})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NestJoinNL)->Args({500, 2})->Args({2000, 2})
    ->Unit(benchmark::kMillisecond);

void PrintEquivalence() {
  std::printf("== Experiment E6: nest join implementations (Section 6) ==\n");
  const Tables& t = CachedTables(500, 2);
  Executor executor;
  Planner planner;
  PhysicalOpPtr nest = CheckOk(planner.Plan(NestJoinPlan(t)), "plan nj");
  PhysicalOpPtr gw = CheckOk(planner.Plan(OuterJoinNestPlan(t)), "plan gw");
  auto nest_rows = CheckOk(executor.RunPhysical(nest.get()), "nj");
  auto gw_rows = CheckOk(executor.RunPhysical(gw.get()), "gw");
  std::printf("X ▵ Y = ν*(X ⟖ Y): %zu rows vs %zu rows (%s) — the Section 6 "
              "algebraic identity, checked on data.\n",
              nest_rows.size(), gw_rows.size(),
              nest_rows.size() == gw_rows.size() ? "match" : "MISMATCH");
  std::printf("note: the right operand is always the build side for the "
              "hash nest join (the paper's restriction).\n\n");
}

}  // namespace
}  // namespace tmdb

int main(int argc, char** argv) {
  tmdb::PrintEquivalence();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
