#!/usr/bin/env bash
# Runs the nest-join benchmark suites and merges their google-benchmark
# JSON output into BENCH_nestjoin.json at the repo root.
#
# Usage: bench/run_benches.sh [build-dir]   (default: build)
#
# The table1 suite carries the serial-vs-threaded comparison
# (BM_NestJoinHash vs BM_NestJoinHashT{2,4}); the impls suite compares the
# nest join against the outerjoin+nu* composition, serial and threaded.
# Note: threaded variants only beat serial on multi-core hosts — the
# "num_cpus" field in the JSON context records what this run had.
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT

run() {
  local name="$1"
  shift
  "$BUILD_DIR/bench/$name" \
    --benchmark_out="$OUT_DIR/$name.json" \
    --benchmark_out_format=json "$@" >/dev/null
  echo "ran $name" >&2
}

run bench_table1_nestjoin --benchmark_filter='BM_NestJoinHash'
run bench_nestjoin_impls \
  --benchmark_filter='BM_(NestJoinHash|OuterJoinThenNest)(T4)?/'

python3 - "$OUT_DIR" "$REPO_ROOT/BENCH_nestjoin.json" <<'EOF'
import json, pathlib, sys

out_dir, dest = pathlib.Path(sys.argv[1]), pathlib.Path(sys.argv[2])
merged = {"context": None, "suites": {}}
for path in sorted(out_dir.glob("*.json")):
    data = json.loads(path.read_text())
    if merged["context"] is None:
        merged["context"] = data.get("context", {})
    merged["suites"][path.stem] = data.get("benchmarks", [])
dest.write_text(json.dumps(merged, indent=2) + "\n")
print(f"wrote {dest}", file=sys.stderr)
EOF
