#!/usr/bin/env bash
# Runs the nest-join benchmark suites and merges their google-benchmark
# JSON output into BENCH_nestjoin.json at the repo root, then the spill
# suite (in-memory vs budget-forced spilling) into BENCH_spill.json.
#
# Usage: bench/run_benches.sh [build-dir]   (default: build)
#
# The table1 suite carries the serial-vs-threaded comparison
# (BM_NestJoinHash vs BM_NestJoinHashT{2,4}); the impls suite compares the
# nest join against the outerjoin+nu* composition, serial and threaded.
# Note: threaded variants only beat serial on multi-core hosts — the
# "num_cpus" field in the JSON context records what this run had.
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT

# Generous wall-clock cap per suite so a wedged benchmark kills the run
# instead of hanging CI. Override with BENCH_TIMEOUT=<duration>.
BENCH_TIMEOUT="${BENCH_TIMEOUT:-30m}"

run() {
  local name="$1"
  shift
  local bin="$BUILD_DIR/bench/$name"
  if [[ ! -x "$bin" ]]; then
    echo "error: bench binary missing: $bin (build the '$name' target first)" >&2
    exit 1
  fi
  timeout "$BENCH_TIMEOUT" "$bin" \
    --benchmark_out="$OUT_DIR/$name.json" \
    --benchmark_out_format=json "$@" >/dev/null
  echo "ran $name" >&2
}

# Random interleaving + repetitions so the guarded-vs-unguarded delta
# (BM_NestJoinHashGuarded) is not polluted by process-lifetime drift —
# in registration order the guarded variant always runs later and
# inherits whatever the allocator/CPU state has become by then.
run bench_table1_nestjoin --benchmark_filter='BM_NestJoinHash' \
  --benchmark_enable_random_interleaving=true --benchmark_repetitions=3
run bench_nestjoin_impls \
  --benchmark_filter='BM_(NestJoinHash|OuterJoinThenNest)(T4)?/'

merge() {
python3 - "$1" "$2" <<'EOF'
import json, pathlib, sys

out_dir, dest = pathlib.Path(sys.argv[1]), pathlib.Path(sys.argv[2])
merged = {"context": None, "suites": {}}
for path in sorted(out_dir.glob("*.json")):
    data = json.loads(path.read_text())
    if merged["context"] is None:
        merged["context"] = data.get("context", {})
    merged["suites"][path.stem] = data.get("benchmarks", [])
dest.write_text(json.dumps(merged, indent=2) + "\n")
print(f"wrote {dest}", file=sys.stderr)
EOF
}

merge "$OUT_DIR" "$REPO_ROOT/BENCH_nestjoin.json"

# Spill suite in its own JSON: in-memory baseline vs budget-forced Grace
# partitioning (192 KiB = deep recursion, 512 KiB = shallow).
SPILL_OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR" "$SPILL_OUT_DIR"' EXIT
(
  OUT_DIR="$SPILL_OUT_DIR"
  run bench_spill
)
merge "$SPILL_OUT_DIR" "$REPO_ROOT/BENCH_spill.json"

# Subplan memoization suite: cached vs uncached correlated subqueries under
# the naive strategy, across hit ratios (~99.9% down to ~0%).
SUBPLAN_OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR" "$SPILL_OUT_DIR" "$SUBPLAN_OUT_DIR"' EXIT
(
  OUT_DIR="$SUBPLAN_OUT_DIR"
  run bench_subplan
)
merge "$SUBPLAN_OUT_DIR" "$REPO_ROOT/BENCH_subplan.json"

# Columnar suite: row vs columnar execution of the same plan shapes —
# scan+filter across selectivities, the Table 1 nest-equijoin shape and
# the Table 2 semi-join shape, serial and with a 4-thread pool.
COLUMNAR_OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR" "$SPILL_OUT_DIR" "$SUBPLAN_OUT_DIR" "$COLUMNAR_OUT_DIR"' EXIT
(
  OUT_DIR="$COLUMNAR_OUT_DIR"
  run bench_columnar
)
merge "$COLUMNAR_OUT_DIR" "$REPO_ROOT/BENCH_columnar.json"

# Strategy suite: cost-based auto against each forced strategy on the
# high- and low-hit-ratio correlated workloads, plus the adaptive
# mid-query switch under a thrashing cache. Auto should sit within ~10%
# of the best forced bar on both workloads.
STRATEGY_OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR" "$SPILL_OUT_DIR" "$SUBPLAN_OUT_DIR" "$COLUMNAR_OUT_DIR" "$STRATEGY_OUT_DIR"' EXIT
(
  OUT_DIR="$STRATEGY_OUT_DIR"
  run bench_strategy
)
merge "$STRATEGY_OUT_DIR" "$REPO_ROOT/BENCH_strategy.json"

# Scheduler suite: static per-thread pre-splitting (legacy ThreadPool) vs
# dynamic morsel stealing on a skewed Table-1 workload at 1/2/4/8 threads,
# the two-query interference pair, and the real skewed hash nest join end
# to end. Caveat: on a single-core CI host stealing never fires and the
# static-vs-stealing gap collapses — read the context "num_cpus" field
# before comparing bars across machines.
SCHED_OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR" "$SPILL_OUT_DIR" "$SUBPLAN_OUT_DIR" "$COLUMNAR_OUT_DIR" "$STRATEGY_OUT_DIR" "$SCHED_OUT_DIR"' EXIT
(
  OUT_DIR="$SCHED_OUT_DIR"
  run bench_sched
)
merge "$SCHED_OUT_DIR" "$REPO_ROOT/BENCH_sched.json"

# Compare the fresh numbers against the committed baselines; warns on >15%
# real_time regressions (pass --strict via BENCH_DIFF_ARGS to make that
# fatal in CI).
python3 "$REPO_ROOT/scripts/bench_diff.py" ${BENCH_DIFF_ARGS:-} || exit 1
