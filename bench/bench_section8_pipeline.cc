// Experiment E5 — the Section 8 query-processing example: a three-block
// linear nested query with neighbour correlations.
//
//   SELECT x FROM X x WHERE x.a ⊆ (SELECT y.a FROM Y y
//     WHERE x.b = y.b AND y.c ⊆ (SELECT z.c FROM Z z WHERE y.d = z.d))
//
// Both predicates require grouping (Table 2), so the paper's strategy is
// the two-nest-join pipeline of steps (1)–(4). The paper's variant — with
// ⊆ replaced by ∈ / ∉ — turns both nest joins into a semijoin and an
// antijoin. This bench reproduces both plans and compares them against
// naive evaluation across scales.

#include <cstdio>
#include <string>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "workload/generators.h"

namespace tmdb {
namespace {

using bench::GlobalDbCache;
using bench::MustRun;

const char* kSubsetQuery =
    "SELECT x FROM X x WHERE x.a SUBSETEQ ("
    "SELECT y.a FROM Y y WHERE x.b = y.b AND y.c SUBSETEQ ("
    "SELECT z.c FROM Z z WHERE y.d = z.d))";

// The paper's variant: ⊆ → ∈ at the outer level, ⊆ → ∉ at the inner.
const char* kMembershipQuery =
    "SELECT x FROM X x WHERE 2 IN ("
    "SELECT y.a FROM Y y WHERE x.b = y.b AND 3 NOT IN ("
    "SELECT z.c FROM Z z WHERE y.d = z.d))";

Database* DbFor(size_t scale) {
  return GlobalDbCache().Get("sec8_" + std::to_string(scale),
                             [scale](Database* db) {
                               Section8Config config;
                               config.num_x = scale;
                               config.num_y = 2 * scale;
                               config.num_z = 4 * scale;
                               config.b_domain =
                                   static_cast<int64_t>(scale) / 2 + 1;
                               config.d_domain =
                                   static_cast<int64_t>(scale) + 1;
                               config.seed = 44;
                               return LoadSection8Tables(db, config);
                             });
}

void PrintPipeline() {
  Database* db = DbFor(100);
  std::printf("== Experiment E5: Section 8 three-block pipeline ==\n");
  std::printf("query: %s\n\n", kSubsetQuery);
  auto plan = db->Plan(kSubsetQuery, Strategy::kNestJoin);
  if (plan.ok()) {
    std::printf("paper strategy plan (steps (1)-(4): nest join Z into Y, "
                "select, nest join into X, select):\n%s\n",
                (*plan)->ToString().c_str());
  }
  auto variant = db->Plan(kMembershipQuery, Strategy::kNestJoin);
  if (variant.ok()) {
    std::printf("membership variant plan (nest joins replaced by semijoin/"
                "antijoin):\n%s\n",
                (*variant)->ToString().c_str());
  }
  // Result parity at a fixed scale.
  const size_t naive = MustRun(db, kSubsetQuery, Strategy::kNaive).rows.size();
  const size_t nest =
      MustRun(db, kSubsetQuery, Strategy::kNestJoin).rows.size();
  std::printf("rows: naive = %zu, nest-join pipeline = %zu (%s)\n\n", naive,
              nest, naive == nest ? "match" : "MISMATCH");
}

void BM_SubsetNaive(benchmark::State& state) {
  Database* db = DbFor(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustRun(db, kSubsetQuery, Strategy::kNaive).rows.size());
  }
}
void BM_SubsetPipeline(benchmark::State& state) {
  Database* db = DbFor(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustRun(db, kSubsetQuery, Strategy::kNestJoin).rows.size());
  }
}
void BM_MembershipNaive(benchmark::State& state) {
  Database* db = DbFor(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustRun(db, kMembershipQuery, Strategy::kNaive).rows.size());
  }
}
void BM_MembershipFlatJoins(benchmark::State& state) {
  Database* db = DbFor(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustRun(db, kMembershipQuery, Strategy::kNestJoin).rows.size());
  }
}
void BM_MembershipNestJoinsOnly(benchmark::State& state) {
  // Ablation: force nest joins even where semijoin/antijoin would do.
  Database* db = DbFor(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustRun(db, kMembershipQuery, Strategy::kNestJoinOnly).rows.size());
  }
}

// Naive cost is cubic-ish on this query (three blocks); keep its range low.
BENCHMARK(BM_SubsetNaive)->Arg(25)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SubsetPipeline)->Arg(25)->Arg(50)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MembershipNaive)->Arg(25)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MembershipFlatJoins)->Arg(25)->Arg(50)->Arg(100)->Arg(400)
    ->Arg(1600)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MembershipNestJoinsOnly)->Arg(25)->Arg(50)->Arg(100)->Arg(400)
    ->Arg(1600)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tmdb

int main(int argc, char** argv) {
  tmdb::PrintPipeline();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
