// Experiment E4 — the nest join vs its relational work-alike (Section 6).
//
// For predicates that require grouping (x.b = count(z), x.a ⊆ z), compares:
//   naive          — nested-loop re-evaluation of the subquery per row,
//   outerjoin      — Ganski–Wong: outerjoin then ν* (NULL-group → ∅),
//   nestjoin       — the paper's operator: grouping during the join,
//   nestjoin-only  — identical here (grouping predicates never flatten).
//
// The paper's claim: the nest join does the outerjoin-plus-nest work in one
// operator without NULLs; both scale like a join, unlike naive evaluation.

#include <cstdio>
#include <string>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "workload/generators.h"

namespace tmdb {
namespace {

using bench::GlobalDbCache;
using bench::MustRun;

const char* kCountQuery =
    "SELECT x FROM R x WHERE x.b = count(SELECT y.d FROM S y "
    "WHERE x.c = y.c)";
const char* kSubsetQuery =
    "SELECT x FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y "
    "WHERE x.b = y.b)";

Database* CountDb(size_t scale) {
  return GlobalDbCache().Get("e4count" + std::to_string(scale),
                             [scale](Database* db) {
                               CountBugConfig config;
                               config.num_r = scale;
                               config.num_s = 2 * scale;
                               config.seed = 7;
                               return LoadCountBugTables(db, config);
                             });
}

Database* SubsetDb(size_t scale) {
  return GlobalDbCache().Get("e4subset" + std::to_string(scale),
                             [scale](Database* db) {
                               SubsetBugConfig config;
                               config.num_x = scale;
                               config.num_y = 2 * scale;
                               config.seed = 8;
                               return LoadSubsetBugTables(db, config);
                             });
}

void PrintWorkComparison() {
  std::printf("== Experiment E4: nest join vs outerjoin+nest* vs naive "
              "(Section 6) ==\n");
  std::printf("grouping query: %s\n\n", kCountQuery);
  std::printf("%6s | %-12s | %14s | %10s | %10s\n", "|R|", "strategy",
              "pred evals", "rows built", "rows");
  std::printf("%s\n", std::string(70, '-').c_str());
  for (size_t scale : {200u, 800u}) {
    Database* db = CountDb(scale);
    for (Strategy strategy : {Strategy::kNaive, Strategy::kOuterJoin,
                              Strategy::kNestJoin}) {
      QueryResult result = MustRun(db, kCountQuery, strategy);
      std::printf("%6zu | %-12s | %14llu | %10llu | %10zu\n", scale,
                  StrategyName(strategy).c_str(),
                  static_cast<unsigned long long>(
                      result.stats.predicate_evals),
                  static_cast<unsigned long long>(result.stats.rows_built),
                  result.rows.size());
    }
  }
  std::printf("\n");
}

void BM_Count(benchmark::State& state, Strategy strategy) {
  Database* db = CountDb(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustRun(db, kCountQuery, strategy).rows.size());
  }
}
void BM_Subset(benchmark::State& state, Strategy strategy) {
  Database* db = SubsetDb(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustRun(db, kSubsetQuery, strategy).rows.size());
  }
}

void BM_CountNaive(benchmark::State& state) {
  BM_Count(state, Strategy::kNaive);
}
void BM_CountOuterJoin(benchmark::State& state) {
  BM_Count(state, Strategy::kOuterJoin);
}
void BM_CountNestJoin(benchmark::State& state) {
  BM_Count(state, Strategy::kNestJoin);
}
void BM_SubsetNaive(benchmark::State& state) {
  BM_Subset(state, Strategy::kNaive);
}
void BM_SubsetOuterJoin(benchmark::State& state) {
  BM_Subset(state, Strategy::kOuterJoin);
}
void BM_SubsetNestJoin(benchmark::State& state) {
  BM_Subset(state, Strategy::kNestJoin);
}

BENCHMARK(BM_CountNaive)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CountOuterJoin)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CountNestJoin)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SubsetNaive)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SubsetOuterJoin)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SubsetNestJoin)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tmdb

int main(int argc, char** argv) {
  tmdb::PrintWorkComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
