// Cost-based strategy choice (strategy = auto) against the forced
// strategies, over the two workload poles the cost model must tell apart:
//
//  - high hit ratio: 10 distinct correlation values over 10k outer rows —
//    memoized naive evaluation does 10 inner evaluations instead of 10k,
//    and auto must pick it;
//  - low hit ratio: every outer row has its own correlation value — the
//    memo never hits, the unnested rewrites win, and auto must pick one.
//
// Shape expected: on each workload auto lands within ~10% of the best
// forced strategy (the delta is its sampling overhead: one reservoir pass
// per table per run). The strategy_chosen counter records the pick
// (1 = naive, 4 = nestjoin, 5 = nestjoin-only) and strategy_switches stays
// 0 — the estimates are accurate here, so the adaptive probe never fires.
// BM_AutoAdaptiveSwitch bounds the cost of a *wrong* pick: a 1-byte cache
// thrashes the memo, the controller detects the miss storm at the 64th
// probe and restarts with the nest join; the re-planned run is bounded by
// naive-uncached above it.

#include <cstdio>
#include <string>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/database.h"
#include "translate/strategies.h"
#include "workload/generators.h"

namespace tmdb {
namespace {

using bench::CheckOk;
using bench::GlobalDbCache;

constexpr char kQuery[] =
    "SELECT (a = o.a, n = count(SELECT i.v FROM I i WHERE o.k = i.k)) "
    "FROM O o";

constexpr size_t kNumOuter = 20000;
constexpr size_t kNumInner = 1000;

Database* CorrelatedDb(int64_t scale) {
  return GlobalDbCache().Get("strategy_corr_" + std::to_string(scale),
                             [scale](Database* db) {
                               CorrelatedConfig config;
                               config.num_outer = kNumOuter;
                               config.num_inner = kNumInner;
                               config.correlation_scale = scale;
                               return LoadCorrelatedTables(db, config);
                             });
}

void RunStrategy(benchmark::State& state, int64_t scale, Strategy strategy,
                 uint64_t cache_bytes = 16ull << 20) {
  Database* db = CorrelatedDb(scale);
  RunOptions options;
  options.strategy = strategy;
  options.subplan_cache_bytes = cache_bytes;
  ExecStats stats;
  size_t rows = 0;
  for (auto _ : state) {
    QueryResult result = CheckOk(db->Run(kQuery, options), kQuery);
    rows = result.rows.size();
    stats = result.stats;
    benchmark::DoNotOptimize(result.rows);
  }
  if (rows != kNumOuter) {
    std::fprintf(stderr, "bench_strategy: expected %zu rows, got %zu\n",
                 kNumOuter, rows);
    std::abort();
  }
  state.counters["strategy_chosen"] =
      static_cast<double>(stats.strategy_chosen);
  state.counters["strategy_switches"] =
      static_cast<double>(stats.strategy_switches);
  state.counters["subplan_evals"] = static_cast<double>(stats.subplan_evals);
}

// ------------------------- high hit ratio: memoized naive should win

void BM_HighHitAuto(benchmark::State& state) {
  RunStrategy(state, /*scale=*/10, Strategy::kAuto);
}
BENCHMARK(BM_HighHitAuto)->Unit(benchmark::kMillisecond);

void BM_HighHitNaiveMemoized(benchmark::State& state) {
  RunStrategy(state, /*scale=*/10, Strategy::kNaive);
}
BENCHMARK(BM_HighHitNaiveMemoized)->Unit(benchmark::kMillisecond);

void BM_HighHitNestJoin(benchmark::State& state) {
  RunStrategy(state, /*scale=*/10, Strategy::kNestJoin);
}
BENCHMARK(BM_HighHitNestJoin)->Unit(benchmark::kMillisecond);

void BM_HighHitNestJoinOnly(benchmark::State& state) {
  RunStrategy(state, /*scale=*/10, Strategy::kNestJoinOnly);
}
BENCHMARK(BM_HighHitNestJoinOnly)->Unit(benchmark::kMillisecond);

// --------------------------- low hit ratio: unnesting should win

void BM_LowHitAuto(benchmark::State& state) {
  RunStrategy(state, /*scale=*/kNumOuter, Strategy::kAuto);
}
BENCHMARK(BM_LowHitAuto)->Unit(benchmark::kMillisecond);

void BM_LowHitNaiveMemoized(benchmark::State& state) {
  RunStrategy(state, /*scale=*/kNumOuter, Strategy::kNaive);
}
BENCHMARK(BM_LowHitNaiveMemoized)->Unit(benchmark::kMillisecond);

void BM_LowHitNestJoin(benchmark::State& state) {
  RunStrategy(state, /*scale=*/kNumOuter, Strategy::kNestJoin);
}
BENCHMARK(BM_LowHitNestJoin)->Unit(benchmark::kMillisecond);

void BM_LowHitNestJoinOnly(benchmark::State& state) {
  RunStrategy(state, /*scale=*/kNumOuter, Strategy::kNestJoinOnly);
}
BENCHMARK(BM_LowHitNestJoinOnly)->Unit(benchmark::kMillisecond);

// -------------------- the adaptive switch: cost of a wrong estimate

// auto picks memoized naive (the estimate is right about the data), but a
// 1-byte cache cannot hold even one entry, so the observed hit ratio
// collapses and the run restarts with the nest join mid-query. The total —
// 64 wasted probes, the unwind, the re-planned full run — bounds the price
// of a mistaken pick against the forced nest join and the uncached naive
// it escapes from.
void BM_AutoAdaptiveSwitch(benchmark::State& state) {
  RunStrategy(state, /*scale=*/10, Strategy::kAuto, /*cache_bytes=*/1);
}
BENCHMARK(BM_AutoAdaptiveSwitch)->Unit(benchmark::kMillisecond);

void BM_NaiveUncached(benchmark::State& state) {
  RunStrategy(state, /*scale=*/10, Strategy::kNaive, /*cache_bytes=*/0);
}
BENCHMARK(BM_NaiveUncached)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tmdb

BENCHMARK_MAIN();
