// Experiment T1 — reproduces Table 1 of the paper: the nest equijoin of
// the flat relations X and Y on their second attribute (join function =
// identity). Dangling X tuples appear with the empty set, no NULLs.
//
// The micro-benchmarks then time the nest join operator itself on the
// paper instance and on scaled-up instances, for each implementation.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "base/random.h"
#include "bench/bench_util.h"
#include "catalog/table.h"
#include "exec/basic_ops.h"
#include "exec/executor.h"
#include "exec/hash_join.h"
#include "exec/merge_join.h"
#include "exec/nested_loop_join.h"

namespace tmdb {
namespace {

using bench::CheckOk;

std::shared_ptr<Table> MakeX(size_t n, uint64_t seed) {
  auto x = CheckOk(Table::Create("X", Type::Tuple({{"e", Type::Int()},
                                                   {"d", Type::Int()}})),
                   "X");
  Random rng(seed);
  for (size_t i = 0; i < n; ++i) {
    CheckOk(x->Insert(Value::Tuple(
                {"e", "d"},
                {Value::Int(static_cast<int64_t>(i)),
                 Value::Int(rng.UniformInt(0, static_cast<int64_t>(n / 2)))})),
            "X row");
  }
  return x;
}

std::shared_ptr<Table> MakeY(size_t n, uint64_t seed) {
  auto y = CheckOk(Table::Create("Y", Type::Tuple({{"a", Type::Int()},
                                                   {"b", Type::Int()}})),
                   "Y");
  Random rng(seed);
  for (size_t i = 0; i < n; ++i) {
    CheckOk(y->Insert(Value::Tuple(
                {"a", "b"},
                {Value::Int(static_cast<int64_t>(i)),
                 Value::Int(rng.UniformInt(0, static_cast<int64_t>(n / 2)))})),
            "Y row");
  }
  return y;
}

enum class Impl { kNestedLoop, kHash, kMerge };

PhysicalOpPtr MakeNestJoin(Impl impl, std::shared_ptr<Table> x,
                           std::shared_ptr<Table> y) {
  Expr xv = Expr::Var("x", x->schema());
  Expr yv = Expr::Var("y", y->schema());
  Expr xd = Expr::Must(Expr::Field(xv, "d"));
  Expr yb = Expr::Must(Expr::Field(yv, "b"));
  JoinSpec spec;
  spec.mode = JoinMode::kNestJoin;
  spec.left_var = "x";
  spec.right_var = "y";
  spec.right_type = y->schema();
  spec.func = yv;
  spec.label = "s";
  PhysicalOpPtr l(new TableScanOp(std::move(x)));
  PhysicalOpPtr r(new TableScanOp(std::move(y)));
  switch (impl) {
    case Impl::kNestedLoop:
      spec.pred = Expr::Must(Expr::Binary(BinaryOp::kEq, xd, yb));
      return PhysicalOpPtr(
          new NestedLoopJoinOp(std::move(l), std::move(r), std::move(spec)));
    case Impl::kHash:
      spec.pred = Expr::True();
      return PhysicalOpPtr(new HashJoinOp(std::move(l), std::move(r),
                                          std::move(spec), {xd}, {yb}));
    case Impl::kMerge:
      spec.pred = Expr::True();
      return PhysicalOpPtr(new MergeJoinOp(std::move(l), std::move(r),
                                           std::move(spec), {xd}, {yb}));
  }
  return nullptr;
}

void PrintTable1Reproduction() {
  auto x = CheckOk(Table::Create("X", Type::Tuple({{"e", Type::Int()},
                                                   {"d", Type::Int()}})),
                   "X");
  auto y = CheckOk(Table::Create("Y", Type::Tuple({{"a", Type::Int()},
                                                   {"b", Type::Int()}})),
                   "Y");
  auto row2 = [](const char* n1, const char* n2, int64_t v1, int64_t v2) {
    return Value::Tuple({n1, n2}, {Value::Int(v1), Value::Int(v2)});
  };
  CheckOk(x->InsertAll({row2("e", "d", 1, 1), row2("e", "d", 2, 2),
                        row2("e", "d", 3, 3)}),
          "X rows");
  CheckOk(y->InsertAll({row2("a", "b", 1, 1), row2("a", "b", 2, 1),
                        row2("a", "b", 3, 3)}),
          "Y rows");
  std::printf("== Experiment T1: Table 1 — X, Y, and the nest equijoin of X "
              "and Y on the second attribute ==\n");
  std::printf("%s%s", x->ToString().c_str(), y->ToString().c_str());
  PhysicalOpPtr join = MakeNestJoin(Impl::kNestedLoop, x, y);
  Executor executor;
  auto rows = CheckOk(executor.RunPhysical(join.get()), "nest join");
  std::printf("X nestjoin Y (pred x.d = y.b, G = identity, label s):\n");
  for (const Value& row : rows) {
    std::printf("  %s\n", row.ToString().c_str());
  }
  std::printf("note: the dangling tuple <e = 2, d = 2> carries s = {} — the "
              "empty set is part of the model, no NULL needed.\n\n");
}

/// Tables cached by |X| only — every implementation and thread count at a
/// given size measures the identical loaded instance (|Y| = 2|X|).
std::pair<std::shared_ptr<Table>, std::shared_ptr<Table>>& CachedXY(size_t n) {
  static auto& tables =
      *new std::map<size_t,
                    std::pair<std::shared_ptr<Table>, std::shared_ptr<Table>>>();
  auto it = tables.find(n);
  if (it == tables.end()) {
    it = tables.emplace(n, std::make_pair(MakeX(n, 1), MakeY(2 * n, 2))).first;
  }
  return it->second;
}

void BM_NestJoin(benchmark::State& state, Impl impl, int threads,
                 bool guarded = false) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto& xy = CachedXY(n);
  PhysicalOpPtr join = MakeNestJoin(impl, xy.first, xy.second);
  Executor executor(threads);
  if (guarded) {
    // Generous limits that never trip but arm every guard path — deadline
    // clock reads, row accounting, and ValueMemory tracking — to measure
    // the governance overhead on the hot serial path.
    GuardLimits limits;
    limits.timeout_ms = 3600 * 1000;
    limits.memory_budget_bytes = 1ull << 40;
    limits.max_rows = 1ull << 60;
    executor.set_limits(limits);
  }
  for (auto _ : state) {
    auto rows = CheckOk(executor.RunPhysical(join.get()), "run");
    benchmark::DoNotOptimize(rows.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

void BM_NestJoinNL(benchmark::State& state) {
  BM_NestJoin(state, Impl::kNestedLoop, 1);
}
void BM_NestJoinHash(benchmark::State& state) {
  BM_NestJoin(state, Impl::kHash, 1);
}
void BM_NestJoinHashGuarded(benchmark::State& state) {
  BM_NestJoin(state, Impl::kHash, 1, /*guarded=*/true);
}
void BM_NestJoinHashT2(benchmark::State& state) {
  BM_NestJoin(state, Impl::kHash, 2);
}
void BM_NestJoinHashT4(benchmark::State& state) {
  BM_NestJoin(state, Impl::kHash, 4);
}
void BM_NestJoinMerge(benchmark::State& state) {
  BM_NestJoin(state, Impl::kMerge, 1);
}

BENCHMARK(BM_NestJoinNL)->Arg(3)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);
// 51200 gives |Y| = 102400 build rows — the parallel-build stress size.
BENCHMARK(BM_NestJoinHash)->Arg(3)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)
    ->Arg(51200)->Unit(benchmark::kMillisecond);
// Same serial path with all resource limits armed (none ever trip): the
// delta against BM_NestJoinHash is the guard-checkpoint overhead (<2%).
BENCHMARK(BM_NestJoinHashGuarded)->Arg(1600)->Arg(6400)->Arg(51200)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NestJoinHashT2)->Arg(6400)->Arg(51200)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NestJoinHashT4)->Arg(6400)->Arg(51200)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NestJoinMerge)->Arg(3)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tmdb

int main(int argc, char** argv) {
  tmdb::PrintTable1Reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
