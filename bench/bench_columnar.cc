// Columnar vs row execution of the hot scan/filter/join loops.
//
// Every benchmark here comes in a Row and a Columnar variant running the
// *same* physical plan shape over the same cached tables — the only delta
// is the columnar machinery (ColumnBatch scans, compiled column
// predicates, raw-key fast hash tables). Both variants produce
// bit-identical rows (columnar_exec_test asserts this); the numbers below
// measure what that costs or saves.
//
//   - BM_Filter{Row,Col}*: scan → σ(x.v < c) at selectivities 1%, 50%,
//     99%, under 1 and 4 executor threads (the filter itself is serial —
//     the thread axis documents that the columnar path is unaffected by a
//     pool being attached).
//   - BM_T1Nest{Row,Col}*: the Table 1 shape — nest equijoin X ⋈ Y on
//     x.v = y.v with G = identity. The argument is the average number of
//     matches per key (2 = the paper's Table 1 density, 16 = group-heavy,
//     where the fast path's per-group memo pays off).
//   - BM_T2Semi{Row,Col}*: the Table 2 EXISTS shape — semi join where
//     most probes miss, so per-probe key handling dominates.

#include <cstdio>
#include <map>
#include <memory>
#include <utility>

#include <benchmark/benchmark.h>

#include "base/random.h"
#include "bench/bench_util.h"
#include "catalog/table.h"
#include "exec/basic_ops.h"
#include "exec/columnar.h"
#include "exec/executor.h"
#include "exec/hash_join.h"

namespace tmdb {
namespace {

using bench::CheckOk;

// Filter input: kFilterRows rows, v uniform in [0, kDomain) so a cutoff of
// kDomain * s gives selectivity s.
constexpr size_t kFilterRows = 1 << 18;
constexpr int64_t kDomain = 1'000'000;

std::shared_ptr<Table> MakeFlat(const char* name, size_t n, int64_t domain,
                                uint64_t seed) {
  auto t = CheckOk(Table::Create(name, Type::Tuple({{"v", Type::Int()},
                                                    {"w", Type::Int()}})),
                   name);
  Random rng(seed);
  for (size_t i = 0; i < n; ++i) {
    CheckOk(t->Insert(Value::Tuple({"v", "w"},
                                   {Value::Int(rng.UniformInt(0, domain - 1)),
                                    Value::Int(static_cast<int64_t>(i))})),
            name);
  }
  return t;
}

/// Tables cached by name — every variant and thread count measures the
/// identical loaded instance.
std::shared_ptr<Table> Cached(const char* name, size_t n, int64_t domain,
                              uint64_t seed) {
  static auto& tables =
      *new std::map<std::string, std::shared_ptr<Table>>();
  auto it = tables.find(name);
  if (it == tables.end()) {
    it = tables.emplace(name, MakeFlat(name, n, domain, seed)).first;
  }
  return it->second;
}

PhysicalOpPtr MakeFilterPlan(bool columnar, int64_t cutoff) {
  auto t = Cached("F", kFilterRows, kDomain, 7);
  Expr xv = Expr::Var("x", t->schema());
  Expr pred = Expr::Must(Expr::Binary(BinaryOp::kLt,
                                      Expr::Must(Expr::Field(xv, "v")),
                                      Expr::Literal(Value::Int(cutoff))));
  std::optional<ColumnPredicate> cpred;
  if (columnar) {
    cpred = ColumnPredicate::Compile(pred, "x", t->schema());
    if (!cpred.has_value()) {
      std::fprintf(stderr, "bench setup failed: filter predicate did not "
                           "compile to a column program\n");
      std::abort();
    }
  }
  PhysicalOpPtr scan(new TableScanOp(t, columnar));
  return PhysicalOpPtr(
      new FilterOp(std::move(scan), "x", std::move(pred), std::move(cpred)));
}

void BM_Filter(benchmark::State& state, bool columnar, int threads) {
  // range(0) is the selectivity in per mille: 10 / 500 / 990.
  const int64_t cutoff = kDomain * state.range(0) / 1000;
  PhysicalOpPtr plan = MakeFilterPlan(columnar, cutoff);
  Executor executor(threads);
  for (auto _ : state) {
    auto rows = CheckOk(executor.RunPhysical(plan.get()), "filter");
    benchmark::DoNotOptimize(rows.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kFilterRows));
}

// Join inputs. Table 1 shape: keys in [0, n/2) on both sides, so every
// probe finds ~2 matches. Table 2 shape: build side covers ~6% of the
// probe key domain, so most probes miss.
constexpr size_t kJoinRows = 1 << 16;

PhysicalOpPtr MakeJoinPlan(bool columnar, JoinMode mode, int matches) {
  std::shared_ptr<Table> x, y;
  if (mode == JoinMode::kNestJoin) {
    const auto domain =
        static_cast<int64_t>(kJoinRows) / static_cast<int64_t>(matches);
    const std::string xn = "XN" + std::to_string(matches);
    const std::string yn = "YN" + std::to_string(matches);
    x = Cached(xn.c_str(), kJoinRows, domain, 11);
    y = Cached(yn.c_str(), kJoinRows, domain, 13);
  } else {
    x = Cached("XS", kJoinRows, kDomain, 17);
    y = Cached("YS", kJoinRows / 4, kDomain, 19);
  }
  Expr xv = Expr::Var("x", x->schema());
  Expr yv = Expr::Var("y", y->schema());
  Expr xd = Expr::Must(Expr::Field(xv, "v"));
  Expr yb = Expr::Must(Expr::Field(yv, "v"));
  JoinSpec spec;
  spec.mode = mode;
  spec.left_var = "x";
  spec.right_var = "y";
  spec.pred = Expr::True();
  spec.right_type = y->schema();
  if (mode == JoinMode::kNestJoin) {
    spec.func = yv;
    spec.label = "s";
  }
  std::optional<FastKeySpec> fast;
  if (columnar) {
    fast = ResolveFastKeys({xd}, {yb}, "x", "y");
    if (!fast.has_value()) {
      std::fprintf(stderr, "bench setup failed: join keys did not resolve "
                           "to a raw-key spec\n");
      std::abort();
    }
  }
  PhysicalOpPtr l(new TableScanOp(std::move(x), columnar));
  PhysicalOpPtr r(new TableScanOp(std::move(y), columnar));
  return PhysicalOpPtr(new HashJoinOp(std::move(l), std::move(r),
                                      std::move(spec), {xd}, {yb},
                                      std::move(fast)));
}

void BM_Join(benchmark::State& state, bool columnar, JoinMode mode,
             int threads) {
  // range(0) is the average matches per key for the nest-join shape; the
  // semi-join shape ignores it.
  const int matches =
      mode == JoinMode::kNestJoin ? static_cast<int>(state.range(0)) : 0;
  PhysicalOpPtr plan = MakeJoinPlan(columnar, mode, matches);
  Executor executor(threads);
  for (auto _ : state) {
    auto rows = CheckOk(executor.RunPhysical(plan.get()), "join");
    benchmark::DoNotOptimize(rows.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kJoinRows));
}

void BM_FilterRowT1(benchmark::State& s) { BM_Filter(s, false, 1); }
void BM_FilterColT1(benchmark::State& s) { BM_Filter(s, true, 1); }
void BM_FilterRowT4(benchmark::State& s) { BM_Filter(s, false, 4); }
void BM_FilterColT4(benchmark::State& s) { BM_Filter(s, true, 4); }

void BM_T1NestRowT1(benchmark::State& s) {
  BM_Join(s, false, JoinMode::kNestJoin, 1);
}
void BM_T1NestColT1(benchmark::State& s) {
  BM_Join(s, true, JoinMode::kNestJoin, 1);
}
void BM_T1NestRowT4(benchmark::State& s) {
  BM_Join(s, false, JoinMode::kNestJoin, 4);
}
void BM_T1NestColT4(benchmark::State& s) {
  BM_Join(s, true, JoinMode::kNestJoin, 4);
}

void BM_T2SemiRowT1(benchmark::State& s) {
  BM_Join(s, false, JoinMode::kSemi, 1);
}
void BM_T2SemiColT1(benchmark::State& s) {
  BM_Join(s, true, JoinMode::kSemi, 1);
}
void BM_T2SemiRowT4(benchmark::State& s) {
  BM_Join(s, false, JoinMode::kSemi, 4);
}
void BM_T2SemiColT4(benchmark::State& s) {
  BM_Join(s, true, JoinMode::kSemi, 4);
}

#define TMDB_FILTER_ARGS ->Arg(10)->Arg(500)->Arg(990)\
    ->Unit(benchmark::kMillisecond)
BENCHMARK(BM_FilterRowT1) TMDB_FILTER_ARGS;
BENCHMARK(BM_FilterColT1) TMDB_FILTER_ARGS;
BENCHMARK(BM_FilterRowT4) TMDB_FILTER_ARGS;
BENCHMARK(BM_FilterColT4) TMDB_FILTER_ARGS;
#undef TMDB_FILTER_ARGS

BENCHMARK(BM_T1NestRowT1)->Arg(2)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_T1NestColT1)->Arg(2)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_T1NestRowT4)->Arg(2)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_T1NestColT4)->Arg(2)->Arg(16)->Unit(benchmark::kMillisecond);

BENCHMARK(BM_T2SemiRowT1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_T2SemiColT1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_T2SemiRowT4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_T2SemiColT4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tmdb

BENCHMARK_MAIN();
