// Experiment E1 — the COUNT bug (paper Section 2).
//
// Query: SELECT * FROM R WHERE R.b = COUNT(SELECT * FROM S WHERE R.c = S.c)
//
// Reproduces the paper's claim: Kim's transformation loses the dangling
// R tuples with b = 0; the outerjoin repair (Ganski–Wong) and the nest
// join strategy return exactly the naive (correct) answer. The benchmark
// then measures the cost of each strategy as |R|,|S| scale.

#include <cstdio>
#include <string>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "workload/generators.h"

namespace tmdb {
namespace {

using bench::GlobalDbCache;
using bench::MustRun;

const char* kQuery =
    "SELECT x FROM R x WHERE x.b = count(SELECT y.d FROM S y "
    "WHERE x.c = y.c)";

Database* DbFor(size_t scale) {
  return GlobalDbCache().Get("countbug" + std::to_string(scale),
                             [scale](Database* db) {
                               CountBugConfig config;
                               config.num_r = scale;
                               config.num_s = 2 * scale;
                               config.match_fraction = 0.7;
                               config.seed = 42;
                               return LoadCountBugTables(db, config);
                             });
}

void PrintBugReproduction() {
  Database* db = DbFor(400);
  std::printf("== Experiment E1: the COUNT bug (Section 2) ==\n");
  std::printf("query: %s\n", kQuery);
  std::printf("R: 400 rows, S: 800 rows, ~30%% of R dangling on c\n\n");
  const size_t naive = MustRun(db, kQuery, Strategy::kNaive).rows.size();
  const size_t kim = MustRun(db, kQuery, Strategy::kKim).rows.size();
  const size_t outer = MustRun(db, kQuery, Strategy::kOuterJoin).rows.size();
  const size_t nest = MustRun(db, kQuery, Strategy::kNestJoin).rows.size();
  std::printf("%-28s | rows | correct?\n", "strategy");
  std::printf("%s\n", std::string(50, '-').c_str());
  std::printf("%-28s | %4zu | (ground truth)\n", "naive nested-loop", naive);
  std::printf("%-28s | %4zu | %s   <-- the COUNT bug\n", "Kim's algorithm",
              kim, kim == naive ? "yes" : "NO");
  std::printf("%-28s | %4zu | %s\n", "Ganski-Wong outerjoin + nest*", outer,
              outer == naive ? "yes" : "NO");
  std::printf("%-28s | %4zu | %s\n", "nest join (this paper)", nest,
              nest == naive ? "yes" : "NO");
  std::printf("\n");
}

void BM_Strategy(benchmark::State& state, Strategy strategy) {
  Database* db = DbFor(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    QueryResult result = MustRun(db, kQuery, strategy);
    benchmark::DoNotOptimize(result.rows.size());
  }
  state.SetLabel(StrategyName(strategy));
}

void BM_CountBugNaive(benchmark::State& state) {
  BM_Strategy(state, Strategy::kNaive);
}
void BM_CountBugKim(benchmark::State& state) {
  BM_Strategy(state, Strategy::kKim);
}
void BM_CountBugOuterJoin(benchmark::State& state) {
  BM_Strategy(state, Strategy::kOuterJoin);
}
void BM_CountBugNestJoin(benchmark::State& state) {
  BM_Strategy(state, Strategy::kNestJoin);
}

// The naive strategy re-executes the subquery per R row: quadratic. Keep
// its sweep shorter.
BENCHMARK(BM_CountBugNaive)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CountBugKim)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CountBugOuterJoin)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CountBugNestJoin)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tmdb

int main(int argc, char** argv) {
  tmdb::PrintBugReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
