// Spill-path cost: the Table-1 nest-join (COUNT-bug shaped) query executed
// in memory versus under a memory budget small enough to force two levels
// of Grace partitioning to disk.
//
// Shape expected: the spilled run pays codec + checksum + I/O per build and
// probe row, bounded by a small multiple of the in-memory time for a
// dataset this size (the spill files live in tmpfs-or-page-cache here, so
// this measures the software overhead, not disk latency).

#include <cstdio>
#include <filesystem>
#include <string>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/database.h"
#include "workload/generators.h"

namespace tmdb {
namespace {

using bench::CheckOk;
using bench::GlobalDbCache;

constexpr char kQuery[] =
    "SELECT x FROM R x WHERE x.b = count(SELECT y.d FROM S y "
    "WHERE x.c = y.c)";

// Wide sparse key domain (see tests/spill_exec_test.cc): the build side
// dwarfs the join output, so a budget window exists where the build must
// spill but the result still fits.
Database* SpillDb() {
  return GlobalDbCache().Get("spill_countbug", [](Database* db) {
    CountBugConfig config;
    config.num_r = 100;
    config.num_s = 24000;
    config.match_fraction = 0.5;
    config.domain_scale = 64;
    return LoadCountBugTables(db, config);
  });
}

RunOptions SpillOptions(uint64_t budget, const std::string& dir) {
  RunOptions options;
  options.strategy = Strategy::kNestJoin;
  options.join_impl = JoinImpl::kHash;
  options.memory_budget_bytes = budget;
  options.enable_spill = budget > 0;
  options.spill_dir = dir;
  options.spill_block_bytes = 64 << 10;
  return options;
}

void BM_NestJoinHashInMemory(benchmark::State& state) {
  Database* db = SpillDb();
  size_t rows = 0;
  for (auto _ : state) {
    QueryResult result = CheckOk(db->Run(kQuery, SpillOptions(0, "")), kQuery);
    rows = result.rows.size();
    benchmark::DoNotOptimize(result.rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_NestJoinHashInMemory)->Unit(benchmark::kMillisecond);

void BM_NestJoinHashSpill(benchmark::State& state) {
  Database* db = SpillDb();
  namespace fs = std::filesystem;
  const fs::path base = fs::temp_directory_path() / "tmdb_bench_spill";
  std::error_code ec;
  fs::remove_all(base, ec);
  fs::create_directories(base, ec);
  // The budget (in KiB, from the benchmark argument) sits well under the
  // build side's residency; 192 KiB forces at least two partitioning
  // levels on this dataset.
  const uint64_t budget = static_cast<uint64_t>(state.range(0)) << 10;
  size_t rows = 0;
  uint64_t spilled_bytes = 0;
  uint64_t depth = 0;
  for (auto _ : state) {
    QueryResult result =
        CheckOk(db->Run(kQuery, SpillOptions(budget, base.string())), kQuery);
    rows = result.rows.size();
    spilled_bytes = result.stats.spill_bytes_written;
    depth = result.stats.spill_max_depth;
    benchmark::DoNotOptimize(result.rows);
  }
  if (depth == 0) {
    std::fprintf(stderr, "bench_spill: budget %llu never spilled\n",
                 static_cast<unsigned long long>(budget));
    std::abort();
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["spill_MB"] =
      static_cast<double>(spilled_bytes) / (1024.0 * 1024.0);
  state.counters["depth"] = static_cast<double>(depth);
  fs::remove_all(base, ec);
}
BENCHMARK(BM_NestJoinHashSpill)
    ->Arg(192)   // tight: three partitioning levels on this dataset
    ->Arg(512)   // roomier: two levels
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tmdb

BENCHMARK_MAIN();
