// Spill-path cost: the Table-1 nest-join (COUNT-bug shaped) query executed
// in memory versus under a memory budget small enough to force the
// memory-bounded degrade paths to disk — Grace partitioning for the hash
// join, run-generation + merge for the sort-merge join's external sort,
// and partitioned ν* regrouping for the Ganski–Wong outerjoin strategy.
//
// Shape expected: each spilled run pays codec + checksum + I/O per build
// and probe row, bounded by a small multiple of its in-memory counterpart
// for a dataset this size (the spill files live in tmpfs-or-page-cache
// here, so this measures the software overhead, not disk latency).

#include <cstdio>
#include <filesystem>
#include <string>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/database.h"
#include "workload/generators.h"

namespace tmdb {
namespace {

using bench::CheckOk;
using bench::GlobalDbCache;

constexpr char kQuery[] =
    "SELECT x FROM R x WHERE x.b = count(SELECT y.d FROM S y "
    "WHERE x.c = y.c)";

// Wide sparse key domain (see tests/spill_exec_test.cc): the build side
// dwarfs the join output, so a budget window exists where the build must
// spill but the result still fits.
Database* SpillDb() {
  return GlobalDbCache().Get("spill_countbug", [](Database* db) {
    CountBugConfig config;
    config.num_r = 100;
    config.num_s = 24000;
    config.match_fraction = 0.5;
    config.domain_scale = 64;
    return LoadCountBugTables(db, config);
  });
}

RunOptions SpillOptions(uint64_t budget, const std::string& dir,
                        Strategy strategy = Strategy::kNestJoin,
                        JoinImpl impl = JoinImpl::kHash) {
  RunOptions options;
  options.strategy = strategy;
  options.join_impl = impl;
  options.memory_budget_bytes = budget;
  options.enable_spill = budget > 0;
  options.spill_dir = dir;
  options.spill_block_bytes = 64 << 10;
  return options;
}

/// Scratch directory for one benchmark's spill files; removed on
/// destruction so repetitions never see a predecessor's artefacts.
struct ScratchDir {
  explicit ScratchDir(const char* name)
      : path(std::filesystem::temp_directory_path() / name) {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
    std::filesystem::create_directories(path, ec);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::filesystem::path path;
};

void BM_NestJoinHashInMemory(benchmark::State& state) {
  Database* db = SpillDb();
  size_t rows = 0;
  for (auto _ : state) {
    QueryResult result = CheckOk(db->Run(kQuery, SpillOptions(0, "")), kQuery);
    rows = result.rows.size();
    benchmark::DoNotOptimize(result.rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_NestJoinHashInMemory)->Unit(benchmark::kMillisecond);

void BM_NestJoinHashSpill(benchmark::State& state) {
  Database* db = SpillDb();
  namespace fs = std::filesystem;
  const fs::path base = fs::temp_directory_path() / "tmdb_bench_spill";
  std::error_code ec;
  fs::remove_all(base, ec);
  fs::create_directories(base, ec);
  // The budget (in KiB, from the benchmark argument) sits well under the
  // build side's residency; 192 KiB forces at least two partitioning
  // levels on this dataset.
  const uint64_t budget = static_cast<uint64_t>(state.range(0)) << 10;
  size_t rows = 0;
  uint64_t spilled_bytes = 0;
  uint64_t depth = 0;
  for (auto _ : state) {
    QueryResult result =
        CheckOk(db->Run(kQuery, SpillOptions(budget, base.string())), kQuery);
    rows = result.rows.size();
    spilled_bytes = result.stats.spill_bytes_written;
    depth = result.stats.spill_max_depth;
    benchmark::DoNotOptimize(result.rows);
  }
  if (depth == 0) {
    std::fprintf(stderr, "bench_spill: budget %llu never spilled\n",
                 static_cast<unsigned long long>(budget));
    std::abort();
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["spill_MB"] =
      static_cast<double>(spilled_bytes) / (1024.0 * 1024.0);
  state.counters["depth"] = static_cast<double>(depth);
  fs::remove_all(base, ec);
}
BENCHMARK(BM_NestJoinHashSpill)
    ->Arg(192)   // tight: three partitioning levels on this dataset
    ->Arg(512)   // roomier: two levels
    ->Unit(benchmark::kMillisecond);

// --- external sort: the sort-merge nest join under budget -------------

void BM_NestJoinMergeInMemory(benchmark::State& state) {
  Database* db = SpillDb();
  RunOptions options =
      SpillOptions(0, "", Strategy::kNestJoin, JoinImpl::kMerge);
  size_t rows = 0;
  for (auto _ : state) {
    QueryResult result = CheckOk(db->Run(kQuery, options), kQuery);
    rows = result.rows.size();
    benchmark::DoNotOptimize(result.rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_NestJoinMergeInMemory)->Unit(benchmark::kMillisecond);

void BM_NestJoinMergeSortSpill(benchmark::State& state) {
  Database* db = SpillDb();
  ScratchDir scratch("tmdb_bench_sortspill");
  const uint64_t budget = static_cast<uint64_t>(state.range(0)) << 10;
  RunOptions options = SpillOptions(budget, scratch.path.string(),
                                    Strategy::kNestJoin, JoinImpl::kMerge);
  size_t rows = 0;
  uint64_t sort_runs = 0;
  uint64_t spilled_bytes = 0;
  for (auto _ : state) {
    QueryResult result = CheckOk(db->Run(kQuery, options), kQuery);
    rows = result.rows.size();
    sort_runs = result.stats.spill_sort_runs;
    spilled_bytes = result.stats.spill_bytes_written;
    benchmark::DoNotOptimize(result.rows);
  }
  if (sort_runs == 0) {
    std::fprintf(stderr, "bench_spill: budget %llu never external-sorted\n",
                 static_cast<unsigned long long>(budget));
    std::abort();
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["sort_runs"] = static_cast<double>(sort_runs);
  state.counters["spill_MB"] =
      static_cast<double>(spilled_bytes) / (1024.0 * 1024.0);
}
BENCHMARK(BM_NestJoinMergeSortSpill)
    ->Arg(256)   // many small sorted runs per input
    ->Arg(512)   // fewer, larger runs
    ->Unit(benchmark::kMillisecond);

// --- grouped materialisation: the outerjoin strategy's nu* under budget --

// Extra-sparse key domain (see tests/spill_exec_test.cc): the outerjoin's
// flat output is resident state no amount of spilling can shed, so the
// domain keeps it small while the grouping state still dwarfs the budget.
Database* GroupSpillDb() {
  return GlobalDbCache().Get("spill_countbug_sparse", [](Database* db) {
    CountBugConfig config;
    config.num_r = 100;
    config.num_s = 24000;
    config.match_fraction = 0.5;
    config.domain_scale = 256;
    return LoadCountBugTables(db, config);
  });
}

void BM_OuterJoinNuStarInMemory(benchmark::State& state) {
  Database* db = GroupSpillDb();
  RunOptions options = SpillOptions(0, "", Strategy::kOuterJoin);
  size_t rows = 0;
  for (auto _ : state) {
    QueryResult result = CheckOk(db->Run(kQuery, options), kQuery);
    rows = result.rows.size();
    benchmark::DoNotOptimize(result.rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_OuterJoinNuStarInMemory)->Unit(benchmark::kMillisecond);

void BM_OuterJoinNuStarGroupSpill(benchmark::State& state) {
  Database* db = GroupSpillDb();
  ScratchDir scratch("tmdb_bench_groupspill");
  const uint64_t budget = static_cast<uint64_t>(state.range(0)) << 10;
  RunOptions options =
      SpillOptions(budget, scratch.path.string(), Strategy::kOuterJoin);
  size_t rows = 0;
  uint64_t partitions = 0;
  uint64_t spilled_bytes = 0;
  for (auto _ : state) {
    QueryResult result = CheckOk(db->Run(kQuery, options), kQuery);
    rows = result.rows.size();
    partitions = result.stats.spill_partitions;
    spilled_bytes = result.stats.spill_bytes_written;
    benchmark::DoNotOptimize(result.rows);
  }
  if (partitions == 0) {
    std::fprintf(stderr, "bench_spill: budget %llu never group-spilled\n",
                 static_cast<unsigned long long>(budget));
    std::abort();
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["spill_MB"] =
      static_cast<double>(spilled_bytes) / (1024.0 * 1024.0);
}
BENCHMARK(BM_OuterJoinNuStarGroupSpill)
    ->Arg(256)   // the budget tests/spill_exec_test.cc proves exact
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tmdb

BENCHMARK_MAIN();
