// Experiment E2 — the SUBSETEQ bug (paper Section 4).
//
// Query: SELECT x FROM X x WHERE x.a ⊆ (SELECT y.a FROM Y y WHERE x.b = y.b)
//
// The paper's point: in a complex object model the COUNT bug is just one
// instance of a general problem — ANY predicate that holds on the empty
// subquery result breaks under Kim-style grouping, e.g. ⊆ with x.a = ∅.
// The nest join preserves dangling tuples without NULLs.

#include <cstdio>
#include <string>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "workload/generators.h"

namespace tmdb {
namespace {

using bench::GlobalDbCache;
using bench::MustRun;

const char* kQuery =
    "SELECT x FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y "
    "WHERE x.b = y.b)";

Database* DbFor(size_t scale) {
  return GlobalDbCache().Get("subsetbug" + std::to_string(scale),
                             [scale](Database* db) {
                               SubsetBugConfig config;
                               config.num_x = scale;
                               config.num_y = 2 * scale;
                               config.seed = 43;
                               return LoadSubsetBugTables(db, config);
                             });
}

void PrintBugReproduction() {
  Database* db = DbFor(400);
  std::printf("== Experiment E2: the SUBSETEQ bug (Section 4) ==\n");
  std::printf("query: %s\n", kQuery);
  std::printf(
      "X: 400 rows (20%% with a = {}), Y: 800 rows, ~30%% of X dangling\n\n");
  const size_t naive = MustRun(db, kQuery, Strategy::kNaive).rows.size();
  const size_t kim = MustRun(db, kQuery, Strategy::kKim).rows.size();
  const size_t outer = MustRun(db, kQuery, Strategy::kOuterJoin).rows.size();
  const size_t nest = MustRun(db, kQuery, Strategy::kNestJoin).rows.size();
  std::printf("%-28s | rows | correct?\n", "strategy");
  std::printf("%s\n", std::string(50, '-').c_str());
  std::printf("%-28s | %4zu | (ground truth)\n", "naive nested-loop", naive);
  std::printf("%-28s | %4zu | %s   <-- the SUBSETEQ bug\n", "Kim's algorithm",
              kim, kim == naive ? "yes" : "NO");
  std::printf("%-28s | %4zu | %s\n", "Ganski-Wong outerjoin + nest*", outer,
              outer == naive ? "yes" : "NO");
  std::printf("%-28s | %4zu | %s\n", "nest join (this paper)", nest,
              nest == naive ? "yes" : "NO");
  std::printf("\n");
}

void BM_Strategy(benchmark::State& state, Strategy strategy) {
  Database* db = DbFor(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    QueryResult result = MustRun(db, kQuery, strategy);
    benchmark::DoNotOptimize(result.rows.size());
  }
  state.SetLabel(StrategyName(strategy));
}

void BM_SubsetEqNaive(benchmark::State& state) {
  BM_Strategy(state, Strategy::kNaive);
}
void BM_SubsetEqOuterJoin(benchmark::State& state) {
  BM_Strategy(state, Strategy::kOuterJoin);
}
void BM_SubsetEqNestJoin(benchmark::State& state) {
  BM_Strategy(state, Strategy::kNestJoin);
}

BENCHMARK(BM_SubsetEqNaive)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SubsetEqOuterJoin)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SubsetEqNestJoin)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tmdb

int main(int argc, char** argv) {
  tmdb::PrintBugReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
