// Experiment SCHED — static pre-split dispatch vs the process-wide
// work-stealing scheduler on a skewed Table-1-shaped workload.
//
// The skew model: a probe of the Table 1 nest equijoin where one hot key
// owns a quarter of the rows and its grouping work costs ~9x a cold row
// (big group appends, set-value construction). Under the old static
// dispatch each thread got exactly one pre-cut chunk, so the chunk holding
// the hot range became a straggler and the other threads idled; with
// dynamic morsel claiming the hot range is ~64 separate morsels that idle
// threads steal.
//
//   BM_StaticSplit/T       one chunk per thread on a legacy ThreadPool
//   BM_WorkStealing/T      SplitMorsels + scheduler claim loop, cap = T
//   BM_Interference*       two concurrent 4-way "queries": two private
//                          static pools vs two caps on the one scheduler
//   BM_SkewedNestJoinHash  the real operator path end to end at each cap
//
// CI caveat: on a single-core host the scheduler has one worker, stealing
// never fires, and every variant collapses to serial — the context block's
// "num_cpus" field in BENCH_sched.json records what a run actually had.
// The >=2x static-vs-stealing gap at T=4 is a multi-core claim.

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "base/random.h"
#include "base/thread_pool.h"
#include "bench/bench_util.h"
#include "catalog/table.h"
#include "exec/basic_ops.h"
#include "exec/executor.h"
#include "exec/hash_join.h"
#include "exec/parallel_util.h"
#include "sched/scheduler.h"

namespace tmdb {
namespace {

using bench::CheckOk;

// ----------------------------------------------- synthetic skewed kernel

constexpr size_t kRows = size_t{1} << 16;
constexpr size_t kHotRows = kRows / 4;

/// Hot rows (the big group) cost 9x a cold row: ~75% of the total work
/// sits in the first quarter of the index space, i.e. inside one static
/// chunk whenever threads <= 4.
uint64_t SpinRow(size_t i) {
  uint64_t h = (i + 1) * 0x9E3779B97F4A7C15ull;
  const uint64_t iters = (i < kHotRows ? 9 : 1) * 40;
  for (uint64_t k = 0; k < iters; ++k) {
    h = h * 6364136223846793005ull + 1442695040888963407ull;
  }
  return h;
}

uint64_t DoMorsel(MorselRange m) {
  uint64_t acc = 0;
  for (size_t i = m.begin; i < m.end; ++i) acc ^= SpinRow(i);
  return acc;
}

/// The retired dispatch discipline, reconstructed on the legacy ThreadPool:
/// exactly one contiguous chunk per thread, membership fixed before any
/// work runs, join on every future.
uint64_t RunStatic(ThreadPool* pool, int threads) {
  const size_t chunk = (kRows + threads - 1) / threads;
  std::vector<std::future<uint64_t>> futures;
  futures.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    const size_t begin = std::min(kRows, t * chunk);
    const size_t end = std::min(kRows, begin + chunk);
    futures.push_back(
        pool->Submit([begin, end] { return DoMorsel({begin, end}); }));
  }
  uint64_t acc = 0;
  for (auto& f : futures) acc ^= f.get();
  return acc;
}

uint64_t RunStealing(QuerySched* sched) {
  const std::vector<MorselRange> morsels =
      SplitMorsels(kRows, sched->max_parallelism());
  std::vector<uint64_t> slots(morsels.size(), 0);
  Status status = Scheduler::Global().RunTaskSet(
      sched, morsels.size(), [&](size_t i) {
        slots[i] = DoMorsel(morsels[i]);
        return Status::OK();
      });
  CheckOk(status, "task set");
  uint64_t acc = 0;
  for (uint64_t s : slots) acc ^= s;
  return acc;
}

void BM_StaticSplit(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  ThreadPool pool(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunStatic(&pool, threads));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kRows));
}

void BM_WorkStealing(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  QuerySched sched(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunStealing(&sched));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kRows));
}

BENCHMARK(BM_StaticSplit)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_WorkStealing)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// -------------------------------------------- two-query interference

/// Two concurrent 4-way queries in the old world: each owns a private
/// 4-thread pool, so the process runs 8 OS threads on however many cores
/// exist, and neither pool can lend idle threads to the other's straggler.
void BM_InterferencePrivatePools(benchmark::State& state) {
  ThreadPool pool_a(4);
  ThreadPool pool_b(4);
  for (auto _ : state) {
    std::thread query_b([&] {
      benchmark::DoNotOptimize(RunStatic(&pool_b, 4));
    });
    benchmark::DoNotOptimize(RunStatic(&pool_a, 4));
    query_b.join();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * kRows));
}

/// The same two queries as caps on the one scheduler: both tagged, both
/// capped at 4, sharing whatever workers the hardware has. A straggler
/// morsel in either query is stolen by whoever is idle, regardless of
/// which query submitted it.
void BM_InterferenceSharedScheduler(benchmark::State& state) {
  QuerySched sched_a(4);
  QuerySched sched_b(4);
  for (auto _ : state) {
    std::thread query_b([&] {
      benchmark::DoNotOptimize(RunStealing(&sched_b));
    });
    benchmark::DoNotOptimize(RunStealing(&sched_a));
    query_b.join();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * kRows));
}

BENCHMARK(BM_InterferencePrivatePools)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_InterferenceSharedScheduler)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// ------------------------------------------- real operator path, skewed

/// Table-1 shape with a hot key: ~10% of Y lands on b = 0 (a group ~20x
/// the average) and a quarter of X probes it, so the build partition and
/// probe morsels touching key 0 dwarf the rest without making the output
/// quadratic in the table size.
std::pair<std::shared_ptr<Table>, std::shared_ptr<Table>>& SkewedXY() {
  static auto& tables =
      *new std::pair<std::shared_ptr<Table>, std::shared_ptr<Table>>([] {
        auto x = CheckOk(Table::Create("X", Type::Tuple({{"e", Type::Int()},
                                                         {"d", Type::Int()}})),
                         "X");
        auto y = CheckOk(Table::Create("Y", Type::Tuple({{"a", Type::Int()},
                                                         {"b", Type::Int()}})),
                         "Y");
        Random rng(7);
        const size_t nx = 2000, ny = 2 * nx;
        for (size_t i = 0; i < nx; ++i) {
          const int64_t d = (i % 4 == 0) ? 0 : rng.UniformInt(1, 200);
          CheckOk(x->Insert(Value::Tuple(
                      {"e", "d"},
                      {Value::Int(static_cast<int64_t>(i)), Value::Int(d)})),
                  "X row");
        }
        for (size_t i = 0; i < ny; ++i) {
          const int64_t b = (i % 10 == 0) ? 0 : rng.UniformInt(1, 200);
          CheckOk(y->Insert(Value::Tuple(
                      {"a", "b"},
                      {Value::Int(static_cast<int64_t>(i)), Value::Int(b)})),
                  "Y row");
        }
        return std::make_pair(std::move(x), std::move(y));
      }());
  return tables;
}

void BM_SkewedNestJoinHash(benchmark::State& state) {
  auto& xy = SkewedXY();
  Expr xv = Expr::Var("x", xy.first->schema());
  Expr yv = Expr::Var("y", xy.second->schema());
  JoinSpec spec;
  spec.mode = JoinMode::kNestJoin;
  spec.left_var = "x";
  spec.right_var = "y";
  spec.right_type = xy.second->schema();
  spec.pred = Expr::True();
  spec.func = yv;
  spec.label = "s";
  PhysicalOpPtr join(new HashJoinOp(
      PhysicalOpPtr(new TableScanOp(xy.first)),
      PhysicalOpPtr(new TableScanOp(xy.second)), std::move(spec),
      {Expr::Must(Expr::Field(xv, "d"))}, {Expr::Must(Expr::Field(yv, "b"))}));
  Executor executor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto rows = CheckOk(executor.RunPhysical(join.get()), "run");
    benchmark::DoNotOptimize(rows.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(xy.first->NumRows()));
}

BENCHMARK(BM_SkewedNestJoinHash)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace tmdb

BENCHMARK_MAIN();
