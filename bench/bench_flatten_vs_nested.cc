// Experiment E3 — the paper's motivating claim (Sections 1–2): a nested
// query IS a nested-loop join; transforming it into a join query lets the
// optimizer pick a better join implementation.
//
// Query: SELECT x.a FROM X x WHERE x.a IN (SELECT y.c FROM Y y
//                                          WHERE x.b = y.b)
//
// Arms: naive nested-loop evaluation vs the unnested semijoin executed
// with nested-loop / hash / sort-merge implementations. The work counters
// (predicate evaluations) make the asymptotic gap visible independently of
// wall-clock noise.

#include <cstdio>
#include <string>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "workload/generators.h"

namespace tmdb {
namespace {

using bench::GlobalDbCache;
using bench::MustRun;

const char* kQuery =
    "SELECT x.a FROM X x WHERE x.a IN (SELECT y.c FROM Y y "
    "WHERE x.b = y.b)";

Database* DbFor(size_t scale) {
  return GlobalDbCache().Get(
      "scale" + std::to_string(scale), [scale](Database* db) {
        ScaleConfig config;
        config.num_x = scale;
        config.num_y = scale;
        config.b_domain = static_cast<int64_t>(scale) / 10 + 1;
        config.a_domain = static_cast<int64_t>(scale) / 5 + 1;
        config.seed = 46;
        return LoadScaleTables(db, config);
      });
}

void PrintWorkComparison() {
  std::printf("== Experiment E3: flattening beats nested-loop evaluation "
              "(Sections 1-2) ==\n");
  std::printf("query: %s\n\n", kQuery);
  std::printf("%6s | %22s | %22s | %18s\n", "|X|=|Y|",
              "naive predicate evals", "semijoin(hash) probes",
              "rows match?");
  std::printf("%s\n", std::string(80, '-').c_str());
  for (size_t scale : {100u, 400u, 1600u}) {
    Database* db = DbFor(scale);
    QueryResult naive = MustRun(db, kQuery, Strategy::kNaive);
    QueryResult flat =
        MustRun(db, kQuery, Strategy::kNestJoin, JoinImpl::kHash);
    std::printf("%6zu | %22llu | %22llu | %18s\n", scale,
                static_cast<unsigned long long>(naive.stats.predicate_evals),
                static_cast<unsigned long long>(flat.stats.hash_probes),
                naive.rows.size() == flat.rows.size() ? "yes" : "NO");
  }
  std::printf("\nnaive work grows quadratically; the flattened plan probes "
              "each X row once.\n\n");
}

void BM_Arm(benchmark::State& state, Strategy strategy, JoinImpl impl) {
  Database* db = DbFor(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    QueryResult result = MustRun(db, kQuery, strategy, impl);
    benchmark::DoNotOptimize(result.rows.size());
  }
}

void BM_Naive(benchmark::State& state) {
  BM_Arm(state, Strategy::kNaive, JoinImpl::kAuto);
}
void BM_SemiJoinNL(benchmark::State& state) {
  BM_Arm(state, Strategy::kNestJoin, JoinImpl::kNestedLoop);
}
void BM_SemiJoinHash(benchmark::State& state) {
  BM_Arm(state, Strategy::kNestJoin, JoinImpl::kHash);
}
void BM_SemiJoinMerge(benchmark::State& state) {
  BM_Arm(state, Strategy::kNestJoin, JoinImpl::kMerge);
}

BENCHMARK(BM_Naive)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SemiJoinNL)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SemiJoinHash)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)
    ->Arg(25600)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SemiJoinMerge)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)
    ->Arg(25600)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tmdb

int main(int argc, char** argv) {
  tmdb::PrintWorkComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
