// Optimizer-pipeline micro-benchmark: the per-phase cost of compiling a
// nested query — parse, bind (naive plan), unnest (strategy rewrite), and
// physical planning. Not a paper artifact per se, but quantifies the
// "logical optimization" overhead the paper's IMPRESS context pays per
// query: all phases together sit in the tens of microseconds, i.e. three
// to five orders of magnitude below the execution savings they buy
// (experiments E3–E5).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/database.h"
#include "optimizer/planner.h"
#include "parser/parser.h"
#include "sema/binder.h"
#include "translate/strategies.h"

namespace tmdb {
namespace {

using bench::CheckOk;

const char* kQueries[] = {
    // two-block membership (semijoin)
    "SELECT x.c FROM X x WHERE x.c IN (SELECT y.a FROM Y y WHERE x.b = y.b)",
    // two-block grouping (nest join)
    "SELECT x.c FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y "
    "WHERE x.b = y.b)",
    // three-block linear (Section 8 shape)
    "SELECT x.c FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y "
    "WHERE x.b = y.b AND y.b IN (SELECT y2.b FROM Y y2 WHERE y.a = y2.a))",
};

Database* Db() {
  return bench::GlobalDbCache().Get("compile", [](Database* db) {
    return db
        ->ExecuteScript(
            "CREATE TABLE X (a : P(INT), b : INT, c : INT);"
            "CREATE TABLE Y (a : INT, b : INT)")
        .status();
  });
}

void BM_Parse(benchmark::State& state) {
  const char* query = kQueries[state.range(0)];
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckOk(ParseQuery(query), "parse"));
  }
}

void BM_Bind(benchmark::State& state) {
  Database* db = Db();
  const char* query = kQueries[state.range(0)];
  AstPtr ast = CheckOk(ParseQuery(query), "parse");
  for (auto _ : state) {
    Binder binder(db->catalog());
    benchmark::DoNotOptimize(CheckOk(binder.BindQuery(*ast), "bind"));
  }
}

void BM_Unnest(benchmark::State& state) {
  Database* db = Db();
  const char* query = kQueries[state.range(0)];
  AstPtr ast = CheckOk(ParseQuery(query), "parse");
  Binder binder(db->catalog());
  LogicalOpPtr naive = CheckOk(binder.BindQuery(*ast), "bind");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CheckOk(PlanForStrategy(naive, Strategy::kNestJoin), "rewrite"));
  }
}

void BM_PhysicalPlan(benchmark::State& state) {
  Database* db = Db();
  const char* query = kQueries[state.range(0)];
  LogicalOpPtr plan =
      CheckOk(db->Plan(query, Strategy::kNestJoin), "logical plan");
  Planner planner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckOk(planner.Plan(plan), "physical"));
  }
}

void BM_FullCompile(benchmark::State& state) {
  Database* db = Db();
  const char* query = kQueries[state.range(0)];
  Planner planner;
  for (auto _ : state) {
    LogicalOpPtr plan =
        CheckOk(db->Plan(query, Strategy::kNestJoin), "logical");
    benchmark::DoNotOptimize(CheckOk(planner.Plan(plan), "physical"));
  }
}

BENCHMARK(BM_Parse)->DenseRange(0, 2);
BENCHMARK(BM_Bind)->DenseRange(0, 2);
BENCHMARK(BM_Unnest)->DenseRange(0, 2);
BENCHMARK(BM_PhysicalPlan)->DenseRange(0, 2);
BENCHMARK(BM_FullCompile)->DenseRange(0, 2);

}  // namespace
}  // namespace tmdb

BENCHMARK_MAIN();
