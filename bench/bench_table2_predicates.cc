// Experiment T2 — reproduces Table 2 of the paper: for each predicate form
// P(x, z) between query blocks, whether it rewrites into ∃v∈z (P') /
// ¬∃v∈z (P') (Theorem 1, → flat semijoin/antijoin) or requires grouping
// (→ nest join). The classification is computed by the engine's rewriter,
// not hard-coded.
//
// The micro-benchmark times classification + full plan rewriting, which an
// optimizer pays per query.

#include <cstdio>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/database.h"
#include "parser/parser.h"
#include "rewrite/unnester.h"
#include "sema/binder.h"

namespace tmdb {
namespace {

using bench::CheckOk;

struct CatalogEntry {
  const char* paper_form;  // how the paper's Table 2 writes it
  const char* where;       // WHERE clause with z = (SELECT y.a FROM Y y ...)
};

// The paper's Table 2 rows (SQL subset above the line, set-valued TM
// predicates below), plus the quantifier forms it lists.
const CatalogEntry kTable2[] = {
    {"z = {}", "(SELECT y.a FROM Y y WHERE x.b = y.b) = {}"},
    {"count(z) = 0", "count(SELECT y.a FROM Y y WHERE x.b = y.b) = 0"},
    {"x.c = count(z)", "x.c = count(SELECT y.a FROM Y y WHERE x.b = y.b)"},
    {"x.c IN z", "x.c IN (SELECT y.a FROM Y y WHERE x.b = y.b)"},
    {"x.c NOT IN z", "x.c NOT IN (SELECT y.a FROM Y y WHERE x.b = y.b)"},
    {"x.a SUBSETEQ z", "x.a SUBSETEQ (SELECT y.a FROM Y y WHERE x.b = y.b)"},
    {"x.a SUPSETEQ z", "x.a SUPSETEQ (SELECT y.a FROM Y y WHERE x.b = y.b)"},
    {"x.a SUBSET z", "x.a SUBSET (SELECT y.a FROM Y y WHERE x.b = y.b)"},
    {"x.a SUPSET z", "x.a SUPSET (SELECT y.a FROM Y y WHERE x.b = y.b)"},
    {"x.a = z", "x.a = (SELECT y.a FROM Y y WHERE x.b = y.b)"},
    {"x.a <> z", "NOT (x.a = (SELECT y.a FROM Y y WHERE x.b = y.b))"},
    {"x.a INTERSECT z = {}",
     "x.a INTERSECT (SELECT y.a FROM Y y WHERE x.b = y.b) = {}"},
    {"NOT (x.a INTERSECT z = {})",
     "NOT (x.a INTERSECT (SELECT y.a FROM Y y WHERE x.b = y.b) = {})"},
    {"FORALL w IN x.a (w IN z)",
     "FORALL w IN x.a (w IN (SELECT y.a FROM Y y WHERE x.b = y.b))"},
    {"FORALL w IN x.a (w NOT IN z)",
     "FORALL w IN x.a (w NOT IN (SELECT y.a FROM Y y WHERE x.b = y.b))"},
    {"NOT EXISTS v IN z (true)",
     "NOT EXISTS v IN (SELECT y.a FROM Y y WHERE x.b = y.b) (true)"},
    {"EXISTS v IN z (true)",
     "EXISTS v IN (SELECT y.a FROM Y y WHERE x.b = y.b) (true)"},
    {"EXISTS v IN z (v = x.c)",
     "EXISTS v IN (SELECT y.a FROM Y y WHERE x.b = y.b) (v = x.c)"},
    {"FORALL v IN z (v <> x.c)",
     "FORALL v IN (SELECT y.a FROM Y y WHERE x.b = y.b) (NOT (v = x.c))"},
    {"EXISTS v IN z (v IN x.a)",
     "EXISTS v IN (SELECT y.a FROM Y y WHERE x.b = y.b) (v IN x.a)"},
    {"NOT EXISTS v IN z (v IN x.a)",
     "NOT EXISTS v IN (SELECT y.a FROM Y y WHERE x.b = y.b) (v IN x.a)"},
};

Database* MakeDb() {
  return bench::GlobalDbCache().Get("table2", [](Database* db) -> Status {
    TMDB_ASSIGN_OR_RETURN(
        auto x,
        db->CreateTable("X", Type::Tuple({{"a", Type::Set(Type::Int())},
                                          {"b", Type::Int()},
                                          {"c", Type::Int()}})));
    TMDB_ASSIGN_OR_RETURN(
        auto y, db->CreateTable("Y", Type::Tuple({{"a", Type::Int()},
                                                  {"b", Type::Int()}})));
    (void)x;
    (void)y;
    return Status::OK();
  });
}

std::string QueryFor(const CatalogEntry& entry) {
  return std::string("SELECT x.c FROM X x WHERE ") + entry.where;
}

void PrintTable2Reproduction() {
  Database* db = MakeDb();
  std::printf(
      "== Experiment T2: Table 2 — rewriting TM predicates between query "
      "blocks ==\n");
  std::printf("%-36s | %-24s | %s\n", "P(x, z)", "classification",
              "rule / target");
  std::printf("%s\n", std::string(110, '-').c_str());
  for (const CatalogEntry& entry : kTable2) {
    UnnestReport report;
    auto plan = db->Plan(QueryFor(entry), Strategy::kNestJoin, &report);
    if (!plan.ok()) {
      std::printf("%-36s | error: %s\n", entry.paper_form,
                  plan.status().ToString().c_str());
      continue;
    }
    if (report.events.empty()) {
      std::printf("%-36s | (no subquery found)\n", entry.paper_form);
      continue;
    }
    const UnnestEvent& event = report.events.back();
    std::printf("%-36s | %-24s | %s -> %s\n", entry.paper_form,
                RewriteFormName(event.form).c_str(), event.rule.c_str(),
                event.target.c_str());
  }
  std::printf("\n");
}

void BM_ClassifyAndRewrite(benchmark::State& state) {
  Database* db = MakeDb();
  const CatalogEntry& entry =
      kTable2[static_cast<size_t>(state.range(0)) % std::size(kTable2)];
  const std::string query = QueryFor(entry);
  for (auto _ : state) {
    auto plan = db->Plan(query, Strategy::kNestJoin);
    benchmark::DoNotOptimize(plan.ok());
  }
  state.SetLabel(entry.paper_form);
}

// One representative from each class: membership (semijoin), superset
// (antijoin), count (nest join), multi-level catalog sweep.
BENCHMARK(BM_ClassifyAndRewrite)->Arg(3)->Arg(6)->Arg(2)->Arg(13);

void BM_FullCatalogRewrite(benchmark::State& state) {
  Database* db = MakeDb();
  for (auto _ : state) {
    for (const CatalogEntry& entry : kTable2) {
      auto plan = db->Plan(QueryFor(entry), Strategy::kNestJoin);
      benchmark::DoNotOptimize(plan.ok());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(std::size(kTable2)));
}
BENCHMARK(BM_FullCatalogRewrite)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tmdb

int main(int argc, char** argv) {
  tmdb::PrintTable2Reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
