#ifndef TMDB_NET_CLIENT_H_
#define TMDB_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/fault_injector.h"
#include "base/result.h"
#include "base/status.h"
#include "exec/exec_context.h"
#include "net/socket.h"
#include "net/wire.h"
#include "values/value.h"

namespace tmdb {

/// One query's decoded response stream.
struct ClientResult {
  std::vector<Value> rows;
  ExecStats stats;
  /// DDL/DML outcome message ("created table R", ...); empty for queries.
  std::string message;
  /// The admission grant the server announced (when it sent kAccepted).
  WireAccepted grant;
  bool has_grant = false;
};

/// Client side of the framed query protocol: one TCP connection, one
/// request in flight at a time. Not thread-safe; use one client per
/// thread. A wire error (torn frame, bad CRC, unexpected close) poisons
/// the connection — by protocol the stream cannot resynchronise — so
/// every call after a kIoError fails until Connect establishes a fresh
/// socket.
class QueryClient {
 public:
  QueryClient() = default;
  ~QueryClient() { Close(); }
  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;
  QueryClient(QueryClient&&) = default;
  QueryClient& operator=(QueryClient&&) = default;

  /// Connects (or reconnects) to the server. `recv_timeout_ms` bounds how
  /// long a response read may block on a torn stream (0 = forever).
  Status Connect(const std::string& host, int port,
                 int recv_timeout_ms = 30000);

  bool connected() const { return sock_.valid(); }

  /// Sends one request and reads its full response stream. Failure codes:
  ///   kResourceExhausted  the server rejected the query at admission
  ///                       (WasRejected(status) is true; retry with
  ///                       backoff — see last_retry_after_ms());
  ///   kIoError            the wire failed; the connection is now dead;
  ///   anything else       the query itself failed server-side, rendered
  ///                       exactly as the REPL would print it.
  Result<ClientResult> Run(const std::string& query);
  Result<ClientResult> Run(const WireRequest& request);

  /// Run with bounded retry on admission rejection: sleeps the server's
  /// retry_after_ms hint (exponentially backed off) between attempts.
  /// Other failures are returned immediately.
  Result<ClientResult> RunWithRetry(const WireRequest& request,
                                    int max_attempts);

  /// True when `status` is an admission rejection (a typed
  /// kResourceExhausted whose message carries kRejectedMessagePrefix) —
  /// i.e. the query never ran and retrying later is sane.
  static bool WasRejected(const Status& status);

  /// Sends a CANCEL frame for the request currently in flight on this
  /// connection. Only useful from a signal-ish context in the CLI; Run is
  /// synchronous so normal callers never need it.
  Status SendCancel(uint64_t request_id);

  /// Sends GOODBYE (best effort) and closes the socket.
  void Close();

  /// The server's backoff hint from the most recent REJECTED response.
  uint64_t last_retry_after_ms() const { return last_retry_after_ms_; }

  /// Wire-channel fault injection for the client side (tests only).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

 private:
  Result<ClientResult> ReadResponse(uint64_t request_id);

  Socket sock_;
  FaultInjector* injector_ = nullptr;
  uint64_t next_request_id_ = 1;
  uint64_t last_retry_after_ms_ = 0;
};

}  // namespace tmdb

#endif  // TMDB_NET_CLIENT_H_
