#ifndef TMDB_NET_SERVER_H_
#define TMDB_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/fault_injector.h"
#include "base/status.h"
#include "core/database.h"
#include "net/admission.h"
#include "net/socket.h"

namespace tmdb {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back via QueryServer::port().
  int port = 0;
  int backlog = 64;
  AdmissionConfig admission;
  /// Spill configuration applied to sessions whose requests enable spill.
  std::string spill_dir;
  size_t spill_block_bytes = 0;
  /// How often a session polls its socket for disconnect / CANCEL frames
  /// while a query executes — the upper bound on how long a vanished
  /// client keeps a query running past its next guard checkpoint.
  int poll_interval_ms = 5;
  /// Wire-channel fault injection for the server side of every connection
  /// (tests only). Not owned; must outlive the server.
  FaultInjector* fault_injector = nullptr;
};

/// Monotonic counters describing server activity; snapshot via
/// QueryServer::stats().
struct ServerStatsSnapshot {
  uint64_t connections_accepted = 0;
  uint64_t sessions_active = 0;
  uint64_t accept_failures = 0;
  uint64_t queries_started = 0;
  uint64_t queries_ok = 0;
  uint64_t queries_error = 0;
  uint64_t queries_rejected = 0;
  /// Queries whose client vanished mid-run or mid-stream; each was
  /// cancelled through its session's QueryGuard and unwound cleanly.
  uint64_t queries_disconnected = 0;
  uint64_t cancel_frames = 0;
  uint64_t wire_errors = 0;
};

/// TCP front end for one Database: accepts connections, speaks the framed
/// protocol in net/wire.h, and runs queries concurrently across
/// connections — each session owns one reused Executor, so worker pools,
/// guards, and spill managers follow the executor-reuse discipline the
/// embedded engine already guarantees.
///
/// Robustness invariants (tested by net_service_test):
///   - every query ends in a clean Status: completion, a guard trip, an
///     admission REJECTED, or kCancelled via disconnect/shutdown;
///   - a client that vanishes (abrupt close, torn frame, injected wire
///     fault) cancels its in-flight query within one poll interval plus
///     one guard checkpoint, and the session releases its admission slot,
///     executor, and spill files on the way out;
///   - overload never accepts work it cannot start: beyond
///     max_concurrent + max_queue_depth, requests get typed REJECTED
///     frames immediately;
///   - Shutdown is graceful and idempotent: stop accepting, cancel active
///     queries, join every session thread, then return.
class QueryServer {
 public:
  /// `db` is not owned and must outlive the server. Statements that write
  /// (CREATE/DEFINE/INSERT) take a server-wide exclusive lock; queries
  /// share it, so wire sessions never race catalog or table mutation.
  QueryServer(Database* db, ServerOptions options);
  ~QueryServer();
  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens, and starts the accept loop.
  Status Start();

  /// Graceful teardown: stop accepting, cancel in-flight queries, join
  /// every session. Safe to call twice; the destructor calls it.
  void Shutdown();

  /// The bound port (after Start); useful with port 0.
  int port() const { return port_; }

  ServerStatsSnapshot stats() const;
  AdmissionController* admission() { return &admission_; }

 private:
  class Session;

  void AcceptLoop();
  /// Joins and frees sessions that have finished; with `all`, joins every
  /// session (Shutdown path, after they were asked to stop).
  void ReapSessions(bool all);

  Database* const db_;
  const ServerOptions options_;
  AdmissionController admission_;

  Socket listener_;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::mutex shutdown_mu_;  // serialises Shutdown callers

  std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 0;

  /// Readers = query statements, writers = DDL/DML statements.
  std::shared_mutex db_mu_;

  // Stats (relaxed atomics; snapshot copies them out).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> accept_failures_{0};
  std::atomic<uint64_t> queries_started_{0};
  std::atomic<uint64_t> queries_ok_{0};
  std::atomic<uint64_t> queries_error_{0};
  std::atomic<uint64_t> queries_rejected_{0};
  std::atomic<uint64_t> queries_disconnected_{0};
  std::atomic<uint64_t> cancel_frames_{0};
  std::atomic<uint64_t> wire_errors_{0};
};

}  // namespace tmdb

#endif  // TMDB_NET_SERVER_H_
