#ifndef TMDB_NET_ADMISSION_H_
#define TMDB_NET_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "base/result.h"
#include "base/status.h"

namespace tmdb {

/// Global budgets the admission controller divides across active queries.
struct AdmissionConfig {
  /// Total memory the server is willing to have materialised at once,
  /// split into equal per-query slices. 0 = unlimited (every grant is
  /// unlimited too).
  uint64_t total_memory_bytes = 256ull << 20;
  /// Width of the shared worker pool the controller apportions: running
  /// queries receive *weighted shares* of this many threads (weight =
  /// the parallelism the request asked for), recomputed from current load
  /// at each admission. Not a reservation — the work-stealing scheduler
  /// multiplexes every query over one pool, so a grant is a cap on a
  /// query's parallelism, not a set of dedicated threads.
  int total_threads = 8;
  /// Queries executing at once; arrivals beyond this wait in the queue.
  int max_concurrent = 8;
  /// Requests allowed to wait for a slot. An arrival that finds the queue
  /// full is rejected immediately — the server refuses work it cannot
  /// start in bounded time rather than accepting it and timing out.
  int max_queue_depth = 16;
  /// Queue wait applied when a request does not name its own
  /// (`WireRequest::queue_wait_ms`).
  int64_t default_queue_wait_ms = 500;
  /// Backoff hint attached to REJECTED responses.
  int64_t retry_after_ms = 50;
};

/// What one admitted query may use. Budgets are fixed at admission rather
/// than rebalanced as load changes: a query's budget never shrinks after
/// it started, so a burst of arrivals can reject cleanly but can never
/// trip a running query's guard. Memory is an equal slice of the global
/// budget (a hard reservation — the guard enforces it); `threads` is a
/// weighted share of the scheduler pool computed from the load at grant
/// time — an idle server hands one query the whole pool, a busy one
/// apportions it by requested weight.
struct AdmissionGrant {
  uint64_t memory_bytes = 0;  // 0 = unlimited
  int threads = 1;            // max-parallelism cap for this query
  int active = 0;  // running queries including this one, at grant time
};

/// Divides the server's global budgets across concurrently running
/// queries. Admit blocks until a slot frees, the caller's queue deadline
/// passes, or the controller shuts down; overload answers are typed
/// kResourceExhausted with a message starting kRejectedMessagePrefix, so
/// the wire turns them into REJECTED frames and clients can retry with
/// backoff. Thread-safe.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);

  /// Blocks up to `queue_wait_ms` (0 = config default) for an execution
  /// slot. Returns the grant, or kResourceExhausted when the queue is full
  /// (immediate) or the wait timed out, or kCancelled when Shutdown ran.
  ///
  /// `weight` expresses how much of the thread pool the query wants —
  /// the server passes the request's num_threads. The thread grant is
  /// total_threads * weight / (sum of active weights), floored at 1: a
  /// lone query gets the whole pool, concurrent queries split it in
  /// proportion to what they asked for. Weights are clamped to >= 1.
  Result<AdmissionGrant> Admit(int64_t queue_wait_ms, int weight = 1);

  /// Returns one admitted query's slot; wakes a queued waiter. `weight`
  /// must match the value passed to the Admit being released.
  void Release(int weight = 1);

  /// Wakes every queued waiter with kCancelled and fails all future
  /// Admits. Part of server teardown.
  void Shutdown();

  const AdmissionConfig& config() const { return config_; }

  int active() const;
  int queued() const;
  uint64_t admitted_total() const;
  uint64_t rejected_queue_full() const;
  uint64_t rejected_timeout() const;

 private:
  const AdmissionConfig config_;

  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  bool shutdown_ = false;
  int active_ = 0;
  int active_weight_ = 0;  // sum of running queries' admission weights
  int queued_ = 0;
  uint64_t admitted_total_ = 0;
  uint64_t rejected_queue_full_ = 0;
  uint64_t rejected_timeout_ = 0;
};

}  // namespace tmdb

#endif  // TMDB_NET_ADMISSION_H_
