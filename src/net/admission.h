#ifndef TMDB_NET_ADMISSION_H_
#define TMDB_NET_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "base/result.h"
#include "base/status.h"

namespace tmdb {

/// Global budgets the admission controller divides across active queries.
struct AdmissionConfig {
  /// Total memory the server is willing to have materialised at once,
  /// split into equal per-query slices. 0 = unlimited (every grant is
  /// unlimited too).
  uint64_t total_memory_bytes = 256ull << 20;
  /// Total intra-query worker threads across all running queries. Each
  /// grant gets an equal slice, never below 1.
  int total_threads = 8;
  /// Queries executing at once; arrivals beyond this wait in the queue.
  int max_concurrent = 8;
  /// Requests allowed to wait for a slot. An arrival that finds the queue
  /// full is rejected immediately — the server refuses work it cannot
  /// start in bounded time rather than accepting it and timing out.
  int max_queue_depth = 16;
  /// Queue wait applied when a request does not name its own
  /// (`WireRequest::queue_wait_ms`).
  int64_t default_queue_wait_ms = 500;
  /// Backoff hint attached to REJECTED responses.
  int64_t retry_after_ms = 50;
};

/// What one admitted query may use. The slices are fixed at admission
/// (total/max_concurrent) rather than rebalanced as load changes: a
/// query's budget never shrinks after it started, so a burst of arrivals
/// can reject cleanly but can never trip a running query's guard.
struct AdmissionGrant {
  uint64_t memory_bytes = 0;  // 0 = unlimited
  int threads = 1;
  int active = 0;  // running queries including this one, at grant time
};

/// Divides the server's global budgets across concurrently running
/// queries. Admit blocks until a slot frees, the caller's queue deadline
/// passes, or the controller shuts down; overload answers are typed
/// kResourceExhausted with a message starting kRejectedMessagePrefix, so
/// the wire turns them into REJECTED frames and clients can retry with
/// backoff. Thread-safe.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);

  /// Blocks up to `queue_wait_ms` (0 = config default) for an execution
  /// slot. Returns the grant, or kResourceExhausted when the queue is full
  /// (immediate) or the wait timed out, or kCancelled when Shutdown ran.
  Result<AdmissionGrant> Admit(int64_t queue_wait_ms);

  /// Returns one admitted query's slot; wakes a queued waiter.
  void Release();

  /// Wakes every queued waiter with kCancelled and fails all future
  /// Admits. Part of server teardown.
  void Shutdown();

  const AdmissionConfig& config() const { return config_; }

  int active() const;
  int queued() const;
  uint64_t admitted_total() const;
  uint64_t rejected_queue_full() const;
  uint64_t rejected_timeout() const;

 private:
  const AdmissionConfig config_;

  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  bool shutdown_ = false;
  int active_ = 0;
  int queued_ = 0;
  uint64_t admitted_total_ = 0;
  uint64_t rejected_queue_full_ = 0;
  uint64_t rejected_timeout_ = 0;
};

}  // namespace tmdb

#endif  // TMDB_NET_ADMISSION_H_
