#ifndef TMDB_NET_SOCKET_H_
#define TMDB_NET_SOCKET_H_

#include <string>

#include "base/fault_injector.h"
#include "base/result.h"
#include "base/status.h"
#include "net/wire.h"

namespace tmdb {

/// Move-only RAII wrapper over one TCP socket fd. All operations return
/// Status — the engine is exception-free and so is the wire. Sends use
/// MSG_NOSIGNAL, so a vanished peer surfaces as kIoError, never SIGPIPE.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  /// Connects to host:port (numeric or resolvable host).
  static Result<Socket> ConnectTcp(const std::string& host, int port);

  /// Binds and listens on host:port. Port 0 binds an ephemeral port —
  /// the actual port is reported through `bound_port` — so parallel test
  /// jobs never collide.
  static Result<Socket> ListenTcp(const std::string& host, int port,
                                  int backlog, int* bound_port);

  /// Accepts one connection (blocking). kIoError when the listener was
  /// shut down or accept failed.
  Result<Socket> Accept();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends exactly `len` bytes or fails with kIoError.
  Status SendAll(const void* data, size_t len);

  /// Receives exactly `len` bytes. A clean peer close before the first
  /// byte sets *eof and returns OK; a close mid-buffer is kIoError (the
  /// caller was mid-frame — that is a torn frame).
  Status RecvAll(void* data, size_t len, bool* eof);

  enum class PollState { kReadable, kTimeout, kClosed };

  /// Waits up to timeout_ms for the socket to become readable (data or
  /// EOF/hangup — both report kReadable so the caller's read sees which).
  /// kClosed on poll errors or an invalid socket.
  PollState Poll(int timeout_ms);

  /// Sets SO_RCVTIMEO so blocked reads fail with kIoError after
  /// `timeout_ms` instead of hanging forever on a torn stream. 0 disables.
  Status SetRecvTimeout(int timeout_ms);

  /// shutdown(SHUT_RDWR): unblocks this socket's blocking reads (they see
  /// EOF) and the peer's (they see a closed connection). The fd stays
  /// valid until Close, so a racing reader never touches a reused fd.
  void ShutdownBoth();

  void Close();

 private:
  int fd_ = -1;
};

/// Writes one frame, consulting `injector`'s wire send channel at the
/// frame boundary (null injector = plain send). Injected faults behave as
/// the real-world failure they model:
///   kShortWrite  part of the frame is sent, then kIoError — the caller
///                treats the connection as dead, the peer sees a torn
///                frame;
///   kTornFrame   part of the frame is sent, the socket is then shut down,
///                and the call "succeeds" — the failure surfaces at the
///                peer (torn frame) and at this side's next send;
///   kCorruptCrc  the frame goes out with one CRC byte flipped — the
///                peer's checksum rejects it;
///   kDisconnect  nothing is sent and the socket is shut down — the peer
///                sees a clean close mid-stream.
Status WriteFrame(Socket* socket, FaultInjector* injector,
                  const Frame& frame);

/// Reads one frame, consulting `injector`'s wire recv channel at the frame
/// boundary. An injected kShortRead shuts the socket down and reports the
/// torn-frame kIoError a half-received frame produces. A clean peer close
/// between frames sets *eof with an empty frame and returns OK.
Status ReadFrame(Socket* socket, FaultInjector* injector, Frame* frame,
                 bool* eof);

}  // namespace tmdb

#endif  // TMDB_NET_SOCKET_H_
