#include "net/wire.h"

#include "base/crc32.h"
#include "base/string_util.h"
#include "spill/value_codec.h"

namespace tmdb {

namespace {

void PutU32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

void PutU64(uint64_t v, std::string* out) {
  PutU32(static_cast<uint32_t>(v & 0xFFFFFFFFu), out);
  PutU32(static_cast<uint32_t>(v >> 32), out);
}

uint32_t GetU32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

void PutString(std::string_view s, std::string* out) {
  PutVarint(s.size(), out);
  out->append(s.data(), s.size());
}

Status GetString(std::string_view data, size_t* pos, std::string* out) {
  uint64_t len = 0;
  TMDB_RETURN_IF_ERROR(GetVarint(data, pos, &len));
  if (len > data.size() - *pos) {
    return Status::IoError("wire: string length past end of payload");
  }
  out->assign(data.data() + *pos, static_cast<size_t>(len));
  *pos += static_cast<size_t>(len);
  return Status::OK();
}

Status GetStatusCode(std::string_view data, size_t* pos, StatusCode* out) {
  uint64_t raw = 0;
  TMDB_RETURN_IF_ERROR(GetVarint(data, pos, &raw));
  if (raw > static_cast<uint64_t>(StatusCode::kIoError)) {
    return Status::IoError(StrCat("wire: unknown status code ", raw));
  }
  *out = static_cast<StatusCode>(raw);
  return Status::OK();
}

/// CRC over everything a frame carries except the magic and the CRC field
/// itself: type, payload_len, request_id, then the payload bytes.
uint32_t FrameCrc(uint32_t type, uint32_t payload_len, uint64_t request_id,
                  std::string_view payload) {
  std::string head;
  head.reserve(16);
  PutU32(type, &head);
  PutU32(payload_len, &head);
  PutU64(request_id, &head);
  uint32_t crc = Crc32(head.data(), head.size());
  return Crc32(payload.data(), payload.size(), crc);
}

}  // namespace

bool IsKnownFrameType(uint32_t raw) {
  switch (static_cast<FrameType>(raw)) {
    case FrameType::kQuery:
    case FrameType::kCancel:
    case FrameType::kGoodbye:
    case FrameType::kAccepted:
    case FrameType::kRows:
    case FrameType::kStats:
    case FrameType::kDone:
    case FrameType::kError:
    case FrameType::kRejected:
      return true;
  }
  return false;
}

void EncodeFrame(const Frame& frame, std::string* out) {
  const uint32_t type = static_cast<uint32_t>(frame.type);
  const uint32_t payload_len = static_cast<uint32_t>(frame.payload.size());
  PutU32(kWireMagic, out);
  PutU32(type, out);
  PutU32(payload_len, out);
  PutU64(frame.request_id, out);
  PutU32(FrameCrc(type, payload_len, frame.request_id, frame.payload), out);
  out->append(frame.payload);
}

Status DecodeFrameHeader(const char* data, FrameHeader* header) {
  if (GetU32(data) != kWireMagic) {
    return Status::IoError("wire: bad frame magic");
  }
  header->type = GetU32(data + 4);
  header->payload_len = GetU32(data + 8);
  header->request_id = GetU64(data + 12);
  header->crc = GetU32(data + 20);
  if (!IsKnownFrameType(header->type)) {
    return Status::IoError(StrCat("wire: unknown frame type ", header->type));
  }
  if (header->payload_len > kWireMaxPayloadBytes) {
    return Status::IoError(StrCat("wire: frame payload of ",
                                  header->payload_len,
                                  " bytes exceeds the limit"));
  }
  return Status::OK();
}

Status ValidateFramePayload(const FrameHeader& header,
                            std::string_view payload) {
  const uint32_t expected =
      FrameCrc(header.type, header.payload_len, header.request_id, payload);
  if (expected != header.crc) {
    return Status::IoError("wire: frame checksum mismatch");
  }
  return Status::OK();
}

void EncodeRequest(const WireRequest& request, std::string* out) {
  PutVarint(kWireProtoVersion, out);
  PutString(request.strategy, out);
  PutVarint(request.num_threads, out);
  PutVarint(request.timeout_ms, out);
  PutVarint(request.memory_budget_bytes, out);
  PutVarint(request.max_rows, out);
  PutVarint(request.queue_wait_ms, out);
  const uint64_t flags = (request.enable_spill ? 1u : 0u) |
                         (request.enable_columnar ? 2u : 0u);
  PutVarint(flags, out);
  PutString(request.query, out);
}

Status DecodeRequest(std::string_view payload, WireRequest* request) {
  size_t pos = 0;
  uint64_t version = 0;
  TMDB_RETURN_IF_ERROR(GetVarint(payload, &pos, &version));
  if (version != kWireProtoVersion) {
    return Status::IoError(StrCat("wire: protocol version ", version,
                                  " not supported"));
  }
  TMDB_RETURN_IF_ERROR(GetString(payload, &pos, &request->strategy));
  uint64_t num_threads = 0;
  TMDB_RETURN_IF_ERROR(GetVarint(payload, &pos, &num_threads));
  request->num_threads =
      static_cast<uint32_t>(num_threads > 1024 ? 1024 : num_threads);
  TMDB_RETURN_IF_ERROR(GetVarint(payload, &pos, &request->timeout_ms));
  TMDB_RETURN_IF_ERROR(
      GetVarint(payload, &pos, &request->memory_budget_bytes));
  TMDB_RETURN_IF_ERROR(GetVarint(payload, &pos, &request->max_rows));
  TMDB_RETURN_IF_ERROR(GetVarint(payload, &pos, &request->queue_wait_ms));
  uint64_t flags = 0;
  TMDB_RETURN_IF_ERROR(GetVarint(payload, &pos, &flags));
  request->enable_spill = (flags & 1u) != 0;
  request->enable_columnar = (flags & 2u) != 0;
  TMDB_RETURN_IF_ERROR(GetString(payload, &pos, &request->query));
  if (pos != payload.size()) {
    return Status::IoError("wire: trailing bytes after request payload");
  }
  return Status::OK();
}

void EncodeError(const WireError& error, std::string* out) {
  PutVarint(static_cast<uint64_t>(error.code), out);
  PutString(error.message, out);
}

Status DecodeError(std::string_view payload, WireError* error) {
  size_t pos = 0;
  TMDB_RETURN_IF_ERROR(GetStatusCode(payload, &pos, &error->code));
  TMDB_RETURN_IF_ERROR(GetString(payload, &pos, &error->message));
  if (pos != payload.size()) {
    return Status::IoError("wire: trailing bytes after error payload");
  }
  return Status::OK();
}

void EncodeRejected(const WireRejected& rejected, std::string* out) {
  PutVarint(static_cast<uint64_t>(rejected.code), out);
  PutString(rejected.message, out);
  PutVarint(rejected.retry_after_ms, out);
}

Status DecodeRejected(std::string_view payload, WireRejected* rejected) {
  size_t pos = 0;
  TMDB_RETURN_IF_ERROR(GetStatusCode(payload, &pos, &rejected->code));
  TMDB_RETURN_IF_ERROR(GetString(payload, &pos, &rejected->message));
  TMDB_RETURN_IF_ERROR(GetVarint(payload, &pos, &rejected->retry_after_ms));
  if (pos != payload.size()) {
    return Status::IoError("wire: trailing bytes after rejected payload");
  }
  return Status::OK();
}

void EncodeAccepted(const WireAccepted& accepted, std::string* out) {
  PutVarint(accepted.granted_memory_bytes, out);
  PutVarint(accepted.granted_threads, out);
  PutVarint(accepted.active_queries, out);
}

Status DecodeAccepted(std::string_view payload, WireAccepted* accepted) {
  size_t pos = 0;
  TMDB_RETURN_IF_ERROR(
      GetVarint(payload, &pos, &accepted->granted_memory_bytes));
  uint64_t threads = 0;
  TMDB_RETURN_IF_ERROR(GetVarint(payload, &pos, &threads));
  accepted->granted_threads = static_cast<uint32_t>(threads);
  uint64_t active = 0;
  TMDB_RETURN_IF_ERROR(GetVarint(payload, &pos, &active));
  accepted->active_queries = static_cast<uint32_t>(active);
  if (pos != payload.size()) {
    return Status::IoError("wire: trailing bytes after accepted payload");
  }
  return Status::OK();
}

void EncodeRowsPayload(const std::vector<Value>& rows, size_t begin,
                       size_t end, std::string* out) {
  PutVarint(end - begin, out);
  for (size_t i = begin; i < end; ++i) EncodeValue(rows[i], out);
}

Status DecodeRowsPayload(std::string_view payload, std::vector<Value>* out) {
  size_t pos = 0;
  uint64_t count = 0;
  TMDB_RETURN_IF_ERROR(GetVarint(payload, &pos, &count));
  for (uint64_t i = 0; i < count; ++i) {
    Value row;
    TMDB_RETURN_IF_ERROR(DecodeValue(payload, &pos, &row));
    out->push_back(std::move(row));
  }
  if (pos != payload.size()) {
    return Status::IoError("wire: trailing bytes after rows payload");
  }
  return Status::OK();
}

void EncodeDonePayload(std::string_view message, std::string* out) {
  PutString(message, out);
}

Status DecodeDonePayload(std::string_view payload, std::string* message) {
  size_t pos = 0;
  TMDB_RETURN_IF_ERROR(GetString(payload, &pos, message));
  if (pos != payload.size()) {
    return Status::IoError("wire: trailing bytes after done payload");
  }
  return Status::OK();
}

void EncodeStatsPayload(const ExecStats& stats, std::string* out) {
  PutVarint(stats.rows_emitted, out);
  PutVarint(stats.predicate_evals, out);
  PutVarint(stats.subplan_evals, out);
  PutVarint(stats.hash_probes, out);
  PutVarint(stats.rows_built, out);
  PutVarint(stats.spill_partitions, out);
  PutVarint(stats.spill_bytes_written, out);
  PutVarint(stats.spill_bytes_read, out);
  PutVarint(stats.spill_max_depth, out);
  PutVarint(stats.spill_sort_runs, out);
  PutVarint(stats.subplan_cache_hits, out);
  PutVarint(stats.subplan_cache_misses, out);
  PutVarint(stats.subplan_cache_evictions, out);
  PutVarint(stats.subplan_cache_disk_evictions, out);
  PutVarint(stats.subplan_cache_disk_faults, out);
  PutVarint(stats.guard_checkpoints, out);
  PutVarint(stats.strategy_chosen, out);
  PutVarint(stats.strategy_switches, out);
  PutVarint(stats.est_distinct_corr, out);
  PutVarint(stats.morsels_dispatched, out);
  PutVarint(stats.morsels_stolen, out);
}

Status DecodeStatsPayload(std::string_view payload, ExecStats* stats) {
  size_t pos = 0;
  uint64_t* const fields[] = {
      &stats->rows_emitted,          &stats->predicate_evals,
      &stats->subplan_evals,         &stats->hash_probes,
      &stats->rows_built,            &stats->spill_partitions,
      &stats->spill_bytes_written,   &stats->spill_bytes_read,
      &stats->spill_max_depth,       &stats->spill_sort_runs,
      &stats->subplan_cache_hits,    &stats->subplan_cache_misses,
      &stats->subplan_cache_evictions,
      &stats->subplan_cache_disk_evictions,
      &stats->subplan_cache_disk_faults,
      &stats->guard_checkpoints,
      &stats->strategy_chosen,
      &stats->strategy_switches,
      &stats->est_distinct_corr,
      &stats->morsels_dispatched,
      &stats->morsels_stolen};
  for (uint64_t* field : fields) {
    TMDB_RETURN_IF_ERROR(GetVarint(payload, &pos, field));
  }
  if (pos != payload.size()) {
    return Status::IoError("wire: trailing bytes after stats payload");
  }
  return Status::OK();
}

}  // namespace tmdb
