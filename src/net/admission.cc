#include "net/admission.h"

#include <algorithm>
#include <chrono>

#include "base/string_util.h"
#include "net/wire.h"

namespace tmdb {

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config) {}

Result<AdmissionGrant> AdmissionController::Admit(int64_t queue_wait_ms,
                                                  int weight) {
  if (queue_wait_ms <= 0) queue_wait_ms = config_.default_queue_wait_ms;
  if (weight < 1) weight = 1;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(queue_wait_ms);
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) {
    return Status::Cancelled("server shutting down");
  }
  if (active_ >= config_.max_concurrent) {
    if (queued_ >= config_.max_queue_depth) {
      ++rejected_queue_full_;
      return Status::ResourceExhausted(
          StrCat(kRejectedMessagePrefix, ": admission queue full (",
                 queued_, " waiting, ", active_, " running)"));
    }
    ++queued_;
    const bool got_slot = slot_free_.wait_until(lock, deadline, [this] {
      return shutdown_ || active_ < config_.max_concurrent;
    });
    --queued_;
    if (shutdown_) {
      return Status::Cancelled("server shutting down");
    }
    if (!got_slot) {
      ++rejected_timeout_;
      return Status::ResourceExhausted(
          StrCat(kRejectedMessagePrefix, ": no execution slot within ",
                 queue_wait_ms, " ms"));
    }
  }
  ++active_;
  active_weight_ += weight;
  ++admitted_total_;
  AdmissionGrant grant;
  grant.memory_bytes =
      config_.total_memory_bytes == 0
          ? 0
          : config_.total_memory_bytes /
                static_cast<uint64_t>(config_.max_concurrent);
  // Weighted share of the shared scheduler pool, from the load at this
  // instant: total * weight / sum-of-active-weights, never below 1. The
  // share is a parallelism cap, not a thread reservation — transient
  // oversubscription (an early lone query granted the full pool, then
  // neighbours arriving) is absorbed by work stealing, it cannot strand
  // or trip anyone.
  const int64_t share = static_cast<int64_t>(config_.total_threads) *
                        weight / std::max(1, active_weight_);
  grant.threads = static_cast<int>(std::max<int64_t>(1, share));
  grant.active = active_;
  return grant;
}

void AdmissionController::Release(int weight) {
  if (weight < 1) weight = 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (active_ > 0) --active_;
    active_weight_ -= weight;
    if (active_weight_ < 0) active_weight_ = 0;
  }
  slot_free_.notify_one();
}

void AdmissionController::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  slot_free_.notify_all();
}

int AdmissionController::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

int AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

uint64_t AdmissionController::admitted_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_total_;
}

uint64_t AdmissionController::rejected_queue_full() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_queue_full_;
}

uint64_t AdmissionController::rejected_timeout() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_timeout_;
}

}  // namespace tmdb
