#ifndef TMDB_NET_WIRE_H_
#define TMDB_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "exec/exec_context.h"
#include "values/value.h"

namespace tmdb {

/// The query service speaks a small length-prefixed framed protocol,
/// CRC-guarded like the spill codec. Every frame is
///
///   [magic u32][type u32][payload_len u32][request_id u64][crc32 u32]
///   [payload ...]
///
/// with fixed-width fields little-endian. The CRC-32 covers the type, the
/// payload length, the request id, and the payload — every header byte is
/// protected by the magic check, the CRC, or (for the CRC field itself)
/// the verification mismatch, exactly the spill-block discipline. A torn,
/// truncated, or bit-flipped frame surfaces as kIoError at the receiver
/// before any payload byte is interpreted; the connection is then dead by
/// protocol (streams cannot resynchronise past a bad frame).
///
/// A request is one kQuery frame; the response to request id R is a
/// sequence of frames all carrying id R: optional kAccepted, zero or more
/// kRows, then exactly one terminator — kStats+kDone on success, kError on
/// a failed execution, kRejected when admission control refused the work.
/// Payloads reuse the spill subsystem's canonical Value codec for rows and
/// LEB128 varints for scalars, so wire bytes are deterministic for a given
/// result.

inline constexpr uint32_t kWireMagic = 0x544D5146u;  // "FQMT" LE on the wire
inline constexpr uint32_t kWireProtoVersion = 1;
inline constexpr size_t kWireHeaderBytes = 24;
/// Upper bound a receiver enforces on payload_len before allocating —
/// a corrupted or hostile length field fails cleanly instead of OOMing.
inline constexpr size_t kWireMaxPayloadBytes = 64u << 20;
/// Row frames are chunked to roughly this many payload bytes so a slow or
/// vanished client is detected within one chunk, not one result set.
inline constexpr size_t kWireRowsChunkBytes = 64u << 10;

/// Server error-frame messages for admission refusals start with this
/// prefix; QueryClient::WasRejected keys on it (plus the status code) so
/// retry loops can distinguish "try again later" from real failures.
inline constexpr std::string_view kRejectedMessagePrefix =
    "admission rejected";

enum class FrameType : uint32_t {
  // client → server
  kQuery = 1,    // payload: WireRequest
  kCancel = 2,   // empty payload; request_id names the query to cancel
  kGoodbye = 3,  // empty payload; clean connection shutdown
  // server → client
  kAccepted = 16,  // payload: WireAccepted (admission grant, informational)
  kRows = 17,      // payload: varint row count + canonical Value encodings
  kStats = 18,     // payload: WireStats (ExecStats snapshot)
  kDone = 19,      // payload: varint-length DDL/DML message ("" for queries);
                   // successful response terminator
  kError = 20,     // payload: WireError; failed-execution terminator
  kRejected = 21,  // payload: WireRejected; admission-refusal terminator
};

/// True for the frame types a conforming peer may put on the wire.
bool IsKnownFrameType(uint32_t raw);

struct Frame {
  FrameType type = FrameType::kGoodbye;
  uint64_t request_id = 0;
  std::string payload;
};

/// Decoded fixed-width header of an incoming frame.
struct FrameHeader {
  uint32_t type = 0;
  uint32_t payload_len = 0;
  uint64_t request_id = 0;
  uint32_t crc = 0;
};

/// Appends the complete wire encoding (header + payload) of `frame`.
void EncodeFrame(const Frame& frame, std::string* out);

/// Decodes the kWireHeaderBytes-byte header. Fails on bad magic, unknown
/// frame type, or a payload length over kWireMaxPayloadBytes.
Status DecodeFrameHeader(const char* data, FrameHeader* header);

/// Verifies the CRC of a fully received frame (header already decoded,
/// payload bytes in hand).
Status ValidateFramePayload(const FrameHeader& header,
                            std::string_view payload);

/// Per-request knobs mirroring RunOptions, carried by a kQuery frame.
/// Budgets are requests, not entitlements: the server clamps them to what
/// admission control grants the query.
struct WireRequest {
  std::string query;      // statement text (query, CREATE, INSERT, ...)
  std::string strategy;   // StrategyName, "" = server default (nestjoin)
  /// Desired max parallelism. Doubles as the admission weight: the grant
  /// is a weighted share of the server's scheduler pool, and the query
  /// runs capped at min(num_threads, granted share). Threads themselves
  /// come from the process-wide work-stealing scheduler, not a
  /// per-session pool.
  uint32_t num_threads = 1;
  uint64_t timeout_ms = 0;
  uint64_t memory_budget_bytes = 0;
  uint64_t max_rows = 0;
  /// How long the request may wait in the admission queue before the
  /// server gives up and rejects it. 0 = server default.
  uint64_t queue_wait_ms = 0;
  bool enable_spill = false;
  bool enable_columnar = true;
};

void EncodeRequest(const WireRequest& request, std::string* out);
Status DecodeRequest(std::string_view payload, WireRequest* request);

/// kError payload: the execution outcome's Status. `message` is already
/// the canonical user-facing rendering (FormatStatusForUser), so every
/// front end shows guard trips identically.
struct WireError {
  StatusCode code = StatusCode::kInternal;
  std::string message;
};

void EncodeError(const WireError& error, std::string* out);
Status DecodeError(std::string_view payload, WireError* error);

/// kRejected payload: a typed kResourceExhausted-style refusal plus a
/// backoff hint.
struct WireRejected {
  StatusCode code = StatusCode::kResourceExhausted;
  std::string message;
  uint64_t retry_after_ms = 0;
};

void EncodeRejected(const WireRejected& rejected, std::string* out);
Status DecodeRejected(std::string_view payload, WireRejected* rejected);

/// kAccepted payload: what admission control granted this query.
struct WireAccepted {
  uint64_t granted_memory_bytes = 0;  // 0 = unlimited
  uint32_t granted_threads = 1;
  uint32_t active_queries = 0;  // including this one, at grant time
};

void EncodeAccepted(const WireAccepted& accepted, std::string* out);
Status DecodeAccepted(std::string_view payload, WireAccepted* accepted);

/// kRows payload codec. Encode appends rows [begin, end) of `rows`;
/// Decode appends every row in the payload to `out`.
void EncodeRowsPayload(const std::vector<Value>& rows, size_t begin,
                       size_t end, std::string* out);
Status DecodeRowsPayload(std::string_view payload, std::vector<Value>* out);

/// kDone payload codec: the DDL/DML outcome message ("" for queries).
void EncodeDonePayload(std::string_view message, std::string* out);
Status DecodeDonePayload(std::string_view payload, std::string* message);

/// kStats payload codec: the full ExecStats counter block as varints.
void EncodeStatsPayload(const ExecStats& stats, std::string* out);
Status DecodeStatsPayload(std::string_view payload, ExecStats* stats);

}  // namespace tmdb

#endif  // TMDB_NET_WIRE_H_
