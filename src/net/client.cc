#include "net/client.h"

#include <chrono>
#include <thread>
#include <utility>

#include "base/string_util.h"

namespace tmdb {

Status QueryClient::Connect(const std::string& host, int port,
                            int recv_timeout_ms) {
  Close();
  TMDB_ASSIGN_OR_RETURN(sock_, Socket::ConnectTcp(host, port));
  if (recv_timeout_ms > 0) {
    TMDB_RETURN_IF_ERROR(sock_.SetRecvTimeout(recv_timeout_ms));
  }
  return Status::OK();
}

Result<ClientResult> QueryClient::Run(const std::string& query) {
  WireRequest request;
  request.query = query;
  return Run(request);
}

Result<ClientResult> QueryClient::Run(const WireRequest& request) {
  if (!connected()) {
    return Status::IoError("client not connected");
  }
  Frame frame;
  frame.type = FrameType::kQuery;
  frame.request_id = next_request_id_++;
  EncodeRequest(request, &frame.payload);
  Result<ClientResult> result = [&]() -> Result<ClientResult> {
    TMDB_RETURN_IF_ERROR(WriteFrame(&sock_, injector_, frame));
    return ReadResponse(frame.request_id);
  }();
  if (!result.ok() && result.status().code() == StatusCode::kIoError) {
    // The stream cannot resynchronise past a wire error; drop the socket
    // so connected() reports the truth and the next Run fails fast.
    sock_.Close();
  }
  return result;
}

Result<ClientResult> QueryClient::RunWithRetry(const WireRequest& request,
                                               int max_attempts) {
  Result<ClientResult> result = Status::InvalidArgument("max_attempts < 1");
  int64_t backoff_ms = 0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
    result = Run(request);
    if (result.ok() || !WasRejected(result.status())) return result;
    // Exponential backoff seeded by the server's hint.
    const int64_t hint = static_cast<int64_t>(
        last_retry_after_ms_ > 0 ? last_retry_after_ms_ : 10);
    backoff_ms = backoff_ms == 0 ? hint : backoff_ms * 2;
  }
  return result;
}

bool QueryClient::WasRejected(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted &&
         status.message().find(kRejectedMessagePrefix) != std::string::npos;
}

Status QueryClient::SendCancel(uint64_t request_id) {
  if (!connected()) return Status::IoError("client not connected");
  Frame frame;
  frame.type = FrameType::kCancel;
  frame.request_id = request_id;
  return WriteFrame(&sock_, injector_, frame);
}

void QueryClient::Close() {
  if (connected()) {
    Frame goodbye;
    goodbye.type = FrameType::kGoodbye;
    (void)WriteFrame(&sock_, injector_, goodbye);
    sock_.Close();
  }
}

Result<ClientResult> QueryClient::ReadResponse(uint64_t request_id) {
  ClientResult result;
  for (;;) {
    Frame frame;
    bool eof = false;
    TMDB_RETURN_IF_ERROR(ReadFrame(&sock_, injector_, &frame, &eof));
    if (eof) {
      return Status::IoError("server closed the connection mid-response");
    }
    if (frame.request_id != request_id) {
      // One request in flight at a time: any other id is a protocol error
      // and the stream cannot be trusted.
      return Status::IoError(
          StrCat("response for unexpected request id ", frame.request_id,
                 " (expected ", request_id, ")"));
    }
    switch (frame.type) {
      case FrameType::kAccepted: {
        TMDB_RETURN_IF_ERROR(DecodeAccepted(frame.payload, &result.grant));
        result.has_grant = true;
        break;
      }
      case FrameType::kRows:
        TMDB_RETURN_IF_ERROR(DecodeRowsPayload(frame.payload, &result.rows));
        break;
      case FrameType::kStats:
        TMDB_RETURN_IF_ERROR(DecodeStatsPayload(frame.payload,
                                                &result.stats));
        break;
      case FrameType::kDone: {
        TMDB_RETURN_IF_ERROR(DecodeDonePayload(frame.payload,
                                               &result.message));
        return result;
      }
      case FrameType::kError: {
        WireError error;
        TMDB_RETURN_IF_ERROR(DecodeError(frame.payload, &error));
        return Status(error.code, error.message);
      }
      case FrameType::kRejected: {
        WireRejected rejected;
        TMDB_RETURN_IF_ERROR(DecodeRejected(frame.payload, &rejected));
        last_retry_after_ms_ = rejected.retry_after_ms;
        return Status(rejected.code, rejected.message);
      }
      default:
        return Status::IoError(
            StrCat("unexpected frame type ",
                   static_cast<uint32_t>(frame.type), " in response"));
    }
  }
}

}  // namespace tmdb
