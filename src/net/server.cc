#include "net/server.h"

#include <cctype>
#include <chrono>
#include <optional>
#include <utility>

#include "base/string_util.h"
#include "exec/executor.h"
#include "net/wire.h"
#include "spill/value_codec.h"
#include "translate/strategies.h"

namespace tmdb {

namespace {

/// Statements whose leading keyword mutates the catalog or a table take
/// the server's exclusive lock; everything else (queries, EXPLAIN) shares
/// it. Classified textually so the lock is held for parse + execution.
bool IsWriteStatement(const std::string& text) {
  size_t i = 0;
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  std::string keyword;
  while (i < text.size() &&
         std::isalpha(static_cast<unsigned char>(text[i]))) {
    keyword.push_back(static_cast<char>(
        std::toupper(static_cast<unsigned char>(text[i]))));
    ++i;
  }
  return keyword == "CREATE" || keyword == "DEFINE" || keyword == "INSERT";
}

/// RAII admission-slot release: every exit path of a handled query —
/// success, error, disconnect, stream failure — returns its slot.
class AdmissionSlot {
 public:
  AdmissionSlot(AdmissionController* controller, int weight)
      : controller_(controller), weight_(weight) {}
  ~AdmissionSlot() {
    if (controller_ != nullptr) controller_->Release(weight_);
  }
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

 private:
  AdmissionController* controller_;
  const int weight_;
};

}  // namespace

/// One connection: a thread, a socket, and a reused Executor. The session
/// thread owns all socket reads and writes; other threads influence it
/// only through atomics, guard cancellation, and socket shutdown.
class QueryServer::Session {
 public:
  Session(QueryServer* server, Socket sock, uint64_t id)
      : server_(server), sock_(std::move(sock)), id_(id) {}

  ~Session() {
    if (thread_.joinable()) thread_.join();
  }

  void Start() {
    thread_ = std::thread([this] { Loop(); });
  }

  /// Called by Shutdown (from the server's thread): flags the stop,
  /// cancels any in-flight query, and shuts the socket down so blocking
  /// frame reads unblock. Never closes the fd — the session thread may be
  /// mid-read, and shutdown() on a live fd is the race-free unblock.
  void RequestStop() {
    stop_requested_.store(true, std::memory_order_relaxed);
    executor_.guard()->Cancel();
    sock_.ShutdownBoth();
  }

  bool finished() const {
    return finished_.load(std::memory_order_acquire);
  }

  void Join() {
    if (thread_.joinable()) thread_.join();
  }

  uint64_t id() const { return id_; }

 private:
  void Loop() {
    FaultInjector* injector = server_->options_.fault_injector;
    for (;;) {
      if (stop_requested_.load(std::memory_order_relaxed)) break;
      Frame frame;
      bool eof = false;
      const Status read = ReadFrame(&sock_, injector, &frame, &eof);
      if (!read.ok()) {
        server_->wire_errors_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      if (eof || frame.type == FrameType::kGoodbye) break;
      if (frame.type == FrameType::kCancel) {
        // No query in flight on this connection — nothing to cancel.
        server_->cancel_frames_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (frame.type != FrameType::kQuery) {
        SendError(frame.request_id, StatusCode::kInvalidArgument,
                  StrCat("protocol error: unexpected frame type ",
                         static_cast<uint32_t>(frame.type)));
        break;
      }
      if (!HandleQuery(frame)) break;
    }
    finished_.store(true, std::memory_order_release);
  }

  /// Sends an error terminator; true when the connection is still usable.
  bool SendError(uint64_t request_id, StatusCode code, std::string message) {
    Frame frame;
    frame.type = FrameType::kError;
    frame.request_id = request_id;
    WireError error;
    error.code = code;
    error.message = std::move(message);
    EncodeError(error, &frame.payload);
    const Status sent =
        WriteFrame(&sock_, server_->options_.fault_injector, frame);
    if (!sent.ok()) {
      server_->wire_errors_.fetch_add(1, std::memory_order_relaxed);
    }
    return sent.ok();
  }

  /// Runs one admitted-or-rejected request end to end. Returns false when
  /// the connection is no longer usable (client vanished, wire error).
  bool HandleQuery(const Frame& frame) {
    FaultInjector* injector = server_->options_.fault_injector;
    const uint64_t id = frame.request_id;
    server_->queries_started_.fetch_add(1, std::memory_order_relaxed);

    WireRequest request;
    const Status decoded = DecodeRequest(frame.payload, &request);
    if (!decoded.ok()) {
      // The frame passed its CRC, so the stream is intact — reject the
      // request, keep the connection.
      server_->queries_error_.fetch_add(1, std::memory_order_relaxed);
      return SendError(id, StatusCode::kInvalidArgument, decoded.message());
    }
    Strategy strategy = Strategy::kNestJoin;
    if (!request.strategy.empty() &&
        !ParseStrategyName(request.strategy, &strategy)) {
      server_->queries_error_.fetch_add(1, std::memory_order_relaxed);
      return SendError(id, StatusCode::kInvalidArgument,
                       StrCat("unknown strategy '", request.strategy, "'"));
    }

    // ---------------------------------------------------------- admission
    // The requested parallelism doubles as the admission weight: a query
    // asking for 8 threads gets a proportionally larger share of the
    // scheduler pool than one asking for 1.
    const int admission_weight =
        request.num_threads < 1 ? 1 : static_cast<int>(request.num_threads);
    Result<AdmissionGrant> admitted = server_->admission_.Admit(
        static_cast<int64_t>(request.queue_wait_ms), admission_weight);
    if (!admitted.ok()) {
      server_->queries_rejected_.fetch_add(1, std::memory_order_relaxed);
      Frame rejected_frame;
      rejected_frame.type = FrameType::kRejected;
      rejected_frame.request_id = id;
      WireRejected rejected;
      rejected.code = admitted.status().code();
      rejected.message = FormatStatusForUser(admitted.status());
      rejected.retry_after_ms = static_cast<uint64_t>(
          server_->admission_.config().retry_after_ms);
      EncodeRejected(rejected, &rejected_frame.payload);
      const Status sent = WriteFrame(&sock_, injector, rejected_frame);
      if (!sent.ok()) {
        server_->wire_errors_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      return true;
    }
    const AdmissionGrant grant = *admitted;
    AdmissionSlot slot(&server_->admission_, admission_weight);

    Frame accepted_frame;
    accepted_frame.type = FrameType::kAccepted;
    accepted_frame.request_id = id;
    WireAccepted accepted;
    accepted.granted_memory_bytes = grant.memory_bytes;
    accepted.granted_threads = static_cast<uint32_t>(grant.threads);
    accepted.active_queries = static_cast<uint32_t>(grant.active);
    EncodeAccepted(accepted, &accepted_frame.payload);
    if (Status sent = WriteFrame(&sock_, injector, accepted_frame);
        !sent.ok()) {
      // The client vanished between admission and the grant notification.
      server_->wire_errors_.fetch_add(1, std::memory_order_relaxed);
      server_->queries_disconnected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }

    // ------------------------------------------------- options from grant
    RunOptions options;
    options.strategy = strategy;
    options.num_threads = static_cast<int>(request.num_threads);
    if (options.num_threads < 1) options.num_threads = 1;
    if (options.num_threads > grant.threads) {
      options.num_threads = grant.threads;
    }
    options.timeout_ms = static_cast<int64_t>(request.timeout_ms);
    // The grant caps the request; an unstated request budget inherits the
    // whole slice. grant 0 = server runs without a global memory budget.
    if (grant.memory_bytes == 0) {
      options.memory_budget_bytes = request.memory_budget_bytes;
    } else if (request.memory_budget_bytes == 0) {
      options.memory_budget_bytes = grant.memory_bytes;
    } else {
      options.memory_budget_bytes =
          request.memory_budget_bytes < grant.memory_bytes
              ? request.memory_budget_bytes
              : grant.memory_bytes;
    }
    options.max_rows = request.max_rows;
    options.enable_spill = request.enable_spill;
    options.spill_dir = server_->options_.spill_dir;
    options.spill_block_bytes = server_->options_.spill_block_bytes;
    options.enable_columnar = request.enable_columnar;

    // ------------------------------------------------------- execution
    // The query runs on a worker thread so this thread can watch the
    // socket: a vanished client or a CANCEL frame turns into
    // guard()->Cancel(), observed at the query's next checkpoint.
    std::optional<Result<StatementResult>> outcome;
    std::atomic<bool> done{false};
    const bool write_statement = IsWriteStatement(request.query);
    std::thread exec_thread([&] {
      if (write_statement) {
        std::unique_lock<std::shared_mutex> db_lock(server_->db_mu_);
        outcome.emplace(
            server_->db_->ExecuteWith(request.query, options, &executor_));
      } else {
        std::shared_lock<std::shared_mutex> db_lock(server_->db_mu_);
        outcome.emplace(
            server_->db_->ExecuteWith(request.query, options, &executor_));
      }
      done.store(true, std::memory_order_release);
    });

    bool disconnected = false;
    while (!done.load(std::memory_order_acquire) && !disconnected) {
      if (stop_requested_.load(std::memory_order_relaxed)) {
        executor_.guard()->Cancel();
      }
      switch (sock_.Poll(server_->options_.poll_interval_ms)) {
        case Socket::PollState::kTimeout:
          break;
        case Socket::PollState::kClosed:
          disconnected = true;
          executor_.guard()->Cancel();
          break;
        case Socket::PollState::kReadable: {
          Frame in;
          bool eof = false;
          const Status read = ReadFrame(&sock_, injector, &in, &eof);
          if (!read.ok() || eof || in.type == FrameType::kGoodbye) {
            if (!read.ok()) {
              server_->wire_errors_.fetch_add(1, std::memory_order_relaxed);
            }
            disconnected = true;
            executor_.guard()->Cancel();
          } else if (in.type == FrameType::kCancel) {
            server_->cancel_frames_.fetch_add(1, std::memory_order_relaxed);
            executor_.guard()->Cancel();
          } else {
            // Pipelining is not part of the protocol; a second request
            // mid-query is a protocol violation. Cancel and drop.
            disconnected = true;
            executor_.guard()->Cancel();
          }
          break;
        }
      }
    }
    exec_thread.join();

    const Result<StatementResult>& result = *outcome;
    if (disconnected) {
      server_->queries_disconnected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (!result.ok()) {
      server_->queries_error_.fetch_add(1, std::memory_order_relaxed);
      // One rendering for every front end: the frame carries exactly what
      // the REPL would print for this status.
      return SendError(id, result.status().code(),
                       FormatStatusForUser(result.status()));
    }
    return StreamResult(id, *result);
  }

  /// Streams rows (chunked), stats, and the kDone terminator. Returns
  /// false when the client vanished mid-stream.
  bool StreamResult(uint64_t id, const StatementResult& statement) {
    FaultInjector* injector = server_->options_.fault_injector;
    const std::vector<Value>* rows =
        statement.is_query ? &statement.query.rows : nullptr;
    size_t index = 0;
    while (rows != nullptr && index < rows->size()) {
      Frame rows_frame;
      rows_frame.type = FrameType::kRows;
      rows_frame.request_id = id;
      std::string records;
      uint64_t count = 0;
      while (index < rows->size() && records.size() < kWireRowsChunkBytes) {
        EncodeValue((*rows)[index], &records);
        ++count;
        ++index;
      }
      PutVarint(count, &rows_frame.payload);
      rows_frame.payload += records;
      if (Status sent = WriteFrame(&sock_, injector, rows_frame);
          !sent.ok()) {
        server_->wire_errors_.fetch_add(1, std::memory_order_relaxed);
        server_->queries_disconnected_.fetch_add(1,
                                                 std::memory_order_relaxed);
        return false;
      }
    }
    if (statement.is_query) {
      Frame stats_frame;
      stats_frame.type = FrameType::kStats;
      stats_frame.request_id = id;
      EncodeStatsPayload(statement.query.stats, &stats_frame.payload);
      if (Status sent = WriteFrame(&sock_, injector, stats_frame);
          !sent.ok()) {
        server_->wire_errors_.fetch_add(1, std::memory_order_relaxed);
        server_->queries_disconnected_.fetch_add(1,
                                                 std::memory_order_relaxed);
        return false;
      }
    }
    Frame done_frame;
    done_frame.type = FrameType::kDone;
    done_frame.request_id = id;
    // DDL/DML outcomes ride in the terminator ("created table R", ...).
    EncodeDonePayload(statement.message, &done_frame.payload);
    if (Status sent = WriteFrame(&sock_, injector, done_frame); !sent.ok()) {
      server_->wire_errors_.fetch_add(1, std::memory_order_relaxed);
      server_->queries_disconnected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    server_->queries_ok_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  QueryServer* const server_;
  Socket sock_;
  const uint64_t id_;
  Executor executor_;  // reused across every query on this connection
  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> finished_{false};
};

QueryServer::QueryServer(Database* db, ServerOptions options)
    : db_(db), options_(std::move(options)), admission_(options_.admission) {}

QueryServer::~QueryServer() { Shutdown(); }

Status QueryServer::Start() {
  if (running_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("server already started");
  }
  int bound_port = 0;
  TMDB_ASSIGN_OR_RETURN(listener_,
                        Socket::ListenTcp(options_.host, options_.port,
                                          options_.backlog, &bound_port));
  port_ = bound_port;
  running_.store(true, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void QueryServer::AcceptLoop() {
  for (;;) {
    if (stopping_.load(std::memory_order_relaxed)) break;
    // Reap finished sessions opportunistically so a long-lived server
    // doesn't accumulate joined-out session objects.
    ReapSessions(/*all=*/false);
    if (options_.fault_injector != nullptr &&
        options_.fault_injector->ShouldFailAccept()) {
      // Transient accept failure (EMFILE, aborted handshake): log-and-go —
      // the listener keeps serving.
      accept_failures_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Result<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      accept_failures_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.push_back(std::make_unique<Session>(
        this, std::move(*accepted), next_session_id_++));
    sessions_.back()->Start();
  }
}

void QueryServer::ReapSessions(bool all) {
  std::vector<std::unique_ptr<Session>> dead;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (size_t i = 0; i < sessions_.size();) {
      if (all || sessions_[i]->finished()) {
        dead.push_back(std::move(sessions_[i]));
        sessions_.erase(sessions_.begin() + static_cast<long>(i));
      } else {
        ++i;
      }
    }
  }
  for (const std::unique_ptr<Session>& session : dead) session->Join();
}

void QueryServer::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (!running_.load(std::memory_order_relaxed)) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Unblock queued admissions first so sessions stuck in Admit exit fast,
  // then unblock the accept loop (shutdown on a listening socket makes a
  // blocked accept return), then stop every session.
  admission_.Shutdown();
  listener_.ShutdownBoth();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const std::unique_ptr<Session>& session : sessions_) {
      session->RequestStop();
    }
  }
  ReapSessions(/*all=*/true);
  running_.store(false, std::memory_order_relaxed);
}

ServerStatsSnapshot QueryServer::stats() const {
  ServerStatsSnapshot snapshot;
  snapshot.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(
        const_cast<std::mutex&>(sessions_mu_));
    uint64_t active = 0;
    for (const std::unique_ptr<Session>& session : sessions_) {
      if (!session->finished()) ++active;
    }
    snapshot.sessions_active = active;
  }
  snapshot.accept_failures = accept_failures_.load(std::memory_order_relaxed);
  snapshot.queries_started = queries_started_.load(std::memory_order_relaxed);
  snapshot.queries_ok = queries_ok_.load(std::memory_order_relaxed);
  snapshot.queries_error = queries_error_.load(std::memory_order_relaxed);
  snapshot.queries_rejected =
      queries_rejected_.load(std::memory_order_relaxed);
  snapshot.queries_disconnected =
      queries_disconnected_.load(std::memory_order_relaxed);
  snapshot.cancel_frames = cancel_frames_.load(std::memory_order_relaxed);
  snapshot.wire_errors = wire_errors_.load(std::memory_order_relaxed);
  return snapshot;
}

}  // namespace tmdb
