#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <utility>

#include "base/string_util.h"

namespace tmdb {

namespace {

Status Errno(const char* what) {
  return Status::IoError(StrCat(what, ": ", std::strerror(errno)));
}

/// Resolves host:port into an IPv4/IPv6 sockaddr via getaddrinfo.
Status Resolve(const std::string& host, int port, struct addrinfo** out,
               bool passive) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (passive) hints.ai_flags = AI_PASSIVE;
  const std::string port_str = StrCat(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               port_str.c_str(), &hints, out);
  if (rc != 0) {
    return Status::IoError(StrCat("getaddrinfo(", host, ":", port,
                                  "): ", gai_strerror(rc)));
  }
  return Status::OK();
}

}  // namespace

Result<Socket> Socket::ConnectTcp(const std::string& host, int port) {
  struct addrinfo* info = nullptr;
  TMDB_RETURN_IF_ERROR(Resolve(host, port, &info, /*passive=*/false));
  Status last = Status::IoError("connect: no addresses resolved");
  for (struct addrinfo* ai = info; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(info);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    last = Errno("connect");
    ::close(fd);
  }
  ::freeaddrinfo(info);
  return last;
}

Result<Socket> Socket::ListenTcp(const std::string& host, int port,
                                 int backlog, int* bound_port) {
  struct addrinfo* info = nullptr;
  TMDB_RETURN_IF_ERROR(Resolve(host, port, &info, /*passive=*/true));
  Status last = Status::IoError("listen: no addresses resolved");
  for (struct addrinfo* ai = info; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(fd, backlog) != 0) {
      last = Errno("bind/listen");
      ::close(fd);
      continue;
    }
    if (bound_port != nullptr) {
      struct sockaddr_storage addr;
      socklen_t addr_len = sizeof(addr);
      if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                        &addr_len) != 0) {
        last = Errno("getsockname");
        ::close(fd);
        continue;
      }
      if (addr.ss_family == AF_INET) {
        *bound_port = ntohs(
            reinterpret_cast<struct sockaddr_in*>(&addr)->sin_port);
      } else {
        *bound_port = ntohs(
            reinterpret_cast<struct sockaddr_in6*>(&addr)->sin6_port);
      }
    }
    ::freeaddrinfo(info);
    return Socket(fd);
  }
  ::freeaddrinfo(info);
  return last;
}

Result<Socket> Socket::Accept() {
  if (!valid()) return Status::IoError("accept: listener closed");
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

Status Socket::SendAll(const void* data, size_t len) {
  if (!valid()) return Status::IoError("send: socket closed");
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Status Socket::RecvAll(void* data, size_t len, bool* eof) {
  *eof = false;
  if (!valid()) return Status::IoError("recv: socket closed");
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd_, p + got, len - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      if (got == 0) {
        *eof = true;
        return Status::OK();
      }
      return Status::IoError("recv: connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    return Errno("recv");
  }
  return Status::OK();
}

Socket::PollState Socket::Poll(int timeout_ms) {
  if (!valid()) return PollState::kClosed;
  struct pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc < 0) return errno == EINTR ? PollState::kTimeout : PollState::kClosed;
  if (rc == 0) return PollState::kTimeout;
  return PollState::kReadable;
}

Status Socket::SetRecvTimeout(int timeout_ms) {
  if (!valid()) return Status::IoError("setsockopt: socket closed");
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

void Socket::ShutdownBoth() {
  if (valid()) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status WriteFrame(Socket* socket, FaultInjector* injector,
                  const Frame& frame) {
  std::string bytes;
  bytes.reserve(kWireHeaderBytes + frame.payload.size());
  EncodeFrame(frame, &bytes);
  const WireFaultKind fault =
      injector != nullptr ? injector->ShouldFailSend() : WireFaultKind::kNone;
  switch (fault) {
    case WireFaultKind::kShortWrite: {
      // Model a send that died partway: the peer holds a torn frame and
      // this side learns immediately.
      const Status sent = socket->SendAll(bytes.data(), bytes.size() / 2);
      socket->ShutdownBoth();
      (void)sent;
      return Status::IoError("injected short write on wire");
    }
    case WireFaultKind::kTornFrame: {
      // Model a connection that died in flight *after* the send call
      // returned: this call reports success, the peer holds a torn frame,
      // and this side's next send fails for real.
      const Status sent = socket->SendAll(bytes.data(), bytes.size() / 2);
      socket->ShutdownBoth();
      (void)sent;
      return Status::OK();
    }
    case WireFaultKind::kCorruptCrc: {
      // Flip one bit of the CRC field (byte 20): the frame arrives whole
      // but fails verification at the peer.
      bytes[20] = static_cast<char>(bytes[20] ^ 0x01);
      return socket->SendAll(bytes.data(), bytes.size());
    }
    case WireFaultKind::kDisconnect:
      socket->ShutdownBoth();
      return Status::IoError("injected disconnect on wire");
    default:
      break;
  }
  return socket->SendAll(bytes.data(), bytes.size());
}

Status ReadFrame(Socket* socket, FaultInjector* injector, Frame* frame,
                 bool* eof) {
  *eof = false;
  if (injector != nullptr && injector->ShouldFailRecv()) {
    socket->ShutdownBoth();
    return Status::IoError("injected short read on wire (torn frame)");
  }
  char header_bytes[kWireHeaderBytes];
  TMDB_RETURN_IF_ERROR(socket->RecvAll(header_bytes, sizeof(header_bytes),
                                       eof));
  if (*eof) return Status::OK();
  FrameHeader header;
  TMDB_RETURN_IF_ERROR(DecodeFrameHeader(header_bytes, &header));
  frame->payload.resize(header.payload_len);
  if (header.payload_len > 0) {
    bool payload_eof = false;
    TMDB_RETURN_IF_ERROR(socket->RecvAll(frame->payload.data(),
                                         header.payload_len, &payload_eof));
    if (payload_eof) {
      return Status::IoError("recv: connection closed mid-frame");
    }
  }
  TMDB_RETURN_IF_ERROR(ValidateFramePayload(header, frame->payload));
  frame->type = static_cast<FrameType>(header.type);
  frame->request_id = header.request_id;
  return Status::OK();
}

}  // namespace tmdb
