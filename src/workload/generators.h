#ifndef TMDB_WORKLOAD_GENERATORS_H_
#define TMDB_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>

#include "base/result.h"
#include "core/database.h"

namespace tmdb {

/// Deterministic data generators for the paper's schemas. All take a seed;
/// the same (config, seed) produces identical databases on any platform.

/// Section 2 schemas: R(a, b, c) and S(c, d), used by the COUNT bug demo.
/// `match_fraction` controls how many R rows have at least one S partner on
/// c — the rest are dangling, which is where Kim's algorithm goes wrong.
/// R.b is drawn from [0, max_b]; b = 0 rows are exactly the ones the COUNT
/// bug loses when the subquery result is empty.
struct CountBugConfig {
  size_t num_r = 100;
  size_t num_s = 200;
  double match_fraction = 0.7;
  int64_t max_b = 4;
  uint64_t seed = 42;
  /// Multiplies the c-value domain (default 1 = the historical behaviour,
  /// where the domain tracks num_r). Values > 1 spread the join keys and
  /// leave most S rows matching no R row, so the nested outputs stay small
  /// relative to the build side — the shape spill tests need.
  int64_t domain_scale = 1;
};
Status LoadCountBugTables(Database* db, const CountBugConfig& config);

/// Section 4 schemas: X(a : P(INT), b) and Y(a, b), used by the SUBSETEQ
/// bug demo (predicate x.a ⊆ z). `empty_a_fraction` X rows have a = ∅ —
/// those satisfy ⊆ trivially and are the rows Kim-style grouping loses
/// when they dangle.
struct SubsetBugConfig {
  size_t num_x = 100;
  size_t num_y = 200;
  double match_fraction = 0.7;
  double empty_a_fraction = 0.2;
  size_t max_set_size = 3;
  int64_t value_domain = 8;
  uint64_t seed = 43;
  /// Multiplies the b-value domain; see CountBugConfig::domain_scale.
  int64_t domain_scale = 1;
};
Status LoadSubsetBugTables(Database* db, const SubsetBugConfig& config);

/// Section 8 schemas: X(a : P(INT), b), Y(a, b, c : P(INT), d), Z(c, d) —
/// the three-block linear query workload.
struct Section8Config {
  size_t num_x = 50;
  size_t num_y = 100;
  size_t num_z = 200;
  int64_t b_domain = 20;   // X–Y correlation attribute domain
  int64_t d_domain = 30;   // Y–Z correlation attribute domain
  int64_t value_domain = 6;
  size_t max_set_size = 3;
  uint64_t seed = 44;
};
Status LoadSection8Tables(Database* db, const Section8Config& config);

/// Section 3 company schema: DEPT and EMP extensions with complex-object
/// attributes (nested address tuples, set-valued children, set-valued
/// emps), backing queries Q1 and Q2.
struct CompanyConfig {
  size_t num_depts = 10;
  size_t num_emps = 100;
  size_t num_cities = 5;
  size_t num_streets = 12;
  size_t max_children = 3;
  uint64_t seed = 45;
};
Status LoadCompanyTables(Database* db, const CompanyConfig& config);

/// Correlated nested-query workload for the subplan memoization cache:
/// O(a, k, v) outer rows whose k (the correlation attribute) takes exactly
/// min(correlation_scale, num_outer) distinct values, and I(k, v) inner
/// rows to aggregate per k. A query correlated on o.k therefore computes
/// `correlation_scale` distinct subplan results over `num_outer` outer
/// rows: scale == num_outer gives a ~0% cache hit ratio, scale = 10 over
/// 10k rows ~99.9%.
struct CorrelatedConfig {
  size_t num_outer = 10000;
  size_t num_inner = 1000;
  /// Number of distinct correlation values (clamped to [1, num_outer]).
  /// Outer rows cycle through them round-robin, so every value appears.
  int64_t correlation_scale = 10;
  int64_t value_domain = 100;
  uint64_t seed = 47;
  /// Skew knob for the cost-model tests: this fraction of outer rows takes
  /// k from a hot set of min(8, scale) values instead of the round-robin
  /// cycle, producing a skewed distinct-correlation distribution. 0 (the
  /// default) draws no extra random numbers, so existing workloads keep
  /// their exact data bit-for-bit.
  double hot_key_fraction = 0.0;
};
Status LoadCorrelatedTables(Database* db, const CorrelatedConfig& config);

/// Generic two-table workload for the flatten-vs-nested scaling benches:
/// X(a, b) and Y(b, c) with |Y| rows over a b-domain of `b_domain` values.
struct ScaleConfig {
  size_t num_x = 1000;
  size_t num_y = 1000;
  int64_t b_domain = 100;
  int64_t a_domain = 50;
  uint64_t seed = 46;
};
Status LoadScaleTables(Database* db, const ScaleConfig& config);

}  // namespace tmdb

#endif  // TMDB_WORKLOAD_GENERATORS_H_
