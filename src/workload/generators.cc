#include "workload/generators.h"

#include <utility>
#include <vector>

#include "base/random.h"
#include "base/string_util.h"

namespace tmdb {

namespace {

Value IntTuple(const std::vector<std::string>& names,
               const std::vector<int64_t>& values) {
  std::vector<Value> fields;
  fields.reserve(values.size());
  for (int64_t v : values) fields.push_back(Value::Int(v));
  return Value::Tuple(names, std::move(fields));
}

Value RandomIntSet(Random* rng, size_t max_size, int64_t domain) {
  const size_t n = rng->Uniform(max_size + 1);
  std::vector<Value> elems;
  elems.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    elems.push_back(Value::Int(rng->UniformInt(0, domain - 1)));
  }
  return Value::Set(std::move(elems));
}

// Inserts ignoring AlreadyExists (generators may draw duplicate rows; the
// extensions are sets, so dropping duplicates is the correct semantics).
Status InsertRow(Table* table, Value row) {
  Status s = table->Insert(std::move(row));
  if (s.code() == StatusCode::kAlreadyExists) return Status::OK();
  return s;
}

}  // namespace

Status LoadCountBugTables(Database* db, const CountBugConfig& config) {
  Random rng(config.seed);
  TMDB_ASSIGN_OR_RETURN(
      auto r, db->CreateTable("R", Type::Tuple({{"a", Type::Int()},
                                                {"b", Type::Int()},
                                                {"c", Type::Int()}})));
  TMDB_ASSIGN_OR_RETURN(
      auto s, db->CreateTable("S", Type::Tuple({{"c", Type::Int()},
                                                {"d", Type::Int()}})));
  // c values [0, matched_domain) appear in S; R rows draw c from the full
  // domain, so roughly (1 - match_fraction) of them dangle.
  const int64_t full_domain =
      (static_cast<int64_t>(config.num_r) + 1) *
      (config.domain_scale < 1 ? 1 : config.domain_scale);
  const int64_t matched_domain = static_cast<int64_t>(
      static_cast<double>(full_domain) * config.match_fraction);
  for (size_t i = 0; i < config.num_r; ++i) {
    TMDB_RETURN_IF_ERROR(InsertRow(
        r.get(),
        IntTuple({"a", "b", "c"},
                 {static_cast<int64_t>(i), rng.UniformInt(0, config.max_b),
                  rng.UniformInt(0, full_domain - 1)})));
  }
  for (size_t i = 0; i < config.num_s; ++i) {
    const int64_t c = matched_domain > 0
                          ? rng.UniformInt(0, matched_domain - 1)
                          : 0;
    TMDB_RETURN_IF_ERROR(InsertRow(
        s.get(), IntTuple({"c", "d"}, {c, static_cast<int64_t>(i)})));
  }
  return Status::OK();
}

Status LoadSubsetBugTables(Database* db, const SubsetBugConfig& config) {
  Random rng(config.seed);
  TMDB_ASSIGN_OR_RETURN(
      auto x,
      db->CreateTable("X", Type::Tuple({{"a", Type::Set(Type::Int())},
                                        {"b", Type::Int()}})));
  TMDB_ASSIGN_OR_RETURN(
      auto y, db->CreateTable("Y", Type::Tuple({{"a", Type::Int()},
                                                {"b", Type::Int()}})));
  const int64_t full_domain =
      (static_cast<int64_t>(config.num_x) + 1) *
      (config.domain_scale < 1 ? 1 : config.domain_scale);
  const int64_t matched_domain = static_cast<int64_t>(
      static_cast<double>(full_domain) * config.match_fraction);
  for (size_t i = 0; i < config.num_x; ++i) {
    Value a = rng.Bernoulli(config.empty_a_fraction)
                  ? Value::EmptySet()
                  : RandomIntSet(&rng, config.max_set_size,
                                 config.value_domain);
    TMDB_RETURN_IF_ERROR(InsertRow(
        x.get(), Value::Tuple({"a", "b"},
                              {std::move(a),
                               Value::Int(rng.UniformInt(
                                   0, full_domain - 1))})));
  }
  for (size_t i = 0; i < config.num_y; ++i) {
    const int64_t b = matched_domain > 0
                          ? rng.UniformInt(0, matched_domain - 1)
                          : 0;
    TMDB_RETURN_IF_ERROR(InsertRow(
        y.get(),
        IntTuple({"a", "b"}, {rng.UniformInt(0, config.value_domain - 1), b})));
  }
  return Status::OK();
}

Status LoadSection8Tables(Database* db, const Section8Config& config) {
  Random rng(config.seed);
  TMDB_ASSIGN_OR_RETURN(
      auto x,
      db->CreateTable("X", Type::Tuple({{"a", Type::Set(Type::Int())},
                                        {"b", Type::Int()}})));
  TMDB_ASSIGN_OR_RETURN(
      auto y,
      db->CreateTable("Y", Type::Tuple({{"a", Type::Int()},
                                        {"b", Type::Int()},
                                        {"c", Type::Set(Type::Int())},
                                        {"d", Type::Int()}})));
  TMDB_ASSIGN_OR_RETURN(
      auto z, db->CreateTable("Z", Type::Tuple({{"c", Type::Int()},
                                                {"d", Type::Int()}})));
  for (size_t i = 0; i < config.num_x; ++i) {
    TMDB_RETURN_IF_ERROR(InsertRow(
        x.get(),
        Value::Tuple({"a", "b"},
                     {RandomIntSet(&rng, config.max_set_size,
                                   config.value_domain),
                      Value::Int(rng.UniformInt(0, config.b_domain - 1))})));
  }
  for (size_t i = 0; i < config.num_y; ++i) {
    TMDB_RETURN_IF_ERROR(InsertRow(
        y.get(),
        Value::Tuple(
            {"a", "b", "c", "d"},
            {Value::Int(rng.UniformInt(0, config.value_domain - 1)),
             Value::Int(rng.UniformInt(0, config.b_domain - 1)),
             RandomIntSet(&rng, config.max_set_size, config.value_domain),
             Value::Int(rng.UniformInt(0, config.d_domain - 1))})));
  }
  for (size_t i = 0; i < config.num_z; ++i) {
    TMDB_RETURN_IF_ERROR(InsertRow(
        z.get(),
        IntTuple({"c", "d"}, {rng.UniformInt(0, config.value_domain - 1),
                              rng.UniformInt(0, config.d_domain - 1)})));
  }
  return Status::OK();
}

Status LoadCompanyTables(Database* db, const CompanyConfig& config) {
  Random rng(config.seed);
  const Type address = Type::Tuple({{"street", Type::String()},
                                    {"nr", Type::String()},
                                    {"city", Type::String()}});
  const Type child =
      Type::Tuple({{"name", Type::String()}, {"age", Type::Int()}});
  const Type emp_schema = Type::Tuple({{"name", Type::String()},
                                       {"address", address},
                                       {"sal", Type::Int()},
                                       {"children", Type::Set(child)}});
  // DEPT stores its employees' names as a set-valued attribute (the
  // materialized-join representation the paper describes); EMP is the
  // class extension holding the employee objects.
  const Type dept_schema =
      Type::Tuple({{"dname", Type::String()},
                   {"address", address},
                   {"emps", Type::Set(Type::String())}});
  TMDB_RETURN_IF_ERROR(db->catalog()->DefineSort("Address", address));
  TMDB_ASSIGN_OR_RETURN(auto emp, db->CreateTable("EMP", emp_schema));
  TMDB_ASSIGN_OR_RETURN(auto dept, db->CreateTable("DEPT", dept_schema));

  auto make_address = [&](Random* r) {
    return Value::Tuple(
        {"street", "nr", "city"},
        {Value::String(StrCat("street", r->Uniform(config.num_streets))),
         Value::String(StrCat(1 + r->Uniform(99))),
         Value::String(StrCat("city", r->Uniform(config.num_cities)))});
  };

  std::vector<std::vector<Value>> dept_members(config.num_depts);
  for (size_t i = 0; i < config.num_emps; ++i) {
    std::vector<Value> children;
    const size_t n_children = rng.Uniform(config.max_children + 1);
    for (size_t k = 0; k < n_children; ++k) {
      children.push_back(
          Value::Tuple({"name", "age"},
                       {Value::String(StrCat("child", i, "_", k)),
                        Value::Int(rng.UniformInt(0, 17))}));
    }
    Value name = Value::String(StrCat("emp", i));
    TMDB_RETURN_IF_ERROR(InsertRow(
        emp.get(),
        Value::Tuple({"name", "address", "sal", "children"},
                     {name, make_address(&rng),
                      Value::Int(rng.UniformInt(20000, 90000)),
                      Value::Set(std::move(children))})));
    if (config.num_depts > 0) {
      dept_members[rng.Uniform(config.num_depts)].push_back(std::move(name));
    }
  }
  for (size_t i = 0; i < config.num_depts; ++i) {
    TMDB_RETURN_IF_ERROR(InsertRow(
        dept.get(),
        Value::Tuple({"dname", "address", "emps"},
                     {Value::String(StrCat("dept", i)), make_address(&rng),
                      Value::Set(std::move(dept_members[i]))})));
  }
  return Status::OK();
}

Status LoadCorrelatedTables(Database* db, const CorrelatedConfig& config) {
  Random rng(config.seed);
  TMDB_ASSIGN_OR_RETURN(
      auto o, db->CreateTable("O", Type::Tuple({{"a", Type::Int()},
                                                {"k", Type::Int()},
                                                {"v", Type::Int()}})));
  TMDB_ASSIGN_OR_RETURN(
      auto inner, db->CreateTable("I", Type::Tuple({{"k", Type::Int()},
                                                    {"v", Type::Int()}})));
  int64_t scale = config.correlation_scale;
  if (scale < 1) scale = 1;
  if (scale > static_cast<int64_t>(config.num_outer) &&
      config.num_outer > 0) {
    scale = static_cast<int64_t>(config.num_outer);
  }
  // Round-robin k: every correlation value appears, so a memoizing run
  // computes exactly `scale` subplans and hits on the rest. With
  // hot_key_fraction > 0 a Bernoulli draw redirects that share of rows to a
  // small hot set — the branch is guarded so the fraction-0 RNG stream (and
  // every existing workload's data) is untouched.
  const int64_t hot_set = scale < 8 ? scale : 8;
  for (size_t i = 0; i < config.num_outer; ++i) {
    int64_t k = static_cast<int64_t>(i) % scale;
    if (config.hot_key_fraction > 0) {
      const double draw =
          static_cast<double>(rng.Uniform(1ull << 53)) /
          static_cast<double>(1ull << 53);
      if (draw < config.hot_key_fraction) k = rng.UniformInt(0, hot_set - 1);
    }
    TMDB_RETURN_IF_ERROR(InsertRow(
        o.get(),
        IntTuple({"a", "k", "v"},
                 {static_cast<int64_t>(i), k,
                  rng.UniformInt(0, config.value_domain - 1)})));
  }
  for (size_t i = 0; i < config.num_inner; ++i) {
    TMDB_RETURN_IF_ERROR(InsertRow(
        inner.get(),
        IntTuple({"k", "v"}, {rng.UniformInt(0, scale - 1),
                              rng.UniformInt(0, config.value_domain - 1)})));
  }
  return Status::OK();
}

Status LoadScaleTables(Database* db, const ScaleConfig& config) {
  Random rng(config.seed);
  TMDB_ASSIGN_OR_RETURN(
      auto x, db->CreateTable("X", Type::Tuple({{"a", Type::Int()},
                                                {"b", Type::Int()}})));
  TMDB_ASSIGN_OR_RETURN(
      auto y, db->CreateTable("Y", Type::Tuple({{"b", Type::Int()},
                                                {"c", Type::Int()}})));
  for (size_t i = 0; i < config.num_x; ++i) {
    TMDB_RETURN_IF_ERROR(InsertRow(
        x.get(),
        IntTuple({"a", "b"}, {rng.UniformInt(0, config.a_domain - 1),
                              rng.UniformInt(0, config.b_domain - 1)})));
  }
  for (size_t i = 0; i < config.num_y; ++i) {
    TMDB_RETURN_IF_ERROR(InsertRow(
        y.get(),
        IntTuple({"b", "c"}, {rng.UniformInt(0, config.b_domain - 1),
                              rng.UniformInt(0, config.a_domain - 1)})));
  }
  return Status::OK();
}

}  // namespace tmdb
