#include "catalog/table.h"

#include <unordered_set>
#include <utility>

#include "base/string_util.h"

namespace tmdb {

Result<std::shared_ptr<Table>> Table::Create(std::string name, Type schema) {
  if (!schema.is_tuple()) {
    return Status::TypeError(StrCat("table '", name,
                                    "' requires a tuple schema, got ",
                                    schema.ToString()));
  }
  if (name.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  std::unordered_set<std::string> seen;
  for (const Field& field : schema.fields()) {
    if (field.name.empty()) {
      return Status::InvalidArgument(
          StrCat("table '", name, "' has an attribute with an empty name"));
    }
    if (!seen.insert(field.name).second) {
      return Status::InvalidArgument(StrCat("table '", name,
                                            "' has duplicate attribute '",
                                            field.name, "'"));
    }
  }
  return std::shared_ptr<Table>(new Table(std::move(name), std::move(schema)));
}

Status Table::Insert(Value row) {
  if (!ConformsTo(row, schema_)) {
    return Status::TypeError(StrCat("row ", row.ToString(),
                                    " does not conform to schema of table '",
                                    name_, "': ", schema_.ToString()));
  }
  // Extensions are sets: reject exact duplicates.
  const uint64_t h = row.Hash();
  auto [begin, end] = hash_index_.equal_range(h);
  for (auto it = begin; it != end; ++it) {
    if (rows_[it->second].Equals(row)) {
      return Status::AlreadyExists(StrCat("duplicate row in table '", name_,
                                          "': ", row.ToString()));
    }
  }
  hash_index_.emplace(h, rows_.size());
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status Table::InsertAll(const std::vector<Value>& rows) {
  for (const Value& row : rows) {
    TMDB_RETURN_IF_ERROR(Insert(row));
  }
  return Status::OK();
}

std::string Table::ToString(size_t max_rows) const {
  std::string out = StrCat("TABLE ", name_, " : ", schema_.ToString(), "  (",
                           rows_.size(), " rows)\n");
  size_t shown = 0;
  for (const Value& row : rows_) {
    if (shown == max_rows) {
      out += StrCat("  ... (", rows_.size() - shown, " more)\n");
      break;
    }
    out += "  " + row.ToString() + "\n";
    ++shown;
  }
  return out;
}

std::shared_ptr<const ColumnStore> Table::columnar_store() const {
  std::lock_guard<std::mutex> lock(columnar_mu_);
  if (!columnar_attempted_ || columnar_rows_ != rows_.size()) {
    columnar_ = ColumnStore::Build(schema_, rows_);
    columnar_rows_ = rows_.size();
    columnar_attempted_ = true;
  }
  return columnar_;
}

}  // namespace tmdb
