#ifndef TMDB_CATALOG_CATALOG_H_
#define TMDB_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "catalog/table.h"
#include "types/type.h"

namespace tmdb {

/// Name → table mapping for one database. Also stores named tuple types
/// ("sorts" in TM, e.g. Address) so schemas can reference them by name when
/// parsed from DDL-ish helper code.
class Catalog {
 public:
  Catalog() = default;

  // Copying a catalog would silently alias tables; forbid it.
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates and registers an empty table.
  Result<std::shared_ptr<Table>> CreateTable(const std::string& name,
                                             Type schema);
  /// Registers an existing table under its own name.
  Status RegisterTable(std::shared_ptr<Table> table);

  Result<std::shared_ptr<Table>> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// Named tuple types (TM sorts).
  Status DefineSort(const std::string& name, Type type);
  Result<Type> GetSort(const std::string& name) const;

 private:
  std::map<std::string, std::shared_ptr<Table>> tables_;
  std::map<std::string, Type> sorts_;
};

}  // namespace tmdb

#endif  // TMDB_CATALOG_CATALOG_H_
