#include "catalog/catalog.h"

#include <utility>

#include "base/string_util.h"

namespace tmdb {

Result<std::shared_ptr<Table>> Catalog::CreateTable(const std::string& name,
                                                    Type schema) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists(StrCat("table '", name, "' already exists"));
  }
  TMDB_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                        Table::Create(name, std::move(schema)));
  tables_[name] = table;
  return table;
}

Status Catalog::RegisterTable(std::shared_ptr<Table> table) {
  if (table == nullptr) {
    return Status::InvalidArgument("cannot register a null table");
  }
  if (tables_.count(table->name()) > 0) {
    return Status::AlreadyExists(
        StrCat("table '", table->name(), "' already exists"));
  }
  tables_[table->name()] = std::move(table);
  return Status::OK();
}

Result<std::shared_ptr<Table>> Catalog::GetTable(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("no table named '", name, "'"));
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) {
    names.push_back(name);
  }
  return names;
}

Status Catalog::DefineSort(const std::string& name, Type type) {
  if (sorts_.count(name) > 0) {
    return Status::AlreadyExists(StrCat("sort '", name, "' already exists"));
  }
  if (!type.is_tuple()) {
    return Status::TypeError(
        StrCat("sort '", name, "' must be a tuple type, got ",
               type.ToString()));
  }
  sorts_.emplace(name, std::move(type));
  return Status::OK();
}

Result<Type> Catalog::GetSort(const std::string& name) const {
  auto it = sorts_.find(name);
  if (it == sorts_.end()) {
    return Status::NotFound(StrCat("no sort named '", name, "'"));
  }
  return it->second;
}

}  // namespace tmdb
