#ifndef TMDB_CATALOG_TABLE_H_
#define TMDB_CATALOG_TABLE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "types/type.h"
#include "values/column_store.h"
#include "values/value.h"

namespace tmdb {

/// A named class extension: a set of complex-object tuples conforming to a
/// tuple schema. This is the paper's `CLASS ... WITH EXTENSION NAME` reduced
/// to its query-relevant core — an in-memory table whose attributes may be
/// arbitrarily nested (set-valued attributes are stored with the objects
/// themselves, "as materialized joins", Section 3.2).
///
/// Rows are stored in insertion order; the *set* semantics (duplicate-free)
/// is enforced at insertion via a hash of the row values.
class Table {
 public:
  /// Creates a table. `schema` must be a tuple type.
  static Result<std::shared_ptr<Table>> Create(std::string name, Type schema);

  const std::string& name() const { return name_; }
  const Type& schema() const { return schema_; }

  /// Appends a row after validating it against the schema. Duplicate rows
  /// are rejected (extensions are sets).
  Status Insert(Value row);
  /// Appends many rows; stops at the first failure.
  Status InsertAll(const std::vector<Value>& rows);

  size_t NumRows() const { return rows_.size(); }
  const std::vector<Value>& rows() const { return rows_; }

  /// Multi-line rendering of schema and rows, used by examples and tests.
  std::string ToString(size_t max_rows = 20) const;

  /// Columnar decomposition of the current rows, built lazily on first
  /// request and cached until the table grows (inserts invalidate by row
  /// count). Returns nullptr when the table is not columnar — any
  /// non-basic attribute or deviating value kind (see ColumnStore::Build) —
  /// and remembers that verdict so scans don't retry a doomed build per
  /// query. Thread-safe.
  std::shared_ptr<const ColumnStore> columnar_store() const;

 private:
  Table(std::string name, Type schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  std::string name_;
  Type schema_;
  std::vector<Value> rows_;
  // row hash → row index, used to enforce set semantics on insert.
  std::unordered_multimap<uint64_t, size_t> hash_index_;

  // Lazy columnar cache: guarded by columnar_mu_; columnar_rows_ records
  // the row count the cached (or failed) build was taken at.
  mutable std::mutex columnar_mu_;
  mutable std::shared_ptr<const ColumnStore> columnar_;
  mutable size_t columnar_rows_ = 0;
  mutable bool columnar_attempted_ = false;
};

}  // namespace tmdb

#endif  // TMDB_CATALOG_TABLE_H_
