#ifndef TMDB_TRANSLATE_STRATEGIES_H_
#define TMDB_TRANSLATE_STRATEGIES_H_

#include <string>

#include "algebra/logical_op.h"
#include "base/result.h"
#include "rewrite/unnester.h"

namespace tmdb {

/// The query-processing strategies the paper compares.
enum class Strategy {
  /// Correlated subqueries execute per outer row — the nested-loop
  /// semantics every other strategy is validated against.
  kNaive,
  /// Kim's algorithm (group-then-join). Deliberately reproduces the
  /// COUNT/SUBSETEQ bug: wrong on dangling outer tuples.
  kKim,
  /// Ganski–Wong: outerjoin + ν*. Correct, via NULLs.
  kOuterJoin,
  /// The paper's strategy: semijoin/antijoin where Theorem 1 allows, nest
  /// join otherwise.
  kNestJoin,
  /// Ablation: the paper's strategy with flat joins disabled — every
  /// subquery becomes a nest join even when a semijoin would do.
  kNestJoinOnly,
  /// Cost-based choice between {kNaive (memoized), kNestJoin,
  /// kNestJoinOnly, kOuterJoin}, made per query by the optimizer's cost
  /// model — plus a mid-query re-plan when observed subplan-cache hit
  /// ratios contradict the estimate. Resolved by the Database before
  /// PlanForStrategy is reached; PlanForStrategy itself rejects it.
  kAuto,
};

std::string StrategyName(Strategy strategy);

/// Parses a StrategyName back into the enum (incl. "auto"). Returns false
/// on unknown names. Shared by the REPL and the query server.
bool ParseStrategyName(const std::string& name, Strategy* out);

/// Stable wire/stats encoding of a strategy: 1 + enum value, with 0
/// reserved for "not recorded" (ExecStats::strategy_chosen).
inline uint64_t StrategyStatCode(Strategy strategy) {
  return 1 + static_cast<uint64_t>(strategy);
}

/// Rewrites the naive plan according to `strategy`. For kNestJoin /
/// kNestJoinOnly the unnest report (which Table 2 rules fired) is appended
/// to `*report` when non-null.
Result<LogicalOpPtr> PlanForStrategy(const LogicalOpPtr& naive_plan,
                                     Strategy strategy,
                                     UnnestReport* report = nullptr);

}  // namespace tmdb

#endif  // TMDB_TRANSLATE_STRATEGIES_H_
