#ifndef TMDB_TRANSLATE_STRATEGIES_H_
#define TMDB_TRANSLATE_STRATEGIES_H_

#include <string>

#include "algebra/logical_op.h"
#include "base/result.h"
#include "rewrite/unnester.h"

namespace tmdb {

/// The query-processing strategies the paper compares.
enum class Strategy {
  /// Correlated subqueries execute per outer row — the nested-loop
  /// semantics every other strategy is validated against.
  kNaive,
  /// Kim's algorithm (group-then-join). Deliberately reproduces the
  /// COUNT/SUBSETEQ bug: wrong on dangling outer tuples.
  kKim,
  /// Ganski–Wong: outerjoin + ν*. Correct, via NULLs.
  kOuterJoin,
  /// The paper's strategy: semijoin/antijoin where Theorem 1 allows, nest
  /// join otherwise.
  kNestJoin,
  /// Ablation: the paper's strategy with flat joins disabled — every
  /// subquery becomes a nest join even when a semijoin would do.
  kNestJoinOnly,
};

std::string StrategyName(Strategy strategy);

/// Rewrites the naive plan according to `strategy`. For kNestJoin /
/// kNestJoinOnly the unnest report (which Table 2 rules fired) is appended
/// to `*report` when non-null.
Result<LogicalOpPtr> PlanForStrategy(const LogicalOpPtr& naive_plan,
                                     Strategy strategy,
                                     UnnestReport* report = nullptr);

}  // namespace tmdb

#endif  // TMDB_TRANSLATE_STRATEGIES_H_
