#include "translate/strategies.h"

#include <utility>

#include "rewrite/baselines.h"
#include "rewrite/simplify.h"

namespace tmdb {

std::string StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kNaive:
      return "naive";
    case Strategy::kKim:
      return "kim";
    case Strategy::kOuterJoin:
      return "outerjoin";
    case Strategy::kNestJoin:
      return "nestjoin";
    case Strategy::kNestJoinOnly:
      return "nestjoin-only";
    case Strategy::kAuto:
      return "auto";
  }
  return "?";
}

bool ParseStrategyName(const std::string& name, Strategy* out) {
  for (Strategy s : {Strategy::kNaive, Strategy::kKim, Strategy::kOuterJoin,
                     Strategy::kNestJoin, Strategy::kNestJoinOnly,
                     Strategy::kAuto}) {
    if (name == StrategyName(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

Result<LogicalOpPtr> PlanForStrategy(const LogicalOpPtr& naive_plan,
                                     Strategy strategy,
                                     UnnestReport* report) {
  switch (strategy) {
    case Strategy::kNaive:
      return naive_plan;
    case Strategy::kKim:
      return KimRewrite(naive_plan);
    case Strategy::kOuterJoin:
      return GanskiWongRewrite(naive_plan);
    case Strategy::kNestJoin:
    case Strategy::kNestJoinOnly: {
      UnnestOptions options;
      options.use_flat_joins = strategy == Strategy::kNestJoin;
      Unnester unnester(options);
      TMDB_ASSIGN_OR_RETURN(LogicalOpPtr plan,
                            unnester.Rewrite(naive_plan));
      if (report != nullptr) {
        report->events.insert(report->events.end(),
                              unnester.report().events.begin(),
                              unnester.report().events.end());
      }
      // Clean up the administrative projections the unnester introduces
      // (strip maps, identity maps, adjacent selects).
      return SimplifyPlan(plan);
    }
    case Strategy::kAuto:
      return Status::InvalidArgument(
          "strategy 'auto' must be resolved by the cost model before "
          "rewriting; use Database::Run or ChooseStrategy");
  }
  return Status::Internal("unhandled strategy");
}

}  // namespace tmdb
