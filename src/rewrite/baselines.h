#ifndef TMDB_REWRITE_BASELINES_H_
#define TMDB_REWRITE_BASELINES_H_

#include "algebra/logical_op.h"
#include "base/result.h"

namespace tmdb {

/// The two relational-literature baselines the paper discusses in
/// Section 2, implemented as plan rewrites over the canonical two-block
/// WHERE-nested query
///
///   SELECT F(x) FROM X x WHERE P(x, z) ∧ rest(x)
///     WITH z = SELECT G(y) FROM Y y WHERE Q(x, y)
///
/// (naive plan shape: Map[x:F](Select[x:P∧rest](X)) with the subquery as a
/// correlated subplan). Both require Q to be a conjunction of equality
/// predicates between a top-level attribute of x and one of y, and G to
/// reference y only.

/// Kim's algorithm (ACM TODS 1982): group the inner operand by its join
/// attributes *before* the join, then join and evaluate P against the
/// group. Faithful to the paper's transformation (1) — including its flaw:
/// dangling x tuples are lost in the regular join, so predicates that hold
/// on the empty subquery result (COUNT = 0, ⊆, ...) produce wrong answers.
/// This is the COUNT bug / SUBSETEQ bug, kept as a baseline on purpose.
Result<LogicalOpPtr> KimRewrite(const LogicalOpPtr& plan);

/// Ganski–Wong (SIGMOD 1987): replace the join by a left outerjoin and the
/// grouping by ν* (NULL groups → ∅), repairing the COUNT bug with NULLs.
/// Correct, but drags NULL handling into a model that — as the paper
/// argues — does not need it: the nest join subsumes this plan without
/// ever materialising a NULL.
Result<LogicalOpPtr> GanskiWongRewrite(const LogicalOpPtr& plan);

}  // namespace tmdb

#endif  // TMDB_REWRITE_BASELINES_H_
