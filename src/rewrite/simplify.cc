#include "rewrite/simplify.h"

#include <utility>
#include <vector>

#include "rewrite/expr_rewrite.h"

namespace tmdb {

bool IsIdentityMap(const LogicalOp& op) {
  return op.op_kind() == OpKind::kMap && op.func().is_var() &&
         op.func().var_name() == op.var();
}

bool IsStripProjection(const LogicalOp& op, const Type& schema) {
  if (op.op_kind() != OpKind::kMap || !schema.is_tuple()) return false;
  const Expr& func = op.func();
  if (!func.is_tuple_ctor()) return false;
  const auto& fields = schema.fields();
  if (func.ctor_names().size() != fields.size()) return false;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (func.ctor_names()[i] != fields[i].name) return false;
    const Expr& elem = func.ctor_elements()[i];
    if (!elem.is_field_access() || elem.field_name() != fields[i].name ||
        !elem.field_base().is_var() ||
        elem.field_base().var_name() != op.var()) {
      return false;
    }
  }
  return true;
}

namespace {

/// True when the operator's output provably contains no duplicate rows.
/// Map/Nest/Union/Difference deduplicate; Unnest (μ) can emit duplicates
/// (two distinct rows may agree once the set attribute is dropped), so
/// dedup-eliding rules must not fire above it. ExprSource over a list may
/// also repeat elements.
bool RowsAreSet(const LogicalOp& op) {
  switch (op.op_kind()) {
    case OpKind::kScan:
    case OpKind::kMap:
    case OpKind::kNest:
    case OpKind::kUnion:
    case OpKind::kDifference:
      return true;
    case OpKind::kExprSource:
      return op.func().type().is_set();
    case OpKind::kSelect:
      return RowsAreSet(*op.input());
    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin:
    case OpKind::kNestJoin:
      return RowsAreSet(*op.left());
    case OpKind::kJoin:
    case OpKind::kOuterJoin:
      return RowsAreSet(*op.left()) && RowsAreSet(*op.right());
    case OpKind::kUnnest:
      return false;
  }
  return false;
}

/// Applies the local rules at `op` after children have been simplified.
Result<LogicalOpPtr> SimplifyNode(LogicalOpPtr op) {
  switch (op->op_kind()) {
    case OpKind::kSelect: {
      // Rule 1: trivial predicate.
      if (IsTrueLiteral(op->pred())) return op->input();
      // Rule 3: merge adjacent selects over the same variable.
      const LogicalOpPtr& child = op->input();
      if (child->op_kind() == OpKind::kSelect && child->var() == op->var()) {
        return LogicalOp::Select(child->input(), op->var(),
                                 Expr::And(child->pred(), op->pred()));
      }
      return op;
    }
    case OpKind::kMap: {
      // Rule 2: identity projection (only when it does not change the row
      // type and the input is already duplicate-free — the Map's implicit
      // deduplication must be a no-op).
      if (IsIdentityMap(*op) &&
          op->output_type().Equals(op->input()->output_type()) &&
          RowsAreSet(*op->input())) {
        return op->input();
      }
      const LogicalOpPtr& child = op->input();
      // Rule 5: π_X(X ▵ Y) = X — a strip projection onto the nest join's
      // left schema undoes the nest join (Section 6).
      if (child->op_kind() == OpKind::kNestJoin &&
          IsStripProjection(*op, child->left()->output_type()) &&
          RowsAreSet(*child->left())) {
        return child->left();
      }
      // Rule 4: compose adjacent projections.
      if (child->op_kind() == OpKind::kMap && child->var() == op->var() &&
          CollectSubplans(child->func()).empty()) {
        auto composed = op->func().Substitute(op->var(), child->func());
        if (composed.ok()) {
          // Composition drops Map-level deduplication of the inner
          // projection; that is sound because the outer Map deduplicates
          // its own output and set semantics are idempotent.
          return LogicalOp::Map(child->input(), child->var(),
                                std::move(composed).value());
        }
      }
      return op;
    }
    default:
      return op;
  }
}

}  // namespace

Result<LogicalOpPtr> SimplifyPlan(const LogicalOpPtr& plan) {
  // Simplify children first, rebuilding this node if any changed, then
  // apply local rules until they stop firing.
  std::vector<LogicalOpPtr> children;
  children.reserve(plan->inputs().size());
  bool changed = false;
  for (const LogicalOpPtr& child : plan->inputs()) {
    TMDB_ASSIGN_OR_RETURN(LogicalOpPtr simplified, SimplifyPlan(child));
    changed = changed || simplified != child;
    children.push_back(std::move(simplified));
  }

  LogicalOpPtr current = plan;
  if (changed) {
    switch (plan->op_kind()) {
      case OpKind::kSelect: {
        TMDB_ASSIGN_OR_RETURN(
            current, LogicalOp::Select(children[0], plan->var(), plan->pred()));
        break;
      }
      case OpKind::kMap: {
        TMDB_ASSIGN_OR_RETURN(
            current, LogicalOp::Map(children[0], plan->var(), plan->func()));
        break;
      }
      case OpKind::kJoin: {
        TMDB_ASSIGN_OR_RETURN(
            current, LogicalOp::Join(children[0], children[1],
                                     plan->left_var(), plan->right_var(),
                                     plan->pred()));
        break;
      }
      case OpKind::kSemiJoin: {
        TMDB_ASSIGN_OR_RETURN(
            current, LogicalOp::SemiJoin(children[0], children[1],
                                         plan->left_var(), plan->right_var(),
                                         plan->pred()));
        break;
      }
      case OpKind::kAntiJoin: {
        TMDB_ASSIGN_OR_RETURN(
            current, LogicalOp::AntiJoin(children[0], children[1],
                                         plan->left_var(), plan->right_var(),
                                         plan->pred()));
        break;
      }
      case OpKind::kOuterJoin: {
        TMDB_ASSIGN_OR_RETURN(
            current, LogicalOp::OuterJoin(children[0], children[1],
                                          plan->left_var(), plan->right_var(),
                                          plan->pred()));
        break;
      }
      case OpKind::kNestJoin: {
        TMDB_ASSIGN_OR_RETURN(
            current,
            LogicalOp::NestJoin(children[0], children[1], plan->left_var(),
                                plan->right_var(), plan->pred(), plan->func(),
                                plan->label()));
        break;
      }
      case OpKind::kNest: {
        TMDB_ASSIGN_OR_RETURN(
            current, LogicalOp::Nest(children[0], plan->group_attrs(),
                                     plan->var(), plan->func(), plan->label(),
                                     plan->null_group_to_empty()));
        break;
      }
      case OpKind::kUnnest: {
        TMDB_ASSIGN_OR_RETURN(current,
                              LogicalOp::Unnest(children[0],
                                                plan->unnest_attr()));
        break;
      }
      case OpKind::kUnion: {
        TMDB_ASSIGN_OR_RETURN(current,
                              LogicalOp::Union(children[0], children[1]));
        break;
      }
      case OpKind::kDifference: {
        TMDB_ASSIGN_OR_RETURN(current,
                              LogicalOp::Difference(children[0], children[1]));
        break;
      }
      case OpKind::kScan:
      case OpKind::kExprSource:
        break;  // leaves: nothing to rebuild
    }
  }

  // Fixed point of local rules at this node.
  while (true) {
    TMDB_ASSIGN_OR_RETURN(LogicalOpPtr next, SimplifyNode(current));
    if (next == current) return current;
    current = std::move(next);
  }
}

}  // namespace tmdb
