#ifndef TMDB_REWRITE_UNNESTER_H_
#define TMDB_REWRITE_UNNESTER_H_

#include <optional>
#include <string>
#include <vector>

#include "algebra/logical_op.h"
#include "algebra/subplan.h"
#include "base/result.h"
#include "rewrite/classifier.h"

namespace tmdb {

/// One transformation the unnester performed (or declined), for EXPLAIN
/// output and the Table 2 reproduction.
struct UnnestEvent {
  std::string conjunct;  // source rendering of the predicate
  std::string rule;      // Table 2 rule that fired
  RewriteForm form = RewriteForm::kGrouping;
  std::string target;    // "SemiJoin" / "AntiJoin" / "NestJoin" / "naive"
};

struct UnnestReport {
  std::vector<UnnestEvent> events;
  std::string ToString() const;
};

struct UnnestOptions {
  /// Replace nest joins by semijoin/antijoin when Theorem 1 allows
  /// (Section 7). Disabled = always use the nest join (ablation: measures
  /// what the flat-join specialisation buys).
  bool use_flat_joins = true;
};

/// Rewrites a naive plan (correlated subplans embedded in predicates and
/// projections) into join form, implementing the paper's strategy:
///
///  - WHERE-clause nesting (Section 4): each conjunct containing a
///    subquery is classified per Table 2 and becomes a semijoin, an
///    antijoin (Section 7), or a nest join + residual selection
///    (Section 6). Multi-level linear queries unnest recursively,
///    reproducing the Section 8 pipeline.
///  - SELECT-clause nesting (Section 5): always a nest join.
///  - UNNEST(SELECT (SELECT ...)) (Section 5): the one SELECT-nesting that
///    flattens to a regular join.
///
/// Set-valued FROM operands, uncorrelated (constant) subqueries, and
/// non-neighbour correlations are left in naive form, as the paper
/// prescribes or leaves open.
class Unnester {
 public:
  explicit Unnester(UnnestOptions options = UnnestOptions())
      : options_(options) {}

  Result<LogicalOpPtr> Rewrite(const LogicalOpPtr& plan);

  const UnnestReport& report() const { return report_; }

 private:
  /// Canonical two-block decomposition of an inner query (paper Section 4):
  /// SELECT G(x, y) FROM Y y WHERE Q(x, y): source Y (already recursively
  /// unnested, with the x-free conjuncts pushed into it), the iteration
  /// variable y, the correlation predicate Q restricted to the conjuncts
  /// that mention x, and the result function G.
  struct Decomposed {
    LogicalOpPtr source;
    std::string var;
    Expr corr_pred;
    Expr func;
  };

  /// Attempts the decomposition; nullopt = the subquery is not flattenable
  /// (set-valued operand, shape mismatch, variable collision, ...).
  Result<std::optional<Decomposed>> Decompose(const PlanSubplan& subplan,
                                              const std::string& outer_var);

  Result<LogicalOpPtr> RewriteSelect(const LogicalOp& op);
  Result<LogicalOpPtr> RewriteMap(const LogicalOp& op);
  /// Section 5 special case: builds the flat-join plan for
  /// UNNEST(SELECT (SELECT ...)). Returns nullptr (OK) when the pattern
  /// cannot be flattened — the caller keeps the naive form.
  Result<LogicalOpPtr> FlattenUnnestCase(const LogicalOpPtr& x_plan,
                                         const Decomposed& decomposed,
                                         const std::string& x,
                                         const std::string& description);

  std::string FreshLabel();
  std::string FreshVar();

  UnnestOptions options_;
  UnnestReport report_;
  int counter_ = 0;
};

}  // namespace tmdb

#endif  // TMDB_REWRITE_UNNESTER_H_
