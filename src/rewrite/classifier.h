#ifndef TMDB_REWRITE_CLASSIFIER_H_
#define TMDB_REWRITE_CLASSIFIER_H_

#include <optional>
#include <string>

#include "base/result.h"
#include "expr/expr.h"

namespace tmdb {

/// The three outcomes of Theorem 1: a predicate P(x, z) between query
/// blocks either rewrites to ∃v ∈ z (P'(x, v)), rewrites to
/// ¬∃v ∈ z (P'(x, v)), or — as far as the rule set can tell — requires the
/// subquery result z *as a whole* (grouping).
enum class RewriteForm {
  kExists,     // → semijoin
  kNotExists,  // → antijoin
  kGrouping,   // → nest join
};

std::string RewriteFormName(RewriteForm form);

/// Result of classifying one conjunct containing the subquery marker z.
struct PredicateClass {
  RewriteForm form = RewriteForm::kGrouping;
  /// The Table 2 row that fired, e.g. "x.a IN z  ==>  ∃v∈z (v = x.a)".
  std::string rule;
  /// For kExists/kNotExists: the element variable v and P'(x, v).
  std::string var;
  std::optional<Expr> inner;
};

/// Classifies `conjunct` with respect to the subquery expression `z` (a
/// kSubplan node appearing exactly once in the conjunct). `fresh_var` names
/// the element variable v in the produced P'.
///
/// Implements the paper's Table 2 as a syntactic rule set, extended with
/// the closure rules that follow from Theorem 1:
///  - negation flips ∃ ↔ ¬∃;
///  - FORALL v IN z (p) ≡ ¬∃v ∈ z (¬p);
///  - quantifiers over *other* collections whose body is a membership test
///    against z reduce to intersection emptiness.
///
/// Returns kGrouping when no rule applies — by Theorem 1's open question
/// this is conservative: such predicates are handled by the nest join.
Result<PredicateClass> ClassifyConjunct(const Expr& conjunct, const Expr& z,
                                        const std::string& fresh_var);

}  // namespace tmdb

#endif  // TMDB_REWRITE_CLASSIFIER_H_
