#include "rewrite/unnester.h"

#include <utility>

#include "base/string_util.h"
#include "rewrite/expr_rewrite.h"
#include "types/schema_ops.h"

namespace tmdb {

std::string UnnestReport::ToString() const {
  std::string out;
  for (const UnnestEvent& e : events) {
    out += StrCat("  ", e.conjunct, "\n    rule:   ", e.rule,
                  "\n    form:   ", RewriteFormName(e.form),
                  "\n    target: ", e.target, "\n");
  }
  return out;
}

std::string Unnester::FreshLabel() { return StrCat("_grp", counter_++); }
std::string Unnester::FreshVar() { return StrCat("_v", counter_++); }

Result<std::optional<Unnester::Decomposed>> Unnester::Decompose(
    const PlanSubplan& subplan, const std::string& outer_var) {
  const LogicalOpPtr& plan = subplan.plan();
  // Canonical binder shape: Map[y : G] over (Select[y : Q] over base | base).
  if (plan->op_kind() != OpKind::kMap) return std::optional<Decomposed>();
  const std::string& y = plan->var();
  if (y == outer_var) return std::optional<Decomposed>();  // name collision
  const Expr& func = plan->func();

  LogicalOpPtr base = plan->input();
  std::vector<Expr> corr;
  std::vector<Expr> local;
  if (base->op_kind() == OpKind::kSelect && base->var() == y) {
    for (Expr& c : SplitConjuncts(base->pred())) {
      if (c.References(outer_var)) {
        corr.push_back(std::move(c));
      } else {
        local.push_back(std::move(c));
      }
    }
    base = base->input();
  }

  // Correlation conjuncts must reference only the outer variable and y
  // (neighbour correlation, the paper's Section 8 assumption).
  for (const Expr& c : corr) {
    for (const std::string& v : c.FreeVars()) {
      if (v != outer_var && v != y) return std::optional<Decomposed>();
    }
  }

  if (!local.empty()) {
    TMDB_ASSIGN_OR_RETURN(base,
                          LogicalOp::Select(base, y, Expr::AndAll(local)));
  }
  // Recursively unnest the inner source (multi-level linear queries).
  TMDB_ASSIGN_OR_RETURN(base, Rewrite(base));

  // If the source still depends on the outer variable (e.g. a set-valued
  // FROM operand like x.emps), the block cannot be flattened.
  if (PlanFreeVars(*base).count(outer_var) > 0) {
    return std::optional<Decomposed>();
  }

  Decomposed out;
  out.source = std::move(base);
  out.var = y;
  out.corr_pred = Expr::AndAll(std::move(corr));
  out.func = func;
  return std::optional<Decomposed>(std::move(out));
}

namespace {

/// One join the unnester decided to perform, in application order.
struct JoinAction {
  enum class Kind { kSemi, kAnti, kNest };
  Kind kind;
  LogicalOpPtr source;
  std::string var;
  Expr pred;  // flat: Q ∧ P'[v := G]; nest: Q
  // Nest join only:
  Expr func;
  std::string label;
};

/// A conjunct evaluated after the nest joins, with every subquery marker
/// replaced by its grouped-attribute access. Conjuncts may reference
/// several subqueries (an extension beyond the paper's single-z setting):
/// each contributes one nest join and one entry here.
struct GroupingConjunct {
  Expr conjunct;
  std::vector<std::pair<std::shared_ptr<const SubplanBase>, std::string>>
      labels;  // (subplan, nest join label)
};

/// Builds a Map projecting the (label-extended) row back onto
/// `original_type`, dropping nest join labels.
Result<LogicalOpPtr> StripToType(LogicalOpPtr input, const std::string& var,
                                 const Type& original_type) {
  if (input->output_type().Equals(original_type)) return input;
  if (!original_type.is_tuple()) {
    return Status::Internal("StripToType requires a tuple row type");
  }
  Expr row = Expr::Var(var, input->output_type());
  std::vector<std::string> names;
  std::vector<Expr> fields;
  for (const Field& f : original_type.fields()) {
    names.push_back(f.name);
    TMDB_ASSIGN_OR_RETURN(Expr field, Expr::Field(row, f.name));
    fields.push_back(std::move(field));
  }
  TMDB_ASSIGN_OR_RETURN(Expr tuple,
                        Expr::MakeTuple(std::move(names), std::move(fields)));
  return LogicalOp::Map(std::move(input), var, std::move(tuple));
}

}  // namespace

Result<LogicalOpPtr> Unnester::RewriteSelect(const LogicalOp& op) {
  TMDB_ASSIGN_OR_RETURN(LogicalOpPtr input, Rewrite(op.input()));
  const std::string& x = op.var();
  const Type original_type = input->output_type();

  std::vector<Expr> plain;   // conjuncts without subqueries
  std::vector<Expr> naive;   // subquery conjuncts kept in naive form
  std::vector<JoinAction> actions;
  std::vector<GroupingConjunct> grouping;

  for (Expr& c : SplitConjuncts(op.pred())) {
    std::vector<Expr> subplans = CollectSubplans(c);
    if (subplans.empty()) {
      plain.push_back(std::move(c));
      continue;
    }
    UnnestEvent event;
    event.conjunct = c.ToString();

    auto keep_naive = [&](std::string why) {
      event.rule = std::move(why);
      event.target = "naive";
      report_.events.push_back(event);
      naive.push_back(c);
    };

    // Check every subquery of the conjunct is a flattenable neighbour
    // correlation; a single failure keeps the whole conjunct naive.
    std::vector<Decomposed> decomposed_all;
    bool flattenable = true;
    std::string why;
    for (const Expr& z : subplans) {
      const auto& plan_subplan = static_cast<const PlanSubplan&>(z.subplan());
      const std::set<std::string>& free = plan_subplan.free_vars();
      if (free.empty()) {
        flattenable = false;
        why = "uncorrelated (constant) subquery";
        break;
      }
      if (free.size() > 1 || free.count(x) == 0) {
        flattenable = false;
        why = "non-neighbour correlation";
        break;
      }
      TMDB_ASSIGN_OR_RETURN(std::optional<Decomposed> decomposed,
                            Decompose(plan_subplan, x));
      if (!decomposed.has_value()) {
        flattenable = false;
        why = "subquery not flattenable (set-valued operand or shape)";
        break;
      }
      decomposed_all.push_back(std::move(*decomposed));
    }
    if (!flattenable) {
      keep_naive(std::move(why));
      continue;
    }

    if (subplans.size() == 1) {
      // The paper's setting: one occurrence of z — Table 2 decides.
      TMDB_ASSIGN_OR_RETURN(PredicateClass cls,
                            ClassifyConjunct(c, subplans[0], FreshVar()));
      event.rule = cls.rule;
      event.form = cls.form;
      if (cls.form != RewriteForm::kGrouping && options_.use_flat_joins) {
        // Section 7: join predicate is Q(x, y) ∧ P'(x, G(x, y)).
        Decomposed& d = decomposed_all[0];
        TMDB_ASSIGN_OR_RETURN(Expr applied,
                              cls.inner->Substitute(cls.var, d.func));
        JoinAction action;
        action.kind = cls.form == RewriteForm::kExists
                          ? JoinAction::Kind::kSemi
                          : JoinAction::Kind::kAnti;
        action.source = std::move(d.source);
        action.var = d.var;
        action.pred = Expr::And(d.corr_pred, std::move(applied));
        actions.push_back(std::move(action));
        event.target =
            cls.form == RewriteForm::kExists ? "SemiJoin" : "AntiJoin";
        report_.events.push_back(std::move(event));
        continue;
      }
    } else {
      // Extension beyond the paper: several subqueries in one conjunct,
      // e.g. count(z1) = count(z2). Each becomes a nest join; the
      // conjunct is evaluated against the grouped attributes.
      event.rule = "multiple subqueries in one conjunct (grouping each)";
      event.form = RewriteForm::kGrouping;
    }

    // Section 6: nest join(s); the conjunct is evaluated afterwards
    // against the grouped attribute(s).
    GroupingConjunct rewrite;
    rewrite.conjunct = std::move(c);
    for (size_t i = 0; i < subplans.size(); ++i) {
      Decomposed& d = decomposed_all[i];
      JoinAction action;
      action.kind = JoinAction::Kind::kNest;
      action.source = std::move(d.source);
      action.var = d.var;
      action.pred = std::move(d.corr_pred);
      action.func = std::move(d.func);
      action.label = FreshLabel();
      rewrite.labels.emplace_back(subplans[i].subplan_ptr(), action.label);
      actions.push_back(std::move(action));
    }
    grouping.push_back(std::move(rewrite));
    event.target = "NestJoin";
    report_.events.push_back(std::move(event));
  }

  // Assemble. Selective single-table predicates go first (pushdown), then
  // naive residual conjuncts on the original schema, then the joins.
  LogicalOpPtr current = input;
  if (!plain.empty()) {
    TMDB_ASSIGN_OR_RETURN(current,
                          LogicalOp::Select(current, x, Expr::AndAll(plain)));
  }
  if (!naive.empty()) {
    TMDB_ASSIGN_OR_RETURN(current,
                          LogicalOp::Select(current, x, Expr::AndAll(naive)));
  }

  bool any_nest = false;
  for (JoinAction& action : actions) {
    switch (action.kind) {
      case JoinAction::Kind::kSemi: {
        TMDB_ASSIGN_OR_RETURN(
            current, LogicalOp::SemiJoin(current, action.source, x,
                                         action.var, action.pred));
        break;
      }
      case JoinAction::Kind::kAnti: {
        TMDB_ASSIGN_OR_RETURN(
            current, LogicalOp::AntiJoin(current, action.source, x,
                                         action.var, action.pred));
        break;
      }
      case JoinAction::Kind::kNest: {
        any_nest = true;
        TMDB_ASSIGN_OR_RETURN(
            current,
            LogicalOp::NestJoin(current, action.source, x, action.var,
                                action.pred, action.func, action.label));
        break;
      }
    }
  }

  if (any_nest) {
    // Rewrite the grouping conjuncts against the final (label-extended)
    // row type: each subquery marker z becomes the field access x.label.
    const Type extended = current->output_type();
    Expr row = Expr::Var(x, extended);
    std::vector<Expr> rewritten;
    for (const GroupingConjunct& g : grouping) {
      ExprRebindings rebindings;
      rebindings.var_types.emplace(x, extended);
      for (const auto& [subplan, label] : g.labels) {
        TMDB_ASSIGN_OR_RETURN(Expr field, Expr::Field(row, label));
        rebindings.subplan_replacements.emplace(subplan.get(),
                                                std::move(field));
      }
      TMDB_ASSIGN_OR_RETURN(Expr conjunct,
                            RebuildExpr(g.conjunct, rebindings));
      rewritten.push_back(std::move(conjunct));
    }
    TMDB_ASSIGN_OR_RETURN(
        current, LogicalOp::Select(current, x, Expr::AndAll(rewritten)));
    TMDB_ASSIGN_OR_RETURN(current, StripToType(current, x, original_type));
  }
  return current;
}

Result<LogicalOpPtr> Unnester::RewriteMap(const LogicalOp& op) {
  TMDB_ASSIGN_OR_RETURN(LogicalOpPtr input, Rewrite(op.input()));
  const std::string& x = op.var();
  Expr func = op.func();

  // SELECT-clause nesting (Section 5): every flattenable correlated
  // subquery in the projection becomes a nest join; the projection then
  // reads the grouped attribute. Grouping is unavoidable here — the result
  // structure demands it.
  LogicalOpPtr current = input;
  ExprRebindings rebindings;
  for (const Expr& z : CollectSubplans(func)) {
    const auto& plan_subplan = static_cast<const PlanSubplan&>(z.subplan());
    const std::set<std::string>& free = plan_subplan.free_vars();
    UnnestEvent event;
    event.conjunct = z.ToString();
    if (free.size() != 1 || free.count(x) == 0) {
      event.rule = free.empty() ? "uncorrelated (constant) subquery"
                                : "non-neighbour correlation";
      event.target = "naive";
      report_.events.push_back(std::move(event));
      continue;
    }
    TMDB_ASSIGN_OR_RETURN(std::optional<Decomposed> decomposed,
                          Decompose(plan_subplan, x));
    if (!decomposed.has_value()) {
      event.rule = "subquery not flattenable (set-valued operand or shape)";
      event.target = "naive";
      report_.events.push_back(std::move(event));
      continue;
    }
    const std::string label = FreshLabel();
    TMDB_ASSIGN_OR_RETURN(
        current,
        LogicalOp::NestJoin(current, decomposed->source, x, decomposed->var,
                            decomposed->corr_pred, decomposed->func, label));
    TMDB_ASSIGN_OR_RETURN(
        Expr field,
        Expr::Field(Expr::Var(x, current->output_type()), label));
    rebindings.subplan_replacements.emplace(z.subplan_ptr().get(),
                                            std::move(field));
    event.rule = "nesting in the SELECT clause requires grouping";
    event.form = RewriteForm::kGrouping;
    event.target = "NestJoin";
    report_.events.push_back(std::move(event));
  }

  if (!rebindings.subplan_replacements.empty()) {
    // Field accesses into already-placed labels must see the final type.
    rebindings.var_types.emplace(x, current->output_type());
    // Re-point intermediate label accesses at the final row type by
    // rebuilding them: Field exprs stored above were typed against the
    // plan state at their creation; rebuilding the whole projection with
    // the final var type fixes them up.
    TMDB_ASSIGN_OR_RETURN(func, RebuildExpr(func, rebindings));
  }
  return LogicalOp::Map(std::move(current), x, std::move(func));
}

Result<LogicalOpPtr> Unnester::FlattenUnnestCase(
    const LogicalOpPtr& x_plan, const Decomposed& decomposed,
    const std::string& x, const std::string& description) {
  // Rename the inner operand's attributes (_u_<name>) so the flat join
  // schema cannot collide with X.
  const Type y_type = decomposed.source->output_type();
  const std::string& y = decomposed.var;
  Expr y_orig = Expr::Var(y, y_type);
  std::vector<std::string> renamed_names;
  std::vector<Expr> renamed_fields;
  for (const Field& f : y_type.fields()) {
    renamed_names.push_back("_u_" + f.name);
    TMDB_ASSIGN_OR_RETURN(Expr field, Expr::Field(y_orig, f.name));
    renamed_fields.push_back(std::move(field));
  }
  TMDB_ASSIGN_OR_RETURN(Expr renamed_tuple,
                        Expr::MakeTuple(std::move(renamed_names),
                                        std::move(renamed_fields)));
  TMDB_ASSIGN_OR_RETURN(
      LogicalOpPtr y_renamed,
      LogicalOp::Map(decomposed.source, y, std::move(renamed_tuple)));

  // Rebind the correlation predicate's y to a projection of the renamed
  // row back onto the original attribute names.
  Expr y_new = Expr::Var(y, y_renamed->output_type());
  std::vector<std::string> back_names;
  std::vector<Expr> back_fields;
  for (const Field& f : y_type.fields()) {
    back_names.push_back(f.name);
    TMDB_ASSIGN_OR_RETURN(Expr field, Expr::Field(y_new, "_u_" + f.name));
    back_fields.push_back(std::move(field));
  }
  TMDB_ASSIGN_OR_RETURN(
      Expr y_accessor,
      Expr::MakeTuple(std::move(back_names), std::move(back_fields)));
  ExprRebindings pred_rebind;
  pred_rebind.var_replacements.emplace(y, y_accessor);
  auto pred = RebuildExpr(decomposed.corr_pred, pred_rebind);
  if (!pred.ok()) return LogicalOpPtr();  // fall back to naive

  auto joined = LogicalOp::Join(x_plan, std::move(y_renamed), x, y,
                                std::move(pred).value());
  if (!joined.ok()) return LogicalOpPtr();
  LogicalOpPtr join = std::move(joined).value();

  // Rebind G(x, y) to the flat joined row.
  const std::string j = FreshVar();
  Expr row = Expr::Var(j, join->output_type());
  std::vector<std::string> x_names;
  std::vector<Expr> x_fields;
  for (const Field& f : x_plan->output_type().fields()) {
    x_names.push_back(f.name);
    TMDB_ASSIGN_OR_RETURN(Expr field, Expr::Field(row, f.name));
    x_fields.push_back(std::move(field));
  }
  TMDB_ASSIGN_OR_RETURN(Expr x_tuple, Expr::MakeTuple(std::move(x_names),
                                                      std::move(x_fields)));
  std::vector<std::string> yj_names;
  std::vector<Expr> yj_fields;
  for (const Field& f : y_type.fields()) {
    yj_names.push_back(f.name);
    TMDB_ASSIGN_OR_RETURN(Expr field, Expr::Field(row, "_u_" + f.name));
    yj_fields.push_back(std::move(field));
  }
  TMDB_ASSIGN_OR_RETURN(Expr y_tuple, Expr::MakeTuple(std::move(yj_names),
                                                      std::move(yj_fields)));
  ExprRebindings g_rebind;
  g_rebind.var_replacements.emplace(x, std::move(x_tuple));
  g_rebind.var_replacements.emplace(y, std::move(y_tuple));
  auto g = RebuildExpr(decomposed.func, g_rebind);
  if (!g.ok()) return LogicalOpPtr();

  UnnestEvent event;
  event.conjunct = description;
  event.rule = "UNNEST(SELECT (SELECT ...))  ==>  flat join (Section 5)";
  event.form = RewriteForm::kExists;
  event.target = "Join";
  report_.events.push_back(std::move(event));
  return LogicalOp::Map(std::move(join), j, std::move(g).value());
}

Result<LogicalOpPtr> Unnester::Rewrite(const LogicalOpPtr& plan) {
  switch (plan->op_kind()) {
    case OpKind::kSelect:
      return RewriteSelect(*plan);
    case OpKind::kMap:
      return RewriteMap(*plan);
    case OpKind::kExprSource: {
      const Expr& expr = plan->func();
      // A subquery used as a FROM operand (SELECT ... FROM (SELECT ...) v)
      // "can be rewritten easily" (Section 3.2): when uncorrelated, iterate
      // the inner plan directly instead of materialising its value.
      if (expr.is_subplan() && expr.subplan().free_vars().empty()) {
        const auto& subplan = static_cast<const PlanSubplan&>(expr.subplan());
        UnnestEvent event;
        event.conjunct = expr.ToString();
        event.rule = "subquery in FROM  ==>  inlined operand (Section 3.2)";
        event.form = RewriteForm::kExists;
        event.target = "inline";
        report_.events.push_back(std::move(event));
        return Rewrite(subplan.plan());
      }
      // UNNEST(SELECT (SELECT ...)) — try the flat-join rewrite; fall back
      // to the naive ExprSource.
      if (expr.is_unary() && expr.unary_op() == UnaryOp::kUnnest &&
          expr.operand().is_subplan()) {
        const auto& outer =
            static_cast<const PlanSubplan&>(expr.operand().subplan());
        if (outer.free_vars().empty() &&
            outer.plan()->op_kind() == OpKind::kMap &&
            outer.plan()->func().is_subplan()) {
          const std::string& x = outer.plan()->var();
          const auto& inner = static_cast<const PlanSubplan&>(
              outer.plan()->func().subplan());
          if (inner.free_vars() == std::set<std::string>{x}) {
            TMDB_ASSIGN_OR_RETURN(std::optional<Decomposed> decomposed,
                                  Decompose(inner, x));
            LogicalOpPtr x_source = outer.plan()->input();
            // Only the canonical shape (X source without its own WHERE) is
            // handled; anything else falls back to naive.
            if (decomposed.has_value() &&
                x_source->output_type().is_tuple() &&
                decomposed->source->output_type().is_tuple()) {
              TMDB_ASSIGN_OR_RETURN(LogicalOpPtr x_plan, Rewrite(x_source));
              TMDB_ASSIGN_OR_RETURN(
                  LogicalOpPtr rewritten,
                  FlattenUnnestCase(x_plan, *decomposed, x, expr.ToString()));
              if (rewritten != nullptr) return rewritten;
            }
          }
        }
      }
      return plan;
    }
    case OpKind::kScan:
      return plan;
    default: {
      // Rebuild other operators over rewritten children. Their embedded
      // expressions are preserved as-is (subqueries inside join predicates
      // etc. stay naive).
      if (plan->inputs().empty()) return plan;
      std::vector<LogicalOpPtr> children;
      children.reserve(plan->inputs().size());
      bool changed = false;
      for (const LogicalOpPtr& child : plan->inputs()) {
        TMDB_ASSIGN_OR_RETURN(LogicalOpPtr rewritten, Rewrite(child));
        changed = changed || rewritten != child;
        children.push_back(std::move(rewritten));
      }
      if (!changed) return plan;
      switch (plan->op_kind()) {
        case OpKind::kJoin:
          return LogicalOp::Join(children[0], children[1], plan->left_var(),
                                 plan->right_var(), plan->pred());
        case OpKind::kSemiJoin:
          return LogicalOp::SemiJoin(children[0], children[1],
                                     plan->left_var(), plan->right_var(),
                                     plan->pred());
        case OpKind::kAntiJoin:
          return LogicalOp::AntiJoin(children[0], children[1],
                                     plan->left_var(), plan->right_var(),
                                     plan->pred());
        case OpKind::kOuterJoin:
          return LogicalOp::OuterJoin(children[0], children[1],
                                      plan->left_var(), plan->right_var(),
                                      plan->pred());
        case OpKind::kNestJoin:
          return LogicalOp::NestJoin(children[0], children[1],
                                     plan->left_var(), plan->right_var(),
                                     plan->pred(), plan->func(),
                                     plan->label());
        case OpKind::kNest:
          return LogicalOp::Nest(children[0], plan->group_attrs(),
                                 plan->var(), plan->func(), plan->label(),
                                 plan->null_group_to_empty());
        case OpKind::kUnnest:
          return LogicalOp::Unnest(children[0], plan->unnest_attr());
        case OpKind::kUnion:
          return LogicalOp::Union(children[0], children[1]);
        case OpKind::kDifference:
          return LogicalOp::Difference(children[0], children[1]);
        default:
          return Status::Internal("unhandled operator in Unnester::Rewrite");
      }
    }
  }
}

}  // namespace tmdb
