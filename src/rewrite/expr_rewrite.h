#ifndef TMDB_REWRITE_EXPR_REWRITE_H_
#define TMDB_REWRITE_EXPR_REWRITE_H_

#include <map>
#include <string>
#include <vector>

#include "base/result.h"
#include "expr/expr.h"
#include "types/type.h"

namespace tmdb {

/// Splits a predicate into its top-level conjuncts (flattening nested ANDs).
/// A literal `true` yields no conjuncts.
std::vector<Expr> SplitConjuncts(const Expr& pred);

/// True iff `e` is the literal boolean `true`.
bool IsTrueLiteral(const Expr& e);

/// Collects every kSubplan node occurring in `e` (in evaluation order,
/// duplicates by identity removed).
std::vector<Expr> CollectSubplans(const Expr& e);

/// True iff `e` is a kSubplan node wrapping the same subplan object as `z`.
bool IsSameSubplan(const Expr& e, const Expr& z);

/// Instructions for RebuildExpr. The three maps are applied while the
/// expression tree is reconstructed bottom-up:
///   - subplan nodes listed in `subplan_replacements` are replaced;
///   - free variables listed in `var_replacements` are replaced wholesale
///     (capture-avoiding);
///   - free variables listed in `var_types` are re-typed (their referencing
///     field accesses re-typecheck against the new tuple type).
/// Rebuilding re-runs the checked Expr factories, so a replacement that
/// breaks typing surfaces as a TypeError instead of a malformed tree.
struct ExprRebindings {
  std::map<const SubplanBase*, Expr> subplan_replacements;
  std::map<std::string, Expr> var_replacements;
  std::map<std::string, Type> var_types;
};

Result<Expr> RebuildExpr(const Expr& e, const ExprRebindings& rebindings);

}  // namespace tmdb

#endif  // TMDB_REWRITE_EXPR_REWRITE_H_
