#ifndef TMDB_REWRITE_SIMPLIFY_H_
#define TMDB_REWRITE_SIMPLIFY_H_

#include "algebra/logical_op.h"
#include "base/result.h"

namespace tmdb {

/// Algebraic clean-up rules applied after strategy rewriting. Each rule is
/// semantics-preserving; together they remove the administrative operators
/// the unnester introduces:
///
///   1. Select[x : true](P)                      ⇒ P
///   2. Map[x : x](P)  (identity projection)     ⇒ P
///   3. Select[x : p](Select[x : q](P))          ⇒ Select[x : q ∧ p](P)
///   4. Map[x : f](Map[x : g](P))                ⇒ Map[x : f[x := g]](P)
///      (projection composition by substitution; skipped when g contains a
///      correlated subplan, which Substitute cannot move)
///   5. Map[strip to X's type](NestJoin(X, Y))   ⇒ X
///      — the paper's π_X(X ▵ Y) = X (Section 6): a projection that drops
///      the grouped attribute and keeps exactly the left schema undoes the
///      nest join entirely.
///
/// Rule 5 also fires for SemiJoin-free plans produced by hand; it requires
/// the stripped schema to equal the nest join's left schema exactly.
Result<LogicalOpPtr> SimplifyPlan(const LogicalOpPtr& plan);

/// True if `op` is Map[x : x] over its input (identity projection).
bool IsIdentityMap(const LogicalOp& op);

/// True if `op` is a Map that projects its input rows onto exactly
/// `schema` by top-level field accesses (the unnester's strip maps).
bool IsStripProjection(const LogicalOp& op, const Type& schema);

}  // namespace tmdb

#endif  // TMDB_REWRITE_SIMPLIFY_H_
