#include "rewrite/classifier.h"

#include <utility>

#include "base/string_util.h"
#include "rewrite/expr_rewrite.h"

namespace tmdb {

std::string RewriteFormName(RewriteForm form) {
  switch (form) {
    case RewriteForm::kExists:
      return "∃v∈z (semijoin)";
    case RewriteForm::kNotExists:
      return "¬∃v∈z (antijoin)";
    case RewriteForm::kGrouping:
      return "grouping (nest join)";
  }
  return "?";
}

namespace {

bool ContainsZ(const Expr& e, const Expr& z) {
  for (const Expr& s : CollectSubplans(e)) {
    if (IsSameSubplan(s, z)) return true;
  }
  return false;
}

bool IsEmptySetLiteral(const Expr& e) {
  if (e.is_set_ctor() && e.ctor_elements().empty()) return true;
  return e.is_literal() && e.literal_value().is_set() &&
         e.literal_value().NumElements() == 0;
}

bool IsIntLiteral(const Expr& e, int64_t v) {
  return e.is_literal() && e.literal_value().is_int() &&
         e.literal_value().AsInt() == v;
}

bool IsCountOfZ(const Expr& e, const Expr& z) {
  return e.is_aggregate() && e.agg_func() == AggFunc::kCount &&
         IsSameSubplan(e.agg_arg(), z);
}

PredicateClass Make(RewriteForm form, std::string rule, std::string var,
                    std::optional<Expr> inner) {
  PredicateClass out;
  out.form = form;
  out.rule = std::move(rule);
  out.var = std::move(var);
  out.inner = std::move(inner);
  return out;
}

PredicateClass Flip(PredicateClass c) {
  switch (c.form) {
    case RewriteForm::kExists:
      c.form = RewriteForm::kNotExists;
      break;
    case RewriteForm::kNotExists:
      c.form = RewriteForm::kExists;
      break;
    case RewriteForm::kGrouping:
      break;
  }
  if (c.form != RewriteForm::kGrouping) {
    c.rule = "NOT(" + c.rule + ")";
  }
  return c;
}

/// Classification of a positive-polarity boolean expression `e` containing
/// z exactly once. `v` is the fresh element variable; `elem` its type.
Result<PredicateClass> ClassifyPositive(const Expr& e, const Expr& z,
                                        const std::string& v,
                                        const Type& elem) {
  const Expr var = Expr::Var(v, elem);

  // Double negation / NOT: flip the classification of the operand.
  if (e.is_unary() && e.unary_op() == UnaryOp::kNot) {
    TMDB_ASSIGN_OR_RETURN(PredicateClass inner,
                          ClassifyPositive(e.operand(), z, v, elem));
    return Flip(std::move(inner));
  }

  // Direct quantifier over z: ∃v∈z (p) and ∀v∈z (p) ≡ ¬∃v∈z (¬p).
  if (e.is_quantifier() && IsSameSubplan(e.quant_collection(), z)) {
    if (ContainsZ(e.quant_pred(), z)) {
      return Make(RewriteForm::kGrouping,
                  "z occurs again inside the quantifier body", "", {});
    }
    // Reuse the query's own variable name — it is already bound in the body.
    if (e.quant_kind() == QuantKind::kExists) {
      return Make(RewriteForm::kExists, "∃v∈z (P')  [written directly]",
                  e.quant_var(), e.quant_pred());
    }
    TMDB_ASSIGN_OR_RETURN(Expr negated,
                          Expr::Unary(UnaryOp::kNot, e.quant_pred()));
    return Make(RewriteForm::kNotExists,
                "∀v∈z (P)  ==>  ¬∃v∈z (¬P)", e.quant_var(),
                std::move(negated));
  }

  // Quantifier over another collection with a membership test against z:
  //   ∀w∈a (w ∉ z)  ≡  a ∩ z = ∅   ==>  ¬∃v∈z (v ∈ a)
  //   ∃w∈a (w ∈ z)  ≡  a ∩ z ≠ ∅  ==>   ∃v∈z (v ∈ a)
  // (∀w∈a (w ∈ z) ≡ a ⊆ z and ∃w∈a (w ∉ z) ≡ ¬(a ⊆ z) need grouping.)
  if (e.is_quantifier() && !ContainsZ(e.quant_collection(), z)) {
    const Expr& body = e.quant_pred();
    const bool body_in =
        body.is_binary() && body.binary_op() == BinaryOp::kIn &&
        body.lhs().is_var() && body.lhs().var_name() == e.quant_var() &&
        IsSameSubplan(body.rhs(), z);
    const bool body_not_in =
        body.is_binary() && body.binary_op() == BinaryOp::kNotIn &&
        body.lhs().is_var() && body.lhs().var_name() == e.quant_var() &&
        IsSameSubplan(body.rhs(), z);
    if (e.quant_kind() == QuantKind::kForAll && body_not_in) {
      TMDB_ASSIGN_OR_RETURN(
          Expr inner, Expr::Binary(BinaryOp::kIn, var, e.quant_collection()));
      return Make(RewriteForm::kNotExists,
                  "∀w∈a (w ∉ z)  ==>  ¬∃v∈z (v ∈ a)", v, std::move(inner));
    }
    if (e.quant_kind() == QuantKind::kExists && body_in) {
      TMDB_ASSIGN_OR_RETURN(
          Expr inner, Expr::Binary(BinaryOp::kIn, var, e.quant_collection()));
      return Make(RewriteForm::kExists,
                  "∃w∈a (w ∈ z)  ==>  ∃v∈z (v ∈ a)", v, std::move(inner));
    }
    if (e.quant_kind() == QuantKind::kForAll && body_in) {
      return Make(RewriteForm::kGrouping, "∀w∈a (w ∈ z)  ≡  a ⊆ z", "", {});
    }
    if (e.quant_kind() == QuantKind::kExists && body_not_in) {
      return Make(RewriteForm::kGrouping, "∃w∈a (w ∉ z)  ≡  ¬(a ⊆ z)", "",
                  {});
    }
    return Make(RewriteForm::kGrouping,
                "quantifier body not a membership test against z", "", {});
  }

  if (!e.is_binary()) {
    return Make(RewriteForm::kGrouping, "unrecognised predicate form", "",
                {});
  }

  const BinaryOp op = e.binary_op();
  const Expr& l = e.lhs();
  const Expr& r = e.rhs();

  // z = ∅ family.
  if (op == BinaryOp::kEq || op == BinaryOp::kNe) {
    const bool l_is_z = IsSameSubplan(l, z);
    const bool r_is_z = IsSameSubplan(r, z);
    if ((l_is_z && IsEmptySetLiteral(r)) || (r_is_z && IsEmptySetLiteral(l))) {
      if (op == BinaryOp::kEq) {
        return Make(RewriteForm::kNotExists, "z = ∅  ==>  ¬∃v∈z (true)", v,
                    Expr::True());
      }
      return Make(RewriteForm::kExists, "z ≠ ∅  ==>  ∃v∈z (true)", v,
                  Expr::True());
    }
    // x.a = z / x.a ≠ z (set equality against z) requires the whole set.
    if (l_is_z || r_is_z) {
      const Expr& other = l_is_z ? r : l;
      if (other.type().is_set()) {
        return Make(RewriteForm::kGrouping,
                    op == BinaryOp::kEq ? "x.a = z  [set equality]"
                                        : "x.a ≠ z  [set inequality]",
                    "", {});
      }
    }
  }

  // count(z) comparisons against constants.
  {
    const bool l_cnt = IsCountOfZ(l, z);
    const bool r_cnt = IsCountOfZ(r, z);
    if (l_cnt || r_cnt) {
      const Expr& other = l_cnt ? r : l;
      // Normalise to count(z) OP const.
      BinaryOp norm = op;
      if (r_cnt) {
        switch (op) {  // mirror the comparison
          case BinaryOp::kLt:
            norm = BinaryOp::kGt;
            break;
          case BinaryOp::kLe:
            norm = BinaryOp::kGe;
            break;
          case BinaryOp::kGt:
            norm = BinaryOp::kLt;
            break;
          case BinaryOp::kGe:
            norm = BinaryOp::kLe;
            break;
          default:
            break;
        }
      }
      if (!ContainsZ(other, z)) {
        if ((norm == BinaryOp::kEq && IsIntLiteral(other, 0)) ||
            (norm == BinaryOp::kLe && IsIntLiteral(other, 0)) ||
            (norm == BinaryOp::kLt && IsIntLiteral(other, 1))) {
          return Make(RewriteForm::kNotExists,
                      "count(z) = 0  ==>  ¬∃v∈z (true)", v, Expr::True());
        }
        if ((norm == BinaryOp::kNe && IsIntLiteral(other, 0)) ||
            (norm == BinaryOp::kGt && IsIntLiteral(other, 0)) ||
            (norm == BinaryOp::kGe && IsIntLiteral(other, 1))) {
          return Make(RewriteForm::kExists,
                      "count(z) > 0  ==>  ∃v∈z (true)", v, Expr::True());
        }
        // x.a = count(z) and friends: the COUNT-bug case — grouping.
        return Make(RewriteForm::kGrouping,
                    "x.a OP count(z)  [aggregate between blocks]", "", {});
      }
    }
    // Any other aggregate over z needs the whole subquery result.
    auto is_agg_of_z = [&z](const Expr& side) {
      return side.is_aggregate() && IsSameSubplan(side.agg_arg(), z);
    };
    if (is_agg_of_z(l) || is_agg_of_z(r)) {
      return Make(RewriteForm::kGrouping,
                  "x.a OP agg(z)  [aggregate between blocks]", "", {});
    }
  }

  // Membership: e' IN z / e' NOT IN z.
  if ((op == BinaryOp::kIn || op == BinaryOp::kNotIn) &&
      IsSameSubplan(r, z) && !ContainsZ(l, z)) {
    TMDB_ASSIGN_OR_RETURN(Expr inner, Expr::Binary(BinaryOp::kEq, var, l));
    if (op == BinaryOp::kIn) {
      return Make(RewriteForm::kExists, "x.a IN z  ==>  ∃v∈z (v = x.a)", v,
                  std::move(inner));
    }
    return Make(RewriteForm::kNotExists,
                "x.a NOT IN z  ==>  ¬∃v∈z (v = x.a)", v, std::move(inner));
  }

  // Set containment. x.a ⊇ z (≡ z ⊆ x.a) rewrites; x.a ⊆ z does not.
  {
    const Expr* other = nullptr;
    bool z_below = false;  // true iff the predicate says "z ⊆ other"
    if (op == BinaryOp::kSubsetEq && IsSameSubplan(l, z)) {
      other = &r;
      z_below = true;
    } else if (op == BinaryOp::kSupersetEq && IsSameSubplan(r, z)) {
      other = &l;
      z_below = true;
    }
    if (z_below && !ContainsZ(*other, z)) {
      TMDB_ASSIGN_OR_RETURN(Expr inner,
                            Expr::Binary(BinaryOp::kNotIn, var, *other));
      return Make(RewriteForm::kNotExists,
                  "x.a ⊇ z  ==>  ¬∃v∈z (v ∉ x.a)", v, std::move(inner));
    }
    if ((op == BinaryOp::kSubsetEq && IsSameSubplan(r, z)) ||
        (op == BinaryOp::kSupersetEq && IsSameSubplan(l, z))) {
      return Make(RewriteForm::kGrouping, "x.a ⊆ z  [whole z needed]", "",
                  {});
    }
    if ((op == BinaryOp::kSubset || op == BinaryOp::kSuperset) &&
        (IsSameSubplan(l, z) || IsSameSubplan(r, z))) {
      return Make(RewriteForm::kGrouping,
                  "proper subset/superset against z  [cardinality needed]",
                  "", {});
    }
  }

  // Intersection emptiness: (a ∩ z) = ∅ and its mirror images.
  if ((op == BinaryOp::kEq || op == BinaryOp::kNe)) {
    const Expr* intersect = nullptr;
    const Expr* empty = nullptr;
    if (l.is_binary() && l.binary_op() == BinaryOp::kIntersect &&
        IsEmptySetLiteral(r)) {
      intersect = &l;
      empty = &r;
    } else if (r.is_binary() && r.binary_op() == BinaryOp::kIntersect &&
               IsEmptySetLiteral(l)) {
      intersect = &r;
      empty = &l;
    }
    if (intersect != nullptr && empty != nullptr) {
      const Expr* other = nullptr;
      if (IsSameSubplan(intersect->lhs(), z) &&
          !ContainsZ(intersect->rhs(), z)) {
        other = &intersect->rhs();
      } else if (IsSameSubplan(intersect->rhs(), z) &&
                 !ContainsZ(intersect->lhs(), z)) {
        other = &intersect->lhs();
      }
      if (other != nullptr) {
        TMDB_ASSIGN_OR_RETURN(Expr inner,
                              Expr::Binary(BinaryOp::kIn, var, *other));
        if (op == BinaryOp::kEq) {
          return Make(RewriteForm::kNotExists,
                      "x.a ∩ z = ∅  ==>  ¬∃v∈z (v ∈ x.a)", v,
                      std::move(inner));
        }
        return Make(RewriteForm::kExists,
                    "x.a ∩ z ≠ ∅  ==>  ∃v∈z (v ∈ x.a)", v, std::move(inner));
      }
    }
  }

  return Make(RewriteForm::kGrouping, "no Table 2 rule matched", "", {});
}

}  // namespace

Result<PredicateClass> ClassifyConjunct(const Expr& conjunct, const Expr& z,
                                        const std::string& fresh_var) {
  if (!z.is_subplan()) {
    return Status::InvalidArgument("z marker must be a subplan expression");
  }
  const Type& z_type = z.type();
  Type elem = z_type.is_collection() ? z_type.element() : Type::Any();
  return ClassifyPositive(conjunct, z, fresh_var, elem);
}

}  // namespace tmdb
