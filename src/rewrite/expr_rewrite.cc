#include "rewrite/expr_rewrite.h"

#include <set>
#include <utility>

namespace tmdb {

namespace {

void CollectConjuncts(const Expr& e, std::vector<Expr>* out) {
  if (e.is_binary() && e.binary_op() == BinaryOp::kAnd) {
    CollectConjuncts(e.lhs(), out);
    CollectConjuncts(e.rhs(), out);
    return;
  }
  if (IsTrueLiteral(e)) return;
  out->push_back(e);
}

void CollectSubplansImpl(const Expr& e, std::set<const SubplanBase*>* seen,
                         std::vector<Expr>* out) {
  switch (e.expr_kind()) {
    case ExprKind::kSubplan:
      if (seen->insert(&e.subplan()).second) out->push_back(e);
      return;
    case ExprKind::kLiteral:
    case ExprKind::kVarRef:
      return;
    case ExprKind::kFieldAccess:
      CollectSubplansImpl(e.field_base(), seen, out);
      return;
    case ExprKind::kBinary:
      CollectSubplansImpl(e.lhs(), seen, out);
      CollectSubplansImpl(e.rhs(), seen, out);
      return;
    case ExprKind::kUnary:
      CollectSubplansImpl(e.operand(), seen, out);
      return;
    case ExprKind::kQuantifier:
      CollectSubplansImpl(e.quant_collection(), seen, out);
      CollectSubplansImpl(e.quant_pred(), seen, out);
      return;
    case ExprKind::kAggregate:
      CollectSubplansImpl(e.agg_arg(), seen, out);
      return;
    case ExprKind::kTupleCtor:
    case ExprKind::kSetCtor:
      for (const Expr& c : e.ctor_elements()) {
        CollectSubplansImpl(c, seen, out);
      }
      return;
  }
}

}  // namespace

std::vector<Expr> SplitConjuncts(const Expr& pred) {
  std::vector<Expr> out;
  CollectConjuncts(pred, &out);
  return out;
}

bool IsTrueLiteral(const Expr& e) {
  return e.is_literal() && e.literal_value().is_bool() &&
         e.literal_value().AsBool();
}

std::vector<Expr> CollectSubplans(const Expr& e) {
  std::set<const SubplanBase*> seen;
  std::vector<Expr> out;
  CollectSubplansImpl(e, &seen, &out);
  return out;
}

bool IsSameSubplan(const Expr& e, const Expr& z) {
  return e.is_subplan() && z.is_subplan() && &e.subplan() == &z.subplan();
}

Result<Expr> RebuildExpr(const Expr& e, const ExprRebindings& r) {
  switch (e.expr_kind()) {
    case ExprKind::kLiteral:
      return e;
    case ExprKind::kVarRef: {
      auto rep = r.var_replacements.find(e.var_name());
      if (rep != r.var_replacements.end()) return rep->second;
      auto ty = r.var_types.find(e.var_name());
      if (ty != r.var_types.end()) return Expr::Var(e.var_name(), ty->second);
      return e;
    }
    case ExprKind::kFieldAccess: {
      TMDB_ASSIGN_OR_RETURN(Expr base, RebuildExpr(e.field_base(), r));
      return Expr::Field(std::move(base), e.field_name());
    }
    case ExprKind::kBinary: {
      TMDB_ASSIGN_OR_RETURN(Expr lhs, RebuildExpr(e.lhs(), r));
      TMDB_ASSIGN_OR_RETURN(Expr rhs, RebuildExpr(e.rhs(), r));
      return Expr::Binary(e.binary_op(), std::move(lhs), std::move(rhs));
    }
    case ExprKind::kUnary: {
      TMDB_ASSIGN_OR_RETURN(Expr operand, RebuildExpr(e.operand(), r));
      return Expr::Unary(e.unary_op(), std::move(operand));
    }
    case ExprKind::kQuantifier: {
      TMDB_ASSIGN_OR_RETURN(Expr coll, RebuildExpr(e.quant_collection(), r));
      // The quantifier variable shadows any outer rebinding of the same
      // name inside the body.
      ExprRebindings inner = r;
      inner.var_replacements.erase(e.quant_var());
      inner.var_types.erase(e.quant_var());
      TMDB_ASSIGN_OR_RETURN(Expr pred, RebuildExpr(e.quant_pred(), inner));
      return Expr::Quantifier(e.quant_kind(), e.quant_var(), std::move(coll),
                              std::move(pred));
    }
    case ExprKind::kAggregate: {
      TMDB_ASSIGN_OR_RETURN(Expr arg, RebuildExpr(e.agg_arg(), r));
      return Expr::Aggregate(e.agg_func(), std::move(arg));
    }
    case ExprKind::kTupleCtor: {
      std::vector<Expr> elems;
      elems.reserve(e.ctor_elements().size());
      for (const Expr& c : e.ctor_elements()) {
        TMDB_ASSIGN_OR_RETURN(Expr rebuilt, RebuildExpr(c, r));
        elems.push_back(std::move(rebuilt));
      }
      return Expr::MakeTuple(e.ctor_names(), std::move(elems));
    }
    case ExprKind::kSetCtor: {
      std::vector<Expr> elems;
      elems.reserve(e.ctor_elements().size());
      for (const Expr& c : e.ctor_elements()) {
        TMDB_ASSIGN_OR_RETURN(Expr rebuilt, RebuildExpr(c, r));
        elems.push_back(std::move(rebuilt));
      }
      // Preserve the declared element type for empty constructors.
      Type elem_type = e.type().element();
      return Expr::MakeSet(std::move(elems), std::move(elem_type));
    }
    case ExprKind::kSubplan: {
      auto rep = r.subplan_replacements.find(&e.subplan());
      if (rep != r.subplan_replacements.end()) return rep->second;
      // A surviving subplan must not reference rebound/retyped variables:
      // rebuilding cannot descend into it.
      for (const std::string& v : e.subplan().free_vars()) {
        if (r.var_replacements.count(v) > 0 || r.var_types.count(v) > 0) {
          return Status::Unsupported(
              "cannot rebind variable '" + v +
              "' referenced inside an unreplaced subplan");
        }
      }
      return e;
    }
  }
  return Status::Internal("unhandled expression kind in RebuildExpr");
}

}  // namespace tmdb
