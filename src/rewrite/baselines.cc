#include "rewrite/baselines.h"

#include <optional>
#include <utility>
#include <vector>

#include "algebra/subplan.h"
#include "base/string_util.h"
#include "rewrite/expr_rewrite.h"
#include "types/schema_ops.h"

namespace tmdb {

namespace {

/// The canonical two-block query both baselines operate on.
struct TwoBlock {
  LogicalOpPtr x_source;            // X (with subquery-free conjuncts applied)
  std::string x;                    // outer variable
  Expr conjunct;                    // the conjunct P(x, z)
  Expr z;                           // the subplan marker inside `conjunct`
  Expr result_func;                 // F(x)
  LogicalOpPtr y_source;            // Y (with local conjuncts applied)
  std::string y;                    // inner variable
  std::vector<std::pair<std::string, std::string>> keys;  // (x attr, y attr)
  Expr g;                           // G(y)
};

/// Matches `plan` against Map[x:F](Select[x:P](X)) with exactly one
/// subquery conjunct whose correlation predicate is an attribute equijoin.
Result<TwoBlock> MatchTwoBlock(const LogicalOpPtr& plan) {
  if (plan->op_kind() != OpKind::kMap ||
      plan->input()->op_kind() != OpKind::kSelect) {
    return Status::Unsupported(
        "baseline rewrites expect Map over Select (two-block query)");
  }
  const LogicalOp& select = *plan->input();
  TwoBlock out;
  out.x = select.var();
  out.result_func = plan->func();
  if (plan->var() != out.x) {
    return Status::Unsupported("outer Map/Select variables differ");
  }

  std::vector<Expr> plain;
  std::optional<Expr> subq_conjunct;
  for (Expr& c : SplitConjuncts(select.pred())) {
    std::vector<Expr> subplans = CollectSubplans(c);
    if (subplans.empty()) {
      plain.push_back(std::move(c));
      continue;
    }
    if (subplans.size() > 1 || subq_conjunct.has_value()) {
      return Status::Unsupported(
          "baseline rewrites support exactly one subquery conjunct");
    }
    out.z = subplans[0];
    subq_conjunct = std::move(c);
  }
  if (!subq_conjunct.has_value()) {
    return Status::Unsupported("no subquery conjunct found");
  }
  out.conjunct = std::move(*subq_conjunct);

  out.x_source = select.input();
  if (!plain.empty()) {
    TMDB_ASSIGN_OR_RETURN(
        out.x_source,
        LogicalOp::Select(out.x_source, out.x, Expr::AndAll(plain)));
  }

  // Inner block: Map[y:G](Select[y:Q](Y)).
  const auto& subplan = static_cast<const PlanSubplan&>(out.z.subplan());
  if (subplan.free_vars() != std::set<std::string>{out.x}) {
    return Status::Unsupported("subquery is not neighbour-correlated");
  }
  const LogicalOpPtr& inner = subplan.plan();
  if (inner->op_kind() != OpKind::kMap) {
    return Status::Unsupported("inner block shape not Map[...]");
  }
  out.y = inner->var();
  out.g = inner->func();
  if (out.g.References(out.x)) {
    return Status::Unsupported(
        "baseline rewrites require G to reference the inner variable only");
  }

  LogicalOpPtr y_base = inner->input();
  std::vector<Expr> local;
  std::vector<Expr> corr;
  if (y_base->op_kind() == OpKind::kSelect && y_base->var() == out.y) {
    for (Expr& c : SplitConjuncts(y_base->pred())) {
      (c.References(out.x) ? corr : local).push_back(std::move(c));
    }
    y_base = y_base->input();
  }
  if (PlanFreeVars(*y_base).count(out.x) > 0) {
    return Status::Unsupported("inner operand depends on the outer variable");
  }
  if (!local.empty()) {
    TMDB_ASSIGN_OR_RETURN(
        y_base, LogicalOp::Select(y_base, out.y, Expr::AndAll(local)));
  }
  out.y_source = std::move(y_base);

  // Correlation must be attribute equijoins x.a = y.b.
  auto top_attr = [](const Expr& e,
                     const std::string& var) -> std::optional<std::string> {
    if (e.is_field_access() && e.field_base().is_var() &&
        e.field_base().var_name() == var) {
      return e.field_name();
    }
    return std::nullopt;
  };
  for (const Expr& c : corr) {
    if (!c.is_binary() || c.binary_op() != BinaryOp::kEq) {
      return Status::Unsupported(
          StrCat("correlation predicate is not an equijoin: ", c.ToString()));
    }
    auto xa = top_attr(c.lhs(), out.x);
    auto yb = top_attr(c.rhs(), out.y);
    if (!xa || !yb) {
      xa = top_attr(c.rhs(), out.x);
      yb = top_attr(c.lhs(), out.y);
    }
    if (!xa || !yb) {
      return Status::Unsupported(
          StrCat("correlation predicate is not attribute = attribute: ",
                 c.ToString()));
    }
    out.keys.emplace_back(*xa, *yb);
  }
  if (out.keys.empty()) {
    return Status::Unsupported("no correlation keys (constant subquery)");
  }
  return out;
}

/// Map that projects rows of `input` (x attrs + extras) back onto
/// `original` — shared with the unnester conceptually, local copy here.
Result<LogicalOpPtr> StripToType(LogicalOpPtr input, const std::string& var,
                                 const Type& original) {
  if (input->output_type().Equals(original)) return input;
  Expr row = Expr::Var(var, input->output_type());
  std::vector<std::string> names;
  std::vector<Expr> fields;
  for (const Field& f : original.fields()) {
    names.push_back(f.name);
    TMDB_ASSIGN_OR_RETURN(Expr field, Expr::Field(row, f.name));
    fields.push_back(std::move(field));
  }
  TMDB_ASSIGN_OR_RETURN(Expr tuple,
                        Expr::MakeTuple(std::move(names), std::move(fields)));
  return LogicalOp::Map(std::move(input), var, std::move(tuple));
}

}  // namespace

Result<LogicalOpPtr> KimRewrite(const LogicalOpPtr& plan) {
  TMDB_ASSIGN_OR_RETURN(TwoBlock q, MatchTwoBlock(plan));
  const Type x_type = q.x_source->output_type();

  // (1) Group the inner operand by its join attributes, collecting the
  // G-images: T(_kim_<b1>, ..., _kim_grp).
  std::vector<std::string> y_keys;
  y_keys.reserve(q.keys.size());
  for (const auto& [xa, yb] : q.keys) y_keys.push_back(yb);
  TMDB_ASSIGN_OR_RETURN(
      LogicalOpPtr nested,
      LogicalOp::Nest(q.y_source, y_keys, q.y, q.g, "_kim_grp",
                      /*null_group_to_empty=*/false));
  // Rename group attributes so the join schema stays collision-free.
  Expr t_row = Expr::Var("_t", nested->output_type());
  std::vector<std::string> t_names;
  std::vector<Expr> t_fields;
  for (const std::string& yb : y_keys) {
    t_names.push_back("_kim_" + yb);
    TMDB_ASSIGN_OR_RETURN(Expr field, Expr::Field(t_row, yb));
    t_fields.push_back(std::move(field));
  }
  t_names.push_back("_kim_grp");
  TMDB_ASSIGN_OR_RETURN(Expr grp_field, Expr::Field(t_row, "_kim_grp"));
  t_fields.push_back(std::move(grp_field));
  TMDB_ASSIGN_OR_RETURN(
      Expr t_tuple, Expr::MakeTuple(std::move(t_names), std::move(t_fields)));
  TMDB_ASSIGN_OR_RETURN(LogicalOpPtr t_plan,
                        LogicalOp::Map(std::move(nested), "_t",
                                       std::move(t_tuple)));

  // (2) Regular join X ⋈ T on the key equalities. Dangling x tuples are
  // lost here — the bug.
  Expr x_var = Expr::Var(q.x, x_type);
  Expr t_var = Expr::Var("_t", t_plan->output_type());
  std::vector<Expr> key_preds;
  for (const auto& [xa, yb] : q.keys) {
    TMDB_ASSIGN_OR_RETURN(Expr lhs, Expr::Field(x_var, xa));
    TMDB_ASSIGN_OR_RETURN(Expr rhs, Expr::Field(t_var, "_kim_" + yb));
    TMDB_ASSIGN_OR_RETURN(Expr eq,
                          Expr::Binary(BinaryOp::kEq, std::move(lhs),
                                       std::move(rhs)));
    key_preds.push_back(std::move(eq));
  }
  TMDB_ASSIGN_OR_RETURN(
      LogicalOpPtr joined,
      LogicalOp::Join(q.x_source, t_plan, q.x, "_t",
                      Expr::AndAll(std::move(key_preds))));

  // (3) Evaluate P against the grouped attribute, strip, project.
  const Type joined_type = joined->output_type();
  TMDB_ASSIGN_OR_RETURN(Expr grp_access,
                        Expr::Field(Expr::Var(q.x, joined_type), "_kim_grp"));
  ExprRebindings rebindings;
  rebindings.subplan_replacements.emplace(&q.z.subplan(),
                                          std::move(grp_access));
  rebindings.var_types.emplace(q.x, joined_type);
  TMDB_ASSIGN_OR_RETURN(Expr pred, RebuildExpr(q.conjunct, rebindings));
  TMDB_ASSIGN_OR_RETURN(LogicalOpPtr selected,
                        LogicalOp::Select(std::move(joined), q.x,
                                          std::move(pred)));
  TMDB_ASSIGN_OR_RETURN(LogicalOpPtr stripped,
                        StripToType(std::move(selected), q.x, x_type));
  return LogicalOp::Map(std::move(stripped), q.x, q.result_func);
}

Result<LogicalOpPtr> GanskiWongRewrite(const LogicalOpPtr& plan) {
  TMDB_ASSIGN_OR_RETURN(TwoBlock q, MatchTwoBlock(plan));
  const Type x_type = q.x_source->output_type();
  const Type y_type = q.y_source->output_type();

  // (0) Rename the inner operand's attributes (_gw_<name>) so the outerjoin
  // schema cannot collide with X — the paper's own example joins R.C = S.C.
  Expr y_orig_var = Expr::Var(q.y, y_type);
  std::vector<std::string> renamed_names;
  std::vector<Expr> renamed_fields;
  for (const Field& f : y_type.fields()) {
    renamed_names.push_back("_gw_" + f.name);
    TMDB_ASSIGN_OR_RETURN(Expr field, Expr::Field(y_orig_var, f.name));
    renamed_fields.push_back(std::move(field));
  }
  TMDB_ASSIGN_OR_RETURN(Expr renamed_tuple,
                        Expr::MakeTuple(std::move(renamed_names),
                                        std::move(renamed_fields)));
  TMDB_ASSIGN_OR_RETURN(
      LogicalOpPtr y_renamed,
      LogicalOp::Map(q.y_source, q.y, std::move(renamed_tuple)));
  const Type y_renamed_type = y_renamed->output_type();

  // (1) Left outerjoin X ⟖ Y on Q — dangling x rows survive, padded with
  // NULLs in the y attribute positions.
  Expr x_var = Expr::Var(q.x, x_type);
  Expr y_var = Expr::Var(q.y, y_renamed_type);
  std::vector<Expr> key_preds;
  for (const auto& [xa, yb] : q.keys) {
    TMDB_ASSIGN_OR_RETURN(Expr lhs, Expr::Field(x_var, xa));
    TMDB_ASSIGN_OR_RETURN(Expr rhs, Expr::Field(y_var, "_gw_" + yb));
    TMDB_ASSIGN_OR_RETURN(Expr eq,
                          Expr::Binary(BinaryOp::kEq, std::move(lhs),
                                       std::move(rhs)));
    key_preds.push_back(std::move(eq));
  }
  TMDB_ASSIGN_OR_RETURN(
      LogicalOpPtr joined,
      LogicalOp::OuterJoin(q.x_source, y_renamed, q.x, q.y,
                           Expr::AndAll(std::move(key_preds))));

  // (2) ν*: group by the x attributes, collect G over the joined row; the
  // all-NULL image of a padded row is dropped, so dangling groups become ∅.
  std::vector<std::string> x_attrs;
  for (const Field& f : x_type.fields()) x_attrs.push_back(f.name);
  // Rebind G(y) to the flat joined row: y.b ↦ j._gw_b.
  const std::string j = "_j";
  Expr j_var = Expr::Var(j, joined->output_type());
  std::vector<std::string> y_names;
  std::vector<Expr> y_fields;
  for (const Field& f : y_type.fields()) {
    y_names.push_back(f.name);
    TMDB_ASSIGN_OR_RETURN(Expr field, Expr::Field(j_var, "_gw_" + f.name));
    y_fields.push_back(std::move(field));
  }
  TMDB_ASSIGN_OR_RETURN(
      Expr y_accessor,
      Expr::MakeTuple(std::move(y_names), std::move(y_fields)));
  ExprRebindings g_rebind;
  g_rebind.var_replacements.emplace(q.y, std::move(y_accessor));
  TMDB_ASSIGN_OR_RETURN(Expr g_over_row, RebuildExpr(q.g, g_rebind));
  TMDB_ASSIGN_OR_RETURN(
      LogicalOpPtr grouped,
      LogicalOp::Nest(std::move(joined), x_attrs, j, std::move(g_over_row),
                      "_gw_grp", /*null_group_to_empty=*/true));

  // (3) Evaluate P against the grouped attribute, strip, project.
  const Type grouped_type = grouped->output_type();
  TMDB_ASSIGN_OR_RETURN(
      Expr grp_access,
      Expr::Field(Expr::Var(q.x, grouped_type), "_gw_grp"));
  ExprRebindings rebindings;
  rebindings.subplan_replacements.emplace(&q.z.subplan(),
                                          std::move(grp_access));
  rebindings.var_types.emplace(q.x, grouped_type);
  TMDB_ASSIGN_OR_RETURN(Expr pred, RebuildExpr(q.conjunct, rebindings));
  TMDB_ASSIGN_OR_RETURN(LogicalOpPtr selected,
                        LogicalOp::Select(std::move(grouped), q.x,
                                          std::move(pred)));
  TMDB_ASSIGN_OR_RETURN(LogicalOpPtr stripped,
                        StripToType(std::move(selected), q.x, x_type));
  return LogicalOp::Map(std::move(stripped), q.x, q.result_func);
}

}  // namespace tmdb
