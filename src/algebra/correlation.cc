#include "algebra/correlation.h"

#include <algorithm>
#include <utility>

#include "algebra/subplan.h"
#include "base/string_util.h"

namespace tmdb {

namespace {

using AccessPath = CorrelationSignature::AccessPath;

/// Records every access the expression can make to a variable not bound
/// inside the subplan. `bound` holds the names bound by enclosing plan
/// operators and quantifiers; anything else must come from the outer
/// environment, so it is part of the correlation signature whether or not
/// the subplan's recorded free-variable set mentions it — over-coverage is
/// harmless, under-coverage would make memoization unsound.
void AnalyzeExpr(const Expr& e, std::set<std::string>* bound,
                 std::set<AccessPath>* out) {
  switch (e.expr_kind()) {
    case ExprKind::kLiteral:
      return;
    case ExprKind::kVarRef:
      if (bound->count(e.var_name()) == 0) {
        out->insert({e.var_name(), {}});
      }
      return;
    case ExprKind::kFieldAccess: {
      // Peel the field chain down to its root. A chain rooted at an
      // unbound variable is the narrowable case: only those attributes of
      // the outer row are read.
      std::vector<std::string> path;
      const Expr* cur = &e;
      while (cur->is_field_access()) {
        path.push_back(cur->field_name());
        cur = &cur->field_base();
      }
      if (cur->is_var() && bound->count(cur->var_name()) == 0) {
        std::reverse(path.begin(), path.end());
        out->insert({cur->var_name(), std::move(path)});
      } else {
        AnalyzeExpr(*cur, bound, out);
      }
      return;
    }
    case ExprKind::kBinary:
      AnalyzeExpr(e.lhs(), bound, out);
      AnalyzeExpr(e.rhs(), bound, out);
      return;
    case ExprKind::kUnary:
      AnalyzeExpr(e.operand(), bound, out);
      return;
    case ExprKind::kQuantifier: {
      AnalyzeExpr(e.quant_collection(), bound, out);
      const bool inserted = bound->insert(e.quant_var()).second;
      AnalyzeExpr(e.quant_pred(), bound, out);
      if (inserted) bound->erase(e.quant_var());
      return;
    }
    case ExprKind::kAggregate:
      AnalyzeExpr(e.agg_arg(), bound, out);
      return;
    case ExprKind::kTupleCtor:
    case ExprKind::kSetCtor:
      for (const Expr& elem : e.ctor_elements()) {
        AnalyzeExpr(elem, bound, out);
      }
      return;
    case ExprKind::kSubplan: {
      // A nested subplan has its own (already computed, bottom-up)
      // signature; splice in the paths that are still unbound here. If the
      // implementation is not a PlanSubplan, fall back to whole-variable
      // coverage of its recorded free variables.
      const auto* nested = dynamic_cast<const PlanSubplan*>(&e.subplan());
      if (nested != nullptr) {
        for (const AccessPath& ap : nested->signature().paths) {
          if (bound->count(ap.var) == 0) out->insert(ap);
        }
      } else {
        for (const std::string& v : e.subplan().free_vars()) {
          if (bound->count(v) == 0) out->insert({v, {}});
        }
      }
      return;
    }
  }
}

/// Mirrors the CollectPlanFreeVars traversal (logical_op.cc): each
/// operator's own expressions see `bound` plus the variables the operator
/// itself binds; children are recursed with the original `bound`.
void AnalyzePlan(const LogicalOp& op, const std::set<std::string>& bound,
                 std::set<AccessPath>* out) {
  std::set<std::string> here = bound;
  std::vector<const Expr*> exprs;
  switch (op.op_kind()) {
    case OpKind::kScan:
      break;
    case OpKind::kExprSource:
      exprs.push_back(&op.func());
      break;
    case OpKind::kSelect:
      here.insert(op.var());
      exprs.push_back(&op.pred());
      break;
    case OpKind::kMap:
      here.insert(op.var());
      exprs.push_back(&op.func());
      break;
    case OpKind::kJoin:
    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin:
    case OpKind::kOuterJoin:
      here.insert(op.left_var());
      here.insert(op.right_var());
      exprs.push_back(&op.pred());
      break;
    case OpKind::kNestJoin:
      here.insert(op.left_var());
      here.insert(op.right_var());
      exprs.push_back(&op.pred());
      exprs.push_back(&op.func());
      break;
    case OpKind::kNest:
      here.insert(op.var());
      exprs.push_back(&op.func());
      break;
    case OpKind::kUnnest:
    case OpKind::kUnion:
    case OpKind::kDifference:
      break;
  }
  for (const Expr* e : exprs) {
    AnalyzeExpr(*e, &here, out);
  }
  for (const LogicalOpPtr& child : op.inputs()) {
    AnalyzePlan(*child, bound, out);
  }
}

/// True when `a` subsumes `b`: same variable and a's path is a (possibly
/// empty) proper prefix of b's — reading through `a` determines everything
/// `b` can read.
bool Subsumes(const AccessPath& a, const AccessPath& b) {
  if (a.var != b.var || a.path.size() >= b.path.size()) return false;
  return std::equal(a.path.begin(), a.path.end(), b.path.begin());
}

}  // namespace

std::string CorrelationSignature::ToString() const {
  std::vector<std::string> rendered;
  rendered.reserve(paths.size());
  for (const AccessPath& ap : paths) {
    std::string s = ap.var;
    for (const std::string& field : ap.path) s += "." + field;
    rendered.push_back(std::move(s));
  }
  return StrCat("[", Join(rendered, ", "), "]");
}

CorrelationSignature ComputeCorrelationSignature(
    const LogicalOp& plan, const std::set<std::string>& free_vars) {
  (void)free_vars;  // coverage is derived from unbound uses; see AnalyzeExpr
  std::set<AccessPath> accesses;
  AnalyzePlan(plan, {}, &accesses);

  CorrelationSignature signature;
  for (const AccessPath& ap : accesses) {
    bool subsumed = false;
    for (const AccessPath& other : accesses) {
      if (Subsumes(other, ap)) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) signature.paths.push_back(ap);
  }
  // std::set iteration is already sorted; the pruning kept that order.
  return signature;
}

Result<Value> EvalCorrelationKey(const CorrelationSignature& signature,
                                 const Environment& env) {
  std::vector<Value> items;
  items.reserve(signature.paths.size());
  for (const CorrelationSignature::AccessPath& ap : signature.paths) {
    const Value* bound = env.Lookup(ap.var);
    if (bound == nullptr) {
      return Status::Internal(
          StrCat("correlation variable '", ap.var, "' is not bound"));
    }
    Value cur = *bound;
    for (const std::string& field : ap.path) {
      if (!cur.is_tuple()) break;
      const Value* next = cur.FindField(field);
      if (next == nullptr) break;
      cur = *next;
    }
    items.push_back(std::move(cur));
  }
  return Value::List(std::move(items));
}

}  // namespace tmdb
