#ifndef TMDB_ALGEBRA_PLAN_DOT_H_
#define TMDB_ALGEBRA_PLAN_DOT_H_

#include <string>

#include "algebra/logical_op.h"

namespace tmdb {

/// Renders a logical plan as a Graphviz digraph (one node per operator,
/// edges child → parent, correlated subplans expanded as dashed clusters).
/// Paste into `dot -Tsvg` to visualise the shapes the unnester produces.
std::string PlanToDot(const LogicalOp& plan);

}  // namespace tmdb

#endif  // TMDB_ALGEBRA_PLAN_DOT_H_
