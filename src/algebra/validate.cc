#include "algebra/validate.h"

#include <map>
#include <string>

#include "algebra/subplan.h"
#include "base/string_util.h"

namespace tmdb {

namespace {

using Scope = std::map<std::string, Type>;

/// A variable reference with static type `ref` is compatible with the row
/// type `actual` its producer emits. Rewrites may leave a reference typed
/// with a *narrower* tuple (the row before labels were appended), so
/// tuple compatibility is field-subset, not equality.
bool RefCompatible(const Type& ref, const Type& actual) {
  if (ref.is_any() || actual.is_any()) return true;
  if (ref.is_tuple() && actual.is_tuple()) {
    for (const Field& f : ref.fields()) {
      int idx = actual.FieldIndex(f.name);
      if (idx < 0) return false;
      if (!RefCompatible(f.type, actual.fields()[static_cast<size_t>(idx)]
                                     .type)) {
        return false;
      }
    }
    return true;
  }
  if (ref.is_numeric() && actual.is_numeric()) return true;
  if (ref.kind() != actual.kind()) return false;
  if (ref.is_collection()) return RefCompatible(ref.element(), actual.element());
  return true;
}

Status CheckExpr(const Expr& e, const Scope& scope);
Status ValidateNode(const LogicalOp& op, const Scope& outer);

Status CheckSubplan(const Expr& e, const Scope& scope) {
  const auto& subplan = static_cast<const PlanSubplan&>(e.subplan());
  // Declared free variables must cover the actual ones...
  for (const std::string& v : PlanFreeVars(*subplan.plan())) {
    if (subplan.free_vars().count(v) == 0) {
      return Status::Internal(
          StrCat("subplan references '", v,
                 "' but does not declare it as a free variable"));
    }
  }
  // ...and the declared ones must be in scope here.
  for (const std::string& v : subplan.free_vars()) {
    if (scope.count(v) == 0) {
      return Status::Internal(
          StrCat("subplan free variable '", v, "' is not in scope"));
    }
  }
  // The inner block is a plan in its own right, evaluated under the
  // current scope (correlation).
  return ValidateNode(*subplan.plan(), scope);
}

Status CheckExpr(const Expr& e, const Scope& scope) {
  switch (e.expr_kind()) {
    case ExprKind::kLiteral:
      return Status::OK();
    case ExprKind::kVarRef: {
      auto it = scope.find(e.var_name());
      if (it == scope.end()) {
        return Status::Internal(
            StrCat("variable '", e.var_name(), "' is not in scope"));
      }
      if (!RefCompatible(e.type(), it->second)) {
        return Status::Internal(StrCat(
            "variable '", e.var_name(), "' has static type ",
            e.type().ToString(), " incompatible with producer row type ",
            it->second.ToString()));
      }
      return Status::OK();
    }
    case ExprKind::kFieldAccess:
      return CheckExpr(e.field_base(), scope);
    case ExprKind::kBinary:
      TMDB_RETURN_IF_ERROR(CheckExpr(e.lhs(), scope));
      return CheckExpr(e.rhs(), scope);
    case ExprKind::kUnary:
      return CheckExpr(e.operand(), scope);
    case ExprKind::kQuantifier: {
      TMDB_RETURN_IF_ERROR(CheckExpr(e.quant_collection(), scope));
      Scope inner = scope;
      Type elem = e.quant_collection().type().is_collection()
                      ? e.quant_collection().type().element()
                      : Type::Any();
      inner[e.quant_var()] = std::move(elem);
      return CheckExpr(e.quant_pred(), inner);
    }
    case ExprKind::kAggregate:
      return CheckExpr(e.agg_arg(), scope);
    case ExprKind::kTupleCtor:
    case ExprKind::kSetCtor:
      for (const Expr& c : e.ctor_elements()) {
        TMDB_RETURN_IF_ERROR(CheckExpr(c, scope));
      }
      return Status::OK();
    case ExprKind::kSubplan:
      return CheckSubplan(e, scope);
  }
  return Status::Internal("unhandled expression kind in validator");
}

Status RequireBool(const Expr& e, const char* where) {
  if (!e.type().is_bool() && !e.type().is_any()) {
    return Status::Internal(
        StrCat(where, ": non-boolean predicate ", e.ToString()));
  }
  return Status::OK();
}

Status ValidateNode(const LogicalOp& op, const Scope& outer) {
  // Validate children first (they see the same correlation scope).
  for (const LogicalOpPtr& child : op.inputs()) {
    TMDB_RETURN_IF_ERROR(ValidateNode(*child, outer));
  }

  Scope scope = outer;
  switch (op.op_kind()) {
    case OpKind::kScan:
      return Status::OK();
    case OpKind::kExprSource:
      return CheckExpr(op.func(), outer);
    case OpKind::kSelect: {
      scope[op.var()] = op.input()->output_type();
      TMDB_RETURN_IF_ERROR(RequireBool(op.pred(), "Select"));
      return CheckExpr(op.pred(), scope);
    }
    case OpKind::kMap: {
      scope[op.var()] = op.input()->output_type();
      return CheckExpr(op.func(), scope);
    }
    case OpKind::kJoin:
    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin:
    case OpKind::kOuterJoin: {
      scope[op.left_var()] = op.left()->output_type();
      scope[op.right_var()] = op.right()->output_type();
      TMDB_RETURN_IF_ERROR(RequireBool(op.pred(), "join"));
      return CheckExpr(op.pred(), scope);
    }
    case OpKind::kNestJoin: {
      const Type& left = op.left()->output_type();
      if (left.is_tuple() && left.FieldIndex(op.label()) >= 0) {
        return Status::Internal(StrCat("nest join label '", op.label(),
                                       "' collides with a left attribute"));
      }
      scope[op.left_var()] = left;
      scope[op.right_var()] = op.right()->output_type();
      TMDB_RETURN_IF_ERROR(RequireBool(op.pred(), "NestJoin"));
      TMDB_RETURN_IF_ERROR(CheckExpr(op.pred(), scope));
      return CheckExpr(op.func(), scope);
    }
    case OpKind::kNest: {
      const Type& input = op.input()->output_type();
      for (const std::string& attr : op.group_attrs()) {
        if (!input.is_tuple() || input.FieldIndex(attr) < 0) {
          return Status::Internal(
              StrCat("Nest groups by missing attribute '", attr, "'"));
        }
      }
      scope[op.var()] = input;
      return CheckExpr(op.func(), scope);
    }
    case OpKind::kUnnest: {
      const Type& input = op.input()->output_type();
      if (!input.is_tuple() || input.FieldIndex(op.unnest_attr()) < 0) {
        return Status::Internal(StrCat("Unnest of missing attribute '",
                                       op.unnest_attr(), "'"));
      }
      return Status::OK();
    }
    case OpKind::kUnion:
    case OpKind::kDifference:
      return Status::OK();
  }
  return Status::Internal("unhandled operator kind in validator");
}

}  // namespace

Status ValidatePlan(const LogicalOp& plan) {
  // Top-level plans have no correlation variables; correlated subplans
  // embedded in expressions are checked via CheckSubplan with the scope at
  // their use site (their inner operators are validated when the subplan
  // is reached through the Expr walk — here we validate the *tree* of
  // operators and the scoping of every expression they carry).
  return ValidateNode(plan, {});
}

}  // namespace tmdb
