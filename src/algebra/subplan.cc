#include "algebra/subplan.h"

#include "base/string_util.h"

namespace tmdb {

std::string PlanSubplan::ToString() const {
  // Single-line compression of the plan tree for embedding in expressions.
  std::string tree = plan_->ToString();
  for (char& c : tree) {
    if (c == '\n') c = ' ';
  }
  // The correlation signature tells an EXPLAIN reader what the memo cache
  // will key on ("corr=[]" = uncorrelated, evaluated once per query).
  return StrCat("SUBQUERY{ ", StripWhitespace(tree),
                " } corr=", signature_.ToString());
}

Expr PlanSubplan::MakeExpr(LogicalOpPtr plan,
                           std::set<std::string> free_vars) {
  Type row_type = plan->output_type();
  auto subplan = std::make_shared<PlanSubplan>(std::move(plan),
                                               std::move(free_vars));
  return Expr::Subplan(std::move(subplan), Type::Set(std::move(row_type)));
}

}  // namespace tmdb
