#ifndef TMDB_ALGEBRA_VALIDATE_H_
#define TMDB_ALGEBRA_VALIDATE_H_

#include "algebra/logical_op.h"
#include "base/status.h"

namespace tmdb {

/// Structural well-formedness check for logical plans, run by tests after
/// every rewrite. Verifies, for each operator:
///
///  - expressions reference only variables that are in scope (the
///    operator's own iteration variables, plus — inside a correlated
///    subplan — its declared free variables);
///  - the static type recorded for each in-scope variable reference is
///    *compatible* with the producing operator's row type (field-subset
///    compatibility: rewrites may retype a variable to an extended row);
///  - boolean positions hold boolean expressions;
///  - nest join labels do not collide with left-operand attributes
///    (enforced at construction, re-checked here);
///  - correlated subplans' declared free variables cover what their plans
///    actually reference.
///
/// Returns the first violation found.
Status ValidatePlan(const LogicalOp& plan);

}  // namespace tmdb

#endif  // TMDB_ALGEBRA_VALIDATE_H_
