#ifndef TMDB_ALGEBRA_SUBPLAN_H_
#define TMDB_ALGEBRA_SUBPLAN_H_

#include <memory>
#include <set>
#include <string>
#include <utility>

#include "algebra/correlation.h"
#include "algebra/logical_op.h"
#include "expr/expr.h"

namespace tmdb {

/// A correlated subquery embedded in an expression: the inner query block
/// before unnesting. Evaluating one runs `plan` once per binding of its
/// free variables and collects the rows into a set — exactly the paper's
/// naive nested-loop semantics, which serves as the engine's ground truth.
class PlanSubplan final : public SubplanBase {
 public:
  PlanSubplan(LogicalOpPtr plan, std::set<std::string> free_vars)
      : plan_(std::move(plan)),
        free_vars_(std::move(free_vars)),
        signature_(ComputeCorrelationSignature(*plan_, free_vars_)) {}

  const LogicalOpPtr& plan() const { return plan_; }
  const std::set<std::string>& free_vars() const override {
    return free_vars_;
  }

  /// The outer access paths this subplan can read, computed once at
  /// translation time. Empty signature ⇒ uncorrelated ⇒ the executor
  /// evaluates the plan at most once per query.
  const CorrelationSignature& signature() const { return signature_; }

  std::string ToString() const override;

  /// Builds a subplan expression; its type is P(row type of `plan`).
  static Expr MakeExpr(LogicalOpPtr plan, std::set<std::string> free_vars);

 private:
  LogicalOpPtr plan_;
  std::set<std::string> free_vars_;
  CorrelationSignature signature_;
};

}  // namespace tmdb

#endif  // TMDB_ALGEBRA_SUBPLAN_H_
