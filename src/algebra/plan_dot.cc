#include "algebra/plan_dot.h"

#include <vector>

#include "algebra/subplan.h"
#include "base/string_util.h"

namespace tmdb {

namespace {

// Local subplan collector (the richer one lives in rewrite/, which sits
// above this library).
void CollectSubplanExprs(const Expr& e, std::vector<Expr>* out) {
  switch (e.expr_kind()) {
    case ExprKind::kSubplan:
      out->push_back(e);
      return;
    case ExprKind::kFieldAccess:
      CollectSubplanExprs(e.field_base(), out);
      return;
    case ExprKind::kBinary:
      CollectSubplanExprs(e.lhs(), out);
      CollectSubplanExprs(e.rhs(), out);
      return;
    case ExprKind::kUnary:
      CollectSubplanExprs(e.operand(), out);
      return;
    case ExprKind::kQuantifier:
      CollectSubplanExprs(e.quant_collection(), out);
      CollectSubplanExprs(e.quant_pred(), out);
      return;
    case ExprKind::kAggregate:
      CollectSubplanExprs(e.agg_arg(), out);
      return;
    case ExprKind::kTupleCtor:
    case ExprKind::kSetCtor:
      for (const Expr& c : e.ctor_elements()) CollectSubplanExprs(c, out);
      return;
    case ExprKind::kLiteral:
    case ExprKind::kVarRef:
      return;
  }
}

std::string DotEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

class DotBuilder {
 public:
  std::string Build(const LogicalOp& plan) {
    out_ = "digraph plan {\n  rankdir=BT;\n  node [shape=box, "
           "fontname=\"monospace\", fontsize=10];\n";
    Emit(plan);
    out_ += "}\n";
    return out_;
  }

 private:
  /// Emits the node for `op` (and its subtree); returns its dot id.
  std::string Emit(const LogicalOp& op) {
    const std::string id = StrCat("n", counter_++);
    out_ += StrCat("  ", id, " [label=\"", DotEscape(op.Describe()),
                   "\"];\n");
    for (const LogicalOpPtr& child : op.inputs()) {
      const std::string child_id = Emit(*child);
      out_ += StrCat("  ", child_id, " -> ", id, ";\n");
    }
    // Correlated subplans inside this operator's expressions appear as
    // dashed clusters pointing at the operator that evaluates them.
    std::vector<const Expr*> exprs;
    switch (op.op_kind()) {
      case OpKind::kSelect:
        exprs.push_back(&op.pred());
        break;
      case OpKind::kMap:
      case OpKind::kExprSource:
        exprs.push_back(&op.func());
        break;
      case OpKind::kJoin:
      case OpKind::kSemiJoin:
      case OpKind::kAntiJoin:
      case OpKind::kOuterJoin:
        exprs.push_back(&op.pred());
        break;
      case OpKind::kNestJoin:
        exprs.push_back(&op.pred());
        exprs.push_back(&op.func());
        break;
      case OpKind::kNest:
        exprs.push_back(&op.func());
        break;
      default:
        break;
    }
    for (const Expr* e : exprs) {
      std::vector<Expr> subs;
      CollectSubplanExprs(*e, &subs);
      for (const Expr& sub : subs) {
        const auto& plan_subplan =
            static_cast<const PlanSubplan&>(sub.subplan());
        const std::string cluster = StrCat("cluster_sub", counter_++);
        out_ += StrCat("  subgraph ", cluster,
                       " {\n  style=dashed; label=\"correlated subquery\";\n");
        const std::string sub_id = Emit(*plan_subplan.plan());
        out_ += "  }\n";
        out_ += StrCat("  ", sub_id, " -> ", id, " [style=dashed];\n");
      }
    }
    return id;
  }

  std::string out_;
  int counter_ = 0;
};

}  // namespace

std::string PlanToDot(const LogicalOp& plan) {
  DotBuilder builder;
  return builder.Build(plan);
}

}  // namespace tmdb
