#ifndef TMDB_ALGEBRA_CORRELATION_H_
#define TMDB_ALGEBRA_CORRELATION_H_

#include <set>
#include <string>
#include <vector>

#include "algebra/logical_op.h"
#include "base/result.h"
#include "expr/eval.h"
#include "values/value.h"

namespace tmdb {

/// The correlation signature of a subplan: the exact set of outer-variable
/// access paths its expressions can read. Two outer bindings that agree on
/// every path are indistinguishable to the subplan, so its result can be
/// memoized on the tuple of path values. An empty signature means the
/// subplan is uncorrelated — it reads only its own tables and bound
/// variables — and therefore evaluates to the same result for every outer
/// row of a query.
struct CorrelationSignature {
  /// One access into an outer variable. `path` is the chain of field names
  /// applied to the variable (root first); an empty path means the whole
  /// variable is read (e.g. a bare `x` reference, or a use the analysis
  /// cannot narrow further).
  struct AccessPath {
    std::string var;
    std::vector<std::string> path;

    bool operator<(const AccessPath& other) const {
      if (var != other.var) return var < other.var;
      return path < other.path;
    }
    bool operator==(const AccessPath& other) const {
      return var == other.var && path == other.path;
    }
  };

  /// Sorted, deduplicated, subsumption-pruned: a whole-variable entry
  /// absorbs every field path of that variable, and a path absorbs its own
  /// extensions (`x.a` absorbs `x.a.b`).
  std::vector<AccessPath> paths;

  bool uncorrelated() const { return paths.empty(); }

  /// e.g. "[x.b, y]" — for EXPLAIN output and tests.
  std::string ToString() const;
};

/// Computes the correlation signature of `plan` with respect to the outer
/// variables `free_vars`. Mirrors the PlanFreeVars traversal: each
/// operator's own expressions are analysed under the variables that
/// operator binds; accesses to anything in `free_vars` that is not locally
/// bound are recorded. Field-access chains rooted at a free variable are
/// kept as paths; any use that escapes the chain analysis (a bare
/// reference, a quantifier iterating the variable itself) degrades to the
/// whole variable, never to an under-approximation — correctness of
/// memoization only needs the signature to cover every read.
CorrelationSignature ComputeCorrelationSignature(
    const LogicalOp& plan, const std::set<std::string>& free_vars);

/// Builds the memoization key for one outer binding: the signature's path
/// values looked up in `env`, in signature order, packed into a list value.
/// Walking a path stops early when the current value is not a tuple with
/// the next field (e.g. outer-join NULL padding) and uses the value reached
/// so far — equal keys still imply identical reads inside the subplan.
Result<Value> EvalCorrelationKey(const CorrelationSignature& signature,
                                 const Environment& env);

}  // namespace tmdb

#endif  // TMDB_ALGEBRA_CORRELATION_H_
