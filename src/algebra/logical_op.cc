#include "algebra/logical_op.h"

#include <utility>

#include "base/logging.h"
#include "base/string_util.h"
#include "types/schema_ops.h"

namespace tmdb {

namespace {

Status RequireBoolPred(const Expr& pred, const char* where) {
  if (!pred.type().is_bool() && !pred.type().is_any()) {
    return Status::TypeError(StrCat(where, " predicate must be boolean, got ",
                                    pred.type().ToString()));
  }
  return Status::OK();
}

Status RequireTupleRows(const LogicalOpPtr& op, const char* where) {
  if (op == nullptr) {
    return Status::InvalidArgument(StrCat(where, ": null input plan"));
  }
  if (!op->output_type().is_tuple()) {
    return Status::TypeError(StrCat(where, " requires tuple-shaped rows, got ",
                                    op->output_type().ToString()));
  }
  return Status::OK();
}

}  // namespace

Result<LogicalOpPtr> LogicalOp::Scan(std::shared_ptr<const Table> table) {
  if (table == nullptr) {
    return Status::InvalidArgument("Scan: null table");
  }
  auto op = std::shared_ptr<LogicalOp>(
      new LogicalOp(OpKind::kScan, table->schema()));
  op->table_ = std::move(table);
  return LogicalOpPtr(op);
}

Result<LogicalOpPtr> LogicalOp::ExprSource(Expr expr) {
  if (!expr.type().is_collection()) {
    return Status::TypeError(
        StrCat("ExprSource requires a set- or list-valued expression, got ",
               expr.type().ToString()));
  }
  auto op = std::shared_ptr<LogicalOp>(
      new LogicalOp(OpKind::kExprSource, expr.type().element()));
  op->func_ = std::move(expr);
  op->has_func_ = true;
  return LogicalOpPtr(op);
}

Result<LogicalOpPtr> LogicalOp::Select(LogicalOpPtr input, std::string var,
                                       Expr pred) {
  if (input == nullptr) return Status::InvalidArgument("Select: null input");
  TMDB_RETURN_IF_ERROR(RequireBoolPred(pred, "Select"));
  auto op = std::shared_ptr<LogicalOp>(
      new LogicalOp(OpKind::kSelect, input->output_type()));
  op->inputs_ = {std::move(input)};
  op->var_ = std::move(var);
  op->pred_ = std::move(pred);
  op->has_pred_ = true;
  return LogicalOpPtr(op);
}

Result<LogicalOpPtr> LogicalOp::Map(LogicalOpPtr input, std::string var,
                                    Expr expr) {
  if (input == nullptr) return Status::InvalidArgument("Map: null input");
  auto op = std::shared_ptr<LogicalOp>(
      new LogicalOp(OpKind::kMap, expr.type()));
  op->inputs_ = {std::move(input)};
  op->var_ = std::move(var);
  op->func_ = std::move(expr);
  op->has_func_ = true;
  return LogicalOpPtr(op);
}

Result<LogicalOpPtr> LogicalOp::Join(LogicalOpPtr left, LogicalOpPtr right,
                                     std::string left_var,
                                     std::string right_var, Expr pred) {
  TMDB_RETURN_IF_ERROR(RequireTupleRows(left, "Join"));
  TMDB_RETURN_IF_ERROR(RequireTupleRows(right, "Join"));
  TMDB_RETURN_IF_ERROR(RequireBoolPred(pred, "Join"));
  if (left_var == right_var) {
    return Status::InvalidArgument("Join: variables must differ");
  }
  TMDB_ASSIGN_OR_RETURN(
      Type out, ConcatTupleTypes(left->output_type(), right->output_type()));
  auto op =
      std::shared_ptr<LogicalOp>(new LogicalOp(OpKind::kJoin, std::move(out)));
  op->inputs_ = {std::move(left), std::move(right)};
  op->var_ = std::move(left_var);
  op->right_var_ = std::move(right_var);
  op->pred_ = std::move(pred);
  op->has_pred_ = true;
  return LogicalOpPtr(op);
}

Result<LogicalOpPtr> LogicalOp::SemiJoin(LogicalOpPtr left, LogicalOpPtr right,
                                         std::string left_var,
                                         std::string right_var, Expr pred) {
  TMDB_RETURN_IF_ERROR(RequireTupleRows(left, "SemiJoin"));
  TMDB_RETURN_IF_ERROR(RequireTupleRows(right, "SemiJoin"));
  TMDB_RETURN_IF_ERROR(RequireBoolPred(pred, "SemiJoin"));
  if (left_var == right_var) {
    return Status::InvalidArgument("SemiJoin: variables must differ");
  }
  auto op = std::shared_ptr<LogicalOp>(
      new LogicalOp(OpKind::kSemiJoin, left->output_type()));
  op->inputs_ = {std::move(left), std::move(right)};
  op->var_ = std::move(left_var);
  op->right_var_ = std::move(right_var);
  op->pred_ = std::move(pred);
  op->has_pred_ = true;
  return LogicalOpPtr(op);
}

Result<LogicalOpPtr> LogicalOp::AntiJoin(LogicalOpPtr left, LogicalOpPtr right,
                                         std::string left_var,
                                         std::string right_var, Expr pred) {
  TMDB_RETURN_IF_ERROR(RequireTupleRows(left, "AntiJoin"));
  TMDB_RETURN_IF_ERROR(RequireTupleRows(right, "AntiJoin"));
  TMDB_RETURN_IF_ERROR(RequireBoolPred(pred, "AntiJoin"));
  if (left_var == right_var) {
    return Status::InvalidArgument("AntiJoin: variables must differ");
  }
  auto op = std::shared_ptr<LogicalOp>(
      new LogicalOp(OpKind::kAntiJoin, left->output_type()));
  op->inputs_ = {std::move(left), std::move(right)};
  op->var_ = std::move(left_var);
  op->right_var_ = std::move(right_var);
  op->pred_ = std::move(pred);
  op->has_pred_ = true;
  return LogicalOpPtr(op);
}

Result<LogicalOpPtr> LogicalOp::OuterJoin(LogicalOpPtr left,
                                          LogicalOpPtr right,
                                          std::string left_var,
                                          std::string right_var, Expr pred) {
  TMDB_RETURN_IF_ERROR(RequireTupleRows(left, "OuterJoin"));
  TMDB_RETURN_IF_ERROR(RequireTupleRows(right, "OuterJoin"));
  TMDB_RETURN_IF_ERROR(RequireBoolPred(pred, "OuterJoin"));
  if (left_var == right_var) {
    return Status::InvalidArgument("OuterJoin: variables must differ");
  }
  TMDB_ASSIGN_OR_RETURN(
      Type out, ConcatTupleTypes(left->output_type(), right->output_type()));
  auto op = std::shared_ptr<LogicalOp>(
      new LogicalOp(OpKind::kOuterJoin, std::move(out)));
  op->inputs_ = {std::move(left), std::move(right)};
  op->var_ = std::move(left_var);
  op->right_var_ = std::move(right_var);
  op->pred_ = std::move(pred);
  op->has_pred_ = true;
  return LogicalOpPtr(op);
}

Result<LogicalOpPtr> LogicalOp::NestJoin(LogicalOpPtr left, LogicalOpPtr right,
                                         std::string left_var,
                                         std::string right_var, Expr pred,
                                         Expr func, std::string label) {
  TMDB_RETURN_IF_ERROR(RequireTupleRows(left, "NestJoin"));
  TMDB_RETURN_IF_ERROR(RequireTupleRows(right, "NestJoin"));
  TMDB_RETURN_IF_ERROR(RequireBoolPred(pred, "NestJoin"));
  if (left_var == right_var) {
    return Status::InvalidArgument("NestJoin: variables must differ");
  }
  // The label must not occur on the top level of the left operand (paper,
  // Section 6) — AddField enforces exactly that.
  TMDB_ASSIGN_OR_RETURN(
      Type out, AddField(left->output_type(), label, Type::Set(func.type())));
  auto op = std::shared_ptr<LogicalOp>(
      new LogicalOp(OpKind::kNestJoin, std::move(out)));
  op->inputs_ = {std::move(left), std::move(right)};
  op->var_ = std::move(left_var);
  op->right_var_ = std::move(right_var);
  op->pred_ = std::move(pred);
  op->has_pred_ = true;
  op->func_ = std::move(func);
  op->has_func_ = true;
  op->label_ = std::move(label);
  return LogicalOpPtr(op);
}

Result<LogicalOpPtr> LogicalOp::Nest(LogicalOpPtr input,
                                     std::vector<std::string> group_attrs,
                                     std::string var, Expr elem,
                                     std::string label,
                                     bool null_group_to_empty) {
  TMDB_RETURN_IF_ERROR(RequireTupleRows(input, "Nest"));
  TMDB_ASSIGN_OR_RETURN(Type key_type,
                        ProjectFields(input->output_type(), group_attrs));
  TMDB_ASSIGN_OR_RETURN(Type out,
                        AddField(key_type, label, Type::Set(elem.type())));
  auto op =
      std::shared_ptr<LogicalOp>(new LogicalOp(OpKind::kNest, std::move(out)));
  op->inputs_ = {std::move(input)};
  op->group_attrs_ = std::move(group_attrs);
  op->var_ = std::move(var);
  op->func_ = std::move(elem);
  op->has_func_ = true;
  op->label_ = std::move(label);
  op->null_group_to_empty_ = null_group_to_empty;
  return LogicalOpPtr(op);
}

Result<LogicalOpPtr> LogicalOp::Unnest(LogicalOpPtr input, std::string attr) {
  TMDB_RETURN_IF_ERROR(RequireTupleRows(input, "Unnest"));
  TMDB_ASSIGN_OR_RETURN(Type attr_type, input->output_type().FieldType(attr));
  if (!attr_type.is_set() || !attr_type.element().is_tuple()) {
    return Status::TypeError(
        StrCat("Unnest requires a set-of-tuples attribute, '", attr, "' is ",
               attr_type.ToString()));
  }
  TMDB_ASSIGN_OR_RETURN(Type rest, RemoveField(input->output_type(), attr));
  TMDB_ASSIGN_OR_RETURN(Type out, ConcatTupleTypes(rest, attr_type.element()));
  auto op = std::shared_ptr<LogicalOp>(
      new LogicalOp(OpKind::kUnnest, std::move(out)));
  op->inputs_ = {std::move(input)};
  op->unnest_attr_ = std::move(attr);
  return LogicalOpPtr(op);
}

Result<LogicalOpPtr> LogicalOp::Union(LogicalOpPtr left, LogicalOpPtr right) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("Union: null input");
  }
  TMDB_ASSIGN_OR_RETURN(
      Type out, UnifyTypes(left->output_type(), right->output_type()));
  auto op = std::shared_ptr<LogicalOp>(
      new LogicalOp(OpKind::kUnion, std::move(out)));
  op->inputs_ = {std::move(left), std::move(right)};
  return LogicalOpPtr(op);
}

Result<LogicalOpPtr> LogicalOp::Difference(LogicalOpPtr left,
                                           LogicalOpPtr right) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("Difference: null input");
  }
  TMDB_ASSIGN_OR_RETURN(
      Type out, UnifyTypes(left->output_type(), right->output_type()));
  auto op = std::shared_ptr<LogicalOp>(
      new LogicalOp(OpKind::kDifference, std::move(out)));
  op->inputs_ = {std::move(left), std::move(right)};
  return LogicalOpPtr(op);
}

const LogicalOpPtr& LogicalOp::input() const {
  TMDB_CHECK(inputs_.size() == 1);
  return inputs_[0];
}

const LogicalOpPtr& LogicalOp::left() const {
  TMDB_CHECK(inputs_.size() == 2);
  return inputs_[0];
}

const LogicalOpPtr& LogicalOp::right() const {
  TMDB_CHECK(inputs_.size() == 2);
  return inputs_[1];
}

const std::shared_ptr<const Table>& LogicalOp::table() const {
  TMDB_CHECK(kind_ == OpKind::kScan);
  return table_;
}

const std::string& LogicalOp::var() const { return var_; }
const std::string& LogicalOp::left_var() const {
  TMDB_CHECK(is_join_family());
  return var_;
}
const std::string& LogicalOp::right_var() const {
  TMDB_CHECK(is_join_family());
  return right_var_;
}

const Expr& LogicalOp::pred() const {
  TMDB_CHECK(has_pred_);
  return pred_;
}

const Expr& LogicalOp::func() const {
  TMDB_CHECK(has_func_);
  return func_;
}

const std::string& LogicalOp::label() const {
  TMDB_CHECK(kind_ == OpKind::kNestJoin || kind_ == OpKind::kNest);
  return label_;
}

const std::vector<std::string>& LogicalOp::group_attrs() const {
  TMDB_CHECK(kind_ == OpKind::kNest);
  return group_attrs_;
}

bool LogicalOp::null_group_to_empty() const {
  TMDB_CHECK(kind_ == OpKind::kNest);
  return null_group_to_empty_;
}

const std::string& LogicalOp::unnest_attr() const {
  TMDB_CHECK(kind_ == OpKind::kUnnest);
  return unnest_attr_;
}

std::string LogicalOp::Describe() const {
  switch (kind_) {
    case OpKind::kScan:
      return StrCat("Scan(", table_->name(), ")");
    case OpKind::kExprSource:
      return StrCat("ExprSource(", func_.ToString(), ")");
    case OpKind::kSelect:
      return StrCat("Select[", var_, " : ", pred_.ToString(), "]");
    case OpKind::kMap:
      return StrCat("Map[", var_, " : ", func_.ToString(), "]");
    case OpKind::kJoin:
    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin:
    case OpKind::kOuterJoin:
      return StrCat(OpKindName(kind_), "[", var_, ",", right_var_, " : ",
                    pred_.ToString(), "]");
    case OpKind::kNestJoin:
      return StrCat("NestJoin[", var_, ",", right_var_, " : ",
                    pred_.ToString(), ", G = ", func_.ToString(), "; ", label_,
                    "]");
    case OpKind::kNest:
      return StrCat(null_group_to_empty_ ? "Nest*" : "Nest", "[by (",
                    ::tmdb::Join(group_attrs_, ", "), "), ", var_, " : ",
                    func_.ToString(), "; ", label_, "]");
    case OpKind::kUnnest:
      return StrCat("Unnest[", unnest_attr_, "]");
    case OpKind::kUnion:
      return "Union";
    case OpKind::kDifference:
      return "Difference";
  }
  return "?";
}

namespace {

void PrintTree(const LogicalOp& op, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(op.Describe());
  out->append("\n");
  for (const LogicalOpPtr& child : op.inputs()) {
    PrintTree(*child, depth + 1, out);
  }
}

}  // namespace

std::string LogicalOp::ToString() const {
  std::string out;
  PrintTree(*this, 0, &out);
  return out;
}

namespace {

void CollectPlanFreeVars(const LogicalOp& op,
                         const std::set<std::string>& bound,
                         std::set<std::string>* out) {
  // Variables bound by this operator, visible to its own expressions.
  std::set<std::string> here = bound;
  std::vector<const Expr*> exprs;
  switch (op.op_kind()) {
    case OpKind::kScan:
      break;
    case OpKind::kExprSource:
      exprs.push_back(&op.func());
      break;
    case OpKind::kSelect:
      here.insert(op.var());
      exprs.push_back(&op.pred());
      break;
    case OpKind::kMap:
      here.insert(op.var());
      exprs.push_back(&op.func());
      break;
    case OpKind::kJoin:
    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin:
    case OpKind::kOuterJoin:
      here.insert(op.left_var());
      here.insert(op.right_var());
      exprs.push_back(&op.pred());
      break;
    case OpKind::kNestJoin:
      here.insert(op.left_var());
      here.insert(op.right_var());
      exprs.push_back(&op.pred());
      exprs.push_back(&op.func());
      break;
    case OpKind::kNest:
      here.insert(op.var());
      exprs.push_back(&op.func());
      break;
    case OpKind::kUnnest:
    case OpKind::kUnion:
    case OpKind::kDifference:
      break;
  }
  for (const Expr* e : exprs) {
    for (const std::string& v : e->FreeVars()) {
      if (here.count(v) == 0) out->insert(v);
    }
  }
  for (const LogicalOpPtr& child : op.inputs()) {
    CollectPlanFreeVars(*child, bound, out);
  }
}

}  // namespace

std::set<std::string> PlanFreeVars(const LogicalOp& plan) {
  std::set<std::string> out;
  CollectPlanFreeVars(plan, {}, &out);
  return out;
}

std::string OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kScan:
      return "Scan";
    case OpKind::kExprSource:
      return "ExprSource";
    case OpKind::kSelect:
      return "Select";
    case OpKind::kMap:
      return "Map";
    case OpKind::kJoin:
      return "Join";
    case OpKind::kSemiJoin:
      return "SemiJoin";
    case OpKind::kAntiJoin:
      return "AntiJoin";
    case OpKind::kOuterJoin:
      return "OuterJoin";
    case OpKind::kNestJoin:
      return "NestJoin";
    case OpKind::kNest:
      return "Nest";
    case OpKind::kUnnest:
      return "Unnest";
    case OpKind::kUnion:
      return "Union";
    case OpKind::kDifference:
      return "Difference";
  }
  return "?";
}

}  // namespace tmdb
