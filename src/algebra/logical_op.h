#ifndef TMDB_ALGEBRA_LOGICAL_OP_H_
#define TMDB_ALGEBRA_LOGICAL_OP_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "base/result.h"
#include "catalog/table.h"
#include "expr/expr.h"
#include "types/type.h"

namespace tmdb {

class LogicalOp;
using LogicalOpPtr = std::shared_ptr<const LogicalOp>;

/// Operators of the complex-object algebra (an ADL-style extension of the
/// NF² algebra of Schek/Scholl that the paper builds on), plus the paper's
/// contribution: the nest join.
enum class OpKind {
  kScan,       // table extension
  kExprSource, // iterate the elements of a (possibly correlated) set expr
  kSelect,     // σ_{x : p(x)}
  kMap,        // π / function application: { f(x) | x ∈ input } (a set!)
  kJoin,       // X ⋈_{x,y : q} Y — output tuples x ++ y
  kSemiJoin,   // X ⋉ Y — left tuples with a match
  kAntiJoin,   // X ▷ Y — left tuples without a match
  kOuterJoin,  // left outerjoin — dangling left tuples padded with NULLs
  kNestJoin,   // X ▵_{x,y : q, G; a} Y — x ++ (a = {G(x,y) | match})
  kNest,       // ν — group by attributes, collect the rest as a set
  kUnnest,     // μ — flatten a set-valued attribute
  kUnion,      // set union of equally-typed inputs
  kDifference, // set difference
};

/// An immutable logical plan node. Plans are DAG-shaped shared trees; every
/// node derives and stores its output row type at construction (factories
/// type-check and return errors).
///
/// Predicates and functions reference the operators' iteration variables by
/// name, exactly like the paper writes X ⋈_{x,y:Q(x,y)} Y. Inside a naive
/// (unrewritten) plan they may additionally reference correlation variables
/// bound by an enclosing subplan evaluation.
class LogicalOp {
 public:
  // -- Factories (type-checked) ---------------------------------------------

  static Result<LogicalOpPtr> Scan(std::shared_ptr<const Table> table);

  /// Produces one row per element of the collection `expr` evaluates to.
  /// Used for set-valued FROM operands (`FROM d.emps e`), which are stored
  /// with the objects themselves and therefore never flattened (paper,
  /// Section 3.2). `expr` may reference correlation variables.
  static Result<LogicalOpPtr> ExprSource(Expr expr);

  /// σ: keeps rows where pred(var := row) holds. pred must be boolean.
  static Result<LogicalOpPtr> Select(LogicalOpPtr input, std::string var,
                                     Expr pred);

  /// Function application { expr(var := row) | row ∈ input }. The output is
  /// a *set*: duplicates produced by the projection collapse (TM sets are
  /// duplicate-free). Output rows may be any value kind, but most operators
  /// downstream require tuples.
  static Result<LogicalOpPtr> Map(LogicalOpPtr input, std::string var,
                                  Expr expr);

  static Result<LogicalOpPtr> Join(LogicalOpPtr left, LogicalOpPtr right,
                                   std::string left_var, std::string right_var,
                                   Expr pred);
  static Result<LogicalOpPtr> SemiJoin(LogicalOpPtr left, LogicalOpPtr right,
                                       std::string left_var,
                                       std::string right_var, Expr pred);
  static Result<LogicalOpPtr> AntiJoin(LogicalOpPtr left, LogicalOpPtr right,
                                       std::string left_var,
                                       std::string right_var, Expr pred);
  /// Left outerjoin: matching pairs are concatenated; dangling left tuples
  /// are padded with NULLs in the right attribute positions (the relational
  /// repair of the COUNT bug — kept as the Ganski–Wong baseline).
  static Result<LogicalOpPtr> OuterJoin(LogicalOpPtr left, LogicalOpPtr right,
                                        std::string left_var,
                                        std::string right_var, Expr pred);

  /// The paper's nest join X ▵_{x,y : pred, func; label} Y: every left tuple
  /// x is extended with (label = { func(x,y) | y ∈ Y, pred(x,y) }). Dangling
  /// x get label = ∅ — grouping and dangling-tuple preservation in one
  /// operator, no NULLs.
  static Result<LogicalOpPtr> NestJoin(LogicalOpPtr left, LogicalOpPtr right,
                                       std::string left_var,
                                       std::string right_var, Expr pred,
                                       Expr func, std::string label);

  /// ν: groups rows by `group_attrs`; each output tuple is the group key
  /// extended with (label = { elem(var := row) | row ∈ group }).
  /// With `null_group_to_empty` (the ν* of the paper, after Scholl), an
  /// element that is NULL or a tuple of only NULLs is dropped, so a group
  /// consisting solely of outerjoin padding becomes the empty set.
  static Result<LogicalOpPtr> Nest(LogicalOpPtr input,
                                   std::vector<std::string> group_attrs,
                                   std::string var, Expr elem,
                                   std::string label,
                                   bool null_group_to_empty);

  /// μ: for each row, replaces the set-of-tuples attribute `attr` by the
  /// attributes of each of its elements (one output row per element; rows
  /// with attr = ∅ vanish — μ is not information-preserving, which is why
  /// the nest join matters).
  static Result<LogicalOpPtr> Unnest(LogicalOpPtr input, std::string attr);

  static Result<LogicalOpPtr> Union(LogicalOpPtr left, LogicalOpPtr right);
  static Result<LogicalOpPtr> Difference(LogicalOpPtr left,
                                         LogicalOpPtr right);

  // -- Accessors --------------------------------------------------------------

  OpKind op_kind() const { return kind_; }
  /// Type of the rows this operator produces.
  const Type& output_type() const { return output_type_; }

  /// Children: empty for kScan, one for unary ops, two for binary ops.
  const std::vector<LogicalOpPtr>& inputs() const { return inputs_; }
  const LogicalOpPtr& input() const;  // unary
  const LogicalOpPtr& left() const;   // binary
  const LogicalOpPtr& right() const;  // binary

  /// kScan payload.
  const std::shared_ptr<const Table>& table() const;

  /// Iteration variable names. var() for unary ops; left_var()/right_var()
  /// for join-family ops.
  const std::string& var() const;
  const std::string& left_var() const;
  const std::string& right_var() const;

  /// Predicate (kSelect and the join family).
  const Expr& pred() const;
  /// Map/Nest element function; NestJoin's G.
  const Expr& func() const;
  /// NestJoin / Nest grouping label.
  const std::string& label() const;
  /// kNest payload.
  const std::vector<std::string>& group_attrs() const;
  bool null_group_to_empty() const;
  /// kUnnest payload.
  const std::string& unnest_attr() const;

  bool is_join_family() const {
    return kind_ == OpKind::kJoin || kind_ == OpKind::kSemiJoin ||
           kind_ == OpKind::kAntiJoin || kind_ == OpKind::kOuterJoin ||
           kind_ == OpKind::kNestJoin;
  }

  /// Multi-line tree rendering with operator parameters.
  std::string ToString() const;
  /// One-line operator description (no children).
  std::string Describe() const;

 private:
  LogicalOp(OpKind kind, Type output_type)
      : kind_(kind), output_type_(std::move(output_type)) {}

  OpKind kind_;
  Type output_type_;
  std::vector<LogicalOpPtr> inputs_;
  std::shared_ptr<const Table> table_;  // kScan
  std::string var_;                      // unary iteration var
  std::string right_var_;                // join-family right var
  Expr pred_;                            // kSelect, joins
  Expr func_;                            // kMap, kNestJoin G, kNest elem
  std::string label_;                    // kNestJoin, kNest
  std::vector<std::string> group_attrs_; // kNest
  bool null_group_to_empty_ = false;     // kNest
  std::string unnest_attr_;              // kUnnest
  bool has_pred_ = false;
  bool has_func_ = false;
};

/// Human-readable operator name ("NestJoin", "SemiJoin", ...).
std::string OpKindName(OpKind kind);

/// Variables occurring free in the plan: referenced by some operator's
/// expression but bound neither by that operator nor anywhere below. For a
/// correlated subquery plan these are exactly its correlation variables.
std::set<std::string> PlanFreeVars(const LogicalOp& plan);

}  // namespace tmdb

#endif  // TMDB_ALGEBRA_LOGICAL_OP_H_
