#ifndef TMDB_EXEC_SPILL_UTIL_H_
#define TMDB_EXEC_SPILL_UTIL_H_

#include "base/fault_injector.h"
#include "base/status.h"
#include "exec/exec_context.h"
#include "exec/physical_op.h"
#include "exec/query_guard.h"

namespace tmdb {

/// True when a failed status is a memory-budget trip that disk can relieve:
/// spill is configured and the guard recorded the trip kind as memory at
/// trip time. Only a *memory* trip is relieved by disk; max_rows also
/// surfaces as kResourceExhausted but bounds work, not residency — and a
/// live memory_over_budget() reading here would already be stale, since
/// unwinding to the catch site frees scratch. Shared by every operator that
/// degrades to disk (hash/nest join, merge join, ν/ν* grouping, the subplan
/// cache's insertion path).
inline bool SpillEligibleTrip(const ExecContext* ctx, const Status& s) {
  return s.code() == StatusCode::kResourceExhausted && ctx != nullptr &&
         ctx->spill != nullptr && ctx->guard != nullptr &&
         ctx->guard->last_trip_was_memory();
}

/// Guard check once per kExecBatchSize loop iterations (`i` counts up) —
/// the row-granularity half of the checkpoint invariant inside spill loops,
/// complementing the TookBlockBoundary checks at block granularity.
inline Status PeriodicSpillGuardCheck(const ExecContext* ctx, size_t i) {
  if ((i & (kExecBatchSize - 1)) == 0) return CheckGuard(ctx);
  return Status::OK();
}

/// The fault injector spill I/O must consult, reached through the guard.
inline FaultInjector* SpillInjectorOf(const ExecContext* ctx) {
  return ctx->guard == nullptr ? nullptr : ctx->guard->injector();
}

}  // namespace tmdb

#endif  // TMDB_EXEC_SPILL_UTIL_H_
