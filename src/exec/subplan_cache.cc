#include "exec/subplan_cache.h"

#include <utility>
#include <vector>

#include "algebra/correlation.h"
#include "algebra/subplan.h"
#include "exec/executor.h"
#include "spill/spill_file.h"
#include "spill/spill_manager.h"
#include "spill/value_codec.h"

namespace tmdb {

namespace {
bool MemoryTrip(QueryGuard* guard, const Status& s) {
  return s.code() == StatusCode::kResourceExhausted && guard != nullptr &&
         guard->last_trip_was_memory();
}
}  // namespace

uint64_t ApproxValueBytes(const Value& v) {
  // Per-node overhead: the shared rep header (kind, hash memo, control
  // block). Atoms carry little beyond it.
  constexpr uint64_t kRepOverhead = 32;
  switch (v.kind()) {
    case ValueKind::kNull:
    case ValueKind::kBool:
    case ValueKind::kInt:
    case ValueKind::kReal:
      return kRepOverhead;
    case ValueKind::kString:
      return kRepOverhead + v.AsString().size();
    case ValueKind::kTuple: {
      uint64_t total = kRepOverhead;
      for (size_t i = 0; i < v.TupleSize(); ++i) {
        total += v.FieldName(i).size() + sizeof(Value) +
                 ApproxValueBytes(v.FieldValue(i));
      }
      return total;
    }
    case ValueKind::kSet:
    case ValueKind::kList: {
      uint64_t total = kRepOverhead;
      for (const Value& elem : v.Elements()) {
        total += sizeof(Value) + ApproxValueBytes(elem);
      }
      return total;
    }
  }
  return kRepOverhead;
}

struct SubplanCache::Entry {
  enum class State { kComputing, kDone, kFailed, kOnDisk };
  State state = State::kComputing;
  Value value;
  Status error;
  uint64_t bytes = 0;
  // Spill file holding the encoded result while state == kOnDisk. The
  // entry then charges nothing; `bytes` is retained for the fault-in
  // re-charge.
  std::string disk_path;
  std::list<LruKey>::iterator lru_pos;
  bool in_lru = false;
};

void SubplanCache::Reset(QueryGuard* guard, uint64_t capacity_bytes,
                         SpillManager* spill) {
  std::lock_guard<std::mutex> lock(mu_);
  // On-disk entries own spill files; drop them through the manager they
  // were written with before rebinding. Best-effort — the run's CleanupAll
  // sweeps any straggler when the spill directory is torn down.
  if (spill_ != nullptr) {
    for (auto& [subplan, per_subplan] : entries_) {
      for (auto& [key, entry] : per_subplan) {
        if (entry->state == Entry::State::kOnDisk) {
          spill_->RemoveFile(entry->disk_path);
        }
      }
    }
  }
  entries_.clear();
  lru_.clear();
  res_.Reset(guard);  // releases any stale balance to the previous guard
  guard_ = guard;
  spill_ = spill;
  capacity_bytes_ = capacity_bytes;
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
  disk_evictions_ = 0;
  disk_faults_ = 0;
}

Result<std::optional<Value>> SubplanCache::Acquire(const SubplanBase* subplan,
                                                  const Value& key) {
  std::unique_lock<std::mutex> lock(mu_);
  EntryMap& per_subplan = entries_[subplan];
  auto it = per_subplan.find(key);
  if (it == per_subplan.end()) {
    per_subplan.emplace(key, std::make_shared<Entry>());
    misses_++;
    return std::optional<Value>();  // caller computes, then Fulfill/Abandon
  }
  std::shared_ptr<Entry> entry = it->second;
  if (entry->state == Entry::State::kComputing) {
    // Wait for the computing thread. No guard checkpoint here: checkpoint
    // totals must not depend on scheduling, and the computer's own
    // checkpoints already guarantee the wait ends (Fulfill or Abandon runs
    // on every path out of the computation).
    cv_.wait(lock, [&] { return entry->state != Entry::State::kComputing; });
  }
  if (entry->state == Entry::State::kFailed) return entry->error;
  if (entry->state == Entry::State::kOnDisk) {
    return FaultInLocked(subplan, key, entry);
  }
  hits_++;
  if (entry->in_lru) {
    lru_.splice(lru_.begin(), lru_, entry->lru_pos);
  }
  return std::optional<Value>(entry->value);
}

Result<std::optional<Value>> SubplanCache::FaultInLocked(
    const SubplanBase* subplan, const Value& key,
    const std::shared_ptr<Entry>& entry) {
  Value value;
  Status read = [&]() -> Status {
    SpillReader reader(entry->disk_path, spill_->injector());
    TMDB_RETURN_IF_ERROR(reader.Open());
    std::string_view record;
    bool eof = false;
    TMDB_RETURN_IF_ERROR(reader.Next(&record, &eof));
    if (eof) return Status::IoError("subplan cache spill file is empty");
    size_t pos = 0;
    TMDB_RETURN_IF_ERROR(DecodeValue(record, &pos, &value));
    reader.Close();
    return Status::OK();
  }();
  if (!read.ok()) {
    // Corrupt or unreadable: drop the stub and degrade to a miss — the
    // caller recomputes, and exactly-once restarts from here.
    spill_->RemoveFile(entry->disk_path);
    EntryMap& per_subplan = entries_[subplan];
    per_subplan.erase(key);
    per_subplan.emplace(key, std::make_shared<Entry>());
    misses_++;
    return std::optional<Value>();
  }
  // Re-charge the resident bytes, pushing colder entries to disk first
  // when the budget is tight. The file stays on disk until the entry is
  // resident again, so every failure mode below leaves a usable copy.
  Status st = res_.Add(entry->bytes);
  while (!st.ok() && MemoryTrip(guard_, st) && !lru_.empty()) {
    EvictOldestLocked();
    st = guard_->Check();
  }
  if (!st.ok() && !MemoryTrip(guard_, st)) {
    // Cancel, deadline, or an injected fault at the re-charge checkpoint:
    // fail the acquire; the stub (and its file) survive for a retry.
    res_.Shrink(entry->bytes);
    return st;
  }
  hits_++;
  disk_faults_++;
  if (!st.ok()) {
    // Still over the memory budget with nothing left to evict: hand the
    // result to the caller without making it resident. The stub keeps its
    // file, so exactly-once still holds for later acquires.
    res_.Shrink(entry->bytes);
    return std::optional<Value>(std::move(value));
  }
  spill_->RemoveFile(entry->disk_path);
  entry->disk_path.clear();
  entry->state = Entry::State::kDone;
  entry->value = value;
  lru_.push_front({subplan, key});
  entry->lru_pos = lru_.begin();
  entry->in_lru = true;
  // Same soft cap as Fulfill: a run of fault-ins with no fresh insertions
  // must not grow residency past the cap. Never evicts the entry just
  // faulted in.
  while (res_.held() > capacity_bytes_ && lru_.size() > 1) {
    EvictOldestLocked();
  }
  return std::optional<Value>(std::move(value));
}

Status SubplanCache::Fulfill(const SubplanBase* subplan, const Value& key,
                             const Value& result) {
  std::unique_lock<std::mutex> lock(mu_);
  auto sub_it = entries_.find(subplan);
  if (sub_it == entries_.end()) return Status::Internal("Fulfill without Acquire");
  auto it = sub_it->second.find(key);
  if (it == sub_it->second.end()) {
    return Status::Internal("Fulfill without Acquire");
  }
  std::shared_ptr<Entry> entry = it->second;

  const uint64_t bytes =
      2 * sizeof(Value) + 64 + ApproxValueBytes(key) + ApproxValueBytes(result);
  // The cache-insertion checkpoint: charging runs QueryGuard::Check, so the
  // fault injector and cancellation reach this site.
  Status st = res_.Add(bytes);
  while (!st.ok() && MemoryTrip(guard_, st) && !lru_.empty()) {
    EvictOldestLocked();
    st = guard_->Check();
  }
  if (!st.ok() && !MemoryTrip(guard_, st)) {
    // Cancel, deadline, max_rows, or an injected fault: fail the insertion
    // (and with it the query) — never memoize a failure.
    res_.Shrink(bytes);
    entry->state = Entry::State::kFailed;
    entry->error = st;
    sub_it->second.erase(it);
    cv_.notify_all();
    return st;
  }
  if (!st.ok()) {
    // Still over the memory budget with nothing left to evict. With a
    // spill manager, write the new result straight to disk: waiters and
    // later acquires fault it back in instead of recomputing.
    res_.Shrink(bytes);
    entry->value = result;
    entry->bytes = bytes;
    if (spill_ != nullptr && WriteEntryToDiskLocked(entry.get())) {
      disk_evictions_++;
      cv_.notify_all();
      return Status::OK();
    }
    // No spill (or the write failed): hand the result to the caller and
    // the waiters uncached. The query itself is not failed here — if
    // memory is genuinely over budget the next operator checkpoint trips
    // exactly as it would without a cache.
    entry->state = Entry::State::kDone;
    sub_it->second.erase(it);
    cv_.notify_all();
    return Status::OK();
  }
  entry->state = Entry::State::kDone;
  entry->value = result;
  entry->bytes = bytes;
  lru_.push_front({subplan, key});
  entry->lru_pos = lru_.begin();
  entry->in_lru = true;
  // Soft capacity cap, independent of the guard budget. Never evicts the
  // entry just inserted.
  while (res_.held() > capacity_bytes_ && lru_.size() > 1) {
    EvictOldestLocked();
  }
  cv_.notify_all();
  return Status::OK();
}

void SubplanCache::Abandon(const SubplanBase* subplan, const Value& key,
                           const Status& error) {
  std::lock_guard<std::mutex> lock(mu_);
  auto sub_it = entries_.find(subplan);
  if (sub_it == entries_.end()) return;
  auto it = sub_it->second.find(key);
  if (it == sub_it->second.end()) return;
  it->second->state = Entry::State::kFailed;
  it->second->error = error;
  sub_it->second.erase(it);
  cv_.notify_all();
}

void SubplanCache::EvictOldestLocked() {
  const LruKey victim = lru_.back();  // copy: pop_back below kills the ref
  auto sub_it = entries_.find(victim.first);
  auto it = sub_it->second.find(victim.second);
  std::shared_ptr<Entry> entry = it->second;
  lru_.pop_back();
  entry->in_lru = false;
  res_.Shrink(entry->bytes);
  if (spill_ != nullptr && WriteEntryToDiskLocked(entry.get())) {
    // The result now lives in a spill file; the entry stays in the map as
    // a zero-charge stub so a later Acquire faults it back in instead of
    // recomputing.
    disk_evictions_++;
    return;
  }
  sub_it->second.erase(it);
  evictions_++;
}

bool SubplanCache::WriteEntryToDiskLocked(Entry* entry) {
  Result<std::string> path = spill_->NewFilePath("subcache");
  if (!path.ok()) return false;
  // Single-record write: small and bounded, so no guard checkpoints run
  // inside — but the injector's I/O channels still reach every operation,
  // and any failure (short write, ENOSPC, unlink refusal) degrades to a
  // plain drop rather than failing the query.
  Status st = [&]() -> Status {
    SpillWriter writer(*path, spill_->block_bytes(), spill_->injector());
    TMDB_RETURN_IF_ERROR(writer.Open());
    std::string payload;
    EncodeValue(entry->value, &payload);
    TMDB_RETURN_IF_ERROR(writer.Append(payload));
    return writer.Finish();
  }();
  if (!st.ok()) {
    spill_->RemoveFile(*path);
    return false;
  }
  entry->state = Entry::State::kOnDisk;
  entry->disk_path = std::move(*path);
  entry->value = Value();
  return true;
}

uint64_t SubplanCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t SubplanCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t SubplanCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

uint64_t SubplanCache::disk_evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_evictions_;
}

uint64_t SubplanCache::disk_faults() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_faults_;
}

uint64_t SubplanCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return res_.held();
}

Result<Value> SubplanRunner::EvaluateSubplan(const SubplanBase& subplan,
                                             const Environment& env) {
  // Subplan-entry checkpoint: keeps the guard invariant alive even when
  // every evaluation is a cache hit.
  if (guard_ != nullptr) TMDB_RETURN_IF_ERROR(guard_->Check());
  const auto* plan_subplan = dynamic_cast<const PlanSubplan*>(&subplan);
  if (cache_ == nullptr || plan_subplan == nullptr) {
    stats_->subplan_evals++;
    return Compute(subplan, env);
  }
  TMDB_ASSIGN_OR_RETURN(Value key,
                        EvalCorrelationKey(plan_subplan->signature(), env));
  TMDB_ASSIGN_OR_RETURN(std::optional<Value> cached,
                        cache_->Acquire(&subplan, key));
  if (adaptive_ != nullptr) {
    // Observed-hit-ratio feedback for strategy = auto. On a miss the switch
    // fires *before* computing — the whole point is not paying for another
    // uncacheable evaluation — so the computing entry this thread holds
    // must be abandoned to release its waiters (they unwind with the same
    // switch status).
    Status adapt = adaptive_->Observe(cached.has_value());
    if (!adapt.ok()) {
      if (!cached.has_value()) cache_->Abandon(&subplan, key, adapt);
      return adapt;
    }
  }
  if (cached.has_value()) return std::move(*cached);
  stats_->subplan_evals++;
  Result<Value> computed = Compute(subplan, env);
  if (!computed.ok()) {
    cache_->Abandon(&subplan, key, computed.status());
    return computed;
  }
  TMDB_RETURN_IF_ERROR(cache_->Fulfill(&subplan, key, *computed));
  return computed;
}

Result<Value> SubplanRunner::Compute(const SubplanBase& subplan,
                                     const Environment& env) {
  // Only PlanSubplan implements SubplanBase in this engine.
  const auto& plan_subplan = static_cast<const PlanSubplan&>(subplan);
  auto it = plans_.find(&subplan);
  if (it == plans_.end()) {
    TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr physical,
                          Executor::BuildNaivePlan(plan_subplan.plan()));
    it = plans_.emplace(&subplan, std::move(physical)).first;
  }
  ExecContext ctx;
  ctx.outer_env = &env;
  // Re-entrant: nested subplans evaluate through this same runner, so they
  // share the cache, guard, and spill manager of the run.
  ctx.subplans = this;
  ctx.stats = stats_;
  ctx.guard = guard_;
  ctx.spill = spill_;
  // Subplans stay serial inside (no scheduler handle): each distinct
  // correlation value runs the plan once, where per-execution fan-out
  // overhead would swamp any gain — and morsel workers must never dispatch
  // nested morsel sets. Parallelism comes from forking runners across
  // morsels.
  TMDB_ASSIGN_OR_RETURN(std::vector<Value> rows,
                        CollectRows(it->second.get(), &ctx));
  return Value::Set(std::move(rows));
}

}  // namespace tmdb
