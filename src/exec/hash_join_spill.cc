// Grace-style spill path of HashJoinOp (all join modes, nest join
// included). Engaged by Open/BuildTables when a memory-budget trip is
// spill-eligible; see the class comment in hash_join.h for the invariants
// (co-partitioning of equal keys, tag-restored output order, guard refund).

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/string_util.h"
#include "exec/hash_join.h"
#include "exec/spill_util.h"
#include "spill/partition.h"
#include "spill/spill_file.h"
#include "spill/spill_manager.h"
#include "spill/value_codec.h"

namespace tmdb {

bool HashJoinOp::SpillEligible(const ExecContext* ctx, const Status& s) const {
  return SpillEligibleTrip(ctx, s);
}

Status HashJoinOp::SpillBuildAndProbe(ExecContext* ctx,
                                      std::vector<Value> build_rows,
                                      bool right_open) {
  spilled_ = true;
  materialized_ = true;
  SpillManager* mgr = ctx->spill;
  FaultInjector* inj = SpillInjectorOf(ctx);

  // Everything the reservation covered either moves to disk below or is
  // freed as it goes — refund it all so the guard's accounting tracks what
  // is actually resident. (Writer block buffers are small and bounded:
  // 2 × fanout × block_bytes, all freed before partitions are processed.)
  build_res_.Release();

  std::vector<SpillPart> parts(kSpillFanout);
  {
    // Write-out sheds memory; suspend only the memory comparison (cancel,
    // deadline, max_rows, and injected faults stay live — see QueryGuard).
    MemoryCheckSuspension suspend(ctx->guard);
    std::string scratch;

    // --- build side out ---
    std::vector<std::unique_ptr<SpillWriter>> writers(kSpillFanout);
    for (size_t p = 0; p < kSpillFanout; ++p) {
      TMDB_ASSIGN_OR_RETURN(parts[p].build_path,
                            mgr->NewFilePath(StrCat("hj-build-d0-p", p)));
      writers[p] = std::make_unique<SpillWriter>(parts[p].build_path,
                                                 mgr->block_bytes(), inj);
      TMDB_RETURN_IF_ERROR(writers[p]->Open());
    }
    auto spill_build_row = [&](Value row) -> Status {
      TMDB_ASSIGN_OR_RETURN(Value key, EvalCompositeKey(right_keys_,
                                                        spec_.right_var,
                                                        row, ctx));
      const size_t p = SpillPartitionOf(key.Hash(), /*level=*/0);
      scratch.clear();
      EncodeValue(key, &scratch);
      EncodeValue(row, &scratch);
      TMDB_RETURN_IF_ERROR(writers[p]->Append(scratch));
      if (writers[p]->TookBlockBoundary()) TMDB_RETURN_IF_ERROR(CheckGuard(ctx));
      return Status::OK();
    };
    for (size_t i = 0; i < build_rows.size(); ++i) {
      TMDB_RETURN_IF_ERROR(PeriodicSpillGuardCheck(ctx, i));
      Value row = std::move(build_rows[i]);
      build_rows[i] = Value();  // free the rep promptly; memory falls as we go
      TMDB_RETURN_IF_ERROR(spill_build_row(std::move(row)));
    }
    build_rows.clear();
    build_rows.shrink_to_fit();
    if (right_open) {
      std::vector<Value> batch;
      while (true) {
        TMDB_RETURN_IF_ERROR(CheckGuard(ctx));
        batch.clear();
        TMDB_ASSIGN_OR_RETURN(size_t got,
                              right_->NextBatch(&batch, kExecBatchSize));
        if (got == 0) break;
        ctx->stats->rows_built += got;
        for (Value& row : batch) {
          TMDB_RETURN_IF_ERROR(spill_build_row(std::move(row)));
        }
      }
    }
    right_->Close();
    for (size_t p = 0; p < kSpillFanout; ++p) {
      TMDB_RETURN_IF_ERROR(writers[p]->Finish());
      ctx->stats->spill_bytes_written += writers[p]->stats().bytes;
    }
    ctx->stats->spill_partitions += kSpillFanout;

    // --- probe side out, co-partitioned on the same hash ---
    TMDB_RETURN_IF_ERROR(left_->Open(ctx));
    std::vector<std::unique_ptr<SpillWriter>> pwriters(kSpillFanout);
    for (size_t p = 0; p < kSpillFanout; ++p) {
      TMDB_ASSIGN_OR_RETURN(parts[p].probe_path,
                            mgr->NewFilePath(StrCat("hj-probe-d0-p", p)));
      pwriters[p] = std::make_unique<SpillWriter>(parts[p].probe_path,
                                                  mgr->block_bytes(), inj);
      TMDB_RETURN_IF_ERROR(pwriters[p]->Open());
    }
    uint64_t tag = 0;  // original left-row index; restores output order
    std::vector<Value> batch;
    while (true) {
      TMDB_RETURN_IF_ERROR(CheckGuard(ctx));
      batch.clear();
      TMDB_ASSIGN_OR_RETURN(size_t got, left_->NextBatch(&batch,
                                                         kExecBatchSize));
      if (got == 0) break;
      for (Value& left_row : batch) {
        TMDB_ASSIGN_OR_RETURN(Value key, EvalCompositeKey(left_keys_,
                                                          spec_.left_var,
                                                          left_row, ctx));
        const size_t p = SpillPartitionOf(key.Hash(), /*level=*/0);
        scratch.clear();
        PutVarint(tag++, &scratch);
        EncodeValue(key, &scratch);
        EncodeValue(left_row, &scratch);
        left_row = Value();
        TMDB_RETURN_IF_ERROR(pwriters[p]->Append(scratch));
        if (pwriters[p]->TookBlockBoundary()) {
          TMDB_RETURN_IF_ERROR(CheckGuard(ctx));
        }
      }
    }
    left_->Close();
    for (size_t p = 0; p < kSpillFanout; ++p) {
      TMDB_RETURN_IF_ERROR(pwriters[p]->Finish());
      ctx->stats->spill_bytes_written += pwriters[p]->stats().bytes;
    }
  }

  // --- one partition at a time, recursing where one still overflows ---
  std::vector<std::pair<uint64_t, Value>> tagged;
  for (size_t p = 0; p < kSpillFanout; ++p) {
    TMDB_RETURN_IF_ERROR(ProcessSpillPartition(ctx, parts[p], /*depth=*/0,
                                               &tagged));
  }

  // Restore the original probe order bit for bit: tags are left-row
  // indexes, and the stable sort keeps each row's outputs in bucket order.
  std::stable_sort(
      tagged.begin(), tagged.end(),
      [](const std::pair<uint64_t, Value>& a,
         const std::pair<uint64_t, Value>& b) { return a.first < b.first; });
  output_.reserve(tagged.size());
  for (auto& entry : tagged) output_.push_back(std::move(entry.second));
  return Status::OK();
}

Status HashJoinOp::ProcessSpillPartition(
    ExecContext* ctx, const SpillPart& part, int depth,
    std::vector<std::pair<uint64_t, Value>>* out) {
  SpillManager* mgr = ctx->spill;
  FaultInjector* inj = SpillInjectorOf(ctx);
  const size_t out_base = out->size();
  ctx->stats->spill_max_depth =
      std::max<uint64_t>(ctx->stats->spill_max_depth,
                         static_cast<uint64_t>(depth) + 1);

  // Load this partition's build half into an in-memory table. The memory
  // check is live again here: a trip means this partition alone exceeds the
  // budget, and we recurse instead of failing (up to the depth bound).
  BuildMap table;
  GuardReservation slots;
  slots.Reset(ctx->guard);
  SpillReader build_reader(part.build_path, inj);
  Status load = [&]() -> Status {
    TMDB_RETURN_IF_ERROR(build_reader.Open());
    size_t i = 0;
    while (true) {
      std::string_view rec;
      bool eof = false;
      TMDB_RETURN_IF_ERROR(build_reader.Next(&rec, &eof));
      if (eof) break;
      if (build_reader.TookBlockBoundary()) {
        TMDB_RETURN_IF_ERROR(CheckGuard(ctx));
      }
      TMDB_RETURN_IF_ERROR(PeriodicSpillGuardCheck(ctx, i++));
      size_t pos = 0;
      Value key;
      Value row;
      TMDB_RETURN_IF_ERROR(DecodeValue(rec, &pos, &key));
      TMDB_RETURN_IF_ERROR(DecodeValue(rec, &pos, &row));
      TMDB_RETURN_IF_ERROR(slots.Add(sizeof(Value)));
      table[std::move(key)].push_back(std::move(row));
    }
    return Status::OK();
  }();
  ctx->stats->spill_bytes_read += build_reader.stats().bytes;
  build_reader.Close();
  if (!load.ok()) {
    table.clear();
    slots.Release();
    const bool memory_trip =
        load.code() == StatusCode::kResourceExhausted &&
        ctx->guard != nullptr && ctx->guard->last_trip_was_memory();
    if (memory_trip && depth < kMaxSpillDepth) {
      return RepartitionAndRecurse(ctx, part, depth, out);
    }
    if (memory_trip) {
      return load.WithContext(
          StrCat("spill recursion limit ", kMaxSpillDepth,
                 " reached; partition too skewed for the memory budget"));
    }
    return load;
  }

  // Stream the co-partitioned probe half against the table. Decoded left
  // rows are transient; only output rows stay resident (charged below).
  SpillReader probe_reader(part.probe_path, inj);
  Status probe = [&]() -> Status {
    TMDB_RETURN_IF_ERROR(probe_reader.Open());
    std::vector<Value> row_out;
    size_t i = 0;
    while (true) {
      std::string_view rec;
      bool eof = false;
      TMDB_RETURN_IF_ERROR(probe_reader.Next(&rec, &eof));
      if (eof) break;
      if (probe_reader.TookBlockBoundary()) {
        TMDB_RETURN_IF_ERROR(CheckGuard(ctx));
      }
      TMDB_RETURN_IF_ERROR(PeriodicSpillGuardCheck(ctx, i++));
      size_t pos = 0;
      uint64_t tag = 0;
      Value key;
      Value left_row;
      TMDB_RETURN_IF_ERROR(GetVarint(rec, &pos, &tag));
      TMDB_RETURN_IF_ERROR(DecodeValue(rec, &pos, &key));
      TMDB_RETURN_IF_ERROR(DecodeValue(rec, &pos, &left_row));
      ctx->stats->hash_probes++;
      auto it = table.find(key);
      const std::vector<Value>* bucket =
          it == table.end() ? nullptr : &it->second;
      row_out.clear();
      TMDB_RETURN_IF_ERROR(ProcessMatch(left_row, bucket, ctx, &row_out));
      if (!row_out.empty()) {
        TMDB_RETURN_IF_ERROR(build_res_.Add(
            row_out.size() * sizeof(std::pair<uint64_t, Value>)));
        for (Value& v : row_out) out->emplace_back(tag, std::move(v));
      }
    }
    return Status::OK();
  }();
  ctx->stats->spill_bytes_read += probe_reader.stats().bytes;
  probe_reader.Close();
  slots.Release();
  table.clear();
  if (!probe.ok()) {
    // A memory trip *during the probe* means table + accumulated output no
    // longer fit together. Recursing still helps — it shrinks the table's
    // share — so drop this partition's partial output (refunding its
    // charge) and retry one level deeper. Only when the output alone
    // exhausts the budget does the recursion bottom out and fail.
    const bool memory_trip =
        probe.code() == StatusCode::kResourceExhausted &&
        ctx->guard != nullptr && ctx->guard->last_trip_was_memory();
    if (memory_trip && depth < kMaxSpillDepth) {
      build_res_.Shrink((out->size() - out_base) *
                        sizeof(std::pair<uint64_t, Value>));
      out->resize(out_base);
      return RepartitionAndRecurse(ctx, part, depth, out);
    }
    if (memory_trip) {
      return probe.WithContext(
          StrCat("spill recursion limit ", kMaxSpillDepth,
                 " reached; join output alone exceeds the memory budget"));
    }
    return probe;
  }

  // This partition is fully joined; its files go away now, not at query
  // end, so peak disk stays one recursion path, not the whole input.
  mgr->RemoveFile(part.build_path);
  mgr->RemoveFile(part.probe_path);
  return Status::OK();
}

Status HashJoinOp::RepartitionAndRecurse(
    ExecContext* ctx, const SpillPart& part, int depth,
    std::vector<std::pair<uint64_t, Value>>* out) {
  SpillManager* mgr = ctx->spill;
  FaultInjector* inj = SpillInjectorOf(ctx);
  std::vector<SpillPart> subparts(kSpillFanout);
  {
    MemoryCheckSuspension suspend(ctx->guard);
    for (int side = 0; side < 2; ++side) {
      const bool is_build = side == 0;
      const std::string& src = is_build ? part.build_path : part.probe_path;
      std::vector<std::unique_ptr<SpillWriter>> writers(kSpillFanout);
      for (size_t p = 0; p < kSpillFanout; ++p) {
        std::string* dst =
            is_build ? &subparts[p].build_path : &subparts[p].probe_path;
        TMDB_ASSIGN_OR_RETURN(
            *dst, mgr->NewFilePath(StrCat("hj-", is_build ? "build" : "probe",
                                          "-d", depth + 1, "-p", p)));
        writers[p] =
            std::make_unique<SpillWriter>(*dst, mgr->block_bytes(), inj);
        TMDB_RETURN_IF_ERROR(writers[p]->Open());
      }
      SpillReader reader(src, inj);
      Status moved = [&]() -> Status {
        TMDB_RETURN_IF_ERROR(reader.Open());
        size_t i = 0;
        while (true) {
          std::string_view rec;
          bool eof = false;
          TMDB_RETURN_IF_ERROR(reader.Next(&rec, &eof));
          if (eof) break;
          if (reader.TookBlockBoundary()) TMDB_RETURN_IF_ERROR(CheckGuard(ctx));
          TMDB_RETURN_IF_ERROR(PeriodicSpillGuardCheck(ctx, i++));
          // Route on the key alone; the record's bytes move verbatim, so a
          // row is never re-encoded on its way down the recursion.
          size_t pos = 0;
          if (!is_build) {
            uint64_t tag = 0;
            TMDB_RETURN_IF_ERROR(GetVarint(rec, &pos, &tag));
          }
          Value key;
          TMDB_RETURN_IF_ERROR(DecodeValue(rec, &pos, &key));
          const size_t p = SpillPartitionOf(key.Hash(), depth + 1);
          TMDB_RETURN_IF_ERROR(writers[p]->Append(rec));
          if (writers[p]->TookBlockBoundary()) {
            TMDB_RETURN_IF_ERROR(CheckGuard(ctx));
          }
        }
        return Status::OK();
      }();
      ctx->stats->spill_bytes_read += reader.stats().bytes;
      reader.Close();
      TMDB_RETURN_IF_ERROR(moved);
      for (size_t p = 0; p < kSpillFanout; ++p) {
        TMDB_RETURN_IF_ERROR(writers[p]->Finish());
        ctx->stats->spill_bytes_written += writers[p]->stats().bytes;
      }
      if (is_build) ctx->stats->spill_partitions += kSpillFanout;
      mgr->RemoveFile(src);
    }
  }
  for (size_t p = 0; p < kSpillFanout; ++p) {
    TMDB_RETURN_IF_ERROR(ProcessSpillPartition(ctx, subparts[p], depth + 1,
                                               out));
  }
  return Status::OK();
}

}  // namespace tmdb
