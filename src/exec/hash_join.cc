#include "exec/hash_join.h"

#include <utility>

#include "base/string_util.h"
#include "values/value_ops.h"

namespace tmdb {

Status HashJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  build_.clear();
  current_left_.reset();
  current_bucket_ = nullptr;
  bucket_pos_ = 0;
  left_matched_ = false;

  // Build phase: hash the right input on its composite key.
  TMDB_RETURN_IF_ERROR(right_->Open(ctx));
  while (true) {
    TMDB_ASSIGN_OR_RETURN(std::optional<Value> row, right_->Next());
    if (!row.has_value()) break;
    TMDB_ASSIGN_OR_RETURN(
        Value key, EvalCompositeKey(right_keys_, spec_.right_var, *row, ctx_));
    build_[std::move(key)].push_back(std::move(*row));
    ctx_->stats->rows_built++;
  }
  right_->Close();
  return left_->Open(ctx);
}

Result<bool> HashJoinOp::AdvanceLeft() {
  TMDB_ASSIGN_OR_RETURN(std::optional<Value> row, left_->Next());
  if (!row.has_value()) {
    current_left_.reset();
    return false;
  }
  current_left_ = std::move(*row);
  TMDB_ASSIGN_OR_RETURN(
      Value key,
      EvalCompositeKey(left_keys_, spec_.left_var, *current_left_, ctx_));
  ctx_->stats->hash_probes++;
  auto it = build_.find(key);
  current_bucket_ = it == build_.end() ? nullptr : &it->second;
  bucket_pos_ = 0;
  left_matched_ = false;
  return true;
}

Result<std::optional<Value>> HashJoinOp::Next() {
  switch (spec_.mode) {
    case JoinMode::kInner:
    case JoinMode::kLeftOuter: {
      while (true) {
        if (!current_left_.has_value()) {
          TMDB_ASSIGN_OR_RETURN(bool more, AdvanceLeft());
          if (!more) return std::optional<Value>();
        }
        if (current_bucket_ != nullptr) {
          while (bucket_pos_ < current_bucket_->size()) {
            const Value& right_row = (*current_bucket_)[bucket_pos_++];
            TMDB_ASSIGN_OR_RETURN(
                bool match,
                EvalJoinPred(spec_, *current_left_, right_row, ctx_));
            if (match) {
              left_matched_ = true;
              TMDB_ASSIGN_OR_RETURN(Value out,
                                    ConcatTuples(*current_left_, right_row));
              ctx_->stats->rows_emitted++;
              return std::optional<Value>(std::move(out));
            }
          }
        }
        if (spec_.mode == JoinMode::kLeftOuter && !left_matched_) {
          TMDB_ASSIGN_OR_RETURN(
              Value out, ConcatTuples(*current_left_,
                                      NullTupleOfType(spec_.right_type)));
          current_left_.reset();
          ctx_->stats->rows_emitted++;
          return std::optional<Value>(std::move(out));
        }
        current_left_.reset();
      }
    }

    case JoinMode::kSemi:
    case JoinMode::kAnti: {
      const bool want_match = spec_.mode == JoinMode::kSemi;
      while (true) {
        TMDB_ASSIGN_OR_RETURN(bool more, AdvanceLeft());
        if (!more) return std::optional<Value>();
        bool matched = false;
        if (current_bucket_ != nullptr) {
          for (const Value& right_row : *current_bucket_) {
            TMDB_ASSIGN_OR_RETURN(
                bool match,
                EvalJoinPred(spec_, *current_left_, right_row, ctx_));
            if (match) {
              matched = true;
              break;
            }
          }
        }
        if (matched == want_match) {
          ctx_->stats->rows_emitted++;
          Value out = std::move(*current_left_);
          current_left_.reset();
          return std::optional<Value>(std::move(out));
        }
      }
    }

    case JoinMode::kNestJoin: {
      TMDB_ASSIGN_OR_RETURN(bool more, AdvanceLeft());
      if (!more) return std::optional<Value>();
      std::vector<Value> group;
      if (current_bucket_ != nullptr) {
        for (const Value& right_row : *current_bucket_) {
          TMDB_ASSIGN_OR_RETURN(
              bool match, EvalJoinPred(spec_, *current_left_, right_row, ctx_));
          if (match) {
            TMDB_ASSIGN_OR_RETURN(
                Value g, EvalJoinFunc(spec_, *current_left_, right_row, ctx_));
            group.push_back(std::move(g));
          }
        }
      }
      TMDB_ASSIGN_OR_RETURN(
          Value out, ExtendTuple(*current_left_, spec_.label,
                                 Value::Set(std::move(group))));
      current_left_.reset();
      ctx_->stats->rows_emitted++;
      return std::optional<Value>(std::move(out));
    }
  }
  return Status::Internal("unhandled join mode");
}

void HashJoinOp::Close() {
  build_.clear();
  current_left_.reset();
  current_bucket_ = nullptr;
  left_->Close();
}

std::string HashJoinOp::Describe() const {
  std::vector<std::string> keys;
  keys.reserve(left_keys_.size());
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    keys.push_back(left_keys_[i].ToString() + " = " +
                   right_keys_[i].ToString());
  }
  std::string out =
      StrCat("HashJoin<", JoinModeName(spec_.mode), ">[", spec_.left_var, ",",
             spec_.right_var, " : keys(", Join(keys, ", "), ")");
  if (!(spec_.pred.is_literal() && spec_.pred.literal_value().is_bool() &&
        spec_.pred.literal_value().AsBool())) {
    out += StrCat(", residual ", spec_.pred.ToString());
  }
  if (spec_.mode == JoinMode::kNestJoin) {
    out += StrCat(", G = ", spec_.func.ToString(), "; ", spec_.label);
  }
  out += "]";
  return out;
}

}  // namespace tmdb
