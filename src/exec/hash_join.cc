#include "exec/hash_join.h"

#include <algorithm>
#include <utility>

#include "base/string_util.h"
#include "exec/parallel_util.h"
#include "values/value_ops.h"

namespace tmdb {

namespace {

/// Guard check once per kExecBatchSize loop iterations (`i` counts up).
inline Status PeriodicGuardCheck(const ExecContext* ctx, size_t i) {
  if ((i & (kExecBatchSize - 1)) == 0) return CheckGuard(ctx);
  return Status::OK();
}

}  // namespace

Status HashJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  partitions_.clear();
  probe_rows_ = 0;
  current_left_.reset();
  current_bucket_ = nullptr;
  bucket_pos_ = 0;
  left_matched_ = false;
  materialized_ = false;
  output_.clear();
  output_pos_ = 0;
  spilled_ = false;
  build_res_.Reset(ctx->guard);

  fast_active_ = false;
  build_rows_.clear();
  arena_.Reset();
  fk_i64_ = nullptr;
  fk_f64_ = nullptr;
  fk_codes_ = nullptr;
  heads_ = nullptr;
  next_ = nullptr;
  bucket_mask_ = 0;
  fast_dict_ = StringDict();
  probe_batch_.clear();
  serve_.clear();
  serve_pos_ = 0;
  memo_.clear();
  memo_enabled_ = false;
  pred_is_true_ = spec_.pred.is_literal() &&
                  spec_.pred.literal_value().is_bool() &&
                  spec_.pred.literal_value().AsBool();
  func_is_right_ident_ =
      spec_.func.is_var() && spec_.func.var_name() == spec_.right_var;

  TMDB_RETURN_IF_ERROR(BuildTables(ctx));
  // Nest-join group memo: re-probing an already-grouped key hands back the
  // same set value. Serial only (no shared mutation under morsels) and only
  // without a memory budget — memoised groups are memory the row path does
  // not hold, and must not shift when a budget trips.
  memo_enabled_ = fast_active_ && spec_.mode == JoinMode::kNestJoin &&
                  pred_is_true_ && func_is_right_ident_ &&
                  !ctx->parallel_enabled() &&
                  (ctx->guard == nullptr ||
                   ctx->guard->limits().memory_budget_bytes == 0);
  if (spilled_) {
    // The spill path consumed both inputs and filled output_ already.
    return Status::OK();
  }
  TMDB_RETURN_IF_ERROR(left_->Open(ctx));

  // Morsel-parallel probe: subplan-bearing probe expressions are handled
  // too — each worker gets its own forked subplan evaluator, all sharing
  // the run's memo cache.
  if (ctx->parallel_enabled()) {
    const uint64_t held_before = build_res_.held();
    Status probed = ParallelProbe();
    if (probed.ok()) {
      materialized_ = true;
    } else if (SpillEligible(ctx, probed)) {
      // The build table fits but materialising the probe side blew the
      // budget. Fall back to the streaming probe, which holds one left row
      // at a time: refund the probe scratch (its values freed on unwind)
      // and restart the left input.
      build_res_.Shrink(build_res_.held() - held_before);
      output_.clear();
      output_.shrink_to_fit();
      output_pos_ = 0;
      left_->Close();
      TMDB_RETURN_IF_ERROR(left_->Open(ctx));
    } else {
      return probed;
    }
  }
  return Status::OK();
}

Status HashJoinOp::BuildTables(ExecContext* ctx) {
  // Build phase: materialise the right input, hash it on its composite key.
  TMDB_RETURN_IF_ERROR(right_->Open(ctx));
  std::vector<Value> rows;
  Status drained = Status::OK();
  while (true) {
    Result<size_t> got = right_->NextBatch(&rows, kExecBatchSize);
    if (!got.ok()) {
      drained = got.status();
      break;
    }
    if (*got == 0) break;
    ctx->stats->rows_built += *got;
    // Charge the build-side row slots (and checkpoint) per batch, so a
    // memory budget trips during materialisation, not after.
    if (Status s = build_res_.Add(*got * sizeof(Value)); !s.ok()) {
      drained = s;
      break;
    }
  }
  if (!drained.ok()) {
    if (!SpillEligible(ctx, drained)) {
      right_->Close();
      return drained;
    }
    // The rows drained so far are intact; divert to disk and keep draining.
    return SpillBuildAndProbe(ctx, std::move(rows), /*right_open=*/true);
  }
  right_->Close();

  // The fast path stands down under a memory budget: its arena block and
  // retained build_rows_ change the memory profile through the probe, which
  // would turn budget trips the row path survives (by spilling during the
  // build) into probe-phase failures. Budgeted runs keep the row build's
  // proven degradation story.
  const bool budgeted = ctx->guard != nullptr &&
                        ctx->guard->limits().memory_budget_bytes != 0;
  if (fast_spec_.has_value() && !budgeted) {
    Result<bool> fast = BuildFast(ctx, &rows);
    if (!fast.ok()) {
      arena_.Reset();
      if (!SpillEligible(ctx, fast.status())) return fast.status();
      // BuildFast never disturbs `rows`; divert them to disk.
      return SpillBuildAndProbe(ctx, std::move(rows), /*right_open=*/false);
    }
    if (*fast) {
      fast_active_ = true;
      return Status::OK();
    }
    // A build key deviated from the static kind contract (NULL, coerced
    // Int in a Real field, NaN): release the arena and fall back to the
    // row build, which handles every kind combination.
    arena_.Reset();
    fast_dict_ = StringDict();
  }

  Status built = BuildInMemory(ctx, &rows);
  if (!built.ok()) {
    partitions_.clear();
    if (!SpillEligible(ctx, built)) return built;
    // Key evaluation never disturbs `rows` (see BuildInMemory), so they are
    // salvageable here even though the build tripped mid-way.
    return SpillBuildAndProbe(ctx, std::move(rows), /*right_open=*/false);
  }
  return Status::OK();
}

Status HashJoinOp::BuildInMemory(ExecContext* ctx, std::vector<Value>* rows_in) {
  std::vector<Value>& rows = *rows_in;
  const size_t n = rows.size();
  const bool parallel = ctx->parallel_enabled();
  const size_t num_partitions =
      parallel ? static_cast<size_t>(ctx->num_threads) : 1;
  partitions_.assign(num_partitions, BuildMap());

  // Pass A: evaluate every composite key up front, leaving `rows` untouched
  // — a memory trip in this pass is salvageable by the spill path. The
  // scratch slots are charged now and refunded when the scratch dies below.
  const uint64_t scratch_bytes =
      n * sizeof(Value) + (parallel ? n * sizeof(uint64_t) : 0);
  TMDB_RETURN_IF_ERROR(build_res_.Add(scratch_bytes));
  std::vector<Value> keys(n);
  std::vector<uint64_t> hashes(parallel ? n : 0);
  if (!parallel) {
    for (size_t i = 0; i < n; ++i) {
      TMDB_RETURN_IF_ERROR(PeriodicGuardCheck(ctx, i));
      TMDB_ASSIGN_OR_RETURN(keys[i], EvalCompositeKey(right_keys_,
                                                      spec_.right_var,
                                                      rows[i], ctx));
    }
  } else {
    // Parallel stage 1 (morsels): evaluate the key expressions once per
    // build row and pre-compute the key hashes (cached inside the Value
    // rep, so partitioning and map insertion below re-use them).
    std::vector<MorselRange> morsels = SplitMorsels(n, ctx->num_threads);
    std::vector<ExecStats> key_stats(morsels.size());
    std::vector<std::unique_ptr<SubplanEvaluator>> key_evals =
        ForkSubplanEvaluators(ctx->subplans, &key_stats);
    TMDB_RETURN_IF_ERROR(ParallelForMorsels(
        ctx->sched, ctx->guard, morsels,
        [&](size_t m, MorselRange range) -> Status {
          ExecContext wctx;
          wctx.outer_env = ctx->outer_env;
          wctx.subplans =
              key_evals[m] != nullptr ? key_evals[m].get() : ctx->subplans;
          wctx.stats = &key_stats[m];
          wctx.guard = ctx->guard;
          for (size_t i = range.begin; i < range.end; ++i) {
            TMDB_RETURN_IF_ERROR(PeriodicGuardCheck(&wctx, i - range.begin));
            TMDB_ASSIGN_OR_RETURN(keys[i],
                                  EvalCompositeKey(right_keys_, spec_.right_var,
                                                   rows[i], &wctx));
            hashes[i] = keys[i].Hash();
          }
          return Status::OK();
        }));
    AccumulateStats(key_stats, ctx->stats);
  }

  // Pass B: move keys and rows into the hash maps. No fresh tracked values
  // are created here, so this pass cannot trip the memory budget and strand
  // half-moved rows.
  if (!parallel) {
    BuildMap& table = partitions_[0];
    table.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      TMDB_RETURN_IF_ERROR(PeriodicGuardCheck(ctx, i));
      table[std::move(keys[i])].push_back(std::move(rows[i]));
    }
  } else {
    // Parallel stage 2 (one task per partition): each worker owns one
    // disjoint partition and scans the row sequence in order, so every
    // bucket receives its rows in build-input order — exactly the serial
    // insertion order.
    std::vector<MorselRange> one_per_partition;
    one_per_partition.reserve(num_partitions);
    for (size_t p = 0; p < num_partitions; ++p) {
      one_per_partition.push_back({p, p + 1});
    }
    TMDB_RETURN_IF_ERROR(ParallelForMorsels(
        ctx->sched, ctx->guard, one_per_partition,
        [&](size_t, MorselRange range) -> Status {
          const size_t p = range.begin;
          BuildMap& table = partitions_[p];
          table.reserve(n / num_partitions + 1);
          for (size_t i = 0; i < n; ++i) {
            TMDB_RETURN_IF_ERROR(PeriodicGuardCheck(ctx, i));
            if (hashes[i] % num_partitions != p) continue;
            // Disjoint: row i is moved by exactly one partition task.
            table[std::move(keys[i])].push_back(std::move(rows[i]));
          }
          return Status::OK();
        }));
  }

  // The scratch vectors die now; refund their slots so the charge does not
  // linger as phantom memory for the rest of the query.
  keys.clear();
  keys.shrink_to_fit();
  hashes.clear();
  hashes.shrink_to_fit();
  build_res_.Shrink(scratch_bytes);
  rows.clear();
  rows.shrink_to_fit();
  return Status::OK();
}

const std::vector<Value>* HashJoinOp::FindBucket(const Value& key) const {
  const BuildMap& table =
      partitions_.size() == 1
          ? partitions_[0]
          : partitions_[key.Hash() % partitions_.size()];
  auto it = table.find(key);
  return it == table.end() ? nullptr : &it->second;
}

namespace {

/// Match iterator over a row-path map bucket (all rows share the probe key).
struct VecIter {
  const std::vector<Value>* bucket;  // may be nullptr (no such key)
  size_t i = 0;

  bool done() const { return bucket == nullptr || i >= bucket->size(); }
  const Value& row() const { return (*bucket)[i]; }
  void advance() { ++i; }
};

}  // namespace

/// Match iterator over a fast-table hash chain: walks `next` links from a
/// bucket head, skipping entries whose raw key differs from the probe key
/// (chains mix keys that share a bucket; map buckets do not).
struct HashJoinOp::FastIter {
  FastKeySpec::Kind kind = FastKeySpec::Kind::kI64;
  const std::vector<Value>* rows = nullptr;
  const uint32_t* next = nullptr;
  const int64_t* ki = nullptr;
  const double* kf = nullptr;
  const uint32_t* kc = nullptr;
  int64_t pi = 0;  // probe key (kind-specific)
  double pf = 0;
  uint32_t pc = 0;
  uint32_t j = kNil;

  bool KeyEq(uint32_t x) const {
    switch (kind) {
      case FastKeySpec::Kind::kI64:
        return ki[x] == pi;
      case FastKeySpec::Kind::kF64:
        return F64KeyEq(kf[x], pf);
      case FastKeySpec::Kind::kStr:
        return kc[x] == pc;
    }
    return false;
  }
  void Skip() {
    while (j != kNil && !KeyEq(j)) j = next[j];
  }
  bool done() const { return j == kNil; }
  const Value& row() const { return (*rows)[j]; }
  void advance() {
    j = next[j];
    Skip();
  }
};

template <typename Iter>
Status HashJoinOp::ProcessMatchIt(const Value& left_row, Iter it,
                                  ExecContext* ctx,
                                  std::vector<Value>* out) const {
  // A literal-true residual still costs one predicate_eval per pair — the
  // counter says how many pairs were considered, not how much work the
  // evaluator did.
  auto eval_pred = [&](const Value& right_row) -> Result<bool> {
    if (pred_is_true_) {
      ctx->stats->predicate_evals++;
      return true;
    }
    return EvalJoinPred(spec_, left_row, right_row, ctx);
  };
  switch (spec_.mode) {
    case JoinMode::kInner:
    case JoinMode::kLeftOuter: {
      bool matched = false;
      for (; !it.done(); it.advance()) {
        const Value& right_row = it.row();
        TMDB_ASSIGN_OR_RETURN(bool match, eval_pred(right_row));
        if (match) {
          matched = true;
          TMDB_ASSIGN_OR_RETURN(Value o, ConcatTuples(left_row, right_row));
          out->push_back(std::move(o));
        }
      }
      if (spec_.mode == JoinMode::kLeftOuter && !matched) {
        TMDB_ASSIGN_OR_RETURN(
            Value o,
            ConcatTuples(left_row, NullTupleOfType(spec_.right_type)));
        out->push_back(std::move(o));
      }
      return Status::OK();
    }
    case JoinMode::kSemi:
    case JoinMode::kAnti: {
      const bool want_match = spec_.mode == JoinMode::kSemi;
      bool matched = false;
      for (; !it.done(); it.advance()) {
        TMDB_ASSIGN_OR_RETURN(bool match, eval_pred(it.row()));
        if (match) {
          matched = true;
          break;  // same early exit as the streaming path
        }
      }
      if (matched == want_match) out->push_back(left_row);
      return Status::OK();
    }
    case JoinMode::kNestJoin: {
      std::vector<Value> group;
      for (; !it.done(); it.advance()) {
        const Value& right_row = it.row();
        TMDB_ASSIGN_OR_RETURN(bool match, eval_pred(right_row));
        if (match) {
          if (func_is_right_ident_) {
            group.push_back(right_row);
          } else {
            TMDB_ASSIGN_OR_RETURN(
                Value g, EvalJoinFunc(spec_, left_row, right_row, ctx));
            group.push_back(std::move(g));
          }
        }
      }
      TMDB_ASSIGN_OR_RETURN(Value o, ExtendTuple(left_row, spec_.label,
                                                 Value::Set(std::move(group))));
      out->push_back(std::move(o));
      return Status::OK();
    }
  }
  return Status::Internal("unhandled join mode");
}

Status HashJoinOp::ProcessMatch(const Value& left_row,
                                const std::vector<Value>* bucket,
                                ExecContext* ctx,
                                std::vector<Value>* out) const {
  return ProcessMatchIt(left_row, VecIter{bucket}, ctx, out);
}

Status HashJoinOp::ProcessLeftRow(const Value& left_row, ExecContext* ctx,
                                  std::vector<Value>* out) const {
  if (fast_active_) return ProcessLeftRowFast(left_row, ctx, out);
  TMDB_ASSIGN_OR_RETURN(
      Value key, EvalCompositeKey(left_keys_, spec_.left_var, left_row, ctx));
  ctx->stats->hash_probes++;
  return ProcessMatchIt(left_row, VecIter{FindBucket(key)}, ctx, out);
}

Result<bool> HashJoinOp::BuildFast(ExecContext* ctx,
                                   std::vector<Value>* rows) {
  const FastKeySpec& spec = *fast_spec_;
  const size_t n = rows->size();
  if (n >= static_cast<size_t>(kNil)) return false;
  arena_.Bind(ctx->guard);
  fast_dict_ = StringDict();

  int64_t* ki = nullptr;
  double* kf = nullptr;
  uint32_t* kc = nullptr;
  switch (spec.kind) {
    case FastKeySpec::Kind::kI64: {
      TMDB_ASSIGN_OR_RETURN(ki, arena_.AllocateArray<int64_t>(n));
      break;
    }
    case FastKeySpec::Kind::kF64: {
      TMDB_ASSIGN_OR_RETURN(kf, arena_.AllocateArray<double>(n));
      break;
    }
    case FastKeySpec::Kind::kStr: {
      TMDB_ASSIGN_OR_RETURN(kc, arena_.AllocateArray<uint32_t>(n));
      break;
    }
  }

  for (size_t i = 0; i < n; ++i) {
    TMDB_RETURN_IF_ERROR(PeriodicGuardCheck(ctx, i));
    const Value* v = (*rows)[i].FindField(spec.right_field);
    if (v == nullptr) return false;
    switch (spec.kind) {
      case FastKeySpec::Kind::kI64:
        if (!v->is_int()) return false;
        ki[i] = v->AsInt();
        break;
      case FastKeySpec::Kind::kF64: {
        // Strictly Real and NaN-free: ResolveFastKeys's soundness argument
        // needs runtime-Real build keys, and NaN's tri-state "equal to
        // everything" cannot live in a hash table.
        if (!v->is_real()) return false;
        const double d = v->AsNumeric();
        if (d != d) return false;
        kf[i] = d;
        break;
      }
      case FastKeySpec::Kind::kStr:
        if (!v->is_string()) return false;
        kc[i] = fast_dict_.Intern(*v);
        break;
    }
  }

  size_t nb = 8;
  while (nb < 2 * n) nb <<= 1;
  uint32_t* heads = nullptr;
  uint32_t* next = nullptr;
  uint32_t* tails = nullptr;
  TMDB_ASSIGN_OR_RETURN(heads, arena_.AllocateArray<uint32_t>(nb));
  TMDB_ASSIGN_OR_RETURN(tails, arena_.AllocateArray<uint32_t>(nb));
  TMDB_ASSIGN_OR_RETURN(next, arena_.AllocateArray<uint32_t>(n));
  for (size_t b = 0; b < nb; ++b) heads[b] = kNil;
  bucket_mask_ = nb - 1;
  // Ascending-index tail appends keep each chain in build-input order —
  // the same per-key order the row path's bucket vectors preserve.
  for (size_t i = 0; i < n; ++i) {
    uint64_t h = 0;
    switch (spec.kind) {
      case FastKeySpec::Kind::kI64:
        h = HashI64Key(ki[i]);
        break;
      case FastKeySpec::Kind::kF64:
        h = HashF64Key(kf[i]);
        break;
      case FastKeySpec::Kind::kStr:
        h = Mix64(kc[i]);
        break;
    }
    const uint64_t b = h & bucket_mask_;
    const uint32_t id = static_cast<uint32_t>(i);
    if (heads[b] == kNil) {
      heads[b] = id;
    } else {
      next[tails[b]] = id;
    }
    tails[b] = id;
    next[id] = kNil;
  }

  fk_i64_ = ki;
  fk_f64_ = kf;
  fk_codes_ = kc;
  heads_ = heads;
  next_ = next;
  build_rows_ = std::move(*rows);
  return true;
}

Status HashJoinOp::ProcessLeftRowFast(const Value& left_row, ExecContext* ctx,
                                      std::vector<Value>* out) const {
  const FastKeySpec& spec = *fast_spec_;
  const Value* v = left_row.FindField(spec.left_field);
  if (v == nullptr) {
    // A malformed probe row: reproduce the row path exactly — evaluating
    // the key expression raises the error the row path would raise. (If it
    // somehow succeeds, no kind-exact build key can match; fall through to
    // a miss.)
    TMDB_RETURN_IF_ERROR(
        EvalCompositeKey(left_keys_, spec_.left_var, left_row, ctx).status());
  }
  ctx->stats->hash_probes++;

  FastIter it;
  it.kind = spec.kind;
  it.rows = &build_rows_;
  it.next = next_;
  it.ki = fk_i64_;
  it.kf = fk_f64_;
  it.kc = fk_codes_;
  it.j = kNil;
  if (v != nullptr && !build_rows_.empty()) {
    switch (spec.kind) {
      case FastKeySpec::Kind::kI64:
        if (v->is_int()) {
          it.pi = v->AsInt();
          it.j = heads_[HashI64Key(it.pi) & bucket_mask_];
        }
        break;
      case FastKeySpec::Kind::kF64:
        // Non-numeric (or NaN) probe keys miss: the build side is strictly
        // Real and NaN-free, so the row path's bucket lookup misses too.
        if (v->is_numeric()) {
          const double d = v->AsNumeric();
          if (!(d != d)) {
            it.pf = d;
            it.j = heads_[HashF64Key(d) & bucket_mask_];
          }
        }
        break;
      case FastKeySpec::Kind::kStr:
        if (v->is_string()) {
          const uint32_t code = fast_dict_.Lookup(*v);
          if (code != StringDict::kNoCode) {
            it.pc = code;
            it.j = heads_[Mix64(code) & bucket_mask_];
          }
        }
        break;
    }
    it.Skip();
  }

  if (memo_enabled_ && !it.done()) {
    // `it.j` is the first build row with this exact key — a stable identity
    // for the whole group.
    const uint32_t group_id = it.j;
    auto hit = memo_.find(group_id);
    if (hit != memo_.end()) {
      ctx->stats->predicate_evals += hit->second.second;
      TMDB_ASSIGN_OR_RETURN(
          Value o, ExtendTuple(left_row, spec_.label, hit->second.first));
      out->push_back(std::move(o));
      return Status::OK();
    }
    std::vector<Value> group;
    uint64_t matches = 0;
    for (FastIter g = it; !g.done(); g.advance()) {
      ctx->stats->predicate_evals++;
      ++matches;
      group.push_back(g.row());
    }
    Value set = Value::Set(std::move(group));
    memo_.emplace(group_id, std::make_pair(set, matches));
    TMDB_ASSIGN_OR_RETURN(Value o,
                          ExtendTuple(left_row, spec_.label, std::move(set)));
    out->push_back(std::move(o));
    return Status::OK();
  }

  return ProcessMatchIt(left_row, it, ctx, out);
}

Status HashJoinOp::ParallelProbe() {
  std::vector<Value> rows;
  while (true) {
    TMDB_ASSIGN_OR_RETURN(size_t got, left_->NextBatch(&rows, kExecBatchSize));
    if (got == 0) break;
    TMDB_RETURN_IF_ERROR(build_res_.Add(got * sizeof(Value)));
  }
  std::vector<MorselRange> morsels = SplitMorsels(rows.size(),
                                                  ctx_->num_threads);
  std::vector<std::vector<Value>> outputs(morsels.size());
  std::vector<ExecStats> local_stats(morsels.size());
  std::vector<std::unique_ptr<SubplanEvaluator>> probe_evals =
      ForkSubplanEvaluators(ctx_->subplans, &local_stats);
  TMDB_RETURN_IF_ERROR(ParallelForMorsels(
      ctx_->sched, ctx_->guard, morsels,
      [&](size_t m, MorselRange range) -> Status {
        ExecContext wctx;
        wctx.outer_env = ctx_->outer_env;
        wctx.subplans =
            probe_evals[m] != nullptr ? probe_evals[m].get() : ctx_->subplans;
        wctx.stats = &local_stats[m];
        wctx.guard = ctx_->guard;
        for (size_t i = range.begin; i < range.end; ++i) {
          TMDB_RETURN_IF_ERROR(PeriodicGuardCheck(&wctx, i - range.begin));
          TMDB_RETURN_IF_ERROR(ProcessLeftRow(rows[i], &wctx, &outputs[m]));
        }
        return Status::OK();
      }));
  // Concatenating in morsel order reproduces the serial emission order;
  // rows_emitted is counted at serve time, like the streaming path.
  AccumulateStats(local_stats, ctx_->stats);
  size_t total = 0;
  for (const std::vector<Value>& part : outputs) total += part.size();
  TMDB_RETURN_IF_ERROR(build_res_.Add(total * sizeof(Value)));
  output_.reserve(total);
  for (std::vector<Value>& part : outputs) {
    for (Value& row : part) output_.push_back(std::move(row));
  }
  return Status::OK();
}

Result<bool> HashJoinOp::AdvanceLeft() {
  TMDB_RETURN_IF_ERROR(PeriodicGuardCheck(ctx_, probe_rows_++));
  TMDB_ASSIGN_OR_RETURN(std::optional<Value> row, left_->Next());
  if (!row.has_value()) {
    current_left_.reset();
    return false;
  }
  current_left_ = std::move(*row);
  TMDB_ASSIGN_OR_RETURN(
      Value key,
      EvalCompositeKey(left_keys_, spec_.left_var, *current_left_, ctx_));
  ctx_->stats->hash_probes++;
  current_bucket_ = FindBucket(key);
  bucket_pos_ = 0;
  left_matched_ = false;
  return true;
}

Result<std::optional<Value>> HashJoinOp::Next() {
  if (materialized_) {
    if (output_pos_ >= output_.size()) return std::optional<Value>();
    ctx_->stats->rows_emitted++;
    return std::optional<Value>(output_[output_pos_++]);
  }
  if (fast_active_) return NextFastStreaming();
  return NextStreaming();
}

Result<std::optional<Value>> HashJoinOp::NextFastStreaming() {
  while (serve_pos_ >= serve_.size()) {
    serve_.clear();
    serve_pos_ = 0;
    TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
    probe_batch_.clear();
    TMDB_ASSIGN_OR_RETURN(size_t got,
                          left_->NextBatch(&probe_batch_, kExecBatchSize));
    if (got == 0) return std::optional<Value>();
    probe_rows_ += got;
    for (const Value& left_row : probe_batch_) {
      TMDB_RETURN_IF_ERROR(ProcessLeftRowFast(left_row, ctx_, &serve_));
    }
  }
  ctx_->stats->rows_emitted++;
  return std::optional<Value>(std::move(serve_[serve_pos_++]));
}

Result<size_t> HashJoinOp::NextBatch(std::vector<Value>* out, size_t max) {
  if (fast_active_ && !materialized_) {
    size_t produced = 0;
    while (produced < max) {
      if (serve_pos_ < serve_.size()) {
        const size_t take = std::min(max - produced, serve_.size() - serve_pos_);
        out->insert(
            out->end(),
            std::make_move_iterator(serve_.begin() +
                                    static_cast<ptrdiff_t>(serve_pos_)),
            std::make_move_iterator(serve_.begin() +
                                    static_cast<ptrdiff_t>(serve_pos_ + take)));
        serve_pos_ += take;
        produced += take;
        ctx_->stats->rows_emitted += take;
        continue;
      }
      serve_.clear();
      serve_pos_ = 0;
      TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
      probe_batch_.clear();
      TMDB_ASSIGN_OR_RETURN(size_t got,
                            left_->NextBatch(&probe_batch_, kExecBatchSize));
      if (got == 0) break;
      probe_rows_ += got;
      for (const Value& left_row : probe_batch_) {
        TMDB_RETURN_IF_ERROR(ProcessLeftRowFast(left_row, ctx_, &serve_));
      }
    }
    return produced;
  }
  if (!materialized_) return PhysicalOp::NextBatch(out, max);
  TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
  const size_t take = std::min(max, output_.size() - output_pos_);
  out->insert(out->end(),
              output_.begin() + static_cast<ptrdiff_t>(output_pos_),
              output_.begin() + static_cast<ptrdiff_t>(output_pos_ + take));
  output_pos_ += take;
  ctx_->stats->rows_emitted += take;
  return take;
}

Result<std::optional<Value>> HashJoinOp::NextStreaming() {
  switch (spec_.mode) {
    case JoinMode::kInner:
    case JoinMode::kLeftOuter: {
      while (true) {
        if (!current_left_.has_value()) {
          TMDB_ASSIGN_OR_RETURN(bool more, AdvanceLeft());
          if (!more) return std::optional<Value>();
        }
        if (current_bucket_ != nullptr) {
          while (bucket_pos_ < current_bucket_->size()) {
            const Value& right_row = (*current_bucket_)[bucket_pos_++];
            TMDB_ASSIGN_OR_RETURN(
                bool match,
                EvalJoinPred(spec_, *current_left_, right_row, ctx_));
            if (match) {
              left_matched_ = true;
              TMDB_ASSIGN_OR_RETURN(Value out,
                                    ConcatTuples(*current_left_, right_row));
              ctx_->stats->rows_emitted++;
              return std::optional<Value>(std::move(out));
            }
          }
        }
        if (spec_.mode == JoinMode::kLeftOuter && !left_matched_) {
          TMDB_ASSIGN_OR_RETURN(
              Value out, ConcatTuples(*current_left_,
                                      NullTupleOfType(spec_.right_type)));
          current_left_.reset();
          ctx_->stats->rows_emitted++;
          return std::optional<Value>(std::move(out));
        }
        current_left_.reset();
      }
    }

    case JoinMode::kSemi:
    case JoinMode::kAnti: {
      const bool want_match = spec_.mode == JoinMode::kSemi;
      while (true) {
        TMDB_ASSIGN_OR_RETURN(bool more, AdvanceLeft());
        if (!more) return std::optional<Value>();
        bool matched = false;
        if (current_bucket_ != nullptr) {
          for (const Value& right_row : *current_bucket_) {
            TMDB_ASSIGN_OR_RETURN(
                bool match,
                EvalJoinPred(spec_, *current_left_, right_row, ctx_));
            if (match) {
              matched = true;
              break;
            }
          }
        }
        if (matched == want_match) {
          ctx_->stats->rows_emitted++;
          Value out = std::move(*current_left_);
          current_left_.reset();
          return std::optional<Value>(std::move(out));
        }
      }
    }

    case JoinMode::kNestJoin: {
      TMDB_ASSIGN_OR_RETURN(bool more, AdvanceLeft());
      if (!more) return std::optional<Value>();
      std::vector<Value> group;
      if (current_bucket_ != nullptr) {
        for (const Value& right_row : *current_bucket_) {
          TMDB_ASSIGN_OR_RETURN(
              bool match, EvalJoinPred(spec_, *current_left_, right_row, ctx_));
          if (match) {
            TMDB_ASSIGN_OR_RETURN(
                Value g, EvalJoinFunc(spec_, *current_left_, right_row, ctx_));
            group.push_back(std::move(g));
          }
        }
      }
      TMDB_ASSIGN_OR_RETURN(
          Value out, ExtendTuple(*current_left_, spec_.label,
                                 Value::Set(std::move(group))));
      current_left_.reset();
      ctx_->stats->rows_emitted++;
      return std::optional<Value>(std::move(out));
    }
  }
  return Status::Internal("unhandled join mode");
}

void HashJoinOp::Close() {
  partitions_.clear();
  current_left_.reset();
  current_bucket_ = nullptr;
  output_.clear();
  output_pos_ = 0;
  materialized_ = false;
  spilled_ = false;
  fast_active_ = false;
  build_rows_.clear();
  build_rows_.shrink_to_fit();
  arena_.Reset();
  fk_i64_ = nullptr;
  fk_f64_ = nullptr;
  fk_codes_ = nullptr;
  heads_ = nullptr;
  next_ = nullptr;
  bucket_mask_ = 0;
  fast_dict_ = StringDict();
  probe_batch_.clear();
  serve_.clear();
  serve_pos_ = 0;
  memo_.clear();
  memo_enabled_ = false;
  build_res_.Release();
  left_->Close();
  // Usually already closed at the end of BuildTables; closing again is a
  // no-op, but matters when the build unwound mid-drain (guard trip).
  right_->Close();
}

std::string HashJoinOp::Describe() const {
  std::vector<std::string> keys;
  keys.reserve(left_keys_.size());
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    keys.push_back(left_keys_[i].ToString() + " = " +
                   right_keys_[i].ToString());
  }
  std::string out =
      StrCat("HashJoin<", JoinModeName(spec_.mode), ">[", spec_.left_var, ",",
             spec_.right_var, " : keys(", Join(keys, ", "), ")");
  if (!(spec_.pred.is_literal() && spec_.pred.literal_value().is_bool() &&
        spec_.pred.literal_value().AsBool())) {
    out += StrCat(", residual ", spec_.pred.ToString());
  }
  if (spec_.mode == JoinMode::kNestJoin) {
    out += StrCat(", G = ", spec_.func.ToString(), "; ", spec_.label);
  }
  out += "]";
  return out;
}

}  // namespace tmdb
