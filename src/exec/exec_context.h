#ifndef TMDB_EXEC_EXEC_CONTEXT_H_
#define TMDB_EXEC_EXEC_CONTEXT_H_

#include <cstdint>
#include <string>

#include "expr/eval.h"

namespace tmdb {

class QueryGuard;
class QuerySched;
class SpillManager;

/// Counters accumulated during one execution. They expose the *work* a
/// strategy does (the quantity the paper's argument is about), independent
/// of wall-clock noise: a nested-loop plan shows quadratic predicate_evals
/// where the unnested plan shows linear probes.
struct ExecStats {
  uint64_t rows_emitted = 0;     // rows leaving any operator
  uint64_t predicate_evals = 0;  // join/select predicate evaluations
  uint64_t subplan_evals = 0;    // subplan executions (cache hits excluded)
  uint64_t hash_probes = 0;      // hash table lookups in hash joins
  uint64_t rows_built = 0;       // rows materialised into build tables
  uint64_t spill_partitions = 0;    // partition files written by spilling ops
  uint64_t spill_bytes_written = 0; // bytes through spill writers
  uint64_t spill_bytes_read = 0;    // bytes through spill readers
  uint64_t spill_max_depth = 0;     // deepest recursive partitioning level
  uint64_t spill_sort_runs = 0;     // sorted runs written by external sorts
  uint64_t subplan_cache_hits = 0;      // memoized subplan results served
  uint64_t subplan_cache_misses = 0;    // distinct correlation keys computed
  uint64_t subplan_cache_evictions = 0; // entries dropped under memory pressure
  uint64_t subplan_cache_disk_evictions = 0;  // entries evicted to spill blocks
  uint64_t subplan_cache_disk_faults = 0;     // on-disk entries faulted back in
  uint64_t guard_checkpoints = 0;       // QueryGuard::Check calls this run
  // Strategy-decision telemetry (strategy = auto; see StrategyStatCode).
  uint64_t strategy_chosen = 0;     // 1 + Strategy enum value; 0 = unrecorded
  uint64_t strategy_switches = 0;   // mid-query adaptive re-plans taken
  uint64_t est_distinct_corr = 0;   // cost model's distinct-correlation est.
  // Work-stealing scheduler telemetry. morsels_dispatched is deterministic
  // (the sum of morsel-set sizes the query submitted); morsels_stolen
  // counts the subset executed via tickets taken from another worker's
  // deque — scheduling-dependent by nature, exposed so starvation shows up
  // as numbers instead of latency. Neither participates in the serial-vs-
  // parallel stats-identity contract.
  uint64_t morsels_dispatched = 0;  // morsels run through the scheduler
  uint64_t morsels_stolen = 0;      // of those, run via work stealing

  void Reset() { *this = ExecStats(); }
  std::string ToString() const;
};

/// Per-execution state threaded through the physical operators.
struct ExecContext {
  /// Environment of the enclosing evaluation: non-null while running a
  /// correlated subplan, so inner predicates can see the outer variables.
  const Environment* outer_env = nullptr;
  /// Evaluates kSubplan expressions (implemented by the Executor).
  SubplanEvaluator* subplans = nullptr;
  /// Work counters; never null during execution.
  ExecStats* stats = nullptr;
  /// This query's registration with the process-wide work-stealing
  /// scheduler (intra-operator parallelism: partitioned hash builds,
  /// morsel-wise probes). nullptr, or num_threads == 1, means fully serial
  /// execution — the seed behaviour. Operators submit morsel sets only
  /// from the coordinating thread; worker tasks never dispatch themselves.
  QuerySched* sched = nullptr;
  /// Per-query max-parallelism cap (also the number of build partitions).
  /// A cap, not a pool size: threads come from the shared scheduler.
  int num_threads = 1;
  /// Resource governor: cancellation flag, deadline, row/memory budgets,
  /// fault injection. Operators call CheckGuard(ctx) at batch and morsel
  /// boundaries; nullptr means ungoverned (tests driving ops directly).
  QueryGuard* guard = nullptr;
  /// Spill-to-disk facility. nullptr disables spilling: a memory trip then
  /// fails the query with kResourceExhausted exactly as before.
  SpillManager* spill = nullptr;

  bool parallel_enabled() const { return sched != nullptr && num_threads > 1; }
};

}  // namespace tmdb

#endif  // TMDB_EXEC_EXEC_CONTEXT_H_
