#include "exec/join_common.h"

#include <utility>

#include "expr/eval.h"

namespace tmdb {

std::string JoinModeName(JoinMode mode) {
  switch (mode) {
    case JoinMode::kInner:
      return "Inner";
    case JoinMode::kSemi:
      return "Semi";
    case JoinMode::kAnti:
      return "Anti";
    case JoinMode::kLeftOuter:
      return "LeftOuter";
    case JoinMode::kNestJoin:
      return "NestJoin";
  }
  return "?";
}

Result<Value> EvalCompositeKey(const std::vector<Expr>& keys,
                               const std::string& var, const Value& row,
                               ExecContext* ctx) {
  Environment env(ctx->outer_env);
  env.Bind(var, row);
  std::vector<Value> parts;
  parts.reserve(keys.size());
  for (const Expr& key : keys) {
    TMDB_ASSIGN_OR_RETURN(Value v, EvalExpr(key, env, ctx->subplans));
    // Canonicalise Int vs Real so 1 and 1.0 land in the same bucket even
    // though Value already hashes them identically — the list wrapper
    // preserves that property, nothing extra needed.
    parts.push_back(std::move(v));
  }
  return Value::List(std::move(parts));
}

Result<bool> EvalJoinPred(const JoinSpec& spec, const Value& left_row,
                          const Value& right_row, ExecContext* ctx) {
  ctx->stats->predicate_evals++;
  Environment env(ctx->outer_env);
  env.Bind(spec.left_var, left_row);
  env.Bind(spec.right_var, right_row);
  return EvalPredicate(spec.pred, env, ctx->subplans);
}

Result<Value> EvalJoinFunc(const JoinSpec& spec, const Value& left_row,
                           const Value& right_row, ExecContext* ctx) {
  Environment env(ctx->outer_env);
  env.Bind(spec.left_var, left_row);
  env.Bind(spec.right_var, right_row);
  return EvalExpr(spec.func, env, ctx->subplans);
}

}  // namespace tmdb
