#include "exec/nested_loop_join.h"

#include <utility>

#include "base/string_util.h"
#include "values/value_ops.h"

namespace tmdb {

namespace {

// The inner scans are the quadratic hot path a guard must bound without
// slowing: checkpoint once per kExecBatchSize predicate evaluations.
inline Status InnerLoopGuardCheck(ExecContext* ctx) {
  if ((ctx->stats->predicate_evals & (kExecBatchSize - 1)) == 0) {
    return CheckGuard(ctx);
  }
  return Status::OK();
}

}  // namespace

Status NestedLoopJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  right_rows_.clear();
  current_left_.reset();
  right_pos_ = 0;
  left_matched_ = false;
  build_res_.Reset(ctx->guard);

  TMDB_RETURN_IF_ERROR(right_->Open(ctx));
  while (true) {
    TMDB_ASSIGN_OR_RETURN(size_t got,
                          right_->NextBatch(&right_rows_, kExecBatchSize));
    if (got == 0) break;
    TMDB_RETURN_IF_ERROR(build_res_.Add(got * sizeof(Value)));
    ctx_->stats->rows_built += got;
  }
  right_->Close();
  return left_->Open(ctx);
}

Result<bool> NestedLoopJoinOp::AdvanceLeft() {
  TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
  TMDB_ASSIGN_OR_RETURN(std::optional<Value> row, left_->Next());
  if (!row.has_value()) {
    current_left_.reset();
    return false;
  }
  current_left_ = std::move(*row);
  right_pos_ = 0;
  left_matched_ = false;
  return true;
}

Result<std::optional<Value>> NestedLoopJoinOp::Next() {
  switch (spec_.mode) {
    case JoinMode::kInner:
    case JoinMode::kLeftOuter: {
      while (true) {
        if (!current_left_.has_value()) {
          TMDB_ASSIGN_OR_RETURN(bool more, AdvanceLeft());
          if (!more) return std::optional<Value>();
        }
        while (right_pos_ < right_rows_.size()) {
          TMDB_RETURN_IF_ERROR(InnerLoopGuardCheck(ctx_));
          const Value& right_row = right_rows_[right_pos_++];
          TMDB_ASSIGN_OR_RETURN(
              bool match, EvalJoinPred(spec_, *current_left_, right_row, ctx_));
          if (match) {
            left_matched_ = true;
            TMDB_ASSIGN_OR_RETURN(Value out,
                                  ConcatTuples(*current_left_, right_row));
            ctx_->stats->rows_emitted++;
            return std::optional<Value>(std::move(out));
          }
        }
        // Inner cursor exhausted for this left row.
        if (spec_.mode == JoinMode::kLeftOuter && !left_matched_) {
          // Pad with NULLs in the right attribute positions — the
          // relational fix that avoids losing dangling tuples.
          Value padded = NullTupleOfType(spec_.right_type);
          TMDB_ASSIGN_OR_RETURN(Value out,
                                ConcatTuples(*current_left_, padded));
          current_left_.reset();
          ctx_->stats->rows_emitted++;
          return std::optional<Value>(std::move(out));
        }
        current_left_.reset();
      }
    }

    case JoinMode::kSemi:
    case JoinMode::kAnti: {
      const bool want_match = spec_.mode == JoinMode::kSemi;
      while (true) {
        TMDB_ASSIGN_OR_RETURN(bool more, AdvanceLeft());
        if (!more) return std::optional<Value>();
        bool matched = false;
        for (const Value& right_row : right_rows_) {
          TMDB_RETURN_IF_ERROR(InnerLoopGuardCheck(ctx_));
          TMDB_ASSIGN_OR_RETURN(
              bool match, EvalJoinPred(spec_, *current_left_, right_row, ctx_));
          if (match) {
            matched = true;
            break;
          }
        }
        if (matched == want_match) {
          ctx_->stats->rows_emitted++;
          Value out = std::move(*current_left_);
          current_left_.reset();
          return std::optional<Value>(std::move(out));
        }
      }
    }

    case JoinMode::kNestJoin: {
      TMDB_ASSIGN_OR_RETURN(bool more, AdvanceLeft());
      if (!more) return std::optional<Value>();
      // Collect G(x, y) over all matches — an output tuple can be produced
      // only once the entire match set is known (paper, Section 6).
      std::vector<Value> group;
      for (const Value& right_row : right_rows_) {
        TMDB_RETURN_IF_ERROR(InnerLoopGuardCheck(ctx_));
        TMDB_ASSIGN_OR_RETURN(
            bool match, EvalJoinPred(spec_, *current_left_, right_row, ctx_));
        if (match) {
          TMDB_ASSIGN_OR_RETURN(
              Value g, EvalJoinFunc(spec_, *current_left_, right_row, ctx_));
          group.push_back(std::move(g));
        }
      }
      TMDB_ASSIGN_OR_RETURN(
          Value out, ExtendTuple(*current_left_, spec_.label,
                                 Value::Set(std::move(group))));
      current_left_.reset();
      ctx_->stats->rows_emitted++;
      return std::optional<Value>(std::move(out));
    }
  }
  return Status::Internal("unhandled join mode");
}

void NestedLoopJoinOp::Close() {
  right_rows_.clear();
  current_left_.reset();
  build_res_.Release();
  left_->Close();
  // Usually closed at the end of Open's drain; matters on mid-drain unwind.
  right_->Close();
}

std::string NestedLoopJoinOp::Describe() const {
  std::string out = StrCat("NestedLoopJoin<", JoinModeName(spec_.mode), ">[",
                           spec_.left_var, ",", spec_.right_var, " : ",
                           spec_.pred.ToString());
  if (spec_.mode == JoinMode::kNestJoin) {
    out += StrCat(", G = ", spec_.func.ToString(), "; ", spec_.label);
  }
  out += "]";
  return out;
}

}  // namespace tmdb
