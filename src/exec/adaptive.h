#ifndef TMDB_EXEC_ADAPTIVE_H_
#define TMDB_EXEC_ADAPTIVE_H_

#include <cstdint>
#include <mutex>

#include "base/status.h"
#include "base/string_util.h"

namespace tmdb {

/// Parameters of the mid-query adaptive strategy switch (strategy = auto).
struct AdaptiveConfig {
  /// The cost model's predicted subplan-cache hit ratio — what the chosen
  /// memoized-naive plan was costed with.
  double predicted_hit_ratio = 0.0;
  /// Shortfall (predicted − observed) that triggers the re-plan. The
  /// default tolerates a badly wrong distinct estimate before paying for a
  /// restart; <= 0 would switch on any shortfall and is clamped by Arm.
  double switch_threshold = 0.4;
  /// Cache acquires per decision window: the observed ratio is evaluated
  /// whenever the acquire count reaches a multiple of this, so an estimate
  /// that only goes wrong late (sorted outer, hot prefix) is still caught.
  uint64_t probe_acquires = 64;
};

/// Watches the observed subplan-cache hit ratio of a memoized-naive run and
/// requests a strategy switch when it contradicts the cost model's estimate
/// past the threshold. Shared by every SubplanRunner of a run (workers
/// observe concurrently); the decision is sticky — once requested, every
/// subsequent observation returns the switch status so all workers unwind.
///
/// The switch is delivered as StatusCode::kStrategySwitch, which tears down
/// the attempt through the normal error path (spill cleanup, cache reset,
/// guard trip-state clearing) — the Database then re-plans with the best
/// non-naive alternative and re-runs against the remaining budgets.
class AdaptiveController {
 public:
  /// Arms for the next run, resetting observation state.
  void Arm(const AdaptiveConfig& config) {
    std::lock_guard<std::mutex> lock(mu_);
    config_ = config;
    if (config_.switch_threshold <= 0) config_.switch_threshold = 1e-9;
    if (config_.probe_acquires == 0) config_.probe_acquires = 64;
    armed_ = true;
    acquires_ = 0;
    hits_ = 0;
    switch_requested_ = false;
  }

  void Disarm() {
    std::lock_guard<std::mutex> lock(mu_);
    armed_ = false;
  }

  /// Records one cache-acquire outcome. Returns kStrategySwitch when the
  /// acquire count reaches a window boundary and the cumulative observed
  /// hit ratio falls short of the prediction by >= switch_threshold (and on
  /// every observation after the decision, so concurrent workers unwind).
  Status Observe(bool hit) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!armed_) return Status::OK();
    ++acquires_;
    if (hit) ++hits_;
    if (!switch_requested_ && acquires_ % config_.probe_acquires == 0) {
      const double observed =
          static_cast<double>(hits_) / static_cast<double>(acquires_);
      if (config_.predicted_hit_ratio - observed >= config_.switch_threshold) {
        switch_requested_ = true;
      }
    }
    if (switch_requested_) return SwitchStatusLocked();
    return Status::OK();
  }

  bool armed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return armed_;
  }
  bool switch_requested() const {
    std::lock_guard<std::mutex> lock(mu_);
    return switch_requested_;
  }
  uint64_t acquires() const {
    std::lock_guard<std::mutex> lock(mu_);
    return acquires_;
  }
  double observed_hit_ratio() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (acquires_ == 0) return 0.0;
    return static_cast<double>(hits_) / static_cast<double>(acquires_);
  }

 private:
  Status SwitchStatusLocked() const {
    return Status::StrategySwitch(
        StrCat("observed subplan-cache hit ratio ", hits_, "/", acquires_,
               " contradicts the cost model's estimate of ",
               config_.predicted_hit_ratio, "; re-planning"));
  }

  mutable std::mutex mu_;
  AdaptiveConfig config_;
  bool armed_ = false;
  bool switch_requested_ = false;
  uint64_t acquires_ = 0;
  uint64_t hits_ = 0;
};

}  // namespace tmdb

#endif  // TMDB_EXEC_ADAPTIVE_H_
