#include "exec/nest_op.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "base/string_util.h"
#include "exec/parallel_util.h"
#include "exec/spill_util.h"
#include "expr/eval.h"
#include "values/value_ops.h"

namespace tmdb {

bool NestOp::IsNullPadding(const Value& v) {
  if (v.is_null()) return true;
  if (!v.is_tuple()) return false;
  if (v.TupleSize() == 0) return false;
  for (size_t i = 0; i < v.TupleSize(); ++i) {
    if (!v.FieldValue(i).is_null()) return false;
  }
  return true;
}

Status NestOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  output_.clear();
  pos_ = 0;
  build_res_.Reset(ctx->guard);

  std::vector<Value> rows;
  TMDB_RETURN_IF_ERROR(child_->Open(ctx));
  // A memory trip below leaves every drained row in `rows` (NextBatch
  // appends before the charge, and both grouping paths read rows without
  // disturbing them), so the spill path can take over. Failures from the
  // child itself are its own problem and are never diverted.
  bool salvageable = true;
  bool drained = false;
  Status st = [&]() -> Status {
    while (true) {
      Result<size_t> got = child_->NextBatch(&rows, kExecBatchSize);
      if (!got.ok()) {
        salvageable = false;
        return got.status();
      }
      if (*got == 0) break;
      ctx->stats->rows_built += *got;
      TMDB_RETURN_IF_ERROR(build_res_.Add(*got * sizeof(Value)));
    }
    drained = true;
    child_->Close();
    if (ctx->parallel_enabled()) {
      return OpenParallel(&rows);
    }
    return OpenSerial(&rows);
  }();
  if (st.ok()) return st;
  if (!salvageable || !SpillEligibleTrip(ctx, st)) return st;
  return SpillGroup(std::move(rows), drained);
}

Status NestOp::OpenSerial(std::vector<Value>* rows_ptr) {
  std::vector<Value>& rows = *rows_ptr;
  // Group-by hash: key tuple → collected elements. Insertion order of
  // groups is preserved for deterministic output.
  std::unordered_map<Value, size_t, ValueHash, ValueEq> group_index;
  std::vector<Value> keys;
  std::vector<std::vector<Value>> groups;
  group_index.reserve(rows.size());

  for (size_t r = 0; r < rows.size(); ++r) {
    if ((r & (kExecBatchSize - 1)) == 0) {
      TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
    }
    const Value& row = rows[r];
    // Key = projection onto the grouping attributes.
    std::vector<Value> key_values;
    key_values.reserve(group_attrs_.size());
    for (const std::string& attr : group_attrs_) {
      TMDB_ASSIGN_OR_RETURN(Value v, row.Field(attr));
      key_values.push_back(std::move(v));
    }
    Value key = Value::Tuple(group_attrs_, std::move(key_values));

    Environment env(ctx_->outer_env);
    env.Bind(var_, row);
    TMDB_ASSIGN_OR_RETURN(Value elem, EvalExpr(elem_, env, ctx_->subplans));

    auto [it, inserted] = group_index.emplace(key, groups.size());
    if (inserted) {
      keys.push_back(std::move(key));
      groups.emplace_back();
    }
    if (!(null_group_to_empty_ && IsNullPadding(elem))) {
      groups[it->second].push_back(std::move(elem));
    }
  }

  output_.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    TMDB_ASSIGN_OR_RETURN(
        Value out, ExtendTuple(keys[i], label_, Value::Set(std::move(groups[i]))));
    output_.push_back(std::move(out));
  }
  // The input batch is dead (its images live on in output_); refund its
  // shell charge rather than carrying it until Close as phantom pressure.
  const uint64_t rows_bytes = rows.size() * sizeof(Value);
  rows.clear();
  rows.shrink_to_fit();
  build_res_.Shrink(rows_bytes);
  return Status::OK();
}

Status NestOp::OpenParallel(std::vector<Value>* rows_ptr) {
  std::vector<Value>& rows = *rows_ptr;
  const size_t n = rows.size();
  const size_t num_partitions = static_cast<size_t>(ctx_->num_threads);

  // Stage 1 (parallel over morsels): evaluate per-row group key, key hash,
  // and element image.
  std::vector<Value> keys(n);
  std::vector<uint64_t> hashes(n);
  std::vector<Value> elems(n);
  const uint64_t scratch_bytes = n * (2 * sizeof(Value) + sizeof(uint64_t));
  TMDB_RETURN_IF_ERROR(build_res_.Add(scratch_bytes));
  std::vector<MorselRange> morsels = SplitMorsels(n, ctx_->num_threads);
  // Per-morsel forked subplan evaluators (sharing the run's memo cache) and
  // local stats blocks let ν handle subplan-bearing element functions on
  // the parallel path; the counters sum back in morsel order below.
  std::vector<ExecStats> local_stats(morsels.size());
  std::vector<std::unique_ptr<SubplanEvaluator>> elem_evals =
      ForkSubplanEvaluators(ctx_->subplans, &local_stats);
  TMDB_RETURN_IF_ERROR(ParallelForMorsels(
      ctx_->sched, ctx_->guard, morsels,
      [&](size_t m, MorselRange range) -> Status {
        SubplanEvaluator* subplans =
            elem_evals[m] != nullptr ? elem_evals[m].get() : ctx_->subplans;
        for (size_t i = range.begin; i < range.end; ++i) {
          if (((i - range.begin) & (kExecBatchSize - 1)) == 0) {
            TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
          }
          std::vector<Value> key_values;
          key_values.reserve(group_attrs_.size());
          for (const std::string& attr : group_attrs_) {
            TMDB_ASSIGN_OR_RETURN(Value v, rows[i].Field(attr));
            key_values.push_back(std::move(v));
          }
          keys[i] = Value::Tuple(group_attrs_, std::move(key_values));
          hashes[i] = keys[i].Hash();
          Environment env(ctx_->outer_env);
          env.Bind(var_, rows[i]);
          TMDB_ASSIGN_OR_RETURN(elems[i], EvalExpr(elem_, env, subplans));
        }
        return Status::OK();
      }));
  AccumulateStats(local_stats, ctx_->stats);

  // Stage 2 (parallel over partitions): each worker groups one disjoint
  // hash partition, scanning rows in order so element order inside a group
  // matches the serial path, and records each group's first-occurrence row
  // index for the merge. The Set canonicalisation (the expensive sort) also
  // happens here, in parallel.
  std::vector<std::vector<std::pair<size_t, Value>>> partition_rows(
      num_partitions);
  std::vector<MorselRange> one_per_partition;
  one_per_partition.reserve(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    one_per_partition.push_back({p, p + 1});
  }
  TMDB_RETURN_IF_ERROR(ParallelForMorsels(
      ctx_->sched, ctx_->guard, one_per_partition,
      [&](size_t, MorselRange range) -> Status {
        const size_t p = range.begin;
        std::unordered_map<Value, size_t, ValueHash, ValueEq> group_index;
        std::vector<Value> part_keys;
        std::vector<std::vector<Value>> groups;
        std::vector<size_t> first_row;
        for (size_t i = 0; i < n; ++i) {
          if ((i & (kExecBatchSize - 1)) == 0) {
            TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
          }
          if (hashes[i] % num_partitions != p) continue;
          auto [it, inserted] = group_index.emplace(keys[i], groups.size());
          if (inserted) {
            part_keys.push_back(std::move(keys[i]));
            groups.emplace_back();
            first_row.push_back(i);
          }
          if (!(null_group_to_empty_ && IsNullPadding(elems[i]))) {
            groups[it->second].push_back(std::move(elems[i]));
          }
        }
        std::vector<std::pair<size_t, Value>>& out = partition_rows[p];
        out.reserve(part_keys.size());
        for (size_t g = 0; g < part_keys.size(); ++g) {
          TMDB_ASSIGN_OR_RETURN(
              Value row, ExtendTuple(part_keys[g], label_,
                                     Value::Set(std::move(groups[g]))));
          out.emplace_back(first_row[g], std::move(row));
        }
        return Status::OK();
      }));

  // The stage-1 scratch is dead (keys/elems moved into the partition
  // outputs); refund its charge so it doesn't linger as phantom budget
  // pressure for downstream operators.
  keys.clear();
  keys.shrink_to_fit();
  hashes.clear();
  hashes.shrink_to_fit();
  elems.clear();
  elems.shrink_to_fit();
  rows.clear();
  rows.shrink_to_fit();
  build_res_.Shrink(scratch_bytes + n * sizeof(Value));

  // Merge: serial output order is group first-occurrence order, so sort the
  // partition outputs by first-occurrence row index.
  std::vector<std::pair<size_t, Value>> merged;
  size_t total = 0;
  for (const auto& part : partition_rows) total += part.size();
  merged.reserve(total);
  for (auto& part : partition_rows) {
    for (auto& entry : part) merged.push_back(std::move(entry));
  }
  std::sort(merged.begin(), merged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  output_.reserve(merged.size());
  for (auto& entry : merged) output_.push_back(std::move(entry.second));
  return Status::OK();
}

Result<std::optional<Value>> NestOp::Next() {
  if (pos_ >= output_.size()) return std::optional<Value>();
  ctx_->stats->rows_emitted++;
  return std::optional<Value>(output_[pos_++]);
}

Result<size_t> NestOp::NextBatch(std::vector<Value>* out, size_t max) {
  TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
  const size_t take = std::min(max, output_.size() - pos_);
  out->insert(out->end(), output_.begin() + static_cast<ptrdiff_t>(pos_),
              output_.begin() + static_cast<ptrdiff_t>(pos_ + take));
  pos_ += take;
  ctx_->stats->rows_emitted += take;
  return take;
}

void NestOp::Close() {
  output_.clear();
  build_res_.Release();
  // Usually closed at the end of Open's drain; matters on mid-drain unwind.
  child_->Close();
}

std::string NestOp::Describe() const {
  return StrCat(null_group_to_empty_ ? "Nest*" : "Nest", "[by (",
                Join(group_attrs_, ", "), "), ", var_, " : ",
                elem_.ToString(), "; ", label_, "]");
}

}  // namespace tmdb
