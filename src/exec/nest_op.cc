#include "exec/nest_op.h"

#include <unordered_map>
#include <utility>

#include "base/string_util.h"
#include "expr/eval.h"
#include "values/value_ops.h"

namespace tmdb {

namespace {

/// True for the values ν* discards: NULL itself, or a tuple whose
/// attributes are all NULL (the image of an outerjoin-padded row).
bool IsNullPadding(const Value& v) {
  if (v.is_null()) return true;
  if (!v.is_tuple()) return false;
  if (v.TupleSize() == 0) return false;
  for (size_t i = 0; i < v.TupleSize(); ++i) {
    if (!v.FieldValue(i).is_null()) return false;
  }
  return true;
}

}  // namespace

Status NestOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  output_.clear();
  pos_ = 0;

  // Group-by hash: key tuple → collected elements. Insertion order of
  // groups is preserved for deterministic output.
  std::unordered_map<Value, size_t, ValueHash, ValueEq> group_index;
  std::vector<Value> keys;
  std::vector<std::vector<Value>> groups;

  TMDB_RETURN_IF_ERROR(child_->Open(ctx));
  while (true) {
    TMDB_ASSIGN_OR_RETURN(std::optional<Value> row, child_->Next());
    if (!row.has_value()) break;
    // Key = projection onto the grouping attributes.
    std::vector<Value> key_values;
    key_values.reserve(group_attrs_.size());
    for (const std::string& attr : group_attrs_) {
      TMDB_ASSIGN_OR_RETURN(Value v, row->Field(attr));
      key_values.push_back(std::move(v));
    }
    Value key = Value::Tuple(group_attrs_, std::move(key_values));

    Environment env(ctx->outer_env);
    env.Bind(var_, *row);
    TMDB_ASSIGN_OR_RETURN(Value elem, EvalExpr(elem_, env, ctx->subplans));

    auto [it, inserted] = group_index.emplace(key, groups.size());
    if (inserted) {
      keys.push_back(std::move(key));
      groups.emplace_back();
    }
    if (!(null_group_to_empty_ && IsNullPadding(elem))) {
      groups[it->second].push_back(std::move(elem));
    }
    ctx_->stats->rows_built++;
  }
  child_->Close();

  output_.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    TMDB_ASSIGN_OR_RETURN(
        Value out, ExtendTuple(keys[i], label_, Value::Set(std::move(groups[i]))));
    output_.push_back(std::move(out));
  }
  return Status::OK();
}

Result<std::optional<Value>> NestOp::Next() {
  if (pos_ >= output_.size()) return std::optional<Value>();
  ctx_->stats->rows_emitted++;
  return std::optional<Value>(output_[pos_++]);
}

void NestOp::Close() {
  output_.clear();
}

std::string NestOp::Describe() const {
  return StrCat(null_group_to_empty_ ? "Nest*" : "Nest", "[by (",
                Join(group_attrs_, ", "), "), ", var_, " : ",
                elem_.ToString(), "; ", label_, "]");
}

}  // namespace tmdb
