#ifndef TMDB_EXEC_NESTED_LOOP_JOIN_H_
#define TMDB_EXEC_NESTED_LOOP_JOIN_H_

#include <optional>
#include <string>
#include <vector>

#include "exec/join_common.h"
#include "exec/physical_op.h"
#include "exec/query_guard.h"

namespace tmdb {

/// Nested-loop implementation of all join modes. The right input is
/// materialised once at Open; every left row scans it in full (or until a
/// match, for semi/anti). This is both the fallback for non-equi predicates
/// and — by construction — the cost model of an unoptimised nested query.
class NestedLoopJoinOp final : public PhysicalOp {
 public:
  NestedLoopJoinOp(PhysicalOpPtr left, PhysicalOpPtr right, JoinSpec spec)
      : left_(std::move(left)), right_(std::move(right)), spec_(std::move(spec)) {}

  Status Open(ExecContext* ctx) override;
  Result<std::optional<Value>> Next() override;
  void Close() override;
  std::string Describe() const override;
  std::vector<const PhysicalOp*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  /// Advances to the next left row, resetting the inner cursor.
  Result<bool> AdvanceLeft();

  PhysicalOpPtr left_;
  PhysicalOpPtr right_;
  JoinSpec spec_;
  ExecContext* ctx_ = nullptr;

  std::vector<Value> right_rows_;       // materialised right input
  std::optional<Value> current_left_;
  size_t right_pos_ = 0;                // inner cursor (kInner/kLeftOuter)
  bool left_matched_ = false;           // kLeftOuter bookkeeping
  GuardReservation build_res_;          // bytes charged for right_rows_
};

}  // namespace tmdb

#endif  // TMDB_EXEC_NESTED_LOOP_JOIN_H_
