#ifndef TMDB_EXEC_MERGE_JOIN_H_
#define TMDB_EXEC_MERGE_JOIN_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exec/join_common.h"
#include "exec/physical_op.h"
#include "exec/query_guard.h"

namespace tmdb {

/// Sort-merge implementation of all join modes over equi-key predicates.
/// Both inputs are materialised and sorted by their composite keys at Open;
/// the merge walks the left side in key order, pairing each left row with
/// the run of equal-keyed right rows.
///
/// For the nest join this is the "simple modification of a common join
/// implementation method" the paper describes: since the merge visits each
/// left row's complete match run consecutively, the grouped output tuple can
/// be emitted as soon as the run ends, and dangling left rows (no matching
/// run) emit with the empty set.
class MergeJoinOp final : public PhysicalOp {
 public:
  MergeJoinOp(PhysicalOpPtr left, PhysicalOpPtr right, JoinSpec spec,
              std::vector<Expr> left_keys, std::vector<Expr> right_keys)
      : left_(std::move(left)),
        right_(std::move(right)),
        spec_(std::move(spec)),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)) {}

  Status Open(ExecContext* ctx) override;
  Result<std::optional<Value>> Next() override;
  void Close() override;
  std::string Describe() const override;
  std::vector<const PhysicalOp*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  using Keyed = std::pair<Value, Value>;  // (composite key, row)

  /// Loads `source` into `out` with keys computed by `keys` over `var`,
  /// sorted ascending by key.
  Status MaterialiseSorted(PhysicalOp* source, const std::vector<Expr>& keys,
                           const std::string& var, std::vector<Keyed>* out);

  /// Positions right_group_{begin,end}_ at the run of right keys equal to
  /// `key` (empty run if none). Advances monotonically.
  void SeekRightRun(const Value& key);

  PhysicalOpPtr left_;
  PhysicalOpPtr right_;
  JoinSpec spec_;
  std::vector<Expr> left_keys_;
  std::vector<Expr> right_keys_;
  ExecContext* ctx_ = nullptr;

  std::vector<Keyed> left_rows_;
  std::vector<Keyed> right_rows_;
  size_t left_pos_ = 0;
  size_t right_run_begin_ = 0;
  size_t right_run_end_ = 0;
  size_t run_pos_ = 0;       // inner-mode cursor within the run
  bool left_consumed_ = true;  // true → advance to next left row
  bool left_matched_ = false;
  GuardReservation build_res_;  // bytes charged for the sorted inputs
  uint64_t work_ = 0;           // rows examined, for periodic guard checks
};

}  // namespace tmdb

#endif  // TMDB_EXEC_MERGE_JOIN_H_
