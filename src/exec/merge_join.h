#ifndef TMDB_EXEC_MERGE_JOIN_H_
#define TMDB_EXEC_MERGE_JOIN_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exec/join_common.h"
#include "exec/physical_op.h"
#include "exec/query_guard.h"
#include "spill/external_sort.h"

namespace tmdb {

/// Sort-merge implementation of all join modes over equi-key predicates.
/// Both inputs are materialised and sorted by their composite keys at Open;
/// the merge walks the left side in key order, pairing each left row with
/// the run of equal-keyed right rows.
///
/// For the nest join this is the "simple modification of a common join
/// implementation method" the paper describes: since the merge visits each
/// left row's complete match run consecutively, the grouped output tuple can
/// be emitted as soon as the run ends, and dangling left rows (no matching
/// run) emit with the empty set.
///
/// Memory-bounded execution: each side degrades independently. When the
/// materialise/sort at Open trips the memory budget and the trip is
/// spill-eligible (see SpillEligibleTrip), the rows salvaged so far plus the
/// rest of that input go through an ExternalSorter — stable-sorted runs on
/// disk, k-way merged back in key order during the join. The in-memory sort
/// is std::stable_sort and the external merge breaks key ties by run order,
/// so both paths yield the same equal-key ordering and the join output is
/// bit-identical either way. During the merge only the current right-key
/// run is resident (charged live through a GuardReservation); a single run
/// that alone exceeds the budget bottoms out with kResourceExhausted, the
/// same boundary the hash join's skewed-partition recursion has.
class MergeJoinOp final : public PhysicalOp {
 public:
  MergeJoinOp(PhysicalOpPtr left, PhysicalOpPtr right, JoinSpec spec,
              std::vector<Expr> left_keys, std::vector<Expr> right_keys)
      : left_(std::move(left)),
        right_(std::move(right)),
        spec_(std::move(spec)),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)) {}

  Status Open(ExecContext* ctx) override;
  Result<std::optional<Value>> Next() override;
  void Close() override;
  std::string Describe() const override;
  std::vector<const PhysicalOp*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  using Keyed = std::pair<Value, Value>;  // (composite key, row)

  /// One sorted input: fully in memory, or — after an eligible memory trip
  /// — sorted runs on disk behind a SortedRunMerger. NextFromSide yields
  /// rows in ascending key order either way.
  struct SortedSide {
    std::vector<Value> raw;    // drained rows in input order (spill salvage)
    std::vector<Keyed> rows;   // stable-sorted pairs (in-memory path)
    size_t pos = 0;
    bool external = false;
    bool drained = false;      // source fully consumed into raw/runs
    bool salvageable = false;  // raw is intact and the source is still usable
    std::unique_ptr<ExternalSorter> sorter;
    std::unique_ptr<SortedRunMerger> merger;
    GuardReservation res;      // charges for raw slots, pairs, spill chunks

    void Reset(QueryGuard* guard);
  };

  /// In-memory path: drains `source`, computes keys, stable-sorts. On a
  /// memory trip, `side->raw` still holds every drained row and
  /// `side->salvageable` says whether ExternalSortSide may take over.
  Status MaterialiseSorted(PhysicalOp* source, const std::vector<Expr>& keys,
                           const std::string& var, SortedSide* side);

  /// Spill path: re-encodes the salvaged rows and the rest of `source` into
  /// stable-sorted runs sized by the live memory budget, then opens the
  /// k-way merger.
  Status ExternalSortSide(PhysicalOp* source, const std::vector<Expr>& keys,
                          const std::string& var, SortedSide* side,
                          const char* label);

  Status OpenSide(PhysicalOp* source, const std::vector<Expr>& keys,
                  const std::string& var, SortedSide* side,
                  const char* label);

  /// Yields the side's next row in key order; false at end of input.
  Result<bool> NextFromSide(SortedSide* side, Keyed* out);

  /// Buffers the run of right rows whose key equals `key` into right_run_,
  /// discarding smaller-keyed right rows (keys ascend on both sides, so the
  /// right cursor only moves forward). Equal consecutive left keys reuse
  /// the buffered run.
  Status LoadRightRun(const Value& key);

  PhysicalOpPtr left_;
  PhysicalOpPtr right_;
  JoinSpec spec_;
  std::vector<Expr> left_keys_;
  std::vector<Expr> right_keys_;
  ExecContext* ctx_ = nullptr;

  SortedSide left_side_;
  SortedSide right_side_;

  Keyed left_cur_;             // valid while !left_consumed_
  Keyed right_pending_;        // first right row past the current run
  bool right_pending_valid_ = false;
  bool right_eof_ = false;
  std::vector<Value> right_run_;  // rows of the current equal-key run
  Value right_run_key_;
  bool right_run_valid_ = false;
  size_t run_pos_ = 0;         // inner-mode cursor within the run
  bool left_consumed_ = true;  // true → advance to next left row
  bool left_matched_ = false;
  GuardReservation run_res_;   // right-run buffer slots (live-checked)
  uint64_t work_ = 0;          // rows examined, for periodic guard checks
};

}  // namespace tmdb

#endif  // TMDB_EXEC_MERGE_JOIN_H_
