#ifndef TMDB_EXEC_SUBPLAN_CACHE_H_
#define TMDB_EXEC_SUBPLAN_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "base/result.h"
#include "exec/adaptive.h"
#include "exec/exec_context.h"
#include "exec/physical_op.h"
#include "exec/query_guard.h"
#include "expr/eval.h"
#include "values/value.h"

namespace tmdb {

class SpillManager;

/// Default budget for memoized subplan results (RunOptions::subplan_cache_bytes).
inline constexpr uint64_t kDefaultSubplanCacheBytes = 16ull << 20;

/// Deep structural size estimate of a Value: the bytes its representation
/// holds across all nesting levels. Used to charge cached results against
/// the query's memory budget. Shared reps are counted once per reachable
/// occurrence, so a result that aliases table data is over- rather than
/// under-charged — the safe direction for a budget.
uint64_t ApproxValueBytes(const Value& v);

/// Per-query memo of correlated-subplan results, shared by every worker
/// thread of a run.
///
/// Keyed by (subplan identity, correlation-key value): outer bindings that
/// agree on the subplan's correlation signature map to the same entry, so
/// each distinct correlation value is computed exactly once per query — an
/// uncorrelated subplan (empty signature, one key) exactly once overall.
///
/// Concurrency: a miss installs a *computing* entry and returns control to
/// the caller, who evaluates the subplan outside the lock and then either
/// Fulfill()s or Abandon()s it. Other threads that hit a computing entry
/// block on a condition variable — deliberately without running guard
/// checkpoints, so checkpoint totals stay deterministic across thread
/// counts (the computing thread's own checkpoints guarantee cancellation
/// and deadlines still unwind the query). Failures are never memoized:
/// Abandon removes the entry and hands its error to the threads already
/// waiting, while later calls recompute — essential for spill-retry, where
/// a memory trip inside a subplan must not poison the retry.
///
/// Memory: every resident entry is charged through a GuardReservation, so
/// cached results count against the run's memory budget. A budget trip at
/// insertion evicts least-recently-used entries before failing; a non-
/// memory trip (cancel, deadline, injected fault — the "cache insertion
/// checkpoint") fails the insertion. `capacity_bytes` additionally
/// soft-caps the resident set independent of the guard budget.
///
/// Disk overflow: when a SpillManager is bound, eviction writes the
/// victim's result to a spill file instead of discarding it — the entry
/// stays in the map as a zero-charge on-disk stub, and a later Acquire
/// faults the result back in (re-charging it, evicting colder entries to
/// disk in turn), preserving exactly-once computation under memory
/// pressure. A result that cannot be charged even after eviction is
/// likewise written to disk rather than dropped; only when no spill
/// manager is bound, or the spill write itself fails, does the cache fall
/// back to the old behaviour — hand the result to the caller uncached and
/// let the next operator checkpoint report genuine over-budget.
class SubplanCache {
 public:
  SubplanCache() = default;
  SubplanCache(const SubplanCache&) = delete;
  SubplanCache& operator=(const SubplanCache&) = delete;

  /// Rearms for a new run: drops all entries (refunding their charge to the
  /// previously bound guard, and removing on-disk entries' spill files via
  /// the previously bound manager), rebinds to `guard` (may be null =
  /// ungoverned) and `spill` (null = no disk overflow), and zeroes the
  /// counters.
  void Reset(QueryGuard* guard, uint64_t capacity_bytes,
             SpillManager* spill = nullptr);

  /// Looks up (subplan, key). A hit returns the memoized result; a miss
  /// installs a computing entry and returns nullopt — the caller MUST then
  /// call Fulfill or Abandon with the same (subplan, key). Blocks while
  /// another thread computes the same entry; if that computation fails its
  /// error is returned.
  Result<std::optional<Value>> Acquire(const SubplanBase* subplan,
                                       const Value& key);

  /// Completes the computing entry with `result`, charging its bytes and
  /// waking waiters. Returns non-OK only when the insertion checkpoint
  /// trips for a non-memory reason (the entry is then abandoned with that
  /// error); memory pressure degrades to eviction or an uncached result.
  Status Fulfill(const SubplanBase* subplan, const Value& key,
                 const Value& result);

  /// Fails the computing entry: removes it and delivers `error` to the
  /// threads currently waiting on it. Later Acquires recompute.
  void Abandon(const SubplanBase* subplan, const Value& key,
               const Status& error);

  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;
  /// Entries written to a spill file instead of being dropped.
  uint64_t disk_evictions() const;
  /// On-disk entries brought back to memory by a hit.
  uint64_t disk_faults() const;
  /// Bytes currently charged for resident entries.
  uint64_t resident_bytes() const;

 private:
  struct Entry;
  using LruKey = std::pair<const SubplanBase*, Value>;
  using EntryMap =
      std::unordered_map<Value, std::shared_ptr<Entry>, ValueHash, ValueEq>;

  /// Evicts the LRU victim's charge: writes the result to a spill file
  /// (entry becomes an on-disk stub) when a manager is bound and the write
  /// succeeds, otherwise drops the entry outright.
  void EvictOldestLocked();
  /// Writes `entry`'s value as one spill record; on success the entry
  /// becomes State::kOnDisk with its value released. Returns false (and
  /// leaves the entry untouched apart from its value) on any I/O failure.
  bool WriteEntryToDiskLocked(Entry* entry);
  /// Serves an Acquire hit on an on-disk entry: reads the record back,
  /// re-charges it (spilling colder entries as needed), and re-inserts it
  /// into the LRU. A corrupt or unreadable file degrades to a miss.
  Result<std::optional<Value>> FaultInLocked(const SubplanBase* subplan,
                                             const Value& key,
                                             const std::shared_ptr<Entry>& entry);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  QueryGuard* guard_ = nullptr;
  SpillManager* spill_ = nullptr;
  uint64_t capacity_bytes_ = kDefaultSubplanCacheBytes;
  GuardReservation res_;
  std::unordered_map<const SubplanBase*, EntryMap> entries_;
  // Completed entries, most recently used first. Computing and on-disk
  // entries are not in the list (the former cannot be evicted out from
  // under their waiters; the latter hold no memory to reclaim).
  std::list<LruKey> lru_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t disk_evictions_ = 0;
  uint64_t disk_faults_ = 0;
};

/// A re-entrant subplan evaluator: one per thread that can reach a kSubplan
/// expression. Runners forked from the same run share the SubplanCache,
/// QueryGuard, and SpillManager but own their physical plan instances
/// (operators are stateful) and write work counters to their own ExecStats
/// block, which the forking operator sums back in morsel order — keeping
/// parallel stats bit-identical to serial.
class SubplanRunner final : public SubplanEvaluator {
 public:
  /// `cache` null disables memoization (every call evaluates); `guard`,
  /// `spill` and `adaptive` may be null. `stats` must outlive the runner.
  /// A non-null `adaptive` observes every cache-acquire outcome and may
  /// return kStrategySwitch to abort the attempt (strategy = auto).
  SubplanRunner(SubplanCache* cache, QueryGuard* guard, SpillManager* spill,
                ExecStats* stats, AdaptiveController* adaptive = nullptr)
      : cache_(cache),
        guard_(guard),
        spill_(spill),
        stats_(stats),
        adaptive_(adaptive) {}

  Result<Value> EvaluateSubplan(const SubplanBase& subplan,
                                const Environment& env) override;

  std::unique_ptr<SubplanEvaluator> Fork(ExecStats* stats) override {
    return std::make_unique<SubplanRunner>(cache_, guard_, spill_, stats,
                                           adaptive_);
  }

 private:
  /// Runs the subplan's physical plan (built lazily, reused across outer
  /// rows of this runner) under `env` and collects its rows into a set.
  Result<Value> Compute(const SubplanBase& subplan, const Environment& env);

  SubplanCache* cache_;
  QueryGuard* guard_;
  SpillManager* spill_;
  ExecStats* stats_;
  AdaptiveController* adaptive_;
  // This runner's plan instances: built once per subplan, re-opened per
  // evaluation (Open fully resets operator state). Never shared — each
  // forked runner builds its own.
  std::unordered_map<const SubplanBase*, PhysicalOpPtr> plans_;
};

}  // namespace tmdb

#endif  // TMDB_EXEC_SUBPLAN_CACHE_H_
