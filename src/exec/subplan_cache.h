#ifndef TMDB_EXEC_SUBPLAN_CACHE_H_
#define TMDB_EXEC_SUBPLAN_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "base/result.h"
#include "exec/exec_context.h"
#include "exec/physical_op.h"
#include "exec/query_guard.h"
#include "expr/eval.h"
#include "values/value.h"

namespace tmdb {

class SpillManager;

/// Default budget for memoized subplan results (RunOptions::subplan_cache_bytes).
inline constexpr uint64_t kDefaultSubplanCacheBytes = 16ull << 20;

/// Deep structural size estimate of a Value: the bytes its representation
/// holds across all nesting levels. Used to charge cached results against
/// the query's memory budget. Shared reps are counted once per reachable
/// occurrence, so a result that aliases table data is over- rather than
/// under-charged — the safe direction for a budget.
uint64_t ApproxValueBytes(const Value& v);

/// Per-query memo of correlated-subplan results, shared by every worker
/// thread of a run.
///
/// Keyed by (subplan identity, correlation-key value): outer bindings that
/// agree on the subplan's correlation signature map to the same entry, so
/// each distinct correlation value is computed exactly once per query — an
/// uncorrelated subplan (empty signature, one key) exactly once overall.
///
/// Concurrency: a miss installs a *computing* entry and returns control to
/// the caller, who evaluates the subplan outside the lock and then either
/// Fulfill()s or Abandon()s it. Other threads that hit a computing entry
/// block on a condition variable — deliberately without running guard
/// checkpoints, so checkpoint totals stay deterministic across thread
/// counts (the computing thread's own checkpoints guarantee cancellation
/// and deadlines still unwind the query). Failures are never memoized:
/// Abandon removes the entry and hands its error to the threads already
/// waiting, while later calls recompute — essential for spill-retry, where
/// a memory trip inside a subplan must not poison the retry.
///
/// Memory: every resident entry is charged through a GuardReservation, so
/// cached results count against the run's memory budget. A budget trip at
/// insertion evicts least-recently-used entries before failing; a non-
/// memory trip (cancel, deadline, injected fault — the "cache insertion
/// checkpoint") fails the insertion. When eviction cannot satisfy the
/// budget the result is returned uncached instead of failing the query:
/// the next operator checkpoint reports genuine over-budget exactly as it
/// would have without a cache. `capacity_bytes` additionally soft-caps the
/// resident set independent of the guard budget.
class SubplanCache {
 public:
  SubplanCache() = default;
  SubplanCache(const SubplanCache&) = delete;
  SubplanCache& operator=(const SubplanCache&) = delete;

  /// Rearms for a new run: drops all entries (refunding their charge to the
  /// previously bound guard), rebinds to `guard` (may be null = ungoverned),
  /// and zeroes the counters.
  void Reset(QueryGuard* guard, uint64_t capacity_bytes);

  /// Looks up (subplan, key). A hit returns the memoized result; a miss
  /// installs a computing entry and returns nullopt — the caller MUST then
  /// call Fulfill or Abandon with the same (subplan, key). Blocks while
  /// another thread computes the same entry; if that computation fails its
  /// error is returned.
  Result<std::optional<Value>> Acquire(const SubplanBase* subplan,
                                       const Value& key);

  /// Completes the computing entry with `result`, charging its bytes and
  /// waking waiters. Returns non-OK only when the insertion checkpoint
  /// trips for a non-memory reason (the entry is then abandoned with that
  /// error); memory pressure degrades to eviction or an uncached result.
  Status Fulfill(const SubplanBase* subplan, const Value& key,
                 const Value& result);

  /// Fails the computing entry: removes it and delivers `error` to the
  /// threads currently waiting on it. Later Acquires recompute.
  void Abandon(const SubplanBase* subplan, const Value& key,
               const Status& error);

  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;
  /// Bytes currently charged for resident entries.
  uint64_t resident_bytes() const;

 private:
  struct Entry;
  using LruKey = std::pair<const SubplanBase*, Value>;
  using EntryMap =
      std::unordered_map<Value, std::shared_ptr<Entry>, ValueHash, ValueEq>;

  void EvictOldestLocked();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  QueryGuard* guard_ = nullptr;
  uint64_t capacity_bytes_ = kDefaultSubplanCacheBytes;
  GuardReservation res_;
  std::unordered_map<const SubplanBase*, EntryMap> entries_;
  // Completed entries, most recently used first. Computing entries are not
  // in the list (they cannot be evicted out from under their waiters).
  std::list<LruKey> lru_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

/// A re-entrant subplan evaluator: one per thread that can reach a kSubplan
/// expression. Runners forked from the same run share the SubplanCache,
/// QueryGuard, and SpillManager but own their physical plan instances
/// (operators are stateful) and write work counters to their own ExecStats
/// block, which the forking operator sums back in morsel order — keeping
/// parallel stats bit-identical to serial.
class SubplanRunner final : public SubplanEvaluator {
 public:
  /// `cache` null disables memoization (every call evaluates); `guard` and
  /// `spill` may be null. `stats` must outlive the runner.
  SubplanRunner(SubplanCache* cache, QueryGuard* guard, SpillManager* spill,
                ExecStats* stats)
      : cache_(cache), guard_(guard), spill_(spill), stats_(stats) {}

  Result<Value> EvaluateSubplan(const SubplanBase& subplan,
                                const Environment& env) override;

  std::unique_ptr<SubplanEvaluator> Fork(ExecStats* stats) override {
    return std::make_unique<SubplanRunner>(cache_, guard_, spill_, stats);
  }

 private:
  /// Runs the subplan's physical plan (built lazily, reused across outer
  /// rows of this runner) under `env` and collects its rows into a set.
  Result<Value> Compute(const SubplanBase& subplan, const Environment& env);

  SubplanCache* cache_;
  QueryGuard* guard_;
  SpillManager* spill_;
  ExecStats* stats_;
  // This runner's plan instances: built once per subplan, re-opened per
  // evaluation (Open fully resets operator state). Never shared — each
  // forked runner builds its own.
  std::unordered_map<const SubplanBase*, PhysicalOpPtr> plans_;
};

}  // namespace tmdb

#endif  // TMDB_EXEC_SUBPLAN_CACHE_H_
