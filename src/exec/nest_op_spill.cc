// Grace-style spill path of NestOp (ν and ν*). Engaged by Open when a
// memory trip during the drain or the grouping is spill-eligible; serial
// and parallel grouping paths both divert here (the spill path itself is
// serial, and its tag discipline reproduces the same output either way).
//
// Rows are hash-partitioned by group key into spill files, each record
// carrying its input row index as a varint tag plus the encoded key and
// element image. A partition is grouped in read order — which equals input
// order, because writes are sequential and repartitioning moves records
// verbatim — so element order inside each group matches the in-memory
// paths. Group tuples collect as (first-occurrence tag, row) pairs and a
// final stable sort by tag restores the serial group insertion order bit
// for bit.

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/string_util.h"
#include "exec/nest_op.h"
#include "exec/spill_util.h"
#include "expr/eval.h"
#include "spill/partition.h"
#include "spill/spill_file.h"
#include "spill/spill_manager.h"
#include "spill/value_codec.h"
#include "values/value_ops.h"

namespace tmdb {

Status NestOp::SpillGroup(std::vector<Value> rows, bool drained) {
  SpillManager* mgr = ctx_->spill;
  FaultInjector* inj = SpillInjectorOf(ctx_);

  // Everything the reservation covered either moves to disk below or is
  // freed as it goes — refund it all so the guard tracks actual residency.
  build_res_.Release();

  std::vector<std::string> parts(kSpillFanout);
  {
    // Write-out sheds memory; suspend only the memory comparison (cancel,
    // deadline, max_rows, and injected faults stay live).
    MemoryCheckSuspension suspend(ctx_->guard);
    std::string scratch;
    std::vector<std::unique_ptr<SpillWriter>> writers(kSpillFanout);
    for (size_t p = 0; p < kSpillFanout; ++p) {
      TMDB_ASSIGN_OR_RETURN(parts[p],
                            mgr->NewFilePath(StrCat("nest-d0-p", p)));
      writers[p] =
          std::make_unique<SpillWriter>(parts[p], mgr->block_bytes(), inj);
      TMDB_RETURN_IF_ERROR(writers[p]->Open());
    }
    uint64_t tag = 0;  // input row index; restores group insertion order
    auto spill_row = [&](const Value& row) -> Status {
      std::vector<Value> key_values;
      key_values.reserve(group_attrs_.size());
      for (const std::string& attr : group_attrs_) {
        TMDB_ASSIGN_OR_RETURN(Value v, row.Field(attr));
        key_values.push_back(std::move(v));
      }
      Value key = Value::Tuple(group_attrs_, std::move(key_values));
      // The element image is evaluated here, once per row in input order —
      // the same evaluation sequence as the serial in-memory path — and
      // spilled, so a group's elements never need to be resident together
      // until its own partition is processed.
      Environment env(ctx_->outer_env);
      env.Bind(var_, row);
      TMDB_ASSIGN_OR_RETURN(Value elem, EvalExpr(elem_, env, ctx_->subplans));
      const size_t p = SpillPartitionOf(key.Hash(), /*level=*/0);
      scratch.clear();
      PutVarint(tag++, &scratch);
      EncodeValue(key, &scratch);
      EncodeValue(elem, &scratch);
      TMDB_RETURN_IF_ERROR(writers[p]->Append(scratch));
      if (writers[p]->TookBlockBoundary()) {
        TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
      }
      return Status::OK();
    };
    for (size_t i = 0; i < rows.size(); ++i) {
      TMDB_RETURN_IF_ERROR(PeriodicSpillGuardCheck(ctx_, i));
      Value row = std::move(rows[i]);
      rows[i] = Value();  // free the rep promptly; memory falls as we go
      TMDB_RETURN_IF_ERROR(spill_row(row));
    }
    rows.clear();
    rows.shrink_to_fit();
    if (!drained) {
      std::vector<Value> batch;
      while (true) {
        TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
        batch.clear();
        TMDB_ASSIGN_OR_RETURN(size_t got,
                              child_->NextBatch(&batch, kExecBatchSize));
        if (got == 0) break;
        ctx_->stats->rows_built += got;
        for (Value& row : batch) {
          Value r = std::move(row);
          row = Value();
          TMDB_RETURN_IF_ERROR(spill_row(r));
        }
      }
    }
    child_->Close();
    for (size_t p = 0; p < kSpillFanout; ++p) {
      TMDB_RETURN_IF_ERROR(writers[p]->Finish());
      ctx_->stats->spill_bytes_written += writers[p]->stats().bytes;
    }
    ctx_->stats->spill_partitions += kSpillFanout;
  }

  // One partition at a time, recursing where one's group state still
  // overflows the budget.
  std::vector<std::pair<uint64_t, Value>> tagged;
  for (size_t p = 0; p < kSpillFanout; ++p) {
    TMDB_RETURN_IF_ERROR(ProcessNestPartition(parts[p], /*depth=*/0, &tagged));
  }

  std::stable_sort(
      tagged.begin(), tagged.end(),
      [](const std::pair<uint64_t, Value>& a,
         const std::pair<uint64_t, Value>& b) { return a.first < b.first; });
  output_.reserve(tagged.size());
  for (auto& entry : tagged) output_.push_back(std::move(entry.second));
  return Status::OK();
}

Status NestOp::ProcessNestPartition(
    const std::string& path, int depth,
    std::vector<std::pair<uint64_t, Value>>* out) {
  SpillManager* mgr = ctx_->spill;
  FaultInjector* inj = SpillInjectorOf(ctx_);
  const size_t out_base = out->size();
  ctx_->stats->spill_max_depth = std::max<uint64_t>(
      ctx_->stats->spill_max_depth, static_cast<uint64_t>(depth) + 1);

  // Group this partition in read order (= input order). The memory check is
  // live on the first pass: a trip with several distinct keys in sight means
  // the partition can still be split, and we recurse. A partition that
  // cannot split further — one group key, or the depth bound reached — runs
  // a forced pass with the memory comparison suspended instead: its groups
  // must become resident output rows no matter what, which is exactly the
  // accounting the in-memory paths apply to their own output.
  size_t keys_seen = 0;
  auto load_and_emit = [&](bool forced) -> Status {
    MemoryCheckSuspension suspend(forced ? ctx_->guard : nullptr);
    std::unordered_map<Value, size_t, ValueHash, ValueEq> group_index;
    std::vector<Value> keys;
    std::vector<std::vector<Value>> groups;
    std::vector<uint64_t> first_tag;
    GuardReservation slots;
    slots.Reset(ctx_->guard);
    SpillReader reader(path, inj);
    Status load = [&]() -> Status {
      TMDB_RETURN_IF_ERROR(reader.Open());
      size_t i = 0;
      while (true) {
        std::string_view rec;
        bool eof = false;
        TMDB_RETURN_IF_ERROR(reader.Next(&rec, &eof));
        if (eof) break;
        if (reader.TookBlockBoundary()) {
          TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
        }
        TMDB_RETURN_IF_ERROR(PeriodicSpillGuardCheck(ctx_, i++));
        size_t pos = 0;
        uint64_t tag = 0;
        Value key;
        Value elem;
        TMDB_RETURN_IF_ERROR(GetVarint(rec, &pos, &tag));
        TMDB_RETURN_IF_ERROR(DecodeValue(rec, &pos, &key));
        TMDB_RETURN_IF_ERROR(DecodeValue(rec, &pos, &elem));
        TMDB_RETURN_IF_ERROR(slots.Add(2 * sizeof(Value)));
        auto [it, inserted] = group_index.emplace(key, groups.size());
        if (inserted) {
          keys.push_back(std::move(key));
          groups.emplace_back();
          first_tag.push_back(tag);
        }
        if (!(null_group_to_empty_ && IsNullPadding(elem))) {
          groups[it->second].push_back(std::move(elem));
        }
      }
      // Emit this partition's groups; the output rows are resident state
      // and charge the operator's main reservation.
      for (size_t g = 0; g < keys.size(); ++g) {
        TMDB_RETURN_IF_ERROR(PeriodicSpillGuardCheck(ctx_, g));
        TMDB_ASSIGN_OR_RETURN(
            Value row,
            ExtendTuple(keys[g], label_, Value::Set(std::move(groups[g]))));
        TMDB_RETURN_IF_ERROR(
            build_res_.Add(sizeof(std::pair<uint64_t, Value>)));
        out->emplace_back(first_tag[g], std::move(row));
      }
      return Status::OK();
    }();
    ctx_->stats->spill_bytes_read += reader.stats().bytes;
    reader.Close();
    keys_seen = group_index.size();  // partial on failure = keys at trip time
    slots.Release();
    return load;
  };

  Status load = load_and_emit(/*forced=*/false);
  if (!load.ok()) {
    const bool memory_trip =
        load.code() == StatusCode::kResourceExhausted &&
        ctx_->guard != nullptr && ctx_->guard->last_trip_was_memory();
    if (!memory_trip) return load;
    // Drop this pass's partial output, refunding its charge; the spill file
    // is only removed on success, so the retry re-reads it cleanly.
    build_res_.Shrink((out->size() - out_base) *
                      sizeof(std::pair<uint64_t, Value>));
    out->resize(out_base);
    if (keys_seen > 1 && depth < kMaxSpillDepth) {
      return RepartitionNest(path, depth, out);
    }
    TMDB_RETURN_IF_ERROR(load_and_emit(/*forced=*/true));
  }

  // This partition is fully grouped; its file goes away now, not at query
  // end, so peak disk stays one recursion path, not the whole input.
  mgr->RemoveFile(path);
  return Status::OK();
}

Status NestOp::RepartitionNest(const std::string& path, int depth,
                               std::vector<std::pair<uint64_t, Value>>* out) {
  SpillManager* mgr = ctx_->spill;
  FaultInjector* inj = SpillInjectorOf(ctx_);
  std::vector<std::string> subparts(kSpillFanout);
  {
    MemoryCheckSuspension suspend(ctx_->guard);
    std::vector<std::unique_ptr<SpillWriter>> writers(kSpillFanout);
    for (size_t p = 0; p < kSpillFanout; ++p) {
      TMDB_ASSIGN_OR_RETURN(
          subparts[p], mgr->NewFilePath(StrCat("nest-d", depth + 1, "-p", p)));
      writers[p] =
          std::make_unique<SpillWriter>(subparts[p], mgr->block_bytes(), inj);
      TMDB_RETURN_IF_ERROR(writers[p]->Open());
    }
    SpillReader reader(path, inj);
    Status moved = [&]() -> Status {
      TMDB_RETURN_IF_ERROR(reader.Open());
      size_t i = 0;
      while (true) {
        std::string_view rec;
        bool eof = false;
        TMDB_RETURN_IF_ERROR(reader.Next(&rec, &eof));
        if (eof) break;
        if (reader.TookBlockBoundary()) TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
        TMDB_RETURN_IF_ERROR(PeriodicSpillGuardCheck(ctx_, i++));
        // Route on the key alone; the record's bytes move verbatim, so read
        // order stays input order all the way down the recursion.
        size_t pos = 0;
        uint64_t tag = 0;
        Value key;
        TMDB_RETURN_IF_ERROR(GetVarint(rec, &pos, &tag));
        TMDB_RETURN_IF_ERROR(DecodeValue(rec, &pos, &key));
        const size_t p = SpillPartitionOf(key.Hash(), depth + 1);
        TMDB_RETURN_IF_ERROR(writers[p]->Append(rec));
        if (writers[p]->TookBlockBoundary()) {
          TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
        }
      }
      return Status::OK();
    }();
    ctx_->stats->spill_bytes_read += reader.stats().bytes;
    reader.Close();
    TMDB_RETURN_IF_ERROR(moved);
    for (size_t p = 0; p < kSpillFanout; ++p) {
      TMDB_RETURN_IF_ERROR(writers[p]->Finish());
      ctx_->stats->spill_bytes_written += writers[p]->stats().bytes;
    }
    ctx_->stats->spill_partitions += kSpillFanout;
    mgr->RemoveFile(path);
  }
  for (size_t p = 0; p < kSpillFanout; ++p) {
    TMDB_RETURN_IF_ERROR(ProcessNestPartition(subparts[p], depth + 1, out));
  }
  return Status::OK();
}

}  // namespace tmdb
