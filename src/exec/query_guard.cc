#include "exec/query_guard.h"

#include "base/string_util.h"
#include "values/value_mem.h"

namespace tmdb {

QueryGuard::~QueryGuard() {
  if (tracking_values_) ValueMemory::DisableTracking();
}

void QueryGuard::Reset(const GuardLimits& limits, const ExecStats* stats,
                       FaultInjector* injector) {
  limits_ = limits;
  stats_ = stats;
  injector_ = injector;
  cancelled_.store(false, std::memory_order_relaxed);
  last_trip_was_memory_.store(false, std::memory_order_relaxed);
  checkpoints_.store(0, std::memory_order_relaxed);
  materialized_.store(0, std::memory_order_relaxed);
  memory_suspended_.store(0, std::memory_order_relaxed);

  rows_baseline_ =
      stats == nullptr ? 0 : stats->rows_emitted + stats->rows_built;

  has_deadline_ = limits_.timeout_ms > 0;
  if (has_deadline_) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(limits_.timeout_ms);
  }

  const bool want_tracking = limits_.memory_budget_bytes > 0;
  if (want_tracking && !tracking_values_) {
    ValueMemory::EnableTracking();
    tracking_values_ = true;
  } else if (!want_tracking && tracking_values_) {
    ValueMemory::DisableTracking();
    tracking_values_ = false;
  }
  value_baseline_ = want_tracking ? ValueMemory::LiveBytes() : 0;
}

int64_t QueryGuard::memory_used() const {
  const int64_t values = ValueMemory::LiveBytes() - value_baseline_;
  return values + materialized_.load(std::memory_order_relaxed);
}

Status QueryGuard::Check() {
  const uint64_t checkpoint =
      checkpoints_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (injector_ != nullptr && injector_->enabled() && injector_->ShouldFail()) {
    return Status::Internal("injected fault at guard checkpoint");
  }
  if (cancelled_.load(std::memory_order_relaxed)) {
    return Status::Cancelled("query cancelled");
  }
  // Reading the monotonic clock can be a syscall; sampling every 64th
  // checkpoint keeps an armed deadline near-free while still bounding the
  // overrun to ~64 batches of work.
  if (has_deadline_ && (checkpoint & 63) == 0 &&
      std::chrono::steady_clock::now() >= deadline_) {
    return Status::DeadlineExceeded(
        StrCat("query exceeded timeout of ", limits_.timeout_ms, " ms"));
  }
  if (limits_.max_rows > 0 && stats_ != nullptr) {
    const uint64_t rows =
        stats_->rows_emitted + stats_->rows_built - rows_baseline_;
    if (rows > limits_.max_rows) {
      last_trip_was_memory_.store(false, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          StrCat("query processed ", rows, " rows, over the max_rows budget of ",
                 limits_.max_rows));
    }
  }
  if (limits_.memory_budget_bytes > 0 &&
      memory_suspended_.load(std::memory_order_relaxed) == 0) {
    const int64_t used = memory_used();
    if (used > static_cast<int64_t>(limits_.memory_budget_bytes)) {
      last_trip_was_memory_.store(true, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          StrCat("query materialised ", used,
                 " bytes, over the memory budget of ",
                 limits_.memory_budget_bytes, " bytes"));
    }
  }
  return Status::OK();
}

}  // namespace tmdb
