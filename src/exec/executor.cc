#include "exec/executor.h"

#include <utility>

#include "algebra/subplan.h"
#include "base/string_util.h"
#include "exec/basic_ops.h"
#include "exec/nest_op.h"
#include "exec/nested_loop_join.h"

namespace tmdb {

Result<PhysicalOpPtr> Executor::BuildNaivePlan(const LogicalOpPtr& logical) {
  switch (logical->op_kind()) {
    case OpKind::kScan:
      return PhysicalOpPtr(new TableScanOp(logical->table()));
    case OpKind::kExprSource:
      return PhysicalOpPtr(new ExprSourceOp(logical->func()));
    case OpKind::kSelect: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr child,
                            BuildNaivePlan(logical->input()));
      return PhysicalOpPtr(new FilterOp(std::move(child), logical->var(),
                                        logical->pred()));
    }
    case OpKind::kMap: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr child,
                            BuildNaivePlan(logical->input()));
      return PhysicalOpPtr(
          new MapOp(std::move(child), logical->var(), logical->func()));
    }
    case OpKind::kJoin:
    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin:
    case OpKind::kOuterJoin:
    case OpKind::kNestJoin: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr left, BuildNaivePlan(logical->left()));
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr right,
                            BuildNaivePlan(logical->right()));
      JoinSpec spec;
      switch (logical->op_kind()) {
        case OpKind::kJoin:
          spec.mode = JoinMode::kInner;
          break;
        case OpKind::kSemiJoin:
          spec.mode = JoinMode::kSemi;
          break;
        case OpKind::kAntiJoin:
          spec.mode = JoinMode::kAnti;
          break;
        case OpKind::kOuterJoin:
          spec.mode = JoinMode::kLeftOuter;
          break;
        default:
          spec.mode = JoinMode::kNestJoin;
          break;
      }
      spec.left_var = logical->left_var();
      spec.right_var = logical->right_var();
      spec.pred = logical->pred();
      spec.right_type = logical->right()->output_type();
      if (logical->op_kind() == OpKind::kNestJoin) {
        spec.func = logical->func();
        spec.label = logical->label();
      }
      return PhysicalOpPtr(new NestedLoopJoinOp(std::move(left),
                                                std::move(right),
                                                std::move(spec)));
    }
    case OpKind::kNest: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr child,
                            BuildNaivePlan(logical->input()));
      return PhysicalOpPtr(new NestOp(std::move(child), logical->group_attrs(),
                                      logical->var(), logical->func(),
                                      logical->label(),
                                      logical->null_group_to_empty()));
    }
    case OpKind::kUnnest: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr child,
                            BuildNaivePlan(logical->input()));
      return PhysicalOpPtr(new UnnestOp(std::move(child),
                                        logical->unnest_attr()));
    }
    case OpKind::kUnion: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr left, BuildNaivePlan(logical->left()));
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr right,
                            BuildNaivePlan(logical->right()));
      return PhysicalOpPtr(new UnionOp(std::move(left), std::move(right)));
    }
    case OpKind::kDifference: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr left, BuildNaivePlan(logical->left()));
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr right,
                            BuildNaivePlan(logical->right()));
      return PhysicalOpPtr(new DifferenceOp(std::move(left), std::move(right)));
    }
  }
  return Status::Internal("unhandled logical operator kind");
}

Result<std::vector<Value>> Executor::Run(const LogicalOpPtr& plan) {
  TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr physical, BuildNaivePlan(plan));
  return RunPhysical(physical.get());
}

void Executor::set_num_threads(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  num_threads_ = num_threads;
  if (num_threads_ == 1) {
    pool_.reset();
  } else if (pool_ == nullptr ||
             pool_->num_threads() != static_cast<size_t>(num_threads_)) {
    pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(num_threads_));
  }
}

Result<std::vector<Value>> Executor::RunPhysical(PhysicalOp* root) {
  guard_.Reset(limits_, &stats_, fault_injector_);
  spill_.reset();
  if (spill_enabled_) {
    spill_ = std::make_unique<SpillManager>(spill_dir_, spill_block_bytes_,
                                            fault_injector_);
  }
  ExecContext ctx;
  ctx.outer_env = nullptr;
  ctx.subplans = this;
  ctx.stats = &stats_;
  ctx.pool = pool_.get();
  ctx.num_threads = num_threads_;
  ctx.guard = &guard_;
  ctx.spill = spill_.get();
  Result<std::vector<Value>> rows = CollectRows(root, &ctx);
  // Unconditional teardown — success, error, cancellation, guard trip: the
  // spill dir and every remaining file are gone before this returns, and
  // the executor is immediately reusable.
  if (spill_ != nullptr) {
    spill_->CleanupAll();
    spill_.reset();
  }
  return rows;
}

Result<Value> Executor::EvaluateSubplan(const SubplanBase& subplan,
                                        const Environment& env) {
  // Only PlanSubplan implements SubplanBase in this engine.
  const auto& plan_subplan = static_cast<const PlanSubplan&>(subplan);
  auto it = subplan_cache_.find(&subplan);
  if (it == subplan_cache_.end()) {
    TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr physical,
                          BuildNaivePlan(plan_subplan.plan()));
    it = subplan_cache_.emplace(&subplan, std::move(physical)).first;
  }
  stats_.subplan_evals++;
  ExecContext ctx;
  ctx.outer_env = &env;
  ctx.subplans = this;
  ctx.stats = &stats_;
  // The enclosing run's guard governs subplans too, so cancellation and
  // budgets reach the correlated inner blocks of the naive strategy; the
  // run's spill manager is shared for the same reason.
  ctx.guard = &guard_;
  ctx.spill = spill_.get();
  // Subplans stay serial (no pool): they re-open once per outer row, where
  // per-execution fan-out overhead would swamp any gain.
  TMDB_ASSIGN_OR_RETURN(std::vector<Value> rows,
                        CollectRows(it->second.get(), &ctx));
  return Value::Set(std::move(rows));
}

}  // namespace tmdb
