#include "exec/executor.h"

#include <utility>

#include "base/string_util.h"
#include "exec/basic_ops.h"
#include "exec/nest_op.h"
#include "exec/nested_loop_join.h"

namespace tmdb {

Result<PhysicalOpPtr> Executor::BuildNaivePlan(const LogicalOpPtr& logical) {
  switch (logical->op_kind()) {
    case OpKind::kScan:
      return PhysicalOpPtr(new TableScanOp(logical->table()));
    case OpKind::kExprSource:
      return PhysicalOpPtr(new ExprSourceOp(logical->func()));
    case OpKind::kSelect: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr child,
                            BuildNaivePlan(logical->input()));
      return PhysicalOpPtr(new FilterOp(std::move(child), logical->var(),
                                        logical->pred()));
    }
    case OpKind::kMap: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr child,
                            BuildNaivePlan(logical->input()));
      return PhysicalOpPtr(
          new MapOp(std::move(child), logical->var(), logical->func()));
    }
    case OpKind::kJoin:
    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin:
    case OpKind::kOuterJoin:
    case OpKind::kNestJoin: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr left, BuildNaivePlan(logical->left()));
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr right,
                            BuildNaivePlan(logical->right()));
      JoinSpec spec;
      switch (logical->op_kind()) {
        case OpKind::kJoin:
          spec.mode = JoinMode::kInner;
          break;
        case OpKind::kSemiJoin:
          spec.mode = JoinMode::kSemi;
          break;
        case OpKind::kAntiJoin:
          spec.mode = JoinMode::kAnti;
          break;
        case OpKind::kOuterJoin:
          spec.mode = JoinMode::kLeftOuter;
          break;
        default:
          spec.mode = JoinMode::kNestJoin;
          break;
      }
      spec.left_var = logical->left_var();
      spec.right_var = logical->right_var();
      spec.pred = logical->pred();
      spec.right_type = logical->right()->output_type();
      if (logical->op_kind() == OpKind::kNestJoin) {
        spec.func = logical->func();
        spec.label = logical->label();
      }
      return PhysicalOpPtr(new NestedLoopJoinOp(std::move(left),
                                                std::move(right),
                                                std::move(spec)));
    }
    case OpKind::kNest: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr child,
                            BuildNaivePlan(logical->input()));
      return PhysicalOpPtr(new NestOp(std::move(child), logical->group_attrs(),
                                      logical->var(), logical->func(),
                                      logical->label(),
                                      logical->null_group_to_empty()));
    }
    case OpKind::kUnnest: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr child,
                            BuildNaivePlan(logical->input()));
      return PhysicalOpPtr(new UnnestOp(std::move(child),
                                        logical->unnest_attr()));
    }
    case OpKind::kUnion: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr left, BuildNaivePlan(logical->left()));
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr right,
                            BuildNaivePlan(logical->right()));
      return PhysicalOpPtr(new UnionOp(std::move(left), std::move(right)));
    }
    case OpKind::kDifference: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr left, BuildNaivePlan(logical->left()));
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr right,
                            BuildNaivePlan(logical->right()));
      return PhysicalOpPtr(new DifferenceOp(std::move(left), std::move(right)));
    }
  }
  return Status::Internal("unhandled logical operator kind");
}

Result<std::vector<Value>> Executor::Run(const LogicalOpPtr& plan) {
  TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr physical, BuildNaivePlan(plan));
  return RunPhysical(physical.get());
}

void Executor::set_num_threads(int num_threads) {
  // A cap update, nothing more: threads live in the process-wide
  // scheduler, so a reused executor can flip between parallelism degrees
  // without tearing down or spawning anything.
  num_threads_ = num_threads < 1 ? 1 : num_threads;
}

void Executor::ArmPlanningGuard() {
  guard_.Reset(limits_, &stats_, fault_injector_);
  planning_armed_ = true;
}

void Executor::AbortPlanning() {
  planning_armed_ = false;
  guard_.ClearTripState();
}

void Executor::ArmAdaptive(const AdaptiveConfig& config) {
  adaptive_.Arm(config);
  adaptive_armed_ = true;
}

Result<std::vector<Value>> Executor::RunPhysical(PhysicalOp* root) {
  // Spill manager first: the cache overflows evicted results to disk
  // through it, so it must exist when the cache rearms.
  spill_.reset();
  if (spill_enabled_) {
    spill_ = std::make_unique<SpillManager>(spill_dir_, spill_block_bytes_,
                                            fault_injector_);
  }
  // Cache before guard: clearing the memo refunds its balance to the guard
  // in its *old* state; Reset below then re-baselines cleanly.
  cache_.Reset(subplan_cache_bytes_ > 0 ? &guard_ : nullptr,
               subplan_cache_bytes_, spill_.get());
  // When a planning phase armed the guard, its window (deadline start,
  // checkpoint count, cancellation flag) carries into the run unchanged —
  // cancellations and deadlines span planning + execution as one query.
  if (!planning_armed_) {
    guard_.Reset(limits_, &stats_, fault_injector_);
  }
  planning_armed_ = false;
  runner_ = std::make_unique<SubplanRunner>(
      subplan_cache_bytes_ > 0 ? &cache_ : nullptr, &guard_, spill_.get(),
      &stats_, adaptive_armed_ ? &adaptive_ : nullptr);
  // Register this run with the global scheduler only when it may go
  // parallel; a serial run never touches the singleton. A fresh
  // registration per run gives every query its own tag for dispatch
  // accounting while the worker threads stay shared.
  sched_.reset();
  if (num_threads_ > 1) {
    sched_ = std::make_unique<QuerySched>(num_threads_);
  }
  ExecContext ctx;
  ctx.outer_env = nullptr;
  ctx.subplans = this;
  ctx.stats = &stats_;
  ctx.sched = sched_.get();
  ctx.num_threads = num_threads_;
  ctx.guard = &guard_;
  ctx.spill = spill_.get();
  Result<std::vector<Value>> rows = CollectRows(root, &ctx);
  // A strategy switch races cooperative cancellation: if a Cancel() arrived
  // while the adaptive unwind was in flight, the user's intent wins — the
  // caller must see kCancelled and must NOT re-plan.
  if (!rows.ok() && rows.status().code() == StatusCode::kStrategySwitch &&
      guard_.cancel_pending()) {
    rows = Status::Cancelled("query cancelled");
  }
  adaptive_armed_ = false;
  adaptive_.Disarm();
  // Unconditional teardown — success, error, cancellation, guard trip: the
  // spill dir and every remaining file are gone before this returns, the
  // memoized results are dropped (the cache is per-query), and the executor
  // is immediately reusable. Counters fold into stats_ first so \stats and
  // tests see them on every exit path.
  stats_.subplan_cache_hits += cache_.hits();
  stats_.subplan_cache_misses += cache_.misses();
  stats_.subplan_cache_evictions += cache_.evictions();
  stats_.subplan_cache_disk_evictions += cache_.disk_evictions();
  stats_.subplan_cache_disk_faults += cache_.disk_faults();
  stats_.guard_checkpoints += guard_.checkpoints();
  if (sched_ != nullptr) {
    stats_.morsels_dispatched += sched_->morsels_dispatched();
    stats_.morsels_stolen += sched_->morsels_stolen();
    sched_.reset();
  }
  // Reused executors must not carry trip state between queries: a stale
  // memory-trip record would make the next query's first budget failure
  // look spill-eligible, and a cancel that arrived after the unwind would
  // kill the next query at its first checkpoint.
  guard_.ClearTripState();
  runner_.reset();
  cache_.Reset(nullptr, subplan_cache_bytes_);
  if (spill_ != nullptr) {
    spill_->CleanupAll();
    spill_.reset();
  }
  return rows;
}

Result<Value> Executor::EvaluateSubplan(const SubplanBase& subplan,
                                        const Environment& env) {
  if (runner_ == nullptr) {
    // Reached outside RunPhysical — the INSERT expression path evaluates
    // through the executor without a run. Ungoverned and uncached: these
    // are one-shot expressions.
    runner_ = std::make_unique<SubplanRunner>(nullptr, nullptr, nullptr,
                                              &stats_);
  }
  return runner_->EvaluateSubplan(subplan, env);
}

std::unique_ptr<SubplanEvaluator> Executor::Fork(ExecStats* stats) {
  return std::make_unique<SubplanRunner>(
      subplan_cache_bytes_ > 0 ? &cache_ : nullptr, &guard_, spill_.get(),
      stats, adaptive_armed_ ? &adaptive_ : nullptr);
}

}  // namespace tmdb
