#include "exec/merge_join.h"

#include <algorithm>
#include <utility>

#include "base/string_util.h"
#include "values/value_ops.h"

namespace tmdb {

Status MergeJoinOp::MaterialiseSorted(PhysicalOp* source,
                                      const std::vector<Expr>& keys,
                                      const std::string& var,
                                      std::vector<Keyed>* out) {
  TMDB_RETURN_IF_ERROR(source->Open(ctx_));
  while (true) {
    if ((out->size() & (kExecBatchSize - 1)) == 0) {
      TMDB_RETURN_IF_ERROR(build_res_.Add(kExecBatchSize * sizeof(Keyed)));
    }
    TMDB_ASSIGN_OR_RETURN(std::optional<Value> row, source->Next());
    if (!row.has_value()) break;
    TMDB_ASSIGN_OR_RETURN(Value key, EvalCompositeKey(keys, var, *row, ctx_));
    out->emplace_back(std::move(key), std::move(*row));
    ctx_->stats->rows_built++;
  }
  source->Close();
  std::sort(out->begin(), out->end(), [](const Keyed& a, const Keyed& b) {
    return a.first.Compare(b.first) < 0;
  });
  return Status::OK();
}

Status MergeJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  left_rows_.clear();
  right_rows_.clear();
  left_pos_ = 0;
  right_run_begin_ = 0;
  right_run_end_ = 0;
  run_pos_ = 0;
  left_consumed_ = true;
  left_matched_ = false;
  work_ = 0;
  build_res_.Reset(ctx->guard);
  TMDB_RETURN_IF_ERROR(
      MaterialiseSorted(left_.get(), left_keys_, spec_.left_var, &left_rows_));
  return MaterialiseSorted(right_.get(), right_keys_, spec_.right_var,
                           &right_rows_);
}

void MergeJoinOp::SeekRightRun(const Value& key) {
  // Equal consecutive left keys reuse the current run.
  if (right_run_begin_ < right_run_end_ &&
      right_rows_[right_run_begin_].first.Compare(key) == 0) {
    run_pos_ = right_run_begin_;
    return;
  }
  // Keys ascend on both sides, so the run pointer only moves forward.
  size_t begin = right_run_end_;
  while (begin < right_rows_.size() &&
         right_rows_[begin].first.Compare(key) < 0) {
    ++begin;
  }
  size_t end = begin;
  while (end < right_rows_.size() &&
         right_rows_[end].first.Compare(key) == 0) {
    ++end;
  }
  right_run_begin_ = begin;
  right_run_end_ = end;
  run_pos_ = begin;
}

Result<std::optional<Value>> MergeJoinOp::Next() {
  while (true) {
    if ((++work_ & (kExecBatchSize - 1)) == 0) {
      TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
    }
    if (left_consumed_) {
      if (left_pos_ >= left_rows_.size()) return std::optional<Value>();
      // Position the right run for the new left key. Equal consecutive left
      // keys reuse the run (SeekRightRun is monotone and idempotent for
      // equal keys).
      SeekRightRun(left_rows_[left_pos_].first);
      left_consumed_ = false;
      left_matched_ = false;
      run_pos_ = right_run_begin_;
    }

    const Value& left_row = left_rows_[left_pos_].second;

    switch (spec_.mode) {
      case JoinMode::kInner:
      case JoinMode::kLeftOuter: {
        while (run_pos_ < right_run_end_) {
          const Value& right_row = right_rows_[run_pos_++].second;
          TMDB_ASSIGN_OR_RETURN(bool match,
                                EvalJoinPred(spec_, left_row, right_row, ctx_));
          if (match) {
            left_matched_ = true;
            TMDB_ASSIGN_OR_RETURN(Value out, ConcatTuples(left_row, right_row));
            ctx_->stats->rows_emitted++;
            return std::optional<Value>(std::move(out));
          }
        }
        const bool emit_padded =
            spec_.mode == JoinMode::kLeftOuter && !left_matched_;
        Value padded_left = left_row;  // copy before advancing
        left_consumed_ = true;
        ++left_pos_;
        if (emit_padded) {
          TMDB_ASSIGN_OR_RETURN(
              Value out,
              ConcatTuples(padded_left, NullTupleOfType(spec_.right_type)));
          ctx_->stats->rows_emitted++;
          return std::optional<Value>(std::move(out));
        }
        continue;
      }

      case JoinMode::kSemi:
      case JoinMode::kAnti: {
        bool matched = false;
        for (size_t i = right_run_begin_; i < right_run_end_; ++i) {
          TMDB_ASSIGN_OR_RETURN(
              bool match,
              EvalJoinPred(spec_, left_row, right_rows_[i].second, ctx_));
          if (match) {
            matched = true;
            break;
          }
        }
        Value out = left_row;
        left_consumed_ = true;
        ++left_pos_;
        if (matched == (spec_.mode == JoinMode::kSemi)) {
          ctx_->stats->rows_emitted++;
          return std::optional<Value>(std::move(out));
        }
        continue;
      }

      case JoinMode::kNestJoin: {
        std::vector<Value> group;
        for (size_t i = right_run_begin_; i < right_run_end_; ++i) {
          TMDB_ASSIGN_OR_RETURN(
              bool match,
              EvalJoinPred(spec_, left_row, right_rows_[i].second, ctx_));
          if (match) {
            TMDB_ASSIGN_OR_RETURN(
                Value g,
                EvalJoinFunc(spec_, left_row, right_rows_[i].second, ctx_));
            group.push_back(std::move(g));
          }
        }
        TMDB_ASSIGN_OR_RETURN(Value out,
                              ExtendTuple(left_row, spec_.label,
                                          Value::Set(std::move(group))));
        left_consumed_ = true;
        ++left_pos_;
        ctx_->stats->rows_emitted++;
        return std::optional<Value>(std::move(out));
      }
    }
  }
}

void MergeJoinOp::Close() {
  left_rows_.clear();
  right_rows_.clear();
  build_res_.Release();
  // Usually closed inside MaterialiseSorted; matters on mid-drain unwind.
  left_->Close();
  right_->Close();
}

std::string MergeJoinOp::Describe() const {
  std::vector<std::string> keys;
  keys.reserve(left_keys_.size());
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    keys.push_back(left_keys_[i].ToString() + " = " +
                   right_keys_[i].ToString());
  }
  return StrCat("MergeJoin<", JoinModeName(spec_.mode), ">[", spec_.left_var,
                ",", spec_.right_var, " : keys(", Join(keys, ", "), ")]");
}

}  // namespace tmdb
