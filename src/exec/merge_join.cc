#include "exec/merge_join.h"

#include <algorithm>
#include <utility>

#include "base/string_util.h"
#include "exec/spill_util.h"
#include "spill/value_codec.h"
#include "values/value_ops.h"

namespace tmdb {

namespace {

/// Floor on external-sort run size. When residency elsewhere in the plan
/// keeps the live memory check tripping, chunks still grow to this many
/// bytes (charged with the memory comparison suspended) before flushing, so
/// a sort can never degenerate into a run per record.
constexpr size_t kMinSortRunBytes = 64u << 10;

}  // namespace

void MergeJoinOp::SortedSide::Reset(QueryGuard* guard) {
  raw.clear();
  raw.shrink_to_fit();
  rows.clear();
  rows.shrink_to_fit();
  pos = 0;
  external = false;
  drained = false;
  salvageable = false;
  if (merger != nullptr) {
    merger->Close();  // removes any remaining run files
    merger.reset();
  }
  if (sorter != nullptr) {
    sorter->AbandonRuns();
    sorter.reset();
  }
  res.Reset(guard);
}

Status MergeJoinOp::MaterialiseSorted(PhysicalOp* source,
                                      const std::vector<Expr>& keys,
                                      const std::string& var,
                                      SortedSide* side) {
  TMDB_RETURN_IF_ERROR(source->Open(ctx_));
  // From here on a memory trip leaves `raw` intact and the source usable,
  // so the spill path can take over. Failures *from the source itself*
  // clear the flag below: they are the child's problem, and our spilling
  // would not relieve it.
  side->salvageable = true;

  std::vector<Value> batch;
  size_t charged_slots = 0;
  while (true) {
    // Charge the next batch's slots *before* fetching it, so a blown budget
    // trips with every drained row still in `raw` (salvageable).
    if (side->raw.size() + kExecBatchSize > charged_slots) {
      TMDB_RETURN_IF_ERROR(side->res.Add(kExecBatchSize * sizeof(Value)));
      charged_slots += kExecBatchSize;
    }
    TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
    batch.clear();
    Result<size_t> got = source->NextBatch(&batch, kExecBatchSize);
    if (!got.ok()) {
      side->salvageable = false;
      return got.status();
    }
    if (*got == 0) break;
    ctx_->stats->rows_built += *got;
    for (Value& row : batch) side->raw.push_back(std::move(row));
  }
  side->res.Shrink((charged_slots - side->raw.size()) * sizeof(Value));
  side->drained = true;
  source->Close();

  // Key pass: rows in `raw` are copied, never disturbed, so a trip while a
  // key subplan runs still salvages every row (the spill path recomputes
  // keys; subplan re-evaluations hit the cache).
  side->rows.reserve(side->raw.size());
  for (size_t i = 0; i < side->raw.size(); ++i) {
    if ((i & (kExecBatchSize - 1)) == 0) {
      TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
      TMDB_RETURN_IF_ERROR(side->res.Add(kExecBatchSize * sizeof(Keyed)));
    }
    TMDB_ASSIGN_OR_RETURN(Value key,
                          EvalCompositeKey(keys, var, side->raw[i], ctx_));
    side->rows.emplace_back(std::move(key), side->raw[i]);
  }
  std::stable_sort(side->rows.begin(), side->rows.end(),
                   [](const Keyed& a, const Keyed& b) {
                     return a.first.Compare(b.first) < 0;
                   });
  side->res.Shrink(side->raw.size() * sizeof(Value));
  side->raw.clear();
  side->raw.shrink_to_fit();
  return Status::OK();
}

Status MergeJoinOp::ExternalSortSide(PhysicalOp* source,
                                     const std::vector<Expr>& keys,
                                     const std::string& var, SortedSide* side,
                                     const char* label) {
  side->external = true;

  // Free the in-memory attempt wholesale: rows live on in `salvaged`
  // (re-charged below as they are encoded), partial key pairs are dropped.
  std::vector<Value> salvaged = std::move(side->raw);
  side->raw.clear();
  side->rows.clear();
  side->rows.shrink_to_fit();
  side->res.Release();

  side->sorter = std::make_unique<ExternalSorter>(
      ctx_->spill, label, [this] { return CheckGuard(ctx_); },
      SortStatsSink{&ctx_->stats->spill_sort_runs,
                    &ctx_->stats->spill_bytes_written,
                    &ctx_->stats->spill_bytes_read});

  // The whole write-out (and the merge passes after it) runs with the
  // memory comparison suspended: the trip that engaged this path stands
  // until the salvaged rows are shed, and any live checkpoint — ours or
  // the source's own — would re-trip instantly. Cancel, deadline,
  // max_rows, and injected faults stay armed throughout.
  MemoryCheckSuspension suspend(ctx_->guard);

  std::vector<SortRecord> chunk;
  size_t chunk_bytes = 0;
  auto flush = [&]() -> Status {
    TMDB_RETURN_IF_ERROR(side->sorter->SpillRun(&chunk));
    side->res.Shrink(chunk_bytes);
    chunk_bytes = 0;
    return Status::OK();
  };
  auto add_row = [&](Value row) -> Status {
    TMDB_ASSIGN_OR_RETURN(Value key, EvalCompositeKey(keys, var, row, ctx_));
    SortRecord rec;
    rec.key = std::move(key);
    EncodeValue(row, &rec.payload);
    row = Value();  // free the decoded copy; the encoding carries it now
    const size_t bytes = rec.payload.size() + sizeof(SortRecord);
    TMDB_RETURN_IF_ERROR(side->res.Add(bytes));
    chunk_bytes += bytes;
    chunk.push_back(std::move(rec));
    // Chunks are sized by the *live* budget reading, not the suspended
    // check: once the floor is reached, flush whenever memory is over
    // budget. The floor stops residency held elsewhere in the plan from
    // degenerating the sort into a run per record; the flush stops chunks
    // from growing without bound while the comparison is suspended.
    if (chunk_bytes >= kMinSortRunBytes &&
        (ctx_->guard == nullptr || ctx_->guard->memory_over_budget())) {
      return flush();
    }
    return Status::OK();
  };

  for (size_t i = 0; i < salvaged.size(); ++i) {
    TMDB_RETURN_IF_ERROR(PeriodicSpillGuardCheck(ctx_, i));
    Value row = std::move(salvaged[i]);
    salvaged[i] = Value();  // free the rep promptly; memory falls as we go
    TMDB_RETURN_IF_ERROR(add_row(std::move(row)));
  }
  salvaged.clear();
  salvaged.shrink_to_fit();

  if (!side->drained) {
    std::vector<Value> batch;
    while (true) {
      TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
      batch.clear();
      TMDB_ASSIGN_OR_RETURN(size_t got,
                            source->NextBatch(&batch, kExecBatchSize));
      if (got == 0) break;
      ctx_->stats->rows_built += got;
      for (Value& row : batch) {
        TMDB_RETURN_IF_ERROR(add_row(std::move(row)));
      }
    }
    side->drained = true;
  }
  source->Close();
  TMDB_RETURN_IF_ERROR(flush());

  // Merge passes move records between files without growing memory; the
  // block buffers they hold are transient and bounded.
  TMDB_ASSIGN_OR_RETURN(side->merger, side->sorter->Merge());
  return Status::OK();
}

Status MergeJoinOp::OpenSide(PhysicalOp* source, const std::vector<Expr>& keys,
                             const std::string& var, SortedSide* side,
                             const char* label) {
  Status st = MaterialiseSorted(source, keys, var, side);
  if (st.ok()) return st;
  if (!side->salvageable || !SpillEligibleTrip(ctx_, st)) return st;
  return ExternalSortSide(source, keys, var, side, label);
}

Status MergeJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  left_side_.Reset(ctx->guard);
  right_side_.Reset(ctx->guard);
  left_cur_ = Keyed();
  right_pending_ = Keyed();
  right_pending_valid_ = false;
  right_eof_ = false;
  right_run_.clear();
  right_run_key_ = Value();
  right_run_valid_ = false;
  run_pos_ = 0;
  left_consumed_ = true;
  left_matched_ = false;
  work_ = 0;
  run_res_.Reset(ctx->guard);
  TMDB_RETURN_IF_ERROR(OpenSide(left_.get(), left_keys_, spec_.left_var,
                                &left_side_, "mj-left"));
  return OpenSide(right_.get(), right_keys_, spec_.right_var, &right_side_,
                  "mj-right");
}

Result<bool> MergeJoinOp::NextFromSide(SortedSide* side, Keyed* out) {
  if (!side->external) {
    if (side->pos >= side->rows.size()) return false;
    *out = std::move(side->rows[side->pos]);
    side->rows[side->pos] = Keyed();  // single pass; free the slot
    ++side->pos;
    return true;
  }
  Value key;
  std::string_view payload;
  bool eof = false;
  TMDB_RETURN_IF_ERROR(side->merger->Next(&key, &payload, &eof));
  if (eof) return false;
  size_t pos = 0;
  Value row;
  TMDB_RETURN_IF_ERROR(DecodeValue(payload, &pos, &row));
  out->first = std::move(key);
  out->second = std::move(row);
  return true;
}

Status MergeJoinOp::LoadRightRun(const Value& key) {
  // Equal consecutive left keys reuse the buffered run.
  if (right_run_valid_ && right_run_key_.Compare(key) == 0) {
    return Status::OK();
  }
  run_res_.Shrink(right_run_.size() * sizeof(Value));
  right_run_.clear();
  right_run_key_ = key;
  right_run_valid_ = true;

  // Skip right rows below the new left key; keys ascend on both sides, so
  // the cursor only moves forward.
  while (!right_eof_) {
    if (!right_pending_valid_) {
      TMDB_ASSIGN_OR_RETURN(bool have,
                            NextFromSide(&right_side_, &right_pending_));
      if (!have) {
        right_eof_ = true;
        break;
      }
      right_pending_valid_ = true;
    }
    if (right_pending_.first.Compare(key) < 0) {
      right_pending_ = Keyed();
      right_pending_valid_ = false;
      if ((++work_ & (kExecBatchSize - 1)) == 0) {
        TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
      }
      continue;
    }
    break;
  }

  // Buffer the equal-key run. The run is resident state during the merge,
  // so its slots are charged with the memory check live: a single run that
  // alone exceeds the budget is this operator's bottom-out.
  while (!right_eof_) {
    if (!right_pending_valid_) {
      TMDB_ASSIGN_OR_RETURN(bool have,
                            NextFromSide(&right_side_, &right_pending_));
      if (!have) {
        right_eof_ = true;
        break;
      }
      right_pending_valid_ = true;
    }
    if (right_pending_.first.Compare(key) != 0) break;  // > key; stays pending
    Status slot = run_res_.Add(sizeof(Value));
    if (!slot.ok()) {
      if (slot.code() == StatusCode::kResourceExhausted &&
          ctx_->guard != nullptr && ctx_->guard->last_trip_was_memory()) {
        return slot.WithContext(
            "merge join: one equal-key run alone exceeds the memory budget");
      }
      return slot;
    }
    right_run_.push_back(std::move(right_pending_.second));
    right_pending_ = Keyed();
    right_pending_valid_ = false;
    if ((++work_ & (kExecBatchSize - 1)) == 0) {
      TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
    }
  }
  return Status::OK();
}

Result<std::optional<Value>> MergeJoinOp::Next() {
  while (true) {
    if ((++work_ & (kExecBatchSize - 1)) == 0) {
      TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
    }
    if (left_consumed_) {
      TMDB_ASSIGN_OR_RETURN(bool have, NextFromSide(&left_side_, &left_cur_));
      if (!have) return std::optional<Value>();
      TMDB_RETURN_IF_ERROR(LoadRightRun(left_cur_.first));
      left_consumed_ = false;
      left_matched_ = false;
      run_pos_ = 0;
    }

    const Value& left_row = left_cur_.second;

    switch (spec_.mode) {
      case JoinMode::kInner:
      case JoinMode::kLeftOuter: {
        while (run_pos_ < right_run_.size()) {
          const Value& right_row = right_run_[run_pos_++];
          TMDB_ASSIGN_OR_RETURN(bool match,
                                EvalJoinPred(spec_, left_row, right_row, ctx_));
          if (match) {
            left_matched_ = true;
            TMDB_ASSIGN_OR_RETURN(Value out, ConcatTuples(left_row, right_row));
            ctx_->stats->rows_emitted++;
            return std::optional<Value>(std::move(out));
          }
        }
        const bool emit_padded =
            spec_.mode == JoinMode::kLeftOuter && !left_matched_;
        Value padded_left = left_row;  // copy before advancing
        left_consumed_ = true;
        if (emit_padded) {
          TMDB_ASSIGN_OR_RETURN(
              Value out,
              ConcatTuples(padded_left, NullTupleOfType(spec_.right_type)));
          ctx_->stats->rows_emitted++;
          return std::optional<Value>(std::move(out));
        }
        continue;
      }

      case JoinMode::kSemi:
      case JoinMode::kAnti: {
        bool matched = false;
        for (size_t i = 0; i < right_run_.size(); ++i) {
          TMDB_ASSIGN_OR_RETURN(
              bool match,
              EvalJoinPred(spec_, left_row, right_run_[i], ctx_));
          if (match) {
            matched = true;
            break;
          }
        }
        Value out = left_row;
        left_consumed_ = true;
        if (matched == (spec_.mode == JoinMode::kSemi)) {
          ctx_->stats->rows_emitted++;
          return std::optional<Value>(std::move(out));
        }
        continue;
      }

      case JoinMode::kNestJoin: {
        std::vector<Value> group;
        for (size_t i = 0; i < right_run_.size(); ++i) {
          TMDB_ASSIGN_OR_RETURN(
              bool match,
              EvalJoinPred(spec_, left_row, right_run_[i], ctx_));
          if (match) {
            TMDB_ASSIGN_OR_RETURN(
                Value g, EvalJoinFunc(spec_, left_row, right_run_[i], ctx_));
            group.push_back(std::move(g));
          }
        }
        TMDB_ASSIGN_OR_RETURN(Value out,
                              ExtendTuple(left_row, spec_.label,
                                          Value::Set(std::move(group))));
        left_consumed_ = true;
        ctx_->stats->rows_emitted++;
        return std::optional<Value>(std::move(out));
      }
    }
  }
}

void MergeJoinOp::Close() {
  left_side_.Reset(nullptr);
  right_side_.Reset(nullptr);
  left_cur_ = Keyed();
  right_pending_ = Keyed();
  right_pending_valid_ = false;
  right_run_.clear();
  right_run_key_ = Value();
  right_run_valid_ = false;
  run_res_.Release();
  // Usually closed inside the materialise phase; matters on mid-drain unwind.
  left_->Close();
  right_->Close();
}

std::string MergeJoinOp::Describe() const {
  std::vector<std::string> keys;
  keys.reserve(left_keys_.size());
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    keys.push_back(left_keys_[i].ToString() + " = " +
                   right_keys_[i].ToString());
  }
  return StrCat("MergeJoin<", JoinModeName(spec_.mode), ">[", spec_.left_var,
                ",", spec_.right_var, " : keys(", Join(keys, ", "), ")]");
}

}  // namespace tmdb
