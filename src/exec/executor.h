#ifndef TMDB_EXEC_EXECUTOR_H_
#define TMDB_EXEC_EXECUTOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/logical_op.h"
#include "base/fault_injector.h"
#include "base/result.h"
#include "exec/adaptive.h"
#include "exec/exec_context.h"
#include "exec/physical_op.h"
#include "exec/query_guard.h"
#include "exec/subplan_cache.h"
#include "sched/scheduler.h"
#include "spill/spill_manager.h"
#include "values/value.h"

namespace tmdb {

/// Runs logical plans. The executor doubles as the SubplanEvaluator: when a
/// filter or map expression contains a correlated subquery (kSubplan), the
/// inner plan is executed once per outer row with the outer variables in
/// scope — the paper's naive nested-loop semantics, which the rewritten
/// strategies are validated against.
class Executor final : public SubplanEvaluator {
 public:
  /// `num_threads` > 1 enables intra-operator parallelism: each run
  /// registers with the process-wide work-stealing scheduler and may use
  /// up to `num_threads` threads of it. 1 = serial, the default. Results
  /// are identical either way.
  explicit Executor(int num_threads = 1) { set_num_threads(num_threads); }

  /// Changes the per-query max-parallelism cap for subsequent executions.
  /// Cheap — a plain assignment; no pool is torn down or rebuilt, and no
  /// OS threads are created, whatever sequence of values a reused
  /// executor cycles through.
  void set_num_threads(int num_threads);
  int num_threads() const { return num_threads_; }

  /// Resource limits applied to each subsequent RunPhysical (and to the
  /// subplans it evaluates). Default: unlimited.
  void set_limits(const GuardLimits& limits) { limits_ = limits; }
  const GuardLimits& limits() const { return limits_; }

  /// Installs a fault injector consulted at every guard checkpoint and
  /// every spill I/O of subsequent runs (tests only; nullptr to remove).
  /// Not owned.
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_ = injector;
  }

  /// Budget for the per-run correlated-subplan memo (default 16 MiB).
  /// 0 disables memoization entirely: every outer row re-evaluates its
  /// subplan, the seed behaviour.
  void set_subplan_cache_bytes(uint64_t bytes) { subplan_cache_bytes_ = bytes; }
  uint64_t subplan_cache_bytes() const { return subplan_cache_bytes_; }

  /// Enables spill-to-disk for subsequent runs: when the memory budget
  /// trips during a hash/nest-join build, the join degrades to Grace-style
  /// partitioned execution instead of failing. `dir` empty = system temp
  /// dir; `block_bytes` 0 = 64 KiB. Off by default — with spilling off a
  /// memory trip still fails fast with kResourceExhausted.
  void set_spill_options(bool enable, std::string dir = std::string(),
                         size_t block_bytes = 0) {
    spill_enabled_ = enable;
    spill_dir_ = std::move(dir);
    spill_block_bytes_ = block_bytes;
  }

  /// The per-run governor. Valid between runs too; another thread may call
  /// guard()->Cancel() to stop an in-flight RunPhysical cooperatively.
  QueryGuard* guard() { return &guard_; }

  /// Arms the guard for a cost-based planning phase that precedes
  /// RunPhysical: sampling loops then run checkpoints under the very same
  /// guard window as the execution that follows (one deadline, one
  /// cancellation flag, one checkpoint count). The next RunPhysical skips
  /// its own guard Reset so the window is shared; AbortPlanning() rolls the
  /// arming back when planning fails and no run follows.
  void ArmPlanningGuard();
  void AbortPlanning();

  /// Arms the adaptive controller for the next RunPhysical (strategy =
  /// auto): every subplan-cache acquire is observed, and when the measured
  /// hit ratio contradicts `config.predicted_hit_ratio` by more than the
  /// threshold the run unwinds with kStrategySwitch so the caller can
  /// re-plan. One-shot: RunPhysical disarms on every exit path.
  void ArmAdaptive(const AdaptiveConfig& config);
  const AdaptiveController& adaptive() const { return adaptive_; }

  /// Direct logical→physical mapping with no optimisation: every join
  /// becomes a nested-loop join, subplans stay correlated. This is the
  /// ground-truth interpreter.
  static Result<PhysicalOpPtr> BuildNaivePlan(const LogicalOpPtr& logical);

  /// Executes `plan` via BuildNaivePlan and returns the produced rows.
  Result<std::vector<Value>> Run(const LogicalOpPtr& plan);

  /// Executes an already-built physical plan (e.g. from the Planner).
  Result<std::vector<Value>> RunPhysical(PhysicalOp* root);

  /// Work counters of all executions so far (Reset to scope a measurement).
  ExecStats* mutable_stats() { return &stats_; }
  const ExecStats& stats() const { return stats_; }

  /// SubplanEvaluator: runs the correlated inner block under `env` and
  /// returns its rows as a set value (memoized on the correlation key
  /// while a run is active and the cache is enabled).
  Result<Value> EvaluateSubplan(const SubplanBase& subplan,
                                const Environment& env) override;

  /// Forks a per-worker subplan evaluator sharing this run's cache, guard,
  /// and spill manager; morsel workers evaluate subplans through it so the
  /// parallel paths need no serial fallback.
  std::unique_ptr<SubplanEvaluator> Fork(ExecStats* stats) override;

 private:
  ExecStats stats_;
  int num_threads_ = 1;
  GuardLimits limits_;
  FaultInjector* fault_injector_ = nullptr;
  // Reset at the top of every RunPhysical; shared with subplan contexts so
  // a budget covers the whole query including correlated inner blocks.
  QueryGuard guard_;
  // Per-run registration with the global scheduler (num_threads_ > 1
  // only): tags this run's morsels with a fresh query id so cancellation
  // and accounting stay per-query while the worker threads are shared.
  std::unique_ptr<QuerySched> sched_;
  // Spill-to-disk configuration and the per-run manager. The manager is a
  // member (not a RunPhysical local) because EvaluateSubplan's contexts
  // must share it; it is torn down — temp dir included — on every exit
  // path of RunPhysical, so no outcome leaks spill files.
  bool spill_enabled_ = false;
  std::string spill_dir_;
  size_t spill_block_bytes_ = 0;
  std::unique_ptr<SpillManager> spill_;
  // Correlated-subplan memo, reset per run; its counters fold into stats_
  // at the end of each RunPhysical.
  uint64_t subplan_cache_bytes_ = kDefaultSubplanCacheBytes;
  SubplanCache cache_;
  // Strategy-auto machinery: set by ArmPlanningGuard / ArmAdaptive, both
  // consumed (and cleared) by the next RunPhysical.
  bool planning_armed_ = false;
  bool adaptive_armed_ = false;
  AdaptiveController adaptive_;
  // The coordinator's subplan runner for the active run. Also created on
  // demand (ungoverned, uncached) when EvaluateSubplan is reached outside a
  // run — the INSERT expression path.
  std::unique_ptr<SubplanRunner> runner_;
};

}  // namespace tmdb

#endif  // TMDB_EXEC_EXECUTOR_H_
