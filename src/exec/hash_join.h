#ifndef TMDB_EXEC_HASH_JOIN_H_
#define TMDB_EXEC_HASH_JOIN_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/join_common.h"
#include "exec/physical_op.h"
#include "exec/query_guard.h"

namespace tmdb {

/// Hash implementation of all join modes over equi-key predicates.
///
/// The *right* operand is always the build side. For inner joins that is
/// merely a heuristic simplification; for the nest join it is the paper's
/// correctness restriction (Section 6, "Implementation"): output must be
/// grouped by left tuples, so with a non-key join attribute only the right
/// operand may be the build table.
///
/// With ExecContext::parallel_enabled(), the build side is hash-partitioned
/// into `num_threads` disjoint partitions whose tables are built
/// concurrently, and — when the residual predicate and nest-join G function
/// are subplan-free — the probe side is materialised and probed in parallel
/// morsels. Both paths are bit-identical to serial execution: partitioning
/// preserves per-key insertion order, morsel outputs are concatenated in
/// probe order, and worker-local stats are summed deterministically.
class HashJoinOp final : public PhysicalOp {
 public:
  /// `left_keys[i] = right_keys[i]` are the extracted equi-conjuncts;
  /// `spec.pred` holds only the residual predicate (True if none).
  HashJoinOp(PhysicalOpPtr left, PhysicalOpPtr right, JoinSpec spec,
             std::vector<Expr> left_keys, std::vector<Expr> right_keys)
      : left_(std::move(left)),
        right_(std::move(right)),
        spec_(std::move(spec)),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)) {}

  Status Open(ExecContext* ctx) override;
  Result<std::optional<Value>> Next() override;
  Result<size_t> NextBatch(std::vector<Value>* out, size_t max) override;
  void Close() override;
  std::string Describe() const override;
  std::vector<const PhysicalOp*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  using BuildMap =
      std::unordered_map<Value, std::vector<Value>, ValueHash, ValueEq>;

  /// Bucket for `key` in the owning partition, or nullptr.
  const std::vector<Value>* FindBucket(const Value& key) const;

  Status BuildTables(ExecContext* ctx);
  /// Materialises the left input and probes it with parallel morsels,
  /// filling output_. Only called when the probe expressions are
  /// subplan-free.
  Status ParallelProbe();
  /// Appends the join output rows of one left row to `out` (all modes).
  Status ProcessLeftRow(const Value& left_row, ExecContext* ctx,
                        std::vector<Value>* out) const;

  Result<bool> AdvanceLeft();
  Result<std::optional<Value>> NextStreaming();

  PhysicalOpPtr left_;
  PhysicalOpPtr right_;
  JoinSpec spec_;
  std::vector<Expr> left_keys_;
  std::vector<Expr> right_keys_;
  ExecContext* ctx_ = nullptr;

  // Build side: disjoint hash partitions (one in serial execution). A key's
  // partition is Hash() % partitions_.size().
  std::vector<BuildMap> partitions_;

  // Streaming probe state (serial path).
  size_t probe_rows_ = 0;
  std::optional<Value> current_left_;
  const std::vector<Value>* current_bucket_ = nullptr;
  size_t bucket_pos_ = 0;
  bool left_matched_ = false;

  // Materialised probe output (parallel path).
  bool materialized_ = false;
  std::vector<Value> output_;
  size_t output_pos_ = 0;

  // Bytes charged to the guard for build/probe materialisation.
  GuardReservation build_res_;
};

}  // namespace tmdb

#endif  // TMDB_EXEC_HASH_JOIN_H_
