#ifndef TMDB_EXEC_HASH_JOIN_H_
#define TMDB_EXEC_HASH_JOIN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/join_common.h"
#include "exec/physical_op.h"
#include "exec/query_guard.h"

namespace tmdb {

/// Hash implementation of all join modes over equi-key predicates.
///
/// The *right* operand is always the build side. For inner joins that is
/// merely a heuristic simplification; for the nest join it is the paper's
/// correctness restriction (Section 6, "Implementation"): output must be
/// grouped by left tuples, so with a non-key join attribute only the right
/// operand may be the build table.
///
/// With ExecContext::parallel_enabled(), the build side is hash-partitioned
/// into `num_threads` disjoint partitions whose tables are built
/// concurrently, and — when the residual predicate and nest-join G function
/// are subplan-free — the probe side is materialised and probed in parallel
/// morsels. Both paths are bit-identical to serial execution: partitioning
/// preserves per-key insertion order, morsel outputs are concatenated in
/// probe order, and worker-local stats are summed deterministically.
///
/// When ExecContext::spill is set and the memory budget trips while the
/// build side materialises, the operator degrades to Grace-style
/// partitioned execution instead of failing (hash_join_spill.cc): build and
/// probe sides partition to disk on the composite key's hash, partitions
/// are processed one at a time (recursing on partitions that still exceed
/// the budget, to a bounded depth), and spilled bytes are refunded to the
/// guard. Rows that share a key always land in the same partition, so every
/// join mode — nest join grouping and dangling-row semantics included —
/// behaves exactly as in memory, and a per-left-row tag restores the
/// original output order bit for bit.
class HashJoinOp final : public PhysicalOp {
 public:
  /// `left_keys[i] = right_keys[i]` are the extracted equi-conjuncts;
  /// `spec.pred` holds only the residual predicate (True if none).
  HashJoinOp(PhysicalOpPtr left, PhysicalOpPtr right, JoinSpec spec,
             std::vector<Expr> left_keys, std::vector<Expr> right_keys)
      : left_(std::move(left)),
        right_(std::move(right)),
        spec_(std::move(spec)),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)) {}

  Status Open(ExecContext* ctx) override;
  Result<std::optional<Value>> Next() override;
  Result<size_t> NextBatch(std::vector<Value>* out, size_t max) override;
  void Close() override;
  std::string Describe() const override;
  std::vector<const PhysicalOp*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  using BuildMap =
      std::unordered_map<Value, std::vector<Value>, ValueHash, ValueEq>;

  /// Bucket for `key` in the owning partition, or nullptr.
  const std::vector<Value>* FindBucket(const Value& key) const;

  Status BuildTables(ExecContext* ctx);
  /// In-memory build from fully drained rows (serial two-pass or
  /// morsel-parallel). A memory trip during key evaluation leaves `rows`
  /// intact so the caller can divert to the spill path.
  Status BuildInMemory(ExecContext* ctx, std::vector<Value>* rows);
  /// Materialises the left input and probes it with parallel morsels,
  /// filling output_. Only called when the probe expressions are
  /// subplan-free.
  Status ParallelProbe();
  /// Appends the join output rows of one left row to `out` (all modes).
  Status ProcessLeftRow(const Value& left_row, ExecContext* ctx,
                        std::vector<Value>* out) const;
  /// Mode dispatch for one left row against its (possibly null) bucket.
  Status ProcessMatch(const Value& left_row, const std::vector<Value>* bucket,
                      ExecContext* ctx, std::vector<Value>* out) const;

  // --- Grace spill path (hash_join_spill.cc) ---

  /// One partition's pair of files on disk.
  struct SpillPart {
    std::string build_path;
    std::string probe_path;
  };

  /// True when `s` is a memory-budget trip that spilling can relieve.
  bool SpillEligible(const ExecContext* ctx, const Status& s) const;
  /// Diverts the build to disk: partitions the salvaged (and any remaining)
  /// build rows plus the whole probe side, then processes partitions one at
  /// a time into output_. `right_open` says the build input still has rows.
  Status SpillBuildAndProbe(ExecContext* ctx, std::vector<Value> build_rows,
                            bool right_open);
  /// Loads one partition's build file and probes its probe file, appending
  /// (left-row tag, output row) pairs. Recurses via Repartition when the
  /// partition alone exceeds the budget.
  Status ProcessSpillPartition(ExecContext* ctx, const SpillPart& part,
                               int depth,
                               std::vector<std::pair<uint64_t, Value>>* out);
  /// Splits both files of `part` into kSpillFanout sub-partitions at
  /// depth+1 without decoding rows (keys only), then recurses on each.
  Status RepartitionAndRecurse(ExecContext* ctx, const SpillPart& part,
                               int depth,
                               std::vector<std::pair<uint64_t, Value>>* out);

  Result<bool> AdvanceLeft();
  Result<std::optional<Value>> NextStreaming();

  PhysicalOpPtr left_;
  PhysicalOpPtr right_;
  JoinSpec spec_;
  std::vector<Expr> left_keys_;
  std::vector<Expr> right_keys_;
  ExecContext* ctx_ = nullptr;

  // Build side: disjoint hash partitions (one in serial execution). A key's
  // partition is Hash() % partitions_.size().
  std::vector<BuildMap> partitions_;

  // Streaming probe state (serial path).
  size_t probe_rows_ = 0;
  std::optional<Value> current_left_;
  const std::vector<Value>* current_bucket_ = nullptr;
  size_t bucket_pos_ = 0;
  bool left_matched_ = false;

  // Materialised probe output (parallel and spill paths).
  bool materialized_ = false;
  std::vector<Value> output_;
  size_t output_pos_ = 0;

  // True once this Open diverted to the Grace spill path.
  bool spilled_ = false;

  // Bytes charged to the guard for build/probe materialisation.
  GuardReservation build_res_;
};

}  // namespace tmdb

#endif  // TMDB_EXEC_HASH_JOIN_H_
