#ifndef TMDB_EXEC_HASH_JOIN_H_
#define TMDB_EXEC_HASH_JOIN_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/join_common.h"
#include "exec/physical_op.h"

namespace tmdb {

/// Hash implementation of all join modes over equi-key predicates.
///
/// The *right* operand is always the build side. For inner joins that is
/// merely a heuristic simplification; for the nest join it is the paper's
/// correctness restriction (Section 6, "Implementation"): output must be
/// grouped by left tuples, so with a non-key join attribute only the right
/// operand may be the build table.
class HashJoinOp final : public PhysicalOp {
 public:
  /// `left_keys[i] = right_keys[i]` are the extracted equi-conjuncts;
  /// `spec.pred` holds only the residual predicate (True if none).
  HashJoinOp(PhysicalOpPtr left, PhysicalOpPtr right, JoinSpec spec,
             std::vector<Expr> left_keys, std::vector<Expr> right_keys)
      : left_(std::move(left)),
        right_(std::move(right)),
        spec_(std::move(spec)),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)) {}

  Status Open(ExecContext* ctx) override;
  Result<std::optional<Value>> Next() override;
  void Close() override;
  std::string Describe() const override;
  std::vector<const PhysicalOp*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  Result<bool> AdvanceLeft();

  PhysicalOpPtr left_;
  PhysicalOpPtr right_;
  JoinSpec spec_;
  std::vector<Expr> left_keys_;
  std::vector<Expr> right_keys_;
  ExecContext* ctx_ = nullptr;

  std::unordered_map<Value, std::vector<Value>, ValueHash, ValueEq> build_;
  std::optional<Value> current_left_;
  const std::vector<Value>* current_bucket_ = nullptr;
  size_t bucket_pos_ = 0;
  bool left_matched_ = false;
};

}  // namespace tmdb

#endif  // TMDB_EXEC_HASH_JOIN_H_
