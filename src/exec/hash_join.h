#ifndef TMDB_EXEC_HASH_JOIN_H_
#define TMDB_EXEC_HASH_JOIN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/arena.h"
#include "exec/columnar.h"
#include "exec/join_common.h"
#include "exec/physical_op.h"
#include "exec/query_guard.h"
#include "values/column_store.h"

namespace tmdb {

/// Hash implementation of all join modes over equi-key predicates.
///
/// The *right* operand is always the build side. For inner joins that is
/// merely a heuristic simplification; for the nest join it is the paper's
/// correctness restriction (Section 6, "Implementation"): output must be
/// grouped by left tuples, so with a non-key join attribute only the right
/// operand may be the build table.
///
/// With ExecContext::parallel_enabled(), the build side is hash-partitioned
/// into `num_threads` disjoint partitions whose tables are built
/// concurrently, and — when the residual predicate and nest-join G function
/// are subplan-free — the probe side is materialised and probed in parallel
/// morsels. Both paths are bit-identical to serial execution: partitioning
/// preserves per-key insertion order, morsel outputs are concatenated in
/// probe order, and worker-local stats are summed deterministically.
///
/// When ExecContext::spill is set and the memory budget trips while the
/// build side materialises, the operator degrades to Grace-style
/// partitioned execution instead of failing (hash_join_spill.cc): build and
/// probe sides partition to disk on the composite key's hash, partitions
/// are processed one at a time (recursing on partitions that still exceed
/// the budget, to a bounded depth), and spilled bytes are refunded to the
/// guard. Rows that share a key always land in the same partition, so every
/// join mode — nest join grouping and dangling-row semantics included —
/// behaves exactly as in memory, and a per-left-row tag restores the
/// original output order bit for bit.
class HashJoinOp final : public PhysicalOp {
 public:
  /// `left_keys[i] = right_keys[i]` are the extracted equi-conjuncts;
  /// `spec.pred` holds only the residual predicate (True if none).
  ///
  /// `fast_keys` (from ResolveFastKeys) enables the raw-key fast path: the
  /// build keys are extracted into flat arena-backed arrays and chained
  /// into a power-of-two hash table, and each probe hashes its raw key
  /// instead of materialising a composite key Value. The fast path verifies
  /// the build keys' runtime kinds (strict Int / strict non-NaN Real /
  /// strict String per the spec) and silently falls back to the row build
  /// when any key deviates, so results and stats stay bit-identical.
  HashJoinOp(PhysicalOpPtr left, PhysicalOpPtr right, JoinSpec spec,
             std::vector<Expr> left_keys, std::vector<Expr> right_keys,
             std::optional<FastKeySpec> fast_keys = std::nullopt)
      : left_(std::move(left)),
        right_(std::move(right)),
        spec_(std::move(spec)),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)),
        fast_spec_(std::move(fast_keys)) {}

  Status Open(ExecContext* ctx) override;
  Result<std::optional<Value>> Next() override;
  Result<size_t> NextBatch(std::vector<Value>* out, size_t max) override;
  void Close() override;
  std::string Describe() const override;
  std::vector<const PhysicalOp*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  using BuildMap =
      std::unordered_map<Value, std::vector<Value>, ValueHash, ValueEq>;

  /// Bucket for `key` in the owning partition, or nullptr.
  const std::vector<Value>* FindBucket(const Value& key) const;

  Status BuildTables(ExecContext* ctx);
  /// In-memory build from fully drained rows (serial two-pass or
  /// morsel-parallel). A memory trip during key evaluation leaves `rows`
  /// intact so the caller can divert to the spill path.
  Status BuildInMemory(ExecContext* ctx, std::vector<Value>* rows);
  /// Materialises the left input and probes it with parallel morsels,
  /// filling output_. Only called when the probe expressions are
  /// subplan-free.
  Status ParallelProbe();
  /// Appends the join output rows of one left row to `out` (all modes);
  /// dispatches to the fast probe when the fast table is active.
  Status ProcessLeftRow(const Value& left_row, ExecContext* ctx,
                        std::vector<Value>* out) const;
  /// Mode dispatch for one left row against a match iterator — shared by
  /// the row path (map bucket) and the fast path (hash chain).
  template <typename Iter>
  Status ProcessMatchIt(const Value& left_row, Iter it, ExecContext* ctx,
                        std::vector<Value>* out) const;
  /// Bucket-shaped entry point for the spill path (hash_join_spill.cc).
  Status ProcessMatch(const Value& left_row, const std::vector<Value>* bucket,
                      ExecContext* ctx, std::vector<Value>* out) const;

  // --- Raw-key fast path ---

  /// Chain sentinel for heads_/next_.
  static constexpr uint32_t kNil = 0xffffffffu;

  /// Builds the flat chained table from the drained build rows. Returns
  /// false (with `rows` intact, arena reset by the caller) when a build key
  /// deviates from the spec's kind contract; errors propagate (a memory
  /// trip here is spill-eligible, also with `rows` intact).
  Result<bool> BuildFast(ExecContext* ctx, std::vector<Value>* rows);
  /// Fast-path analogue of ProcessLeftRow.
  Status ProcessLeftRowFast(const Value& left_row, ExecContext* ctx,
                            std::vector<Value>* out) const;
  /// Match iterator over one fast-table hash chain (defined in the .cc).
  struct FastIter;
  /// Serial fast probe: drains left batches through ProcessLeftRowFast into
  /// serve_ and hands rows out one at a time.
  Result<std::optional<Value>> NextFastStreaming();

  // --- Grace spill path (hash_join_spill.cc) ---

  /// One partition's pair of files on disk.
  struct SpillPart {
    std::string build_path;
    std::string probe_path;
  };

  /// True when `s` is a memory-budget trip that spilling can relieve.
  bool SpillEligible(const ExecContext* ctx, const Status& s) const;
  /// Diverts the build to disk: partitions the salvaged (and any remaining)
  /// build rows plus the whole probe side, then processes partitions one at
  /// a time into output_. `right_open` says the build input still has rows.
  Status SpillBuildAndProbe(ExecContext* ctx, std::vector<Value> build_rows,
                            bool right_open);
  /// Loads one partition's build file and probes its probe file, appending
  /// (left-row tag, output row) pairs. Recurses via Repartition when the
  /// partition alone exceeds the budget.
  Status ProcessSpillPartition(ExecContext* ctx, const SpillPart& part,
                               int depth,
                               std::vector<std::pair<uint64_t, Value>>* out);
  /// Splits both files of `part` into kSpillFanout sub-partitions at
  /// depth+1 without decoding rows (keys only), then recurses on each.
  Status RepartitionAndRecurse(ExecContext* ctx, const SpillPart& part,
                               int depth,
                               std::vector<std::pair<uint64_t, Value>>* out);

  Result<bool> AdvanceLeft();
  Result<std::optional<Value>> NextStreaming();

  PhysicalOpPtr left_;
  PhysicalOpPtr right_;
  JoinSpec spec_;
  std::vector<Expr> left_keys_;
  std::vector<Expr> right_keys_;
  ExecContext* ctx_ = nullptr;

  // Build side: disjoint hash partitions (one in serial execution). A key's
  // partition is Hash() % partitions_.size().
  std::vector<BuildMap> partitions_;

  // Streaming probe state (serial path).
  size_t probe_rows_ = 0;
  std::optional<Value> current_left_;
  const std::vector<Value>* current_bucket_ = nullptr;
  size_t bucket_pos_ = 0;
  bool left_matched_ = false;

  // Materialised probe output (parallel and spill paths).
  bool materialized_ = false;
  std::vector<Value> output_;
  size_t output_pos_ = 0;

  // True once this Open diverted to the Grace spill path.
  bool spilled_ = false;

  // Bytes charged to the guard for build/probe materialisation.
  GuardReservation build_res_;

  // --- Raw-key fast path state (live while fast_active_) ---
  std::optional<FastKeySpec> fast_spec_;
  bool fast_active_ = false;
  std::vector<Value> build_rows_;  // build rows in input order
  Arena arena_;                    // key arrays + heads/next chains
  const int64_t* fk_i64_ = nullptr;
  const double* fk_f64_ = nullptr;
  const uint32_t* fk_codes_ = nullptr;
  uint32_t* heads_ = nullptr;
  uint32_t* next_ = nullptr;
  uint64_t bucket_mask_ = 0;
  StringDict fast_dict_;  // build-key strings; probe via Lookup (read-only)

  // Probe shortcuts, decided at Open: a literal-true residual predicate
  // still counts one predicate_eval per considered pair, and an identity G
  // (= right_var) hands back the right row — both exactly what the
  // evaluator would produce.
  bool pred_is_true_ = false;
  bool func_is_right_ident_ = false;

  // Serial fast probe: per-batch output buffer served row-by-row.
  std::vector<Value> probe_batch_;
  std::vector<Value> serve_;
  size_t serve_pos_ = 0;

  // Nest-join group memo: first-matching-build-row id → (group set, match
  // count). Only enabled serial + literal-true pred + identity G + no
  // memory budget, so it cannot race or shift budget behaviour; hits add
  // the recorded match count to predicate_evals, mirroring re-evaluation.
  bool memo_enabled_ = false;
  mutable std::unordered_map<uint32_t, std::pair<Value, uint64_t>> memo_;
};

}  // namespace tmdb

#endif  // TMDB_EXEC_HASH_JOIN_H_
