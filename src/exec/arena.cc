#include "exec/arena.h"

namespace tmdb {

namespace {
inline size_t AlignUp(size_t n) { return (n + 15) & ~size_t{15}; }
}  // namespace

Result<void*> Arena::Allocate(size_t bytes) {
  bytes = AlignUp(bytes == 0 ? 1 : bytes);
  if (blocks_.empty() || blocks_.back().size - blocks_.back().used < bytes) {
    const size_t block_size = bytes > block_bytes_ ? bytes : block_bytes_;
    // Charge (and checkpoint) before allocating: a tripped budget must not
    // leave memory the guard never saw.
    TMDB_RETURN_IF_ERROR(res_.Add(block_size));
    Block block;
    block.data = std::make_unique<char[]>(block_size);
    block.size = block_size;
    blocks_.push_back(std::move(block));
  }
  Block& b = blocks_.back();
  void* out = b.data.get() + b.used;
  b.used += bytes;
  return out;
}

void Arena::Reset() {
  blocks_.clear();
  res_.Release();
}

}  // namespace tmdb
