#ifndef TMDB_EXEC_PHYSICAL_OP_H_
#define TMDB_EXEC_PHYSICAL_OP_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/result.h"
#include "exec/exec_context.h"
#include "values/column_store.h"
#include "values/value.h"

namespace tmdb {

class PhysicalOp;
using PhysicalOpPtr = std::unique_ptr<PhysicalOp>;

/// Default batch size used by the executor when draining a plan.
inline constexpr size_t kExecBatchSize = 1024;

/// Volcano-style pull iterator over complex-object rows.
///
/// Protocol: Open(ctx) → Next()* → Close(). Open fully resets operator
/// state, so a plan can be executed repeatedly (the naive nested-loop
/// strategy re-opens correlated subplans once per outer row).
class PhysicalOp {
 public:
  virtual ~PhysicalOp() = default;

  PhysicalOp() = default;
  PhysicalOp(const PhysicalOp&) = delete;
  PhysicalOp& operator=(const PhysicalOp&) = delete;

  /// (Re)initialises the operator. `ctx` must outlive the iteration.
  virtual Status Open(ExecContext* ctx) = 0;
  /// Returns the next row, or nullopt at end of stream.
  virtual Result<std::optional<Value>> Next() = 0;
  /// Appends up to `max` rows to `out` and returns the number appended.
  /// Returns 0 only at end of stream. The default implementation loops over
  /// Next(); operators with materialised or vectorised state override it to
  /// amortise the per-row virtual call. Mixing Next() and NextBatch() on the
  /// same open operator is allowed — both advance the same cursor.
  virtual Result<size_t> NextBatch(std::vector<Value>* out, size_t max);
  /// Releases per-execution state (materialised inputs, hash tables).
  virtual void Close() = 0;

  // -- Columnar protocol ----------------------------------------------------
  //
  // Operators over flat (all-basic-attribute) rows may additionally expose
  // their output as ColumnBatches. After Open(), a consumer checks
  // columnar_ready(); only then may it call NextColumnBatch(). The three
  // cursors are one: Next(), NextBatch() and NextColumnBatch() all advance
  // the same stream, and the row forms of a columnar operator are served
  // from ColumnStore::RowValue — bit-identical to what the row path emits.

  /// True when, for the current Open(), this operator produces
  /// ColumnBatches. False (the permanent default) means row-only.
  virtual bool columnar_ready() const { return false; }
  /// The store this operator's batches view, or nullptr when not
  /// columnar_ready().
  virtual const ColumnStore* columnar_source() const { return nullptr; }
  /// Returns the next batch; len == 0 at end of stream. The returned view
  /// (ids pointer in particular) is valid only until the next call on this
  /// operator. Batches are at most kExecBatchSize rows.
  virtual Result<ColumnBatch> NextColumnBatch();

  /// One-line description (operator name + parameters).
  virtual std::string Describe() const = 0;
  /// Child operators, for tree printing.
  virtual std::vector<const PhysicalOp*> children() const = 0;

  /// Multi-line physical plan rendering.
  std::string ToString() const;
};

/// Runs a physical plan to completion and collects its rows (in emission
/// order; callers wanting set semantics wrap the result in Value::Set).
Result<std::vector<Value>> CollectRows(PhysicalOp* op, ExecContext* ctx);

}  // namespace tmdb

#endif  // TMDB_EXEC_PHYSICAL_OP_H_
