#ifndef TMDB_EXEC_NEST_OP_H_
#define TMDB_EXEC_NEST_OP_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exec/physical_op.h"
#include "exec/query_guard.h"
#include "expr/expr.h"

namespace tmdb {

/// ν (and the ν* variant): hash-groups child rows by `group_attrs`,
/// emitting one tuple per group — the key attributes extended with
/// (label = { elem(var := row) | row ∈ group }).
///
/// With null_group_to_empty (ν*, after Scholl), elements that are NULL or
/// tuples consisting solely of NULLs are dropped, so groups that exist only
/// because of outerjoin padding become the empty set. This is what makes
/// the Ganski–Wong outerjoin strategy equivalent to the nest join (paper,
/// Section 6, "Algebraic Properties").
///
/// With ExecContext::parallel_enabled() and a subplan-free element
/// expression, grouping is hash-partitioned: workers evaluate keys/elements
/// over morsels, then each of `num_threads` workers groups one disjoint
/// partition; groups are merged by first-occurrence row index, reproducing
/// the serial output (group insertion order) exactly.
///
/// Memory-bounded execution: a spill-eligible memory trip during the drain
/// or the grouping (serial and parallel paths alike) degrades to
/// Grace-style partitioned grouping on disk — rows are hash-partitioned by
/// group key into spill files tagged with their input row index, each
/// partition is grouped in read order (= input order), a partition whose
/// group state still overflows repartitions recursively, and the collected
/// group tuples are stable-sorted by first-occurrence tag, reproducing the
/// serial group insertion order bit for bit.
class NestOp final : public PhysicalOp {
 public:
  NestOp(PhysicalOpPtr child, std::vector<std::string> group_attrs,
         std::string var, Expr elem, std::string label,
         bool null_group_to_empty)
      : child_(std::move(child)),
        group_attrs_(std::move(group_attrs)),
        var_(std::move(var)),
        elem_(std::move(elem)),
        label_(std::move(label)),
        null_group_to_empty_(null_group_to_empty) {}

  Status Open(ExecContext* ctx) override;
  Result<std::optional<Value>> Next() override;
  Result<size_t> NextBatch(std::vector<Value>* out, size_t max) override;
  void Close() override;
  std::string Describe() const override;
  std::vector<const PhysicalOp*> children() const override {
    return {child_.get()};
  }

 private:
  /// Both grouping paths read `*rows` without disturbing it, so a memory
  /// trip mid-grouping leaves the caller's rows intact for the spill path.
  Status OpenSerial(std::vector<Value>* rows);
  Status OpenParallel(std::vector<Value>* rows);

  /// Spill path (nest_op_spill.cc): partitions `rows` plus the rest of the
  /// child (when !drained) to disk and groups partition by partition.
  Status SpillGroup(std::vector<Value> rows, bool drained);
  Status ProcessNestPartition(const std::string& path, int depth,
                              std::vector<std::pair<uint64_t, Value>>* out);
  Status RepartitionNest(const std::string& path, int depth,
                         std::vector<std::pair<uint64_t, Value>>* out);

  /// True for the values ν* discards: NULL itself, or a tuple whose
  /// attributes are all NULL (the image of an outerjoin-padded row).
  static bool IsNullPadding(const Value& v);

  PhysicalOpPtr child_;
  std::vector<std::string> group_attrs_;
  std::string var_;
  Expr elem_;
  std::string label_;
  bool null_group_to_empty_;

  ExecContext* ctx_ = nullptr;
  std::vector<Value> output_;  // materialised at Open
  size_t pos_ = 0;
  GuardReservation build_res_;  // bytes charged for materialised input/output
};

}  // namespace tmdb

#endif  // TMDB_EXEC_NEST_OP_H_
