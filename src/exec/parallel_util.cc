#include "exec/parallel_util.h"

#include <algorithm>
#include <exception>
#include <future>
#include <utility>

#include "base/string_util.h"
#include "exec/query_guard.h"

namespace tmdb {

bool ExprHasSubplan(const Expr& e) {
  switch (e.expr_kind()) {
    case ExprKind::kSubplan:
      return true;
    case ExprKind::kLiteral:
    case ExprKind::kVarRef:
      return false;
    case ExprKind::kFieldAccess:
      return ExprHasSubplan(e.field_base());
    case ExprKind::kBinary:
      return ExprHasSubplan(e.lhs()) || ExprHasSubplan(e.rhs());
    case ExprKind::kUnary:
      return ExprHasSubplan(e.operand());
    case ExprKind::kQuantifier:
      return ExprHasSubplan(e.quant_collection()) ||
             ExprHasSubplan(e.quant_pred());
    case ExprKind::kAggregate:
      return ExprHasSubplan(e.agg_arg());
    case ExprKind::kTupleCtor:
    case ExprKind::kSetCtor: {
      for (const Expr& elem : e.ctor_elements()) {
        if (ExprHasSubplan(elem)) return true;
      }
      return false;
    }
  }
  return true;  // unknown kind: be conservative, stay serial
}

std::vector<MorselRange> SplitMorsels(size_t n, int num_threads) {
  std::vector<MorselRange> morsels;
  if (n == 0) return morsels;
  const size_t max_morsels =
      std::max<size_t>(1, static_cast<size_t>(num_threads) * 4);
  const size_t count = std::min(n, max_morsels);
  const size_t base = n / count;
  const size_t extra = n % count;
  size_t begin = 0;
  for (size_t i = 0; i < count; ++i) {
    const size_t len = base + (i < extra ? 1 : 0);
    morsels.push_back({begin, begin + len});
    begin += len;
  }
  return morsels;
}

namespace {

// Task boundary: checkpoint first (a tripped guard skips the work), then
// run the body with exceptions converted to Status so nothing escapes into
// the exception-free engine or wedges the pool.
Status RunMorselTask(QueryGuard* guard,
                     const std::function<Status(size_t, MorselRange)>& body,
                     size_t index, MorselRange range) {
  if (guard != nullptr) {
    Status status = guard->Check();
    if (!status.ok()) return status;
  }
  try {
    return body(index, range);
  } catch (const std::exception& e) {
    return Status::Internal(StrCat("parallel task threw: ", e.what()));
  } catch (...) {
    return Status::Internal("parallel task threw a non-standard exception");
  }
}

}  // namespace

Status ParallelForMorsels(
    ThreadPool* pool, QueryGuard* guard,
    const std::vector<MorselRange>& morsels,
    const std::function<Status(size_t, MorselRange)>& body) {
  std::vector<std::future<Status>> futures;
  futures.reserve(morsels.size());
  for (size_t i = 0; i < morsels.size(); ++i) {
    const MorselRange range = morsels[i];
    futures.push_back(pool->Submit([&body, guard, i, range] {
      return RunMorselTask(guard, body, i, range);
    }));
  }
  Status first = Status::OK();
  for (std::future<Status>& future : futures) {
    Status status;
    try {
      status = future.get();
    } catch (const std::exception& e) {
      status = Status::Internal(StrCat("parallel task threw: ", e.what()));
    } catch (...) {
      status = Status::Internal("parallel task threw a non-standard exception");
    }
    if (first.ok() && !status.ok()) first = std::move(status);
  }
  return first;
}

}  // namespace tmdb
