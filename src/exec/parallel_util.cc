#include "exec/parallel_util.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "base/string_util.h"
#include "exec/query_guard.h"

namespace tmdb {

void AccumulateStats(const std::vector<ExecStats>& locals, ExecStats* total) {
  for (const ExecStats& s : locals) {
    total->rows_emitted += s.rows_emitted;
    total->predicate_evals += s.predicate_evals;
    total->subplan_evals += s.subplan_evals;
    total->hash_probes += s.hash_probes;
    total->rows_built += s.rows_built;
    total->spill_partitions += s.spill_partitions;
    total->spill_bytes_written += s.spill_bytes_written;
    total->spill_bytes_read += s.spill_bytes_read;
    total->spill_max_depth = std::max(total->spill_max_depth,
                                      s.spill_max_depth);
    total->spill_sort_runs += s.spill_sort_runs;
    total->subplan_cache_hits += s.subplan_cache_hits;
    total->subplan_cache_misses += s.subplan_cache_misses;
    total->subplan_cache_evictions += s.subplan_cache_evictions;
    total->subplan_cache_disk_evictions += s.subplan_cache_disk_evictions;
    total->subplan_cache_disk_faults += s.subplan_cache_disk_faults;
    total->guard_checkpoints += s.guard_checkpoints;
  }
}

std::vector<std::unique_ptr<SubplanEvaluator>> ForkSubplanEvaluators(
    SubplanEvaluator* subplans, std::vector<ExecStats>* local_stats) {
  std::vector<std::unique_ptr<SubplanEvaluator>> forked(local_stats->size());
  if (subplans != nullptr) {
    for (size_t m = 0; m < forked.size(); ++m) {
      forked[m] = subplans->Fork(&(*local_stats)[m]);
    }
  }
  return forked;
}

std::vector<MorselRange> SplitMorsels(size_t n, int num_threads) {
  std::vector<MorselRange> morsels;
  if (n == 0) return morsels;
  const size_t threads =
      static_cast<size_t>(num_threads < 1 ? 1 : num_threads);
  // Row-aware granularity: target-sized morsels, floored at one morsel per
  // permitted thread (when the input has that many rows), capped so huge
  // inputs keep a bounded dispatch count.
  size_t count = (n + kMorselTargetRows - 1) / kMorselTargetRows;
  count = std::max(count, std::min(n, threads));
  count = std::min({count, kMaxMorselsPerDispatch, n});
  const size_t base = n / count;
  const size_t extra = n % count;
  size_t begin = 0;
  for (size_t i = 0; i < count; ++i) {
    const size_t len = base + (i < extra ? 1 : 0);
    morsels.push_back({begin, begin + len});
    begin += len;
  }
  return morsels;
}

namespace {

// Task boundary: checkpoint first (a tripped guard skips the work), then
// run the body with exceptions converted to Status so nothing escapes into
// the exception-free engine or wedges a scheduler worker.
Status RunMorselTask(QueryGuard* guard,
                     const std::function<Status(size_t, MorselRange)>& body,
                     size_t index, MorselRange range) {
  if (guard != nullptr) {
    Status status = guard->Check();
    if (!status.ok()) return status;
  }
  try {
    return body(index, range);
  } catch (const std::exception& e) {
    return Status::Internal(StrCat("parallel task threw: ", e.what()));
  } catch (...) {
    return Status::Internal("parallel task threw a non-standard exception");
  }
}

}  // namespace

Status ParallelForMorsels(
    QuerySched* sched, QueryGuard* guard,
    const std::vector<MorselRange>& morsels,
    const std::function<Status(size_t, MorselRange)>& body) {
  if (morsels.empty()) return Status::OK();
  if (sched == nullptr) {
    // Inline fallback: identical task boundary and first-error-in-order
    // semantics, no scheduler interaction at all.
    Status first = Status::OK();
    for (size_t i = 0; i < morsels.size(); ++i) {
      Status status = RunMorselTask(guard, body, i, morsels[i]);
      if (first.ok() && !status.ok()) first = std::move(status);
    }
    return first;
  }
  return Scheduler::Global().RunTaskSet(
      sched, morsels.size(), [&body, guard, &morsels](size_t i) {
        return RunMorselTask(guard, body, i, morsels[i]);
      });
}

}  // namespace tmdb
