#include "exec/columnar.h"

#include <cstring>
#include <unordered_map>
#include <utility>

namespace tmdb {

namespace {

// Wrapping int64 arithmetic (two's complement, matching what the row path's
// plain int64 ops do on every supported target, without the formal UB).
inline int64_t WrapAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}
inline int64_t WrapSub(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) -
                              static_cast<uint64_t>(b));
}
inline int64_t WrapMul(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) *
                              static_cast<uint64_t>(b));
}
inline int64_t WrapNeg(int64_t a) {
  return static_cast<int64_t>(0ull - static_cast<uint64_t>(a));
}

// CompareDoubles' tri-state: NaN is incomparable, so it lands on 0
// ("equal") against everything — the compiled path must agree.
inline int TriState(double x, double y) {
  if (x < y) return -1;
  if (x > y) return 1;
  return 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

class ColumnPredicateCompiler {
 public:
  using Op = ColumnPredicate::Op;
  using Cmp = ColumnPredicate::Cmp;
  using Instr = ColumnPredicate::Instr;

  // A compile-time operand: either a materialised slot or a still-foldable
  // literal.
  struct Opnd {
    enum class K {
      kSlotI64,
      kSlotF64,
      kSlotB,
      kSlotStr,
      kLitI64,
      kLitF64,
      kLitB,
      kLitStr,
    };
    K k = K::kLitB;
    int slot = -1;  // slot operands
    int col = -1;   // kSlotStr: source column
    int64_t i = 0;  // kLitI64 / kLitB (0 or 1)
    double d = 0;   // kLitF64
    Value sv;       // kLitStr

    bool IsInt() const { return k == K::kSlotI64 || k == K::kLitI64; }
    bool IsF64() const { return k == K::kSlotF64 || k == K::kLitF64; }
    bool IsNum() const { return IsInt() || IsF64(); }
    bool IsBool() const { return k == K::kSlotB || k == K::kLitB; }
    bool IsStr() const { return k == K::kSlotStr || k == K::kLitStr; }
    bool IsLit() const {
      return k == K::kLitI64 || k == K::kLitF64 || k == K::kLitB ||
             k == K::kLitStr;
    }
  };

  ColumnPredicateCompiler(ColumnPredicate* p, const std::string& var,
                          const Type& row_type)
      : p_(p), var_(var), row_type_(row_type) {}

  bool Run(const Expr& pred) {
    const std::vector<Field>& fields = row_type_.fields();
    p_->arity_ = fields.size();
    p_->col_names_.reserve(fields.size());
    p_->col_kinds_.reserve(fields.size());
    for (const Field& f : fields) {
      ColumnKind ck;
      switch (f.type.kind()) {
        case TypeKind::kInt:
          ck = ColumnKind::kInt64;
          break;
        case TypeKind::kReal:
          ck = ColumnKind::kFloat64;
          break;
        case TypeKind::kBool:
          ck = ColumnKind::kBool;
          break;
        case TypeKind::kString:
          ck = ColumnKind::kString;
          break;
        default:
          // A store with this layout cannot exist; the compiled program
          // would never be offered a batch. Refuse up front.
          return false;
      }
      p_->col_names_.push_back(f.name);
      p_->col_kinds_.push_back(ck);
    }

    auto res = CompileNode(pred);
    if (!res.has_value() || !res->IsBool()) return false;
    if (res->IsLit()) {
      int slot = NewSlot();
      Instr ins;
      ins.op = Op::kBroadcastBool;
      ins.dst = static_cast<int16_t>(slot);
      ins.lit = static_cast<int16_t>(res->i != 0 ? 1 : 0);
      p_->instrs_.push_back(ins);
      p_->result_slot_ = slot;
    } else {
      p_->result_slot_ = res->slot;
    }
    return true;
  }

 private:
  int NewSlot() { return p_->num_slots_++; }

  Instr MakeInstr(Op op, int dst, int a = -1, int b = -1) {
    Instr ins;
    ins.op = op;
    ins.dst = static_cast<int16_t>(dst);
    ins.a = static_cast<int16_t>(a);
    ins.b = static_cast<int16_t>(b);
    return ins;
  }

  int MaterializeI64(const Opnd& o) {
    if (o.k == Opnd::K::kSlotI64) return o.slot;
    // kLitI64
    int dst = NewSlot();
    Instr ins = MakeInstr(Op::kBroadcastI64, dst);
    ins.lit = static_cast<int16_t>(p_->lit_i64_.size());
    p_->lit_i64_.push_back(o.i);
    p_->instrs_.push_back(ins);
    return dst;
  }

  int MaterializeF64(const Opnd& o) {
    switch (o.k) {
      case Opnd::K::kSlotF64:
        return o.slot;
      case Opnd::K::kSlotI64: {
        int dst = NewSlot();
        p_->instrs_.push_back(MakeInstr(Op::kCastI64F64, dst, o.slot));
        return dst;
      }
      default: {
        // Literal: promote through the same (double) image AsNumeric uses.
        double d = o.k == Opnd::K::kLitF64 ? o.d : static_cast<double>(o.i);
        int dst = NewSlot();
        Instr ins = MakeInstr(Op::kBroadcastF64, dst);
        ins.lit = static_cast<int16_t>(p_->lit_f64_.size());
        p_->lit_f64_.push_back(d);
        p_->instrs_.push_back(ins);
        return dst;
      }
    }
  }

  int MaterializeBool(const Opnd& o) {
    if (o.k == Opnd::K::kSlotB) return o.slot;
    int dst = NewSlot();
    Instr ins = MakeInstr(Op::kBroadcastBool, dst);
    ins.lit = static_cast<int16_t>(o.i != 0 ? 1 : 0);
    p_->instrs_.push_back(ins);
    return dst;
  }

  static Opnd LitBool(bool b) {
    Opnd o;
    o.k = Opnd::K::kLitB;
    o.i = b ? 1 : 0;
    return o;
  }

  static Cmp Mirror(Cmp c) {
    switch (c) {
      case Cmp::kLt:
        return Cmp::kGt;
      case Cmp::kLe:
        return Cmp::kGe;
      case Cmp::kGt:
        return Cmp::kLt;
      case Cmp::kGe:
        return Cmp::kLe;
      default:
        return c;  // Eq/Ne are symmetric
    }
  }

  static bool ApplyCmp(Cmp c, int tri) {
    switch (c) {
      case Cmp::kEq:
        return tri == 0;
      case Cmp::kNe:
        return tri != 0;
      case Cmp::kLt:
        return tri < 0;
      case Cmp::kLe:
        return tri <= 0;
      case Cmp::kGt:
        return tri > 0;
      case Cmp::kGe:
        return tri >= 0;
    }
    return false;
  }

  std::optional<Opnd> CompileNode(const Expr& e) {
    switch (e.expr_kind()) {
      case ExprKind::kLiteral:
        return CompileLiteral(e);
      case ExprKind::kFieldAccess:
        return CompileField(e);
      case ExprKind::kUnary:
        return CompileUnary(e);
      case ExprKind::kBinary:
        return CompileBinary(e);
      default:
        // VarRef (whole-tuple), quantifiers, aggregates, subplans,
        // constructors: row path.
        return std::nullopt;
    }
  }

  std::optional<Opnd> CompileLiteral(const Expr& e) {
    const Value& v = e.literal_value();
    Opnd o;
    if (v.is_int()) {
      o.k = Opnd::K::kLitI64;
      o.i = v.AsInt();
    } else if (v.is_real()) {
      o.k = Opnd::K::kLitF64;
      o.d = v.AsNumeric();
    } else if (v.is_bool()) {
      o.k = Opnd::K::kLitB;
      o.i = v.AsBool() ? 1 : 0;
    } else if (v.is_string()) {
      o.k = Opnd::K::kLitStr;
      o.sv = v;
    } else {
      return std::nullopt;  // NULL / sets / tuples: row path
    }
    return o;
  }

  std::optional<Opnd> CompileField(const Expr& e) {
    const Expr& base = e.field_base();
    if (!base.is_var() || base.var_name() != var_) return std::nullopt;
    int idx = row_type_.FieldIndex(e.field_name());
    if (idx < 0) return std::nullopt;
    auto cached = load_cache_.find(idx);
    if (cached != load_cache_.end()) return cached->second;

    Opnd o;
    Instr ins;
    ins.col = static_cast<int16_t>(idx);
    switch (p_->col_kinds_[idx]) {
      case ColumnKind::kInt64:
        o.k = Opnd::K::kSlotI64;
        ins.op = Op::kLoadI64;
        break;
      case ColumnKind::kFloat64:
        o.k = Opnd::K::kSlotF64;
        ins.op = Op::kLoadF64;
        break;
      case ColumnKind::kBool:
        o.k = Opnd::K::kSlotB;
        ins.op = Op::kLoadBool;
        break;
      case ColumnKind::kString:
        o.k = Opnd::K::kSlotStr;
        ins.op = Op::kLoadStr;
        o.col = idx;
        break;
    }
    o.slot = NewSlot();
    ins.dst = static_cast<int16_t>(o.slot);
    p_->instrs_.push_back(ins);
    load_cache_.emplace(idx, o);
    return o;
  }

  std::optional<Opnd> CompileUnary(const Expr& e) {
    switch (e.unary_op()) {
      case UnaryOp::kNot: {
        auto o = CompileNode(e.operand());
        if (!o.has_value() || !o->IsBool()) return std::nullopt;
        if (o->IsLit()) return LitBool(o->i == 0);
        Opnd r;
        r.k = Opnd::K::kSlotB;
        r.slot = NewSlot();
        p_->instrs_.push_back(MakeInstr(Op::kNot, r.slot, o->slot));
        return r;
      }
      case UnaryOp::kNeg: {
        auto o = CompileNode(e.operand());
        if (!o.has_value() || !o->IsNum()) return std::nullopt;
        if (o->k == Opnd::K::kLitI64) {
          Opnd r = *o;
          r.i = WrapNeg(o->i);
          return r;
        }
        if (o->k == Opnd::K::kLitF64) {
          Opnd r = *o;
          r.d = -o->d;
          return r;
        }
        Opnd r;
        r.slot = NewSlot();
        if (o->k == Opnd::K::kSlotI64) {
          r.k = Opnd::K::kSlotI64;
          p_->instrs_.push_back(MakeInstr(Op::kNegI64, r.slot, o->slot));
        } else {
          r.k = Opnd::K::kSlotF64;
          p_->instrs_.push_back(MakeInstr(Op::kNegF64, r.slot, o->slot));
        }
        return r;
      }
      default:
        return std::nullopt;  // IsNull, Unnest: row path
    }
  }

  std::optional<Opnd> CompileBinary(const Expr& e) {
    const BinaryOp op = e.binary_op();
    switch (op) {
      case BinaryOp::kAnd:
      case BinaryOp::kOr: {
        auto a = CompileNode(e.lhs());
        if (!a.has_value() || !a->IsBool()) return std::nullopt;
        auto b = CompileNode(e.rhs());
        if (!b.has_value() || !b->IsBool()) return std::nullopt;
        // Constant folding is sound even though the row path
        // short-circuits: compilable operands are total.
        const bool is_and = op == BinaryOp::kAnd;
        if (a->IsLit()) return (a->i != 0) == is_and ? b : a;
        if (b->IsLit()) return (b->i != 0) == is_and ? a : b;
        Opnd r;
        r.k = Opnd::K::kSlotB;
        r.slot = NewSlot();
        p_->instrs_.push_back(
            MakeInstr(is_and ? Op::kAnd : Op::kOr, r.slot, a->slot, b->slot));
        return r;
      }
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
        return CompileArith(op, e);
      case BinaryOp::kEq:
      case BinaryOp::kNe:
        return CompileCompare(op == BinaryOp::kEq ? Cmp::kEq : Cmp::kNe, e);
      case BinaryOp::kLt:
        return CompileCompare(Cmp::kLt, e);
      case BinaryOp::kLe:
        return CompileCompare(Cmp::kLe, e);
      case BinaryOp::kGt:
        return CompileCompare(Cmp::kGt, e);
      case BinaryOp::kGe:
        return CompileCompare(Cmp::kGe, e);
      default:
        // kDiv (runtime error on zero), membership, set algebra: row path.
        return std::nullopt;
    }
  }

  std::optional<Opnd> CompileArith(BinaryOp op, const Expr& e) {
    auto a = CompileNode(e.lhs());
    if (!a.has_value() || !a->IsNum()) return std::nullopt;
    auto b = CompileNode(e.rhs());
    if (!b.has_value() || !b->IsNum()) return std::nullopt;

    if (a->IsInt() && b->IsInt()) {
      if (a->IsLit() && b->IsLit()) {
        Opnd r;
        r.k = Opnd::K::kLitI64;
        switch (op) {
          case BinaryOp::kAdd:
            r.i = WrapAdd(a->i, b->i);
            break;
          case BinaryOp::kSub:
            r.i = WrapSub(a->i, b->i);
            break;
          default:
            r.i = WrapMul(a->i, b->i);
            break;
        }
        return r;
      }
      int sa = MaterializeI64(*a);
      int sb = MaterializeI64(*b);
      Opnd r;
      r.k = Opnd::K::kSlotI64;
      r.slot = NewSlot();
      Op code = op == BinaryOp::kAdd   ? Op::kAddI64
                : op == BinaryOp::kSub ? Op::kSubI64
                                       : Op::kMulI64;
      p_->instrs_.push_back(MakeInstr(code, r.slot, sa, sb));
      return r;
    }

    // Mixed or real: the row path promotes both sides via AsNumeric.
    double da = a->k == Opnd::K::kLitF64   ? a->d
                : a->k == Opnd::K::kLitI64 ? static_cast<double>(a->i)
                                           : 0.0;
    double db = b->k == Opnd::K::kLitF64   ? b->d
                : b->k == Opnd::K::kLitI64 ? static_cast<double>(b->i)
                                           : 0.0;
    if (a->IsLit() && b->IsLit()) {
      Opnd r;
      r.k = Opnd::K::kLitF64;
      switch (op) {
        case BinaryOp::kAdd:
          r.d = da + db;
          break;
        case BinaryOp::kSub:
          r.d = da - db;
          break;
        default:
          r.d = da * db;
          break;
      }
      return r;
    }
    int sa = MaterializeF64(*a);
    int sb = MaterializeF64(*b);
    Opnd r;
    r.k = Opnd::K::kSlotF64;
    r.slot = NewSlot();
    Op code = op == BinaryOp::kAdd   ? Op::kAddF64
              : op == BinaryOp::kSub ? Op::kSubF64
                                     : Op::kMulF64;
    p_->instrs_.push_back(MakeInstr(code, r.slot, sa, sb));
    return r;
  }

  std::optional<Opnd> CompileCompare(Cmp cmp, const Expr& e) {
    auto a = CompileNode(e.lhs());
    if (!a.has_value()) return std::nullopt;
    auto b = CompileNode(e.rhs());
    if (!b.has_value()) return std::nullopt;
    const bool is_eq = cmp == Cmp::kEq || cmp == Cmp::kNe;

    if (a->IsNum() && b->IsNum()) {
      if (is_eq && a->IsInt() && b->IsInt()) {
        // Int = Int is the one exact comparison (Value::Compare).
        if (a->IsLit() && b->IsLit()) {
          return LitBool((a->i == b->i) == (cmp == Cmp::kEq));
        }
        int sa = MaterializeI64(*a);
        int sb = MaterializeI64(*b);
        Opnd r;
        r.k = Opnd::K::kSlotB;
        r.slot = NewSlot();
        p_->instrs_.push_back(MakeInstr(
            cmp == Cmp::kEq ? Op::kCmpEqI64 : Op::kCmpNeI64, r.slot, sa, sb));
        return r;
      }
      // Everything else — mixed equality AND all orderings, Int/Int
      // included (OrderedCompare promotes unconditionally) — is the
      // tri-state double compare.
      double da = a->k == Opnd::K::kLitF64   ? a->d
                  : a->k == Opnd::K::kLitI64 ? static_cast<double>(a->i)
                                             : 0.0;
      double db = b->k == Opnd::K::kLitF64   ? b->d
                  : b->k == Opnd::K::kLitI64 ? static_cast<double>(b->i)
                                             : 0.0;
      if (a->IsLit() && b->IsLit()) {
        return LitBool(ApplyCmp(cmp, TriState(da, db)));
      }
      int sa = MaterializeF64(*a);
      int sb = MaterializeF64(*b);
      Opnd r;
      r.k = Opnd::K::kSlotB;
      r.slot = NewSlot();
      Instr ins = MakeInstr(Op::kCmpF64, r.slot, sa, sb);
      ins.cmp = cmp;
      p_->instrs_.push_back(ins);
      return r;
    }

    if (a->IsStr() && b->IsStr()) return CompileStrCompare(cmp, *a, *b);

    if (a->IsBool() && b->IsBool()) {
      if (!is_eq) return std::nullopt;  // ordering bools: row path (error)
      if (a->IsLit() && b->IsLit()) {
        return LitBool((a->i == b->i) == (cmp == Cmp::kEq));
      }
      int sa = MaterializeBool(*a);
      int sb = MaterializeBool(*b);
      Opnd r;
      r.k = Opnd::K::kSlotB;
      r.slot = NewSlot();
      Instr ins = MakeInstr(Op::kCmpBool, r.slot, sa, sb);
      ins.cmp = cmp;
      p_->instrs_.push_back(ins);
      return r;
    }

    // Mismatched basic kinds. Columns are kind-exact, so at runtime
    // Value::Compare ranks the kinds and never returns 0: equality is
    // constantly false, inequality constantly true. Ordering across kinds
    // is a runtime type error on the row path — don't mask it.
    if (is_eq) return LitBool(cmp == Cmp::kNe);
    return std::nullopt;
  }

  std::optional<Opnd> CompileStrCompare(Cmp cmp, Opnd a, Opnd b) {
    if (a.IsLit() && b.IsLit()) {
      int tri = a.sv.AsString().compare(b.sv.AsString());
      return LitBool(ApplyCmp(cmp, tri));
    }
    if (a.IsLit()) {
      // Normalise to slot-first, mirroring the comparison.
      std::swap(a, b);
      cmp = Mirror(cmp);
    }
    Opnd r;
    r.k = Opnd::K::kSlotB;
    r.slot = NewSlot();
    Instr ins = MakeInstr(b.IsLit() ? Op::kCmpStrLit : Op::kCmpStrStr, r.slot,
                          a.slot, b.IsLit() ? -1 : b.slot);
    ins.cmp = cmp;
    ins.col = static_cast<int16_t>(a.col);
    if (b.IsLit()) {
      ins.lit = static_cast<int16_t>(p_->lit_str_.size());
      p_->lit_str_.push_back(b.sv);
    } else {
      ins.col2 = static_cast<int16_t>(b.col);
    }
    p_->instrs_.push_back(ins);
    return r;
  }

  ColumnPredicate* p_;
  const std::string& var_;
  const Type& row_type_;
  std::unordered_map<int, Opnd> load_cache_;
};

std::optional<ColumnPredicate> ColumnPredicate::Compile(
    const Expr& pred, const std::string& var, const Type& row_type) {
  if (!row_type.is_tuple()) return std::nullopt;
  if (row_type.fields().empty()) return std::nullopt;
  ColumnPredicate p;
  ColumnPredicateCompiler compiler(&p, var, row_type);
  if (!compiler.Run(pred)) return std::nullopt;
  return p;
}

bool ColumnPredicate::Matches(const ColumnStore& store) const {
  if (store.num_columns() != arity_) return false;
  for (size_t i = 0; i < arity_; ++i) {
    if (store.column(i).kind != col_kinds_[i]) return false;
    if (store.column_name(i) != col_names_[i]) return false;
  }
  return true;
}

Status ColumnPredicate::AllocScratch(Arena* arena, uint32_t cap,
                                     Scratch* out) const {
  out->slots.assign(static_cast<size_t>(num_slots_), nullptr);
  out->cap = cap;
  for (int s = 0; s < num_slots_; ++s) {
    // Every slot is 8 bytes per row regardless of its element type; bool
    // and code slots simply use a prefix.
    TMDB_ASSIGN_OR_RETURN(void* buf,
                          arena->Allocate(static_cast<size_t>(cap) * 8));
    out->slots[static_cast<size_t>(s)] = static_cast<char*>(buf);
  }
  return Status::OK();
}

Status ColumnPredicate::Eval(const ColumnBatch& batch, Scratch* scratch,
                             uint8_t* keep) const {
  if (batch.store == nullptr || batch.len > scratch->cap) {
    return Status::Internal("ColumnPredicate::Eval: batch exceeds scratch");
  }
  const ColumnStore& store = *batch.store;
  const uint32_t len = batch.len;
  const uint32_t* ids = batch.ids;
  const uint32_t first = batch.first;

  auto I64 = [&](int s) {
    return reinterpret_cast<int64_t*>(scratch->slots[static_cast<size_t>(s)]);
  };
  auto F64 = [&](int s) {
    return reinterpret_cast<double*>(scratch->slots[static_cast<size_t>(s)]);
  };
  auto U32 = [&](int s) {
    return reinterpret_cast<uint32_t*>(scratch->slots[static_cast<size_t>(s)]);
  };
  auto B8 = [&](int s) {
    return reinterpret_cast<uint8_t*>(scratch->slots[static_cast<size_t>(s)]);
  };
  auto apply_cmp = [](Cmp c, int tri) -> bool {
    switch (c) {
      case Cmp::kEq:
        return tri == 0;
      case Cmp::kNe:
        return tri != 0;
      case Cmp::kLt:
        return tri < 0;
      case Cmp::kLe:
        return tri <= 0;
      case Cmp::kGt:
        return tri > 0;
      case Cmp::kGe:
        return tri >= 0;
    }
    return false;
  };

  for (const Instr& ins : instrs_) {
    switch (ins.op) {
      case Op::kLoadI64: {
        const int64_t* src = store.column(ins.col).i64.data();
        int64_t* dst = I64(ins.dst);
        if (ids == nullptr) {
          const int64_t* s = src + first;
          for (uint32_t i = 0; i < len; ++i) dst[i] = s[i];
        } else {
          for (uint32_t i = 0; i < len; ++i) dst[i] = src[ids[i]];
        }
        break;
      }
      case Op::kLoadF64: {
        const double* src = store.column(ins.col).f64.data();
        double* dst = F64(ins.dst);
        if (ids == nullptr) {
          const double* s = src + first;
          for (uint32_t i = 0; i < len; ++i) dst[i] = s[i];
        } else {
          for (uint32_t i = 0; i < len; ++i) dst[i] = src[ids[i]];
        }
        break;
      }
      case Op::kLoadBool: {
        const uint8_t* src = store.column(ins.col).b8.data();
        uint8_t* dst = B8(ins.dst);
        if (ids == nullptr) {
          const uint8_t* s = src + first;
          for (uint32_t i = 0; i < len; ++i) dst[i] = s[i];
        } else {
          for (uint32_t i = 0; i < len; ++i) dst[i] = src[ids[i]];
        }
        break;
      }
      case Op::kLoadStr: {
        const uint32_t* src = store.column(ins.col).codes.data();
        uint32_t* dst = U32(ins.dst);
        if (ids == nullptr) {
          const uint32_t* s = src + first;
          for (uint32_t i = 0; i < len; ++i) dst[i] = s[i];
        } else {
          for (uint32_t i = 0; i < len; ++i) dst[i] = src[ids[i]];
        }
        break;
      }
      case Op::kBroadcastI64: {
        const int64_t v = lit_i64_[static_cast<size_t>(ins.lit)];
        int64_t* dst = I64(ins.dst);
        for (uint32_t i = 0; i < len; ++i) dst[i] = v;
        break;
      }
      case Op::kBroadcastF64: {
        const double v = lit_f64_[static_cast<size_t>(ins.lit)];
        double* dst = F64(ins.dst);
        for (uint32_t i = 0; i < len; ++i) dst[i] = v;
        break;
      }
      case Op::kBroadcastBool: {
        const uint8_t v = static_cast<uint8_t>(ins.lit != 0 ? 1 : 0);
        uint8_t* dst = B8(ins.dst);
        for (uint32_t i = 0; i < len; ++i) dst[i] = v;
        break;
      }
      case Op::kCastI64F64: {
        const int64_t* a = I64(ins.a);
        double* dst = F64(ins.dst);
        for (uint32_t i = 0; i < len; ++i) dst[i] = static_cast<double>(a[i]);
        break;
      }
      case Op::kNegI64: {
        const int64_t* a = I64(ins.a);
        int64_t* dst = I64(ins.dst);
        for (uint32_t i = 0; i < len; ++i) dst[i] = WrapNeg(a[i]);
        break;
      }
      case Op::kNegF64: {
        const double* a = F64(ins.a);
        double* dst = F64(ins.dst);
        for (uint32_t i = 0; i < len; ++i) dst[i] = -a[i];
        break;
      }
      case Op::kAddI64: {
        const int64_t* a = I64(ins.a);
        const int64_t* b = I64(ins.b);
        int64_t* dst = I64(ins.dst);
        for (uint32_t i = 0; i < len; ++i) dst[i] = WrapAdd(a[i], b[i]);
        break;
      }
      case Op::kSubI64: {
        const int64_t* a = I64(ins.a);
        const int64_t* b = I64(ins.b);
        int64_t* dst = I64(ins.dst);
        for (uint32_t i = 0; i < len; ++i) dst[i] = WrapSub(a[i], b[i]);
        break;
      }
      case Op::kMulI64: {
        const int64_t* a = I64(ins.a);
        const int64_t* b = I64(ins.b);
        int64_t* dst = I64(ins.dst);
        for (uint32_t i = 0; i < len; ++i) dst[i] = WrapMul(a[i], b[i]);
        break;
      }
      case Op::kAddF64: {
        const double* a = F64(ins.a);
        const double* b = F64(ins.b);
        double* dst = F64(ins.dst);
        for (uint32_t i = 0; i < len; ++i) dst[i] = a[i] + b[i];
        break;
      }
      case Op::kSubF64: {
        const double* a = F64(ins.a);
        const double* b = F64(ins.b);
        double* dst = F64(ins.dst);
        for (uint32_t i = 0; i < len; ++i) dst[i] = a[i] - b[i];
        break;
      }
      case Op::kMulF64: {
        const double* a = F64(ins.a);
        const double* b = F64(ins.b);
        double* dst = F64(ins.dst);
        for (uint32_t i = 0; i < len; ++i) dst[i] = a[i] * b[i];
        break;
      }
      case Op::kCmpEqI64: {
        const int64_t* a = I64(ins.a);
        const int64_t* b = I64(ins.b);
        uint8_t* dst = B8(ins.dst);
        for (uint32_t i = 0; i < len; ++i) {
          dst[i] = static_cast<uint8_t>(a[i] == b[i]);
        }
        break;
      }
      case Op::kCmpNeI64: {
        const int64_t* a = I64(ins.a);
        const int64_t* b = I64(ins.b);
        uint8_t* dst = B8(ins.dst);
        for (uint32_t i = 0; i < len; ++i) {
          dst[i] = static_cast<uint8_t>(a[i] != b[i]);
        }
        break;
      }
      case Op::kCmpF64: {
        const double* a = F64(ins.a);
        const double* b = F64(ins.b);
        uint8_t* dst = B8(ins.dst);
        // Tri-state forms: NaN compares "equal" to everything, exactly as
        // CompareDoubles ranks it.
        switch (ins.cmp) {
          case Cmp::kEq:
            for (uint32_t i = 0; i < len; ++i) {
              dst[i] = static_cast<uint8_t>(!(a[i] < b[i]) && !(a[i] > b[i]));
            }
            break;
          case Cmp::kNe:
            for (uint32_t i = 0; i < len; ++i) {
              dst[i] = static_cast<uint8_t>((a[i] < b[i]) || (a[i] > b[i]));
            }
            break;
          case Cmp::kLt:
            for (uint32_t i = 0; i < len; ++i) {
              dst[i] = static_cast<uint8_t>(a[i] < b[i]);
            }
            break;
          case Cmp::kLe:
            for (uint32_t i = 0; i < len; ++i) {
              dst[i] = static_cast<uint8_t>(!(a[i] > b[i]));
            }
            break;
          case Cmp::kGt:
            for (uint32_t i = 0; i < len; ++i) {
              dst[i] = static_cast<uint8_t>(a[i] > b[i]);
            }
            break;
          case Cmp::kGe:
            for (uint32_t i = 0; i < len; ++i) {
              dst[i] = static_cast<uint8_t>(!(a[i] < b[i]));
            }
            break;
        }
        break;
      }
      case Op::kCmpBool: {
        const uint8_t* a = B8(ins.a);
        const uint8_t* b = B8(ins.b);
        uint8_t* dst = B8(ins.dst);
        if (ins.cmp == Cmp::kEq) {
          for (uint32_t i = 0; i < len; ++i) {
            dst[i] = static_cast<uint8_t>(a[i] == b[i]);
          }
        } else {
          for (uint32_t i = 0; i < len; ++i) {
            dst[i] = static_cast<uint8_t>(a[i] != b[i]);
          }
        }
        break;
      }
      case Op::kCmpStrStr: {
        const StringDict& da = *store.column(ins.col).dict;
        const StringDict& db = *store.column(ins.col2).dict;
        const uint32_t* a = U32(ins.a);
        const uint32_t* b = U32(ins.b);
        uint8_t* dst = B8(ins.dst);
        if (&da == &db && (ins.cmp == Cmp::kEq || ins.cmp == Cmp::kNe)) {
          const uint8_t ne = ins.cmp == Cmp::kNe ? 1 : 0;
          for (uint32_t i = 0; i < len; ++i) {
            dst[i] = static_cast<uint8_t>(a[i] == b[i]) ^ ne;
          }
        } else {
          const Cmp c = ins.cmp;
          for (uint32_t i = 0; i < len; ++i) {
            int tri = da.str(a[i]).compare(db.str(b[i]));
            dst[i] = static_cast<uint8_t>(apply_cmp(c, tri));
          }
        }
        break;
      }
      case Op::kCmpStrLit: {
        const StringDict& dict = *store.column(ins.col).dict;
        const uint32_t* a = U32(ins.a);
        uint8_t* dst = B8(ins.dst);
        const Value& lit = lit_str_[static_cast<size_t>(ins.lit)];
        if (ins.cmp == Cmp::kEq || ins.cmp == Cmp::kNe) {
          // Equality by code: a literal the dictionary never saw matches
          // nothing (kNoCode is never a stored code).
          const uint32_t code = dict.Lookup(lit);
          const uint8_t ne = ins.cmp == Cmp::kNe ? 1 : 0;
          for (uint32_t i = 0; i < len; ++i) {
            dst[i] = static_cast<uint8_t>(a[i] == code) ^ ne;
          }
        } else {
          const std::string& s = lit.AsString();
          const Cmp c = ins.cmp;
          for (uint32_t i = 0; i < len; ++i) {
            int tri = dict.str(a[i]).compare(s);
            dst[i] = static_cast<uint8_t>(apply_cmp(c, tri));
          }
        }
        break;
      }
      case Op::kAnd: {
        const uint8_t* a = B8(ins.a);
        const uint8_t* b = B8(ins.b);
        uint8_t* dst = B8(ins.dst);
        for (uint32_t i = 0; i < len; ++i) {
          dst[i] = static_cast<uint8_t>(a[i] & b[i]);
        }
        break;
      }
      case Op::kOr: {
        const uint8_t* a = B8(ins.a);
        const uint8_t* b = B8(ins.b);
        uint8_t* dst = B8(ins.dst);
        for (uint32_t i = 0; i < len; ++i) {
          dst[i] = static_cast<uint8_t>(a[i] | b[i]);
        }
        break;
      }
      case Op::kNot: {
        const uint8_t* a = B8(ins.a);
        uint8_t* dst = B8(ins.dst);
        for (uint32_t i = 0; i < len; ++i) {
          dst[i] = static_cast<uint8_t>(a[i] ^ 1u);
        }
        break;
      }
    }
  }

  std::memcpy(keep, scratch->slots[static_cast<size_t>(result_slot_)], len);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Fast join keys
// ---------------------------------------------------------------------------

std::optional<FastKeySpec> ResolveFastKeys(const std::vector<Expr>& left_keys,
                                           const std::vector<Expr>& right_keys,
                                           const std::string& left_var,
                                           const std::string& right_var) {
  if (left_keys.size() != 1 || right_keys.size() != 1) return std::nullopt;
  auto field_of = [](const Expr& e,
                     const std::string& var) -> const std::string* {
    if (!e.is_field_access()) return nullptr;
    const Expr& base = e.field_base();
    if (!base.is_var() || base.var_name() != var) return nullptr;
    return &e.field_name();
  };
  const std::string* lf = field_of(left_keys[0], left_var);
  const std::string* rf = field_of(right_keys[0], right_var);
  if (lf == nullptr || rf == nullptr) return std::nullopt;

  const TypeKind lt = left_keys[0].type().kind();
  const TypeKind rt = right_keys[0].type().kind();
  FastKeySpec spec;
  if (lt == TypeKind::kInt && rt == TypeKind::kInt) {
    spec.kind = FastKeySpec::Kind::kI64;
  } else if (lt == TypeKind::kString && rt == TypeKind::kString) {
    spec.kind = FastKeySpec::Kind::kStr;
  } else if ((lt == TypeKind::kInt || lt == TypeKind::kReal) &&
             (rt == TypeKind::kInt || rt == TypeKind::kReal)) {
    // Mixed numerics hash the double image. That is only sound when the
    // build (right) side is *statically* Real: the build verifies every
    // key is runtime-Real, so each row-path comparison against a build key
    // is mixed-or-real and goes through CompareDoubles — never the exact
    // Int/Int route the double image can't reproduce.
    if (rt != TypeKind::kReal) return std::nullopt;
    spec.kind = FastKeySpec::Kind::kF64;
  } else {
    return std::nullopt;  // bools / mismatched kinds: row path
  }
  spec.left_field = *lf;
  spec.right_field = *rf;
  return spec;
}

}  // namespace tmdb
