#ifndef TMDB_EXEC_PARALLEL_UTIL_H_
#define TMDB_EXEC_PARALLEL_UTIL_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "base/result.h"
#include "base/thread_pool.h"
#include "exec/exec_context.h"
#include "expr/eval.h"

namespace tmdb {

/// Sums worker-local counters into the shared stats, in morsel order, so a
/// parallel run reports exactly the counters of its serial equivalent.
/// spill_max_depth is a high-water mark and is maxed rather than summed.
void AccumulateStats(const std::vector<ExecStats>& locals, ExecStats* total);

/// One forked subplan evaluator per morsel, each writing to that morsel's
/// entry in `local_stats`, so subplan-bearing expressions run safely inside
/// worker tasks and their counters sum back deterministically (this is what
/// lets the morsel paths handle correlated subqueries with no serial
/// fallback). A slot is nullptr when `subplans` is null or cannot fork;
/// workers then fall back to sharing `subplans` itself, which the Fork
/// contract requires to be thread-safe in that case.
std::vector<std::unique_ptr<SubplanEvaluator>> ForkSubplanEvaluators(
    SubplanEvaluator* subplans, std::vector<ExecStats>* local_stats);

/// A contiguous index range [begin, end) — one unit of parallel work.
struct MorselRange {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

/// Splits [0, n) into at most 4 * num_threads contiguous morsels, so the
/// pool's shared queue load-balances uneven per-row costs (the essence of
/// morsel-driven scheduling with static ranges).
std::vector<MorselRange> SplitMorsels(size_t n, int num_threads);

class QueryGuard;

/// Runs body(morsel_index, range) for every morsel on `pool` and waits for
/// all of them. Returns the first non-OK status in morsel order, so error
/// reporting is deterministic regardless of scheduling. Each task runs a
/// guard checkpoint before its body (when `guard` is non-null), so a
/// tripped guard drains the remaining morsels cheaply instead of doing
/// their work. A task that throws is caught at the task boundary and
/// converted to kInternal — the engine is exception-free and the pool must
/// never be poisoned by a rogue expression.
Status ParallelForMorsels(ThreadPool* pool, QueryGuard* guard,
                          const std::vector<MorselRange>& morsels,
                          const std::function<Status(size_t, MorselRange)>& body);

}  // namespace tmdb

#endif  // TMDB_EXEC_PARALLEL_UTIL_H_
