#ifndef TMDB_EXEC_PARALLEL_UTIL_H_
#define TMDB_EXEC_PARALLEL_UTIL_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "base/result.h"
#include "base/thread_pool.h"
#include "expr/expr.h"

namespace tmdb {

/// True if `e` contains a kSubplan node anywhere. Correlated subplans must
/// be evaluated through the (single-threaded, stateful) Executor, so any
/// expression containing one forces the operator onto its serial path.
bool ExprHasSubplan(const Expr& e);

/// A contiguous index range [begin, end) — one unit of parallel work.
struct MorselRange {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

/// Splits [0, n) into at most 4 * num_threads contiguous morsels, so the
/// pool's shared queue load-balances uneven per-row costs (the essence of
/// morsel-driven scheduling with static ranges).
std::vector<MorselRange> SplitMorsels(size_t n, int num_threads);

class QueryGuard;

/// Runs body(morsel_index, range) for every morsel on `pool` and waits for
/// all of them. Returns the first non-OK status in morsel order, so error
/// reporting is deterministic regardless of scheduling. Each task runs a
/// guard checkpoint before its body (when `guard` is non-null), so a
/// tripped guard drains the remaining morsels cheaply instead of doing
/// their work. A task that throws is caught at the task boundary and
/// converted to kInternal — the engine is exception-free and the pool must
/// never be poisoned by a rogue expression.
Status ParallelForMorsels(ThreadPool* pool, QueryGuard* guard,
                          const std::vector<MorselRange>& morsels,
                          const std::function<Status(size_t, MorselRange)>& body);

}  // namespace tmdb

#endif  // TMDB_EXEC_PARALLEL_UTIL_H_
