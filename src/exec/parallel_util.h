#ifndef TMDB_EXEC_PARALLEL_UTIL_H_
#define TMDB_EXEC_PARALLEL_UTIL_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "base/result.h"
#include "exec/exec_context.h"
#include "expr/eval.h"
#include "sched/scheduler.h"

namespace tmdb {

/// Sums worker-local counters into the shared stats, in morsel order, so a
/// parallel run reports exactly the counters of its serial equivalent.
/// spill_max_depth is a high-water mark and is maxed rather than summed.
void AccumulateStats(const std::vector<ExecStats>& locals, ExecStats* total);

/// One forked subplan evaluator per morsel, each writing to that morsel's
/// entry in `local_stats`, so subplan-bearing expressions run safely inside
/// worker tasks and their counters sum back deterministically (this is what
/// lets the morsel paths handle correlated subqueries with no serial
/// fallback). A slot is nullptr when `subplans` is null or cannot fork;
/// workers then fall back to sharing `subplans` itself, which the Fork
/// contract requires to be thread-safe in that case.
std::vector<std::unique_ptr<SubplanEvaluator>> ForkSubplanEvaluators(
    SubplanEvaluator* subplans, std::vector<ExecStats>* local_stats);

/// A contiguous index range [begin, end) — one unit of parallel work.
struct MorselRange {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

/// Rows per morsel the splitter aims for: big enough that dispatch cost is
/// noise against the work, small enough that a straggler holds at most one
/// morsel's worth of skew.
inline constexpr size_t kMorselTargetRows = 1024;
/// Upper bound on morsels per dispatch, so a huge input does not turn into
/// tens of thousands of claim-cursor bumps and per-morsel stat blocks.
inline constexpr size_t kMaxMorselsPerDispatch = 256;

/// Splits [0, n) into contiguous morsels for dynamic dispatch. The count
/// is row-aware rather than a blind multiple of the thread count:
///   - ~kMorselTargetRows rows per morsel, so huge inputs expose plenty of
///     steal parallelism at bounded granularity;
///   - at least min(n, num_threads) morsels, so a small-but-parallelizable
///     input can still occupy every permitted thread;
///   - at most kMaxMorselsPerDispatch (and never more than n), so tiny
///     inputs stop paying dispatch overhead per handful of rows.
std::vector<MorselRange> SplitMorsels(size_t n, int num_threads);

class QueryGuard;

/// Runs body(morsel_index, range) for every morsel via the process-wide
/// work-stealing scheduler and waits for all of them. The calling thread
/// participates, idle workers steal morsels up to `sched`'s parallelism
/// cap, and a skewed morsel therefore delays only itself. Returns the
/// first non-OK status in morsel order, so error reporting is
/// deterministic regardless of scheduling. Each task runs a guard
/// checkpoint before its body (when `guard` is non-null), so a tripped
/// guard drains the remaining morsels cheaply instead of doing their
/// work. A task that throws is caught at the task boundary and converted
/// to kInternal — the engine is exception-free and the scheduler must
/// never be poisoned by a rogue expression. `sched` == nullptr runs every
/// morsel inline on the calling thread (serial semantics, same checkpoint
/// discipline).
Status ParallelForMorsels(QuerySched* sched, QueryGuard* guard,
                          const std::vector<MorselRange>& morsels,
                          const std::function<Status(size_t, MorselRange)>& body);

}  // namespace tmdb

#endif  // TMDB_EXEC_PARALLEL_UTIL_H_
