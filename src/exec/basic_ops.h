#ifndef TMDB_EXEC_BASIC_OPS_H_
#define TMDB_EXEC_BASIC_OPS_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "catalog/table.h"
#include "exec/arena.h"
#include "exec/columnar.h"
#include "exec/physical_op.h"
#include "exec/query_guard.h"
#include "expr/eval.h"
#include "expr/expr.h"

namespace tmdb {

/// Scans the rows of a table extension in storage order. With
/// `try_columnar`, a flat table is additionally exposed as dense
/// ColumnBatches over its cached ColumnStore; non-flat tables silently stay
/// row-only.
class TableScanOp final : public PhysicalOp {
 public:
  explicit TableScanOp(std::shared_ptr<const Table> table,
                       bool try_columnar = false)
      : table_(std::move(table)), try_columnar_(try_columnar) {}

  Status Open(ExecContext* ctx) override;
  Result<std::optional<Value>> Next() override;
  Result<size_t> NextBatch(std::vector<Value>* out, size_t max) override;
  void Close() override;
  std::string Describe() const override;
  std::vector<const PhysicalOp*> children() const override { return {}; }

  bool columnar_ready() const override { return store_ != nullptr; }
  const ColumnStore* columnar_source() const override { return store_.get(); }
  Result<ColumnBatch> NextColumnBatch() override;

 private:
  std::shared_ptr<const Table> table_;
  bool try_columnar_ = false;
  std::shared_ptr<const ColumnStore> store_;  // non-null while columnar
  ExecContext* ctx_ = nullptr;
  size_t pos_ = 0;
};

/// Evaluates a (possibly correlated) collection-valued expression and emits
/// one row per element. Backs set-valued FROM operands such as `d.emps e`.
class ExprSourceOp final : public PhysicalOp {
 public:
  explicit ExprSourceOp(Expr expr) : expr_(std::move(expr)) {}

  Status Open(ExecContext* ctx) override;
  Result<std::optional<Value>> Next() override;
  Result<size_t> NextBatch(std::vector<Value>* out, size_t max) override;
  void Close() override;
  std::string Describe() const override;
  std::vector<const PhysicalOp*> children() const override { return {}; }

 private:
  Expr expr_;
  ExecContext* ctx_ = nullptr;
  std::vector<Value> elements_;
  size_t pos_ = 0;
};

/// σ: emits child rows for which pred(var := row) holds.
///
/// When constructed with a compiled ColumnPredicate and the child turns out
/// columnar at Open (same layout), evaluation runs column-at-a-time: the
/// predicate fills a byte mask, which is compacted into a selection id
/// vector. Row-form output is then served via ColumnStore::RowValue —
/// bit-identical rows and identical rows_emitted / predicate_evals counts.
/// All transient buffers (mask, selection vector, predicate scratch) come
/// from a per-operator arena charged to the query's guard.
class FilterOp final : public PhysicalOp {
 public:
  FilterOp(PhysicalOpPtr child, std::string var, Expr pred,
           std::optional<ColumnPredicate> cpred = std::nullopt)
      : child_(std::move(child)),
        var_(std::move(var)),
        pred_(std::move(pred)),
        cpred_(std::move(cpred)) {}

  Status Open(ExecContext* ctx) override;
  Result<std::optional<Value>> Next() override;
  Result<size_t> NextBatch(std::vector<Value>* out, size_t max) override;
  void Close() override;
  std::string Describe() const override;
  std::vector<const PhysicalOp*> children() const override {
    return {child_.get()};
  }

  bool columnar_ready() const override { return columnar_active_; }
  const ColumnStore* columnar_source() const override {
    return columnar_active_ ? child_->columnar_source() : nullptr;
  }
  Result<ColumnBatch> NextColumnBatch() override;

 private:
  PhysicalOpPtr child_;
  std::string var_;
  Expr pred_;
  std::optional<ColumnPredicate> cpred_;
  ExecContext* ctx_ = nullptr;
  std::vector<Value> batch_;  // scratch input batch, reused across calls
  uint64_t work_ = 0;         // rows examined, for periodic guard checks

  // Columnar state, live while columnar_active_.
  bool columnar_active_ = false;
  Arena arena_;
  ColumnPredicate::Scratch scratch_;
  uint32_t* sel_ = nullptr;  // surviving row ids of the current batch
  uint8_t* keep_ = nullptr;  // predicate output mask
  ColumnBatch pending_{};    // last produced batch, for row-form serving
  uint32_t pending_pos_ = 0;
};

/// Function application with set semantics: emits expr(var := row) per child
/// row, suppressing duplicates (an SFW result is a set).
class MapOp final : public PhysicalOp {
 public:
  MapOp(PhysicalOpPtr child, std::string var, Expr expr)
      : child_(std::move(child)), var_(std::move(var)), expr_(std::move(expr)) {}

  Status Open(ExecContext* ctx) override;
  Result<std::optional<Value>> Next() override;
  Result<size_t> NextBatch(std::vector<Value>* out, size_t max) override;
  void Close() override;
  std::string Describe() const override;
  std::vector<const PhysicalOp*> children() const override {
    return {child_.get()};
  }

 private:
  PhysicalOpPtr child_;
  std::string var_;
  Expr expr_;
  ExecContext* ctx_ = nullptr;
  std::unordered_set<Value, ValueHash, ValueEq> seen_;
  std::vector<Value> batch_;  // scratch input batch, reused across calls
  uint64_t work_ = 0;         // rows examined, for periodic guard checks
};

/// μ: flattens the set-of-tuples attribute `attr`; each element's fields are
/// concatenated to the remaining fields of the row.
class UnnestOp final : public PhysicalOp {
 public:
  UnnestOp(PhysicalOpPtr child, std::string attr)
      : child_(std::move(child)), attr_(std::move(attr)) {}

  Status Open(ExecContext* ctx) override;
  Result<std::optional<Value>> Next() override;
  void Close() override;
  std::string Describe() const override;
  std::vector<const PhysicalOp*> children() const override {
    return {child_.get()};
  }

 private:
  PhysicalOpPtr child_;
  std::string attr_;
  ExecContext* ctx_ = nullptr;
  std::optional<Value> current_rest_;   // row without attr
  std::vector<Value> current_elems_;    // elements still to emit
  size_t elem_pos_ = 0;
  uint64_t work_ = 0;  // rows examined, for periodic guard checks
};

/// Set union: left rows, then right rows not already seen.
class UnionOp final : public PhysicalOp {
 public:
  UnionOp(PhysicalOpPtr left, PhysicalOpPtr right)
      : left_(std::move(left)), right_(std::move(right)) {}

  Status Open(ExecContext* ctx) override;
  Result<std::optional<Value>> Next() override;
  void Close() override;
  std::string Describe() const override { return "Union"; }
  std::vector<const PhysicalOp*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  PhysicalOpPtr left_;
  PhysicalOpPtr right_;
  ExecContext* ctx_ = nullptr;
  bool on_right_ = false;
  std::unordered_set<Value, ValueHash, ValueEq> seen_;
  uint64_t work_ = 0;  // rows examined, for periodic guard checks
};

/// Set difference: left rows not occurring in the (materialised) right.
class DifferenceOp final : public PhysicalOp {
 public:
  DifferenceOp(PhysicalOpPtr left, PhysicalOpPtr right)
      : left_(std::move(left)), right_(std::move(right)) {}

  Status Open(ExecContext* ctx) override;
  Result<std::optional<Value>> Next() override;
  void Close() override;
  std::string Describe() const override { return "Difference"; }
  std::vector<const PhysicalOp*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  PhysicalOpPtr left_;
  PhysicalOpPtr right_;
  ExecContext* ctx_ = nullptr;
  std::unordered_set<Value, ValueHash, ValueEq> right_rows_;
  GuardReservation build_res_;  // bytes charged for right_rows_
  uint64_t work_ = 0;           // rows examined, for periodic guard checks
};

}  // namespace tmdb

#endif  // TMDB_EXEC_BASIC_OPS_H_
