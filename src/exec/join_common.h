#ifndef TMDB_EXEC_JOIN_COMMON_H_
#define TMDB_EXEC_JOIN_COMMON_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "exec/exec_context.h"
#include "expr/expr.h"
#include "types/type.h"
#include "values/value.h"

namespace tmdb {

/// The join flavours every join implementation supports. kNestJoin is the
/// paper's operator: one output tuple per left row, extended with the set of
/// G-images of its matches (dangling rows get ∅).
enum class JoinMode {
  kInner,
  kSemi,
  kAnti,
  kLeftOuter,
  kNestJoin,
};

std::string JoinModeName(JoinMode mode);

/// Parameters shared by all join implementations.
struct JoinSpec {
  JoinMode mode = JoinMode::kInner;
  std::string left_var;
  std::string right_var;
  /// Full predicate for nested-loop joins; *residual* predicate (after key
  /// extraction) for hash and merge joins. Expr::True() if none.
  Expr pred;
  /// NestJoin G function (over left_var, right_var). Unused otherwise.
  Expr func;
  /// NestJoin grouped-attribute label. Unused otherwise.
  std::string label;
  /// Row type of the right input; needed by kLeftOuter to pad dangling
  /// tuples even when the right input is empty.
  Type right_type;
};

/// One equi-key pair: left expression over left_var, right expression over
/// right_var, such that the conjunct `left = right` held in the original
/// predicate. Hash and merge joins match on the vector of all keys.
struct EquiKey {
  Expr left;
  Expr right;
};

/// Evaluates the composite key [k1, ..., kn] of `row` bound to `var`.
/// Returned as a list value so it hashes/compares as one unit.
Result<Value> EvalCompositeKey(const std::vector<Expr>& keys,
                               const std::string& var, const Value& row,
                               ExecContext* ctx);

/// Evaluates `spec.pred` with both variables bound.
Result<bool> EvalJoinPred(const JoinSpec& spec, const Value& left_row,
                          const Value& right_row, ExecContext* ctx);

/// Evaluates `spec.func` (the nest join G) with both variables bound.
Result<Value> EvalJoinFunc(const JoinSpec& spec, const Value& left_row,
                           const Value& right_row, ExecContext* ctx);

}  // namespace tmdb

#endif  // TMDB_EXEC_JOIN_COMMON_H_
