#ifndef TMDB_EXEC_COLUMNAR_H_
#define TMDB_EXEC_COLUMNAR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/result.h"
#include "exec/arena.h"
#include "expr/expr.h"
#include "types/type.h"
#include "values/column_store.h"

namespace tmdb {

/// A selection predicate compiled against one tuple layout, evaluated over
/// ColumnBatches with tight per-column loops instead of per-row
/// Environment + EvalExpr interpretation.
///
/// The compiled program is bit-identical to the row path by construction:
///   - Int/Int equality is exact 64-bit; every other numeric comparison
///     goes through the double image, including Int/Int *ordering*
///     (OrderedCompare promotes via AsNumeric) and the tri-state
///     CompareDoubles treatment of NaN;
///   - Int arithmetic stays Int (wrapping like the row path's int64 ops),
///     any Real operand promotes the operation to double;
///   - ∧/∨ are total bitmap ops — legal because every compilable
///     subexpression is side-effect- and error-free (kDiv is refused), so
///     short-circuiting is unobservable;
///   - strings compare through the column dictionary, equality by code.
///
/// Compile returns nullopt whenever any of that cannot be guaranteed:
/// non-basic operand types, references to variables other than the filter
/// variable (outer correlation), subplans, quantifiers, aggregates, IN, or
/// division. Those predicates simply stay on the row path.
class ColumnPredicate {
 public:
  /// Per-open evaluation scratch: one buffer per program slot, allocated
  /// from the operator's arena (so it is charged to the query's guard).
  struct Scratch {
    std::vector<char*> slots;
    uint32_t cap = 0;
  };

  /// Compiles `pred` with `var` bound to rows of tuple type `row_type`.
  static std::optional<ColumnPredicate> Compile(const Expr& pred,
                                               const std::string& var,
                                               const Type& row_type);

  /// True when `store` lays out exactly the tuple type this program was
  /// compiled for (column count, names, and physical kinds).
  bool Matches(const ColumnStore& store) const;

  /// Allocates slot buffers for batches of up to `cap` rows.
  Status AllocScratch(Arena* arena, uint32_t cap, Scratch* out) const;

  /// Evaluates over `batch`, writing one byte per batch row into `keep`
  /// (1 = row passes). `keep` must hold at least batch.len bytes.
  Status Eval(const ColumnBatch& batch, Scratch* scratch,
              uint8_t* keep) const;

 private:
  enum class Op : uint8_t {
    kLoadI64,      // gather i64 column -> I64 slot
    kLoadF64,      // gather f64 column -> F64 slot
    kLoadBool,     // gather bool column -> B slot
    kLoadStr,      // gather dictionary codes -> U32 slot
    kBroadcastI64, // fill I64 slot with literal
    kBroadcastF64,
    kBroadcastBool,
    kCastI64F64,   // I64 slot -> F64 slot
    kNegI64,
    kNegF64,
    kAddI64,
    kSubI64,
    kMulI64,
    kAddF64,
    kSubF64,
    kMulF64,
    kCmpEqI64,     // exact Int = Int
    kCmpNeI64,
    kCmpF64,       // tri-state double compare, all six predicates
    kCmpBool,      // =, <> on bools
    kCmpStrStr,    // two string columns (via dictionaries)
    kCmpStrLit,    // string column vs string literal
    kAnd,
    kOr,
    kNot,
  };

  enum class Cmp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

  struct Instr {
    Op op;
    Cmp cmp = Cmp::kEq;
    int16_t dst = -1;
    int16_t a = -1;    // slot operand
    int16_t b = -1;    // slot operand
    int16_t col = -1;  // source column (loads; string compare lhs)
    int16_t col2 = -1; // string compare rhs column
    int16_t lit = -1;  // literal-pool index
  };

  friend class ColumnPredicateCompiler;

  std::vector<Instr> instrs_;
  std::vector<int64_t> lit_i64_;
  std::vector<double> lit_f64_;
  std::vector<Value> lit_str_;
  int num_slots_ = 0;
  int result_slot_ = -1;
  // Layout requirements checked by Matches().
  size_t arity_ = 0;
  std::vector<std::string> col_names_;
  std::vector<ColumnKind> col_kinds_;
};

/// Raw-key classification for the hash join's columnar fast path: a single
/// equi-key pair of the form left_var.f = right_var.g over basic types.
///   kI64 — both sides statically Int: exact 64-bit keys.
///   kF64 — both numeric, at least one Real: keys are the double image,
///          matching how Value::Compare treats mixed numerics.
///   kStr — both String: build-side dictionary codes.
/// Bools and mismatched kinds return nullopt (the row path handles them).
struct FastKeySpec {
  enum class Kind : uint8_t { kI64, kF64, kStr };
  Kind kind = Kind::kI64;
  std::string left_field;
  std::string right_field;
};

std::optional<FastKeySpec> ResolveFastKeys(const std::vector<Expr>& left_keys,
                                           const std::vector<Expr>& right_keys,
                                           const std::string& left_var,
                                           const std::string& right_var);

/// SplitMix64 finaliser — the raw-key hash for the fast join tables.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

inline uint64_t HashI64Key(int64_t v) {
  return Mix64(static_cast<uint64_t>(v));
}

/// Double keys hash their canonicalised bit pattern: -0.0 folds into +0.0
/// and every NaN into one quiet NaN, so keys that compare equal under the
/// row path's CompareDoubles land in the same bucket.
inline uint64_t HashF64Key(double d) {
  if (d == 0.0) d = 0.0;           // -0.0 == 0.0, but bits differ
  if (d != d) d = __builtin_nan(""); // all NaNs compare equal (tri-state)
  uint64_t bits;
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return Mix64(bits);
}

/// Key equality matching CompareDoubles' tri-state result of 0.
inline bool F64KeyEq(double a, double b) { return !(a < b) && !(a > b); }

}  // namespace tmdb

#endif  // TMDB_EXEC_COLUMNAR_H_
