#ifndef TMDB_EXEC_QUERY_GUARD_H_
#define TMDB_EXEC_QUERY_GUARD_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "base/fault_injector.h"
#include "base/status.h"
#include "exec/exec_context.h"

namespace tmdb {

/// Per-query resource limits. Zero means "unlimited" for every field, so a
/// default-constructed GuardLimits imposes nothing.
struct GuardLimits {
  /// Wall-clock deadline, measured from QueryGuard::Reset.
  int64_t timeout_ms = 0;
  /// Budget for memory materialised during the query: newly built Values
  /// (tracked by ValueMemory) plus operator-side container reservations.
  uint64_t memory_budget_bytes = 0;
  /// Budget on total rows processed (emitted by operators + materialised
  /// into build tables), bounding work rather than result size.
  uint64_t max_rows = 0;

  bool any_set() const {
    return timeout_ms > 0 || memory_budget_bytes > 0 || max_rows > 0;
  }
};

/// Cooperative resource governor for one query execution.
///
/// The executor owns one QueryGuard, resets it per run, and hands a pointer
/// to every ExecContext (workers included). Operators call Check() at batch
/// boundaries and morsel tasks call it per morsel — the guard-checkpoint
/// invariant: no execution loop runs more than one batch (kExecBatchSize
/// rows) of work between checkpoints. A non-OK Check unwinds the plan into
/// a clean Status:
///   kCancelled          Cancel() was called (any thread),
///   kDeadlineExceeded   the deadline passed,
///   kResourceExhausted  the row or memory budget tripped,
///   kInternal           an armed FaultInjector fired (tests only).
///
/// Check() is thread-safe. With no limits set it costs one atomic
/// increment and a few relaxed loads; the clock is read only when a
/// timeout is armed.
class QueryGuard {
 public:
  QueryGuard() = default;
  ~QueryGuard();
  QueryGuard(const QueryGuard&) = delete;
  QueryGuard& operator=(const QueryGuard&) = delete;

  /// Rearms for a new run: clears cancellation, starts the deadline clock,
  /// snapshots the ValueMemory baseline (enabling tracking while a memory
  /// budget is set), and installs the stats/injector to consult. `stats`
  /// is the coordinator's counter block; `injector` may be null.
  void Reset(const GuardLimits& limits, const ExecStats* stats,
             FaultInjector* injector);

  /// The checkpoint. Returns OK to keep running.
  Status Check();

  /// Requests cooperative cancellation; callable from any thread while the
  /// query runs. Observed at the next checkpoint.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True when a Cancel() has been requested but not yet cleared by
  /// Reset/ClearTripState. Lets teardown code distinguish a cancel racing
  /// another unwind (e.g. an adaptive strategy switch) without spending a
  /// checkpoint.
  bool cancel_pending() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Adds operator-side materialised bytes (container slots the Value
  /// tracker cannot see). Negative deltas release.
  void AddMaterialized(int64_t delta) {
    materialized_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Checkpoints passed since Reset (sweep sizing for fault injection).
  uint64_t checkpoints() const {
    return checkpoints_.load(std::memory_order_relaxed);
  }

  /// Memory charged against the budget right now: tracked Value bytes
  /// allocated since Reset plus operator reservations.
  int64_t memory_used() const;

  /// True when a memory budget is set and current usage exceeds it. A live
  /// reading — it can flip back to false as soon as the tripping allocation
  /// is freed, so spill-eligibility decisions use last_trip_was_memory()
  /// instead.
  bool memory_over_budget() const {
    return limits_.memory_budget_bytes > 0 &&
           memory_used() >
               static_cast<int64_t>(limits_.memory_budget_bytes);
  }

  /// True when the most recent kResourceExhausted from this guard was a
  /// *memory* trip (spillable) rather than a max_rows trip (not helped by
  /// disk) — both surface as the same status code. Recorded at trip time,
  /// so it stays valid after the caller frees the tripping allocation on
  /// its way to the spill path.
  bool last_trip_was_memory() const {
    return last_trip_was_memory_.load(std::memory_order_relaxed);
  }

  /// Clears residual trip state — the memory-trip record and any pending
  /// cancellation — without rearming. The executor calls this when a run
  /// finishes (every outcome), so a reused executor's guard carries no
  /// stale state between queries: a memory trip from query N can never
  /// make query N+1 on the same connection look spill-eligible, and a
  /// cancel that raced the end of query N is not misread by N+1. Reset
  /// also clears both, so the two bracket every run.
  void ClearTripState() {
    cancelled_.store(false, std::memory_order_relaxed);
    last_trip_was_memory_.store(false, std::memory_order_relaxed);
  }

  /// Operator-reservation bytes currently charged (the materialised
  /// component of memory_used(), excluding tracked Values). Zero between
  /// runs once every GuardReservation has released — the executor-reuse
  /// soak asserts exactly that.
  int64_t materialized_bytes() const {
    return materialized_.load(std::memory_order_relaxed);
  }

  /// The injector installed at Reset (null when none) — spill I/O sites
  /// consult its I/O channels.
  FaultInjector* injector() const { return injector_; }

  /// Spill write-out loops run with the memory-budget comparison suspended:
  /// they exist to shed memory and would otherwise trip the very check that
  /// engaged them. Every other check — cancellation, deadline, max_rows,
  /// injected faults — stays live, so a cancel fires promptly even
  /// mid-spill. Nestable; use MemoryCheckSuspension, not these directly.
  void SuspendMemoryCheck() {
    memory_suspended_.fetch_add(1, std::memory_order_relaxed);
  }
  void ResumeMemoryCheck() {
    memory_suspended_.fetch_sub(1, std::memory_order_relaxed);
  }

  const GuardLimits& limits() const { return limits_; }

 private:
  GuardLimits limits_;
  const ExecStats* stats_ = nullptr;
  FaultInjector* injector_ = nullptr;

  std::atomic<bool> cancelled_{false};
  std::atomic<bool> last_trip_was_memory_{false};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<int64_t> materialized_{0};
  std::atomic<int> memory_suspended_{0};

  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};

  uint64_t rows_baseline_ = 0;  // stats snapshot at Reset (stats accumulate
                                // across runs; the budget is per run)

  bool tracking_values_ = false;  // we hold a ValueMemory enable refcount
  int64_t value_baseline_ = 0;    // LiveBytes() snapshot at Reset
};

/// RAII scope for QueryGuard::SuspendMemoryCheck. Null guard is a no-op, so
/// ungoverned executions need no special-casing at spill sites.
class MemoryCheckSuspension {
 public:
  explicit MemoryCheckSuspension(QueryGuard* guard) : guard_(guard) {
    if (guard_ != nullptr) guard_->SuspendMemoryCheck();
  }
  ~MemoryCheckSuspension() {
    if (guard_ != nullptr) guard_->ResumeMemoryCheck();
  }
  MemoryCheckSuspension(const MemoryCheckSuspension&) = delete;
  MemoryCheckSuspension& operator=(const MemoryCheckSuspension&) = delete;

 private:
  QueryGuard* guard_;
};

/// Returns OK when `ctx` carries no guard — operators stay drivable in
/// isolation — otherwise runs a checkpoint.
inline Status CheckGuard(const ExecContext* ctx) {
  if (ctx == nullptr || ctx->guard == nullptr) return Status::OK();
  return ctx->guard->Check();
}

/// Tracks the bytes one operator has charged to a guard for materialised
/// containers (build tables, sorted runs, grouped output). Charge with
/// Add() as batches land; Release() in Close() and at re-Open. Deliberately
/// no destructor release: plans can outlive the executor that ran them, so
/// an unreleased balance must not chase a dangling guard. Releasing twice
/// is a no-op.
class GuardReservation {
 public:
  /// Rebinds to `guard` (possibly null), releasing any held balance first.
  void Reset(QueryGuard* guard) {
    Release();
    guard_ = guard;
  }

  /// Charges `bytes` more and runs a checkpoint so a blown budget trips at
  /// the materialisation site. OK (and uncounted) when unbound.
  Status Add(uint64_t bytes) {
    if (guard_ == nullptr) return Status::OK();
    guard_->AddMaterialized(static_cast<int64_t>(bytes));
    bytes_ += bytes;
    return guard_->Check();
  }

  /// Batched variant of Add for hot loops that charge a few bytes per row:
  /// the bytes are reported to the guard immediately (memory_used stays
  /// exact), but the checkpoint runs only once `charge_granularity()` bytes
  /// have accumulated since the last one. A blown budget therefore trips
  /// within one granule of the limit at this site — and no later than the
  /// caller's next batch-boundary CheckGuard, which re-reads the same
  /// counter, so the one-batch guard invariant is untouched.
  Status Charge(uint64_t bytes) {
    if (guard_ == nullptr) return Status::OK();
    guard_->AddMaterialized(static_cast<int64_t>(bytes));
    bytes_ += bytes;
    pending_check_ += bytes;
    if (pending_check_ < granularity_) return Status::OK();
    pending_check_ = 0;
    return guard_->Check();
  }

  /// Bytes between deferred checkpoints for Charge(). The default matches
  /// the arena block size, so arena-backed scratch checks once per block.
  void set_charge_granularity(uint64_t bytes) {
    granularity_ = bytes > 0 ? bytes : 1;
  }
  uint64_t charge_granularity() const { return granularity_; }

  /// Refunds `bytes` of the held balance without unbinding — used when data
  /// the reservation covered moves to disk (spill) or a scratch container
  /// is dropped between pipeline stages. Clamped to the balance so a
  /// generous estimate can never drive the guard's accounting negative.
  void Shrink(uint64_t bytes) {
    if (guard_ == nullptr || bytes_ == 0) return;
    if (bytes > bytes_) bytes = bytes_;
    guard_->AddMaterialized(-static_cast<int64_t>(bytes));
    bytes_ -= bytes;
  }

  /// Returns the full balance to the guard.
  void Release() {
    if (guard_ != nullptr && bytes_ != 0) {
      guard_->AddMaterialized(-static_cast<int64_t>(bytes_));
    }
    bytes_ = 0;
    pending_check_ = 0;
  }

  /// Balance currently charged through this reservation.
  uint64_t held() const { return bytes_; }

 private:
  QueryGuard* guard_ = nullptr;
  uint64_t bytes_ = 0;
  uint64_t granularity_ = 64 * 1024;  // bytes between Charge() checkpoints
  uint64_t pending_check_ = 0;        // bytes charged since the last one
};

}  // namespace tmdb

#endif  // TMDB_EXEC_QUERY_GUARD_H_
