#include "exec/basic_ops.h"

#include <algorithm>
#include <utility>

#include "base/string_util.h"
#include "values/value_ops.h"

namespace tmdb {

namespace {

/// Evaluates `expr` with `var` bound to `row`, on top of any correlation
/// environment carried by the context.
Result<Value> EvalWithRow(const Expr& expr, const std::string& var,
                          const Value& row, ExecContext* ctx) {
  Environment env(ctx->outer_env);
  env.Bind(var, row);
  return EvalExpr(expr, env, ctx->subplans);
}

static_assert((kExecBatchSize & (kExecBatchSize - 1)) == 0,
              "periodic guard checks mask against kExecBatchSize");

// Checkpoint for row-at-a-time loops: one guard check per kExecBatchSize
// rows examined, upholding the one-batch observation bound at negligible
// per-row cost.
inline Status PeriodicGuardCheck(ExecContext* ctx, uint64_t* work) {
  if ((++*work & (kExecBatchSize - 1)) == 0) return CheckGuard(ctx);
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------- TableScan

Status TableScanOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  pos_ = 0;
  store_ = try_columnar_ ? table_->columnar_store() : nullptr;
  return Status::OK();
}

Result<std::optional<Value>> TableScanOp::Next() {
  if (pos_ >= table_->NumRows()) return std::optional<Value>();
  ctx_->stats->rows_emitted++;
  return std::optional<Value>(table_->rows()[pos_++]);
}

Result<size_t> TableScanOp::NextBatch(std::vector<Value>* out, size_t max) {
  TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
  const std::vector<Value>& rows = table_->rows();
  const size_t take = std::min(max, rows.size() - pos_);
  out->insert(out->end(), rows.begin() + static_cast<ptrdiff_t>(pos_),
              rows.begin() + static_cast<ptrdiff_t>(pos_ + take));
  pos_ += take;
  ctx_->stats->rows_emitted += take;
  return take;
}

Result<ColumnBatch> TableScanOp::NextColumnBatch() {
  if (store_ == nullptr) return PhysicalOp::NextColumnBatch();
  TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
  const size_t take = std::min(kExecBatchSize, store_->num_rows() - pos_);
  ColumnBatch batch;
  batch.store = store_.get();
  batch.first = static_cast<uint32_t>(pos_);
  batch.len = static_cast<uint32_t>(take);
  pos_ += take;
  ctx_->stats->rows_emitted += take;
  return batch;
}

void TableScanOp::Close() { store_.reset(); }

std::string TableScanOp::Describe() const {
  return StrCat("TableScan(", table_->name(), ")");
}

// ---------------------------------------------------------------- ExprSource

Status ExprSourceOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  pos_ = 0;
  elements_.clear();
  Environment env(ctx->outer_env);
  TMDB_ASSIGN_OR_RETURN(Value coll, EvalExpr(expr_, env, ctx->subplans));
  if (!coll.is_collection()) {
    return Status::TypeError(
        StrCat("FROM operand is not a collection: ", coll.ToString()));
  }
  elements_ = coll.Elements();
  return Status::OK();
}

Result<std::optional<Value>> ExprSourceOp::Next() {
  if (pos_ >= elements_.size()) return std::optional<Value>();
  ctx_->stats->rows_emitted++;
  return std::optional<Value>(elements_[pos_++]);
}

Result<size_t> ExprSourceOp::NextBatch(std::vector<Value>* out, size_t max) {
  TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
  const size_t take = std::min(max, elements_.size() - pos_);
  out->insert(out->end(), elements_.begin() + static_cast<ptrdiff_t>(pos_),
              elements_.begin() + static_cast<ptrdiff_t>(pos_ + take));
  pos_ += take;
  ctx_->stats->rows_emitted += take;
  return take;
}

void ExprSourceOp::Close() { elements_.clear(); }

std::string ExprSourceOp::Describe() const {
  return StrCat("ExprSource(", expr_.ToString(), ")");
}

// -------------------------------------------------------------------- Filter

Status FilterOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  work_ = 0;
  columnar_active_ = false;
  pending_ = ColumnBatch{};
  pending_pos_ = 0;
  arena_.Reset();
  TMDB_RETURN_IF_ERROR(child_->Open(ctx));
  // Under a memory budget the columnar path stands down: its arena block
  // would shift the memory profile (and therefore spill points and trip
  // sites) away from the row path whose degradation behaviour is the
  // contract. Budgeted runs take the row path; everything else is faster
  // AND bit-identical.
  const bool budgeted = ctx->guard != nullptr &&
                        ctx->guard->limits().memory_budget_bytes != 0;
  if (!budgeted && cpred_.has_value() && child_->columnar_ready()) {
    const ColumnStore* store = child_->columnar_source();
    if (store != nullptr && cpred_->Matches(*store)) {
      arena_.Bind(ctx->guard);
      TMDB_ASSIGN_OR_RETURN(uint32_t * sel,
                            arena_.AllocateArray<uint32_t>(kExecBatchSize));
      sel_ = sel;
      TMDB_ASSIGN_OR_RETURN(uint8_t * keep,
                            arena_.AllocateArray<uint8_t>(kExecBatchSize));
      keep_ = keep;
      TMDB_RETURN_IF_ERROR(cpred_->AllocScratch(
          &arena_, static_cast<uint32_t>(kExecBatchSize), &scratch_));
      columnar_active_ = true;
    }
  }
  return Status::OK();
}

Result<ColumnBatch> FilterOp::NextColumnBatch() {
  if (!columnar_active_) return PhysicalOp::NextColumnBatch();
  while (true) {
    TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
    TMDB_ASSIGN_OR_RETURN(ColumnBatch in, child_->NextColumnBatch());
    if (in.len == 0) return in;  // end of stream
    ctx_->stats->predicate_evals += in.len;
    TMDB_RETURN_IF_ERROR(cpred_->Eval(in, &scratch_, keep_));
    uint32_t m = 0;
    for (uint32_t i = 0; i < in.len; ++i) {
      sel_[m] = in.RowId(i);
      m += keep_[i];
    }
    if (m > 0) {
      ctx_->stats->rows_emitted += m;
      ColumnBatch out;
      out.store = in.store;
      out.ids = sel_;
      out.len = m;
      return out;
    }
  }
}

Result<std::optional<Value>> FilterOp::Next() {
  if (columnar_active_) {
    while (pending_pos_ >= pending_.len) {
      TMDB_ASSIGN_OR_RETURN(ColumnBatch batch, NextColumnBatch());
      pending_ = batch;
      pending_pos_ = 0;
      if (pending_.len == 0) return std::optional<Value>();
    }
    return std::optional<Value>(
        pending_.store->RowValue(pending_.RowId(pending_pos_++)));
  }
  while (true) {
    TMDB_RETURN_IF_ERROR(PeriodicGuardCheck(ctx_, &work_));
    TMDB_ASSIGN_OR_RETURN(std::optional<Value> row, child_->Next());
    if (!row.has_value()) return std::optional<Value>();
    ctx_->stats->predicate_evals++;
    TMDB_ASSIGN_OR_RETURN(Value keep, EvalWithRow(pred_, var_, *row, ctx_));
    if (!keep.is_bool()) {
      return Status::TypeError(
          StrCat("filter predicate produced non-boolean ", keep.ToString()));
    }
    if (keep.AsBool()) {
      ctx_->stats->rows_emitted++;
      return row;
    }
  }
}

Result<size_t> FilterOp::NextBatch(std::vector<Value>* out, size_t max) {
  if (columnar_active_) {
    while (pending_pos_ >= pending_.len) {
      TMDB_ASSIGN_OR_RETURN(ColumnBatch batch, NextColumnBatch());
      pending_ = batch;
      pending_pos_ = 0;
      if (pending_.len == 0) return 0;
    }
    const size_t take =
        std::min(max, static_cast<size_t>(pending_.len - pending_pos_));
    for (size_t i = 0; i < take; ++i) {
      out->push_back(pending_.store->RowValue(pending_.RowId(pending_pos_++)));
    }
    return take;
  }
  // Pull whole input batches until at least one row survives the predicate
  // (returning 0 would falsely signal end of stream).
  while (true) {
    TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
    batch_.clear();
    TMDB_ASSIGN_OR_RETURN(size_t got, child_->NextBatch(&batch_, max));
    if (got == 0) return 0;
    size_t appended = 0;
    for (Value& row : batch_) {
      ctx_->stats->predicate_evals++;
      TMDB_ASSIGN_OR_RETURN(Value keep, EvalWithRow(pred_, var_, row, ctx_));
      if (!keep.is_bool()) {
        return Status::TypeError(
            StrCat("filter predicate produced non-boolean ", keep.ToString()));
      }
      if (keep.AsBool()) {
        ctx_->stats->rows_emitted++;
        out->push_back(std::move(row));
        ++appended;
      }
    }
    if (appended > 0) return appended;
  }
}

void FilterOp::Close() {
  batch_.clear();
  columnar_active_ = false;
  pending_ = ColumnBatch{};
  pending_pos_ = 0;
  sel_ = nullptr;
  keep_ = nullptr;
  scratch_ = ColumnPredicate::Scratch{};
  arena_.Reset();
  child_->Close();
}

std::string FilterOp::Describe() const {
  return StrCat("Filter[", var_, " : ", pred_.ToString(), "]");
}

// ----------------------------------------------------------------------- Map

Status MapOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  seen_.clear();
  work_ = 0;
  return child_->Open(ctx);
}

Result<std::optional<Value>> MapOp::Next() {
  while (true) {
    TMDB_RETURN_IF_ERROR(PeriodicGuardCheck(ctx_, &work_));
    TMDB_ASSIGN_OR_RETURN(std::optional<Value> row, child_->Next());
    if (!row.has_value()) return std::optional<Value>();
    TMDB_ASSIGN_OR_RETURN(Value out, EvalWithRow(expr_, var_, *row, ctx_));
    if (seen_.insert(out).second) {
      ctx_->stats->rows_emitted++;
      return std::optional<Value>(std::move(out));
    }
  }
}

Result<size_t> MapOp::NextBatch(std::vector<Value>* out, size_t max) {
  while (true) {
    TMDB_RETURN_IF_ERROR(CheckGuard(ctx_));
    batch_.clear();
    TMDB_ASSIGN_OR_RETURN(size_t got, child_->NextBatch(&batch_, max));
    if (got == 0) return 0;
    size_t appended = 0;
    for (const Value& row : batch_) {
      TMDB_ASSIGN_OR_RETURN(Value mapped, EvalWithRow(expr_, var_, row, ctx_));
      if (seen_.insert(mapped).second) {
        ctx_->stats->rows_emitted++;
        out->push_back(std::move(mapped));
        ++appended;
      }
    }
    if (appended > 0) return appended;
  }
}

void MapOp::Close() {
  seen_.clear();
  batch_.clear();
  child_->Close();
}

std::string MapOp::Describe() const {
  return StrCat("Map[", var_, " : ", expr_.ToString(), "]");
}

// -------------------------------------------------------------------- Unnest

Status UnnestOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  current_rest_.reset();
  current_elems_.clear();
  elem_pos_ = 0;
  work_ = 0;
  return child_->Open(ctx);
}

Result<std::optional<Value>> UnnestOp::Next() {
  while (true) {
    TMDB_RETURN_IF_ERROR(PeriodicGuardCheck(ctx_, &work_));
    if (current_rest_.has_value() && elem_pos_ < current_elems_.size()) {
      const Value& elem = current_elems_[elem_pos_++];
      TMDB_ASSIGN_OR_RETURN(Value out, ConcatTuples(*current_rest_, elem));
      ctx_->stats->rows_emitted++;
      return std::optional<Value>(std::move(out));
    }
    TMDB_ASSIGN_OR_RETURN(std::optional<Value> row, child_->Next());
    if (!row.has_value()) return std::optional<Value>();
    TMDB_ASSIGN_OR_RETURN(Value set, row->Field(attr_));
    if (!set.is_collection()) {
      return Status::TypeError(StrCat("Unnest attribute '", attr_,
                                      "' is not a collection: ",
                                      set.ToString()));
    }
    // Row minus the unnested attribute.
    std::vector<std::string> names;
    std::vector<Value> values;
    for (size_t i = 0; i < row->TupleSize(); ++i) {
      if (row->FieldName(i) == attr_) continue;
      names.push_back(row->FieldName(i));
      values.push_back(row->FieldValue(i));
    }
    current_rest_ = Value::Tuple(std::move(names), std::move(values));
    current_elems_ = set.Elements();
    elem_pos_ = 0;
    // Rows with an empty set vanish (μ is not information-preserving).
  }
}

void UnnestOp::Close() {
  current_rest_.reset();
  current_elems_.clear();
  child_->Close();
}

std::string UnnestOp::Describe() const {
  return StrCat("Unnest[", attr_, "]");
}

// --------------------------------------------------------------------- Union

Status UnionOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  on_right_ = false;
  seen_.clear();
  work_ = 0;
  TMDB_RETURN_IF_ERROR(left_->Open(ctx));
  return right_->Open(ctx);
}

Result<std::optional<Value>> UnionOp::Next() {
  while (true) {
    TMDB_RETURN_IF_ERROR(PeriodicGuardCheck(ctx_, &work_));
    PhysicalOp* source = on_right_ ? right_.get() : left_.get();
    TMDB_ASSIGN_OR_RETURN(std::optional<Value> row, source->Next());
    if (!row.has_value()) {
      if (on_right_) return std::optional<Value>();
      on_right_ = true;
      continue;
    }
    if (seen_.insert(*row).second) {
      ctx_->stats->rows_emitted++;
      return row;
    }
  }
}

void UnionOp::Close() {
  seen_.clear();
  left_->Close();
  right_->Close();
}

// ---------------------------------------------------------------- Difference

Status DifferenceOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  right_rows_.clear();
  build_res_.Reset(ctx->guard);
  work_ = 0;
  TMDB_RETURN_IF_ERROR(right_->Open(ctx));
  while (true) {
    TMDB_RETURN_IF_ERROR(PeriodicGuardCheck(ctx_, &work_));
    TMDB_ASSIGN_OR_RETURN(std::optional<Value> row, right_->Next());
    if (!row.has_value()) break;
    if (right_rows_.insert(std::move(*row)).second) {
      // Approximate hash-set slot cost per distinct row. Charge() accounts
      // immediately but defers the guard *check* to its granularity; the
      // periodic check above bounds trip latency to one batch regardless.
      TMDB_RETURN_IF_ERROR(
          build_res_.Charge(sizeof(Value) + 2 * sizeof(void*)));
    }
    ctx_->stats->rows_built++;
  }
  right_->Close();
  return left_->Open(ctx);
}

Result<std::optional<Value>> DifferenceOp::Next() {
  while (true) {
    TMDB_RETURN_IF_ERROR(PeriodicGuardCheck(ctx_, &work_));
    TMDB_ASSIGN_OR_RETURN(std::optional<Value> row, left_->Next());
    if (!row.has_value()) return std::optional<Value>();
    if (right_rows_.count(*row) == 0) {
      ctx_->stats->rows_emitted++;
      return row;
    }
  }
}

void DifferenceOp::Close() {
  right_rows_.clear();
  build_res_.Release();
  left_->Close();
}

}  // namespace tmdb
