#include "exec/physical_op.h"

#include "base/string_util.h"
#include "exec/query_guard.h"

namespace tmdb {

std::string ExecStats::ToString() const {
  std::string out =
      StrCat("rows_emitted=", rows_emitted,
             " predicate_evals=", predicate_evals,
             " subplan_evals=", subplan_evals, " hash_probes=", hash_probes,
             " rows_built=", rows_built);
  if (spill_partitions > 0 || spill_sort_runs > 0) {
    out += StrCat(" spill_partitions=", spill_partitions,
                  " spill_bytes_written=", spill_bytes_written,
                  " spill_bytes_read=", spill_bytes_read,
                  " spill_max_depth=", spill_max_depth,
                  " spill_sort_runs=", spill_sort_runs);
  }
  if (subplan_cache_hits > 0 || subplan_cache_misses > 0 ||
      subplan_cache_evictions > 0) {
    out += StrCat(" subplan_cache_hits=", subplan_cache_hits,
                  " subplan_cache_misses=", subplan_cache_misses,
                  " subplan_cache_evictions=", subplan_cache_evictions);
  }
  if (subplan_cache_disk_evictions > 0 || subplan_cache_disk_faults > 0) {
    out += StrCat(" subplan_cache_disk_evictions=", subplan_cache_disk_evictions,
                  " subplan_cache_disk_faults=", subplan_cache_disk_faults);
  }
  if (guard_checkpoints > 0) {
    out += StrCat(" guard_checkpoints=", guard_checkpoints);
  }
  if (strategy_chosen > 0) {
    out += StrCat(" strategy_chosen=", strategy_chosen,
                  " strategy_switches=", strategy_switches,
                  " est_distinct_corr=", est_distinct_corr);
  }
  if (morsels_dispatched > 0) {
    out += StrCat(" morsels_dispatched=", morsels_dispatched,
                  " morsels_stolen=", morsels_stolen);
  }
  return out;
}

namespace {

void PrintTree(const PhysicalOp& op, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(op.Describe());
  out->append("\n");
  for (const PhysicalOp* child : op.children()) {
    PrintTree(*child, depth + 1, out);
  }
}

}  // namespace

std::string PhysicalOp::ToString() const {
  std::string out;
  PrintTree(*this, 0, &out);
  return out;
}

Result<ColumnBatch> PhysicalOp::NextColumnBatch() {
  return Status::Internal(
      StrCat("NextColumnBatch on a row-only operator: ", Describe()));
}

Result<size_t> PhysicalOp::NextBatch(std::vector<Value>* out, size_t max) {
  size_t appended = 0;
  while (appended < max) {
    TMDB_ASSIGN_OR_RETURN(std::optional<Value> row, Next());
    if (!row.has_value()) break;
    out->push_back(std::move(*row));
    ++appended;
  }
  return appended;
}

Result<std::vector<Value>> CollectRows(PhysicalOp* op, ExecContext* ctx) {
  Status status = op->Open(ctx);
  if (!status.ok()) {
    // Close even though Open failed: a composite operator may have
    // materialised part of its input (or opened children) before tripping.
    op->Close();
    return status;
  }
  std::vector<Value> rows;
  while (true) {
    status = CheckGuard(ctx);
    if (!status.ok()) break;
    auto appended = op->NextBatch(&rows, kExecBatchSize);
    if (!appended.ok()) {
      status = appended.status();
      break;
    }
    if (*appended == 0) break;
  }
  op->Close();
  if (!status.ok()) return status;
  return rows;
}

}  // namespace tmdb
