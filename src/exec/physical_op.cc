#include "exec/physical_op.h"

#include "base/string_util.h"

namespace tmdb {

std::string ExecStats::ToString() const {
  return StrCat("rows_emitted=", rows_emitted,
                " predicate_evals=", predicate_evals,
                " subplan_evals=", subplan_evals, " hash_probes=", hash_probes,
                " rows_built=", rows_built);
}

namespace {

void PrintTree(const PhysicalOp& op, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(op.Describe());
  out->append("\n");
  for (const PhysicalOp* child : op.children()) {
    PrintTree(*child, depth + 1, out);
  }
}

}  // namespace

std::string PhysicalOp::ToString() const {
  std::string out;
  PrintTree(*this, 0, &out);
  return out;
}

Result<size_t> PhysicalOp::NextBatch(std::vector<Value>* out, size_t max) {
  size_t appended = 0;
  while (appended < max) {
    TMDB_ASSIGN_OR_RETURN(std::optional<Value> row, Next());
    if (!row.has_value()) break;
    out->push_back(std::move(*row));
    ++appended;
  }
  return appended;
}

Result<std::vector<Value>> CollectRows(PhysicalOp* op, ExecContext* ctx) {
  TMDB_RETURN_IF_ERROR(op->Open(ctx));
  std::vector<Value> rows;
  while (true) {
    TMDB_ASSIGN_OR_RETURN(size_t appended, op->NextBatch(&rows, kExecBatchSize));
    if (appended == 0) break;
  }
  op->Close();
  return rows;
}

}  // namespace tmdb
