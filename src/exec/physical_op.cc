#include "exec/physical_op.h"

#include "base/string_util.h"

namespace tmdb {

std::string ExecStats::ToString() const {
  return StrCat("rows_emitted=", rows_emitted,
                " predicate_evals=", predicate_evals,
                " subplan_evals=", subplan_evals, " hash_probes=", hash_probes,
                " rows_built=", rows_built);
}

namespace {

void PrintTree(const PhysicalOp& op, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(op.Describe());
  out->append("\n");
  for (const PhysicalOp* child : op.children()) {
    PrintTree(*child, depth + 1, out);
  }
}

}  // namespace

std::string PhysicalOp::ToString() const {
  std::string out;
  PrintTree(*this, 0, &out);
  return out;
}

Result<std::vector<Value>> CollectRows(PhysicalOp* op, ExecContext* ctx) {
  TMDB_RETURN_IF_ERROR(op->Open(ctx));
  std::vector<Value> rows;
  while (true) {
    TMDB_ASSIGN_OR_RETURN(std::optional<Value> row, op->Next());
    if (!row.has_value()) break;
    rows.push_back(std::move(*row));
  }
  op->Close();
  return rows;
}

}  // namespace tmdb
