#ifndef TMDB_EXEC_ARENA_H_
#define TMDB_EXEC_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/result.h"
#include "exec/query_guard.h"

namespace tmdb {

/// Default arena block size — also the granularity at which arena memory is
/// charged (and checkpointed) against the query's memory budget.
inline constexpr size_t kArenaBlockBytes = 64 * 1024;

/// Block bump allocator backing per-query transient buffers: column
/// gather/selection scratch, join-key arrays, hash-table head/next chains.
///
/// Allocations are trivially-destructible flat buffers only — the arena
/// never runs destructors. Memory is charged to the bound QueryGuard one
/// block at a time through a GuardReservation, so a per-element allocation
/// costs a pointer bump while budget trips still fire within one block of
/// the limit; Reset() frees every block and refunds the full charge, which
/// is how operators drop their scratch when diverting to the spill path
/// (the plan may outlive the executor, so Reset also runs at Open/Close).
///
/// Not thread-safe: operators allocate from the coordinating thread only;
/// morsel workers receive raw pointers into already-allocated (read-only)
/// arrays.
class Arena {
 public:
  explicit Arena(size_t block_bytes = kArenaBlockBytes)
      : block_bytes_(block_bytes == 0 ? kArenaBlockBytes : block_bytes) {}
  ~Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Rebinds the guard the blocks are charged to, releasing any held
  /// memory first (an arena never carries blocks across runs).
  void Bind(QueryGuard* guard) {
    Reset();
    res_.Reset(guard);
  }

  /// Allocates `bytes` (16-byte aligned). A new block is charged — and the
  /// guard checkpointed — before it is touched, so a blown budget fails the
  /// allocation instead of materialising invisible memory.
  Result<void*> Allocate(size_t bytes);

  /// Typed array helper; T must be trivially destructible.
  template <typename T>
  Result<T*> AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory never runs destructors");
    TMDB_ASSIGN_OR_RETURN(void* p, Allocate(n * sizeof(T)));
    return static_cast<T*>(p);
  }

  /// Frees all blocks and refunds the whole reservation.
  void Reset();

  /// Total bytes currently charged to the guard for this arena.
  uint64_t bytes_charged() const { return res_.held(); }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  size_t block_bytes_;
  std::vector<Block> blocks_;
  GuardReservation res_;
};

}  // namespace tmdb

#endif  // TMDB_EXEC_ARENA_H_
