#ifndef TMDB_PARSER_PARSER_H_
#define TMDB_PARSER_PARSER_H_

#include <string_view>

#include "base/result.h"
#include "parser/ast.h"

namespace tmdb {

/// Parses one expression of the TM SFW language into an untyped AST.
///
/// Grammar (precedence low → high):
///
///   expr        := or
///   or          := and (OR and)*
///   and         := not (AND not)*
///   not         := NOT not | cmp
///   cmp         := add [(= | <> | < | <= | > | >= | IN | NOT IN |
///                        SUBSETEQ | SUBSET | SUPSETEQ | SUPSET) add]
///   add         := mul ((+ | - | UNION | DIFF) mul)*
///   mul         := unary ((* | / | INTERSECT) unary)*
///   unary       := - unary | postfix
///   postfix     := primary (. ident)*
///   primary     := literal | ident | sfw | quantifier | aggregate
///                | UNNEST ( expr ) | { [expr (, expr)*] }
///                | ( ident = expr (, ident = expr)* )     -- tuple
///                | ( expr )
///   sfw         := SELECT expr (WITH ident = expr)*
///                  FROM add ident (, add ident)*
///                  [WHERE expr (WITH ident = expr)*]
///   quantifier  := (EXISTS | FORALL) ident IN add ( expr )
///   aggregate   := (COUNT|SUM|AVG|MIN|MAX) ( expr )
///
/// The WITH clause introduces one local definition per WITH keyword (chain
/// several WITHs for several definitions), matching how the paper writes
/// `WHERE P(x, z) WITH z = SELECT ...`.
Result<AstPtr> ParseQuery(std::string_view source);

}  // namespace tmdb

#endif  // TMDB_PARSER_PARSER_H_
