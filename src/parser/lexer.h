#ifndef TMDB_PARSER_LEXER_H_
#define TMDB_PARSER_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"

namespace tmdb {

enum class TokenKind {
  kEof,
  kIdent,
  kIntLit,
  kRealLit,
  kStringLit,
  // keywords (case-insensitive in source)
  kSelect,
  kFrom,
  kWhere,
  kWith,
  kIn,
  kNot,
  kAnd,
  kOr,
  kExists,
  kForAll,
  kTrue,
  kFalse,
  kUnion,
  kIntersect,
  kDiff,
  kSubsetEq,
  kSubset,
  kSupsetEq,
  kSupset,
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  kUnnest,
  // statement keywords
  kCreate,
  kTable,
  kInsert,
  kInto,
  kValues,
  kDefine,
  kSort,
  kAs,
  kExplain,
  // punctuation / operators
  kColon,
  kSemicolon,
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kDot,
  kEq,      // =
  kNe,      // <>
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;       // identifier / literal spelling
  int64_t int_value = 0;  // kIntLit
  double real_value = 0;  // kRealLit
  int line = 1;
  int column = 1;
};

/// Returns a printable name for a token kind ("SELECT", "','", ...).
std::string TokenKindName(TokenKind kind);

/// Tokenises `source`; keywords are case-insensitive, identifiers keep their
/// spelling. `--` starts a comment to end of line. The final token is kEof.
Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace tmdb

#endif  // TMDB_PARSER_LEXER_H_
