#include "parser/ast.h"

#include "base/logging.h"
#include "base/string_util.h"

namespace tmdb {

namespace {

std::string BinaryOpToken(AstBinaryOp op) {
  switch (op) {
    case AstBinaryOp::kAdd:
      return "+";
    case AstBinaryOp::kSub:
      return "-";
    case AstBinaryOp::kMul:
      return "*";
    case AstBinaryOp::kDiv:
      return "/";
    case AstBinaryOp::kEq:
      return "=";
    case AstBinaryOp::kNe:
      return "<>";
    case AstBinaryOp::kLt:
      return "<";
    case AstBinaryOp::kLe:
      return "<=";
    case AstBinaryOp::kGt:
      return ">";
    case AstBinaryOp::kGe:
      return ">=";
    case AstBinaryOp::kAnd:
      return "AND";
    case AstBinaryOp::kOr:
      return "OR";
    case AstBinaryOp::kIn:
      return "IN";
    case AstBinaryOp::kNotIn:
      return "NOT IN";
    case AstBinaryOp::kUnion:
      return "UNION";
    case AstBinaryOp::kIntersect:
      return "INTERSECT";
    case AstBinaryOp::kDifference:
      return "DIFF";
    case AstBinaryOp::kSubsetEq:
      return "SUBSETEQ";
    case AstBinaryOp::kSubset:
      return "SUBSET";
    case AstBinaryOp::kSupersetEq:
      return "SUPSETEQ";
    case AstBinaryOp::kSuperset:
      return "SUPSET";
  }
  return "?";
}

std::string AggFuncToken(AstAggFunc func) {
  switch (func) {
    case AstAggFunc::kCount:
      return "count";
    case AstAggFunc::kSum:
      return "sum";
    case AstAggFunc::kAvg:
      return "avg";
    case AstAggFunc::kMin:
      return "min";
    case AstAggFunc::kMax:
      return "max";
  }
  return "?";
}

std::string WithToString(const std::vector<AstWithDef>& defs) {
  if (defs.empty()) return "";
  std::vector<std::string> parts;
  parts.reserve(defs.size());
  for (const AstWithDef& def : defs) {
    parts.push_back(def.name + " = " + def.expr->ToString());
  }
  return " WITH " + Join(parts, ", ");
}

}  // namespace

std::string AstNode::ToString() const {
  switch (kind) {
    case AstKind::kLiteral:
      return literal.ToString();
    case AstKind::kIdent:
      return name;
    case AstKind::kFieldAccess:
      return children[0]->ToString() + "." + name;
    case AstKind::kBinary:
      return StrCat("(", children[0]->ToString(), " ",
                    BinaryOpToken(binary_op), " ", children[1]->ToString(),
                    ")");
    case AstKind::kUnary:
      return (unary_op == AstUnaryOp::kNot ? "NOT " : "-") +
             children[0]->ToString();
    case AstKind::kQuantifier:
      return StrCat(quant_kind == AstQuantKind::kExists ? "EXISTS " : "FORALL ",
                    name, " IN ", children[0]->ToString(), " (",
                    children[1]->ToString(), ")");
    case AstKind::kAggregate:
      return StrCat(AggFuncToken(agg_func), "(", children[0]->ToString(), ")");
    case AstKind::kTupleCtor: {
      std::vector<std::string> parts;
      parts.reserve(ctor_names.size());
      for (size_t i = 0; i < ctor_names.size(); ++i) {
        parts.push_back(ctor_names[i] + " = " + children[i]->ToString());
      }
      return "(" + Join(parts, ", ") + ")";
    }
    case AstKind::kSetCtor: {
      std::vector<std::string> parts;
      parts.reserve(children.size());
      for (const AstPtr& c : children) {
        parts.push_back(c->ToString());
      }
      return "{" + Join(parts, ", ") + "}";
    }
    case AstKind::kUnnestCall:
      return StrCat("UNNEST(", children[0]->ToString(), ")");
    case AstKind::kSfw: {
      std::string out =
          StrCat("SELECT ", select_expr->ToString(), WithToString(select_with));
      std::vector<std::string> froms;
      froms.reserve(from.size());
      for (const AstFromBinding& binding : from) {
        froms.push_back(binding.operand->ToString() + " " + binding.var);
      }
      out += " FROM " + Join(froms, ", ");
      if (where_expr != nullptr) {
        out += StrCat(" WHERE ", where_expr->ToString(),
                      WithToString(where_with));
      }
      return out;
    }
  }
  return "?";
}

AstPtr CloneAst(const AstNode& node) {
  auto copy = std::make_unique<AstNode>(node.kind);
  copy->literal = node.literal;
  copy->name = node.name;
  copy->binary_op = node.binary_op;
  copy->unary_op = node.unary_op;
  copy->quant_kind = node.quant_kind;
  copy->agg_func = node.agg_func;
  copy->ctor_names = node.ctor_names;
  copy->line = node.line;
  copy->column = node.column;
  copy->children.reserve(node.children.size());
  for (const AstPtr& c : node.children) {
    copy->children.push_back(CloneAst(*c));
  }
  if (node.select_expr != nullptr) copy->select_expr = CloneAst(*node.select_expr);
  for (const AstWithDef& def : node.select_with) {
    copy->select_with.push_back({def.name, CloneAst(*def.expr)});
  }
  for (const AstFromBinding& binding : node.from) {
    copy->from.push_back({CloneAst(*binding.operand), binding.var});
  }
  if (node.where_expr != nullptr) copy->where_expr = CloneAst(*node.where_expr);
  for (const AstWithDef& def : node.where_with) {
    copy->where_with.push_back({def.name, CloneAst(*def.expr)});
  }
  return copy;
}

}  // namespace tmdb
