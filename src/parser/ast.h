#ifndef TMDB_PARSER_AST_H_
#define TMDB_PARSER_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "values/value.h"

namespace tmdb {

struct AstNode;
using AstPtr = std::unique_ptr<AstNode>;

/// Kinds of (untyped) surface-syntax nodes. The shape mirrors the paper's
/// language: orthogonal expressions where SFW blocks may appear anywhere an
/// expression may — in particular in the SELECT and WHERE clauses of other
/// blocks (Section 3.2).
enum class AstKind {
  kLiteral,      // 1, 2.5, "s", true, false
  kIdent,        // variable reference
  kFieldAccess,  // e.address.city
  kBinary,       // arithmetic / comparison / connectives / set operators
  kUnary,        // NOT, unary minus
  kQuantifier,   // EXISTS v IN e (p) / FORALL v IN e (p)
  kAggregate,    // count(e), sum(e), avg(e), min(e), max(e)
  kTupleCtor,    // (a = e1, b = e2)
  kSetCtor,      // {e1, ..., en}
  kUnnestCall,   // UNNEST(e) — collapses a set of sets
  kSfw,          // SELECT ... FROM ... [WHERE ...] with optional WITH lists
};

/// Surface binary operators (tokens, not yet type-resolved).
enum class AstBinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kIn,
  kNotIn,
  kUnion,
  kIntersect,
  kDifference,
  kSubsetEq,
  kSubset,
  kSupersetEq,
  kSuperset,
};

enum class AstUnaryOp { kNot, kNeg };

enum class AstQuantKind { kExists, kForAll };

enum class AstAggFunc { kCount, kSum, kAvg, kMin, kMax };

/// One `name = expr` local definition from a WITH clause.
struct AstWithDef {
  std::string name;
  AstPtr expr;
};

/// One `operand variable` binding from a FROM clause.
struct AstFromBinding {
  AstPtr operand;
  std::string var;
};

/// A single untyped AST node. One struct with a kind discriminator keeps
/// recursive walks (printer, binder) compact.
struct AstNode {
  AstKind kind;

  // kLiteral
  Value literal;
  // kIdent / kFieldAccess field name / kQuantifier variable
  std::string name;
  // kBinary / kUnary / kQuantifier / kAggregate discriminators
  AstBinaryOp binary_op = AstBinaryOp::kEq;
  AstUnaryOp unary_op = AstUnaryOp::kNot;
  AstQuantKind quant_kind = AstQuantKind::kExists;
  AstAggFunc agg_func = AstAggFunc::kCount;

  // Children; meaning depends on kind:
  //   kFieldAccess: [base]; kBinary: [lhs, rhs]; kUnary/kAggregate/
  //   kUnnestCall: [operand]; kQuantifier: [collection, pred];
  //   kTupleCtor/kSetCtor: elements.
  std::vector<AstPtr> children;
  // kTupleCtor attribute names.
  std::vector<std::string> ctor_names;

  // kSfw --------------------------------------------------------------
  AstPtr select_expr;
  std::vector<AstWithDef> select_with;  // WITH defs scoped to SELECT clause
  std::vector<AstFromBinding> from;
  AstPtr where_expr;                    // null = no WHERE clause
  std::vector<AstWithDef> where_with;   // WITH defs scoped to WHERE clause

  // Source position (1-based line/column of the first token), for errors.
  int line = 0;
  int column = 0;

  explicit AstNode(AstKind k) : kind(k) {}

  /// Parenthesised source-like rendering (used in error messages/tests).
  std::string ToString() const;
};

/// Deep copy (WITH inlining duplicates definition bodies).
AstPtr CloneAst(const AstNode& node);

}  // namespace tmdb

#endif  // TMDB_PARSER_AST_H_
