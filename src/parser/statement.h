#ifndef TMDB_PARSER_STATEMENT_H_
#define TMDB_PARSER_STATEMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "parser/ast.h"

namespace tmdb {

struct TypeAst;
using TypeAstPtr = std::unique_ptr<TypeAst>;

/// Unresolved type syntax. Named references (sorts) are resolved against
/// the catalog by the statement executor.
///
///   type := INT | REAL | STRING | BOOL
///         | P ( type ) | L ( type )
///         | ( name : type, ... )
///         | SortName
struct TypeAst {
  enum class Kind { kInt, kReal, kString, kBool, kSet, kList, kTuple, kNamed };
  Kind kind = Kind::kInt;
  std::string name;                 // kNamed
  TypeAstPtr element;               // kSet / kList
  std::vector<std::string> field_names;  // kTuple
  std::vector<TypeAstPtr> field_types;   // kTuple

  std::string ToString() const;
};

/// One statement of the data language:
///
///   CREATE TABLE name (attr : type, ...)
///   DEFINE SORT Name AS (attr : type, ...)
///   INSERT INTO name VALUES expr, expr, ...
///   EXPLAIN <query expression>
///   <query expression>
struct Statement {
  enum class Kind { kQuery, kCreateTable, kDefineSort, kInsert, kExplain };
  Kind kind = Kind::kQuery;

  AstPtr query;                 // kQuery / kExplain
  std::string target;           // table / sort name
  TypeAstPtr schema;            // kCreateTable / kDefineSort
  std::vector<AstPtr> values;   // kInsert: constant row expressions
};
using StatementPtr = std::unique_ptr<Statement>;

/// Parses a single statement. A leading CREATE/DEFINE/INSERT keyword
/// selects the DDL/DML form; anything else parses as a query expression.
Result<StatementPtr> ParseStatement(std::string_view source);

/// Parses a ';'-separated script (a trailing ';' is allowed; empty
/// statements are skipped).
Result<std::vector<StatementPtr>> ParseScript(std::string_view source);

}  // namespace tmdb

#endif  // TMDB_PARSER_STATEMENT_H_
