#include "parser/parser.h"

#include <utility>
#include <vector>

#include "base/string_util.h"
#include "parser/lexer.h"
#include "parser/statement.h"

namespace tmdb {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<AstPtr> ParseAll() {
    TMDB_ASSIGN_OR_RETURN(AstPtr expr, ParseExpr());
    if (Peek().kind != TokenKind::kEof) {
      return Unexpected("end of input");
    }
    return expr;
  }

  Result<StatementPtr> ParseStatementAll() {
    TMDB_ASSIGN_OR_RETURN(StatementPtr statement, ParseOneStatement());
    Match(TokenKind::kSemicolon);
    if (Peek().kind != TokenKind::kEof) {
      return Unexpected("end of statement").status();
    }
    return statement;
  }

  Result<std::vector<StatementPtr>> ParseScriptAll() {
    std::vector<StatementPtr> statements;
    while (true) {
      while (Match(TokenKind::kSemicolon)) {
      }
      if (Peek().kind == TokenKind::kEof) return statements;
      TMDB_ASSIGN_OR_RETURN(StatementPtr statement, ParseOneStatement());
      statements.push_back(std::move(statement));
      if (Peek().kind != TokenKind::kEof) {
        TMDB_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
      }
    }
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t idx = pos_ + ahead;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }

  const Token& Advance() { return tokens_[pos_++]; }

  bool Match(TokenKind kind) {
    if (Peek().kind != kind) return false;
    ++pos_;
    return true;
  }

  Status Expect(TokenKind kind) {
    if (Match(kind)) return Status::OK();
    return Unexpected(TokenKindName(kind)).status();
  }

  Result<AstPtr> Unexpected(const std::string& wanted) const {
    const Token& t = Peek();
    return Status::ParseError(StrCat("expected ", wanted, " but found ",
                                     TokenKindName(t.kind),
                                     t.text.empty() ? "" : " '" + t.text + "'",
                                     " at line ", t.line, ", column ",
                                     t.column));
  }

  AstPtr MakeNode(AstKind kind) const {
    auto node = std::make_unique<AstNode>(kind);
    node->line = Peek().line;
    node->column = Peek().column;
    return node;
  }

  Result<AstPtr> ParseExpr() {
    // Recursive descent: bound the nesting depth so pathological inputs
    // (thousands of parentheses) fail cleanly instead of overflowing the
    // stack, and bound total work so tuple-vs-expression backtracking
    // cannot go exponential on adversarial input.
    if (++work_ > kMaxWork) {
      return Status::ParseError("expression nesting too deep");
    }
    if (++depth_ > kMaxDepth) {
      --depth_;
      return Status::ParseError("expression nesting too deep");
    }
    auto result = ParseOr();
    --depth_;
    return result;
  }

  Result<AstPtr> ParseOr() {
    TMDB_ASSIGN_OR_RETURN(AstPtr lhs, ParseAnd());
    while (Peek().kind == TokenKind::kOr) {
      Advance();
      TMDB_ASSIGN_OR_RETURN(AstPtr rhs, ParseAnd());
      AstPtr node = std::make_unique<AstNode>(AstKind::kBinary);
      node->binary_op = AstBinaryOp::kOr;
      node->line = lhs->line;
      node->column = lhs->column;
      node->children.push_back(std::move(lhs));
      node->children.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<AstPtr> ParseAnd() {
    TMDB_ASSIGN_OR_RETURN(AstPtr lhs, ParseNot());
    while (Peek().kind == TokenKind::kAnd) {
      Advance();
      TMDB_ASSIGN_OR_RETURN(AstPtr rhs, ParseNot());
      AstPtr node = std::make_unique<AstNode>(AstKind::kBinary);
      node->binary_op = AstBinaryOp::kAnd;
      node->line = lhs->line;
      node->column = lhs->column;
      node->children.push_back(std::move(lhs));
      node->children.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<AstPtr> ParseNot() {
    if (Peek().kind == TokenKind::kNot &&
        Peek(1).kind != TokenKind::kIn) {  // `NOT IN` is handled in cmp
      AstPtr node = MakeNode(AstKind::kUnary);
      Advance();
      node->unary_op = AstUnaryOp::kNot;
      TMDB_ASSIGN_OR_RETURN(AstPtr operand, ParseNot());
      node->children.push_back(std::move(operand));
      return node;
    }
    return ParseCmp();
  }

  Result<AstPtr> ParseCmp() {
    TMDB_ASSIGN_OR_RETURN(AstPtr lhs, ParseAdd());
    AstBinaryOp op;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = AstBinaryOp::kEq;
        break;
      case TokenKind::kNe:
        op = AstBinaryOp::kNe;
        break;
      case TokenKind::kLt:
        op = AstBinaryOp::kLt;
        break;
      case TokenKind::kLe:
        op = AstBinaryOp::kLe;
        break;
      case TokenKind::kGt:
        op = AstBinaryOp::kGt;
        break;
      case TokenKind::kGe:
        op = AstBinaryOp::kGe;
        break;
      case TokenKind::kIn:
        op = AstBinaryOp::kIn;
        break;
      case TokenKind::kSubsetEq:
        op = AstBinaryOp::kSubsetEq;
        break;
      case TokenKind::kSubset:
        op = AstBinaryOp::kSubset;
        break;
      case TokenKind::kSupsetEq:
        op = AstBinaryOp::kSupersetEq;
        break;
      case TokenKind::kSupset:
        op = AstBinaryOp::kSuperset;
        break;
      case TokenKind::kNot:
        if (Peek(1).kind == TokenKind::kIn) {
          Advance();  // NOT
          op = AstBinaryOp::kNotIn;
          break;
        }
        return lhs;
      default:
        return lhs;
    }
    Advance();
    TMDB_ASSIGN_OR_RETURN(AstPtr rhs, ParseAdd());
    AstPtr node = std::make_unique<AstNode>(AstKind::kBinary);
    node->binary_op = op;
    node->line = lhs->line;
    node->column = lhs->column;
    node->children.push_back(std::move(lhs));
    node->children.push_back(std::move(rhs));
    return node;
  }

  Result<AstPtr> ParseAdd() {
    TMDB_ASSIGN_OR_RETURN(AstPtr lhs, ParseMul());
    while (true) {
      AstBinaryOp op;
      switch (Peek().kind) {
        case TokenKind::kPlus:
          op = AstBinaryOp::kAdd;
          break;
        case TokenKind::kMinus:
          op = AstBinaryOp::kSub;
          break;
        case TokenKind::kUnion:
          op = AstBinaryOp::kUnion;
          break;
        case TokenKind::kDiff:
          op = AstBinaryOp::kDifference;
          break;
        default:
          return lhs;
      }
      Advance();
      TMDB_ASSIGN_OR_RETURN(AstPtr rhs, ParseMul());
      AstPtr node = std::make_unique<AstNode>(AstKind::kBinary);
      node->binary_op = op;
      node->line = lhs->line;
      node->column = lhs->column;
      node->children.push_back(std::move(lhs));
      node->children.push_back(std::move(rhs));
      lhs = std::move(node);
    }
  }

  Result<AstPtr> ParseMul() {
    TMDB_ASSIGN_OR_RETURN(AstPtr lhs, ParseUnary());
    while (true) {
      AstBinaryOp op;
      switch (Peek().kind) {
        case TokenKind::kStar:
          op = AstBinaryOp::kMul;
          break;
        case TokenKind::kSlash:
          op = AstBinaryOp::kDiv;
          break;
        case TokenKind::kIntersect:
          op = AstBinaryOp::kIntersect;
          break;
        default:
          return lhs;
      }
      Advance();
      TMDB_ASSIGN_OR_RETURN(AstPtr rhs, ParseUnary());
      AstPtr node = std::make_unique<AstNode>(AstKind::kBinary);
      node->binary_op = op;
      node->line = lhs->line;
      node->column = lhs->column;
      node->children.push_back(std::move(lhs));
      node->children.push_back(std::move(rhs));
      lhs = std::move(node);
    }
  }

  Result<AstPtr> ParseUnary() {
    if (Peek().kind == TokenKind::kMinus) {
      AstPtr node = MakeNode(AstKind::kUnary);
      Advance();
      node->unary_op = AstUnaryOp::kNeg;
      TMDB_ASSIGN_OR_RETURN(AstPtr operand, ParseUnary());
      node->children.push_back(std::move(operand));
      return node;
    }
    return ParsePostfix();
  }

  Result<AstPtr> ParsePostfix() {
    TMDB_ASSIGN_OR_RETURN(AstPtr expr, ParsePrimary());
    while (Match(TokenKind::kDot)) {
      if (Peek().kind != TokenKind::kIdent) {
        return Unexpected("attribute name after '.'");
      }
      AstPtr node = std::make_unique<AstNode>(AstKind::kFieldAccess);
      node->line = expr->line;
      node->column = expr->column;
      node->name = Advance().text;
      node->children.push_back(std::move(expr));
      expr = std::move(node);
    }
    return expr;
  }

  Result<AstPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIntLit: {
        AstPtr node = MakeNode(AstKind::kLiteral);
        node->literal = Value::Int(Advance().int_value);
        return node;
      }
      case TokenKind::kRealLit: {
        AstPtr node = MakeNode(AstKind::kLiteral);
        node->literal = Value::Real(Advance().real_value);
        return node;
      }
      case TokenKind::kStringLit: {
        AstPtr node = MakeNode(AstKind::kLiteral);
        node->literal = Value::String(Advance().text);
        return node;
      }
      case TokenKind::kTrue: {
        AstPtr node = MakeNode(AstKind::kLiteral);
        Advance();
        node->literal = Value::Bool(true);
        return node;
      }
      case TokenKind::kFalse: {
        AstPtr node = MakeNode(AstKind::kLiteral);
        Advance();
        node->literal = Value::Bool(false);
        return node;
      }
      case TokenKind::kIdent: {
        AstPtr node = MakeNode(AstKind::kIdent);
        node->name = Advance().text;
        return node;
      }
      case TokenKind::kSelect:
        return ParseSfw();
      case TokenKind::kExists:
      case TokenKind::kForAll:
        return ParseQuantifier();
      case TokenKind::kCount:
      case TokenKind::kSum:
      case TokenKind::kAvg:
      case TokenKind::kMin:
      case TokenKind::kMax:
        return ParseAggregate();
      case TokenKind::kUnnest: {
        AstPtr node = MakeNode(AstKind::kUnnestCall);
        Advance();
        TMDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
        TMDB_ASSIGN_OR_RETURN(AstPtr arg, ParseExpr());
        TMDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        node->children.push_back(std::move(arg));
        return node;
      }
      case TokenKind::kLBrace: {
        AstPtr node = MakeNode(AstKind::kSetCtor);
        Advance();
        if (!Match(TokenKind::kRBrace)) {
          while (true) {
            TMDB_ASSIGN_OR_RETURN(AstPtr elem, ParseExpr());
            node->children.push_back(std::move(elem));
            if (Match(TokenKind::kRBrace)) break;
            TMDB_RETURN_IF_ERROR(Expect(TokenKind::kComma));
          }
        }
        return node;
      }
      case TokenKind::kLParen: {
        // `( ident = ...` is ambiguous between a parenthesised comparison
        // (v = x.c) and a tuple constructor (a = e1, b = e2). Only that
        // form backtracks: try the expression reading first and fall back
        // to the tuple constructor when it fails — e.g. at the ','
        // separating tuple fields. A single-field tuple therefore needs a
        // data context (VALUES, tuple field) to parse as a tuple; the
        // paper's tuple examples always have ≥ 2 fields.
        if (Peek(1).kind == TokenKind::kIdent &&
            Peek(2).kind == TokenKind::kEq) {
          const size_t saved = pos_;
          Advance();
          {
            auto inner = ParseExpr();
            if (inner.ok() && Match(TokenKind::kRParen)) {
              return std::move(inner).value();
            }
          }
          pos_ = saved;
          return ParseTupleCtor();
        }
        Advance();
        TMDB_ASSIGN_OR_RETURN(AstPtr inner, ParseExpr());
        TMDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return inner;
      }
      default:
        return Unexpected("an expression");
    }
  }

  Result<AstPtr> ParseTupleCtor() {
    AstPtr node = MakeNode(AstKind::kTupleCtor);
    TMDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    while (true) {
      if (Peek().kind != TokenKind::kIdent) {
        return Unexpected("attribute name");
      }
      node->ctor_names.push_back(Advance().text);
      TMDB_RETURN_IF_ERROR(Expect(TokenKind::kEq));
      // Inside a tuple constructor, value position is data-like: a
      // parenthesised `( ident = ... )` reads as a nested (possibly
      // single-field) tuple, not a comparison.
      TMDB_ASSIGN_OR_RETURN(AstPtr value, ParseTupleFirstExpr());
      node->children.push_back(std::move(value));
      if (Match(TokenKind::kRParen)) break;
      TMDB_RETURN_IF_ERROR(Expect(TokenKind::kComma));
    }
    return node;
  }

  /// Parses an expression, preferring the tuple-constructor reading of a
  /// leading `( ident = ...` (used in data positions: VALUES rows and
  /// tuple-constructor field values).
  Result<AstPtr> ParseTupleFirstExpr() {
    if (Peek().kind == TokenKind::kLParen &&
        Peek(1).kind == TokenKind::kIdent && Peek(2).kind == TokenKind::kEq) {
      const size_t saved = pos_;
      auto tuple = ParseTupleCtor();
      // The tuple may continue as a larger expression (e.g. a comparison
      // of two tuples); only accept it where an expression could end.
      if (tuple.ok()) return tuple;
      pos_ = saved;
    }
    return ParseExpr();
  }

  Result<AstPtr> ParseQuantifier() {
    AstPtr node = MakeNode(AstKind::kQuantifier);
    node->quant_kind = Advance().kind == TokenKind::kExists
                           ? AstQuantKind::kExists
                           : AstQuantKind::kForAll;
    if (Peek().kind != TokenKind::kIdent) {
      return Unexpected("quantifier variable");
    }
    node->name = Advance().text;
    TMDB_RETURN_IF_ERROR(Expect(TokenKind::kIn));
    TMDB_ASSIGN_OR_RETURN(AstPtr coll, ParseAdd());
    TMDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    TMDB_ASSIGN_OR_RETURN(AstPtr pred, ParseExpr());
    TMDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    node->children.push_back(std::move(coll));
    node->children.push_back(std::move(pred));
    return node;
  }

  Result<AstPtr> ParseAggregate() {
    AstPtr node = MakeNode(AstKind::kAggregate);
    switch (Advance().kind) {
      case TokenKind::kCount:
        node->agg_func = AstAggFunc::kCount;
        break;
      case TokenKind::kSum:
        node->agg_func = AstAggFunc::kSum;
        break;
      case TokenKind::kAvg:
        node->agg_func = AstAggFunc::kAvg;
        break;
      case TokenKind::kMin:
        node->agg_func = AstAggFunc::kMin;
        break;
      default:
        node->agg_func = AstAggFunc::kMax;
        break;
    }
    TMDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    TMDB_ASSIGN_OR_RETURN(AstPtr arg, ParseExpr());
    TMDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    node->children.push_back(std::move(arg));
    return node;
  }

  /// Zero or more `WITH name = expr` clauses (one definition per WITH).
  Result<std::vector<AstWithDef>> ParseWithDefs() {
    std::vector<AstWithDef> defs;
    while (Match(TokenKind::kWith)) {
      if (Peek().kind != TokenKind::kIdent) {
        return Unexpected("WITH definition name").status();
      }
      AstWithDef def;
      def.name = Advance().text;
      TMDB_RETURN_IF_ERROR(Expect(TokenKind::kEq));
      TMDB_ASSIGN_OR_RETURN(def.expr, ParseExpr());
      defs.push_back(std::move(def));
    }
    return defs;
  }

  Result<StatementPtr> ParseOneStatement() {
    auto statement = std::make_unique<Statement>();
    switch (Peek().kind) {
      case TokenKind::kCreate: {
        Advance();
        TMDB_RETURN_IF_ERROR(Expect(TokenKind::kTable));
        if (Peek().kind != TokenKind::kIdent) {
          return Unexpected("table name").status();
        }
        statement->kind = Statement::Kind::kCreateTable;
        statement->target = Advance().text;
        TMDB_ASSIGN_OR_RETURN(statement->schema, ParseTupleTypeAst());
        return statement;
      }
      case TokenKind::kDefine: {
        Advance();
        TMDB_RETURN_IF_ERROR(Expect(TokenKind::kSort));
        if (Peek().kind != TokenKind::kIdent) {
          return Unexpected("sort name").status();
        }
        statement->kind = Statement::Kind::kDefineSort;
        statement->target = Advance().text;
        TMDB_RETURN_IF_ERROR(Expect(TokenKind::kAs));
        TMDB_ASSIGN_OR_RETURN(statement->schema, ParseTupleTypeAst());
        return statement;
      }
      case TokenKind::kInsert: {
        Advance();
        TMDB_RETURN_IF_ERROR(Expect(TokenKind::kInto));
        if (Peek().kind != TokenKind::kIdent) {
          return Unexpected("table name").status();
        }
        statement->kind = Statement::Kind::kInsert;
        statement->target = Advance().text;
        TMDB_RETURN_IF_ERROR(Expect(TokenKind::kValues));
        while (true) {
          // VALUES rows are tuple constructors in the common case, so —
          // unlike in expression position — `(a = 1)` reads as a
          // single-field tuple here, not a comparison.
          TMDB_ASSIGN_OR_RETURN(AstPtr value, ParseTupleFirstExpr());
          statement->values.push_back(std::move(value));
          if (!Match(TokenKind::kComma)) break;
        }
        return statement;
      }
      case TokenKind::kExplain: {
        Advance();
        statement->kind = Statement::Kind::kExplain;
        TMDB_ASSIGN_OR_RETURN(statement->query, ParseExpr());
        return statement;
      }
      default: {
        statement->kind = Statement::Kind::kQuery;
        TMDB_ASSIGN_OR_RETURN(statement->query, ParseExpr());
        return statement;
      }
    }
  }

  /// `( name : type, ... )` — CREATE TABLE / DEFINE SORT schemas.
  Result<TypeAstPtr> ParseTupleTypeAst() {
    auto tuple = std::make_unique<TypeAst>();
    tuple->kind = TypeAst::Kind::kTuple;
    TMDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    while (true) {
      if (Peek().kind != TokenKind::kIdent) {
        return Unexpected("attribute name").status();
      }
      tuple->field_names.push_back(Advance().text);
      TMDB_RETURN_IF_ERROR(Expect(TokenKind::kColon));
      TMDB_ASSIGN_OR_RETURN(TypeAstPtr field_type, ParseTypeAst());
      tuple->field_types.push_back(std::move(field_type));
      if (Match(TokenKind::kRParen)) break;
      TMDB_RETURN_IF_ERROR(Expect(TokenKind::kComma));
    }
    return tuple;
  }

  Result<TypeAstPtr> ParseTypeAst() {
    if (Peek().kind == TokenKind::kLParen) return ParseTupleTypeAst();
    if (Peek().kind != TokenKind::kIdent) {
      return Unexpected("a type").status();
    }
    const std::string name = Advance().text;
    const std::string lower = ToLower(name);
    auto node = std::make_unique<TypeAst>();
    if (lower == "int") {
      node->kind = TypeAst::Kind::kInt;
    } else if (lower == "real") {
      node->kind = TypeAst::Kind::kReal;
    } else if (lower == "string") {
      node->kind = TypeAst::Kind::kString;
    } else if (lower == "bool") {
      node->kind = TypeAst::Kind::kBool;
    } else if ((lower == "p" || lower == "l") &&
               Peek().kind == TokenKind::kLParen) {
      node->kind = lower == "p" ? TypeAst::Kind::kSet : TypeAst::Kind::kList;
      Advance();  // (
      TMDB_ASSIGN_OR_RETURN(node->element, ParseTypeAst());
      TMDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    } else {
      node->kind = TypeAst::Kind::kNamed;  // sort reference
      node->name = name;
    }
    return node;
  }

  Result<AstPtr> ParseSfw() {
    AstPtr node = MakeNode(AstKind::kSfw);
    TMDB_RETURN_IF_ERROR(Expect(TokenKind::kSelect));
    TMDB_ASSIGN_OR_RETURN(node->select_expr, ParseExpr());
    TMDB_ASSIGN_OR_RETURN(node->select_with, ParseWithDefs());
    TMDB_RETURN_IF_ERROR(Expect(TokenKind::kFrom));
    while (true) {
      AstFromBinding binding;
      TMDB_ASSIGN_OR_RETURN(binding.operand, ParseAdd());
      if (Peek().kind != TokenKind::kIdent) {
        return Unexpected("iteration variable in FROM clause");
      }
      binding.var = Advance().text;
      node->from.push_back(std::move(binding));
      if (!Match(TokenKind::kComma)) break;
    }
    if (Match(TokenKind::kWhere)) {
      TMDB_ASSIGN_OR_RETURN(node->where_expr, ParseExpr());
      TMDB_ASSIGN_OR_RETURN(node->where_with, ParseWithDefs());
    }
    return node;
  }

  static constexpr int kMaxDepth = 200;
  static constexpr size_t kMaxWork = 100000;  // total ParseExpr entries

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;
  size_t work_ = 0;  // never reset by backtracking
};

}  // namespace

Result<AstPtr> ParseQuery(std::string_view source) {
  TMDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseAll();
}

Result<StatementPtr> ParseStatement(std::string_view source) {
  TMDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseStatementAll();
}

Result<std::vector<StatementPtr>> ParseScript(std::string_view source) {
  TMDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseScriptAll();
}

std::string TypeAst::ToString() const {
  switch (kind) {
    case Kind::kInt:
      return "INT";
    case Kind::kReal:
      return "REAL";
    case Kind::kString:
      return "STRING";
    case Kind::kBool:
      return "BOOL";
    case Kind::kSet:
      return "P(" + element->ToString() + ")";
    case Kind::kList:
      return "L(" + element->ToString() + ")";
    case Kind::kNamed:
      return name;
    case Kind::kTuple: {
      std::vector<std::string> parts;
      parts.reserve(field_names.size());
      for (size_t i = 0; i < field_names.size(); ++i) {
        parts.push_back(field_names[i] + " : " + field_types[i]->ToString());
      }
      return "(" + Join(parts, ", ") + ")";
    }
  }
  return "?";
}

}  // namespace tmdb
