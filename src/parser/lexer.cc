#include "parser/lexer.h"

#include <cctype>
#include <map>

#include "base/string_util.h"

namespace tmdb {

namespace {

const std::map<std::string, TokenKind>& KeywordTable() {
  static const auto& table = *new std::map<std::string, TokenKind>{
      {"select", TokenKind::kSelect},
      {"from", TokenKind::kFrom},
      {"where", TokenKind::kWhere},
      {"with", TokenKind::kWith},
      {"in", TokenKind::kIn},
      {"not", TokenKind::kNot},
      {"and", TokenKind::kAnd},
      {"or", TokenKind::kOr},
      {"exists", TokenKind::kExists},
      {"forall", TokenKind::kForAll},
      {"true", TokenKind::kTrue},
      {"false", TokenKind::kFalse},
      {"union", TokenKind::kUnion},
      {"intersect", TokenKind::kIntersect},
      {"diff", TokenKind::kDiff},
      {"subseteq", TokenKind::kSubsetEq},
      {"subset", TokenKind::kSubset},
      {"supseteq", TokenKind::kSupsetEq},
      {"supset", TokenKind::kSupset},
      {"count", TokenKind::kCount},
      {"sum", TokenKind::kSum},
      {"avg", TokenKind::kAvg},
      {"min", TokenKind::kMin},
      {"max", TokenKind::kMax},
      {"unnest", TokenKind::kUnnest},
      {"create", TokenKind::kCreate},
      {"table", TokenKind::kTable},
      {"insert", TokenKind::kInsert},
      {"into", TokenKind::kInto},
      {"values", TokenKind::kValues},
      {"define", TokenKind::kDefine},
      {"sort", TokenKind::kSort},
      {"as", TokenKind::kAs},
      {"explain", TokenKind::kExplain},
  };
  return table;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::string TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof:
      return "end of input";
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kIntLit:
      return "integer literal";
    case TokenKind::kRealLit:
      return "real literal";
    case TokenKind::kStringLit:
      return "string literal";
    case TokenKind::kSelect:
      return "SELECT";
    case TokenKind::kFrom:
      return "FROM";
    case TokenKind::kWhere:
      return "WHERE";
    case TokenKind::kWith:
      return "WITH";
    case TokenKind::kIn:
      return "IN";
    case TokenKind::kNot:
      return "NOT";
    case TokenKind::kAnd:
      return "AND";
    case TokenKind::kOr:
      return "OR";
    case TokenKind::kExists:
      return "EXISTS";
    case TokenKind::kForAll:
      return "FORALL";
    case TokenKind::kTrue:
      return "TRUE";
    case TokenKind::kFalse:
      return "FALSE";
    case TokenKind::kUnion:
      return "UNION";
    case TokenKind::kIntersect:
      return "INTERSECT";
    case TokenKind::kDiff:
      return "DIFF";
    case TokenKind::kSubsetEq:
      return "SUBSETEQ";
    case TokenKind::kSubset:
      return "SUBSET";
    case TokenKind::kSupsetEq:
      return "SUPSETEQ";
    case TokenKind::kSupset:
      return "SUPSET";
    case TokenKind::kCount:
      return "COUNT";
    case TokenKind::kSum:
      return "SUM";
    case TokenKind::kAvg:
      return "AVG";
    case TokenKind::kMin:
      return "MIN";
    case TokenKind::kMax:
      return "MAX";
    case TokenKind::kUnnest:
      return "UNNEST";
    case TokenKind::kCreate:
      return "CREATE";
    case TokenKind::kTable:
      return "TABLE";
    case TokenKind::kInsert:
      return "INSERT";
    case TokenKind::kInto:
      return "INTO";
    case TokenKind::kValues:
      return "VALUES";
    case TokenKind::kDefine:
      return "DEFINE";
    case TokenKind::kSort:
      return "SORT";
    case TokenKind::kAs:
      return "AS";
    case TokenKind::kExplain:
      return "EXPLAIN";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'<>'";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  size_t i = 0;
  int line = 1;
  int column = 1;

  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k) {
      if (i < source.size() && source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };

  while (i < source.size()) {
    const char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Comment to end of line.
    if (c == '-' && i + 1 < source.size() && source[i + 1] == '-') {
      while (i < source.size() && source[i] != '\n') advance(1);
      continue;
    }

    Token tok;
    tok.line = line;
    tok.column = column;

    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < source.size() && IsIdentCont(source[i])) advance(1);
      tok.text = std::string(source.substr(start, i - start));
      auto it = KeywordTable().find(ToLower(tok.text));
      tok.kind = it == KeywordTable().end() ? TokenKind::kIdent : it->second;
      tokens.push_back(std::move(tok));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[i]))) {
        advance(1);
      }
      bool is_real = false;
      if (i + 1 < source.size() && source[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(source[i + 1]))) {
        is_real = true;
        advance(1);
        while (i < source.size() &&
               std::isdigit(static_cast<unsigned char>(source[i]))) {
          advance(1);
        }
      }
      tok.text = std::string(source.substr(start, i - start));
      if (is_real) {
        tok.kind = TokenKind::kRealLit;
        tok.real_value = std::stod(tok.text);
      } else {
        tok.kind = TokenKind::kIntLit;
        tok.int_value = std::stoll(tok.text);
      }
      tokens.push_back(std::move(tok));
      continue;
    }

    if (c == '"') {
      advance(1);
      std::string text;
      bool closed = false;
      while (i < source.size()) {
        const char d = source[i];
        if (d == '"') {
          advance(1);
          closed = true;
          break;
        }
        if (d == '\\' && i + 1 < source.size()) {
          const char e = source[i + 1];
          advance(2);
          switch (e) {
            case 'n':
              text += '\n';
              break;
            case 't':
              text += '\t';
              break;
            default:
              text += e;
          }
          continue;
        }
        text += d;
        advance(1);
      }
      if (!closed) {
        return Status::ParseError(
            StrCat("unterminated string literal at line ", tok.line));
      }
      tok.kind = TokenKind::kStringLit;
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }

    auto single = [&](TokenKind kind) {
      tok.kind = kind;
      tok.text = std::string(1, c);
      advance(1);
      tokens.push_back(std::move(tok));
    };

    switch (c) {
      case '(':
        single(TokenKind::kLParen);
        continue;
      case ')':
        single(TokenKind::kRParen);
        continue;
      case '{':
        single(TokenKind::kLBrace);
        continue;
      case '}':
        single(TokenKind::kRBrace);
        continue;
      case ',':
        single(TokenKind::kComma);
        continue;
      case ':':
        single(TokenKind::kColon);
        continue;
      case ';':
        single(TokenKind::kSemicolon);
        continue;
      case '.':
        single(TokenKind::kDot);
        continue;
      case '=':
        single(TokenKind::kEq);
        continue;
      case '+':
        single(TokenKind::kPlus);
        continue;
      case '-':
        single(TokenKind::kMinus);
        continue;
      case '*':
        single(TokenKind::kStar);
        continue;
      case '/':
        single(TokenKind::kSlash);
        continue;
      case '<':
        if (i + 1 < source.size() && source[i + 1] == '>') {
          tok.kind = TokenKind::kNe;
          tok.text = "<>";
          advance(2);
        } else if (i + 1 < source.size() && source[i + 1] == '=') {
          tok.kind = TokenKind::kLe;
          tok.text = "<=";
          advance(2);
        } else {
          tok.kind = TokenKind::kLt;
          tok.text = "<";
          advance(1);
        }
        tokens.push_back(std::move(tok));
        continue;
      case '>':
        if (i + 1 < source.size() && source[i + 1] == '=') {
          tok.kind = TokenKind::kGe;
          tok.text = ">=";
          advance(2);
        } else {
          tok.kind = TokenKind::kGt;
          tok.text = ">";
          advance(1);
        }
        tokens.push_back(std::move(tok));
        continue;
      default:
        return Status::ParseError(StrCat("unexpected character '", c,
                                         "' at line ", line, ", column ",
                                         column));
    }
  }

  Token eof;
  eof.kind = TokenKind::kEof;
  eof.line = line;
  eof.column = column;
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace tmdb
