#include "base/fault_injector.h"

namespace tmdb {

namespace {

// SplitMix64 finaliser: a cheap, well-distributed 64-bit mixer.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr double kTwoPow53 = 9007199254740992.0;  // 2^53

}  // namespace

void FaultInjector::ArmNth(uint64_t n) {
  nth_ = n;
  counter_.store(0, std::memory_order_relaxed);
  fired_.store(0, std::memory_order_relaxed);
  mode_.store(kNth, std::memory_order_relaxed);
}

void FaultInjector::ArmRate(double p, uint64_t seed) {
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  seed_ = seed;
  rate_threshold_ = static_cast<uint64_t>(p * kTwoPow53);
  counter_.store(0, std::memory_order_relaxed);
  fired_.store(0, std::memory_order_relaxed);
  mode_.store(kRate, std::memory_order_relaxed);
}

void FaultInjector::Disarm() { mode_.store(kDisabled, std::memory_order_relaxed); }

bool FaultInjector::ShouldFail() {
  const int mode = mode_.load(std::memory_order_relaxed);
  if (mode == kDisabled) return false;
  const uint64_t index = counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fail;
  if (mode == kNth) {
    fail = nth_ != 0 && index == nth_;
  } else {
    // Top 53 bits of the mix compared against p * 2^53: each checkpoint
    // fails independently with probability p, reproducibly under seed_.
    fail = (Mix64(seed_ ^ (index * 0x9e3779b97f4a7c15ull)) >> 11) <
           rate_threshold_;
  }
  if (fail) fired_.fetch_add(1, std::memory_order_relaxed);
  return fail;
}

void FaultInjector::ArmIo(IoFaultKind kind, uint64_t n) {
  io_kind_ = kind;
  io_nth_ = n;
  io_writes_.store(0, std::memory_order_relaxed);
  io_reads_.store(0, std::memory_order_relaxed);
  io_unlinks_.store(0, std::memory_order_relaxed);
  io_fired_.store(0, std::memory_order_relaxed);
}

void FaultInjector::DisarmIo() { io_kind_ = IoFaultKind::kNone; }

bool FaultInjector::IoOp(IoFaultKind channel_kind,
                         std::atomic<uint64_t>* channel) {
  const uint64_t index = channel->fetch_add(1, std::memory_order_relaxed) + 1;
  if (channel_kind == IoFaultKind::kNone || io_kind_ != channel_kind ||
      io_nth_ == 0 || index != io_nth_) {
    return false;
  }
  io_fired_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

IoFaultKind FaultInjector::ShouldFailWrite() {
  // Both write-shaped faults share the channel counter: the n-th write fails
  // in whichever way was armed.
  const IoFaultKind kind = io_kind_;
  const bool write_fault =
      kind == IoFaultKind::kShortWrite || kind == IoFaultKind::kEnospc;
  return IoOp(write_fault ? kind : IoFaultKind::kNone, &io_writes_)
             ? kind
             : IoFaultKind::kNone;
}

bool FaultInjector::ShouldFailRead() {
  return IoOp(IoFaultKind::kCorruptRead, &io_reads_);
}

bool FaultInjector::ShouldFailUnlink() {
  return IoOp(IoFaultKind::kUnlinkFail, &io_unlinks_);
}

void FaultInjector::ArmWire(WireFaultKind kind, uint64_t n) {
  wire_kind_.store(kind, std::memory_order_relaxed);
  wire_nth_.store(n, std::memory_order_relaxed);
  wire_sends_.store(0, std::memory_order_relaxed);
  wire_recvs_.store(0, std::memory_order_relaxed);
  wire_accepts_.store(0, std::memory_order_relaxed);
  wire_fired_.store(0, std::memory_order_relaxed);
}

void FaultInjector::DisarmWire() {
  wire_kind_.store(WireFaultKind::kNone, std::memory_order_relaxed);
}

bool FaultInjector::WireOp(bool channel_matches_kind,
                           std::atomic<uint64_t>* channel) {
  const uint64_t index = channel->fetch_add(1, std::memory_order_relaxed) + 1;
  const uint64_t nth = wire_nth_.load(std::memory_order_relaxed);
  if (!channel_matches_kind || nth == 0 || index != nth) return false;
  wire_fired_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

WireFaultKind FaultInjector::ShouldFailSend() {
  const WireFaultKind kind = wire_kind_.load(std::memory_order_relaxed);
  const bool send_fault = kind == WireFaultKind::kShortWrite ||
                          kind == WireFaultKind::kTornFrame ||
                          kind == WireFaultKind::kCorruptCrc ||
                          kind == WireFaultKind::kDisconnect;
  return WireOp(send_fault, &wire_sends_) ? kind : WireFaultKind::kNone;
}

bool FaultInjector::ShouldFailRecv() {
  const WireFaultKind kind = wire_kind_.load(std::memory_order_relaxed);
  return WireOp(kind == WireFaultKind::kShortRead, &wire_recvs_);
}

bool FaultInjector::ShouldFailAccept() {
  const WireFaultKind kind = wire_kind_.load(std::memory_order_relaxed);
  return WireOp(kind == WireFaultKind::kAcceptFail, &wire_accepts_);
}

}  // namespace tmdb
