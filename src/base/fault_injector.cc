#include "base/fault_injector.h"

namespace tmdb {

namespace {

// SplitMix64 finaliser: a cheap, well-distributed 64-bit mixer.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr double kTwoPow53 = 9007199254740992.0;  // 2^53

}  // namespace

void FaultInjector::ArmNth(uint64_t n) {
  nth_ = n;
  counter_.store(0, std::memory_order_relaxed);
  fired_.store(0, std::memory_order_relaxed);
  mode_.store(kNth, std::memory_order_relaxed);
}

void FaultInjector::ArmRate(double p, uint64_t seed) {
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  seed_ = seed;
  rate_threshold_ = static_cast<uint64_t>(p * kTwoPow53);
  counter_.store(0, std::memory_order_relaxed);
  fired_.store(0, std::memory_order_relaxed);
  mode_.store(kRate, std::memory_order_relaxed);
}

void FaultInjector::Disarm() { mode_.store(kDisabled, std::memory_order_relaxed); }

bool FaultInjector::ShouldFail() {
  const int mode = mode_.load(std::memory_order_relaxed);
  if (mode == kDisabled) return false;
  const uint64_t index = counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fail;
  if (mode == kNth) {
    fail = nth_ != 0 && index == nth_;
  } else {
    // Top 53 bits of the mix compared against p * 2^53: each checkpoint
    // fails independently with probability p, reproducibly under seed_.
    fail = (Mix64(seed_ ^ (index * 0x9e3779b97f4a7c15ull)) >> 11) <
           rate_threshold_;
  }
  if (fail) fired_.fetch_add(1, std::memory_order_relaxed);
  return fail;
}

}  // namespace tmdb
