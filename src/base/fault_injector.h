#ifndef TMDB_BASE_FAULT_INJECTOR_H_
#define TMDB_BASE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>

namespace tmdb {

/// Deterministic, seeded fault injection for exercising error-unwind paths.
///
/// The executor calls ShouldFail() at every guard checkpoint (batch
/// boundaries, morsel boundaries, materialisation steps). An armed injector
/// turns one or more of those checkpoints into a synthetic failure, letting
/// tests sweep "what if the engine failed *here*" across every operator
/// without mocking allocators or IO.
///
/// Two modes:
///   - ArmNth(n):      fail exactly the n-th checkpoint (1-based) after
///                     arming. ArmNth(0) never fails but still counts
///                     checkpoints, which is how tests size a sweep.
///   - ArmRate(p, s):  fail each checkpoint independently with probability
///                     p, derived from a hash of (seed, checkpoint index) —
///                     fully deterministic for a given seed and call order.
///
/// The facility is compiled in always. When no injector is installed the
/// cost at a checkpoint is a null-pointer test; when installed but
/// disarmed, one relaxed atomic load. Arm*/Disarm must not race with a
/// running query: (re)arm between runs only. ShouldFail() itself is
/// thread-safe and callable from pool workers.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Fails the n-th checkpoint (1-based) observed after this call.
  /// n == 0 arms counting only: checkpoints are tallied, none fail.
  void ArmNth(uint64_t n);

  /// Fails each checkpoint with probability `p` (clamped to [0,1]),
  /// deterministically under `seed`. Resets the checkpoint counter.
  void ArmRate(double p, uint64_t seed);

  /// Stops injecting. Counters keep their values for inspection.
  void Disarm();

  /// True when armed (including count-only ArmNth(0)).
  bool enabled() const {
    return mode_.load(std::memory_order_relaxed) != kDisabled;
  }

  /// Called by the guard at each checkpoint. Returns true when this
  /// checkpoint should fail.
  bool ShouldFail();

  /// Checkpoints observed since the last Arm* call.
  uint64_t checkpoints_seen() const {
    return counter_.load(std::memory_order_relaxed);
  }

  /// Faults fired since the last Arm* call.
  uint64_t faults_fired() const {
    return fired_.load(std::memory_order_relaxed);
  }

 private:
  enum Mode : int { kDisabled = 0, kNth, kRate };

  std::atomic<int> mode_{kDisabled};
  std::atomic<uint64_t> counter_{0};
  std::atomic<uint64_t> fired_{0};
  // Plain fields: written only by Arm* (between runs), read by ShouldFail.
  uint64_t nth_ = 0;
  uint64_t seed_ = 0;
  uint64_t rate_threshold_ = 0;  // fail when hash >> 11 < threshold (53-bit)
};

}  // namespace tmdb

#endif  // TMDB_BASE_FAULT_INJECTOR_H_
