#ifndef TMDB_BASE_FAULT_INJECTOR_H_
#define TMDB_BASE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>

namespace tmdb {

/// Synthetic I/O failure modes for the spill subsystem. Writes can come up
/// short or hit a full disk; reads can hand back corrupted bytes (caught by
/// the block checksum); unlinks can fail transiently during cleanup.
enum class IoFaultKind {
  kNone = 0,
  kShortWrite,   // write channel: only part of the block reaches the file
  kEnospc,       // write channel: no space left on device
  kCorruptRead,  // read channel: one payload byte is flipped after the read
  kUnlinkFail,   // unlink channel: removing a spill file fails once
};

/// Synthetic wire failure modes for the network front end. Consulted at
/// every frame boundary by the framed-socket layer: sends can be cut short
/// (the peer sees a torn frame), frames can go out with a flipped CRC byte
/// (the peer's checksum rejects them), the connection can drop mid-stream,
/// reads can end early, and accept() can fail transiently.
enum class WireFaultKind {
  kNone = 0,
  kShortWrite,   // send channel: part of the frame is sent, then kIoError
  kTornFrame,    // send channel: partial frame sent "successfully", then cut
  kCorruptCrc,   // send channel: one CRC byte flipped before the send
  kDisconnect,   // send channel: socket closed instead of sending
  kShortRead,    // recv channel: frame read ends early (peer appears torn)
  kAcceptFail,   // accept channel: accepting a connection fails once
};

/// Deterministic, seeded fault injection for exercising error-unwind paths.
///
/// The executor calls ShouldFail() at every guard checkpoint (batch
/// boundaries, morsel boundaries, materialisation steps). An armed injector
/// turns one or more of those checkpoints into a synthetic failure, letting
/// tests sweep "what if the engine failed *here*" across every operator
/// without mocking allocators or IO.
///
/// Two modes:
///   - ArmNth(n):      fail exactly the n-th checkpoint (1-based) after
///                     arming. ArmNth(0) never fails but still counts
///                     checkpoints, which is how tests size a sweep.
///   - ArmRate(p, s):  fail each checkpoint independently with probability
///                     p, derived from a hash of (seed, checkpoint index) —
///                     fully deterministic for a given seed and call order.
///
/// The facility is compiled in always. When no injector is installed the
/// cost at a checkpoint is a null-pointer test; when installed but
/// disarmed, one relaxed atomic load. Arm*/Disarm must not race with a
/// running query: (re)arm between runs only. ShouldFail() itself is
/// thread-safe and callable from pool workers.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Fails the n-th checkpoint (1-based) observed after this call.
  /// n == 0 arms counting only: checkpoints are tallied, none fail.
  void ArmNth(uint64_t n);

  /// Fails each checkpoint with probability `p` (clamped to [0,1]),
  /// deterministically under `seed`. Resets the checkpoint counter.
  void ArmRate(double p, uint64_t seed);

  /// Stops injecting. Counters keep their values for inspection.
  void Disarm();

  /// True when armed (including count-only ArmNth(0)).
  bool enabled() const {
    return mode_.load(std::memory_order_relaxed) != kDisabled;
  }

  /// Called by the guard at each checkpoint. Returns true when this
  /// checkpoint should fail.
  bool ShouldFail();

  /// Checkpoints observed since the last Arm* call.
  uint64_t checkpoints_seen() const {
    return counter_.load(std::memory_order_relaxed);
  }

  /// Faults fired since the last Arm* call.
  uint64_t faults_fired() const {
    return fired_.load(std::memory_order_relaxed);
  }

  // ------------------------------------------------------- I/O injection
  //
  // The spill subsystem consults a separate set of channels, one per I/O
  // shape: block writes, block reads, and file unlinks. Every consultation
  // is counted (armed or not), so a clean run with an installed injector
  // sizes a sweep; ArmIo picks the channel from the fault kind and fires on
  // that channel's n-th operation after arming. The checkpoint channel
  // above is unaffected — checkpoint sweeps and I/O sweeps compose.

  /// Fails the n-th operation (1-based) on `kind`'s channel observed after
  /// this call. n == 0 re-arms counting only. Resets all I/O counters.
  void ArmIo(IoFaultKind kind, uint64_t n);

  /// Stops injecting I/O faults; counters keep their values.
  void DisarmIo();

  /// Write-channel consultation: returns kShortWrite/kEnospc when this
  /// block write should fail, kNone otherwise.
  IoFaultKind ShouldFailWrite();
  /// Read-channel consultation: true when this block read should hand back
  /// corrupted bytes.
  bool ShouldFailRead();
  /// Unlink-channel consultation: true when this unlink should fail.
  bool ShouldFailUnlink();

  uint64_t io_writes_seen() const {
    return io_writes_.load(std::memory_order_relaxed);
  }
  uint64_t io_reads_seen() const {
    return io_reads_.load(std::memory_order_relaxed);
  }
  uint64_t io_unlinks_seen() const {
    return io_unlinks_.load(std::memory_order_relaxed);
  }
  uint64_t io_faults_fired() const {
    return io_fired_.load(std::memory_order_relaxed);
  }

  // ------------------------------------------------------ wire injection
  //
  // The network layer consults three more channels: frame sends, frame
  // receives, and listener accepts. Every consultation is counted (armed or
  // not), so a clean client/server exchange sizes a sweep exactly like the
  // I/O channels; ArmWire picks the channel from the fault kind and fires
  // on that channel's n-th operation after arming. Independent of the
  // checkpoint and I/O channels — all three compose in one run.

  /// Fails the n-th operation (1-based) on `kind`'s channel observed after
  /// this call. n == 0 re-arms counting only. Resets all wire counters.
  void ArmWire(WireFaultKind kind, uint64_t n);

  /// Stops injecting wire faults; counters keep their values.
  void DisarmWire();

  /// Send-channel consultation: returns the armed send-shaped fault
  /// (kShortWrite/kTornFrame/kCorruptCrc/kDisconnect) when this frame send
  /// should fail, kNone otherwise.
  WireFaultKind ShouldFailSend();
  /// Recv-channel consultation: true when this frame read should come up
  /// short (the reader behaves as if the peer died mid-frame).
  bool ShouldFailRecv();
  /// Accept-channel consultation: true when this accept should fail.
  bool ShouldFailAccept();

  uint64_t wire_sends_seen() const {
    return wire_sends_.load(std::memory_order_relaxed);
  }
  uint64_t wire_recvs_seen() const {
    return wire_recvs_.load(std::memory_order_relaxed);
  }
  uint64_t wire_accepts_seen() const {
    return wire_accepts_.load(std::memory_order_relaxed);
  }
  uint64_t wire_faults_fired() const {
    return wire_fired_.load(std::memory_order_relaxed);
  }

 private:
  enum Mode : int { kDisabled = 0, kNth, kRate };

  /// Counts an op on `channel`; true when the armed I/O fault fires here.
  bool IoOp(IoFaultKind channel_kind, std::atomic<uint64_t>* channel);

  std::atomic<int> mode_{kDisabled};
  std::atomic<uint64_t> counter_{0};
  std::atomic<uint64_t> fired_{0};
  // Plain fields: written only by Arm* (between runs), read by ShouldFail.
  uint64_t nth_ = 0;
  uint64_t seed_ = 0;
  uint64_t rate_threshold_ = 0;  // fail when hash >> 11 < threshold (53-bit)

  // I/O channels. io_kind_ is plain for the same reason as nth_: armed only
  // between runs, read by the (coordinator-only) spill I/O sites.
  IoFaultKind io_kind_ = IoFaultKind::kNone;
  uint64_t io_nth_ = 0;
  std::atomic<uint64_t> io_writes_{0};
  std::atomic<uint64_t> io_reads_{0};
  std::atomic<uint64_t> io_unlinks_{0};
  std::atomic<uint64_t> io_fired_{0};

  /// Counts an op on a wire `channel`; true when the armed wire fault fires
  /// here (the armed kind belongs to this channel and the count matches).
  bool WireOp(bool channel_matches_kind, std::atomic<uint64_t>* channel);

  // Wire channels. Unlike the spill I/O sites, frame I/O runs concurrently
  // on several session threads, so the armed kind/count are atomics too
  // (relaxed: tests arm while the wire is quiet, exactly like Arm*/ArmIo).
  std::atomic<WireFaultKind> wire_kind_{WireFaultKind::kNone};
  std::atomic<uint64_t> wire_nth_{0};
  std::atomic<uint64_t> wire_sends_{0};
  std::atomic<uint64_t> wire_recvs_{0};
  std::atomic<uint64_t> wire_accepts_{0};
  std::atomic<uint64_t> wire_fired_{0};
};

}  // namespace tmdb

#endif  // TMDB_BASE_FAULT_INJECTOR_H_
