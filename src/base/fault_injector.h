#ifndef TMDB_BASE_FAULT_INJECTOR_H_
#define TMDB_BASE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>

namespace tmdb {

/// Synthetic I/O failure modes for the spill subsystem. Writes can come up
/// short or hit a full disk; reads can hand back corrupted bytes (caught by
/// the block checksum); unlinks can fail transiently during cleanup.
enum class IoFaultKind {
  kNone = 0,
  kShortWrite,   // write channel: only part of the block reaches the file
  kEnospc,       // write channel: no space left on device
  kCorruptRead,  // read channel: one payload byte is flipped after the read
  kUnlinkFail,   // unlink channel: removing a spill file fails once
};

/// Deterministic, seeded fault injection for exercising error-unwind paths.
///
/// The executor calls ShouldFail() at every guard checkpoint (batch
/// boundaries, morsel boundaries, materialisation steps). An armed injector
/// turns one or more of those checkpoints into a synthetic failure, letting
/// tests sweep "what if the engine failed *here*" across every operator
/// without mocking allocators or IO.
///
/// Two modes:
///   - ArmNth(n):      fail exactly the n-th checkpoint (1-based) after
///                     arming. ArmNth(0) never fails but still counts
///                     checkpoints, which is how tests size a sweep.
///   - ArmRate(p, s):  fail each checkpoint independently with probability
///                     p, derived from a hash of (seed, checkpoint index) —
///                     fully deterministic for a given seed and call order.
///
/// The facility is compiled in always. When no injector is installed the
/// cost at a checkpoint is a null-pointer test; when installed but
/// disarmed, one relaxed atomic load. Arm*/Disarm must not race with a
/// running query: (re)arm between runs only. ShouldFail() itself is
/// thread-safe and callable from pool workers.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Fails the n-th checkpoint (1-based) observed after this call.
  /// n == 0 arms counting only: checkpoints are tallied, none fail.
  void ArmNth(uint64_t n);

  /// Fails each checkpoint with probability `p` (clamped to [0,1]),
  /// deterministically under `seed`. Resets the checkpoint counter.
  void ArmRate(double p, uint64_t seed);

  /// Stops injecting. Counters keep their values for inspection.
  void Disarm();

  /// True when armed (including count-only ArmNth(0)).
  bool enabled() const {
    return mode_.load(std::memory_order_relaxed) != kDisabled;
  }

  /// Called by the guard at each checkpoint. Returns true when this
  /// checkpoint should fail.
  bool ShouldFail();

  /// Checkpoints observed since the last Arm* call.
  uint64_t checkpoints_seen() const {
    return counter_.load(std::memory_order_relaxed);
  }

  /// Faults fired since the last Arm* call.
  uint64_t faults_fired() const {
    return fired_.load(std::memory_order_relaxed);
  }

  // ------------------------------------------------------- I/O injection
  //
  // The spill subsystem consults a separate set of channels, one per I/O
  // shape: block writes, block reads, and file unlinks. Every consultation
  // is counted (armed or not), so a clean run with an installed injector
  // sizes a sweep; ArmIo picks the channel from the fault kind and fires on
  // that channel's n-th operation after arming. The checkpoint channel
  // above is unaffected — checkpoint sweeps and I/O sweeps compose.

  /// Fails the n-th operation (1-based) on `kind`'s channel observed after
  /// this call. n == 0 re-arms counting only. Resets all I/O counters.
  void ArmIo(IoFaultKind kind, uint64_t n);

  /// Stops injecting I/O faults; counters keep their values.
  void DisarmIo();

  /// Write-channel consultation: returns kShortWrite/kEnospc when this
  /// block write should fail, kNone otherwise.
  IoFaultKind ShouldFailWrite();
  /// Read-channel consultation: true when this block read should hand back
  /// corrupted bytes.
  bool ShouldFailRead();
  /// Unlink-channel consultation: true when this unlink should fail.
  bool ShouldFailUnlink();

  uint64_t io_writes_seen() const {
    return io_writes_.load(std::memory_order_relaxed);
  }
  uint64_t io_reads_seen() const {
    return io_reads_.load(std::memory_order_relaxed);
  }
  uint64_t io_unlinks_seen() const {
    return io_unlinks_.load(std::memory_order_relaxed);
  }
  uint64_t io_faults_fired() const {
    return io_fired_.load(std::memory_order_relaxed);
  }

 private:
  enum Mode : int { kDisabled = 0, kNth, kRate };

  /// Counts an op on `channel`; true when the armed I/O fault fires here.
  bool IoOp(IoFaultKind channel_kind, std::atomic<uint64_t>* channel);

  std::atomic<int> mode_{kDisabled};
  std::atomic<uint64_t> counter_{0};
  std::atomic<uint64_t> fired_{0};
  // Plain fields: written only by Arm* (between runs), read by ShouldFail.
  uint64_t nth_ = 0;
  uint64_t seed_ = 0;
  uint64_t rate_threshold_ = 0;  // fail when hash >> 11 < threshold (53-bit)

  // I/O channels. io_kind_ is plain for the same reason as nth_: armed only
  // between runs, read by the (coordinator-only) spill I/O sites.
  IoFaultKind io_kind_ = IoFaultKind::kNone;
  uint64_t io_nth_ = 0;
  std::atomic<uint64_t> io_writes_{0};
  std::atomic<uint64_t> io_reads_{0};
  std::atomic<uint64_t> io_unlinks_{0};
  std::atomic<uint64_t> io_fired_{0};
};

}  // namespace tmdb

#endif  // TMDB_BASE_FAULT_INJECTOR_H_
