#include "base/thread_pool.h"

namespace tmdb {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and fully drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    // packaged_task catches the task's exceptions into its future.
    task();
  }
}

}  // namespace tmdb
