#ifndef TMDB_BASE_HASH_H_
#define TMDB_BASE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace tmdb {

/// 64-bit FNV-1a over raw bytes. Deterministic across runs (unlike
/// std::hash<std::string> on some platforms), which keeps property-test
/// failures reproducible.
inline uint64_t HashBytes(const void* data, size_t len,
                          uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s, uint64_t seed = 0) {
  return HashBytes(s.data(), s.size(), 0xcbf29ce484222325ULL ^ seed);
}

/// Order-dependent combination of two hashes (boost-style mix).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

/// Order-independent combination, used for set values whose hash must not
/// depend on iteration order (though sets are canonicalised anyway, this
/// makes the invariant robust).
inline uint64_t HashCombineUnordered(uint64_t a, uint64_t b) {
  return a + b * 0x9e3779b97f4a7c15ULL;
}

}  // namespace tmdb

#endif  // TMDB_BASE_HASH_H_
