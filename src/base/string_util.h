#ifndef TMDB_BASE_STRING_UTIL_H_
#define TMDB_BASE_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace tmdb {

/// Joins the elements of `parts` with `sep` between them.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Returns `s` with leading/trailing ASCII whitespace removed.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// ASCII lower-casing (the SFW language keywords are case-insensitive).
std::string ToLower(std::string_view s);

/// printf-free type-safe concatenation: StrCat(1, " + ", 2.5) == "1 + 2.5".
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}

/// Indents every line of `text` by `spaces` spaces (used by plan printers).
std::string IndentLines(const std::string& text, int spaces);

/// Escapes a string for inclusion in a quoted literal: ", \ and control
/// characters become backslash escapes.
std::string EscapeString(std::string_view s);

}  // namespace tmdb

#endif  // TMDB_BASE_STRING_UTIL_H_
