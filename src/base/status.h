#ifndef TMDB_BASE_STATUS_H_
#define TMDB_BASE_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace tmdb {

/// Error categories used throughout the engine. The set is deliberately
/// small: callers branch on "did it work" far more often than on the
/// specific category, which mostly serves diagnostics.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // named entity (table, attribute, variable) missing
  kAlreadyExists,     // duplicate definition
  kTypeError,         // expression/type mismatch detected by sema or algebra
  kParseError,        // lexer/parser rejected the input
  kUnsupported,       // recognised but not implemented feature
  kInternal,          // invariant violation inside the engine
  kCancelled,         // query cancelled cooperatively (QueryGuard)
  kDeadlineExceeded,  // query ran past its deadline (QueryGuard)
  kResourceExhausted, // row/memory budget tripped (QueryGuard)
  kIoError,           // spill/storage I/O failed or data failed its checksum
  kStrategySwitch,    // adaptive re-plan requested mid-query (internal: the
                      // Database catches it and re-runs; never user-facing)
};

/// Returns a stable human-readable name ("TypeError", ...) for a code.
const char* StatusCodeName(StatusCode code);

/// Canonical phrase for the guard-trip codes that every front end must
/// render the same way — kCancelled, kDeadlineExceeded, kResourceExhausted
/// — and nullptr for every other code. The single source of truth behind
/// FormatStatusForUser, so the REPL, the server's error frames, and the
/// client CLI cannot drift apart.
const char* GuardTripPhrase(StatusCode code);

/// A cheap, copyable success-or-error value (Arrow/Abseil style). The engine
/// is built without exceptions; every fallible function returns Status or
/// Result<T>.
///
/// An OK status stores no message and allocates nothing.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status StrategySwitch(std::string msg) {
    return Status(StatusCode::kStrategySwitch, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Prefixes the message with more context, keeping the code. No-op on OK.
  Status WithContext(const std::string& context) const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// The one user-facing rendering of a Status, shared by every front end.
/// Guard-trip codes render as "<CodeName>: <canonical phrase> (<detail>)"
/// — detail being the original message when it adds information — and all
/// other codes render as ToString(). OK renders as "OK".
std::string FormatStatusForUser(const Status& status);

/// Propagates a non-OK Status to the caller. Usable in any function that
/// returns Status (or Result<T>, via the implicit conversion).
#define TMDB_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::tmdb::Status _tmdb_status = (expr);           \
    if (!_tmdb_status.ok()) return _tmdb_status;    \
  } while (false)

}  // namespace tmdb

#endif  // TMDB_BASE_STATUS_H_
