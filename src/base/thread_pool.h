#ifndef TMDB_BASE_THREAD_POOL_H_
#define TMDB_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace tmdb {

/// Fixed-size worker pool with a single shared queue.
///
/// LEGACY: the engine's intra-operator parallelism moved to the
/// process-wide work-stealing scheduler in sched/scheduler.h (per-worker
/// deques, dynamic morsel claiming, queries multiplexed over one pool).
/// This class remains as the static-dispatch baseline for benchmarks
/// (bench_sched measures it against the scheduler) and for tests of the
/// future-based task boundary; new engine code should not use it.
///
/// Tasks are submitted as callables and observed through std::future, so
/// exceptions thrown inside a task propagate to the caller at
/// future.get() instead of crashing a worker.
///
/// Shutdown is deterministic: the destructor lets the workers drain every
/// task already queued, then joins all of them. No task is dropped, and no
/// worker outlives the pool object.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn` for execution on some worker. The returned future holds
  /// fn's result, or rethrows whatever fn threw.
  template <typename Fn>
  auto Submit(Fn fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tmdb

#endif  // TMDB_BASE_THREAD_POOL_H_
