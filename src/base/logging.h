#ifndef TMDB_BASE_LOGGING_H_
#define TMDB_BASE_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace tmdb::internal_logging {

/// Prints the failure message and aborts. Out-of-line so the macro below
/// stays small at every call site.
[[noreturn]] void CheckFail(const char* file, int line, const std::string& msg);

}  // namespace tmdb::internal_logging

/// Aborts with a diagnostic when `cond` is false. Used for programming-error
/// invariants (not for data-dependent errors, which use Status). Enabled in
/// all build types: this engine is a research artifact where a loud failure
/// beats silent corruption.
#define TMDB_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::tmdb::internal_logging::CheckFail(__FILE__, __LINE__,              \
                                          "TMDB_CHECK failed: " #cond);    \
    }                                                                      \
  } while (false)

#define TMDB_CHECK_MSG(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream _tmdb_oss;                                        \
      _tmdb_oss << "TMDB_CHECK failed: " #cond << " — " << msg;            \
    ::tmdb::internal_logging::CheckFail(__FILE__, __LINE__, _tmdb_oss.str()); \
    }                                                                      \
  } while (false)

/// Marks unreachable code paths.
#define TMDB_UNREACHABLE(msg)                                              \
  ::tmdb::internal_logging::CheckFail(__FILE__, __LINE__,                  \
                                      std::string("unreachable: ") + (msg))

#endif  // TMDB_BASE_LOGGING_H_
