#ifndef TMDB_BASE_CRC32_H_
#define TMDB_BASE_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace tmdb {

namespace internal_crc32 {

/// Byte-wise lookup table for the reflected CRC-32 polynomial 0xEDB88320
/// (the zlib/PNG polynomial), generated at compile time.
constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace internal_crc32

/// CRC-32 (reflected, polynomial 0xEDB88320) over `len` bytes. Pass the
/// previous return value as `seed` to checksum data in chunks; the default
/// seed checksums a single buffer. Deterministic across platforms — spill
/// files written by one build verify under any other.
inline uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = internal_crc32::kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace tmdb

#endif  // TMDB_BASE_CRC32_H_
