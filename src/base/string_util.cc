#include "base/string_util.h"

#include <cctype>

namespace tmdb {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string IndentLines(const std::string& text, int spaces) {
  const std::string pad(static_cast<size_t>(spaces), ' ');
  std::string out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t pos = text.find('\n', start);
    if (pos == std::string::npos) {
      if (start < text.size()) out += pad + text.substr(start);
      break;
    }
    out += pad + text.substr(start, pos - start) + "\n";
    start = pos + 1;
  }
  return out;
}

std::string EscapeString(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace tmdb
