#include "base/logging.h"

namespace tmdb::internal_logging {

void CheckFail(const char* file, int line, const std::string& msg) {
  std::cerr << file << ":" << line << ": " << msg << std::endl;
  std::abort();
}

}  // namespace tmdb::internal_logging
