#include "base/status.h"

namespace tmdb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kStrategySwitch:
      return "StrategySwitch";
  }
  return "Unknown";
}

const char* GuardTripPhrase(StatusCode code) {
  switch (code) {
    case StatusCode::kCancelled:
      return "query cancelled";
    case StatusCode::kDeadlineExceeded:
      return "query deadline exceeded";
    case StatusCode::kResourceExhausted:
      return "query resource budget exhausted";
    default:
      return nullptr;
  }
}

std::string FormatStatusForUser(const Status& status) {
  if (status.ok()) return "OK";
  const char* phrase = GuardTripPhrase(status.code());
  if (phrase == nullptr) return status.ToString();
  std::string out = StatusCodeName(status.code());
  out += ": ";
  out += phrase;
  const std::string& detail = status.message();
  if (!detail.empty() && detail != phrase) {
    out += " (";
    out += detail;
    out += ")";
  }
  return out;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code_, context + ": " + message_);
}

}  // namespace tmdb
