#ifndef TMDB_BASE_RANDOM_H_
#define TMDB_BASE_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "base/logging.h"

namespace tmdb {

/// Small deterministic PRNG (xorshift128+). Workload generators and property
/// tests use this instead of std::mt19937 so that generated databases are
/// identical across platforms and standard-library versions — a failing seed
/// reported by CI reproduces exactly on a laptop.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 seeding: avoids the all-zero state and decorrelates nearby
    // seeds.
    uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
    s0_ = Mix(&z);
    s1_ = Mix(&z);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) {
    TMDB_CHECK(n > 0);
    return Next() % n;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    TMDB_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Mix(uint64_t* z) {
    uint64_t x = (*z += 0x9e3779b97f4a7c15ULL);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

/// Zipf-distributed sampler over [0, n): P(k) ∝ 1 / (k+1)^s. Used by the
/// skew benchmarks — grouped joins (nest join, ν) are sensitive to key
/// skew because group sizes follow the key distribution. s = 0 degrades to
/// uniform. Precomputes the CDF (laptop-scale n), samples by binary
/// search; deterministic given the underlying Random.
class Zipf {
 public:
  Zipf(size_t n, double s) : cdf_(n) {
    TMDB_CHECK(n > 0);
    double total = 0.0;
    for (size_t k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_[k] = total;
    }
    for (size_t k = 0; k < n; ++k) cdf_[k] /= total;
  }

  /// Draws one sample using `rng`.
  uint64_t Next(Random* rng) const {
    const double u = rng->NextDouble();
    // First index whose cumulative probability reaches u.
    size_t lo = 0;
    size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace tmdb

#endif  // TMDB_BASE_RANDOM_H_
