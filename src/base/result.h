#ifndef TMDB_BASE_RESULT_H_
#define TMDB_BASE_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "base/status.h"

namespace tmdb {

/// Holds either a value of type T or a non-OK Status (Arrow-style). Fallible
/// value-producing functions return Result<T>; the value is accessed only
/// after checking ok().
///
/// Result is implicitly constructible from both T and Status so that
/// `return value;` and `return Status::TypeError(...)` both work.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit by design, like arrow::Result).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. Must not be OK: an OK status carries
  /// no value and would leave the Result unusable.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T>), propagating errors; on success binds the
/// value to `lhs`. `lhs` may include a declaration: TMDB_ASSIGN_OR_RETURN(auto
/// x, F());
#define TMDB_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  TMDB_ASSIGN_OR_RETURN_IMPL_(                                       \
      TMDB_RESULT_CONCAT_(_tmdb_result_, __LINE__), lhs, rexpr)

#define TMDB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define TMDB_RESULT_CONCAT_(a, b) TMDB_RESULT_CONCAT_2_(a, b)
#define TMDB_RESULT_CONCAT_2_(a, b) a##b

}  // namespace tmdb

#endif  // TMDB_BASE_RESULT_H_
