#include "expr/eval.h"

#include <utility>

#include "base/string_util.h"
#include "values/value_ops.h"

namespace tmdb {

void Environment::Bind(const std::string& name, Value value) {
  for (auto& [n, v] : bindings_) {
    if (n == name) {
      v = std::move(value);
      return;
    }
  }
  bindings_.emplace_back(name, std::move(value));
}

const Value* Environment::Lookup(const std::string& name) const {
  for (const Environment* env = this; env != nullptr; env = env->parent_) {
    for (const auto& [n, v] : env->bindings_) {
      if (n == name) return &v;
    }
  }
  return nullptr;
}

namespace {

Result<Value> EvalBinary(const Expr& e, const Environment& env,
                         SubplanEvaluator* subplans) {
  const BinaryOp op = e.binary_op();

  // Short-circuit connectives first.
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    TMDB_ASSIGN_OR_RETURN(Value l, EvalExpr(e.lhs(), env, subplans));
    if (!l.is_bool()) {
      return Status::TypeError(
          StrCat("boolean connective on non-boolean ", l.ToString()));
    }
    if (op == BinaryOp::kAnd && !l.AsBool()) return Value::Bool(false);
    if (op == BinaryOp::kOr && l.AsBool()) return Value::Bool(true);
    TMDB_ASSIGN_OR_RETURN(Value r, EvalExpr(e.rhs(), env, subplans));
    if (!r.is_bool()) {
      return Status::TypeError(
          StrCat("boolean connective on non-boolean ", r.ToString()));
    }
    return r;
  }

  TMDB_ASSIGN_OR_RETURN(Value l, EvalExpr(e.lhs(), env, subplans));
  TMDB_ASSIGN_OR_RETURN(Value r, EvalExpr(e.rhs(), env, subplans));
  switch (op) {
    case BinaryOp::kAdd:
      return NumericAdd(l, r);
    case BinaryOp::kSub:
      return NumericSub(l, r);
    case BinaryOp::kMul:
      return NumericMul(l, r);
    case BinaryOp::kDiv:
      return NumericDiv(l, r);
    case BinaryOp::kEq:
      return Value::Bool(l.Equals(r));
    case BinaryOp::kNe:
      return Value::Bool(!l.Equals(r));
    case BinaryOp::kLt:
      return OrderedCompare(CompareOpKind::kLt, l, r);
    case BinaryOp::kLe:
      return OrderedCompare(CompareOpKind::kLe, l, r);
    case BinaryOp::kGt:
      return OrderedCompare(CompareOpKind::kGt, l, r);
    case BinaryOp::kGe:
      return OrderedCompare(CompareOpKind::kGe, l, r);
    case BinaryOp::kIn:
      if (!r.is_collection()) {
        return Status::TypeError(
            StrCat("IN requires a collection, got ", r.ToString()));
      }
      return Value::Bool(r.Contains(l));
    case BinaryOp::kNotIn:
      if (!r.is_collection()) {
        return Status::TypeError(
            StrCat("NOT IN requires a collection, got ", r.ToString()));
      }
      return Value::Bool(!r.Contains(l));
    case BinaryOp::kUnion:
      return SetUnion(l, r);
    case BinaryOp::kIntersect:
      return SetIntersect(l, r);
    case BinaryOp::kDifference:
      return SetDifference(l, r);
    case BinaryOp::kSubsetEq:
      return SetSubsetEq(l, r);
    case BinaryOp::kSubset:
      return SetSubset(l, r);
    case BinaryOp::kSupersetEq:
      return SetSubsetEq(r, l);
    case BinaryOp::kSuperset:
      return SetSubset(r, l);
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      break;  // handled above
  }
  return Status::Internal("unhandled binary operator");
}

Result<Value> EvalQuantifier(const Expr& e, const Environment& env,
                             SubplanEvaluator* subplans) {
  TMDB_ASSIGN_OR_RETURN(Value coll,
                        EvalExpr(e.quant_collection(), env, subplans));
  if (!coll.is_collection()) {
    return Status::TypeError(
        StrCat("quantifier range is not a collection: ", coll.ToString()));
  }
  const bool exists = e.quant_kind() == QuantKind::kExists;
  Environment inner(&env);
  for (const Value& elem : coll.Elements()) {
    inner.Bind(e.quant_var(), elem);
    TMDB_ASSIGN_OR_RETURN(Value p, EvalExpr(e.quant_pred(), inner, subplans));
    if (!p.is_bool()) {
      return Status::TypeError(
          StrCat("quantifier body is not boolean: ", p.ToString()));
    }
    if (exists && p.AsBool()) return Value::Bool(true);
    if (!exists && !p.AsBool()) return Value::Bool(false);
  }
  return Value::Bool(!exists);
}

}  // namespace

Result<Value> EvalExpr(const Expr& expr, const Environment& env,
                       SubplanEvaluator* subplans) {
  switch (expr.expr_kind()) {
    case ExprKind::kLiteral:
      return expr.literal_value();
    case ExprKind::kVarRef: {
      const Value* v = env.Lookup(expr.var_name());
      if (v == nullptr) {
        return Status::NotFound(
            StrCat("unbound variable '", expr.var_name(), "'"));
      }
      return *v;
    }
    case ExprKind::kFieldAccess: {
      TMDB_ASSIGN_OR_RETURN(Value base,
                            EvalExpr(expr.field_base(), env, subplans));
      return base.Field(expr.field_name());
    }
    case ExprKind::kBinary:
      return EvalBinary(expr, env, subplans);
    case ExprKind::kUnary: {
      TMDB_ASSIGN_OR_RETURN(Value v, EvalExpr(expr.operand(), env, subplans));
      switch (expr.unary_op()) {
        case UnaryOp::kNot:
          if (!v.is_bool()) {
            return Status::TypeError(
                StrCat("NOT on non-boolean ", v.ToString()));
          }
          return Value::Bool(!v.AsBool());
        case UnaryOp::kNeg:
          return NumericNeg(v);
        case UnaryOp::kIsNull:
          return Value::Bool(v.is_null());
        case UnaryOp::kUnnest:
          return UnnestSetOfSets(v);
      }
      return Status::Internal("unhandled unary operator");
    }
    case ExprKind::kQuantifier:
      return EvalQuantifier(expr, env, subplans);
    case ExprKind::kAggregate: {
      TMDB_ASSIGN_OR_RETURN(Value coll, EvalExpr(expr.agg_arg(), env, subplans));
      switch (expr.agg_func()) {
        case AggFunc::kCount:
          return AggCount(coll);
        case AggFunc::kSum:
          return AggSum(coll);
        case AggFunc::kAvg:
          return AggAvg(coll);
        case AggFunc::kMin:
          return AggMin(coll);
        case AggFunc::kMax:
          return AggMax(coll);
      }
      return Status::Internal("unhandled aggregate function");
    }
    case ExprKind::kTupleCtor: {
      std::vector<Value> values;
      values.reserve(expr.ctor_elements().size());
      for (const Expr& c : expr.ctor_elements()) {
        TMDB_ASSIGN_OR_RETURN(Value v, EvalExpr(c, env, subplans));
        values.push_back(std::move(v));
      }
      return Value::Tuple(expr.ctor_names(), std::move(values));
    }
    case ExprKind::kSetCtor: {
      std::vector<Value> values;
      values.reserve(expr.ctor_elements().size());
      for (const Expr& c : expr.ctor_elements()) {
        TMDB_ASSIGN_OR_RETURN(Value v, EvalExpr(c, env, subplans));
        values.push_back(std::move(v));
      }
      return Value::Set(std::move(values));
    }
    case ExprKind::kSubplan: {
      if (subplans == nullptr) {
        return Status::Unsupported(
            "subplan expression reached an evaluator without subplan "
            "support");
      }
      return subplans->EvaluateSubplan(expr.subplan(), env);
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> EvalPredicate(const Expr& expr, const Environment& env,
                           SubplanEvaluator* subplans) {
  TMDB_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, env, subplans));
  if (!v.is_bool()) {
    return Status::TypeError(
        StrCat("predicate did not evaluate to a boolean: ", v.ToString()));
  }
  return v.AsBool();
}

}  // namespace tmdb
