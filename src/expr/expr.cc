#include "expr/expr.h"

#include <utility>

#include "base/logging.h"
#include "base/string_util.h"

namespace tmdb {

namespace internal_expr {
struct ExprNode {
  ExprKind kind;
  Type type;

  // kLiteral
  Value literal;
  // kVarRef / kFieldAccess field / kQuantifier var
  std::string name;
  // kBinary / kUnary ops
  BinaryOp binary_op = BinaryOp::kEq;
  UnaryOp unary_op = UnaryOp::kNot;
  // kQuantifier
  QuantKind quant_kind = QuantKind::kExists;
  // kAggregate
  AggFunc agg_func = AggFunc::kCount;
  // children: meaning depends on kind —
  //   kFieldAccess: [base]
  //   kBinary: [lhs, rhs]
  //   kUnary / kAggregate: [operand]
  //   kQuantifier: [collection, pred]
  //   kTupleCtor / kSetCtor: elements
  std::vector<Expr> children;
  // kTupleCtor
  std::vector<std::string> ctor_names;
  // kSubplan
  std::shared_ptr<const SubplanBase> subplan;

  ExprNode(ExprKind k, Type t) : kind(k), type(std::move(t)) {}
};
}  // namespace internal_expr

using internal_expr::ExprNode;

namespace {

Status BinaryTypeError(BinaryOp op, const Type& l, const Type& r) {
  return Status::TypeError(StrCat("operator ", BinaryOpSymbol(op),
                                  " not applicable to ", l.ToString(), " and ",
                                  r.ToString()));
}

}  // namespace

Expr::Expr() : node_(nullptr) { *this = Literal(Value::Bool(true)); }

Expr Expr::Literal(Value v) {
  Type t = TypeOf(v);
  auto node = std::make_shared<ExprNode>(ExprKind::kLiteral, std::move(t));
  node->literal = std::move(v);
  return Expr(std::move(node));
}

Expr Expr::Var(std::string name, Type type) {
  auto node = std::make_shared<ExprNode>(ExprKind::kVarRef, std::move(type));
  node->name = std::move(name);
  return Expr(std::move(node));
}

Result<Expr> Expr::Field(Expr base, std::string field) {
  // Projection of a tuple constructor collapses to the named element —
  // keeps rewritten plans (which rebind variables to constructed tuples)
  // free of indirection.
  if (base.is_tuple_ctor()) {
    for (size_t i = 0; i < base.ctor_names().size(); ++i) {
      if (base.ctor_names()[i] == field) return base.ctor_elements()[i];
    }
  }
  TMDB_ASSIGN_OR_RETURN(Type t, base.type().FieldType(field));
  auto node = std::make_shared<ExprNode>(ExprKind::kFieldAccess, std::move(t));
  node->name = std::move(field);
  node->children.push_back(std::move(base));
  return Expr(std::move(node));
}

Result<Expr> Expr::Binary(BinaryOp op, Expr lhs, Expr rhs) {
  const Type& l = lhs.type();
  const Type& r = rhs.type();
  Type out;
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv: {
      const bool l_num = l.is_numeric() || l.is_any();
      const bool r_num = r.is_numeric() || r.is_any();
      if (!l_num || !r_num) return BinaryTypeError(op, l, r);
      out = (l.is_int() && r.is_int()) ? Type::Int() : Type::Real();
      if (l.is_any() || r.is_any()) out = Type::Any();
      break;
    }
    case BinaryOp::kEq:
    case BinaryOp::kNe: {
      if (!l.CoercesTo(r) && !r.CoercesTo(l)) return BinaryTypeError(op, l, r);
      out = Type::Bool();
      break;
    }
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      const bool numeric = (l.is_numeric() || l.is_any()) &&
                           (r.is_numeric() || r.is_any());
      const bool stringy =
          (l.is_string() || l.is_any()) && (r.is_string() || r.is_any());
      if (!numeric && !stringy) return BinaryTypeError(op, l, r);
      out = Type::Bool();
      break;
    }
    case BinaryOp::kAnd:
    case BinaryOp::kOr: {
      if ((!l.is_bool() && !l.is_any()) || (!r.is_bool() && !r.is_any())) {
        return BinaryTypeError(op, l, r);
      }
      out = Type::Bool();
      break;
    }
    case BinaryOp::kIn:
    case BinaryOp::kNotIn: {
      if (!r.is_collection() && !r.is_any()) return BinaryTypeError(op, l, r);
      if (r.is_collection() && !l.CoercesTo(r.element()) &&
          !r.element().CoercesTo(l)) {
        return BinaryTypeError(op, l, r);
      }
      out = Type::Bool();
      break;
    }
    case BinaryOp::kUnion:
    case BinaryOp::kIntersect:
    case BinaryOp::kDifference: {
      if ((!l.is_set() && !l.is_any()) || (!r.is_set() && !r.is_any())) {
        return BinaryTypeError(op, l, r);
      }
      if (l.is_set() && r.is_set()) {
        TMDB_ASSIGN_OR_RETURN(Type elem,
                              UnifyTypes(l.element(), r.element()));
        out = Type::Set(std::move(elem));
      } else {
        out = l.is_set() ? l : r;
      }
      break;
    }
    case BinaryOp::kSubsetEq:
    case BinaryOp::kSubset:
    case BinaryOp::kSupersetEq:
    case BinaryOp::kSuperset: {
      if ((!l.is_set() && !l.is_any()) || (!r.is_set() && !r.is_any())) {
        return BinaryTypeError(op, l, r);
      }
      if (l.is_set() && r.is_set()) {
        // Unification failure means the sets can never share elements; the
        // comparison is still well-defined but suspicious — report it.
        auto unified = UnifyTypes(l.element(), r.element());
        if (!unified.ok()) return BinaryTypeError(op, l, r);
      }
      out = Type::Bool();
      break;
    }
  }
  auto node = std::make_shared<ExprNode>(ExprKind::kBinary, std::move(out));
  node->binary_op = op;
  node->children.push_back(std::move(lhs));
  node->children.push_back(std::move(rhs));
  return Expr(std::move(node));
}

Result<Expr> Expr::Unary(UnaryOp op, Expr e) {
  Type out;
  switch (op) {
    case UnaryOp::kNot:
      if (!e.type().is_bool() && !e.type().is_any()) {
        return Status::TypeError(
            StrCat("NOT requires a boolean operand, got ",
                   e.type().ToString()));
      }
      out = Type::Bool();
      break;
    case UnaryOp::kNeg:
      if (!e.type().is_numeric() && !e.type().is_any()) {
        return Status::TypeError(
            StrCat("negation requires a numeric operand, got ",
                   e.type().ToString()));
      }
      out = e.type();
      break;
    case UnaryOp::kIsNull:
      out = Type::Bool();
      break;
    case UnaryOp::kUnnest:
      if (e.type().is_any()) {
        out = Type::Any();
      } else if (e.type().is_set() && (e.type().element().is_set() ||
                                       e.type().element().is_any())) {
        out = e.type().element().is_any() ? Type::Set(Type::Any())
                                          : e.type().element();
      } else {
        return Status::TypeError(
            StrCat("UNNEST requires a set of sets, got ",
                   e.type().ToString()));
      }
      break;
  }
  auto node = std::make_shared<ExprNode>(ExprKind::kUnary, std::move(out));
  node->unary_op = op;
  node->children.push_back(std::move(e));
  return Expr(std::move(node));
}

Result<Expr> Expr::Quantifier(QuantKind kind, std::string var, Expr collection,
                              Expr pred) {
  if (!collection.type().is_collection() && !collection.type().is_any()) {
    return Status::TypeError(
        StrCat("quantifier range must be a set or list, got ",
               collection.type().ToString()));
  }
  if (!pred.type().is_bool() && !pred.type().is_any()) {
    return Status::TypeError(
        StrCat("quantifier body must be boolean, got ",
               pred.type().ToString()));
  }
  auto node = std::make_shared<ExprNode>(ExprKind::kQuantifier, Type::Bool());
  node->quant_kind = kind;
  node->name = std::move(var);
  node->children.push_back(std::move(collection));
  node->children.push_back(std::move(pred));
  return Expr(std::move(node));
}

Result<Expr> Expr::Aggregate(AggFunc func, Expr collection) {
  const Type& t = collection.type();
  if (!t.is_collection() && !t.is_any()) {
    return Status::TypeError(StrCat(AggFuncName(func),
                                    " requires a set or list argument, got ",
                                    t.ToString()));
  }
  Type elem = t.is_collection() ? t.element() : Type::Any();
  Type out;
  switch (func) {
    case AggFunc::kCount:
      out = Type::Int();
      break;
    case AggFunc::kSum:
      if (!elem.is_numeric() && !elem.is_any()) {
        return Status::TypeError(
            StrCat("sum requires numeric elements, got ", elem.ToString()));
      }
      out = elem.is_real() ? Type::Real() : Type::Int();
      break;
    case AggFunc::kAvg:
      if (!elem.is_numeric() && !elem.is_any()) {
        return Status::TypeError(
            StrCat("avg requires numeric elements, got ", elem.ToString()));
      }
      out = Type::Real();
      break;
    case AggFunc::kMin:
    case AggFunc::kMax:
      if (!elem.is_numeric() && !elem.is_string() && !elem.is_any()) {
        return Status::TypeError(StrCat(AggFuncName(func),
                                        " requires numeric or string "
                                        "elements, got ",
                                        elem.ToString()));
      }
      out = elem;
      break;
  }
  auto node = std::make_shared<ExprNode>(ExprKind::kAggregate, std::move(out));
  node->agg_func = func;
  node->children.push_back(std::move(collection));
  return Expr(std::move(node));
}

Result<Expr> Expr::MakeTuple(std::vector<std::string> names,
                             std::vector<Expr> elements) {
  if (names.size() != elements.size()) {
    return Status::InvalidArgument(
        "tuple constructor: names/elements size mismatch");
  }
  std::vector<::tmdb::Field> fields;
  fields.reserve(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (names[i] == names[j]) {
        return Status::TypeError(
            StrCat("duplicate attribute '", names[i],
                   "' in tuple constructor"));
      }
    }
    fields.push_back({names[i], elements[i].type()});
  }
  auto node = std::make_shared<ExprNode>(ExprKind::kTupleCtor,
                                         Type::Tuple(std::move(fields)));
  node->ctor_names = std::move(names);
  node->children = std::move(elements);
  return Expr(std::move(node));
}

Result<Expr> Expr::MakeSet(std::vector<Expr> elements, Type element_type) {
  Type elem = std::move(element_type);
  for (const Expr& e : elements) {
    TMDB_ASSIGN_OR_RETURN(elem, UnifyTypes(elem, e.type()));
  }
  auto node = std::make_shared<ExprNode>(ExprKind::kSetCtor,
                                         Type::Set(std::move(elem)));
  node->children = std::move(elements);
  return Expr(std::move(node));
}

Expr Expr::Subplan(std::shared_ptr<const SubplanBase> plan, Type type) {
  TMDB_CHECK(plan != nullptr);
  auto node = std::make_shared<ExprNode>(ExprKind::kSubplan, std::move(type));
  node->subplan = std::move(plan);
  return Expr(std::move(node));
}

Expr Expr::Must(Result<Expr> r) {
  TMDB_CHECK_MSG(r.ok(), r.status().ToString());
  return std::move(r).value();
}

Expr Expr::And(Expr a, Expr b) {
  if (a.is_literal() && a.literal_value().is_bool()) {
    return a.literal_value().AsBool() ? b : a;
  }
  if (b.is_literal() && b.literal_value().is_bool()) {
    return b.literal_value().AsBool() ? a : b;
  }
  return Must(Binary(BinaryOp::kAnd, std::move(a), std::move(b)));
}

Expr Expr::AndAll(std::vector<Expr> conjuncts) {
  Expr acc = True();
  for (Expr& c : conjuncts) {
    acc = And(std::move(acc), std::move(c));
  }
  return acc;
}

ExprKind Expr::expr_kind() const { return node_->kind; }
const Type& Expr::type() const { return node_->type; }

const Value& Expr::literal_value() const {
  TMDB_CHECK(is_literal());
  return node_->literal;
}

const std::string& Expr::var_name() const {
  TMDB_CHECK(is_var());
  return node_->name;
}

const Expr& Expr::field_base() const {
  TMDB_CHECK(is_field_access());
  return node_->children[0];
}

const std::string& Expr::field_name() const {
  TMDB_CHECK(is_field_access());
  return node_->name;
}

BinaryOp Expr::binary_op() const {
  TMDB_CHECK(is_binary());
  return node_->binary_op;
}

const Expr& Expr::lhs() const {
  TMDB_CHECK(is_binary());
  return node_->children[0];
}

const Expr& Expr::rhs() const {
  TMDB_CHECK(is_binary());
  return node_->children[1];
}

UnaryOp Expr::unary_op() const {
  TMDB_CHECK(is_unary());
  return node_->unary_op;
}

const Expr& Expr::operand() const {
  TMDB_CHECK(is_unary());
  return node_->children[0];
}

QuantKind Expr::quant_kind() const {
  TMDB_CHECK(is_quantifier());
  return node_->quant_kind;
}

const std::string& Expr::quant_var() const {
  TMDB_CHECK(is_quantifier());
  return node_->name;
}

const Expr& Expr::quant_collection() const {
  TMDB_CHECK(is_quantifier());
  return node_->children[0];
}

const Expr& Expr::quant_pred() const {
  TMDB_CHECK(is_quantifier());
  return node_->children[1];
}

AggFunc Expr::agg_func() const {
  TMDB_CHECK(is_aggregate());
  return node_->agg_func;
}

const Expr& Expr::agg_arg() const {
  TMDB_CHECK(is_aggregate());
  return node_->children[0];
}

const std::vector<std::string>& Expr::ctor_names() const {
  TMDB_CHECK(is_tuple_ctor());
  return node_->ctor_names;
}

const std::vector<Expr>& Expr::ctor_elements() const {
  TMDB_CHECK(is_tuple_ctor() || is_set_ctor());
  return node_->children;
}

const SubplanBase& Expr::subplan() const {
  TMDB_CHECK(is_subplan());
  return *node_->subplan;
}

std::shared_ptr<const SubplanBase> Expr::subplan_ptr() const {
  TMDB_CHECK(is_subplan());
  return node_->subplan;
}

bool Expr::Equals(const Expr& other) const {
  if (node_ == other.node_) return true;
  if (expr_kind() != other.expr_kind()) return false;
  if (!type().Equals(other.type())) return false;
  const ExprNode& a = *node_;
  const ExprNode& b = *other.node_;
  switch (expr_kind()) {
    case ExprKind::kLiteral:
      return a.literal.Equals(b.literal);
    case ExprKind::kVarRef:
      return a.name == b.name;
    case ExprKind::kFieldAccess:
      if (a.name != b.name) return false;
      break;
    case ExprKind::kBinary:
      if (a.binary_op != b.binary_op) return false;
      break;
    case ExprKind::kUnary:
      if (a.unary_op != b.unary_op) return false;
      break;
    case ExprKind::kQuantifier:
      if (a.quant_kind != b.quant_kind || a.name != b.name) return false;
      break;
    case ExprKind::kAggregate:
      if (a.agg_func != b.agg_func) return false;
      break;
    case ExprKind::kTupleCtor:
      if (a.ctor_names != b.ctor_names) return false;
      break;
    case ExprKind::kSetCtor:
      break;
    case ExprKind::kSubplan:
      return a.subplan == b.subplan;  // identity: plans are not compared
  }
  if (a.children.size() != b.children.size()) return false;
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!a.children[i].Equals(b.children[i])) return false;
  }
  return true;
}

namespace {

void CollectFreeVars(const Expr& e, std::set<std::string>* bound,
                     std::set<std::string>* out) {
  switch (e.expr_kind()) {
    case ExprKind::kLiteral:
      return;
    case ExprKind::kVarRef:
      if (bound->count(e.var_name()) == 0) out->insert(e.var_name());
      return;
    case ExprKind::kFieldAccess:
      CollectFreeVars(e.field_base(), bound, out);
      return;
    case ExprKind::kBinary:
      CollectFreeVars(e.lhs(), bound, out);
      CollectFreeVars(e.rhs(), bound, out);
      return;
    case ExprKind::kUnary:
      CollectFreeVars(e.operand(), bound, out);
      return;
    case ExprKind::kQuantifier: {
      CollectFreeVars(e.quant_collection(), bound, out);
      const bool was_bound = bound->count(e.quant_var()) > 0;
      bound->insert(e.quant_var());
      CollectFreeVars(e.quant_pred(), bound, out);
      if (!was_bound) bound->erase(e.quant_var());
      return;
    }
    case ExprKind::kAggregate:
      CollectFreeVars(e.agg_arg(), bound, out);
      return;
    case ExprKind::kTupleCtor:
    case ExprKind::kSetCtor:
      for (const Expr& c : e.ctor_elements()) {
        CollectFreeVars(c, bound, out);
      }
      return;
    case ExprKind::kSubplan:
      for (const std::string& v : e.subplan().free_vars()) {
        if (bound->count(v) == 0) out->insert(v);
      }
      return;
  }
}

}  // namespace

std::set<std::string> Expr::FreeVars() const {
  std::set<std::string> bound;
  std::set<std::string> out;
  CollectFreeVars(*this, &bound, &out);
  return out;
}

bool Expr::References(const std::string& name) const {
  return FreeVars().count(name) > 0;
}

Result<Expr> Expr::Substitute(const std::string& name,
                              const Expr& replacement) const {
  switch (expr_kind()) {
    case ExprKind::kLiteral:
      return *this;
    case ExprKind::kVarRef:
      return var_name() == name ? replacement : *this;
    case ExprKind::kFieldAccess: {
      TMDB_ASSIGN_OR_RETURN(Expr base, field_base().Substitute(name, replacement));
      return Field(std::move(base), field_name());
    }
    case ExprKind::kBinary: {
      TMDB_ASSIGN_OR_RETURN(Expr l, lhs().Substitute(name, replacement));
      TMDB_ASSIGN_OR_RETURN(Expr r, rhs().Substitute(name, replacement));
      return Binary(binary_op(), std::move(l), std::move(r));
    }
    case ExprKind::kUnary: {
      TMDB_ASSIGN_OR_RETURN(Expr e, operand().Substitute(name, replacement));
      return Unary(unary_op(), std::move(e));
    }
    case ExprKind::kQuantifier: {
      TMDB_ASSIGN_OR_RETURN(Expr coll,
                            quant_collection().Substitute(name, replacement));
      if (quant_var() == name) {
        // Inner binder shadows the name: body untouched.
        return Quantifier(quant_kind(), quant_var(), std::move(coll),
                          quant_pred());
      }
      TMDB_ASSIGN_OR_RETURN(Expr pred,
                            quant_pred().Substitute(name, replacement));
      return Quantifier(quant_kind(), quant_var(), std::move(coll),
                        std::move(pred));
    }
    case ExprKind::kAggregate: {
      TMDB_ASSIGN_OR_RETURN(Expr arg, agg_arg().Substitute(name, replacement));
      return Aggregate(agg_func(), std::move(arg));
    }
    case ExprKind::kTupleCtor: {
      std::vector<Expr> elems;
      elems.reserve(ctor_elements().size());
      for (const Expr& c : ctor_elements()) {
        TMDB_ASSIGN_OR_RETURN(Expr e, c.Substitute(name, replacement));
        elems.push_back(std::move(e));
      }
      return MakeTuple(ctor_names(), std::move(elems));
    }
    case ExprKind::kSetCtor: {
      std::vector<Expr> elems;
      elems.reserve(ctor_elements().size());
      for (const Expr& c : ctor_elements()) {
        TMDB_ASSIGN_OR_RETURN(Expr e, c.Substitute(name, replacement));
        elems.push_back(std::move(e));
      }
      Type elem_type = type().element();
      return MakeSet(std::move(elems), std::move(elem_type));
    }
    case ExprKind::kSubplan:
      if (subplan().free_vars().count(name) > 0) {
        return Status::Unsupported(
            StrCat("cannot substitute variable '", name,
                   "' referenced inside a subplan"));
      }
      return *this;
  }
  return Status::Internal("unhandled expression kind in Substitute");
}

std::string Expr::ToString() const {
  switch (expr_kind()) {
    case ExprKind::kLiteral:
      return literal_value().ToString();
    case ExprKind::kVarRef:
      return var_name();
    case ExprKind::kFieldAccess:
      return field_base().ToString() + "." + field_name();
    case ExprKind::kBinary:
      return StrCat("(", lhs().ToString(), " ", BinaryOpSymbol(binary_op()),
                    " ", rhs().ToString(), ")");
    case ExprKind::kUnary:
      switch (unary_op()) {
        case UnaryOp::kNot:
          return "NOT " + operand().ToString();
        case UnaryOp::kNeg:
          return "-" + operand().ToString();
        case UnaryOp::kIsNull:
          return operand().ToString() + " IS NULL";
        case UnaryOp::kUnnest:
          return "UNNEST(" + operand().ToString() + ")";
      }
      return "?";
    case ExprKind::kQuantifier:
      return StrCat(quant_kind() == QuantKind::kExists ? "EXISTS " : "FORALL ",
                    quant_var(), " IN ", quant_collection().ToString(), " (",
                    quant_pred().ToString(), ")");
    case ExprKind::kAggregate:
      return StrCat(AggFuncName(agg_func()), "(", agg_arg().ToString(), ")");
    case ExprKind::kTupleCtor: {
      std::vector<std::string> parts;
      parts.reserve(ctor_names().size());
      for (size_t i = 0; i < ctor_names().size(); ++i) {
        parts.push_back(ctor_names()[i] + " = " +
                        ctor_elements()[i].ToString());
      }
      return "<" + Join(parts, ", ") + ">";
    }
    case ExprKind::kSetCtor: {
      std::vector<std::string> parts;
      parts.reserve(ctor_elements().size());
      for (const Expr& e : ctor_elements()) {
        parts.push_back(e.ToString());
      }
      return "{" + Join(parts, ", ") + "}";
    }
    case ExprKind::kSubplan:
      return subplan().ToString();
  }
  return "?";
}

std::string BinaryOpSymbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kIn:
      return "IN";
    case BinaryOp::kNotIn:
      return "NOT IN";
    case BinaryOp::kUnion:
      return "UNION";
    case BinaryOp::kIntersect:
      return "INTERSECT";
    case BinaryOp::kDifference:
      return "DIFF";
    case BinaryOp::kSubsetEq:
      return "SUBSETEQ";
    case BinaryOp::kSubset:
      return "SUBSET";
    case BinaryOp::kSupersetEq:
      return "SUPSETEQ";
    case BinaryOp::kSuperset:
      return "SUPSET";
  }
  return "?";
}

std::string AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}

}  // namespace tmdb
