#ifndef TMDB_EXPR_EXPR_H_
#define TMDB_EXPR_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "base/result.h"
#include "types/type.h"
#include "values/value.h"

namespace tmdb {

class Expr;

namespace internal_expr {
struct ExprNode;
}  // namespace internal_expr

/// Binary operators of the typed expression IR. The set mirrors what the
/// paper's predicates between query blocks need: arithmetic, (in)equality,
/// ordering, boolean connectives, and the set operators whose rewritability
/// Table 2 classifies.
enum class BinaryOp {
  // arithmetic (numeric × numeric)
  kAdd,
  kSub,
  kMul,
  kDiv,
  // equality (any × any, structural)
  kEq,
  kNe,
  // ordering (numeric or string)
  kLt,
  kLe,
  kGt,
  kGe,
  // boolean connectives
  kAnd,
  kOr,
  // membership (elem × set/list)
  kIn,
  kNotIn,
  // set algebra (set × set)
  kUnion,
  kIntersect,
  kDifference,
  // set comparisons (set × set)
  kSubsetEq,    // a ⊆ b
  kSubset,      // a ⊂ b
  kSupersetEq,  // a ⊇ b
  kSuperset,    // a ⊃ b
};

enum class UnaryOp {
  kNot,     // boolean negation
  kNeg,     // numeric negation
  kIsNull,  // true iff the operand is NULL (outerjoin baseline only)
  kUnnest,  // UNNEST(S) = ∪{s | s ∈ S} — collapses a set of sets (Section 5)
};

/// Aggregate functions that may occur between query blocks.
enum class AggFunc { kCount, kSum, kAvg, kMin, kMax };

/// Quantifier kinds. FORALL x ∈ S (p) and EXISTS x ∈ S (p); the rewriter
/// normalises FORALL into ¬EXISTS¬ per Theorem 1.
enum class QuantKind { kExists, kForAll };

enum class ExprKind {
  kLiteral,
  kVarRef,
  kFieldAccess,
  kBinary,
  kUnary,
  kQuantifier,
  kAggregate,
  kTupleCtor,
  kSetCtor,
  kSubplan,
};

/// Interface behind which a correlated subquery plan hides inside an
/// expression. Defined here (not in algebra/) to keep the dependency
/// one-way: algebra implements this with a LogicalOp inside, and the
/// executor downcasts. A subplan expression is exactly the paper's "nested
/// SFW in the predicate" before unnesting: evaluating it runs the inner
/// block once per binding of its free variables — nested-loop semantics.
class SubplanBase {
 public:
  virtual ~SubplanBase() = default;
  /// Single-line rendering for plan/expression printers.
  virtual std::string ToString() const = 0;
  /// The free (correlation) variables of the inner block, e.g. {"x"} for
  /// `SELECT y.a FROM Y y WHERE x.b = y.b`.
  virtual const std::set<std::string>& free_vars() const = 0;
};

/// An immutable, typed expression. Cheap to copy (shared nodes); rewrites
/// build new trees that share unchanged subtrees. Every node knows its
/// result Type, computed bottom-up by the checked factories, which return a
/// TypeError Status on ill-typed construction.
///
/// Variables are referenced by name; scoping is positional (quantifiers and
/// query blocks bind names). Substitute() is capture-avoiding with respect
/// to quantifier-bound names.
class Expr {
 public:
  /// Constructs the literal `true`; prefer the factories.
  Expr();

  // -- Checked factories ----------------------------------------------------

  static Expr Literal(Value v);
  /// Variable reference with its declared type (sema supplies it).
  static Expr Var(std::string name, Type type);
  /// base.field — base must be a tuple type with that field.
  static Result<Expr> Field(Expr base, std::string field);
  static Result<Expr> Binary(BinaryOp op, Expr lhs, Expr rhs);
  static Result<Expr> Unary(UnaryOp op, Expr operand);
  /// QUANTIFIER var ∈ collection (pred). `pred` may reference `var`.
  static Result<Expr> Quantifier(QuantKind kind, std::string var,
                                 Expr collection, Expr pred);
  static Result<Expr> Aggregate(AggFunc func, Expr collection);
  static Result<Expr> MakeTuple(std::vector<std::string> names,
                                std::vector<Expr> elements);
  /// Set constructor {e1, ..., en}; n may be 0 (empty set, element type ANY
  /// unless `element_type` is supplied).
  static Result<Expr> MakeSet(std::vector<Expr> elements,
                              Type element_type = Type::Any());
  /// Wraps a correlated subquery plan. `type` is the subquery result type
  /// (always a set type for SFW).
  static Expr Subplan(std::shared_ptr<const SubplanBase> plan, Type type);

  // -- Convenience builders for known-well-typed trees ----------------------

  /// Unwraps a Result<Expr>, aborting on error. For engine-internal
  /// construction where a type error is a bug, and for tests.
  static Expr Must(Result<Expr> r);

  static Expr True() { return Literal(Value::Bool(true)); }
  static Expr False() { return Literal(Value::Bool(false)); }
  /// ¬e (checked precondition: e is boolean).
  static Expr Not(Expr e) { return Must(Unary(UnaryOp::kNot, std::move(e))); }
  /// a ∧ b, with the simplifications true∧b = b etc. applied.
  static Expr And(Expr a, Expr b);
  /// Conjunction of a list; True() for the empty list.
  static Expr AndAll(std::vector<Expr> conjuncts);

  // -- Accessors -------------------------------------------------------------

  ExprKind expr_kind() const;
  const Type& type() const;

  bool is_literal() const { return expr_kind() == ExprKind::kLiteral; }
  bool is_var() const { return expr_kind() == ExprKind::kVarRef; }
  bool is_field_access() const {
    return expr_kind() == ExprKind::kFieldAccess;
  }
  bool is_binary() const { return expr_kind() == ExprKind::kBinary; }
  bool is_unary() const { return expr_kind() == ExprKind::kUnary; }
  bool is_quantifier() const { return expr_kind() == ExprKind::kQuantifier; }
  bool is_aggregate() const { return expr_kind() == ExprKind::kAggregate; }
  bool is_tuple_ctor() const { return expr_kind() == ExprKind::kTupleCtor; }
  bool is_set_ctor() const { return expr_kind() == ExprKind::kSetCtor; }
  bool is_subplan() const { return expr_kind() == ExprKind::kSubplan; }

  /// kLiteral payload.
  const Value& literal_value() const;
  /// kVarRef payload.
  const std::string& var_name() const;
  /// kFieldAccess payload.
  const Expr& field_base() const;
  const std::string& field_name() const;
  /// kBinary payload.
  BinaryOp binary_op() const;
  const Expr& lhs() const;
  const Expr& rhs() const;
  /// kUnary payload.
  UnaryOp unary_op() const;
  const Expr& operand() const;
  /// kQuantifier payload.
  QuantKind quant_kind() const;
  const std::string& quant_var() const;
  const Expr& quant_collection() const;
  const Expr& quant_pred() const;
  /// kAggregate payload.
  AggFunc agg_func() const;
  const Expr& agg_arg() const;
  /// kTupleCtor payload.
  const std::vector<std::string>& ctor_names() const;
  /// kTupleCtor / kSetCtor payload.
  const std::vector<Expr>& ctor_elements() const;
  /// kSubplan payload.
  const SubplanBase& subplan() const;
  std::shared_ptr<const SubplanBase> subplan_ptr() const;

  // -- Analysis & rewriting ---------------------------------------------------

  /// Structural equality (types included).
  bool Equals(const Expr& other) const;

  /// Names of free variables (unbound by any enclosing quantifier in this
  /// tree). Subplan nodes report the free variables recorded at creation.
  std::set<std::string> FreeVars() const;

  /// True if `name` occurs free in this expression.
  bool References(const std::string& name) const;

  /// Replaces free occurrences of variable `name` with `replacement`
  /// (capture-avoiding: occurrences bound by an inner quantifier with the
  /// same name are untouched). Substitution does not descend into subplans;
  /// expressions containing subplans that reference `name` return an error.
  Result<Expr> Substitute(const std::string& name,
                          const Expr& replacement) const;

  /// Infix rendering, e.g. `(x.a ⊆ z) ∧ EXISTS v ∈ z (v = x.b)`.
  std::string ToString() const;

 private:
  using Node = internal_expr::ExprNode;
  explicit Expr(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

/// Human-readable operator symbol, e.g. "⊆" for kSubsetEq.
std::string BinaryOpSymbol(BinaryOp op);
std::string AggFuncName(AggFunc func);

}  // namespace tmdb

#endif  // TMDB_EXPR_EXPR_H_
