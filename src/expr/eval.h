#ifndef TMDB_EXPR_EVAL_H_
#define TMDB_EXPR_EVAL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/result.h"
#include "expr/expr.h"
#include "values/value.h"

namespace tmdb {

/// A chain of variable bindings. Each query block / quantifier pushes a new
/// frame; lookup walks outward, so inner bindings shadow outer ones — the
/// scoping rule of the SFW language.
class Environment {
 public:
  Environment() : parent_(nullptr) {}
  explicit Environment(const Environment* parent) : parent_(parent) {}

  // Environments reference their parent by pointer; copying would be
  // error-prone, moving is fine.
  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;
  Environment(Environment&&) = default;
  Environment& operator=(Environment&&) = default;

  /// Binds (or rebinds, within this frame) `name`.
  void Bind(const std::string& name, Value value);

  /// Innermost binding of `name`, or nullptr.
  const Value* Lookup(const std::string& name) const;

 private:
  const Environment* parent_;
  // Frames are tiny (one or two variables); linear scan beats a map.
  std::vector<std::pair<std::string, Value>> bindings_;
};

struct ExecStats;

/// Callback used to evaluate kSubplan expressions — the naive nested-loop
/// path. Implemented by the executor; pure-expression users pass nullptr
/// and get an Unsupported error if a subplan is reached.
class SubplanEvaluator {
 public:
  virtual ~SubplanEvaluator() = default;
  virtual Result<Value> EvaluateSubplan(const SubplanBase& subplan,
                                        const Environment& env) = 0;

  /// Creates an evaluator another thread may use concurrently with this
  /// one, writing its work counters to `stats` (owned by the caller, summed
  /// back deterministically). Returns nullptr when the implementation
  /// cannot fork — callers then share `this`, which is only safe when it is
  /// thread-safe or the execution is serial.
  virtual std::unique_ptr<SubplanEvaluator> Fork(ExecStats* stats) {
    (void)stats;
    return nullptr;
  }
};

/// Evaluates a typed expression under `env`. AND/OR short-circuit;
/// quantifiers iterate the collection with the bound variable pushed in a
/// child frame. Returns TypeError/InvalidArgument for data-dependent
/// failures (e.g. division by zero).
Result<Value> EvalExpr(const Expr& expr, const Environment& env,
                       SubplanEvaluator* subplans = nullptr);

/// Evaluates a boolean expression, requiring a kBool result.
Result<bool> EvalPredicate(const Expr& expr, const Environment& env,
                           SubplanEvaluator* subplans = nullptr);

}  // namespace tmdb

#endif  // TMDB_EXPR_EVAL_H_
