#include "values/column_store.h"

namespace tmdb {

namespace {

bool ColumnKindFor(const Type& t, ColumnKind* out) {
  switch (t.kind()) {
    case TypeKind::kInt:
      *out = ColumnKind::kInt64;
      return true;
    case TypeKind::kReal:
      *out = ColumnKind::kFloat64;
      return true;
    case TypeKind::kBool:
      *out = ColumnKind::kBool;
      return true;
    case TypeKind::kString:
      *out = ColumnKind::kString;
      return true;
    default:
      return false;
  }
}

}  // namespace

std::shared_ptr<const ColumnStore> ColumnStore::Build(
    const Type& schema, const std::vector<Value>& rows) {
  if (!schema.is_tuple()) return nullptr;
  const std::vector<Field>& fields = schema.fields();
  if (fields.empty()) return nullptr;
  if (rows.size() >= StringDict::kNoCode) return nullptr;

  auto store = std::shared_ptr<ColumnStore>(new ColumnStore());
  store->names_.reserve(fields.size());
  store->cols_.resize(fields.size());
  for (size_t c = 0; c < fields.size(); ++c) {
    if (!ColumnKindFor(fields[c].type, &store->cols_[c].kind)) return nullptr;
    store->names_.push_back(fields[c].name);
  }

  const size_t n = rows.size();
  for (size_t c = 0; c < fields.size(); ++c) {
    Column& col = store->cols_[c];
    switch (col.kind) {
      case ColumnKind::kInt64:
        col.i64.reserve(n);
        break;
      case ColumnKind::kFloat64:
        col.f64.reserve(n);
        break;
      case ColumnKind::kBool:
        col.b8.reserve(n);
        break;
      case ColumnKind::kString:
        col.codes.reserve(n);
        col.dict = std::make_unique<StringDict>();
        break;
    }
  }

  for (const Value& row : rows) {
    if (!row.is_tuple() || row.TupleSize() != fields.size()) return nullptr;
    for (size_t c = 0; c < fields.size(); ++c) {
      // Tuple values keep schema field order, but verify the name so a
      // permuted tuple never lands in the wrong column.
      if (row.FieldName(c) != store->names_[c]) return nullptr;
      const Value& v = row.FieldValue(c);
      Column& col = store->cols_[c];
      switch (col.kind) {
        case ColumnKind::kInt64:
          if (!v.is_int()) return nullptr;
          col.i64.push_back(v.AsInt());
          break;
        case ColumnKind::kFloat64:
          // Strictly Real, not merely numeric: ConformsTo admits Int values
          // into Real fields, but the row path compares Int/Int *exactly*
          // while a double column would compare images — divergent above
          // 2^53. Kind-exact columns keep every comparison on the same
          // route the row path takes.
          if (!v.is_real()) return nullptr;
          col.f64.push_back(v.AsNumeric());
          break;
        case ColumnKind::kBool:
          if (!v.is_bool()) return nullptr;
          col.b8.push_back(v.AsBool() ? 1 : 0);
          break;
        case ColumnKind::kString:
          if (!v.is_string()) return nullptr;
          col.codes.push_back(col.dict->Intern(v));
          break;
      }
    }
  }
  store->rows_ = rows;
  return store;
}

int ColumnStore::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace tmdb
