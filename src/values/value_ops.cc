#include "values/value_ops.h"

#include <algorithm>
#include <utility>

#include "base/string_util.h"

namespace tmdb {

namespace {

Status NotASet(const char* op, const Value& v) {
  return Status::TypeError(
      StrCat(op, " requires set operands, got ", v.ToString()));
}

Status NotNumeric(const char* op, const Value& v) {
  return Status::TypeError(
      StrCat(op, " requires numeric operands, got ", v.ToString()));
}

// Walks two canonical (sorted, deduplicated) element vectors in lockstep.
// Emit flags select which categories of elements are kept:
//   only_a  — elements present in a but not b
//   both    — elements present in both
//   only_b  — elements present in b but not a
std::vector<Value> MergeSets(const std::vector<Value>& a,
                             const std::vector<Value>& b, bool only_a,
                             bool both, bool only_b) {
  std::vector<Value> out;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const int c = a[i].Compare(b[j]);
    if (c < 0) {
      if (only_a) out.push_back(a[i]);
      ++i;
    } else if (c > 0) {
      if (only_b) out.push_back(b[j]);
      ++j;
    } else {
      if (both) out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  if (only_a) {
    for (; i < a.size(); ++i) out.push_back(a[i]);
  }
  if (only_b) {
    for (; j < b.size(); ++j) out.push_back(b[j]);
  }
  return out;
}

// True iff every element of a occurs in b (merge over canonical vectors).
bool SubsetOf(const std::vector<Value>& a, const std::vector<Value>& b) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size()) {
    if (j >= b.size()) return false;
    const int c = a[i].Compare(b[j]);
    if (c < 0) return false;  // a[i] missing from b
    if (c > 0) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  return true;
}

}  // namespace

Result<Value> SetUnion(const Value& a, const Value& b) {
  if (!a.is_set()) return NotASet("union", a);
  if (!b.is_set()) return NotASet("union", b);
  // Elements are already canonical on both sides; the merge preserves order
  // and uniqueness, so we can build the set without re-sorting. Value::Set
  // re-canonicalises anyway for safety — it is a no-op on sorted input.
  return Value::Set(MergeSets(a.Elements(), b.Elements(), true, true, true));
}

Result<Value> SetIntersect(const Value& a, const Value& b) {
  if (!a.is_set()) return NotASet("intersect", a);
  if (!b.is_set()) return NotASet("intersect", b);
  return Value::Set(MergeSets(a.Elements(), b.Elements(), false, true, false));
}

Result<Value> SetDifference(const Value& a, const Value& b) {
  if (!a.is_set()) return NotASet("difference", a);
  if (!b.is_set()) return NotASet("difference", b);
  return Value::Set(MergeSets(a.Elements(), b.Elements(), true, false, false));
}

Result<Value> SetSubsetEq(const Value& a, const Value& b) {
  if (!a.is_set()) return NotASet("subseteq", a);
  if (!b.is_set()) return NotASet("subseteq", b);
  return Value::Bool(SubsetOf(a.Elements(), b.Elements()));
}

Result<Value> SetSubset(const Value& a, const Value& b) {
  if (!a.is_set()) return NotASet("subset", a);
  if (!b.is_set()) return NotASet("subset", b);
  return Value::Bool(a.NumElements() < b.NumElements() &&
                     SubsetOf(a.Elements(), b.Elements()));
}

Result<Value> SetDisjoint(const Value& a, const Value& b) {
  if (!a.is_set()) return NotASet("disjoint", a);
  if (!b.is_set()) return NotASet("disjoint", b);
  const auto& xs = a.Elements();
  const auto& ys = b.Elements();
  size_t i = 0;
  size_t j = 0;
  while (i < xs.size() && j < ys.size()) {
    const int c = xs[i].Compare(ys[j]);
    if (c == 0) return Value::Bool(false);
    if (c < 0) {
      ++i;
    } else {
      ++j;
    }
  }
  return Value::Bool(true);
}

Result<Value> UnnestSetOfSets(const Value& s) {
  if (!s.is_set()) return NotASet("UNNEST", s);
  std::vector<Value> out;
  for (const Value& inner : s.Elements()) {
    if (!inner.is_set()) {
      return Status::TypeError(
          StrCat("UNNEST requires a set of sets, found element ",
                 inner.ToString()));
    }
    out.insert(out.end(), inner.Elements().begin(), inner.Elements().end());
  }
  return Value::Set(std::move(out));
}

Result<Value> ConcatTuples(const Value& x, const Value& y) {
  if (!x.is_tuple() || !y.is_tuple()) {
    return Status::TypeError(StrCat("tuple concatenation requires tuples, got ",
                                    x.ToString(), " and ", y.ToString()));
  }
  std::vector<std::string> names;
  std::vector<Value> values;
  names.reserve(x.TupleSize() + y.TupleSize());
  values.reserve(x.TupleSize() + y.TupleSize());
  for (size_t i = 0; i < x.TupleSize(); ++i) {
    names.push_back(x.FieldName(i));
    values.push_back(x.FieldValue(i));
  }
  for (size_t i = 0; i < y.TupleSize(); ++i) {
    if (x.FindField(y.FieldName(i)) != nullptr) {
      return Status::TypeError(StrCat("duplicate attribute '", y.FieldName(i),
                                      "' in tuple concatenation"));
    }
    names.push_back(y.FieldName(i));
    values.push_back(y.FieldValue(i));
  }
  return Value::Tuple(std::move(names), std::move(values));
}

Result<Value> ExtendTuple(const Value& x, const std::string& label,
                          const Value& v) {
  if (!x.is_tuple()) {
    return Status::TypeError(
        StrCat("tuple extension requires a tuple, got ", x.ToString()));
  }
  if (x.FindField(label) != nullptr) {
    return Status::TypeError(StrCat("nest join label '", label,
                                    "' already occurs on the top level of ",
                                    x.ToString()));
  }
  std::vector<std::string> names;
  std::vector<Value> values;
  names.reserve(x.TupleSize() + 1);
  values.reserve(x.TupleSize() + 1);
  for (size_t i = 0; i < x.TupleSize(); ++i) {
    names.push_back(x.FieldName(i));
    values.push_back(x.FieldValue(i));
  }
  names.push_back(label);
  values.push_back(v);
  return Value::Tuple(std::move(names), std::move(values));
}

Value NullTupleLike(const Value& proto) {
  std::vector<std::string> names;
  std::vector<Value> values;
  names.reserve(proto.TupleSize());
  values.reserve(proto.TupleSize());
  for (size_t i = 0; i < proto.TupleSize(); ++i) {
    names.push_back(proto.FieldName(i));
    values.push_back(Value::Null());
  }
  return Value::Tuple(std::move(names), std::move(values));
}

Value NullTupleOfType(const Type& tuple_type) {
  std::vector<std::string> names;
  std::vector<Value> values;
  if (tuple_type.is_tuple()) {
    names.reserve(tuple_type.fields().size());
    values.reserve(tuple_type.fields().size());
    for (const Field& f : tuple_type.fields()) {
      names.push_back(f.name);
      values.push_back(Value::Null());
    }
  }
  return Value::Tuple(std::move(names), std::move(values));
}

namespace {

enum class ArithKind { kAdd, kSub, kMul, kDiv };

Result<Value> Arith(ArithKind op, const Value& a, const Value& b) {
  if (!a.is_numeric()) return NotNumeric("arithmetic", a);
  if (!b.is_numeric()) return NotNumeric("arithmetic", b);
  if (a.is_int() && b.is_int()) {
    const int64_t x = a.AsInt();
    const int64_t y = b.AsInt();
    switch (op) {
      case ArithKind::kAdd:
        return Value::Int(x + y);
      case ArithKind::kSub:
        return Value::Int(x - y);
      case ArithKind::kMul:
        return Value::Int(x * y);
      case ArithKind::kDiv:
        if (y == 0) return Status::InvalidArgument("integer division by zero");
        return Value::Int(x / y);
    }
  }
  const double x = a.AsNumeric();
  const double y = b.AsNumeric();
  switch (op) {
    case ArithKind::kAdd:
      return Value::Real(x + y);
    case ArithKind::kSub:
      return Value::Real(x - y);
    case ArithKind::kMul:
      return Value::Real(x * y);
    case ArithKind::kDiv:
      if (y == 0.0) return Status::InvalidArgument("division by zero");
      return Value::Real(x / y);
  }
  return Status::Internal("unhandled arithmetic op");
}

}  // namespace

Result<Value> NumericAdd(const Value& a, const Value& b) {
  return Arith(ArithKind::kAdd, a, b);
}
Result<Value> NumericSub(const Value& a, const Value& b) {
  return Arith(ArithKind::kSub, a, b);
}
Result<Value> NumericMul(const Value& a, const Value& b) {
  return Arith(ArithKind::kMul, a, b);
}
Result<Value> NumericDiv(const Value& a, const Value& b) {
  return Arith(ArithKind::kDiv, a, b);
}

Result<Value> NumericNeg(const Value& a) {
  if (a.is_int()) return Value::Int(-a.AsInt());
  if (a.is_real()) return Value::Real(-a.AsReal());
  return NotNumeric("negation", a);
}

Result<Value> OrderedCompare(CompareOpKind op, const Value& a,
                             const Value& b) {
  int c;
  if (a.is_numeric() && b.is_numeric()) {
    const double x = a.AsNumeric();
    const double y = b.AsNumeric();
    c = x < y ? -1 : (x > y ? 1 : 0);
  } else if (a.is_string() && b.is_string()) {
    c = a.AsString().compare(b.AsString());
  } else {
    return Status::TypeError(
        StrCat("ordered comparison requires two numerics or two strings, got ",
               a.ToString(), " and ", b.ToString()));
  }
  switch (op) {
    case CompareOpKind::kLt:
      return Value::Bool(c < 0);
    case CompareOpKind::kLe:
      return Value::Bool(c <= 0);
    case CompareOpKind::kGt:
      return Value::Bool(c > 0);
    case CompareOpKind::kGe:
      return Value::Bool(c >= 0);
  }
  return Status::Internal("unhandled comparison op");
}

namespace {

Status NotACollection(const char* agg, const Value& v) {
  return Status::TypeError(
      StrCat(agg, " requires a set or list argument, got ", v.ToString()));
}

}  // namespace

Result<Value> AggCount(const Value& collection) {
  if (!collection.is_collection()) return NotACollection("count", collection);
  return Value::Int(static_cast<int64_t>(collection.NumElements()));
}

Result<Value> AggSum(const Value& collection) {
  if (!collection.is_collection()) return NotACollection("sum", collection);
  bool any_real = false;
  int64_t int_sum = 0;
  double real_sum = 0.0;
  for (const Value& e : collection.Elements()) {
    if (!e.is_numeric()) return NotNumeric("sum", e);
    if (e.is_real()) any_real = true;
    real_sum += e.AsNumeric();
    if (e.is_int()) int_sum += e.AsInt();
  }
  if (any_real) return Value::Real(real_sum);
  return Value::Int(int_sum);
}

Result<Value> AggAvg(const Value& collection) {
  if (!collection.is_collection()) return NotACollection("avg", collection);
  if (collection.NumElements() == 0) {
    return Status::InvalidArgument("avg of an empty collection");
  }
  double sum = 0.0;
  for (const Value& e : collection.Elements()) {
    if (!e.is_numeric()) return NotNumeric("avg", e);
    sum += e.AsNumeric();
  }
  return Value::Real(sum / static_cast<double>(collection.NumElements()));
}

namespace {

Result<Value> MinMax(const Value& collection, bool want_min) {
  const char* name = want_min ? "min" : "max";
  if (!collection.is_collection()) return NotACollection(name, collection);
  if (collection.NumElements() == 0) {
    return Status::InvalidArgument(
        StrCat(name, " of an empty collection"));
  }
  const Value* best = nullptr;
  for (const Value& e : collection.Elements()) {
    if (!e.is_numeric() && !e.is_string()) {
      return Status::TypeError(
          StrCat(name, " requires numeric or string elements, got ",
                 e.ToString()));
    }
    if (best == nullptr) {
      best = &e;
      continue;
    }
    const int c = e.Compare(*best);
    if ((want_min && c < 0) || (!want_min && c > 0)) best = &e;
  }
  return *best;
}

}  // namespace

Result<Value> AggMin(const Value& collection) {
  return MinMax(collection, /*want_min=*/true);
}

Result<Value> AggMax(const Value& collection) {
  return MinMax(collection, /*want_min=*/false);
}

}  // namespace tmdb
