#ifndef TMDB_VALUES_VALUE_H_
#define TMDB_VALUES_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "types/type.h"

namespace tmdb {

namespace internal_values {
struct ValueRep;
}  // namespace internal_values

/// Kinds of runtime values. kNull exists only to represent the padding the
/// *outerjoin baseline* (Ganski–Wong) introduces for dangling tuples; the
/// nest-join path of the engine never produces it — as the paper argues, in
/// a complex object model the empty set is part of the model, so no NULL is
/// needed.
enum class ValueKind {
  kNull,
  kBool,
  kInt,
  kReal,
  kString,
  kTuple,
  kSet,   // canonical: sorted by Value::Compare, duplicate-free
  kList,
};

/// An immutable complex-object value: atoms, tuples with named attributes,
/// duplicate-free sets, and lists, arbitrarily nested. Values are cheap to
/// copy (shared immutable representation) and have structural equality, a
/// total order (used to canonicalise sets), and a hash consistent with
/// equality.
///
/// Int and Real values that denote the same number compare equal; mixed
/// numeric sets therefore behave like sets of reals, matching how the type
/// checker coerces INT to REAL.
class Value {
 public:
  /// Constructs NULL; prefer the named factories.
  Value();

  static Value Null();
  static Value Bool(bool v);
  static Value Int(int64_t v);
  static Value Real(double v);
  static Value String(std::string v);
  /// Tuple with attributes `names[i] = values[i]`. Names must be distinct;
  /// checked in debug via TMDB_CHECK.
  static Value Tuple(std::vector<std::string> names, std::vector<Value> values);
  /// Set: `elements` are sorted and deduplicated (TM sets are duplicate-free).
  static Value Set(std::vector<Value> elements);
  static Value EmptySet();
  static Value List(std::vector<Value> elements);

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;

  ValueKind kind() const;
  bool is_null() const { return kind() == ValueKind::kNull; }
  bool is_bool() const { return kind() == ValueKind::kBool; }
  bool is_int() const { return kind() == ValueKind::kInt; }
  bool is_real() const { return kind() == ValueKind::kReal; }
  bool is_numeric() const { return is_int() || is_real(); }
  bool is_string() const { return kind() == ValueKind::kString; }
  bool is_tuple() const { return kind() == ValueKind::kTuple; }
  bool is_set() const { return kind() == ValueKind::kSet; }
  bool is_list() const { return kind() == ValueKind::kList; }
  bool is_collection() const { return is_set() || is_list(); }

  /// Atom accessors; each requires the matching kind.
  bool AsBool() const;
  int64_t AsInt() const;
  double AsReal() const;
  /// Numeric value as double, accepting kInt or kReal.
  double AsNumeric() const;
  const std::string& AsString() const;

  /// Tuple accessors; require is_tuple().
  size_t TupleSize() const;
  const std::string& FieldName(size_t i) const;
  const Value& FieldValue(size_t i) const;
  /// Pointer to the attribute value, or nullptr if the name is absent.
  const Value* FindField(const std::string& name) const;
  /// Attribute value by name; NotFound if absent.
  Result<Value> Field(const std::string& name) const;

  /// Collection accessors; require is_collection().
  size_t NumElements() const;
  const Value& Element(size_t i) const;
  const std::vector<Value>& Elements() const;
  /// Membership test; O(log n) on sets, O(n) on lists.
  bool Contains(const Value& v) const;

  /// Total order over all values: kinds are ranked (null < bool < numeric <
  /// string < tuple < set < list) except that kInt and kReal compare
  /// numerically with each other. Within a kind the order is the natural /
  /// lexicographic one.
  int Compare(const Value& other) const;
  bool Equals(const Value& other) const { return Compare(other) == 0; }

  /// Hash consistent with Equals (in particular Int(1) and Real(1.0) hash
  /// identically).
  uint64_t Hash() const;

  /// TM-style rendering: ⟨a = 1, b = {2, 3}⟩ printed as <a = 1, b = {2, 3}>.
  std::string ToString() const;

 private:
  using Rep = internal_values::ValueRep;
  explicit Value(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}

  /// Uncached structural hash; Hash() memoises it in the shared rep.
  uint64_t ComputeHash() const;

  std::shared_ptr<const Rep> rep_;
};

inline bool operator==(const Value& a, const Value& b) { return a.Equals(b); }
inline bool operator!=(const Value& a, const Value& b) { return !a.Equals(b); }
inline bool operator<(const Value& a, const Value& b) {
  return a.Compare(b) < 0;
}

/// Functors for unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const {
    return static_cast<size_t>(v.Hash());
  }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const { return a.Equals(b); }
};

/// Derives the most specific Type describing `v`. Empty sets/lists get
/// element type ANY; NULL gets type ANY.
Type TypeOf(const Value& v);

/// True if `v` is a valid instance of `type` (with INT⇒REAL and ANY
/// coercions allowed).
bool ConformsTo(const Value& v, const Type& type);

}  // namespace tmdb

#endif  // TMDB_VALUES_VALUE_H_
