#include "values/value_mem.h"

#include <atomic>

namespace tmdb {

namespace {
std::atomic<int32_t> g_trackers{0};
std::atomic<int64_t> g_live_bytes{0};
}  // namespace

void ValueMemory::EnableTracking() {
  g_trackers.fetch_add(1, std::memory_order_relaxed);
}

void ValueMemory::DisableTracking() {
  g_trackers.fetch_sub(1, std::memory_order_relaxed);
}

bool ValueMemory::tracking_enabled() {
  return g_trackers.load(std::memory_order_relaxed) > 0;
}

int64_t ValueMemory::LiveBytes() {
  return g_live_bytes.load(std::memory_order_relaxed);
}

void ValueMemory::Add(int64_t delta) {
  g_live_bytes.fetch_add(delta, std::memory_order_relaxed);
}

}  // namespace tmdb
