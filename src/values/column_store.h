#ifndef TMDB_VALUES_COLUMN_STORE_H_
#define TMDB_VALUES_COLUMN_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "types/type.h"
#include "values/value.h"

namespace tmdb {

/// Physical kinds a column can have. Columns are strictly kind-exact: a
/// REAL column holds only Real values (ConformsTo would admit Ints into a
/// Real attribute, but the row path compares Int/Int exactly while the
/// double image does not — Build refuses rather than risk divergence).
enum class ColumnKind { kInt64, kFloat64, kBool, kString };

/// Dictionary for one string column. Codes are assigned in first-occurrence
/// order; the dictionary keeps the first-seen Value *handle* per distinct
/// string, so decoding a code hands back the original shared ValueRep — no
/// re-allocation on the column → row round trip. Interning itself is keyed
/// by Value (ValueHash/ValueEq), which routes every lookup through the
/// rep's memoised structural hash.
class StringDict {
 public:
  static constexpr uint32_t kNoCode = 0xffffffffu;

  /// Interns a string value, returning its (possibly fresh) code.
  uint32_t Intern(const Value& v) {
    auto [it, inserted] =
        codes_.emplace(v, static_cast<uint32_t>(values_.size()));
    if (inserted) values_.push_back(v);
    return it->second;
  }

  /// Code for `v`, or kNoCode when it was never interned. `v` must be a
  /// string value.
  uint32_t Lookup(const Value& v) const {
    auto it = codes_.find(v);
    return it == codes_.end() ? kNoCode : it->second;
  }

  const Value& value(uint32_t code) const { return values_[code]; }
  const std::string& str(uint32_t code) const {
    return values_[code].AsString();
  }
  size_t size() const { return values_.size(); }

 private:
  std::vector<Value> values_;
  std::unordered_map<Value, uint32_t, ValueHash, ValueEq> codes_;
};

/// One decomposed column.
struct Column {
  ColumnKind kind = ColumnKind::kInt64;
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<uint8_t> b8;      // bools as 0/1
  std::vector<uint32_t> codes;  // string dictionary codes
  std::unique_ptr<StringDict> dict;
};

/// Columnar decomposition of a flat table: one array per basic-typed
/// attribute, plus a snapshot of the original row handles so converting a
/// row id back to a Value is a shared-rep copy (bit-identical to the row
/// path, zero allocation). Immutable once built; safe to share across
/// queries and threads.
class ColumnStore {
 public:
  /// Builds a store for rows of tuple type `schema`, or nullptr when the
  /// layout is not columnar: a non-tuple schema, a non-basic attribute
  /// type, or any value whose kind deviates from its column (NULLs
  /// included — a fixed-width column cannot represent them, and the row
  /// path's NULL semantics must win).
  static std::shared_ptr<const ColumnStore> Build(
      const Type& schema, const std::vector<Value>& rows);

  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return cols_.size(); }
  /// Index of the column named `name`, or -1.
  int ColumnIndex(const std::string& name) const;
  const std::string& column_name(size_t i) const { return names_[i]; }
  const Column& column(size_t i) const { return cols_[i]; }
  /// The original row handle for `id` — shares the table row's ValueRep.
  const Value& RowValue(uint32_t id) const { return rows_[id]; }

 private:
  ColumnStore() = default;

  std::vector<std::string> names_;
  std::vector<Column> cols_;
  std::vector<Value> rows_;
};

/// A batch of rows in columnar form: a view over one ColumnStore, either a
/// dense range [first, first+len) or an id vector (a selection). The view
/// borrows `store` and `ids` from its producer; it is valid until the next
/// Next*/Open/Close call on that producer.
struct ColumnBatch {
  const ColumnStore* store = nullptr;
  const uint32_t* ids = nullptr;  // nullptr → dense [first, first + len)
  uint32_t first = 0;
  uint32_t len = 0;

  bool dense() const { return ids == nullptr; }
  uint32_t RowId(uint32_t i) const { return ids != nullptr ? ids[i] : first + i; }
};

}  // namespace tmdb

#endif  // TMDB_VALUES_COLUMN_STORE_H_
