#ifndef TMDB_VALUES_VALUE_OPS_H_
#define TMDB_VALUES_VALUE_OPS_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "values/value.h"

namespace tmdb {

/// Operations on complex-object values. All set operations exploit the
/// canonical (sorted, duplicate-free) representation, so union/intersect/
/// difference/subset are linear merges rather than quadratic scans.

/// a ∪ b. Both operands must be sets.
Result<Value> SetUnion(const Value& a, const Value& b);
/// a ∩ b.
Result<Value> SetIntersect(const Value& a, const Value& b);
/// a − b.
Result<Value> SetDifference(const Value& a, const Value& b);
/// a ⊆ b.
Result<Value> SetSubsetEq(const Value& a, const Value& b);
/// a ⊂ b (proper subset).
Result<Value> SetSubset(const Value& a, const Value& b);
/// True iff a ∩ b = ∅ (without materialising the intersection).
Result<Value> SetDisjoint(const Value& a, const Value& b);

/// UNNEST(S) = ∪{ s | s ∈ S }: collapses a set of sets (Section 5 of the
/// paper — the one SELECT-nesting that avoids grouping).
Result<Value> UnnestSetOfSets(const Value& s);

/// Concatenation x ++ y of two tuples (the regular join's output tuple).
/// Attribute names must be disjoint.
Result<Value> ConcatTuples(const Value& x, const Value& y);

/// x ++ (label = v): the nest join's output tuple (paper Section 6).
Result<Value> ExtendTuple(const Value& x, const std::string& label,
                          const Value& v);

/// A tuple with the same attributes as `proto` but every attribute NULL.
/// Used by the outerjoin to pad dangling tuples (Ganski–Wong baseline).
Value NullTupleLike(const Value& proto);
Value NullTupleOfType(const Type& tuple_type);

/// Arithmetic. Int op Int stays Int (Div by zero is an error); any Real
/// operand promotes to Real.
Result<Value> NumericAdd(const Value& a, const Value& b);
Result<Value> NumericSub(const Value& a, const Value& b);
Result<Value> NumericMul(const Value& a, const Value& b);
Result<Value> NumericDiv(const Value& a, const Value& b);
Result<Value> NumericNeg(const Value& a);

/// Ordered comparison (<, <=, >, >=) over numerics and strings.
enum class CompareOpKind { kLt, kLe, kGt, kGe };
Result<Value> OrderedCompare(CompareOpKind op, const Value& a, const Value& b);

/// Aggregate functions over a collection value. count works on any
/// collection; sum/avg require numeric elements; min/max require numeric or
/// string elements. For empty input: count = 0, sum = 0, min/max/avg are an
/// InvalidArgument error (the paper's queries only apply them via nest join
/// groups where the caller decides; count-on-empty = 0 is exactly the COUNT
/// bug's crux and is well-defined).
Result<Value> AggCount(const Value& collection);
Result<Value> AggSum(const Value& collection);
Result<Value> AggAvg(const Value& collection);
Result<Value> AggMin(const Value& collection);
Result<Value> AggMax(const Value& collection);

}  // namespace tmdb

#endif  // TMDB_VALUES_VALUE_OPS_H_
