#ifndef TMDB_VALUES_VALUE_MEM_H_
#define TMDB_VALUES_VALUE_MEM_H_

#include <cstdint>

namespace tmdb {

/// Process-wide accounting of live Value heap bytes, feeding the executor's
/// memory budget (QueryGuard) so a budget trips before the allocator does.
///
/// Tracking is off by default: a Value construction then costs one relaxed
/// atomic load. While at least one EnableTracking() call is outstanding,
/// each newly built ValueRep records its shallow footprint (struct, string
/// payloads, attribute names, child slots) and adds it to a global relaxed
/// counter; the destructor subtracts exactly what was added. Reps built
/// while tracking was off carry a zero footprint, so toggling mid-stream
/// never drives the counter negative — the counter measures "bytes of
/// tracked values still live", a sound lower bound on live Value memory.
///
/// Shared reps are counted once no matter how many Value handles alias
/// them, matching what the allocator sees.
class ValueMemory {
 public:
  /// Nestable (refcounted) enable/disable. Typically driven by
  /// QueryGuard::Reset when a memory budget is set.
  static void EnableTracking();
  static void DisableTracking();

  /// True while any EnableTracking() is outstanding.
  static bool tracking_enabled();

  /// Live tracked bytes. Relaxed read; exact once all writers quiesce.
  static int64_t LiveBytes();

  /// Internal: called by Value factories / ValueRep destructor.
  static void Add(int64_t delta);
};

}  // namespace tmdb

#endif  // TMDB_VALUES_VALUE_MEM_H_
