#include "values/value.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <utility>

#include "base/hash.h"
#include "base/logging.h"
#include "base/string_util.h"
#include "values/value_mem.h"

namespace tmdb {

namespace internal_values {
struct ValueRep {
  ValueKind kind;

  // Atom payloads (only the one matching `kind` is meaningful).
  bool bool_value = false;
  int64_t int_value = 0;
  double real_value = 0.0;
  std::string string_value;

  // Tuple payload: parallel arrays, names[i] labels values[i].
  std::vector<std::string> names;
  // Tuple attribute values, or set/list elements.
  std::vector<Value> children;

  // Structural hash, computed on first use (join/nest keys are re-hashed
  // once per probe otherwise). kHashUnset marks "not yet computed"; the
  // value is deterministic, so racing relaxed stores are benign.
  static constexpr uint64_t kHashUnset = 0;
  mutable std::atomic<uint64_t> cached_hash{kHashUnset};

  // Shallow bytes registered with ValueMemory at construction time. Zero
  // for reps built while tracking was off (and for the singletons), so the
  // destructor always subtracts exactly what was added.
  uint32_t tracked_bytes = 0;

  explicit ValueRep(ValueKind k) : kind(k) {}
  ~ValueRep() {
    if (tracked_bytes != 0) {
      ValueMemory::Add(-static_cast<int64_t>(tracked_bytes));
    }
  }
};
}  // namespace internal_values

namespace {

using internal_values::ValueRep;

// Shared singletons for the values that appear everywhere.
const std::shared_ptr<const ValueRep>& NullRep() {
  static const auto& rep =
      *new std::shared_ptr<const ValueRep>(new ValueRep(ValueKind::kNull));
  return rep;
}

const std::shared_ptr<const ValueRep>& EmptySetRep() {
  static const auto& rep =
      *new std::shared_ptr<const ValueRep>(new ValueRep(ValueKind::kSet));
  return rep;
}

// Registers a freshly built rep's shallow footprint with ValueMemory (a
// no-op unless a memory budget enabled tracking). Child values are counted
// by their own reps; only the handle slots count here, so shared structure
// is never double-counted.
std::shared_ptr<ValueRep> Track(std::shared_ptr<ValueRep> rep) {
  if (ValueMemory::tracking_enabled()) {
    size_t bytes = sizeof(ValueRep) + rep->string_value.capacity() +
                   rep->names.capacity() * sizeof(std::string) +
                   rep->children.capacity() * sizeof(Value);
    for (const std::string& name : rep->names) bytes += name.capacity();
    if (bytes > UINT32_MAX) bytes = UINT32_MAX;
    rep->tracked_bytes = static_cast<uint32_t>(bytes);
    ValueMemory::Add(static_cast<int64_t>(rep->tracked_bytes));
  }
  return rep;
}

// Rank used by Compare for values of different kinds. Int and Real share a
// rank so they compare numerically.
int KindRank(ValueKind k) {
  switch (k) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kBool:
      return 1;
    case ValueKind::kInt:
    case ValueKind::kReal:
      return 2;
    case ValueKind::kString:
      return 3;
    case ValueKind::kTuple:
      return 4;
    case ValueKind::kSet:
      return 5;
    case ValueKind::kList:
      return 6;
  }
  return 7;
}

int CompareDoubles(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

Value::Value() : rep_(NullRep()) {}

Value Value::Null() { return Value(NullRep()); }

Value Value::Bool(bool v) {
  auto rep = std::make_shared<ValueRep>(ValueKind::kBool);
  rep->bool_value = v;
  return Value(Track(std::move(rep)));
}

Value Value::Int(int64_t v) {
  auto rep = std::make_shared<ValueRep>(ValueKind::kInt);
  rep->int_value = v;
  return Value(Track(std::move(rep)));
}

Value Value::Real(double v) {
  auto rep = std::make_shared<ValueRep>(ValueKind::kReal);
  rep->real_value = v;
  return Value(Track(std::move(rep)));
}

Value Value::String(std::string v) {
  auto rep = std::make_shared<ValueRep>(ValueKind::kString);
  rep->string_value = std::move(v);
  return Value(Track(std::move(rep)));
}

Value Value::Tuple(std::vector<std::string> names, std::vector<Value> values) {
  TMDB_CHECK(names.size() == values.size());
#ifndef NDEBUG
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      TMDB_CHECK_MSG(names[i] != names[j],
                     "duplicate tuple attribute '" << names[i] << "'");
    }
  }
#endif
  auto rep = std::make_shared<ValueRep>(ValueKind::kTuple);
  rep->names = std::move(names);
  rep->children = std::move(values);
  return Value(Track(std::move(rep)));
}

Value Value::Set(std::vector<Value> elements) {
  if (elements.empty()) return EmptySet();
  std::sort(elements.begin(), elements.end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  elements.erase(std::unique(elements.begin(), elements.end(),
                             [](const Value& a, const Value& b) {
                               return a.Equals(b);
                             }),
                 elements.end());
  // Dedup can strand most of the build vector's capacity, and the rep's
  // tracked footprint counts capacity — a grouped set built from many
  // duplicates would otherwise pin its pre-dedup size for its lifetime.
  elements.shrink_to_fit();
  auto rep = std::make_shared<ValueRep>(ValueKind::kSet);
  rep->children = std::move(elements);
  return Value(Track(std::move(rep)));
}

Value Value::EmptySet() { return Value(EmptySetRep()); }

Value Value::List(std::vector<Value> elements) {
  auto rep = std::make_shared<ValueRep>(ValueKind::kList);
  rep->children = std::move(elements);
  return Value(Track(std::move(rep)));
}

ValueKind Value::kind() const { return rep_->kind; }

bool Value::AsBool() const {
  TMDB_CHECK(is_bool());
  return rep_->bool_value;
}

int64_t Value::AsInt() const {
  TMDB_CHECK(is_int());
  return rep_->int_value;
}

double Value::AsReal() const {
  TMDB_CHECK(is_real());
  return rep_->real_value;
}

double Value::AsNumeric() const {
  if (is_int()) return static_cast<double>(rep_->int_value);
  TMDB_CHECK(is_real());
  return rep_->real_value;
}

const std::string& Value::AsString() const {
  TMDB_CHECK(is_string());
  return rep_->string_value;
}

size_t Value::TupleSize() const {
  TMDB_CHECK(is_tuple());
  return rep_->children.size();
}

const std::string& Value::FieldName(size_t i) const {
  TMDB_CHECK(is_tuple());
  TMDB_CHECK(i < rep_->names.size());
  return rep_->names[i];
}

const Value& Value::FieldValue(size_t i) const {
  TMDB_CHECK(is_tuple());
  TMDB_CHECK(i < rep_->children.size());
  return rep_->children[i];
}

const Value* Value::FindField(const std::string& name) const {
  if (!is_tuple()) return nullptr;
  for (size_t i = 0; i < rep_->names.size(); ++i) {
    if (rep_->names[i] == name) return &rep_->children[i];
  }
  return nullptr;
}

Result<Value> Value::Field(const std::string& name) const {
  if (!is_tuple()) {
    return Status::TypeError(
        StrCat("attribute access '.", name, "' on non-tuple value ",
               ToString()));
  }
  const Value* v = FindField(name);
  if (v == nullptr) {
    return Status::NotFound(
        StrCat("no attribute '", name, "' in ", ToString()));
  }
  return *v;
}

size_t Value::NumElements() const {
  TMDB_CHECK(is_collection());
  return rep_->children.size();
}

const Value& Value::Element(size_t i) const {
  TMDB_CHECK(is_collection());
  TMDB_CHECK(i < rep_->children.size());
  return rep_->children[i];
}

const std::vector<Value>& Value::Elements() const {
  TMDB_CHECK(is_collection());
  return rep_->children;
}

bool Value::Contains(const Value& v) const {
  TMDB_CHECK(is_collection());
  const auto& elems = rep_->children;
  if (is_set()) {
    // Sets are canonicalised (sorted), so membership is a binary search.
    auto it = std::lower_bound(
        elems.begin(), elems.end(), v,
        [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
    return it != elems.end() && it->Equals(v);
  }
  for (const Value& e : elems) {
    if (e.Equals(v)) return true;
  }
  return false;
}

int Value::Compare(const Value& other) const {
  if (rep_ == other.rep_) return 0;
  const int ra = KindRank(kind());
  const int rb = KindRank(other.kind());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (kind()) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kBool: {
      const int a = rep_->bool_value ? 1 : 0;
      const int b = other.rep_->bool_value ? 1 : 0;
      return a - b;
    }
    case ValueKind::kInt:
    case ValueKind::kReal: {
      if (is_int() && other.is_int()) {
        if (rep_->int_value < other.rep_->int_value) return -1;
        if (rep_->int_value > other.rep_->int_value) return 1;
        return 0;
      }
      return CompareDoubles(AsNumeric(), other.AsNumeric());
    }
    case ValueKind::kString:
      return rep_->string_value.compare(other.rep_->string_value);
    case ValueKind::kTuple: {
      // Tuples order by (name, value) pairs left to right; differently
      // shaped tuples order by their attribute lists.
      const size_t n = std::min(rep_->names.size(), other.rep_->names.size());
      for (size_t i = 0; i < n; ++i) {
        int c = rep_->names[i].compare(other.rep_->names[i]);
        if (c != 0) return c < 0 ? -1 : 1;
        c = rep_->children[i].Compare(other.rep_->children[i]);
        if (c != 0) return c;
      }
      if (rep_->names.size() != other.rep_->names.size()) {
        return rep_->names.size() < other.rep_->names.size() ? -1 : 1;
      }
      return 0;
    }
    case ValueKind::kSet:
    case ValueKind::kList: {
      // Lexicographic over elements (sets are canonical, so this is a
      // well-defined set order).
      const auto& a = rep_->children;
      const auto& b = other.rep_->children;
      const size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        const int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
      return 0;
    }
  }
  return 0;
}

uint64_t Value::Hash() const {
  uint64_t h = rep_->cached_hash.load(std::memory_order_relaxed);
  if (h != Rep::kHashUnset) return h;
  h = ComputeHash();
  // The sentinel is a legal hash image; remap it so the cache stays sound
  // (equal values still agree: they compute the same image).
  if (h == Rep::kHashUnset) h = 0x9e3779b97f4a7c15ULL;
  rep_->cached_hash.store(h, std::memory_order_relaxed);
  return h;
}

uint64_t Value::ComputeHash() const {
  switch (kind()) {
    case ValueKind::kNull:
      return 0x6e756c6cULL;
    case ValueKind::kBool:
      return rep_->bool_value ? 0x74727565ULL : 0x66616c73ULL;
    case ValueKind::kInt:
    case ValueKind::kReal: {
      // Numerically equal Int and Real must hash identically: hash the
      // double image when the integer is exactly representable, the raw
      // int64 bits otherwise (a double can never equal such an int64
      // exactly anyway... it can collide in value but Compare uses the
      // same double image, so equality and hash stay consistent).
      double d;
      if (is_int()) {
        d = static_cast<double>(rep_->int_value);
      } else {
        d = rep_->real_value;
      }
      if (d == 0.0) d = 0.0;  // normalise -0.0 to +0.0
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return HashBytes(&bits, sizeof(bits), 0x6e756d62ULL);
    }
    case ValueKind::kString:
      return HashString(rep_->string_value, 0x73747231ULL);
    case ValueKind::kTuple: {
      uint64_t h = 0x7475706cULL;
      for (size_t i = 0; i < rep_->names.size(); ++i) {
        h = HashCombine(h, HashString(rep_->names[i]));
        h = HashCombine(h, rep_->children[i].Hash());
      }
      return h;
    }
    case ValueKind::kSet: {
      uint64_t h = 0x73657421ULL;
      for (const Value& e : rep_->children) {
        h = HashCombineUnordered(h, e.Hash());
      }
      return HashCombine(h, rep_->children.size());
    }
    case ValueKind::kList: {
      uint64_t h = 0x6c697374ULL;
      for (const Value& e : rep_->children) {
        h = HashCombine(h, e.Hash());
      }
      return h;
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "NULL";
    case ValueKind::kBool:
      return rep_->bool_value ? "true" : "false";
    case ValueKind::kInt:
      return std::to_string(rep_->int_value);
    case ValueKind::kReal: {
      std::string s = StrCat(rep_->real_value);
      // Make reals visually distinct from ints.
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case ValueKind::kString:
      return "\"" + EscapeString(rep_->string_value) + "\"";
    case ValueKind::kTuple: {
      std::vector<std::string> parts;
      parts.reserve(rep_->names.size());
      for (size_t i = 0; i < rep_->names.size(); ++i) {
        parts.push_back(rep_->names[i] + " = " + rep_->children[i].ToString());
      }
      return "<" + Join(parts, ", ") + ">";
    }
    case ValueKind::kSet:
    case ValueKind::kList: {
      std::vector<std::string> parts;
      parts.reserve(rep_->children.size());
      for (const Value& e : rep_->children) {
        parts.push_back(e.ToString());
      }
      const char* open = is_set() ? "{" : "[";
      const char* close = is_set() ? "}" : "]";
      return open + Join(parts, ", ") + close;
    }
  }
  return "?";
}

Type TypeOf(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kNull:
      return Type::Any();
    case ValueKind::kBool:
      return Type::Bool();
    case ValueKind::kInt:
      return Type::Int();
    case ValueKind::kReal:
      return Type::Real();
    case ValueKind::kString:
      return Type::String();
    case ValueKind::kTuple: {
      std::vector<Field> fields;
      fields.reserve(v.TupleSize());
      for (size_t i = 0; i < v.TupleSize(); ++i) {
        fields.push_back({v.FieldName(i), TypeOf(v.FieldValue(i))});
      }
      return Type::Tuple(std::move(fields));
    }
    case ValueKind::kSet:
    case ValueKind::kList: {
      Type elem = Type::Any();
      for (const Value& e : v.Elements()) {
        auto unified = UnifyTypes(elem, TypeOf(e));
        if (!unified.ok()) {
          // Heterogeneous collection (cannot arise from the typed engine,
          // but TypeOf is total): fall back to ANY.
          elem = Type::Any();
          break;
        }
        elem = *unified;
      }
      return v.is_set() ? Type::Set(elem) : Type::List(elem);
    }
  }
  return Type::Any();
}

bool ConformsTo(const Value& v, const Type& type) {
  if (type.is_any() || v.is_null()) return true;
  switch (type.kind()) {
    case TypeKind::kBool:
      return v.is_bool();
    case TypeKind::kInt:
      return v.is_int();
    case TypeKind::kReal:
      return v.is_numeric();
    case TypeKind::kString:
      return v.is_string();
    case TypeKind::kTuple: {
      if (!v.is_tuple()) return false;
      const auto& fields = type.fields();
      if (v.TupleSize() != fields.size()) return false;
      for (size_t i = 0; i < fields.size(); ++i) {
        if (v.FieldName(i) != fields[i].name) return false;
        if (!ConformsTo(v.FieldValue(i), fields[i].type)) return false;
      }
      return true;
    }
    case TypeKind::kSet: {
      if (!v.is_set()) return false;
      for (const Value& e : v.Elements()) {
        if (!ConformsTo(e, type.element())) return false;
      }
      return true;
    }
    case TypeKind::kList: {
      if (!v.is_list()) return false;
      for (const Value& e : v.Elements()) {
        if (!ConformsTo(e, type.element())) return false;
      }
      return true;
    }
    case TypeKind::kAny:
      return true;
  }
  return false;
}

}  // namespace tmdb
