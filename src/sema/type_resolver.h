#ifndef TMDB_SEMA_TYPE_RESOLVER_H_
#define TMDB_SEMA_TYPE_RESOLVER_H_

#include "base/result.h"
#include "catalog/catalog.h"
#include "parser/statement.h"
#include "types/type.h"

namespace tmdb {

/// Resolves type syntax to a Type, looking named references up as sorts in
/// the catalog (e.g. `address : Address` after DEFINE SORT Address AS ...).
Result<Type> ResolveTypeAst(const TypeAst& ast, const Catalog& catalog);

}  // namespace tmdb

#endif  // TMDB_SEMA_TYPE_RESOLVER_H_
