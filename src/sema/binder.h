#ifndef TMDB_SEMA_BINDER_H_
#define TMDB_SEMA_BINDER_H_

#include <string>
#include <utility>
#include <vector>

#include "algebra/logical_op.h"
#include "base/result.h"
#include "catalog/catalog.h"
#include "expr/expr.h"
#include "parser/ast.h"

namespace tmdb {

/// Name resolution + type checking + lowering: turns an untyped AST into a
/// *naive* logical plan, the ground-truth form every rewrite strategy is
/// checked against.
///
/// In the naive plan, nested SFW blocks in the SELECT or WHERE clause stay
/// embedded as correlated subplan expressions (executed once per outer row,
/// the paper's nested-loop semantics). The rewrite module then transforms
/// this plan into semijoin / antijoin / nest-join form.
///
/// Scoping rules implemented here:
///  - FROM binds an iteration variable per operand; inner blocks see outer
///    variables (correlation); same-named inner variables shadow outer ones.
///  - A FROM operand that is a bare identifier resolves to an in-scope
///    variable first, then to a catalog table.
///  - WITH introduces local definitions that are inlined (the paper uses
///    them as naming devices only).
///  - Quantifiers (EXISTS/FORALL v IN e) bind v in their body.
class Binder {
 public:
  explicit Binder(const Catalog* catalog) : catalog_(catalog) {}

  /// Binds a top-level query. The AST must be an SFW block or a
  /// collection-valued expression (e.g. UNNEST(SELECT ...)).
  Result<LogicalOpPtr> BindQuery(const AstNode& ast);

  /// Binds a standalone expression under an empty scope (tables are still
  /// visible and become uncorrelated subplans). Mostly for tests.
  Result<Expr> BindExpression(const AstNode& ast);

 private:
  /// Lexical scope: variable name → accessor expression. The accessor is
  /// usually Var(name, type); for multi-operand FROM clauses it projects
  /// the combined join row onto one operand's attributes.
  struct Scope {
    const Scope* parent = nullptr;
    std::vector<std::pair<std::string, Expr>> vars;

    const Expr* Lookup(const std::string& name) const;
  };

  Result<Expr> BindExpr(const AstNode& ast, const Scope& scope);
  Result<LogicalOpPtr> BindSfw(const AstNode& sfw, const Scope& scope);
  /// Binds one FROM operand into a plan (table scan or ExprSource).
  Result<LogicalOpPtr> BindFromOperand(const AstNode& operand,
                                       const Scope& scope);

  std::string FreshName(const std::string& base);

  const Catalog* catalog_;
  int fresh_counter_ = 0;
};

/// Replaces free occurrences of identifier `name` in `node` with copies of
/// `replacement`, respecting shadowing by quantifier variables, FROM
/// variables, and WITH definitions. Used to inline WITH clauses before
/// binding.
void SubstituteIdent(AstNode* node, const std::string& name,
                     const AstNode& replacement);

}  // namespace tmdb

#endif  // TMDB_SEMA_BINDER_H_
