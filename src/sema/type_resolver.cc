#include "sema/type_resolver.h"

#include <utility>
#include <vector>

namespace tmdb {

Result<Type> ResolveTypeAst(const TypeAst& ast, const Catalog& catalog) {
  switch (ast.kind) {
    case TypeAst::Kind::kInt:
      return Type::Int();
    case TypeAst::Kind::kReal:
      return Type::Real();
    case TypeAst::Kind::kString:
      return Type::String();
    case TypeAst::Kind::kBool:
      return Type::Bool();
    case TypeAst::Kind::kSet: {
      TMDB_ASSIGN_OR_RETURN(Type elem, ResolveTypeAst(*ast.element, catalog));
      return Type::Set(std::move(elem));
    }
    case TypeAst::Kind::kList: {
      TMDB_ASSIGN_OR_RETURN(Type elem, ResolveTypeAst(*ast.element, catalog));
      return Type::List(std::move(elem));
    }
    case TypeAst::Kind::kTuple: {
      std::vector<Field> fields;
      fields.reserve(ast.field_names.size());
      for (size_t i = 0; i < ast.field_names.size(); ++i) {
        TMDB_ASSIGN_OR_RETURN(Type t,
                              ResolveTypeAst(*ast.field_types[i], catalog));
        fields.push_back({ast.field_names[i], std::move(t)});
      }
      return Type::Tuple(std::move(fields));
    }
    case TypeAst::Kind::kNamed:
      return catalog.GetSort(ast.name);
  }
  return Status::Internal("unhandled type syntax kind");
}

}  // namespace tmdb
