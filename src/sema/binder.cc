#include "sema/binder.h"

#include <utility>

#include "algebra/subplan.h"
#include "base/logging.h"
#include "base/string_util.h"
#include "types/schema_ops.h"

namespace tmdb {

namespace {

Status AtNode(Status s, const AstNode& node) {
  if (s.ok()) return s;
  return Status(s.code(), StrCat(s.message(), " (at line ", node.line,
                                 ", column ", node.column, ")"));
}

BinaryOp ToBinaryOp(AstBinaryOp op) {
  switch (op) {
    case AstBinaryOp::kAdd:
      return BinaryOp::kAdd;
    case AstBinaryOp::kSub:
      return BinaryOp::kSub;
    case AstBinaryOp::kMul:
      return BinaryOp::kMul;
    case AstBinaryOp::kDiv:
      return BinaryOp::kDiv;
    case AstBinaryOp::kEq:
      return BinaryOp::kEq;
    case AstBinaryOp::kNe:
      return BinaryOp::kNe;
    case AstBinaryOp::kLt:
      return BinaryOp::kLt;
    case AstBinaryOp::kLe:
      return BinaryOp::kLe;
    case AstBinaryOp::kGt:
      return BinaryOp::kGt;
    case AstBinaryOp::kGe:
      return BinaryOp::kGe;
    case AstBinaryOp::kAnd:
      return BinaryOp::kAnd;
    case AstBinaryOp::kOr:
      return BinaryOp::kOr;
    case AstBinaryOp::kIn:
      return BinaryOp::kIn;
    case AstBinaryOp::kNotIn:
      return BinaryOp::kNotIn;
    case AstBinaryOp::kUnion:
      return BinaryOp::kUnion;
    case AstBinaryOp::kIntersect:
      return BinaryOp::kIntersect;
    case AstBinaryOp::kDifference:
      return BinaryOp::kDifference;
    case AstBinaryOp::kSubsetEq:
      return BinaryOp::kSubsetEq;
    case AstBinaryOp::kSubset:
      return BinaryOp::kSubset;
    case AstBinaryOp::kSupersetEq:
      return BinaryOp::kSupersetEq;
    case AstBinaryOp::kSuperset:
      return BinaryOp::kSuperset;
  }
  return BinaryOp::kEq;
}

AggFunc ToAggFunc(AstAggFunc func) {
  switch (func) {
    case AstAggFunc::kCount:
      return AggFunc::kCount;
    case AstAggFunc::kSum:
      return AggFunc::kSum;
    case AstAggFunc::kAvg:
      return AggFunc::kAvg;
    case AstAggFunc::kMin:
      return AggFunc::kMin;
    case AstAggFunc::kMax:
      return AggFunc::kMax;
  }
  return AggFunc::kCount;
}

/// Applies WITH definitions to a clause expression by textual inlining
/// (later definitions first, so chains like WITH a = ... WITH b = f(a)
/// resolve if written in dependency order).
void InlineWithDefs(AstNode* clause, const std::vector<AstWithDef>& defs) {
  for (auto it = defs.rbegin(); it != defs.rend(); ++it) {
    SubstituteIdent(clause, it->name, *it->expr);
  }
}

}  // namespace

void SubstituteIdent(AstNode* node, const std::string& name,
                     const AstNode& replacement) {
  switch (node->kind) {
    case AstKind::kLiteral:
      return;
    case AstKind::kIdent:
      if (node->name == name) {
        AstPtr copy = CloneAst(replacement);
        *node = std::move(*copy);
      }
      return;
    case AstKind::kQuantifier: {
      SubstituteIdent(node->children[0].get(), name, replacement);
      if (node->name != name) {  // quantifier variable shadows
        SubstituteIdent(node->children[1].get(), name, replacement);
      }
      return;
    }
    case AstKind::kSfw: {
      bool shadowed = false;
      for (AstFromBinding& binding : node->from) {
        SubstituteIdent(binding.operand.get(), name, replacement);
        if (binding.var == name) shadowed = true;
      }
      // WITH definitions with the same name also shadow within the block.
      for (AstWithDef& def : node->select_with) {
        SubstituteIdent(def.expr.get(), name, replacement);
        if (def.name == name) shadowed = true;
      }
      for (AstWithDef& def : node->where_with) {
        SubstituteIdent(def.expr.get(), name, replacement);
        if (def.name == name) shadowed = true;
      }
      if (!shadowed) {
        if (node->select_expr != nullptr) {
          SubstituteIdent(node->select_expr.get(), name, replacement);
        }
        if (node->where_expr != nullptr) {
          SubstituteIdent(node->where_expr.get(), name, replacement);
        }
      }
      return;
    }
    default:
      for (AstPtr& child : node->children) {
        SubstituteIdent(child.get(), name, replacement);
      }
      return;
  }
}

const Expr* Binder::Scope::Lookup(const std::string& name) const {
  for (const Scope* s = this; s != nullptr; s = s->parent) {
    for (const auto& [n, e] : s->vars) {
      if (n == name) return &e;
    }
  }
  return nullptr;
}

std::string Binder::FreshName(const std::string& base) {
  return StrCat("_", base, fresh_counter_++);
}

Result<LogicalOpPtr> Binder::BindQuery(const AstNode& ast) {
  Scope empty;
  if (ast.kind == AstKind::kSfw) {
    return BindSfw(ast, empty);
  }
  TMDB_ASSIGN_OR_RETURN(Expr expr, BindExpr(ast, empty));
  if (!expr.type().is_collection()) {
    return AtNode(Status::TypeError(StrCat(
                      "top-level query must produce a set, got ",
                      expr.type().ToString())),
                  ast);
  }
  return LogicalOp::ExprSource(std::move(expr));
}

Result<Expr> Binder::BindExpression(const AstNode& ast) {
  Scope empty;
  return BindExpr(ast, empty);
}

Result<LogicalOpPtr> Binder::BindFromOperand(const AstNode& operand,
                                             const Scope& scope) {
  // A bare identifier resolves to an in-scope variable first, then a table.
  if (operand.kind == AstKind::kIdent && scope.Lookup(operand.name) == nullptr &&
      catalog_ != nullptr && catalog_->HasTable(operand.name)) {
    TMDB_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                          catalog_->GetTable(operand.name));
    return LogicalOp::Scan(std::move(table));
  }
  TMDB_ASSIGN_OR_RETURN(Expr expr, BindExpr(operand, scope));
  if (!expr.type().is_collection()) {
    return AtNode(Status::TypeError(
                      StrCat("FROM operand must be a set or list, got ",
                             expr.type().ToString())),
                  operand);
  }
  return LogicalOp::ExprSource(std::move(expr));
}

Result<LogicalOpPtr> Binder::BindSfw(const AstNode& sfw, const Scope& scope) {
  TMDB_CHECK(sfw.kind == AstKind::kSfw);
  if (sfw.from.empty()) {
    return AtNode(Status::ParseError("SFW block without FROM bindings"), sfw);
  }

  // Bind the FROM sources. Each operand may reference enclosing-block
  // variables (correlation) but not earlier variables of the same block —
  // dependent FROM lists would require an apply operator the paper does
  // not use.
  std::vector<LogicalOpPtr> sources;
  sources.reserve(sfw.from.size());
  for (const AstFromBinding& binding : sfw.from) {
    TMDB_ASSIGN_OR_RETURN(LogicalOpPtr source,
                          BindFromOperand(*binding.operand, scope));
    sources.push_back(std::move(source));
  }

  LogicalOpPtr plan;
  Scope block_scope;
  block_scope.parent = &scope;
  std::string row_var;

  if (sfw.from.size() == 1) {
    plan = sources[0];
    row_var = sfw.from[0].var;
    block_scope.vars.emplace_back(
        row_var, Expr::Var(row_var, plan->output_type()));
  } else {
    // Multi-operand FROM: cross-join the sources into one combined row.
    // Each source is first wrapped in a renaming Map that qualifies its
    // attributes with the iteration variable ("x.b", "y.b"), so same-named
    // attributes across operands cannot collide; each variable then becomes
    // a projection of the combined row back onto its operand's attributes.
    for (size_t i = 0; i < sfw.from.size(); ++i) {
      for (size_t j = 0; j < i; ++j) {
        if (sfw.from[i].var == sfw.from[j].var) {
          return AtNode(Status::InvalidArgument(
                            StrCat("duplicate FROM variable '",
                                   sfw.from[i].var, "'")),
                        sfw);
        }
      }
    }
    std::vector<LogicalOpPtr> renamed;
    renamed.reserve(sources.size());
    for (size_t i = 0; i < sources.size(); ++i) {
      const Type& source_type = sources[i]->output_type();
      if (!source_type.is_tuple()) {
        return AtNode(
            Status::Unsupported(
                "multi-operand FROM requires tuple-shaped operands"),
            sfw);
      }
      const std::string& v = sfw.from[i].var;
      Expr var_expr = Expr::Var(v, source_type);
      std::vector<std::string> names;
      std::vector<Expr> fields;
      for (const Field& f : source_type.fields()) {
        names.push_back(v + "." + f.name);
        TMDB_ASSIGN_OR_RETURN(Expr field, Expr::Field(var_expr, f.name));
        fields.push_back(std::move(field));
      }
      TMDB_ASSIGN_OR_RETURN(
          Expr tuple, Expr::MakeTuple(std::move(names), std::move(fields)));
      auto mapped = LogicalOp::Map(sources[i], v, std::move(tuple));
      if (!mapped.ok()) return AtNode(mapped.status(), sfw);
      renamed.push_back(std::move(mapped).value());
    }
    plan = renamed[0];
    for (size_t i = 1; i < renamed.size(); ++i) {
      auto joined = LogicalOp::Join(plan, renamed[i], FreshName("l"),
                                    FreshName("r"), Expr::True());
      if (!joined.ok()) return AtNode(joined.status(), sfw);
      plan = std::move(joined).value();
    }
    row_var = FreshName("row");
    Expr row = Expr::Var(row_var, plan->output_type());
    for (size_t i = 0; i < sfw.from.size(); ++i) {
      const Type& source_type = sources[i]->output_type();
      const std::string& v = sfw.from[i].var;
      std::vector<std::string> names;
      std::vector<Expr> accessors;
      for (const Field& f : source_type.fields()) {
        names.push_back(f.name);
        TMDB_ASSIGN_OR_RETURN(Expr field, Expr::Field(row, v + "." + f.name));
        accessors.push_back(std::move(field));
      }
      TMDB_ASSIGN_OR_RETURN(
          Expr tuple, Expr::MakeTuple(std::move(names), std::move(accessors)));
      block_scope.vars.emplace_back(v, std::move(tuple));
    }
  }

  // WHERE clause (with WITH definitions inlined).
  if (sfw.where_expr != nullptr) {
    AstPtr where = CloneAst(*sfw.where_expr);
    InlineWithDefs(where.get(), sfw.where_with);
    TMDB_ASSIGN_OR_RETURN(Expr pred, BindExpr(*where, block_scope));
    if (!pred.type().is_bool()) {
      return AtNode(Status::TypeError(StrCat(
                        "WHERE clause must be boolean, got ",
                        pred.type().ToString())),
                    *sfw.where_expr);
    }
    auto selected = LogicalOp::Select(plan, row_var, std::move(pred));
    if (!selected.ok()) return AtNode(selected.status(), sfw);
    plan = std::move(selected).value();
  }

  // SELECT clause.
  AstPtr select = CloneAst(*sfw.select_expr);
  InlineWithDefs(select.get(), sfw.select_with);
  TMDB_ASSIGN_OR_RETURN(Expr result, BindExpr(*select, block_scope));
  auto mapped = LogicalOp::Map(plan, row_var, std::move(result));
  if (!mapped.ok()) return AtNode(mapped.status(), sfw);
  return std::move(mapped).value();
}

Result<Expr> Binder::BindExpr(const AstNode& ast, const Scope& scope) {
  switch (ast.kind) {
    case AstKind::kLiteral:
      return Expr::Literal(ast.literal);
    case AstKind::kIdent: {
      if (const Expr* accessor = scope.Lookup(ast.name)) {
        return *accessor;
      }
      if (catalog_ != nullptr && catalog_->HasTable(ast.name)) {
        // A table used as a set value (e.g. `x IN EMP`).
        TMDB_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                              catalog_->GetTable(ast.name));
        TMDB_ASSIGN_OR_RETURN(LogicalOpPtr scan,
                              LogicalOp::Scan(std::move(table)));
        return PlanSubplan::MakeExpr(std::move(scan), {});
      }
      return AtNode(
          Status::NotFound(StrCat("unbound identifier '", ast.name, "'")),
          ast);
    }
    case AstKind::kFieldAccess: {
      TMDB_ASSIGN_OR_RETURN(Expr base, BindExpr(*ast.children[0], scope));
      auto field = Expr::Field(std::move(base), ast.name);
      if (!field.ok()) return AtNode(field.status(), ast);
      return std::move(field).value();
    }
    case AstKind::kBinary: {
      TMDB_ASSIGN_OR_RETURN(Expr lhs, BindExpr(*ast.children[0], scope));
      TMDB_ASSIGN_OR_RETURN(Expr rhs, BindExpr(*ast.children[1], scope));
      auto bin = Expr::Binary(ToBinaryOp(ast.binary_op), std::move(lhs),
                              std::move(rhs));
      if (!bin.ok()) return AtNode(bin.status(), ast);
      return std::move(bin).value();
    }
    case AstKind::kUnary: {
      TMDB_ASSIGN_OR_RETURN(Expr operand, BindExpr(*ast.children[0], scope));
      const UnaryOp op = ast.unary_op == AstUnaryOp::kNot ? UnaryOp::kNot
                                                          : UnaryOp::kNeg;
      auto un = Expr::Unary(op, std::move(operand));
      if (!un.ok()) return AtNode(un.status(), ast);
      return std::move(un).value();
    }
    case AstKind::kQuantifier: {
      TMDB_ASSIGN_OR_RETURN(Expr coll, BindExpr(*ast.children[0], scope));
      if (!coll.type().is_collection()) {
        return AtNode(Status::TypeError(StrCat(
                          "quantifier range must be a set or list, got ",
                          coll.type().ToString())),
                      ast);
      }
      Scope inner;
      inner.parent = &scope;
      inner.vars.emplace_back(ast.name,
                              Expr::Var(ast.name, coll.type().element()));
      TMDB_ASSIGN_OR_RETURN(Expr pred, BindExpr(*ast.children[1], inner));
      const QuantKind kind = ast.quant_kind == AstQuantKind::kExists
                                 ? QuantKind::kExists
                                 : QuantKind::kForAll;
      auto quant = Expr::Quantifier(kind, ast.name, std::move(coll),
                                    std::move(pred));
      if (!quant.ok()) return AtNode(quant.status(), ast);
      return std::move(quant).value();
    }
    case AstKind::kAggregate: {
      TMDB_ASSIGN_OR_RETURN(Expr arg, BindExpr(*ast.children[0], scope));
      auto agg = Expr::Aggregate(ToAggFunc(ast.agg_func), std::move(arg));
      if (!agg.ok()) return AtNode(agg.status(), ast);
      return std::move(agg).value();
    }
    case AstKind::kTupleCtor: {
      std::vector<Expr> elems;
      elems.reserve(ast.children.size());
      for (const AstPtr& child : ast.children) {
        TMDB_ASSIGN_OR_RETURN(Expr e, BindExpr(*child, scope));
        elems.push_back(std::move(e));
      }
      auto tuple = Expr::MakeTuple(ast.ctor_names, std::move(elems));
      if (!tuple.ok()) return AtNode(tuple.status(), ast);
      return std::move(tuple).value();
    }
    case AstKind::kSetCtor: {
      std::vector<Expr> elems;
      elems.reserve(ast.children.size());
      for (const AstPtr& child : ast.children) {
        TMDB_ASSIGN_OR_RETURN(Expr e, BindExpr(*child, scope));
        elems.push_back(std::move(e));
      }
      auto set = Expr::MakeSet(std::move(elems));
      if (!set.ok()) return AtNode(set.status(), ast);
      return std::move(set).value();
    }
    case AstKind::kUnnestCall: {
      TMDB_ASSIGN_OR_RETURN(Expr arg, BindExpr(*ast.children[0], scope));
      auto unnest = Expr::Unary(UnaryOp::kUnnest, std::move(arg));
      if (!unnest.ok()) return AtNode(unnest.status(), ast);
      return std::move(unnest).value();
    }
    case AstKind::kSfw: {
      TMDB_ASSIGN_OR_RETURN(LogicalOpPtr plan, BindSfw(ast, scope));
      std::set<std::string> free = PlanFreeVars(*plan);
      return PlanSubplan::MakeExpr(std::move(plan), std::move(free));
    }
  }
  return Status::Internal("unhandled AST kind in BindExpr");
}

}  // namespace tmdb
