#ifndef TMDB_CORE_DATABASE_H_
#define TMDB_CORE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "base/fault_injector.h"
#include "base/result.h"
#include "catalog/catalog.h"
#include "exec/exec_context.h"
#include "optimizer/planner.h"
#include "parser/statement.h"
#include "translate/strategies.h"
#include "values/value.h"

namespace tmdb {

class Executor;

/// Rows + execution metadata returned by Database::Run.
struct QueryResult {
  std::vector<Value> rows;
  ExecStats stats;
  /// The strategy that produced `rows`. Under strategy = auto this is the
  /// cost model's pick (or the switch target after an adaptive re-plan),
  /// never kAuto itself.
  Strategy strategy = Strategy::kNestJoin;
  /// True when the query ran with strategy = auto.
  bool auto_strategy = false;

  /// One row per line.
  std::string ToString(size_t max_rows = 50) const;
};

/// Outcome of one statement executed by Database::Execute.
struct StatementResult {
  bool is_query = false;
  QueryResult query;    // populated when is_query
  std::string message;  // DDL/DML outcome ("created table R", ...)

  std::string ToString(size_t max_rows = 50) const;
};

/// How Database::Run processes a query.
struct RunOptions {
  Strategy strategy = Strategy::kNestJoin;
  /// Join implementation policy for the physical planner.
  JoinImpl join_impl = JoinImpl::kAuto;
  /// Per-query max-parallelism cap (hash/nest join builds and probes):
  /// at most this many threads of the process-wide work-stealing
  /// scheduler run this query's morsels at once. A cap, not a pool size —
  /// concurrent queries share one worker pool sized to the hardware.
  /// 1 = serial execution; any value produces identical results.
  int num_threads = 1;

  // Resource governance (0 = unlimited). A query over a limit unwinds
  // cleanly with kDeadlineExceeded / kResourceExhausted; the database
  // stays usable.
  /// Wall-clock timeout for the execution phase, in milliseconds.
  int64_t timeout_ms = 0;
  /// Budget for memory materialised while executing (built values plus
  /// operator build tables).
  uint64_t memory_budget_bytes = 0;
  /// Budget on rows processed (emitted + materialised), bounding work.
  uint64_t max_rows = 0;

  /// Budget for the per-query correlated-subplan memo (REPL `\subcache`).
  /// Results of nested subqueries are cached per distinct correlation
  /// value, charged against memory_budget_bytes, and LRU-evicted under
  /// pressure. 0 disables memoization (every outer row re-evaluates its
  /// subplan); the default is 16 MiB.
  uint64_t subplan_cache_bytes = 16ull << 20;

  // Spill-to-disk (graceful degradation under memory pressure). With
  // enable_spill, a hash/nest-join build that trips memory_budget_bytes
  // partitions to disk Grace-style and completes with results bit-identical
  // to the unbudgeted run; with it off the query fails fast with
  // kResourceExhausted. Spill files live in a unique per-query directory
  // removed on every outcome.
  /// Off by default.
  bool enable_spill = false;
  /// Directory for spill files; empty = the system temp directory.
  std::string spill_dir;
  /// Spill block size (the unit of I/O, checksumming and checkpointing);
  /// 0 = 64 KiB.
  size_t spill_block_bytes = 0;

  /// Columnar execution of the hot scan/filter/join loops (scans over flat
  /// tables expose ColumnBatches, selections run compiled column
  /// predicates, hash joins probe raw-key tables). Results and stats are
  /// bit-identical with it off; the switch exists for A/B comparison and
  /// diagnosis (REPL `\columnar`).
  bool enable_columnar = true;

  // Cost model + adaptive switch (strategy = auto only).
  /// Reservoir size for per-table sampling; estimates are deterministic for
  /// a fixed (rows, seed, data) triple.
  size_t cost_sample_rows = 256;
  uint64_t cost_sample_seed = 0x5EEDC0DE;
  /// When the cost model picks memoized naive, the run observes the actual
  /// subplan-cache hit ratio and re-plans with the best unnested strategy
  /// once `predicted − observed ≥ adaptive_switch_threshold` (evaluated
  /// every `adaptive_probe_acquires` cache probes). At most one switch per
  /// query; attempt 2 runs against the *remaining* timeout / max_rows
  /// budgets and the work counters accumulate across both attempts.
  double adaptive_switch_threshold = 0.4;
  uint64_t adaptive_probe_acquires = 64;

  /// Deterministic fault injector consulted at every guard checkpoint and
  /// every spill I/O (tests only). Not owned; must outlive the call.
  FaultInjector* fault_injector = nullptr;
};

/// The public facade: an in-memory TM-style complex-object database with
/// the paper's nested-query optimizer.
///
///   Database db;
///   db.CreateTable("R", Type::Tuple({{"a", Type::Int()}, ...}));
///   db.Insert("R", row);
///   auto result = db.Run("SELECT x FROM R x WHERE ...");
///
/// Strategies select how nested queries are processed — naive nested-loop,
/// Kim's (buggy) algorithm, Ganski–Wong outerjoins, or the paper's nest
/// join / flat-join rewriting (default).
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog* catalog() { return &catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Creates a table with a tuple schema.
  Result<std::shared_ptr<Table>> CreateTable(const std::string& name,
                                             Type schema);
  /// Inserts one row into `table`.
  Status Insert(const std::string& table, Value row);

  /// Parses, binds, rewrites (per options.strategy), physically plans and
  /// executes `query`.
  Result<QueryResult> Run(const std::string& query,
                          RunOptions options = RunOptions());

  /// As Run, but executes on the caller's executor instead of a throwaway
  /// one. The governance knobs in `options` are (re)applied to `executor`
  /// for this call. This is the server path: each connection keeps one
  /// executor for its whole life, so worker pools are reused across the
  /// session's queries and another thread can cancel the in-flight query
  /// via executor->guard()->Cancel().
  Result<QueryResult> RunWith(const std::string& query,
                              const RunOptions& options, Executor* executor);

  /// Executes one statement of the data language: CREATE TABLE,
  /// DEFINE SORT, INSERT INTO ... VALUES, or a query expression.
  Result<StatementResult> Execute(const std::string& statement,
                                  RunOptions options = RunOptions());

  /// As Execute, on the caller's (reused) executor — see RunWith.
  Result<StatementResult> ExecuteWith(const std::string& statement,
                                      const RunOptions& options,
                                      Executor* executor);

  /// Executes a ';'-separated script, stopping at the first error.
  Result<std::vector<StatementResult>> ExecuteScript(
      const std::string& script, RunOptions options = RunOptions());

  /// Produces the logical plan for `query` under `strategy` without
  /// executing. `report` (optional) receives the unnesting decisions.
  /// kAuto resolves through the cost model (default sampling options) and
  /// returns the chosen strategy's rewrite.
  Result<LogicalOpPtr> Plan(const std::string& query, Strategy strategy,
                            UnnestReport* report = nullptr);

  /// Human-readable explanation: naive plan, rewritten plan, and the
  /// Table 2 classifications that drove the rewrite.
  Result<std::string> Explain(const std::string& query,
                              Strategy strategy = Strategy::kNestJoin);

 private:
  /// `executor` null = build a throwaway one for this statement.
  Result<StatementResult> ExecuteParsed(const Statement& statement,
                                        const RunOptions& options,
                                        Executor* executor = nullptr);
  /// The single query path behind Run/RunWith/Execute: binds `ast`,
  /// resolves strategy = auto through the cost model, rewrites, plans and
  /// runs on `executor` (never null here).
  Result<QueryResult> RunQueryAst(const AstNode& ast,
                                  const RunOptions& options,
                                  Executor* executor);
  /// The strategy = auto path: costs the alternatives (sampling under the
  /// run's guard), executes the winner with the adaptive controller armed,
  /// and on a kStrategySwitch unwind re-plans once with the best unnested
  /// alternative against the remaining budgets.
  Result<QueryResult> RunAuto(const LogicalOpPtr& naive,
                              const RunOptions& options, Executor* executor);
  Result<std::string> ExplainAst(const AstNode& ast,
                                 const RunOptions& options);

  Catalog catalog_;
};

}  // namespace tmdb

#endif  // TMDB_CORE_DATABASE_H_
