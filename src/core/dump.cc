#include "core/dump.h"

#include <vector>

#include "base/string_util.h"

namespace tmdb {

Result<std::string> ValueToLiteral(const Value& value) {
  switch (value.kind()) {
    case ValueKind::kNull:
      return Status::Unsupported("NULL has no literal syntax");
    case ValueKind::kBool:
      return std::string(value.AsBool() ? "true" : "false");
    case ValueKind::kInt:
      return std::to_string(value.AsInt());
    case ValueKind::kReal: {
      std::string s = StrCat(value.AsReal());
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case ValueKind::kString:
      return "\"" + EscapeString(value.AsString()) + "\"";
    case ValueKind::kTuple: {
      if (value.TupleSize() == 0) {
        return Status::Unsupported("empty tuples have no literal syntax");
      }
      std::vector<std::string> parts;
      parts.reserve(value.TupleSize());
      for (size_t i = 0; i < value.TupleSize(); ++i) {
        TMDB_ASSIGN_OR_RETURN(std::string v,
                              ValueToLiteral(value.FieldValue(i)));
        parts.push_back(value.FieldName(i) + " = " + v);
      }
      return "(" + Join(parts, ", ") + ")";
    }
    case ValueKind::kSet: {
      std::vector<std::string> parts;
      parts.reserve(value.NumElements());
      for (const Value& e : value.Elements()) {
        TMDB_ASSIGN_OR_RETURN(std::string v, ValueToLiteral(e));
        parts.push_back(std::move(v));
      }
      return "{" + Join(parts, ", ") + "}";
    }
    case ValueKind::kList:
      return Status::Unsupported("lists have no literal syntax");
  }
  return Status::Internal("unhandled value kind");
}

Result<std::string> TypeToDdl(const Type& type) {
  switch (type.kind()) {
    case TypeKind::kBool:
      return std::string("BOOL");
    case TypeKind::kInt:
      return std::string("INT");
    case TypeKind::kReal:
      return std::string("REAL");
    case TypeKind::kString:
      return std::string("STRING");
    case TypeKind::kSet: {
      TMDB_ASSIGN_OR_RETURN(std::string elem, TypeToDdl(type.element()));
      return "P(" + elem + ")";
    }
    case TypeKind::kList: {
      TMDB_ASSIGN_OR_RETURN(std::string elem, TypeToDdl(type.element()));
      return "L(" + elem + ")";
    }
    case TypeKind::kTuple: {
      std::vector<std::string> parts;
      parts.reserve(type.fields().size());
      for (const Field& f : type.fields()) {
        TMDB_ASSIGN_OR_RETURN(std::string t, TypeToDdl(f.type));
        parts.push_back(f.name + " : " + t);
      }
      return "(" + Join(parts, ", ") + ")";
    }
    case TypeKind::kAny:
      return Status::Unsupported("ANY has no DDL syntax");
  }
  return Status::Internal("unhandled type kind");
}

Result<std::string> DumpScript(const Database& db) {
  std::string out;
  for (const std::string& name : db.catalog().TableNames()) {
    TMDB_ASSIGN_OR_RETURN(auto table, db.catalog().GetTable(name));
    TMDB_ASSIGN_OR_RETURN(std::string schema, TypeToDdl(table->schema()));
    out += StrCat("CREATE TABLE ", name, " ", schema, ";\n");
    if (table->NumRows() > 0) {
      out += StrCat("INSERT INTO ", name, " VALUES\n");
      for (size_t i = 0; i < table->rows().size(); ++i) {
        TMDB_ASSIGN_OR_RETURN(std::string row,
                              ValueToLiteral(table->rows()[i]));
        out += "  " + row;
        out += i + 1 < table->rows().size() ? ",\n" : ";\n";
      }
    }
  }
  return out;
}

}  // namespace tmdb
