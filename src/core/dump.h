#ifndef TMDB_CORE_DUMP_H_
#define TMDB_CORE_DUMP_H_

#include <string>

#include "base/result.h"
#include "core/database.h"
#include "types/type.h"
#include "values/value.h"

namespace tmdb {

/// Renders a value in the *source syntax* of the data language, so that it
/// round-trips through the parser: tuples as `(a = ..., b = ...)`, sets as
/// `{...}`, strings quoted/escaped, reals always with a decimal point.
/// NULL and lists have no literal syntax and yield Unsupported.
Result<std::string> ValueToLiteral(const Value& value);

/// Renders a type in the DDL syntax of CREATE TABLE / DEFINE SORT
/// (`INT`, `P(...)`, `(a : INT, ...)`). ANY has no syntax → Unsupported.
Result<std::string> TypeToDdl(const Type& type);

/// Serialises the whole database — every table schema and every row — as a
/// script of CREATE TABLE / INSERT statements that ExecuteScript replays
/// into an identical database. Sorts are inlined into table schemas (the
/// catalog does not track which attribute used which sort).
Result<std::string> DumpScript(const Database& db);

}  // namespace tmdb

#endif  // TMDB_CORE_DUMP_H_
