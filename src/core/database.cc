#include "core/database.h"

#include <chrono>
#include <utility>

#include "base/string_util.h"
#include "exec/executor.h"
#include "optimizer/cost_model.h"
#include "parser/parser.h"
#include "parser/statement.h"
#include "sema/binder.h"
#include "sema/type_resolver.h"

namespace tmdb {
namespace {

// Applies the RunOptions governance knobs to a freshly built executor.
void ApplyGovernance(const RunOptions& options, Executor* executor) {
  GuardLimits limits;
  limits.timeout_ms = options.timeout_ms;
  limits.memory_budget_bytes = options.memory_budget_bytes;
  limits.max_rows = options.max_rows;
  executor->set_limits(limits);
  executor->set_fault_injector(options.fault_injector);
  executor->set_spill_options(options.enable_spill, options.spill_dir,
                              options.spill_block_bytes);
  executor->set_subplan_cache_bytes(options.subplan_cache_bytes);
}

Planner MakePlanner(const RunOptions& options) {
  PlannerOptions planner_options;
  planner_options.join_impl = options.join_impl;
  planner_options.num_threads = options.num_threads;
  planner_options.spill_available = options.enable_spill;
  planner_options.enable_columnar = options.enable_columnar;
  return Planner(planner_options);
}

CostModelOptions MakeCostModelOptions(const RunOptions& options,
                                      QueryGuard* guard) {
  CostModelOptions cm;
  cm.sample_rows = options.cost_sample_rows;
  cm.sample_seed = options.cost_sample_seed;
  cm.memo_enabled = options.subplan_cache_bytes > 0;
  cm.guard = guard;
  return cm;
}

}  // namespace

std::string QueryResult::ToString(size_t max_rows) const {
  std::string out = StrCat(rows.size(), " row(s), strategy = ",
                           StrategyName(strategy),
                           auto_strategy ? " (auto)" : "", "\n");
  size_t shown = 0;
  for (const Value& row : rows) {
    if (shown == max_rows) {
      out += StrCat("  ... (", rows.size() - shown, " more)\n");
      break;
    }
    out += "  " + row.ToString() + "\n";
    ++shown;
  }
  return out;
}

Result<std::shared_ptr<Table>> Database::CreateTable(const std::string& name,
                                                     Type schema) {
  return catalog_.CreateTable(name, std::move(schema));
}

Status Database::Insert(const std::string& table, Value row) {
  TMDB_ASSIGN_OR_RETURN(std::shared_ptr<Table> t, catalog_.GetTable(table));
  return t->Insert(std::move(row));
}

Result<LogicalOpPtr> Database::Plan(const std::string& query,
                                    Strategy strategy, UnnestReport* report) {
  TMDB_ASSIGN_OR_RETURN(AstPtr ast, ParseQuery(query));
  Binder binder(&catalog_);
  TMDB_ASSIGN_OR_RETURN(LogicalOpPtr naive, binder.BindQuery(*ast));
  if (strategy == Strategy::kAuto) {
    CostModel model;
    TMDB_ASSIGN_OR_RETURN(StrategyDecision decision,
                          ChooseStrategy(naive, model));
    return PlanForStrategy(naive, decision.chosen, report);
  }
  return PlanForStrategy(naive, strategy, report);
}

Result<QueryResult> Database::Run(const std::string& query,
                                  RunOptions options) {
  Executor executor(options.num_threads);
  return RunWith(query, options, &executor);
}

Result<QueryResult> Database::RunWith(const std::string& query,
                                      const RunOptions& options,
                                      Executor* executor) {
  TMDB_ASSIGN_OR_RETURN(AstPtr ast, ParseQuery(query));
  return RunQueryAst(*ast, options, executor);
}

Result<QueryResult> Database::RunQueryAst(const AstNode& ast,
                                          const RunOptions& options,
                                          Executor* executor) {
  Binder binder(&catalog_);
  TMDB_ASSIGN_OR_RETURN(LogicalOpPtr naive, binder.BindQuery(ast));
  executor->set_num_threads(options.num_threads);
  ApplyGovernance(options, executor);
  executor->mutable_stats()->Reset();
  if (options.strategy == Strategy::kAuto) {
    return RunAuto(naive, options, executor);
  }
  TMDB_ASSIGN_OR_RETURN(LogicalOpPtr plan,
                        PlanForStrategy(naive, options.strategy));
  TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr physical, MakePlanner(options).Plan(plan));
  TMDB_ASSIGN_OR_RETURN(std::vector<Value> rows,
                        executor->RunPhysical(physical.get()));
  QueryResult result;
  result.rows = std::move(rows);
  result.stats = executor->stats();
  result.stats.strategy_chosen = StrategyStatCode(options.strategy);
  result.strategy = options.strategy;
  return result;
}

Result<QueryResult> Database::RunAuto(const LogicalOpPtr& naive,
                                      const RunOptions& options,
                                      Executor* executor) {
  // Sampling runs under the run's own guard window: the deadline starts
  // here, cancellation reaches the planning phase, and planning checkpoints
  // count toward guard_checkpoints — the cost model is part of the query.
  const auto start = std::chrono::steady_clock::now();
  executor->ArmPlanningGuard();
  CostModel model(MakeCostModelOptions(options, executor->guard()));
  Result<StrategyDecision> decision = ChooseStrategy(naive, model);
  if (!decision.ok()) {
    executor->AbortPlanning();
    return decision.status();
  }
  Strategy chosen = decision->chosen;
  Result<LogicalOpPtr> plan = PlanForStrategy(naive, chosen);
  if (!plan.ok()) {
    executor->AbortPlanning();
    return plan.status();
  }
  Result<PhysicalOpPtr> physical = MakePlanner(options).Plan(*plan);
  if (!physical.ok()) {
    executor->AbortPlanning();
    return physical.status();
  }
  // Arm the mid-query switch only when it has somewhere to go: the model
  // picked memoized naive on the promise of a high hit ratio, and at least
  // one unnested alternative was feasible.
  Strategy fallback = Strategy::kNestJoin;
  const bool can_switch = decision->costed && chosen == Strategy::kNaive &&
                          options.subplan_cache_bytes > 0 &&
                          decision->BestUnnested(&fallback);
  if (can_switch) {
    AdaptiveConfig config;
    config.predicted_hit_ratio = decision->est_hit_ratio;
    config.switch_threshold = options.adaptive_switch_threshold;
    config.probe_acquires = options.adaptive_probe_acquires;
    executor->ArmAdaptive(config);
  }
  uint64_t switches = 0;
  Result<std::vector<Value>> rows = executor->RunPhysical(physical->get());
  if (!rows.ok() && rows.status().code() == StatusCode::kStrategySwitch) {
    // The observed hit ratio contradicted the estimate: re-plan the query
    // with the best unnested alternative. Attempt 1's rows are discarded
    // (the fresh run recomputes everything, so results stay bit-identical
    // to a forced run of `fallback`), but its spent work counts: attempt 2
    // sees only the remaining timeout / max_rows budgets, and the stats
    // accumulate across both attempts.
    switches = 1;
    RunOptions remaining = options;
    if (options.timeout_ms > 0) {
      const int64_t elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      if (elapsed_ms >= options.timeout_ms) {
        return Status::DeadlineExceeded(StrCat(
            "query exceeded timeout of ", options.timeout_ms, " ms"));
      }
      remaining.timeout_ms = options.timeout_ms - elapsed_ms;
    }
    if (options.max_rows > 0) {
      const uint64_t consumed =
          executor->stats().rows_emitted + executor->stats().rows_built;
      if (consumed >= options.max_rows) {
        return Status::ResourceExhausted(
            StrCat("query processed ", consumed,
                   " rows, over the max_rows budget of ", options.max_rows));
      }
      remaining.max_rows = options.max_rows - consumed;
    }
    ApplyGovernance(remaining, executor);
    chosen = fallback;
    TMDB_ASSIGN_OR_RETURN(LogicalOpPtr replan, PlanForStrategy(naive, chosen));
    TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr rephysical,
                          MakePlanner(options).Plan(replan));
    // No adaptive re-arm: at most one switch per query.
    rows = executor->RunPhysical(rephysical.get());
  }
  TMDB_RETURN_IF_ERROR(rows.status());
  QueryResult result;
  result.rows = std::move(*rows);
  result.stats = executor->stats();
  result.stats.strategy_chosen = StrategyStatCode(chosen);
  result.stats.strategy_switches = switches;
  result.stats.est_distinct_corr = decision->est_distinct_corr;
  result.strategy = chosen;
  result.auto_strategy = true;
  return result;
}

std::string StatementResult::ToString(size_t max_rows) const {
  if (is_query) return query.ToString(max_rows);
  return message + "\n";
}

Result<StatementResult> Database::Execute(const std::string& statement,
                                          RunOptions options) {
  TMDB_ASSIGN_OR_RETURN(StatementPtr parsed, ParseStatement(statement));
  return ExecuteParsed(*parsed, options);
}

Result<StatementResult> Database::ExecuteWith(const std::string& statement,
                                              const RunOptions& options,
                                              Executor* executor) {
  TMDB_ASSIGN_OR_RETURN(StatementPtr parsed, ParseStatement(statement));
  return ExecuteParsed(*parsed, options, executor);
}

Result<std::vector<StatementResult>> Database::ExecuteScript(
    const std::string& script, RunOptions options) {
  TMDB_ASSIGN_OR_RETURN(std::vector<StatementPtr> statements,
                        ParseScript(script));
  std::vector<StatementResult> results;
  results.reserve(statements.size());
  for (const StatementPtr& statement : statements) {
    TMDB_ASSIGN_OR_RETURN(StatementResult result,
                          ExecuteParsed(*statement, options));
    results.push_back(std::move(result));
  }
  return results;
}

Result<StatementResult> Database::ExecuteParsed(const Statement& statement,
                                                const RunOptions& options,
                                                Executor* executor) {
  StatementResult result;
  switch (statement.kind) {
    case Statement::Kind::kQuery: {
      Executor local(options.num_threads);
      if (executor == nullptr) executor = &local;
      TMDB_ASSIGN_OR_RETURN(result.query,
                            RunQueryAst(*statement.query, options, executor));
      result.is_query = true;
      return result;
    }
    case Statement::Kind::kCreateTable: {
      TMDB_ASSIGN_OR_RETURN(Type schema,
                            ResolveTypeAst(*statement.schema, catalog_));
      TMDB_RETURN_IF_ERROR(
          catalog_.CreateTable(statement.target, std::move(schema)).status());
      result.message = StrCat("created table ", statement.target);
      return result;
    }
    case Statement::Kind::kDefineSort: {
      TMDB_ASSIGN_OR_RETURN(Type sort,
                            ResolveTypeAst(*statement.schema, catalog_));
      TMDB_RETURN_IF_ERROR(catalog_.DefineSort(statement.target,
                                               std::move(sort)));
      result.message = StrCat("defined sort ", statement.target);
      return result;
    }
    case Statement::Kind::kInsert: {
      TMDB_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                            catalog_.GetTable(statement.target));
      Binder binder(&catalog_);
      Executor executor;
      Environment empty;
      size_t inserted = 0;
      for (const AstPtr& value_ast : statement.values) {
        TMDB_ASSIGN_OR_RETURN(Expr expr, binder.BindExpression(*value_ast));
        TMDB_ASSIGN_OR_RETURN(Value row, EvalExpr(expr, empty, &executor));
        TMDB_RETURN_IF_ERROR(table->Insert(std::move(row)));
        ++inserted;
      }
      result.message = StrCat("inserted ", inserted, " row(s) into ",
                              statement.target);
      return result;
    }
    case Statement::Kind::kExplain: {
      TMDB_ASSIGN_OR_RETURN(result.message,
                            ExplainAst(*statement.query, options));
      return result;
    }
  }
  return Status::Internal("unhandled statement kind");
}

Result<std::string> Database::Explain(const std::string& query,
                                      Strategy strategy) {
  TMDB_ASSIGN_OR_RETURN(AstPtr ast, ParseQuery(query));
  RunOptions options;
  options.strategy = strategy;
  return ExplainAst(*ast, options);
}

Result<std::string> Database::ExplainAst(const AstNode& ast,
                                         const RunOptions& options) {
  Binder binder(&catalog_);
  TMDB_ASSIGN_OR_RETURN(LogicalOpPtr naive, binder.BindQuery(ast));
  Strategy strategy = options.strategy;
  std::string costing;
  if (strategy == Strategy::kAuto) {
    // Same model, options and seed as RunAuto (minus the guard — EXPLAIN is
    // not governed), so the table shows exactly what a run would choose.
    CostModel model(MakeCostModelOptions(options, nullptr));
    TMDB_ASSIGN_OR_RETURN(StrategyDecision decision,
                          ChooseStrategy(naive, model));
    costing = decision.ToTable();
    strategy = decision.chosen;
  }
  UnnestReport report;
  TMDB_ASSIGN_OR_RETURN(LogicalOpPtr rewritten,
                        PlanForStrategy(naive, strategy, &report));
  Planner planner;
  TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr physical, planner.Plan(rewritten));

  std::string out;
  out += "== query ==\n" + ast.ToString() + "\n";
  out += "\n== naive logical plan ==\n" + naive->ToString();
  if (options.strategy == Strategy::kAuto) {
    out += "\n== strategy costing (auto) ==\n" + costing;
    out += StrCat("\n== rewritten (auto -> ", StrategyName(strategy),
                  ") logical plan ==\n", rewritten->ToString());
  } else {
    out += StrCat("\n== rewritten (", StrategyName(strategy),
                  ") logical plan ==\n", rewritten->ToString());
  }
  if (!report.events.empty()) {
    out += "\n== unnesting decisions (Table 2) ==\n" + report.ToString();
  }
  out += "\n== physical plan ==\n" + physical->ToString();
  return out;
}

}  // namespace tmdb
