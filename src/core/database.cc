#include "core/database.h"

#include <utility>

#include "base/string_util.h"
#include "exec/executor.h"
#include "parser/parser.h"
#include "parser/statement.h"
#include "sema/binder.h"
#include "sema/type_resolver.h"

namespace tmdb {
namespace {

// Applies the RunOptions governance knobs to a freshly built executor.
void ApplyGovernance(const RunOptions& options, Executor* executor) {
  GuardLimits limits;
  limits.timeout_ms = options.timeout_ms;
  limits.memory_budget_bytes = options.memory_budget_bytes;
  limits.max_rows = options.max_rows;
  executor->set_limits(limits);
  executor->set_fault_injector(options.fault_injector);
  executor->set_spill_options(options.enable_spill, options.spill_dir,
                              options.spill_block_bytes);
  executor->set_subplan_cache_bytes(options.subplan_cache_bytes);
}

}  // namespace

std::string QueryResult::ToString(size_t max_rows) const {
  std::string out = StrCat(rows.size(), " row(s), strategy = ",
                           StrategyName(strategy), "\n");
  size_t shown = 0;
  for (const Value& row : rows) {
    if (shown == max_rows) {
      out += StrCat("  ... (", rows.size() - shown, " more)\n");
      break;
    }
    out += "  " + row.ToString() + "\n";
    ++shown;
  }
  return out;
}

Result<std::shared_ptr<Table>> Database::CreateTable(const std::string& name,
                                                     Type schema) {
  return catalog_.CreateTable(name, std::move(schema));
}

Status Database::Insert(const std::string& table, Value row) {
  TMDB_ASSIGN_OR_RETURN(std::shared_ptr<Table> t, catalog_.GetTable(table));
  return t->Insert(std::move(row));
}

Result<LogicalOpPtr> Database::Plan(const std::string& query,
                                    Strategy strategy, UnnestReport* report) {
  TMDB_ASSIGN_OR_RETURN(AstPtr ast, ParseQuery(query));
  Binder binder(&catalog_);
  TMDB_ASSIGN_OR_RETURN(LogicalOpPtr naive, binder.BindQuery(*ast));
  return PlanForStrategy(naive, strategy, report);
}

Result<QueryResult> Database::Run(const std::string& query,
                                  RunOptions options) {
  Executor executor(options.num_threads);
  return RunWith(query, options, &executor);
}

Result<QueryResult> Database::RunWith(const std::string& query,
                                      const RunOptions& options,
                                      Executor* executor) {
  TMDB_ASSIGN_OR_RETURN(LogicalOpPtr logical,
                        Plan(query, options.strategy, nullptr));
  PlannerOptions planner_options;
  planner_options.join_impl = options.join_impl;
  planner_options.num_threads = options.num_threads;
  planner_options.spill_available = options.enable_spill;
  planner_options.enable_columnar = options.enable_columnar;
  Planner planner(planner_options);
  TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr physical, planner.Plan(logical));
  executor->set_num_threads(options.num_threads);
  ApplyGovernance(options, executor);
  executor->mutable_stats()->Reset();
  TMDB_ASSIGN_OR_RETURN(std::vector<Value> rows,
                        executor->RunPhysical(physical.get()));
  QueryResult result;
  result.rows = std::move(rows);
  result.stats = executor->stats();
  result.strategy = options.strategy;
  return result;
}

std::string StatementResult::ToString(size_t max_rows) const {
  if (is_query) return query.ToString(max_rows);
  return message + "\n";
}

Result<StatementResult> Database::Execute(const std::string& statement,
                                          RunOptions options) {
  TMDB_ASSIGN_OR_RETURN(StatementPtr parsed, ParseStatement(statement));
  return ExecuteParsed(*parsed, options);
}

Result<StatementResult> Database::ExecuteWith(const std::string& statement,
                                              const RunOptions& options,
                                              Executor* executor) {
  TMDB_ASSIGN_OR_RETURN(StatementPtr parsed, ParseStatement(statement));
  return ExecuteParsed(*parsed, options, executor);
}

Result<std::vector<StatementResult>> Database::ExecuteScript(
    const std::string& script, RunOptions options) {
  TMDB_ASSIGN_OR_RETURN(std::vector<StatementPtr> statements,
                        ParseScript(script));
  std::vector<StatementResult> results;
  results.reserve(statements.size());
  for (const StatementPtr& statement : statements) {
    TMDB_ASSIGN_OR_RETURN(StatementResult result,
                          ExecuteParsed(*statement, options));
    results.push_back(std::move(result));
  }
  return results;
}

Result<StatementResult> Database::ExecuteParsed(const Statement& statement,
                                                const RunOptions& options,
                                                Executor* executor) {
  StatementResult result;
  switch (statement.kind) {
    case Statement::Kind::kQuery: {
      Binder binder(&catalog_);
      TMDB_ASSIGN_OR_RETURN(LogicalOpPtr naive,
                            binder.BindQuery(*statement.query));
      TMDB_ASSIGN_OR_RETURN(LogicalOpPtr plan,
                            PlanForStrategy(naive, options.strategy));
      PlannerOptions planner_options;
      planner_options.join_impl = options.join_impl;
      planner_options.num_threads = options.num_threads;
      planner_options.spill_available = options.enable_spill;
      planner_options.enable_columnar = options.enable_columnar;
      Planner planner(planner_options);
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr physical, planner.Plan(plan));
      Executor local(options.num_threads);
      if (executor == nullptr) {
        executor = &local;
      } else {
        executor->set_num_threads(options.num_threads);
        executor->mutable_stats()->Reset();
      }
      ApplyGovernance(options, executor);
      TMDB_ASSIGN_OR_RETURN(std::vector<Value> rows,
                            executor->RunPhysical(physical.get()));
      result.is_query = true;
      result.query.rows = std::move(rows);
      result.query.stats = executor->stats();
      result.query.strategy = options.strategy;
      return result;
    }
    case Statement::Kind::kCreateTable: {
      TMDB_ASSIGN_OR_RETURN(Type schema,
                            ResolveTypeAst(*statement.schema, catalog_));
      TMDB_RETURN_IF_ERROR(
          catalog_.CreateTable(statement.target, std::move(schema)).status());
      result.message = StrCat("created table ", statement.target);
      return result;
    }
    case Statement::Kind::kDefineSort: {
      TMDB_ASSIGN_OR_RETURN(Type sort,
                            ResolveTypeAst(*statement.schema, catalog_));
      TMDB_RETURN_IF_ERROR(catalog_.DefineSort(statement.target,
                                               std::move(sort)));
      result.message = StrCat("defined sort ", statement.target);
      return result;
    }
    case Statement::Kind::kInsert: {
      TMDB_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                            catalog_.GetTable(statement.target));
      Binder binder(&catalog_);
      Executor executor;
      Environment empty;
      size_t inserted = 0;
      for (const AstPtr& value_ast : statement.values) {
        TMDB_ASSIGN_OR_RETURN(Expr expr, binder.BindExpression(*value_ast));
        TMDB_ASSIGN_OR_RETURN(Value row, EvalExpr(expr, empty, &executor));
        TMDB_RETURN_IF_ERROR(table->Insert(std::move(row)));
        ++inserted;
      }
      result.message = StrCat("inserted ", inserted, " row(s) into ",
                              statement.target);
      return result;
    }
    case Statement::Kind::kExplain: {
      TMDB_ASSIGN_OR_RETURN(result.message,
                            ExplainAst(*statement.query, options.strategy));
      return result;
    }
  }
  return Status::Internal("unhandled statement kind");
}

Result<std::string> Database::Explain(const std::string& query,
                                      Strategy strategy) {
  TMDB_ASSIGN_OR_RETURN(AstPtr ast, ParseQuery(query));
  return ExplainAst(*ast, strategy);
}

Result<std::string> Database::ExplainAst(const AstNode& ast,
                                         Strategy strategy) {
  Binder binder(&catalog_);
  TMDB_ASSIGN_OR_RETURN(LogicalOpPtr naive, binder.BindQuery(ast));
  UnnestReport report;
  TMDB_ASSIGN_OR_RETURN(LogicalOpPtr rewritten,
                        PlanForStrategy(naive, strategy, &report));
  Planner planner;
  TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr physical, planner.Plan(rewritten));

  std::string out;
  out += "== query ==\n" + ast.ToString() + "\n";
  out += "\n== naive logical plan ==\n" + naive->ToString();
  out += StrCat("\n== rewritten (", StrategyName(strategy),
                ") logical plan ==\n", rewritten->ToString());
  if (!report.events.empty()) {
    out += "\n== unnesting decisions (Table 2) ==\n" + report.ToString();
  }
  out += "\n== physical plan ==\n" + physical->ToString();
  return out;
}

}  // namespace tmdb
