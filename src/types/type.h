#ifndef TMDB_TYPES_TYPE_H_
#define TMDB_TYPES_TYPE_H_

#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "base/status.h"

namespace tmdb {

class Type;

namespace internal_types {
struct TypeRep;
}  // namespace internal_types

/// One named attribute of a tuple type, e.g. `name : STRING`.
struct Field;

/// Kinds of TM types. The paper's model has basic types plus the tuple,
/// set, and list type constructors, arbitrarily nested (the variant
/// constructor is unused by the paper's examples and is out of scope).
enum class TypeKind {
  kBool,
  kInt,
  kReal,
  kString,
  kTuple,  // ⟨a1 : T1, ..., an : Tn⟩, brackets ⟨⟩ in the paper
  kSet,    // P(T): finite duplicate-free set
  kList,   // L(T): finite sequence
  kAny,    // bottom placeholder: type of NULL and of the empty-set element
};

/// An immutable, structurally-compared TM type. Cheap to copy (shared
/// representation). Constructed via the static factories:
///
///   Type emp = Type::Tuple({{"name", Type::String()},
///                           {"sal", Type::Int()},
///                           {"children", Type::Set(child)}});
class Type {
 public:
  /// Constructs the kAny placeholder type; prefer the named factories.
  Type();

  static Type Bool();
  static Type Int();
  static Type Real();
  static Type String();
  static Type Any();
  static Type Tuple(std::vector<Field> fields);
  static Type Set(Type element);
  static Type List(Type element);

  TypeKind kind() const;

  bool is_bool() const { return kind() == TypeKind::kBool; }
  bool is_int() const { return kind() == TypeKind::kInt; }
  bool is_real() const { return kind() == TypeKind::kReal; }
  bool is_string() const { return kind() == TypeKind::kString; }
  bool is_tuple() const { return kind() == TypeKind::kTuple; }
  bool is_set() const { return kind() == TypeKind::kSet; }
  bool is_list() const { return kind() == TypeKind::kList; }
  bool is_any() const { return kind() == TypeKind::kAny; }
  bool is_numeric() const { return is_int() || is_real(); }
  /// Sets and lists are the collection types a variable can iterate over.
  bool is_collection() const { return is_set() || is_list(); }

  /// Tuple accessors. Require is_tuple().
  const std::vector<Field>& fields() const;
  /// Index of the field named `name`, or -1.
  int FieldIndex(const std::string& name) const;
  /// Type of the field named `name`; NotFound if absent.
  Result<Type> FieldType(const std::string& name) const;

  /// Set/list element type. Requires is_collection().
  Type element() const;

  /// Structural equality; kAny compares equal only to kAny.
  bool Equals(const Type& other) const;

  /// True if a value of this type may be used where `other` is expected:
  /// structural equality, except kAny coerces to anything (in either
  /// direction) and Int coerces to Real.
  bool CoercesTo(const Type& other) const;

  /// TM-style rendering: INT, P(⟨a : INT⟩), etc.
  std::string ToString() const;

 private:
  using Rep = internal_types::TypeRep;
  explicit Type(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}

  friend Result<Type> UnifyTypes(const Type& a, const Type& b);

  std::shared_ptr<const Rep> rep_;
};

struct Field {
  std::string name;
  Type type;
};

inline bool operator==(const Type& a, const Type& b) { return a.Equals(b); }
inline bool operator!=(const Type& a, const Type& b) { return !a.Equals(b); }

/// Least upper bound of two types if one exists: equal types unify to
/// themselves, kAny unifies with anything, Int/Real unify to Real, and
/// collections/tuples unify structurally. TypeError otherwise.
Result<Type> UnifyTypes(const Type& a, const Type& b);

}  // namespace tmdb

#endif  // TMDB_TYPES_TYPE_H_
