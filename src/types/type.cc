#include "types/type.h"

#include <utility>

#include "base/logging.h"
#include "base/string_util.h"

namespace tmdb {

namespace internal_types {
struct TypeRep {
  TypeKind kind;
  std::vector<Field> fields;               // kTuple only
  std::shared_ptr<const TypeRep> element;  // kSet/kList only

  explicit TypeRep(TypeKind k) : kind(k) {}
};
}  // namespace internal_types

namespace {

using internal_types::TypeRep;

// Basic types are singletons: sharing one Rep makes Equals fast and keeps
// allocation out of the common path.
const std::shared_ptr<const TypeRep>& BasicRep(TypeKind kind) {
  static const auto& kBool =
      *new std::shared_ptr<const TypeRep>(new TypeRep(TypeKind::kBool));
  static const auto& kInt =
      *new std::shared_ptr<const TypeRep>(new TypeRep(TypeKind::kInt));
  static const auto& kReal =
      *new std::shared_ptr<const TypeRep>(new TypeRep(TypeKind::kReal));
  static const auto& kString =
      *new std::shared_ptr<const TypeRep>(new TypeRep(TypeKind::kString));
  static const auto& kAny =
      *new std::shared_ptr<const TypeRep>(new TypeRep(TypeKind::kAny));
  switch (kind) {
    case TypeKind::kBool:
      return kBool;
    case TypeKind::kInt:
      return kInt;
    case TypeKind::kReal:
      return kReal;
    case TypeKind::kString:
      return kString;
    case TypeKind::kAny:
      return kAny;
    default:
      TMDB_UNREACHABLE("BasicRep on constructed type");
  }
}

}  // namespace

Type::Type() : rep_(BasicRep(TypeKind::kAny)) {}

Type Type::Bool() { return Type(BasicRep(TypeKind::kBool)); }
Type Type::Int() { return Type(BasicRep(TypeKind::kInt)); }
Type Type::Real() { return Type(BasicRep(TypeKind::kReal)); }
Type Type::String() { return Type(BasicRep(TypeKind::kString)); }
Type Type::Any() { return Type(BasicRep(TypeKind::kAny)); }

Type Type::Tuple(std::vector<Field> fields) {
  auto rep = std::make_shared<TypeRep>(TypeKind::kTuple);
  rep->fields = std::move(fields);
  return Type(std::move(rep));
}

Type Type::Set(Type element) {
  auto rep = std::make_shared<TypeRep>(TypeKind::kSet);
  rep->element = element.rep_;
  return Type(std::move(rep));
}

Type Type::List(Type element) {
  auto rep = std::make_shared<TypeRep>(TypeKind::kList);
  rep->element = element.rep_;
  return Type(std::move(rep));
}

TypeKind Type::kind() const { return rep_->kind; }

const std::vector<Field>& Type::fields() const {
  TMDB_CHECK(is_tuple());
  return rep_->fields;
}

int Type::FieldIndex(const std::string& name) const {
  TMDB_CHECK(is_tuple());
  for (size_t i = 0; i < rep_->fields.size(); ++i) {
    if (rep_->fields[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<Type> Type::FieldType(const std::string& name) const {
  if (!is_tuple()) {
    return Status::TypeError(
        StrCat("attribute access '.", name, "' on non-tuple type ",
               ToString()));
  }
  int idx = FieldIndex(name);
  if (idx < 0) {
    return Status::NotFound(
        StrCat("no attribute '", name, "' in ", ToString()));
  }
  return rep_->fields[static_cast<size_t>(idx)].type;
}

Type Type::element() const {
  TMDB_CHECK(is_collection());
  // Rebuilding a Type handle from the shared element rep is free.
  return Type(rep_->element);
}

bool Type::Equals(const Type& other) const {
  if (rep_ == other.rep_) return true;
  if (kind() != other.kind()) return false;
  switch (kind()) {
    case TypeKind::kBool:
    case TypeKind::kInt:
    case TypeKind::kReal:
    case TypeKind::kString:
    case TypeKind::kAny:
      return true;
    case TypeKind::kTuple: {
      const auto& a = rep_->fields;
      const auto& b = other.rep_->fields;
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].name != b[i].name || !a[i].type.Equals(b[i].type)) {
          return false;
        }
      }
      return true;
    }
    case TypeKind::kSet:
    case TypeKind::kList:
      return Type(rep_->element).Equals(Type(other.rep_->element));
  }
  return false;
}

bool Type::CoercesTo(const Type& other) const {
  if (is_any() || other.is_any()) return true;
  if (is_int() && other.is_real()) return true;
  if (kind() != other.kind()) return false;
  switch (kind()) {
    case TypeKind::kTuple: {
      const auto& a = fields();
      const auto& b = other.fields();
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].name != b[i].name || !a[i].type.CoercesTo(b[i].type)) {
          return false;
        }
      }
      return true;
    }
    case TypeKind::kSet:
    case TypeKind::kList:
      return element().CoercesTo(other.element());
    default:
      return true;  // same basic kind
  }
}

std::string Type::ToString() const {
  switch (kind()) {
    case TypeKind::kBool:
      return "BOOL";
    case TypeKind::kInt:
      return "INT";
    case TypeKind::kReal:
      return "REAL";
    case TypeKind::kString:
      return "STRING";
    case TypeKind::kAny:
      return "ANY";
    case TypeKind::kSet:
      return "P(" + element().ToString() + ")";
    case TypeKind::kList:
      return "L(" + element().ToString() + ")";
    case TypeKind::kTuple: {
      std::vector<std::string> parts;
      parts.reserve(fields().size());
      for (const Field& f : fields()) {
        parts.push_back(f.name + " : " + f.type.ToString());
      }
      return "<" + Join(parts, ", ") + ">";
    }
  }
  return "?";
}

Result<Type> UnifyTypes(const Type& a, const Type& b) {
  if (a.is_any()) return b;
  if (b.is_any()) return a;
  if (a.is_numeric() && b.is_numeric()) {
    return (a.is_real() || b.is_real()) ? Type::Real() : Type::Int();
  }
  if (a.kind() != b.kind()) {
    return Status::TypeError(
        StrCat("cannot unify ", a.ToString(), " with ", b.ToString()));
  }
  switch (a.kind()) {
    case TypeKind::kTuple: {
      const auto& fa = a.fields();
      const auto& fb = b.fields();
      if (fa.size() != fb.size()) {
        return Status::TypeError(
            StrCat("cannot unify ", a.ToString(), " with ", b.ToString()));
      }
      std::vector<Field> out;
      out.reserve(fa.size());
      for (size_t i = 0; i < fa.size(); ++i) {
        if (fa[i].name != fb[i].name) {
          return Status::TypeError(StrCat("cannot unify ", a.ToString(),
                                          " with ", b.ToString(),
                                          ": field name mismatch"));
        }
        TMDB_ASSIGN_OR_RETURN(Type t, UnifyTypes(fa[i].type, fb[i].type));
        out.push_back({fa[i].name, std::move(t)});
      }
      return Type::Tuple(std::move(out));
    }
    case TypeKind::kSet: {
      TMDB_ASSIGN_OR_RETURN(Type t, UnifyTypes(a.element(), b.element()));
      return Type::Set(std::move(t));
    }
    case TypeKind::kList: {
      TMDB_ASSIGN_OR_RETURN(Type t, UnifyTypes(a.element(), b.element()));
      return Type::List(std::move(t));
    }
    default:
      return a;  // equal basic kinds
  }
}

}  // namespace tmdb
