#include "types/schema_ops.h"

#include <utility>

#include "base/string_util.h"

namespace tmdb {

Result<Type> ConcatTupleTypes(const Type& a, const Type& b) {
  if (!a.is_tuple() || !b.is_tuple()) {
    return Status::TypeError(StrCat("ConcatTupleTypes requires tuple types, got ",
                                    a.ToString(), " and ", b.ToString()));
  }
  std::vector<Field> out = a.fields();
  for (const Field& f : b.fields()) {
    if (a.FieldIndex(f.name) >= 0) {
      return Status::TypeError(
          StrCat("duplicate attribute '", f.name, "' in join schema"));
    }
    out.push_back(f);
  }
  return Type::Tuple(std::move(out));
}

Result<Type> AddField(const Type& tuple, const std::string& name,
                      const Type& type) {
  if (!tuple.is_tuple()) {
    return Status::TypeError(
        StrCat("AddField requires a tuple type, got ", tuple.ToString()));
  }
  if (tuple.FieldIndex(name) >= 0) {
    return Status::TypeError(
        StrCat("attribute '", name, "' already exists in ", tuple.ToString()));
  }
  std::vector<Field> out = tuple.fields();
  out.push_back({name, type});
  return Type::Tuple(std::move(out));
}

Result<Type> RemoveField(const Type& tuple, const std::string& name) {
  if (!tuple.is_tuple()) {
    return Status::TypeError(
        StrCat("RemoveField requires a tuple type, got ", tuple.ToString()));
  }
  int idx = tuple.FieldIndex(name);
  if (idx < 0) {
    return Status::NotFound(
        StrCat("no attribute '", name, "' in ", tuple.ToString()));
  }
  std::vector<Field> out;
  out.reserve(tuple.fields().size() - 1);
  for (int i = 0; i < static_cast<int>(tuple.fields().size()); ++i) {
    if (i != idx) out.push_back(tuple.fields()[static_cast<size_t>(i)]);
  }
  return Type::Tuple(std::move(out));
}

Result<Type> ProjectFields(const Type& tuple,
                           const std::vector<std::string>& names) {
  if (!tuple.is_tuple()) {
    return Status::TypeError(
        StrCat("ProjectFields requires a tuple type, got ", tuple.ToString()));
  }
  std::vector<Field> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    TMDB_ASSIGN_OR_RETURN(Type t, tuple.FieldType(name));
    out.push_back({name, std::move(t)});
  }
  return Type::Tuple(std::move(out));
}

bool HasField(const Type& tuple, const std::string& name) {
  return tuple.is_tuple() && tuple.FieldIndex(name) >= 0;
}

std::string FreshFieldName(const std::string& base,
                           const std::vector<Type>& taken) {
  auto in_use = [&taken](const std::string& candidate) {
    for (const Type& t : taken) {
      if (t.is_tuple() && t.FieldIndex(candidate) >= 0) return true;
    }
    return false;
  };
  if (!in_use(base)) return base;
  for (int i = 1;; ++i) {
    std::string candidate = StrCat(base, i);
    if (!in_use(candidate)) return candidate;
  }
}

}  // namespace tmdb
