#ifndef TMDB_TYPES_SCHEMA_OPS_H_
#define TMDB_TYPES_SCHEMA_OPS_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "types/type.h"

namespace tmdb {

/// Helpers for deriving operator output schemas. In this engine a "schema"
/// is simply a tuple Type; rows are tuple Values conforming to it.

/// Concatenates the fields of two tuple types (join output schema).
/// Fails on duplicate attribute names — the algebra requires operands of a
/// join to have disjoint top-level attributes, as in the paper.
Result<Type> ConcatTupleTypes(const Type& a, const Type& b);

/// Returns `tuple` extended with a trailing field `name : type` (the nest
/// join's grouped attribute). Fails if `name` already exists.
Result<Type> AddField(const Type& tuple, const std::string& name,
                      const Type& type);

/// Returns `tuple` without the field `name`. Fails if absent.
Result<Type> RemoveField(const Type& tuple, const std::string& name);

/// Returns a tuple type containing exactly `names`, in the given order.
Result<Type> ProjectFields(const Type& tuple, const std::vector<std::string>& names);

/// True if the tuple type has a top-level field `name`.
bool HasField(const Type& tuple, const std::string& name);

/// Returns a fresh attribute name not present in any of `taken`, derived
/// from `base` ("ys", "ys1", "ys2", ...). The paper calls nest-join labels
/// "arbitrary labels not occurring on the top level" — this manufactures
/// them.
std::string FreshFieldName(const std::string& base,
                           const std::vector<Type>& taken);

}  // namespace tmdb

#endif  // TMDB_TYPES_SCHEMA_OPS_H_
