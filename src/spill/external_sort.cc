#include "spill/external_sort.h"

#include <algorithm>
#include <utility>

#include "spill/value_codec.h"

namespace tmdb {

namespace {

Status RunCheckpoint(const SortCheckpoint& checkpoint) {
  return checkpoint ? checkpoint() : Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// ExternalSorter

ExternalSorter::ExternalSorter(SpillManager* manager, std::string label,
                               SortCheckpoint checkpoint, SortStatsSink sink)
    : manager_(manager),
      label_(std::move(label)),
      checkpoint_(std::move(checkpoint)),
      sink_(sink) {}

ExternalSorter::~ExternalSorter() { AbandonRuns(); }

Status ExternalSorter::SpillRun(std::vector<SortRecord>* chunk) {
  if (chunk->empty()) return Status::OK();
  std::stable_sort(chunk->begin(), chunk->end(),
                   [](const SortRecord& a, const SortRecord& b) {
                     return a.key.Compare(b.key) < 0;
                   });

  TMDB_ASSIGN_OR_RETURN(
      std::string path,
      manager_->NewFilePath(label_ + "-r" + std::to_string(runs_spilled_)));
  SpillWriter writer(path, manager_->block_bytes(), manager_->injector());
  Status st = writer.Open();
  std::string record;
  for (SortRecord& rec : *chunk) {
    if (!st.ok()) break;
    record.clear();
    EncodeValue(rec.key, &record);
    record += rec.payload;
    rec = SortRecord();  // free the in-memory copy as it reaches disk
    st = writer.Append(record);
    if (st.ok() && writer.TookBlockBoundary()) st = RunCheckpoint(checkpoint_);
  }
  if (st.ok()) st = writer.Finish();
  if (sink_.bytes_written != nullptr) {
    *sink_.bytes_written += writer.stats().bytes;
  }
  chunk->clear();
  if (!st.ok()) {
    manager_->RemoveFile(path);
    return st;
  }
  run_paths_.push_back(std::move(path));
  ++runs_spilled_;
  if (sink_.runs != nullptr) ++*sink_.runs;
  return Status::OK();
}

Result<std::string> ExternalSorter::MergeGroup(std::vector<std::string> group,
                                               int pass, size_t index) {
  TMDB_ASSIGN_OR_RETURN(
      std::string out_path,
      manager_->NewFilePath(label_ + "-m" + std::to_string(pass) + "-" +
                            std::to_string(index)));
  // The group merger removes its input runs as they are exhausted and on
  // Close, so a pass's inputs are gone as soon as (or as best-effort as)
  // they have been folded into the output run.
  SortedRunMerger merger(manager_, std::move(group), checkpoint_, sink_);
  SpillWriter writer(out_path, manager_->block_bytes(), manager_->injector());
  Status st = merger.Open();
  if (st.ok()) st = writer.Open();
  Value key;
  std::string_view payload;
  bool eof = false;
  while (st.ok()) {
    st = merger.Next(&key, &payload, &eof);
    if (!st.ok() || eof) break;
    st = writer.Append(merger.current_record());
    if (st.ok() && writer.TookBlockBoundary()) st = RunCheckpoint(checkpoint_);
  }
  if (st.ok()) st = writer.Finish();
  if (sink_.bytes_written != nullptr) {
    *sink_.bytes_written += writer.stats().bytes;
  }
  merger.Close();
  if (!st.ok()) {
    manager_->RemoveFile(out_path);
    return st;
  }
  return out_path;
}

Result<std::unique_ptr<SortedRunMerger>> ExternalSorter::Merge() {
  std::vector<std::string> paths = std::move(run_paths_);
  run_paths_.clear();
  int pass = 0;
  while (paths.size() > kSortMergeFanout) {
    std::vector<std::string> next;
    Status st;
    size_t g = 0;
    for (; g < paths.size() && st.ok(); g += kSortMergeFanout) {
      const size_t end = std::min(paths.size(), g + kSortMergeFanout);
      if (end - g == 1) {
        next.push_back(std::move(paths[g]));
        continue;
      }
      Result<std::string> merged = MergeGroup(
          std::vector<std::string>(
              std::make_move_iterator(paths.begin() + static_cast<long>(g)),
              std::make_move_iterator(paths.begin() + static_cast<long>(end))),
          pass, next.size());
      if (!merged.ok()) {
        st = merged.status();
        break;
      }
      next.push_back(std::move(merged).value());
    }
    if (!st.ok()) {
      // Eagerly drop everything this sort still owns: outputs of this pass
      // and input runs of untouched groups. (The failed group's inputs were
      // already removed by its merger's Close.)
      run_paths_ = std::move(next);
      for (size_t i = g; i < paths.size(); ++i) {
        if (!paths[i].empty()) run_paths_.push_back(std::move(paths[i]));
      }
      AbandonRuns();
      return st;
    }
    paths = std::move(next);
    ++pass;
  }
  auto merger = std::make_unique<SortedRunMerger>(manager_, std::move(paths),
                                                  checkpoint_, sink_);
  Status st = merger->Open();
  if (!st.ok()) return st;  // merger dtor closes readers and removes runs
  return merger;
}

void ExternalSorter::AbandonRuns() {
  for (const std::string& path : run_paths_) {
    manager_->RemoveFile(path);
  }
  run_paths_.clear();
}

// ---------------------------------------------------------------------------
// SortedRunMerger

SortedRunMerger::SortedRunMerger(SpillManager* manager,
                                 std::vector<std::string> run_paths,
                                 SortCheckpoint checkpoint, SortStatsSink sink)
    : manager_(manager),
      paths_(std::move(run_paths)),
      checkpoint_(std::move(checkpoint)),
      sink_(sink) {}

SortedRunMerger::~SortedRunMerger() { Close(); }

Status SortedRunMerger::Open() {
  heads_.resize(paths_.size());
  heap_.reserve(paths_.size());
  for (size_t i = 0; i < paths_.size(); ++i) {
    heads_[i].reader =
        std::make_unique<SpillReader>(paths_[i], manager_->injector());
    TMDB_RETURN_IF_ERROR(heads_[i].reader->Open());
    TMDB_RETURN_IF_ERROR(Advance(i));
  }
  // Build the min-heap over non-empty runs; ties on key go to the lower run
  // index, i.e. records spilled earlier surface earlier (stability).
  for (size_t i = 0; i < heads_.size(); ++i) {
    if (!heads_[i].eof) heap_.push_back(i);
  }
  std::make_heap(heap_.begin(), heap_.end(), [this](size_t a, size_t b) {
    const int c = heads_[a].key.Compare(heads_[b].key);
    if (c != 0) return c > 0;
    return a > b;
  });
  open_ = true;
  return Status::OK();
}

Status SortedRunMerger::Advance(size_t i) {
  Head& h = heads_[i];
  std::string_view record;
  bool eof = false;
  TMDB_RETURN_IF_ERROR(h.reader->Next(&record, &eof));
  if (h.reader->TookBlockBoundary()) {
    TMDB_RETURN_IF_ERROR(RunCheckpoint(checkpoint_));
  }
  if (eof) {
    h.eof = true;
    RetireHead(i);
    return Status::OK();
  }
  h.eof = false;
  h.record = record;
  size_t pos = 0;
  TMDB_RETURN_IF_ERROR(DecodeValue(record, &pos, &h.key));
  h.payload_pos = pos;
  return Status::OK();
}

void SortedRunMerger::RetireHead(size_t i) {
  Head& h = heads_[i];
  if (h.reader != nullptr) {
    if (sink_.bytes_read != nullptr) {
      *sink_.bytes_read += h.reader->stats().bytes;
    }
    h.reader->Close();
    h.reader.reset();
  }
  if (!paths_[i].empty()) {
    manager_->RemoveFile(paths_[i]);
    paths_[i].clear();
  }
}

Status SortedRunMerger::Next(Value* key, std::string_view* payload,
                             bool* eof) {
  if (!open_ || closed_) {
    return Status::Internal("SortedRunMerger used before Open/after Close");
  }
  const auto greater = [this](size_t a, size_t b) {
    const int c = heads_[a].key.Compare(heads_[b].key);
    if (c != 0) return c > 0;
    return a > b;
  };
  if (last_ != static_cast<size_t>(-1)) {
    const size_t i = last_;
    last_ = static_cast<size_t>(-1);
    TMDB_RETURN_IF_ERROR(Advance(i));
    if (!heads_[i].eof) {
      heap_.push_back(i);
      std::push_heap(heap_.begin(), heap_.end(), greater);
    }
  }
  if (heap_.empty()) {
    *eof = true;
    return Status::OK();
  }
  std::pop_heap(heap_.begin(), heap_.end(), greater);
  const size_t i = heap_.back();
  heap_.pop_back();
  last_ = i;  // its reader advances on the next call, keeping views valid
  const Head& h = heads_[i];
  *key = h.key;
  *payload = h.record.substr(h.payload_pos);
  cur_record_ = h.record;
  *eof = false;
  return Status::OK();
}

void SortedRunMerger::Close() {
  if (closed_) return;
  closed_ = true;
  for (size_t i = 0; i < heads_.size(); ++i) {
    RetireHead(i);
  }
  // Runs never opened (Open failed early, or Open was never called).
  for (std::string& path : paths_) {
    if (!path.empty()) {
      manager_->RemoveFile(path);
      path.clear();
    }
  }
  heads_.clear();
  heap_.clear();
}

}  // namespace tmdb
