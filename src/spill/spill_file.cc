#include "spill/spill_file.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include "base/crc32.h"
#include "spill/value_codec.h"

namespace tmdb {

namespace {

constexpr uint32_t kBlockMagic = 0x544D5350u;  // "TMSP"
constexpr size_t kHeaderBytes = 16;
// Upper bound on a single block's payload: the writer never produces more
// than block_bytes + one record, and records are join rows, not gigabytes.
// A corrupt header length past this cap is rejected instead of allocated.
constexpr uint32_t kMaxPayloadBytes = 1u << 30;

void PutU32(uint32_t v, unsigned char* out) {
  out[0] = static_cast<unsigned char>(v & 0xFFu);
  out[1] = static_cast<unsigned char>((v >> 8) & 0xFFu);
  out[2] = static_cast<unsigned char>((v >> 16) & 0xFFu);
  out[3] = static_cast<unsigned char>((v >> 24) & 0xFFu);
}

uint32_t GetU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

Status ErrnoError(const char* what, const std::string& path) {
  return Status::IoError(std::string(what) + " " + path + ": " +
                         std::strerror(errno));
}

}  // namespace

// --------------------------------------------------------------- SpillWriter

SpillWriter::SpillWriter(std::string path, size_t block_bytes,
                         FaultInjector* injector)
    : path_(std::move(path)),
      block_bytes_(block_bytes < 64 ? 64 : block_bytes),
      injector_(injector) {}

SpillWriter::~SpillWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SpillWriter::Open() {
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) return ErrnoError("cannot create spill file", path_);
  return Status::OK();
}

Status SpillWriter::Append(std::string_view record) {
  PutVarint(record.size(), &payload_);
  payload_.append(record.data(), record.size());
  ++pending_records_;
  ++stats_.records;
  if (payload_.size() >= block_bytes_) {
    TMDB_RETURN_IF_ERROR(FlushBlock());
    boundary_ = true;
  }
  return Status::OK();
}

Status SpillWriter::FlushBlock() {
  if (pending_records_ == 0) return Status::OK();
  unsigned char header[kHeaderBytes];
  PutU32(kBlockMagic, header);
  PutU32(static_cast<uint32_t>(payload_.size()), header + 4);
  PutU32(pending_records_, header + 8);
  // The CRC covers the length and record-count fields as well as the
  // payload: a flipped bit anywhere but the magic (checked separately) or
  // the CRC itself (self-detecting) must fail verification — a corrupt
  // record count would otherwise silently drop records.
  const uint32_t crc =
      Crc32(payload_.data(), payload_.size(), Crc32(header + 4, 8));
  PutU32(crc, header + 12);

  if (injector_ != nullptr) {
    switch (injector_->ShouldFailWrite()) {
      case IoFaultKind::kShortWrite:
        // Model a torn write: part of the block reaches the file, then the
        // device gives up. The caller unwinds; cleanup removes the file.
        std::fwrite(header, 1, kHeaderBytes, file_);
        std::fwrite(payload_.data(), 1, payload_.size() / 2, file_);
        return Status::IoError("injected short write on " + path_);
      case IoFaultKind::kEnospc:
        return Status::IoError("injected ENOSPC writing " + path_);
      default:
        break;
    }
  }

  if (std::fwrite(header, 1, kHeaderBytes, file_) != kHeaderBytes ||
      std::fwrite(payload_.data(), 1, payload_.size(), file_) !=
          payload_.size()) {
    return ErrnoError("short write to spill file", path_);
  }
  stats_.bytes += kHeaderBytes + payload_.size();
  ++stats_.blocks;
  payload_.clear();
  pending_records_ = 0;
  return Status::OK();
}

Status SpillWriter::Finish() {
  if (file_ == nullptr) return Status::OK();
  Status s = FlushBlock();
  if (s.ok() && std::fflush(file_) != 0) {
    s = ErrnoError("cannot flush spill file", path_);
  }
  if (std::fclose(file_) != 0 && s.ok()) {
    s = ErrnoError("cannot close spill file", path_);
  }
  file_ = nullptr;
  return s;
}

bool SpillWriter::TookBlockBoundary() {
  const bool b = boundary_;
  boundary_ = false;
  return b;
}

// --------------------------------------------------------------- SpillReader

SpillReader::SpillReader(std::string path, FaultInjector* injector)
    : path_(std::move(path)), injector_(injector) {}

SpillReader::~SpillReader() { Close(); }

Status SpillReader::Open() {
  file_ = std::fopen(path_.c_str(), "rb");
  if (file_ == nullptr) return ErrnoError("cannot open spill file", path_);
  return Status::OK();
}

Status SpillReader::LoadBlock(bool* eof) {
  unsigned char header[kHeaderBytes];
  const size_t got = std::fread(header, 1, kHeaderBytes, file_);
  if (got == 0 && std::feof(file_)) {
    *eof = true;
    return Status::OK();
  }
  if (got != kHeaderBytes) {
    return Status::IoError("truncated spill block header in " + path_);
  }
  if (GetU32(header) != kBlockMagic) {
    return Status::IoError("bad spill block magic in " + path_);
  }
  const uint32_t payload_len = GetU32(header + 4);
  const uint32_t record_count = GetU32(header + 8);
  const uint32_t crc = GetU32(header + 12);
  if (payload_len == 0 || payload_len > kMaxPayloadBytes) {
    return Status::IoError("implausible spill block length in " + path_);
  }
  payload_.resize(payload_len);
  if (std::fread(payload_.data(), 1, payload_len, file_) != payload_len) {
    return Status::IoError("truncated spill block payload in " + path_);
  }
  if (injector_ != nullptr && injector_->ShouldFailRead()) {
    // Flip one checksummed byte: the CRC below must catch it, so injected
    // corruption can never surface as a wrong answer.
    payload_[payload_.size() / 2] =
        static_cast<char>(payload_[payload_.size() / 2] ^ 0xFF);
  }
  if (Crc32(payload_.data(), payload_.size(), Crc32(header + 4, 8)) != crc) {
    return Status::IoError("spill block checksum mismatch in " + path_);
  }
  pos_ = 0;
  block_records_left_ = record_count;
  boundary_ = true;
  stats_.bytes += kHeaderBytes + payload_len;
  ++stats_.blocks;
  *eof = false;
  return Status::OK();
}

Status SpillReader::Next(std::string_view* record, bool* eof) {
  *eof = false;
  while (block_records_left_ == 0) {
    bool file_done = false;
    TMDB_RETURN_IF_ERROR(LoadBlock(&file_done));
    if (file_done) {
      *eof = true;
      return Status::OK();
    }
  }
  uint64_t len = 0;
  TMDB_RETURN_IF_ERROR(GetVarint(payload_, &pos_, &len));
  if (len > payload_.size() - pos_) {
    return Status::IoError("record overruns spill block in " + path_);
  }
  *record = std::string_view(payload_.data() + pos_, static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  --block_records_left_;
  ++stats_.records;
  return Status::OK();
}

bool SpillReader::TookBlockBoundary() {
  const bool b = boundary_;
  boundary_ = false;
  return b;
}

void SpillReader::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace tmdb
