#ifndef TMDB_SPILL_SPILL_FILE_H_
#define TMDB_SPILL_SPILL_FILE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "base/fault_injector.h"
#include "base/status.h"

namespace tmdb {

/// A spill file is a sequence of self-contained blocks:
///
///   [magic u32][payload_len u32][record_count u32][crc32 u32][payload...]
///
/// Fixed-width header fields are little-endian; the CRC-32 covers the
/// payload length, the record count, and the payload — every header byte
/// is protected by either the magic check, the CRC, or (for the CRC field
/// itself) the verification mismatch. The payload is a run of records, each
/// prefixed with a varint byte length. Blocks are the unit of I/O, checksum
/// verification, fault injection, and guard checkpointing in the callers'
/// loops: any single corrupted byte fails validation and surfaces as
/// kIoError before a record is decoded.

struct SpillFileStats {
  uint64_t blocks = 0;
  uint64_t bytes = 0;  // header + payload bytes through the file layer
  uint64_t records = 0;
};

/// Buffered block writer. Not thread-safe; spill I/O runs on the
/// coordinator thread.
class SpillWriter {
 public:
  /// Writes to `path` (created/truncated on Open). `injector` may be null.
  /// A block is flushed when the buffered payload reaches `block_bytes`,
  /// and on Finish.
  SpillWriter(std::string path, size_t block_bytes, FaultInjector* injector);
  ~SpillWriter();
  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  Status Open();

  /// Appends one record. May flush a block; kIoError on a short write or
  /// (injected) ENOSPC.
  Status Append(std::string_view record);

  /// Flushes buffered records and closes the file. Idempotent.
  Status Finish();

  /// True right after Append flushed a block — callers checkpoint the
  /// guard here, keeping the block-granularity invariant. Reading resets
  /// the flag.
  bool TookBlockBoundary();

  const std::string& path() const { return path_; }
  const SpillFileStats& stats() const { return stats_; }

 private:
  Status FlushBlock();

  std::string path_;
  size_t block_bytes_;
  FaultInjector* injector_;
  std::FILE* file_ = nullptr;
  std::string payload_;
  uint32_t pending_records_ = 0;
  bool boundary_ = false;
  SpillFileStats stats_;
};

/// Block reader; verifies each block's checksum before yielding records.
/// Not thread-safe.
class SpillReader {
 public:
  SpillReader(std::string path, FaultInjector* injector);
  ~SpillReader();
  SpillReader(const SpillReader&) = delete;
  SpillReader& operator=(const SpillReader&) = delete;

  Status Open();

  /// Yields the next record, or sets *eof. The view aliases the current
  /// block buffer and stays valid until the next call.
  Status Next(std::string_view* record, bool* eof);

  /// True right after Next loaded a fresh block from disk — callers
  /// checkpoint the guard here. Reading resets the flag.
  bool TookBlockBoundary();

  void Close();

  const std::string& path() const { return path_; }
  const SpillFileStats& stats() const { return stats_; }

 private:
  Status LoadBlock(bool* eof);

  std::string path_;
  FaultInjector* injector_;
  std::FILE* file_ = nullptr;
  std::string payload_;
  size_t pos_ = 0;
  uint32_t block_records_left_ = 0;
  bool boundary_ = false;
  SpillFileStats stats_;
};

}  // namespace tmdb

#endif  // TMDB_SPILL_SPILL_FILE_H_
