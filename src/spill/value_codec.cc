#include "spill/value_codec.h"

#include <cstring>
#include <utility>
#include <vector>

namespace tmdb {

namespace {

// One tag byte per encoded value. Bool folds its payload into the tag.
constexpr uint8_t kTagNull = 0x00;
constexpr uint8_t kTagFalse = 0x01;
constexpr uint8_t kTagTrue = 0x02;
constexpr uint8_t kTagInt = 0x03;     // zigzag varint
constexpr uint8_t kTagReal = 0x04;    // 8 raw little-endian IEEE-754 bytes
constexpr uint8_t kTagString = 0x05;  // varint length + bytes
constexpr uint8_t kTagTuple = 0x06;   // varint n, then n × (name, value)
constexpr uint8_t kTagSet = 0x07;     // varint n, then n values
constexpr uint8_t kTagList = 0x08;    // varint n, then n values

// Checksummed blocks mean malformed bytes normally never reach the decoder;
// the depth cap is insurance against a header-corrupted length admitting a
// pathological nest that would exhaust the stack.
constexpr int kMaxDecodeDepth = 1000;

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

Status Truncated() { return Status::IoError("truncated value encoding"); }

Status DecodeValueRec(std::string_view data, size_t* pos, int depth,
                      Value* out);

Status DecodeString(std::string_view data, size_t* pos, std::string* out) {
  uint64_t len = 0;
  TMDB_RETURN_IF_ERROR(GetVarint(data, pos, &len));
  if (len > data.size() - *pos) return Truncated();
  out->assign(data.data() + *pos, static_cast<size_t>(len));
  *pos += static_cast<size_t>(len);
  return Status::OK();
}

Status DecodeElements(std::string_view data, size_t* pos, int depth,
                      std::vector<Value>* out) {
  uint64_t n = 0;
  TMDB_RETURN_IF_ERROR(GetVarint(data, pos, &n));
  // Every element takes at least one byte, so n can never legitimately
  // exceed the remaining input; reject before reserving.
  if (n > data.size() - *pos) return Truncated();
  out->reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    Value elem;
    TMDB_RETURN_IF_ERROR(DecodeValueRec(data, pos, depth + 1, &elem));
    out->push_back(std::move(elem));
  }
  return Status::OK();
}

Status DecodeValueRec(std::string_view data, size_t* pos, int depth,
                      Value* out) {
  if (depth > kMaxDecodeDepth) {
    return Status::IoError("value encoding nested too deeply");
  }
  if (*pos >= data.size()) return Truncated();
  const uint8_t tag = static_cast<uint8_t>(data[(*pos)++]);
  switch (tag) {
    case kTagNull:
      *out = Value::Null();
      return Status::OK();
    case kTagFalse:
      *out = Value::Bool(false);
      return Status::OK();
    case kTagTrue:
      *out = Value::Bool(true);
      return Status::OK();
    case kTagInt: {
      uint64_t zz = 0;
      TMDB_RETURN_IF_ERROR(GetVarint(data, pos, &zz));
      *out = Value::Int(UnZigZag(zz));
      return Status::OK();
    }
    case kTagReal: {
      if (data.size() - *pos < 8) return Truncated();
      uint64_t bits = 0;
      for (int i = 0; i < 8; ++i) {
        bits |= static_cast<uint64_t>(static_cast<uint8_t>(data[*pos + i]))
                << (8 * i);
      }
      *pos += 8;
      double d;
      std::memcpy(&d, &bits, sizeof d);
      *out = Value::Real(d);
      return Status::OK();
    }
    case kTagString: {
      std::string s;
      TMDB_RETURN_IF_ERROR(DecodeString(data, pos, &s));
      *out = Value::String(std::move(s));
      return Status::OK();
    }
    case kTagTuple: {
      uint64_t n = 0;
      TMDB_RETURN_IF_ERROR(GetVarint(data, pos, &n));
      if (n > data.size() - *pos) return Truncated();
      std::vector<std::string> names;
      std::vector<Value> values;
      names.reserve(static_cast<size_t>(n));
      values.reserve(static_cast<size_t>(n));
      for (uint64_t i = 0; i < n; ++i) {
        std::string name;
        TMDB_RETURN_IF_ERROR(DecodeString(data, pos, &name));
        Value field;
        TMDB_RETURN_IF_ERROR(DecodeValueRec(data, pos, depth + 1, &field));
        names.push_back(std::move(name));
        values.push_back(std::move(field));
      }
      *out = Value::Tuple(std::move(names), std::move(values));
      return Status::OK();
    }
    case kTagSet: {
      std::vector<Value> elems;
      TMDB_RETURN_IF_ERROR(DecodeElements(data, pos, depth, &elems));
      *out = Value::Set(std::move(elems));
      return Status::OK();
    }
    case kTagList: {
      std::vector<Value> elems;
      TMDB_RETURN_IF_ERROR(DecodeElements(data, pos, depth, &elems));
      *out = Value::List(std::move(elems));
      return Status::OK();
    }
    default:
      return Status::IoError("unknown value tag in spill data");
  }
}

}  // namespace

void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80u) {
    out->push_back(static_cast<char>((v & 0x7Fu) | 0x80u));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Status GetVarint(std::string_view data, size_t* pos, uint64_t* out) {
  uint64_t result = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*pos >= data.size()) return Truncated();
    const uint8_t byte = static_cast<uint8_t>(data[(*pos)++]);
    result |= static_cast<uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) {
      *out = result;
      return Status::OK();
    }
  }
  return Status::IoError("over-long varint in spill data");
}

void EncodeValue(const Value& v, std::string* out) {
  switch (v.kind()) {
    case ValueKind::kNull:
      out->push_back(static_cast<char>(kTagNull));
      return;
    case ValueKind::kBool:
      out->push_back(static_cast<char>(v.AsBool() ? kTagTrue : kTagFalse));
      return;
    case ValueKind::kInt:
      out->push_back(static_cast<char>(kTagInt));
      PutVarint(ZigZag(v.AsInt()), out);
      return;
    case ValueKind::kReal: {
      out->push_back(static_cast<char>(kTagReal));
      uint64_t bits;
      const double d = v.AsReal();
      std::memcpy(&bits, &d, sizeof bits);
      for (int i = 0; i < 8; ++i) {
        out->push_back(static_cast<char>((bits >> (8 * i)) & 0xFFu));
      }
      return;
    }
    case ValueKind::kString: {
      out->push_back(static_cast<char>(kTagString));
      const std::string& s = v.AsString();
      PutVarint(s.size(), out);
      out->append(s);
      return;
    }
    case ValueKind::kTuple: {
      out->push_back(static_cast<char>(kTagTuple));
      PutVarint(v.TupleSize(), out);
      for (size_t i = 0; i < v.TupleSize(); ++i) {
        const std::string& name = v.FieldName(i);
        PutVarint(name.size(), out);
        out->append(name);
        EncodeValue(v.FieldValue(i), out);
      }
      return;
    }
    case ValueKind::kSet:
    case ValueKind::kList: {
      out->push_back(static_cast<char>(
          v.kind() == ValueKind::kSet ? kTagSet : kTagList));
      PutVarint(v.NumElements(), out);
      for (size_t i = 0; i < v.NumElements(); ++i) {
        EncodeValue(v.Element(i), out);
      }
      return;
    }
  }
}

Status DecodeValue(std::string_view data, size_t* pos, Value* out) {
  return DecodeValueRec(data, pos, /*depth=*/0, out);
}

}  // namespace tmdb
