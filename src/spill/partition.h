#ifndef TMDB_SPILL_PARTITION_H_
#define TMDB_SPILL_PARTITION_H_

#include <cstddef>
#include <cstdint>

namespace tmdb {

/// Partition fan-out per recursion level and the recursion bound, shared by
/// every operator that hash-partitions state to disk (hash/nest-join build
/// and probe, ν/ν* grouped materialisation). Fanout^depth partitions
/// suffice for any skew a rehash can resolve; a partition that still
/// overflows at the bound (single giant key or group) fails with
/// kResourceExhausted — bounded degradation, not an unbounded disk walk.
inline constexpr size_t kSpillFanout = 8;
inline constexpr int kMaxSpillDepth = 6;

/// SplitMix64 finaliser. Decorrelates the partition choice across recursion
/// levels so a partition does not map onto itself one level down.
inline uint64_t SpillMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The partition of a key hash at recursion level `level` (level 0 is the
/// first write-out).
inline size_t SpillPartitionOf(uint64_t key_hash, int level) {
  return static_cast<size_t>(
      SpillMix64(key_hash +
                 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(level + 1)) %
      kSpillFanout);
}

}  // namespace tmdb

#endif  // TMDB_SPILL_PARTITION_H_
