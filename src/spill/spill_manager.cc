#include "spill/spill_manager.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <system_error>
#include <utility>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace tmdb {

namespace fs = std::filesystem;

namespace {

// Distinguishes per-query directories across SpillManager instances within
// one process; the pid distinguishes across processes sharing a temp dir.
std::atomic<uint64_t> g_dir_seq{0};

uint64_t Pid() {
#ifdef _WIN32
  return static_cast<uint64_t>(_getpid());
#else
  return static_cast<uint64_t>(::getpid());
#endif
}

}  // namespace

SpillManager::SpillManager(std::string base_dir, size_t block_bytes,
                           FaultInjector* injector)
    : base_dir_(std::move(base_dir)),
      block_bytes_(block_bytes == 0 ? (64u << 10) : block_bytes),
      injector_(injector) {}

SpillManager::~SpillManager() { CleanupAll(); }

Result<std::string> SpillManager::NewFilePath(const std::string& label) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dir_.empty()) {
    std::error_code ec;
    fs::path base = base_dir_.empty() ? fs::temp_directory_path(ec)
                                      : fs::path(base_dir_);
    if (ec) {
      return Status::IoError("no usable temp directory for spilling: " +
                             ec.message());
    }
    fs::path dir = base / ("tmdb-spill-" + std::to_string(Pid()) + "-" +
                           std::to_string(g_dir_seq.fetch_add(1)));
    fs::create_directories(dir, ec);
    if (ec) {
      return Status::IoError("cannot create spill directory " +
                             dir.string() + ": " + ec.message());
    }
    dir_ = dir.string();
  }
  std::string path =
      dir_ + "/" + label + "-" + std::to_string(counter_++) + ".spill";
  live_files_.push_back(path);
  ++files_created_;
  return path;
}

void SpillManager::RemoveFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (injector_ != nullptr && injector_->ShouldFailUnlink()) {
    return;  // stays in live_files_; CleanupAll sweeps it
  }
  std::error_code ec;
  if (fs::remove(path, ec) && !ec) {
    live_files_.erase(std::remove(live_files_.begin(), live_files_.end(), path),
                      live_files_.end());
  }
}

void SpillManager::CleanupAll() {
  std::lock_guard<std::mutex> lock(mu_);
  if (dir_.empty()) return;
  // remove_all retries everything still on disk, including files whose
  // unlink was failed by injection; errors are deliberately swallowed —
  // cleanup runs on every unwind path and must not mask the query's status.
  std::error_code ec;
  fs::remove_all(dir_, ec);
  dir_.clear();
  live_files_.clear();
  counter_ = 0;
}

std::string SpillManager::dir() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dir_;
}

}  // namespace tmdb
