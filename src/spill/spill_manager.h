#ifndef TMDB_SPILL_SPILL_MANAGER_H_
#define TMDB_SPILL_SPILL_MANAGER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "base/fault_injector.h"
#include "base/result.h"
#include "base/status.h"

namespace tmdb {

/// Owns the temp-directory lifecycle for one query run. The per-query
/// directory (`<base>/tmdb-spill-<pid>-<seq>`) is created lazily on the
/// first file request and removed unconditionally by CleanupAll — which the
/// executor invokes on success, error, cancellation, and guard trip alike,
/// so no outcome leaks temp files.
///
/// Operators remove each spill file as soon as its partition is consumed
/// (RemoveFile); an injected or real unlink failure merely defers that file
/// to CleanupAll's sweep — the query itself is unaffected. NewFilePath and
/// RemoveFile are mutex-protected because subplan evaluation can share one
/// manager across contexts.
class SpillManager {
 public:
  /// `base_dir` empty means the system temp directory. `injector` may be
  /// null.
  SpillManager(std::string base_dir, size_t block_bytes,
               FaultInjector* injector);
  ~SpillManager();
  SpillManager(const SpillManager&) = delete;
  SpillManager& operator=(const SpillManager&) = delete;

  /// Returns a fresh path inside the per-query directory, creating the
  /// directory on first use. `label` tags the filename for debuggability
  /// ("hj-build-p3-d1"); it must be filesystem-safe.
  Result<std::string> NewFilePath(const std::string& label);

  /// Best-effort unlink of one spill file. Consults the injector's unlink
  /// channel; on (injected or real) failure the file stays registered and
  /// CleanupAll retries it.
  void RemoveFile(const std::string& path);

  /// Removes every remaining spill file and the per-query directory.
  /// Idempotent; a later NewFilePath starts a fresh directory.
  void CleanupAll();

  size_t block_bytes() const { return block_bytes_; }
  FaultInjector* injector() const { return injector_; }
  uint64_t files_created() const { return files_created_; }

  /// The per-query directory path; empty until the first NewFilePath.
  std::string dir() const;

 private:
  const std::string base_dir_;
  const size_t block_bytes_;
  FaultInjector* const injector_;

  mutable std::mutex mu_;
  std::string dir_;
  uint64_t counter_ = 0;
  uint64_t files_created_ = 0;
  std::vector<std::string> live_files_;
};

}  // namespace tmdb

#endif  // TMDB_SPILL_SPILL_MANAGER_H_
