#ifndef TMDB_SPILL_EXTERNAL_SORT_H_
#define TMDB_SPILL_EXTERNAL_SORT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "base/status.h"
#include "spill/spill_file.h"
#include "spill/spill_manager.h"
#include "values/value.h"

namespace tmdb {

/// External sort over spill block files: the caller accumulates
/// (key, payload) records in memory, flushes each chunk as one stable-sorted
/// run (SpillRun), then merges the runs back in key order (Merge). The merge
/// is stable end to end — ties within a run keep insertion order because the
/// run sort is stable, and ties across runs resolve to the earlier run — so
/// a spilled sort yields exactly the byte sequence a std::stable_sort over
/// the whole input would have, which is what the merge join's bit-identical
/// output guarantee rests on.
///
/// This layer is guard-agnostic by design (tmdb_spill cannot depend on
/// tmdb_exec): callers pass a checkpoint callback that is invoked at every
/// block boundary, and run SpillRun/Merge under their own
/// MemoryCheckSuspension so only cancellation/deadline/injected faults fire
/// while the write-out itself is what relieves memory pressure. All block
/// I/O goes through SpillWriter/SpillReader and therefore consults the
/// FaultInjector's I/O channels and the CRC discipline.

/// Invoked at every spill-block boundary; a non-OK return aborts the sort
/// with that status. May be empty.
using SortCheckpoint = std::function<Status()>;

/// Caller-owned counters bumped as the sort progresses (typically pointers
/// into ExecStats so observability is live). Any pointer may be null.
struct SortStatsSink {
  uint64_t* runs = nullptr;           // sorted runs written
  uint64_t* bytes_written = nullptr;  // run + merge-pass bytes through disk
  uint64_t* bytes_read = nullptr;
};

/// One record of a sort: the composite sort key plus opaque payload bytes
/// the merger returns verbatim.
struct SortRecord {
  Value key;
  std::string payload;
};

/// Merge passes fold this many runs at a time; at most this many run files
/// are open during the final streaming merge.
inline constexpr size_t kSortMergeFanout = 16;

class SortedRunMerger;

/// Writes stable-sorted runs and merges them. Not thread-safe. Run files
/// not yet handed to a merger are removed by AbandonRuns (also from the
/// destructor), so an unwound query leaks nothing even before the
/// SpillManager's final sweep.
class ExternalSorter {
 public:
  /// `label` tags run filenames ("mj-left"). `checkpoint` and any sink
  /// pointer may be null.
  ExternalSorter(SpillManager* manager, std::string label,
                 SortCheckpoint checkpoint, SortStatsSink sink);
  ~ExternalSorter();
  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  /// Stable-sorts `chunk` by key and writes it as one run, freeing records
  /// as they are written; `chunk` is cleared on success and failure alike.
  /// An empty chunk is a no-op.
  Status SpillRun(std::vector<SortRecord>* chunk);

  /// Merges every run written so far down to at most kSortMergeFanout files
  /// (removing intermediate inputs as each pass consumes them) and returns
  /// an opened merger that yields records in global key order. The sorter
  /// no longer owns the run files afterwards. On failure every remaining
  /// run file has been removed.
  Result<std::unique_ptr<SortedRunMerger>> Merge();

  uint64_t runs_spilled() const { return runs_spilled_; }

  /// Removes run files not yet handed to a merger. Idempotent.
  void AbandonRuns();

 private:
  Result<std::string> MergeGroup(std::vector<std::string> group, int pass,
                                 size_t index);

  SpillManager* manager_;
  std::string label_;
  SortCheckpoint checkpoint_;
  SortStatsSink sink_;
  std::vector<std::string> run_paths_;
  uint64_t runs_spilled_ = 0;
};

/// K-way merge over sorted run files. Yields each record's key and payload;
/// views stay valid until the next call. Each run file is removed the
/// moment it is exhausted, and Close (idempotent, also from the destructor)
/// removes whatever remains — so the disk high-water mark shrinks as the
/// merge drains and an abandoned merge leaks nothing.
class SortedRunMerger {
 public:
  SortedRunMerger(SpillManager* manager, std::vector<std::string> run_paths,
                  SortCheckpoint checkpoint, SortStatsSink sink);
  ~SortedRunMerger();
  SortedRunMerger(const SortedRunMerger&) = delete;
  SortedRunMerger& operator=(const SortedRunMerger&) = delete;

  Status Open();

  /// Yields the next record in (key, run) order, or sets *eof. `*payload`
  /// views the record's payload bytes.
  Status Next(Value* key, std::string_view* payload, bool* eof);

  /// The full encoded record (key + payload) last yielded by Next — what a
  /// merge pass re-appends verbatim.
  std::string_view current_record() const { return cur_record_; }

  void Close();

 private:
  struct Head {
    std::unique_ptr<SpillReader> reader;
    Value key;
    std::string_view record;
    size_t payload_pos = 0;
    bool eof = true;
  };

  Status Advance(size_t i);
  void RetireHead(size_t i);

  SpillManager* manager_;
  std::vector<std::string> paths_;  // entry cleared once its file is removed
  SortCheckpoint checkpoint_;
  SortStatsSink sink_;
  std::vector<Head> heads_;
  std::vector<size_t> heap_;  // min-heap of head indices by (key, run)
  size_t last_ = static_cast<size_t>(-1);
  std::string_view cur_record_;
  bool open_ = false;
  bool closed_ = false;
};

}  // namespace tmdb

#endif  // TMDB_SPILL_EXTERNAL_SORT_H_
