#ifndef TMDB_SPILL_VALUE_CODEC_H_
#define TMDB_SPILL_VALUE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "base/status.h"
#include "values/value.h"

namespace tmdb {

/// Unsigned LEB128 varint, appended to `out`. Also used by the spill file
/// layer for record framing.
void PutVarint(uint64_t v, std::string* out);

/// Decodes a varint from `data` starting at `*pos`, advancing `*pos` past
/// it. Truncated or over-long input yields kIoError.
Status GetVarint(std::string_view data, size_t* pos, uint64_t* out);

/// Appends the canonical binary encoding of `v` to `out`. The encoding is
/// self-delimiting and deterministic: structurally equal values produce
/// identical bytes, and a decoded value is structurally equal to the
/// original — same hash, same position in the Value total order. Real
/// values round-trip their exact bit pattern (including -0.0 and NaN).
void EncodeValue(const Value& v, std::string* out);

/// Decodes one value from `data` starting at `*pos`, advancing `*pos` past
/// it. Bounds-checked end to end: truncated, malformed, or adversarially
/// deep input yields kIoError, never a crash or out-of-range read. Sets are
/// rebuilt through Value::Set on decode, so a decoded set is canonical
/// (sorted, duplicate-free) even if the bytes were not.
Status DecodeValue(std::string_view data, size_t* pos, Value* out);

}  // namespace tmdb

#endif  // TMDB_SPILL_VALUE_CODEC_H_
