#ifndef TMDB_SCHED_SCHEDULER_H_
#define TMDB_SCHED_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "base/status.h"

namespace tmdb {

class Scheduler;

/// One query's registration with the process-wide scheduler: a stable query
/// id for tagging tasks, a max-parallelism cap, and the per-query dispatch
/// accounting (`morsels_dispatched` / `morsels_stolen`). Registration and
/// teardown are cheap (no OS threads are created or destroyed), so an
/// Executor registers one of these per run.
///
/// The cap bounds how many threads may execute this query's morsels at
/// once; it is NOT a thread reservation. Two queries with cap 8 on an
/// 8-worker scheduler share the same eight workers, and the deque
/// discipline (steal from the oldest work) keeps both making progress.
class QuerySched {
 public:
  explicit QuerySched(int max_parallelism);
  ~QuerySched();
  QuerySched(const QuerySched&) = delete;
  QuerySched& operator=(const QuerySched&) = delete;

  uint64_t query_id() const { return query_id_; }

  /// The parallelism cap: at most this many threads (workers plus the
  /// coordinator) run this query's morsels concurrently. Updating it is a
  /// plain store — no pool is torn down or rebuilt.
  int max_parallelism() const {
    return cap_.load(std::memory_order_relaxed);
  }
  void set_max_parallelism(int cap);

  /// Morsels executed through this query's task sets. `dispatched` counts
  /// every morsel (deterministic: the sum of submitted set sizes);
  /// `stolen` counts the subset run via a ticket taken from another
  /// worker's deque (scheduling-dependent — observability, not identity).
  uint64_t morsels_dispatched() const {
    return dispatched_.load(std::memory_order_relaxed);
  }
  uint64_t morsels_stolen() const {
    return stolen_.load(std::memory_order_relaxed);
  }

 private:
  friend class Scheduler;

  const uint64_t query_id_;
  std::atomic<int> cap_;
  std::atomic<uint64_t> dispatched_{0};
  std::atomic<uint64_t> stolen_{0};
};

/// Process-wide work-stealing scheduler: one singleton worker pool sized to
/// the hardware (override with TMDB_SCHED_WORKERS), shared by every query
/// in the process. Replaces the per-Executor fixed ThreadPool: concurrent
/// queries no longer fight over disjoint pools, and a skewed morsel no
/// longer idles a query's other workers — idle workers steal whatever work
/// exists, whoever submitted it.
///
/// Structure (ponyc libponyrt/sched shape, simplified):
///   - each worker owns a deque; submitters push tickets to the back,
///     the owner pops from the back (LIFO — cache-warm, most recently
///     submitted), and other workers steal from the front (FIFO — the
///     oldest work, which is both the fairest and the least likely to
///     contend with the owner). The deques are mutex-guarded rather than
///     lock-free Chase–Lev: tickets are coarse (each one joins a whole
///     task set), so the lock is held for nanoseconds per dispatch and the
///     discipline — not the synchronisation primitive — is what matters.
///   - a *task set* is one ParallelForMorsels call: N slot-indexed tasks
///     claimed dynamically through an atomic cursor. Workers that pop or
///     steal a ticket for the set join its claim loop; the submitting
///     (coordinator) thread always joins too, so a set makes progress even
///     when every worker is busy with other queries — and with zero
///     workers the coordinator simply runs every task itself, which is
///     why query results cannot depend on pool size.
///   - per-query caps are enforced at dispatch: a set for a query with
///     max_parallelism P receives at most P-1 tickets, so at most P
///     threads (tickets + coordinator) ever run its tasks concurrently.
///
/// Determinism: results and errors are slot-indexed, the claim cursor
/// hands every task to exactly one thread, and the coordinator returns the
/// first non-OK status in task order — so which thread ran which morsel is
/// unobservable in rows, stats, and errors.
class Scheduler {
 public:
  /// The process-wide instance. Workers start on first use and join on
  /// process exit.
  static Scheduler& Global();

  size_t num_workers() const { return workers_.size(); }

  /// OS threads this scheduler has ever started — stable after startup.
  /// Regression hook: executors switching num_threads must not move this.
  uint64_t threads_created() const {
    return threads_created_.load(std::memory_order_relaxed);
  }

  /// Runs body(i) for every i in [0, num_tasks) and waits for all of them.
  /// Tasks run on scheduler workers and on the calling thread; at most
  /// `query->max_parallelism()` threads participate. Returns the first
  /// non-OK status in task order. `query` may be null (untagged, cap =
  /// pool width) — tests and one-off utilities.
  ///
  /// The callable must not submit further task sets for the same thread's
  /// scheduler recursively from inside a task (operators dispatch only
  /// from the coordinating thread; subplans inside morsels stay serial).
  Status RunTaskSet(QuerySched* query, size_t num_tasks,
                    const std::function<Status(size_t)>& body);

  /// Process-lifetime counters (observability / tests).
  uint64_t sets_run() const {
    return sets_run_.load(std::memory_order_relaxed);
  }
  uint64_t tickets_stolen() const {
    return tickets_stolen_.load(std::memory_order_relaxed);
  }

  ~Scheduler();

 private:
  struct TaskSet;
  struct Ticket {
    std::shared_ptr<TaskSet> set;
    size_t home_worker = 0;  // deque the ticket was pushed to
  };
  struct Worker {
    std::mutex mu;
    std::deque<Ticket> deque;
  };

  Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  void WorkerLoop(size_t worker_id);
  /// Pops from the back of worker `id`'s own deque (LIFO).
  bool PopLocal(size_t id, Ticket* out);
  /// Steals from the front of some other worker's deque (FIFO), scanning
  /// victims round-robin from the caller's successor.
  bool StealFrom(size_t id, Ticket* out);
  void EnqueueTickets(const std::shared_ptr<TaskSet>& set, int count);
  /// The shared claim loop: claim tasks from `set` until its cursor is
  /// exhausted. `stolen_ticket` tags the morsels this thread claims.
  static void RunClaimLoop(TaskSet* set, bool stolen_ticket);

  std::vector<std::unique_ptr<Worker>> worker_state_;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> threads_created_{0};
  std::atomic<uint64_t> sets_run_{0};
  std::atomic<uint64_t> tickets_stolen_{0};
  std::atomic<uint64_t> next_query_id_{1};
  std::atomic<size_t> next_home_{0};  // round-robin ticket placement

  // Sleep/wake for idle workers. `pending_tickets_` conservatively counts
  // tickets sitting in deques; a worker only sleeps when it is zero, and
  // every push increments it before notifying, so wakeups are never lost.
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<int64_t> pending_tickets_{0};
  bool shutting_down_ = false;

  friend class QuerySched;
};

}  // namespace tmdb

#endif  // TMDB_SCHED_SCHEDULER_H_
