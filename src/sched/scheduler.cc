#include "sched/scheduler.h"

#include <algorithm>
#include <cstdlib>

namespace tmdb {

// ------------------------------------------------------------- task sets

/// One ParallelForMorsels call: slot-indexed tasks claimed through an
/// atomic cursor. The set outlives the submitting call only through
/// tickets still sitting in deques, and a late ticket's claim loop exits
/// on its first cursor read without touching `body`, `results`, or
/// `query` — so the coordinator may safely return (and its stack frame
/// die) the moment `completed == total`.
struct Scheduler::TaskSet {
  std::function<Status(size_t)> body;
  std::vector<Status> results;  // slot-indexed; each written exactly once
  size_t total = 0;
  QuerySched* query = nullptr;  // tag for accounting; null = untagged

  std::atomic<size_t> next{0};       // claim cursor
  std::atomic<size_t> completed{0};  // finished tasks

  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
};

void Scheduler::RunClaimLoop(TaskSet* set, bool stolen_ticket) {
  for (;;) {
    const size_t i = set->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= set->total) return;
    set->results[i] = set->body(i);
    if (set->query != nullptr) {
      set->query->dispatched_.fetch_add(1, std::memory_order_relaxed);
      if (stolen_ticket) {
        set->query->stolen_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // acq_rel: joins the release sequence of every earlier finisher, so the
    // thread that observes completed == total (and, through done_mu, the
    // coordinator) sees every slot's result write.
    const size_t finished =
        set->completed.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (finished == set->total) {
      std::lock_guard<std::mutex> lock(set->done_mu);
      set->done = true;
      set->done_cv.notify_all();
    }
  }
}

// ------------------------------------------------------------- scheduler

namespace {

size_t DecideWorkerCount() {
  if (const char* env = std::getenv("TMDB_SCHED_WORKERS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return std::min<long>(parsed, 128);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1u, std::min(hw, 128u));
}

}  // namespace

Scheduler& Scheduler::Global() {
  static Scheduler instance;
  return instance;
}

Scheduler::Scheduler() {
  const size_t count = DecideWorkerCount();
  worker_state_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    worker_state_.push_back(std::make_unique<Worker>());
  }
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
    threads_created_.fetch_add(1, std::memory_order_relaxed);
  }
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    shutting_down_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool Scheduler::PopLocal(size_t id, Ticket* out) {
  Worker& self = *worker_state_[id];
  std::lock_guard<std::mutex> lock(self.mu);
  if (self.deque.empty()) return false;
  *out = std::move(self.deque.back());  // LIFO: newest, cache-warm
  self.deque.pop_back();
  return true;
}

bool Scheduler::StealFrom(size_t id, Ticket* out) {
  const size_t n = worker_state_.size();
  for (size_t hop = 1; hop < n; ++hop) {
    Worker& victim = *worker_state_[(id + hop) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.deque.empty()) continue;
    *out = std::move(victim.deque.front());  // FIFO: oldest, fairest
    victim.deque.pop_front();
    return true;
  }
  return false;
}

void Scheduler::EnqueueTickets(const std::shared_ptr<TaskSet>& set,
                               int count) {
  for (int t = 0; t < count; ++t) {
    const size_t home =
        next_home_.fetch_add(1, std::memory_order_relaxed) %
        worker_state_.size();
    std::lock_guard<std::mutex> lock(worker_state_[home]->mu);
    worker_state_[home]->deque.push_back(Ticket{set, home});
  }
  {
    // The count must move under idle_mu_ so a worker between its empty
    // deque scan and its cv sleep cannot miss the wakeup.
    std::lock_guard<std::mutex> lock(idle_mu_);
    pending_tickets_.fetch_add(count, std::memory_order_relaxed);
  }
  idle_cv_.notify_all();
}

void Scheduler::WorkerLoop(size_t worker_id) {
  for (;;) {
    Ticket ticket;
    if (PopLocal(worker_id, &ticket) || StealFrom(worker_id, &ticket)) {
      pending_tickets_.fetch_sub(1, std::memory_order_relaxed);
      const bool stolen = ticket.home_worker != worker_id;
      if (stolen) tickets_stolen_.fetch_add(1, std::memory_order_relaxed);
      RunClaimLoop(ticket.set.get(), stolen);
      ticket.set.reset();
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mu_);
    if (shutting_down_) return;  // coordinators finish their own sets
    idle_cv_.wait(lock, [this] {
      return shutting_down_ ||
             pending_tickets_.load(std::memory_order_relaxed) > 0;
    });
    if (shutting_down_) return;
  }
}

Status Scheduler::RunTaskSet(QuerySched* query, size_t num_tasks,
                             const std::function<Status(size_t)>& body) {
  if (num_tasks == 0) return Status::OK();
  auto set = std::make_shared<TaskSet>();
  set->body = body;
  set->results.assign(num_tasks, Status::OK());
  set->total = num_tasks;
  set->query = query;
  sets_run_.fetch_add(1, std::memory_order_relaxed);

  // Cap enforcement happens here, at dispatch: P-1 tickets plus the
  // coordinator bounds the set's concurrency at P. More tickets than
  // workers would only queue behind each other, and more than tasks-1
  // could never claim anything.
  int cap = query != nullptr ? query->max_parallelism()
                             : static_cast<int>(num_workers()) + 1;
  if (cap < 1) cap = 1;
  const size_t tickets =
      std::min({static_cast<size_t>(cap - 1), num_tasks - 1, num_workers()});
  if (tickets > 0) EnqueueTickets(set, static_cast<int>(tickets));

  // The coordinator lends its own thread: progress is guaranteed even if
  // every worker is pinned on other queries' long morsels.
  RunClaimLoop(set.get(), /*stolen_ticket=*/false);
  {
    std::unique_lock<std::mutex> lock(set->done_mu);
    set->done_cv.wait(lock, [&] { return set->done; });
  }
  for (Status& status : set->results) {
    if (!status.ok()) return std::move(status);  // first error in task order
  }
  return Status::OK();
}

// ----------------------------------------------------------- query handle

QuerySched::QuerySched(int max_parallelism)
    : query_id_(Scheduler::Global().next_query_id_.fetch_add(
          1, std::memory_order_relaxed)),
      cap_(max_parallelism < 1 ? 1 : max_parallelism) {}

QuerySched::~QuerySched() = default;

void QuerySched::set_max_parallelism(int cap) {
  cap_.store(cap < 1 ? 1 : cap, std::memory_order_relaxed);
}

}  // namespace tmdb
