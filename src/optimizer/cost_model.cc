#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/subplan.h"
#include "base/random.h"
#include "base/string_util.h"
#include "exec/query_guard.h"
#include "expr/eval.h"
#include "optimizer/planner.h"
#include "rewrite/expr_rewrite.h"

namespace tmdb {
namespace {

// Textbook selectivity/fan-out constants — crude, but the strategy choice
// only needs the *asymmetry* between "one subplan execution per outer row"
// and "one per distinct correlation value", which dwarfs these factors.
constexpr double kSelectSelectivity = 0.25;
constexpr double kSemiSelectivity = 0.5;
constexpr double kNestReduction = 0.5;
constexpr double kExprSourceRows = 4.0;
constexpr double kUnnestFanout = 4.0;

// Sampling runs under the guard-checkpoint invariant: one check per batch.
constexpr size_t kSampleCheckpointStride = 1024;

// Deterministic 64-bit FNV-1a, used to decorrelate per-table sample streams
// without depending on std::hash (implementation-defined).
uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

double Clamp1(double v) { return v < 1.0 ? 1.0 : v; }

}  // namespace

Result<std::vector<const Value*>> CostModel::SampleRows(
    const Table& table) const {
  const std::vector<Value>& rows = table.rows();
  const size_t n = std::min(std::max<size_t>(options_.sample_rows, 1),
                            rows.size());
  std::vector<const Value*> sample;
  sample.reserve(n);
  Random rng(options_.sample_seed ^ Fnv1a(table.name()));
  // Partial Fisher–Yates over virtual swaps: a uniform n-subset in O(n)
  // regardless of table size. Tables are random-access, so paying a full
  // O(N) reservoir pass per estimate would make sampling itself the
  // dominant cost of strategy = auto on large tables.
  std::unordered_map<size_t, size_t> swapped;
  for (size_t i = 0; i < n; ++i) {
    if (options_.guard != nullptr && i % kSampleCheckpointStride == 0) {
      TMDB_RETURN_IF_ERROR(options_.guard->Check());
    }
    const size_t j = i + static_cast<size_t>(rng.Uniform(rows.size() - i));
    auto jt = swapped.find(j);
    const size_t pick = jt == swapped.end() ? j : jt->second;
    auto it = swapped.find(i);
    swapped[j] = it == swapped.end() ? i : it->second;
    sample.push_back(&rows[pick]);
  }
  return sample;
}

template <typename KeyFn>
Result<DistinctEstimate> CostModel::EstimateDistinctImpl(
    const Table& table, const std::string& memo_key, KeyFn eval) const {
  auto it = distinct_memo_.find(memo_key);
  if (it != distinct_memo_.end()) return it->second;

  DistinctEstimate est;
  est.table_rows = table.NumRows();
  TMDB_ASSIGN_OR_RETURN(std::vector<const Value*> sample, SampleRows(table));
  est.sampled_rows = sample.size();
  std::unordered_map<Value, uint64_t, ValueHash, ValueEq> counts;
  counts.reserve(sample.size());
  for (const Value* row : sample) {
    TMDB_ASSIGN_OR_RETURN(Value key, eval(*row));
    ++counts[std::move(key)];
  }
  est.sample_distinct = counts.size();
  uint64_t singletons = 0;
  for (const auto& [key, count] : counts) {
    if (count == 1) ++singletons;
  }
  // GEE: unseen distincts extrapolated from the singleton count, scaled by
  // sqrt(N/n) — the estimator's guaranteed-error sweet spot between the
  // "every unseen row is a repeat" and "every singleton hides sqrt(N/n)
  // more" extremes.
  double estimate = est.sample_distinct;
  if (est.sampled_rows > 0 && est.table_rows > est.sampled_rows) {
    const double scale = std::sqrt(static_cast<double>(est.table_rows) /
                                   static_cast<double>(est.sampled_rows));
    estimate = scale * static_cast<double>(singletons) +
               static_cast<double>(est.sample_distinct - singletons);
  }
  estimate = std::max(estimate, static_cast<double>(est.sample_distinct));
  estimate = std::min(estimate, static_cast<double>(est.table_rows));
  est.estimate = static_cast<uint64_t>(std::llround(estimate));
  distinct_memo_.emplace(memo_key, est);
  return est;
}

Result<DistinctEstimate> CostModel::EstimateSignatureDistinct(
    const Table& table, const std::string& var,
    const CorrelationSignature& signature) const {
  std::string memo_key =
      StrCat(table.name(), "|sig|", var, "|", signature.ToString());
  return EstimateDistinctImpl(
      table, memo_key, [&](const Value& row) -> Result<Value> {
        Environment env;
        env.Bind(var, row);
        return EvalCorrelationKey(signature, env);
      });
}

Result<DistinctEstimate> CostModel::EstimateKeyDistinct(
    const Table& table, const std::string& var,
    const std::vector<Expr>& keys) const {
  std::string memo_key = StrCat(table.name(), "|keys|", var);
  for (const Expr& key : keys) memo_key += StrCat("|", key.ToString());
  return EstimateDistinctImpl(
      table, memo_key, [&](const Value& row) -> Result<Value> {
        Environment env;
        env.Bind(var, row);
        if (keys.size() == 1) return EvalExpr(keys[0], env);
        std::vector<std::string> names;
        std::vector<Value> values;
        names.reserve(keys.size());
        values.reserve(keys.size());
        for (size_t i = 0; i < keys.size(); ++i) {
          TMDB_ASSIGN_OR_RETURN(Value v, EvalExpr(keys[i], env));
          names.push_back(StrCat("k", i));
          values.push_back(std::move(v));
        }
        return Value::Tuple(std::move(names), std::move(values));
      });
}

const Table* CostModel::ResolveBaseTable(const LogicalOp& op) {
  const LogicalOp* cur = &op;
  // Selections pass rows through unchanged (a subset of the base
  // extension), so sampling the base table stays sound — it can only
  // overestimate distincts, which errs toward the unnested strategies.
  while (cur->op_kind() == OpKind::kSelect) cur = cur->input().get();
  if (cur->op_kind() == OpKind::kScan) return cur->table().get();
  return nullptr;
}

namespace {

// True iff every access path of `signature` is rooted at `var`.
bool SignatureRootedAt(const CorrelationSignature& signature,
                       const std::string& var) {
  for (const auto& path : signature.paths) {
    if (path.var != var) return false;
  }
  return !signature.paths.empty();
}

}  // namespace

Result<PlanCost> CostModel::CostPlan(const LogicalOp& plan) const {
  switch (plan.op_kind()) {
    case OpKind::kScan: {
      const double rows = static_cast<double>(plan.table()->NumRows());
      return PlanCost{rows, rows};
    }
    case OpKind::kExprSource:
      return PlanCost{kExprSourceRows, kExprSourceRows};
    case OpKind::kSelect: {
      TMDB_ASSIGN_OR_RETURN(PlanCost in, CostPlan(*plan.input()));
      TMDB_ASSIGN_OR_RETURN(
          double sub_cost,
          SubplanEvalCost(plan.pred(), plan.input().get(), plan.var(),
                          in.rows));
      return PlanCost{in.rows * kSelectSelectivity,
                      in.cost + in.rows + sub_cost};
    }
    case OpKind::kMap: {
      TMDB_ASSIGN_OR_RETURN(PlanCost in, CostPlan(*plan.input()));
      TMDB_ASSIGN_OR_RETURN(
          double sub_cost,
          SubplanEvalCost(plan.func(), plan.input().get(), plan.var(),
                          in.rows));
      return PlanCost{in.rows, in.cost + in.rows + sub_cost};
    }
    case OpKind::kJoin:
    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin:
    case OpKind::kOuterJoin:
    case OpKind::kNestJoin: {
      TMDB_ASSIGN_OR_RETURN(PlanCost l, CostPlan(*plan.left()));
      TMDB_ASSIGN_OR_RETURN(PlanCost r, CostPlan(*plan.right()));
      TMDB_ASSIGN_OR_RETURN(double matches, EstimateJoinMatches(plan, l, r));
      const bool keyed = matches >= 0;
      if (!keyed) matches = l.rows * r.rows * kSelectSelectivity;
      // Keyed joins hash/sort both sides and touch each match; keyless
      // joins check every pair.
      double cost = l.cost + r.cost +
                    (keyed ? l.rows + r.rows + matches : l.rows * r.rows);
      TMDB_ASSIGN_OR_RETURN(
          double sub_cost,
          SubplanEvalCost(plan.pred(), nullptr, plan.left_var(),
                          keyed ? matches : l.rows * r.rows));
      cost += sub_cost;
      double rows;
      switch (plan.op_kind()) {
        case OpKind::kJoin:
          rows = matches;
          break;
        case OpKind::kSemiJoin:
        case OpKind::kAntiJoin:
          rows = l.rows * kSemiSelectivity;
          break;
        case OpKind::kOuterJoin:
          rows = std::max(matches, l.rows);
          break;
        default:  // kNestJoin: one output row per left row, matches grouped
          rows = l.rows;
          break;
      }
      return PlanCost{Clamp1(rows), cost};
    }
    case OpKind::kNest: {
      TMDB_ASSIGN_OR_RETURN(PlanCost in, CostPlan(*plan.input()));
      TMDB_ASSIGN_OR_RETURN(
          double sub_cost,
          SubplanEvalCost(plan.func(), plan.input().get(), plan.var(),
                          in.rows));
      return PlanCost{Clamp1(in.rows * kNestReduction),
                      in.cost + in.rows + sub_cost};
    }
    case OpKind::kUnnest: {
      TMDB_ASSIGN_OR_RETURN(PlanCost in, CostPlan(*plan.input()));
      const double rows = in.rows * kUnnestFanout;
      return PlanCost{rows, in.cost + rows};
    }
    case OpKind::kUnion: {
      TMDB_ASSIGN_OR_RETURN(PlanCost l, CostPlan(*plan.left()));
      TMDB_ASSIGN_OR_RETURN(PlanCost r, CostPlan(*plan.right()));
      return PlanCost{l.rows + r.rows, l.cost + r.cost + l.rows + r.rows};
    }
    case OpKind::kDifference: {
      TMDB_ASSIGN_OR_RETURN(PlanCost l, CostPlan(*plan.left()));
      TMDB_ASSIGN_OR_RETURN(PlanCost r, CostPlan(*plan.right()));
      return PlanCost{l.rows, l.cost + r.cost + l.rows + r.rows};
    }
  }
  return Status::Internal("unhandled logical operator kind in cost model");
}

Result<double> CostModel::SubplanEvalCost(const Expr& expr,
                                          const LogicalOp* input_op,
                                          const std::string& var,
                                          double input_rows) const {
  double cost = 0;
  for (const Expr& sub_expr : CollectSubplans(expr)) {
    const auto* sub = dynamic_cast<const PlanSubplan*>(&sub_expr.subplan());
    if (sub == nullptr) continue;
    TMDB_ASSIGN_OR_RETURN(PlanCost inner, CostPlan(*sub->plan()));
    double evals = input_rows;
    if (sub->signature().uncorrelated()) {
      evals = 1;
    } else if (options_.memo_enabled) {
      // One evaluation per distinct correlation value — when the binding
      // shape resolves to a base table the sampled estimate bounds it;
      // otherwise stay pessimistic (evals = outer rows), which can only
      // bias *against* memoized naive, never toward it.
      if (input_op != nullptr && SignatureRootedAt(sub->signature(), var)) {
        if (const Table* table = ResolveBaseTable(*input_op)) {
          TMDB_ASSIGN_OR_RETURN(
              DistinctEstimate distinct,
              EstimateSignatureDistinct(*table, var, sub->signature()));
          evals = std::min(static_cast<double>(distinct.estimate),
                           input_rows);
        }
      }
    }
    // evals inner executions plus one cache probe / key eval per outer row.
    cost += evals * inner.cost + input_rows;
  }
  return cost;
}

Result<double> CostModel::EstimateJoinMatches(const LogicalOp& join,
                                              const PlanCost& l,
                                              const PlanCost& r) const {
  EquiKeySplit split =
      SplitEquiKeys(join.pred(), join.left_var(), join.right_var());
  if (split.left_keys.empty()) return -1.0;
  double d_left = l.rows;
  double d_right = r.rows;
  if (const Table* table = ResolveBaseTable(*join.left())) {
    TMDB_ASSIGN_OR_RETURN(
        DistinctEstimate d,
        EstimateKeyDistinct(*table, join.left_var(), split.left_keys));
    d_left = static_cast<double>(d.estimate);
  }
  if (const Table* table = ResolveBaseTable(*join.right())) {
    TMDB_ASSIGN_OR_RETURN(
        DistinctEstimate d,
        EstimateKeyDistinct(*table, join.right_var(), split.right_keys));
    d_right = static_cast<double>(d.estimate);
  }
  const double d = std::max(1.0, std::max(d_left, d_right));
  return l.rows * r.rows / d;
}

Result<std::optional<CorrelationEstimate>> CostModel::EstimateCorrelation(
    const LogicalOp& naive_plan) const {
  // Gather this operator's own expressions.
  std::vector<const Expr*> exprs;
  switch (naive_plan.op_kind()) {
    case OpKind::kSelect:
      exprs.push_back(&naive_plan.pred());
      break;
    case OpKind::kMap:
      exprs.push_back(&naive_plan.func());
      break;
    case OpKind::kNest:
      exprs.push_back(&naive_plan.func());
      break;
    case OpKind::kExprSource:
      exprs.push_back(&naive_plan.func());
      break;
    case OpKind::kJoin:
    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin:
    case OpKind::kOuterJoin:
    case OpKind::kNestJoin:
      exprs.push_back(&naive_plan.pred());
      break;
    default:
      break;
  }
  for (const Expr* expr : exprs) {
    for (const Expr& sub_expr : CollectSubplans(*expr)) {
      const auto* sub =
          dynamic_cast<const PlanSubplan*>(&sub_expr.subplan());
      if (sub == nullptr) continue;
      if (!sub->signature().uncorrelated()) {
        CorrelationEstimate estimate;
        estimate.signature = sub->signature().ToString();
        // Resolve the binding shape: a unary operator iterating `var`
        // over a (filtered) base-table subtree, with every signature path
        // rooted at that var.
        const LogicalOp* input = nullptr;
        std::string var;
        if (naive_plan.op_kind() == OpKind::kSelect ||
            naive_plan.op_kind() == OpKind::kMap ||
            naive_plan.op_kind() == OpKind::kNest) {
          input = naive_plan.input().get();
          var = naive_plan.var();
        } else if (naive_plan.is_join_family()) {
          if (SignatureRootedAt(sub->signature(), naive_plan.left_var())) {
            input = naive_plan.left().get();
            var = naive_plan.left_var();
          } else if (SignatureRootedAt(sub->signature(),
                                       naive_plan.right_var())) {
            input = naive_plan.right().get();
            var = naive_plan.right_var();
          }
        }
        const Table* table = nullptr;
        if (input != nullptr && SignatureRootedAt(sub->signature(), var)) {
          table = ResolveBaseTable(*input);
        }
        if (table == nullptr) return std::optional<CorrelationEstimate>();
        estimate.outer_table = table->name();
        estimate.outer_rows = table->NumRows();
        TMDB_ASSIGN_OR_RETURN(
            estimate.distinct,
            EstimateSignatureDistinct(*table, var, sub->signature()));
        if (options_.memo_enabled && estimate.outer_rows > 0) {
          const double keys = static_cast<double>(
              std::min(estimate.distinct.estimate, estimate.outer_rows));
          estimate.hit_ratio =
              1.0 - keys / static_cast<double>(estimate.outer_rows);
        }
        return std::optional<CorrelationEstimate>(std::move(estimate));
      }
      // Uncorrelated nested block: the interesting correlation may sit one
      // level deeper (Section 8's linear queries).
      TMDB_ASSIGN_OR_RETURN(std::optional<CorrelationEstimate> nested,
                            EstimateCorrelation(*sub->plan()));
      if (nested.has_value()) return nested;
    }
  }
  for (const LogicalOpPtr& child : naive_plan.inputs()) {
    TMDB_ASSIGN_OR_RETURN(std::optional<CorrelationEstimate> nested,
                          EstimateCorrelation(*child));
    if (nested.has_value()) return nested;
  }
  return std::optional<CorrelationEstimate>();
}

}  // namespace tmdb
