#ifndef TMDB_OPTIMIZER_COST_MODEL_H_
#define TMDB_OPTIMIZER_COST_MODEL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "algebra/correlation.h"
#include "algebra/logical_op.h"
#include "base/result.h"
#include "catalog/table.h"

namespace tmdb {

class QueryGuard;

struct CostModelOptions {
  /// Reservoir size for per-table sampling. Estimates are deterministic for
  /// a fixed (sample_rows, sample_seed, data) triple.
  size_t sample_rows = 256;
  uint64_t sample_seed = 0x5EEDC0DE;
  /// Whether the executor will memoize correlated subplans
  /// (RunOptions::subplan_cache_bytes > 0). With memoization off, naive
  /// evaluation pays one subplan execution per outer row and the distinct
  /// estimate only informs EXPLAIN.
  bool memo_enabled = true;
  /// Optional governor: sampling loops run guard checkpoints every batch,
  /// so cancellation, deadlines, and injected faults reach the planning
  /// phase under the same invariant as execution. May be null.
  QueryGuard* guard = nullptr;
};

/// Distinct-count estimate from a reservoir sample, GEE-style
/// (Charikar et al.): D̂ = sqrt(N/n)·f1 + (d − f1), where d is the number
/// of distinct values in the sample and f1 the number that occur exactly
/// once — unseen values are extrapolated only from the singletons. Clamped
/// to [d, N].
struct DistinctEstimate {
  uint64_t table_rows = 0;
  uint64_t sampled_rows = 0;
  uint64_t sample_distinct = 0;
  uint64_t estimate = 0;
};

/// Recursive plan cost: `rows` is the estimated output cardinality, `cost`
/// the abstract work (rows scanned, pairs checked, subplan rows computed).
/// The units only need to rank alternatives of the same query.
struct PlanCost {
  double rows = 0;
  double cost = 0;
};

/// The headline correlation estimate of a query: the first correlated
/// subplan found, its outer table, and the distinct-correlation estimate
/// that drives the naive-vs-unnested choice.
struct CorrelationEstimate {
  std::string outer_table;
  std::string signature;  // CorrelationSignature::ToString form
  uint64_t outer_rows = 0;
  DistinctEstimate distinct;
  /// Predicted subplan-cache hit ratio: 1 − min(estimate, outer)/outer
  /// (0 when memoization is disabled).
  double hit_ratio = 0.0;
};

/// Cheap cardinality + distinct-correlation estimation over the in-memory
/// catalog. Sampling results are memoized per (table, key expression), so
/// costing several alternative plans of one query samples each base table
/// once.
class CostModel {
 public:
  explicit CostModel(CostModelOptions options = CostModelOptions())
      : options_(options) {}

  const CostModelOptions& options() const { return options_; }

  /// Estimates the number of distinct values the correlation signature
  /// `signature` takes over the rows of `table`, with `var` bound to each
  /// row. All signature paths must be rooted at `var`.
  Result<DistinctEstimate> EstimateSignatureDistinct(
      const Table& table, const std::string& var,
      const CorrelationSignature& signature) const;

  /// Estimates the number of distinct values of the key expressions `keys`
  /// (evaluated with `var` bound to each row) over `table`.
  Result<DistinctEstimate> EstimateKeyDistinct(
      const Table& table, const std::string& var,
      const std::vector<Expr>& keys) const;

  /// Recursively costs a logical plan. Handles both naive plans (subplan
  /// expressions costed via the correlation estimate and the memoization
  /// setting) and rewritten flat/nest-join plans (join output cardinality
  /// from sampled key distincts).
  Result<PlanCost> CostPlan(const LogicalOp& plan) const;

  /// The headline correlation estimate of `naive_plan`: walks to the first
  /// operator whose expression holds a correlated subplan and estimates the
  /// distinct correlation values over its input. nullopt when the plan has
  /// no correlated subplan, or when the binding shape cannot be resolved to
  /// a base table (the estimate then degrades to the pessimistic
  /// distinct = outer rows, exactly as CostPlan does).
  Result<std::optional<CorrelationEstimate>> EstimateCorrelation(
      const LogicalOp& naive_plan) const;

 private:
  /// Deterministic reservoir sample of row pointers (guard-checkpointed).
  Result<std::vector<const Value*>> SampleRows(const Table& table) const;

  /// Total cost of the subplans in `expr` over `input_rows` outer rows:
  /// per-subplan evaluations × inner plan cost, where evaluations is 1 for
  /// uncorrelated subplans, min(distinct estimate, input_rows) under
  /// memoization with a resolvable binding shape (`input_op` iterated by
  /// `var`), and input_rows otherwise. Adds one key-eval/probe per outer
  /// row. Returns 0 for subplan-free expressions.
  Result<double> SubplanEvalCost(const Expr& expr, const LogicalOp* input_op,
                                 const std::string& var,
                                 double input_rows) const;

  /// Estimated matching pairs of a join-family operator via sampled key
  /// distincts (|L|·|R| / max(d_L, d_R)); -1 when the predicate has no
  /// equi-key conjuncts (the caller then falls back to a selectivity
  /// guess over the cross product).
  Result<double> EstimateJoinMatches(const LogicalOp& join, const PlanCost& l,
                                     const PlanCost& r) const;

  /// Distinct estimate over the sample with `eval` mapping a sampled row
  /// to its key Value. Memoized under `memo_key`.
  template <typename KeyFn>
  Result<DistinctEstimate> EstimateDistinctImpl(const Table& table,
                                                const std::string& memo_key,
                                                KeyFn eval) const;

  /// Resolves an operator subtree to the base table it iterates, peeling
  /// row-preserving kSelect nodes whose iteration variable differs from
  /// the one being traced. nullptr when the shape is anything else.
  static const Table* ResolveBaseTable(const LogicalOp& op);

  CostModelOptions options_;
  mutable std::map<std::string, DistinctEstimate> distinct_memo_;
};

}  // namespace tmdb

#endif  // TMDB_OPTIMIZER_COST_MODEL_H_
