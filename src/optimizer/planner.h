#ifndef TMDB_OPTIMIZER_PLANNER_H_
#define TMDB_OPTIMIZER_PLANNER_H_

#include <string>
#include <vector>

#include "algebra/logical_op.h"
#include "base/result.h"
#include "exec/physical_op.h"
#include "optimizer/cost_model.h"
#include "translate/strategies.h"

namespace tmdb {

/// Which join implementation the planner may pick. This is the whole point
/// of unnesting (paper, Sections 1–2): a nested query *is* a nested-loop
/// join; once flattened, the optimizer can choose hash or sort-merge
/// implementations instead.
enum class JoinImpl {
  kAuto,        // cost-based choice
  kNestedLoop,  // force nested loops (what the nested form is stuck with)
  kHash,
  kMerge,
};

std::string JoinImplName(JoinImpl impl);

struct PlannerOptions {
  JoinImpl join_impl = JoinImpl::kAuto;
  /// Parallelism degree the executor will run with. The cost model divides
  /// the hash build/probe cost by it, since those phases parallelise; with
  /// the default of 1 the costs (and all plans) are exactly the serial ones.
  int num_threads = 1;
  /// Whether the executor will run with spill-to-disk available
  /// (RunOptions::enable_spill). Hash joins then degrade gracefully under a
  /// memory budget instead of failing, so under pressure a hash plan is
  /// strictly safer than the nested-loop fallback. The cost model is not
  /// adjusted — spilling changes failure behaviour, not the expected cost
  /// of the in-memory path — but the flag is threaded through so a future
  /// cost model can prefer spillable operators when budgets are tight.
  bool spill_available = false;
  /// Let scans expose columnar batches, selections compile column
  /// predicates, and hash joins resolve raw-key fast paths. Purely a
  /// physical-execution choice: results and stats are bit-identical either
  /// way, so this exists for A/B testing and diagnosis.
  bool enable_columnar = true;
};

/// Cardinality estimate for a logical operator (input sizes from table
/// row counts; crude textbook selectivities — enough to rank join
/// implementations, which is all the cost model is used for).
double EstimateCardinality(const LogicalOp& op);

/// Translates a logical plan into a physical one.
///
/// For join-family operators the planner extracts equi-key conjuncts
/// (f(x) = g(y) with each side referencing only one operand variable) and
/// picks an implementation:
///   - keys found + kAuto: hash join vs sort-merge vs nested loop by a
///     simple cost formula (hash ≈ |L|+|R|, merge ≈ sort cost, NL ≈ |L|·|R|);
///   - no keys: nested loop (the only general implementation);
///   - forced via options: that implementation (falls back to nested loop
///     when keys are required but absent).
///
/// The nest join honours the paper's build-side restriction: the right
/// operand is always the hash build side / the run-grouped side.
class Planner {
 public:
  explicit Planner(PlannerOptions options = PlannerOptions())
      : options_(options) {}

  Result<PhysicalOpPtr> Plan(const LogicalOpPtr& logical) const;

 private:
  PlannerOptions options_;
};

/// One costed candidate of the strategy enumeration.
struct StrategyAlternative {
  Strategy strategy = Strategy::kNaive;
  bool feasible = true;
  double est_rows = 0;
  double est_cost = 0;
  std::string note;  // infeasibility reason; empty otherwise
};

/// Outcome of the cost-based strategy choice (strategy = auto): the chosen
/// strategy, every costed alternative, the headline correlation estimate,
/// and a one-line reason. EXPLAIN prints ToTable(); the Database arms the
/// adaptive switch from est_hit_ratio.
struct StrategyDecision {
  Strategy chosen = Strategy::kNestJoin;
  std::vector<StrategyAlternative> alternatives;
  /// False when the query has no nested subquery — the rewrite is a no-op
  /// and enumeration (including sampling) is skipped entirely.
  bool costed = false;
  uint64_t outer_rows = 0;
  uint64_t est_distinct_corr = 0;
  double est_hit_ratio = 0.0;
  std::string reason;

  /// The costed-alternatives table EXPLAIN prints. Deterministic for fixed
  /// data + sample seed (golden-file tested).
  std::string ToTable() const;

  /// Cheapest feasible non-naive alternative — the adaptive switch target.
  /// Returns false when every non-naive candidate was infeasible.
  bool BestUnnested(Strategy* out) const;
};

/// Costs {memoized naive, nest join, semi/anti join, flatten} for
/// `naive_plan` via `model` and picks the cheapest (ties prefer the
/// unnested strategies, the paper's default). Kim's algorithm is excluded:
/// it reproduces the COUNT bug by design and is never a correct choice.
/// Queries without nested subqueries return chosen = kNestJoin uncosted.
Result<StrategyDecision> ChooseStrategy(const LogicalOpPtr& naive_plan,
                                        const CostModel& model);

/// Splits `pred` (over `left_var`/`right_var`) into equi-key pairs and a
/// residual predicate. Exposed for tests and benches.
struct EquiKeySplit {
  std::vector<Expr> left_keys;
  std::vector<Expr> right_keys;
  Expr residual;
};
EquiKeySplit SplitEquiKeys(const Expr& pred, const std::string& left_var,
                           const std::string& right_var);

}  // namespace tmdb

#endif  // TMDB_OPTIMIZER_PLANNER_H_
