#include "optimizer/planner.h"

#include <cmath>
#include <optional>
#include <utility>

#include "exec/basic_ops.h"
#include "exec/columnar.h"
#include "exec/hash_join.h"
#include "exec/merge_join.h"
#include "exec/nest_op.h"
#include "exec/nested_loop_join.h"
#include "rewrite/expr_rewrite.h"

namespace tmdb {

std::string JoinImplName(JoinImpl impl) {
  switch (impl) {
    case JoinImpl::kAuto:
      return "auto";
    case JoinImpl::kNestedLoop:
      return "nested-loop";
    case JoinImpl::kHash:
      return "hash";
    case JoinImpl::kMerge:
      return "sort-merge";
  }
  return "?";
}

EquiKeySplit SplitEquiKeys(const Expr& pred, const std::string& left_var,
                           const std::string& right_var) {
  EquiKeySplit out;
  std::vector<Expr> residual;
  for (Expr& c : SplitConjuncts(pred)) {
    bool used = false;
    if (c.is_binary() && c.binary_op() == BinaryOp::kEq &&
        CollectSubplans(c).empty()) {
      auto vars_of = [](const Expr& e) { return e.FreeVars(); };
      const std::set<std::string> l = vars_of(c.lhs());
      const std::set<std::string> r = vars_of(c.rhs());
      auto only = [](const std::set<std::string>& s,
                     const std::string& v) {
        return s.size() <= 1 && (s.empty() || s.count(v) > 0);
      };
      // A key pair must bind both sides: x-side references left_var only,
      // y-side right_var only (at least one side non-empty each way to be
      // a useful key; constant = constant goes to residual).
      if (only(l, left_var) && only(r, right_var) &&
          (!l.empty() || !r.empty())) {
        out.left_keys.push_back(c.lhs());
        out.right_keys.push_back(c.rhs());
        used = true;
      } else if (only(l, right_var) && only(r, left_var) &&
                 (!l.empty() || !r.empty())) {
        out.left_keys.push_back(c.rhs());
        out.right_keys.push_back(c.lhs());
        used = true;
      }
    }
    if (!used) residual.push_back(std::move(c));
  }
  out.residual = Expr::AndAll(std::move(residual));
  return out;
}

double EstimateCardinality(const LogicalOp& op) {
  switch (op.op_kind()) {
    case OpKind::kScan:
      return static_cast<double>(op.table()->NumRows());
    case OpKind::kExprSource:
      return 10.0;  // unknowable without data; small constant
    case OpKind::kSelect:
      return 0.25 * EstimateCardinality(*op.input());
    case OpKind::kMap:
      return EstimateCardinality(*op.input());
    case OpKind::kJoin: {
      const double l = EstimateCardinality(*op.left());
      const double r = EstimateCardinality(*op.right());
      EquiKeySplit split =
          SplitEquiKeys(op.pred(), op.left_var(), op.right_var());
      if (!split.left_keys.empty()) return std::max(l, r);
      return 0.1 * l * r;
    }
    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin:
      return 0.5 * EstimateCardinality(*op.left());
    case OpKind::kOuterJoin:
    case OpKind::kNestJoin:
      // One output tuple per left tuple (at least) for nest join; the
      // outerjoin is close enough for ranking purposes.
      return EstimateCardinality(*op.left());
    case OpKind::kNest:
      return 0.5 * EstimateCardinality(*op.input());
    case OpKind::kUnnest:
      return 4.0 * EstimateCardinality(*op.input());
    case OpKind::kUnion:
      return EstimateCardinality(*op.left()) +
             EstimateCardinality(*op.right());
    case OpKind::kDifference:
      return EstimateCardinality(*op.left());
  }
  return 1.0;
}

namespace {

JoinMode ToJoinMode(OpKind kind) {
  switch (kind) {
    case OpKind::kJoin:
      return JoinMode::kInner;
    case OpKind::kSemiJoin:
      return JoinMode::kSemi;
    case OpKind::kAntiJoin:
      return JoinMode::kAnti;
    case OpKind::kOuterJoin:
      return JoinMode::kLeftOuter;
    default:
      return JoinMode::kNestJoin;
  }
}

}  // namespace

Result<PhysicalOpPtr> Planner::Plan(const LogicalOpPtr& logical) const {
  switch (logical->op_kind()) {
    case OpKind::kScan:
      return PhysicalOpPtr(
          new TableScanOp(logical->table(), options_.enable_columnar));
    case OpKind::kExprSource:
      return PhysicalOpPtr(new ExprSourceOp(logical->func()));
    case OpKind::kSelect: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr child, Plan(logical->input()));
      // Compile the predicate to column form when possible; FilterOp falls
      // back to row evaluation at Open unless the child is actually
      // columnar with a matching layout.
      std::optional<ColumnPredicate> cpred;
      if (options_.enable_columnar) {
        Type in = logical->input()->output_type();
        if (in.is_collection()) in = in.element();
        cpred = ColumnPredicate::Compile(logical->pred(), logical->var(), in);
      }
      return PhysicalOpPtr(new FilterOp(std::move(child), logical->var(),
                                        logical->pred(), std::move(cpred)));
    }
    case OpKind::kMap: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr child, Plan(logical->input()));
      return PhysicalOpPtr(
          new MapOp(std::move(child), logical->var(), logical->func()));
    }
    case OpKind::kJoin:
    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin:
    case OpKind::kOuterJoin:
    case OpKind::kNestJoin: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr left, Plan(logical->left()));
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr right, Plan(logical->right()));

      JoinSpec spec;
      spec.mode = ToJoinMode(logical->op_kind());
      spec.left_var = logical->left_var();
      spec.right_var = logical->right_var();
      spec.right_type = logical->right()->output_type();
      if (logical->op_kind() == OpKind::kNestJoin) {
        spec.func = logical->func();
        spec.label = logical->label();
      }

      EquiKeySplit split = SplitEquiKeys(logical->pred(), spec.left_var,
                                         spec.right_var);
      JoinImpl impl = options_.join_impl;
      if (split.left_keys.empty()) {
        impl = JoinImpl::kNestedLoop;  // only general implementation
      } else if (impl == JoinImpl::kAuto) {
        const double l = EstimateCardinality(*logical->left());
        const double r = EstimateCardinality(*logical->right());
        const double nl_cost = l * r;
        const double hash_cost =
            (l + r) / std::max(1, options_.num_threads);
        const double merge_cost =
            l * std::log2(l + 2.0) + r * std::log2(r + 2.0);
        if (hash_cost <= merge_cost && hash_cost <= nl_cost) {
          impl = JoinImpl::kHash;
        } else if (merge_cost <= nl_cost) {
          impl = JoinImpl::kMerge;
        } else {
          impl = JoinImpl::kNestedLoop;
        }
      }

      switch (impl) {
        case JoinImpl::kNestedLoop: {
          spec.pred = logical->pred();  // full predicate
          return PhysicalOpPtr(new NestedLoopJoinOp(
              std::move(left), std::move(right), std::move(spec)));
        }
        case JoinImpl::kHash: {
          spec.pred = split.residual;
          std::optional<FastKeySpec> fast;
          if (options_.enable_columnar) {
            fast = ResolveFastKeys(split.left_keys, split.right_keys,
                                   spec.left_var, spec.right_var);
          }
          return PhysicalOpPtr(new HashJoinOp(
              std::move(left), std::move(right), std::move(spec),
              std::move(split.left_keys), std::move(split.right_keys),
              std::move(fast)));
        }
        case JoinImpl::kMerge: {
          spec.pred = split.residual;
          return PhysicalOpPtr(new MergeJoinOp(
              std::move(left), std::move(right), std::move(spec),
              std::move(split.left_keys), std::move(split.right_keys)));
        }
        case JoinImpl::kAuto:
          break;
      }
      return Status::Internal("join implementation not resolved");
    }
    case OpKind::kNest: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr child, Plan(logical->input()));
      return PhysicalOpPtr(new NestOp(
          std::move(child), logical->group_attrs(), logical->var(),
          logical->func(), logical->label(), logical->null_group_to_empty()));
    }
    case OpKind::kUnnest: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr child, Plan(logical->input()));
      return PhysicalOpPtr(
          new UnnestOp(std::move(child), logical->unnest_attr()));
    }
    case OpKind::kUnion: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr left, Plan(logical->left()));
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr right, Plan(logical->right()));
      return PhysicalOpPtr(new UnionOp(std::move(left), std::move(right)));
    }
    case OpKind::kDifference: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr left, Plan(logical->left()));
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr right, Plan(logical->right()));
      return PhysicalOpPtr(new DifferenceOp(std::move(left), std::move(right)));
    }
  }
  return Status::Internal("unhandled logical operator in Planner");
}

}  // namespace tmdb
